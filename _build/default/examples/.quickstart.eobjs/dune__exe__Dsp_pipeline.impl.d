examples/dsp_pipeline.ml: Array List Printf Wp_lis Wp_sim
