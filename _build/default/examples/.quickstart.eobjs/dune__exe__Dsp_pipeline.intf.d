examples/dsp_pipeline.mli:
