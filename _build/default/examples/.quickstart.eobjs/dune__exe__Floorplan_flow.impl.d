examples/floorplan_flow.ml: List Printf Wp_core Wp_floorplan Wp_soc
