examples/floorplan_flow.mli:
