examples/oracle_gain.ml: Array List Printf Wp_core Wp_lis Wp_sim Wp_soc
