examples/oracle_gain.mli:
