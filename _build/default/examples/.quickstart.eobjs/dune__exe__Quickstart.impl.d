examples/quickstart.ml: List Printf Wp_lis Wp_sim
