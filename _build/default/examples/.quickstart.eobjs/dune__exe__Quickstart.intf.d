examples/quickstart.mli:
