examples/soc_matmul.ml: Array List Printf Wp_core Wp_soc
