examples/soc_matmul.mli:
