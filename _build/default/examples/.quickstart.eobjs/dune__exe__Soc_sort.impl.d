examples/soc_sort.ml: Array List Printf Wp_core Wp_soc
