examples/soc_sort.mli:
