(* A second SoC built on the public API: a small DSP chain with a slow
   feedback loop, showing that the oracle-wrapper advantage is not
   specific to the processor case study.

     stimulus --> fir --> accumulator --> agc
                   ^                       |
                   +------- gain ----------+

   The AGC (automatic gain control) block watches the accumulated energy
   and sends a new gain to the FIR only once every [adapt_period]
   samples; between updates the FIR does not need the gain channel at
   all.  Pipelining the long feedback wire therefore costs classic LID
   wrappers the full loop penalty, while oracle wrappers barely notice.

   Run with: dune exec examples/dsp_pipeline.exe *)

module Process = Wp_lis.Process
module Shell = Wp_lis.Shell
module Network = Wp_sim.Network
module Engine = Wp_sim.Engine
module Monitor = Wp_sim.Monitor

let adapt_period = 8

(* A deterministic "signal": a ramp with a superimposed square wave. *)
let stimulus =
  Process.pure_source ~name:"stimulus" ~output_name:"sample" ~reset:0 (fun k ->
      (k mod 17) + (if k mod 6 < 3 then 4 else -4))

(* 3-tap moving-average FIR with a run-time gain.  The gain input is
   needed only when the AGC announces an update: every [adapt_period]-th
   firing (a schedule both sides know), so the oracle can skip it the
   rest of the time. *)
let fir =
  {
    Process.name = "fir";
    input_names = [| "sample"; "gain" |];
    output_names = [| "filtered" |];
    reset_outputs = [| 0 |];
    make =
      (fun () ->
        let taps = Array.make 3 0 in
        let gain = ref 1 in
        let k = ref 0 in
        {
          Process.required = (fun () -> [| true; !k mod adapt_period = adapt_period - 1 |]);
          fire =
            (fun inputs ->
              let sample = match inputs.(0) with Some v -> v | None -> assert false in
              (match inputs.(1) with
              | Some g -> gain := max 1 (g land 0xF)
              | None -> ());
              taps.(2) <- taps.(1);
              taps.(1) <- taps.(0);
              taps.(0) <- sample;
              incr k;
              [| !gain * (taps.(0) + taps.(1) + taps.(2)) / 3 |]);
          halted = (fun () -> false);
        });
  }

(* Accumulates energy and forwards the sample stream. *)
let accumulator =
  {
    Process.name = "accumulator";
    input_names = [| "filtered" |];
    output_names = [| "energy" |];
    reset_outputs = [| 0 |];
    make =
      (fun () ->
        let acc = ref 0 in
        {
          Process.required = Process.all_required 1;
          fire =
            (fun inputs ->
              let v = match inputs.(0) with Some v -> v | None -> assert false in
              acc := ((!acc * 7) + abs v) / 8;
              [| !acc |]);
          halted = (fun () -> false);
        });
  }

(* Emits a gain word every firing; only the scheduled ones matter. *)
let agc =
  {
    Process.name = "agc";
    input_names = [| "energy" |];
    output_names = [| "gain" |];
    reset_outputs = [| 1 |];
    make =
      (fun () ->
        {
          Process.required = Process.all_required 1;
          fire =
            (fun inputs ->
              let energy = match inputs.(0) with Some v -> v | None -> assert false in
              [| (if energy > 12 then 1 else if energy > 6 then 2 else 3) |]);
          halted = (fun () -> false);
        });
  }

let build ~feedback_rs =
  let net = Network.create () in
  let s = Network.add net stimulus in
  let f = Network.add net fir in
  let a = Network.add net accumulator in
  let g = Network.add net agc in
  ignore (Network.connect net ~src:(s, "sample") ~dst:(f, "sample") ());
  ignore (Network.connect net ~src:(f, "filtered") ~dst:(a, "filtered") ());
  ignore (Network.connect net ~src:(a, "energy") ~dst:(g, "energy") ());
  (* The long wire across the die: AGC back to the FIR. *)
  ignore (Network.connect net ~src:(g, "gain") ~dst:(f, "gain") ~relay_stations:feedback_rs ());
  net

let throughput ~mode ~feedback_rs =
  let engine = Engine.create ~mode (build ~feedback_rs) in
  ignore (Engine.run ~max_cycles:2000 engine);
  Monitor.node_throughput (Monitor.collect engine) "fir"

let () =
  print_endline "DSP chain with a slow feedback wire (gain update every 8 samples)\n";
  Printf.printf "%-22s %8s %8s\n" "feedback relay stns" "WP1" "WP2";
  List.iter
    (fun feedback_rs ->
      let wp1 = throughput ~mode:Shell.Plain ~feedback_rs in
      let wp2 = throughput ~mode:Shell.Oracle ~feedback_rs in
      Printf.printf "%-22d %8.3f %8.3f\n" feedback_rs wp1 wp2)
    [ 0; 1; 2; 4; 8 ];
  print_endline
    "\nthe loop spans 4 blocks, so WP1 drops as 4/(4+n); the oracle system\n\
     needs the loop only one sample in eight and degrades far more slowly."
