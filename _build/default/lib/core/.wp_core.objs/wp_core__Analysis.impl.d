lib/core/analysis.ml: Config Lazy List Printf Wp_graph Wp_sim Wp_soc
