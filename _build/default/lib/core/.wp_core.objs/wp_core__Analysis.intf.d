lib/core/analysis.mli: Config Wp_graph Wp_sim
