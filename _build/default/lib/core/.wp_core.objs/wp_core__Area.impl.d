lib/core/area.ml: Config List Wp_soc
