lib/core/area.mli: Config Wp_soc
