lib/core/config.ml: Array Format List Printf String Wp_soc
