lib/core/config.mli: Format Wp_soc
