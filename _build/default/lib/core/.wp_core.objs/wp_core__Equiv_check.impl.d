lib/core/equiv_check.ml: Array Config List Wp_lis Wp_sim Wp_soc
