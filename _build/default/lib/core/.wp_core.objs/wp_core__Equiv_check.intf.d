lib/core/equiv_check.mli: Config Wp_lis Wp_soc
