lib/core/experiment.ml: Analysis Config Hashtbl Printf Wp_lis Wp_soc Wp_util
