lib/core/experiment.mli: Config Wp_soc
