lib/core/optimizer.ml: Analysis Array Config List Wp_soc Wp_util
