lib/core/optimizer.mli: Config Wp_soc Wp_util
