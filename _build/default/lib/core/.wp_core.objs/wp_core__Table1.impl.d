lib/core/table1.ml: Buffer Config Experiment List Optimizer Printf String Wp_soc Wp_util
