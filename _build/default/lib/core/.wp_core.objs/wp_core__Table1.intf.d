lib/core/table1.mli: Experiment Wp_soc
