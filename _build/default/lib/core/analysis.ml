module Datapath = Wp_soc.Datapath
module Digraph = Wp_graph.Digraph
module Cycles = Wp_graph.Cycles
module Cycle_ratio = Wp_graph.Cycle_ratio

type loop_report = {
  loop_blocks : string list;
  processes : int;
  stations : int;
  wp1_ratio : Cycle_ratio.ratio;
}

type utilization = node:string -> port:string -> float

(* The static case-study graph: one vertex per block, one edge per
   channel, edge id -> (connection, consumer block, consumer port). *)
let static_graph =
  lazy
    (let g = Digraph.create () in
     let vertex_of =
       List.map (fun name -> (name, Digraph.add_vertex g ~label:name)) Datapath.block_names
     in
     let v name = List.assoc name vertex_of in
     let edge_info =
       List.map
         (fun (conn, (src_block, src_port), (dst_block, dst_port)) ->
           let e =
             Digraph.add_edge g ~src:(v src_block) ~dst:(v dst_block)
               ~label:(Printf.sprintf "%s.%s" src_block src_port)
           in
           (e, (conn, dst_block, dst_port)))
         Datapath.topology
     in
     (g, edge_info))

let edge_connection edge_info e =
  let conn, _, _ = List.assoc e edge_info in
  conn

(* The topology is fixed, so its elementary loops are enumerated once and
   the worst-loop bound of a configuration reduces to a scan — this is
   what makes the 180k-placement "Optimal 2" search cheap. *)
let static_loops =
  lazy
    (let g, edge_info = Lazy.force static_graph in
     List.map
       (fun cycle ->
         (List.length cycle, List.map (edge_connection edge_info) cycle))
       (Cycles.elementary_cycles g))

let wp1_bound config =
  let loops = Lazy.force static_loops in
  List.fold_left
    (fun acc (m, conns) ->
      let n = List.fold_left (fun s c -> s + Config.get config c) 0 conns in
      let r = Cycle_ratio.make_ratio m (m + n) in
      if Cycle_ratio.ratio_compare r acc < 0 then r else acc)
    (Cycle_ratio.make_ratio 1 1)
    loops

let wp1_bound_float config = Cycle_ratio.ratio_to_float (wp1_bound config)

let report_of_cycle config (g, edge_info) cycle =
  let processes = List.length cycle in
  let stations =
    List.fold_left
      (fun acc e -> acc + Config.get config (edge_connection edge_info e))
      0 cycle
  in
  {
    loop_blocks = List.map (fun e -> Digraph.vertex_label g (Digraph.edge_src g e)) cycle;
    processes;
    stations;
    wp1_ratio = Cycle_ratio.make_ratio processes (processes + stations);
  }

let all_loops config =
  let g, edge_info = Lazy.force static_graph in
  let loops =
    List.map (report_of_cycle config (g, edge_info)) (Cycles.elementary_cycles g)
  in
  List.sort (fun a b -> Cycle_ratio.ratio_compare a.wp1_ratio b.wp1_ratio) loops

let critical_loop config =
  match all_loops config with
  | worst :: _ -> worst
  | [] -> invalid_arg "Analysis.critical_loop: acyclic netlist"

let wp2_estimate config ~utilization =
  let g, edge_info = Lazy.force static_graph in
  let loop_estimate cycle =
    let m = float_of_int (List.length cycle) in
    let weighted_stations =
      List.fold_left
        (fun acc e ->
          let conn, dst_block, dst_port = List.assoc e edge_info in
          let u = utilization ~node:dst_block ~port:dst_port in
          acc +. (float_of_int (Config.get config conn) *. u))
        0.0 cycle
    in
    m /. (m +. weighted_stations)
  in
  List.fold_left
    (fun acc cycle -> min acc (loop_estimate cycle))
    1.0
    (Cycles.elementary_cycles g)

let utilization_of_report report ~node ~port =
  match Wp_sim.Monitor.utilization report ~node ~port with
  | u -> u
  | exception Not_found -> 1.0
