(** Static throughput analysis of a wire-pipelined SoC.

    The sustainable throughput of a latency-insensitive system is bounded
    by its worst netlist loop: [min over loops m / (m + n)] (paper,
    section 2).  This module computes the bound exactly as a minimum
    cycle-ratio problem over the case-study graph, enumerates the loops,
    and provides a heuristic estimate of the WP2 (oracle) throughput based
    on measured channel utilisations. *)

type loop_report = {
  loop_blocks : string list;     (** block names, in loop order *)
  processes : int;               (** m *)
  stations : int;                (** n, total over the loop's channels *)
  wp1_ratio : Wp_graph.Cycle_ratio.ratio;  (** m/(m+n) *)
}

val wp1_bound : Config.t -> Wp_graph.Cycle_ratio.ratio
(** Worst-loop throughput bound for plain (WP1) wrappers. *)

val wp1_bound_float : Config.t -> float

val critical_loop : Config.t -> loop_report
(** The loop achieving {!wp1_bound}. *)

val all_loops : Config.t -> loop_report list
(** Every elementary loop of the case-study netlist with its m, n and
    bound, sorted worst-first.  (The 5-block graph has few loops; this is
    the table the methodology reasons over.) *)

type utilization = node:string -> port:string -> float
(** Fraction of a block's firings that require an input port; measured by
    {!Wp_sim.Monitor} on an oracle-mode profiling run. *)

val wp2_estimate : Config.t -> utilization:utilization -> float
(** Heuristic oracle-mode throughput estimate:
    [min over loops m / (m + sum_e rs_e * u_e)], where [u_e] is the
    consumer-port utilisation of edge [e] — relay stations on a channel
    that is rarely required rarely bind the loop.  This is a first-order
    estimate, not a bound; the ablation bench quantifies its error
    against simulation. *)

val utilization_of_report : Wp_sim.Monitor.report -> utilization
(** Adapt a monitor report; unknown ports default to 1.0. *)
