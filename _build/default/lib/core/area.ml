type estimate = {
  flop_bits : int;
  logic_gates : int;
  total_gates : int;
}

let gates_per_flop_bit = 4

let make ~flop_bits ~logic_gates =
  { flop_bits; logic_gates; total_gates = (flop_bits * gates_per_flop_bit) + logic_gates }

(* Two data registers with valid bits and the 3-state stop FSM. *)
let relay_station ~width = make ~flop_bits:((2 * width) + 2) ~logic_gates:20

(* Per input port: fifo_depth slots of the port's width, pointer/occupancy
   counters (6 bits), plus a pending-discard counter (6 bits) and mask
   lookup for oracle shells.  Per output port: a valid flop and gating.
   One synchroniser ANDing the per-port ready lines. *)
let shell ~input_widths ~output_count ~fifo_depth ~oracle =
  let input_bits =
    List.fold_left
      (fun acc w -> acc + (fifo_depth * w) + 6 + (if oracle then 6 else 0))
      0 input_widths
  in
  let input_logic =
    List.length input_widths * ((3 * fifo_depth) + 15 + if oracle then 10 else 0)
  in
  make
    ~flop_bits:(input_bits + output_count)
    ~logic_gates:(input_logic + (output_count * 5) + 10 + (2 * List.length input_widths))

let overhead_percent ~ip_gates estimate =
  100.0 *. float_of_int estimate.total_gates /. float_of_int ip_gates

(* Port widths from the codecs: fetch = 17-bit address + valid; instr =
   32-bit word + valid; ctrl = 22 payload bits + valid; op = 24 + valid;
   cmd = 1 + valid; flags = 1 + valid; data buses 32 bits. *)
let case_study_widths =
  [
    ("CU", [ 33; 2 ], 4);        (* instr, flags *)
    ("IC", [ 18 ], 1);           (* fetch *)
    ("RF", [ 23; 32; 32 ], 3);   (* ctrl, result, load *)
    ("ALU", [ 25; 32; 32 ], 3);  (* op, src1, src2 *)
    ("DC", [ 2; 32; 32 ], 1);    (* cmd, addr, store_data *)
  ]

let reference_ip_gates = 100_000

let connection_widths =
  let open Wp_soc.Datapath in
  [
    (CU_IC, [ 18; 33 ]);
    (CU_RF, [ 23 ]);
    (CU_AL, [ 25 ]);
    (CU_DC, [ 2 ]);
    (RF_ALU, [ 32; 32 ]);
    (RF_DC, [ 32 ]);
    (ALU_CU, [ 2 ]);
    (ALU_RF, [ 32 ]);
    (ALU_DC, [ 32 ]);
    (DC_RF, [ 32 ]);
  ]

let add a b =
  {
    flop_bits = a.flop_bits + b.flop_bits;
    logic_gates = a.logic_gates + b.logic_gates;
    total_gates = a.total_gates + b.total_gates;
  }

let zero_estimate = { flop_bits = 0; logic_gates = 0; total_gates = 0 }

let case_study_report ~oracle =
  List.map
    (fun (name, input_widths, output_count) ->
      let e = shell ~input_widths ~output_count ~fifo_depth:2 ~oracle in
      (name, e, overhead_percent ~ip_gates:reference_ip_gates e))
    case_study_widths


let system_overhead ~oracle config =
  let wrappers =
    List.fold_left
      (fun acc (name, input_widths, output_count) ->
        ignore name;
        add acc (shell ~input_widths ~output_count ~fifo_depth:2 ~oracle))
      zero_estimate case_study_widths
  in
  List.fold_left
    (fun acc (conn, widths) ->
      let count = Config.get config conn in
      List.fold_left
        (fun acc width ->
          let rs = relay_station ~width in
          let scaled =
            {
              flop_bits = count * rs.flop_bits;
              logic_gates = count * rs.logic_gates;
              total_gates = count * rs.total_gates;
            }
          in
          add acc scaled)
        acc widths)
    wrappers connection_widths

let system_overhead_percent ~oracle config =
  overhead_percent ~ip_gates:(5 * reference_ip_gates) (system_overhead ~oracle config)
