(** Gate-level area model for wrappers and relay stations.

    The paper's synthesis experiments (130 nm) report that the wrapper
    overhead is "always less than 1% with respect to an IP of 100 kgates"
    and never timing-critical.  With no synthesis flow available we
    reproduce the {e estimate}: a transparent gate-equivalent model of the
    shell (per-port FIFOs sized by actual bus width, lag counters,
    synchroniser) and of the relay station (two registers plus the stop
    FSM), evaluated on the case-study blocks with their real port
    widths. *)

type estimate = {
  flop_bits : int;     (** storage bits *)
  logic_gates : int;   (** control/steering logic, gate equivalents *)
  total_gates : int;   (** flops at {!gates_per_flop_bit} + logic *)
}

val gates_per_flop_bit : int
(** Gate equivalents per register bit (4, a NAND2-equivalent figure for a
    small D flip-flop). *)

val relay_station : width:int -> estimate
(** One relay station on a [width]-bit channel. *)

val shell :
  input_widths:int list -> output_count:int -> fifo_depth:int -> oracle:bool -> estimate
(** A wrapper buffering each input in a [fifo_depth]-deep FIFO of its own
    width.  The oracle variant adds the required-port lookup and the
    per-port pending-discard counters. *)

val overhead_percent : ip_gates:int -> estimate -> float

val case_study_widths : (string * int list * int) list
(** Per block: name, input port widths, output port count — derived from
    the channel codecs ({!Wp_soc.Codec}). *)

val case_study_report : oracle:bool -> (string * estimate * float) list
(** Per case-study block: wrapper estimate and overhead against the
    paper's 100 kgate reference IP. *)

val reference_ip_gates : int

val connection_widths : (Wp_soc.Datapath.connection * int list) list
(** Bus widths of each connection's channels (CU-IC and RF-ALU carry
    two). *)

val system_overhead : oracle:bool -> Config.t -> estimate
(** Total added hardware of a wire-pipelined system: the five wrappers
    plus every relay station implied by the configuration, each sized by
    its channel's width. *)

val system_overhead_percent : oracle:bool -> Config.t -> float
(** {!system_overhead} against five reference IPs (500 kgates). *)
