lib/floorplan/flow.ml: List Place Slicing Wp_core Wp_soc Wp_util
