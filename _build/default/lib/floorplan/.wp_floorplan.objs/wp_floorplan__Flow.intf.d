lib/floorplan/flow.mli: Place Slicing Wp_core Wp_util
