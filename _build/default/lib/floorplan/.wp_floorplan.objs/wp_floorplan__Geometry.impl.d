lib/floorplan/geometry.ml: List
