lib/floorplan/geometry.mli:
