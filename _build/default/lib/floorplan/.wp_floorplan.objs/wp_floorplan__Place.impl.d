lib/floorplan/place.ml: Array Geometry List Sequence_pair Slicing Wp_util
