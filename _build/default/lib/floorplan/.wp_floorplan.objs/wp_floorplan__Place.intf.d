lib/floorplan/place.mli: Geometry Sequence_pair Slicing Wp_util
