lib/floorplan/sequence_pair.ml: Array Fun Geometry List Slicing Wp_util
