lib/floorplan/sequence_pair.mli: Geometry Slicing Wp_util
