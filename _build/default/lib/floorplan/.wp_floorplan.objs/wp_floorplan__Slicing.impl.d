lib/floorplan/slicing.ml: Array Geometry List Wp_util
