lib/floorplan/slicing.mli: Geometry Wp_util
