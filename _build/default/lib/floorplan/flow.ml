module Config = Wp_core.Config
module Analysis = Wp_core.Analysis
module Datapath = Wp_soc.Datapath

let relay_stations_for ~reach length =
  if reach <= 0.0 then invalid_arg "Flow.relay_stations_for: non-positive reach";
  max 0 (int_of_float (ceil (length /. reach)) - 1)

let case_study_blocks =
  [
    Place.block ~name:"CU" ~area:0.8 ();
    Place.block ~name:"IC" ~area:2.2 ();
    Place.block ~name:"DC" ~area:2.2 ();
    Place.block ~name:"RF" ~area:0.6 ();
    Place.block ~name:"ALU" ~area:1.0 ();
  ]

let nets =
  List.map
    (fun (_, (src_block, _), (dst_block, _)) -> (src_block, dst_block))
    Datapath.topology

(* Every channel of a connection runs between the same two blocks, so one
   length per connection suffices. *)
let connection_endpoints conn =
  let _, (src_block, _), (dst_block, _) =
    List.find (fun (c, _, _) -> c = conn) Datapath.topology
  in
  (src_block, dst_block)

let config_of_placement ~reach placement =
  List.fold_left
    (fun config conn ->
      let a, b = connection_endpoints conn in
      let rs = relay_stations_for ~reach (Place.wire_length placement a b) in
      Config.set config conn rs)
    Config.zero Datapath.all_connections

type result = {
  placement : Place.placement;
  config : Config.t;
  wp1_bound : float;
  die_area : float;
  wirelength : float;
}

let result_of_placement ~reach placement =
  let config = config_of_placement ~reach placement in
  {
    placement;
    config;
    wp1_bound = Analysis.wp1_bound_float config;
    die_area = placement.Place.die.Slicing.w *. placement.Place.die.Slicing.h;
    wirelength = Place.total_wirelength placement ~nets;
  }

let run ?(seed = 42) ?(reach = 1.5) ?(wirelength_weight = 0.5) ?(throughput_weight = 0.0)
    ?schedule () =
  let prng = Wp_util.Prng.create ~seed in
  let extra_cost placement =
    if throughput_weight = 0.0 then 0.0
    else begin
      let config = config_of_placement ~reach placement in
      throughput_weight *. (1.0 -. Analysis.wp1_bound_float config)
    end
  in
  let placement =
    Place.anneal ~prng ~blocks:case_study_blocks ~nets ~wirelength_weight ~extra_cost
      ?schedule ()
  in
  result_of_placement ~reach placement

(* Weight chosen so the throughput term competes with die area (a few
   mm^2): losing 0.25 of loop throughput costs like 7.5 mm^2 of silicon. *)
let aware_weight = 30.0

let objectives_ablation ?(seed = 42) ?(reach = 1.3) () =
  [
    ("area only", run ~seed ~reach ~wirelength_weight:0.0 ());
    ("area + wirelength", run ~seed ~reach ~wirelength_weight:0.5 ());
    ( "area + loop throughput",
      run ~seed ~reach ~wirelength_weight:0.0 ~throughput_weight:aware_weight () );
  ]
