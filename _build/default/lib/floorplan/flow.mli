(** The paper's "new system design methodology", end to end:

    floorplan the SoC -> derive per-connection wire lengths -> size each
    connection's relay-station chain from the signal reach per clock ->
    analyse the resulting loop throughput -> (optionally) let the
    floorplanner see that throughput, so that placement trades a little
    area/wirelength for shorter loops.

    A wire of length [l] needs [ceil (l / reach) - 1] relay stations:
    with reach = the distance a signal covers in one clock period, a wire
    shorter than one reach needs none. *)

val relay_stations_for : reach:float -> float -> int
(** @raise Invalid_argument if [reach <= 0]. *)

val case_study_blocks : Place.block list
(** The five blocks with representative 130 nm-class areas (mm^2):
    CU 0.8, IC 2.2, DC 2.2, RF 0.6, ALU 1.0. *)

val nets : (string * string) list
(** Block-name pairs, one per channel of {!Wp_soc.Datapath.topology}. *)

val config_of_placement : reach:float -> Place.placement -> Wp_core.Config.t
(** Size every connection from its center-to-center Manhattan length; a
    bundle (CU-IC) gets the same count on both directions by
    construction. *)

type result = {
  placement : Place.placement;
  config : Wp_core.Config.t;
  wp1_bound : float;       (** static worst-loop throughput of the config *)
  die_area : float;
  wirelength : float;      (** total over {!nets} *)
}

val run :
  ?seed:int ->
  ?reach:float ->
  ?wirelength_weight:float ->
  ?throughput_weight:float ->
  ?schedule:Slicing.expr Wp_util.Anneal.schedule ->
  unit ->
  result
(** One methodology pass.  [reach] defaults to 1.5 (mm per cycle);
    [wirelength_weight] (default 0.5) scales the net-length term and
    [throughput_weight] (default 0.0) scales a [(1 - wp1_bound)] penalty
    inside the annealing cost — setting the latter positive is the
    wire-pipelining-aware mode. *)

val objectives_ablation : ?seed:int -> ?reach:float -> unit -> (string * result) list
(** The methodology ablation, same seed throughout: floorplan driven by
    (a) area only, (b) area + wirelength, (c) area + loop throughput.
    The headline is that (c) achieves the best loop bound — on the
    5-block case study (a) typically lands at 0.5 while (c) reaches the
    geometric optimum. *)
