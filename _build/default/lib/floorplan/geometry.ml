type point = {
  x : float;
  y : float;
}

type rect = {
  origin : point;
  width : float;
  height : float;
}

let rect ~x ~y ~w ~h =
  if w < 0.0 || h < 0.0 then invalid_arg "Geometry.rect: negative dimension";
  { origin = { x; y }; width = w; height = h }

let center r = { x = r.origin.x +. (r.width /. 2.0); y = r.origin.y +. (r.height /. 2.0) }

let area r = r.width *. r.height

let aspect r =
  if r.width = 0.0 then invalid_arg "Geometry.aspect: zero width";
  r.height /. r.width

let manhattan a b = abs_float (a.x -. b.x) +. abs_float (a.y -. b.y)

let overlap a b =
  a.origin.x < b.origin.x +. b.width
  && b.origin.x < a.origin.x +. a.width
  && a.origin.y < b.origin.y +. b.height
  && b.origin.y < a.origin.y +. a.height

let contains ~outer r =
  r.origin.x >= outer.origin.x -. 1e-9
  && r.origin.y >= outer.origin.y -. 1e-9
  && r.origin.x +. r.width <= outer.origin.x +. outer.width +. 1e-9
  && r.origin.y +. r.height <= outer.origin.y +. outer.height +. 1e-9

let hpwl = function
  | [] | [ _ ] -> 0.0
  | p :: rest ->
    let min_x, max_x, min_y, max_y =
      List.fold_left
        (fun (min_x, max_x, min_y, max_y) q ->
          (min min_x q.x, max max_x q.x, min min_y q.y, max max_y q.y))
        (p.x, p.x, p.y, p.y) rest
    in
    max_x -. min_x +. (max_y -. min_y)
