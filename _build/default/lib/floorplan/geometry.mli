(** Plane geometry for floorplanning. *)

type point = {
  x : float;
  y : float;
}

type rect = {
  origin : point;   (** lower-left corner *)
  width : float;
  height : float;
}

val rect : x:float -> y:float -> w:float -> h:float -> rect
(** @raise Invalid_argument on negative dimensions. *)

val center : rect -> point
val area : rect -> float
val aspect : rect -> float
(** height / width. @raise Invalid_argument on zero width. *)

val manhattan : point -> point -> float

val overlap : rect -> rect -> bool
(** Strict interior overlap (sharing an edge is not overlap). *)

val contains : outer:rect -> rect -> bool

val hpwl : point list -> float
(** Half-perimeter wire length of a set of pin positions; 0 for fewer
    than two points. *)
