type block = {
  block_name : string;
  block_area : float;
  aspect_ratios : float list;
}

let block ?(aspect_ratios = [ 0.5; 1.0; 2.0 ]) ~name ~area () =
  if area <= 0.0 then invalid_arg "Place.block: non-positive area";
  List.iter
    (fun r -> if r <= 0.0 then invalid_arg "Place.block: non-positive aspect ratio")
    aspect_ratios;
  { block_name = name; block_area = area; aspect_ratios }

type placement = {
  die : Slicing.shape;
  rects : (string * Geometry.rect) list;
  expression : Slicing.expr;
}

(* aspect = h/w and w*h = area  =>  w = sqrt (area / aspect). *)
let shapes_of_block b =
  List.map
    (fun aspect ->
      let w = sqrt (b.block_area /. aspect) in
      { Slicing.w; h = b.block_area /. w })
    b.aspect_ratios

let pack_expression ~blocks expr =
  let arr = Array.of_list blocks in
  let shapes i = shapes_of_block arr.(i) in
  let die, rects = Slicing.pack ~shapes expr in
  {
    die;
    rects = List.mapi (fun i b -> (b.block_name, rects.(i))) blocks;
    expression = expr;
  }

let wire_length placement a b =
  let center name = Geometry.center (List.assoc name placement.rects) in
  Geometry.manhattan (center a) (center b)

let total_wirelength placement ~nets =
  List.fold_left (fun acc (a, b) -> acc +. wire_length placement a b) 0.0 nets

let anneal ~prng ~blocks ~nets ?(wirelength_weight = 0.5) ?(extra_cost = fun _ -> 0.0)
    ?schedule () =
  let cost expr =
    let placement = pack_expression ~blocks expr in
    (placement.die.Slicing.w *. placement.die.Slicing.h)
    +. (wirelength_weight *. total_wirelength placement ~nets)
    +. extra_cost placement
  in
  let schedule =
    match schedule with
    | Some s -> s
    | None ->
      {
        Wp_util.Anneal.default_schedule with
        Wp_util.Anneal.initial_temperature =
          (* Scale to the problem: a fraction of the total area. *)
          0.3 *. List.fold_left (fun acc b -> acc +. b.block_area) 0.0 blocks;
      }
  in
  let result =
    Wp_util.Anneal.optimize ~prng
      ~init:(Slicing.initial ~block_count:(List.length blocks))
      ~neighbor:Slicing.random_neighbor ~cost ~schedule ()
  in
  pack_expression ~blocks result.Wp_util.Anneal.best

let utilization placement ~blocks =
  let total = List.fold_left (fun acc b -> acc +. b.block_area) 0.0 blocks in
  let die = placement.die.Slicing.w *. placement.die.Slicing.h in
  if die = 0.0 then 0.0 else total /. die

let pack_sequence_pair ~blocks sp =
  let arr = Array.of_list blocks in
  let shapes i = shapes_of_block arr.(i) in
  let die, rects = Sequence_pair.pack ~shapes sp in
  {
    die;
    rects = List.mapi (fun i b -> (b.block_name, rects.(i))) blocks;
    expression = Slicing.initial ~block_count:(List.length blocks);
  }

let anneal_sequence_pair ~prng ~blocks ~nets ?(wirelength_weight = 0.5)
    ?(extra_cost = fun _ -> 0.0) ?schedule () =
  let arr = Array.of_list blocks in
  let shapes i = shapes_of_block arr.(i) in
  let cost sp =
    let placement = pack_sequence_pair ~blocks sp in
    (placement.die.Slicing.w *. placement.die.Slicing.h)
    +. (wirelength_weight *. total_wirelength placement ~nets)
    +. extra_cost placement
  in
  let schedule =
    match schedule with
    | Some s -> s
    | None ->
      {
        Wp_util.Anneal.default_schedule with
        Wp_util.Anneal.initial_temperature =
          0.3 *. List.fold_left (fun acc b -> acc +. b.block_area) 0.0 blocks;
      }
  in
  let result =
    Wp_util.Anneal.optimize ~prng
      ~init:(Sequence_pair.initial ~block_count:(List.length blocks))
      ~neighbor:(fun prng sp -> Sequence_pair.random_neighbor prng ~shapes sp)
      ~cost ~schedule ()
  in
  pack_sequence_pair ~blocks result.Wp_util.Anneal.best
