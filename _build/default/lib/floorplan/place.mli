(** Block placement by simulated annealing over slicing floorplans. *)

type block = {
  block_name : string;
  block_area : float;        (** mm^2 *)
  aspect_ratios : float list;(** allowed height/width ratios *)
}

val block : ?aspect_ratios:float list -> name:string -> area:float -> unit -> block
(** Default aspect ratios: 0.5, 1.0, 2.0.
    @raise Invalid_argument on a non-positive area or ratio. *)

type placement = {
  die : Slicing.shape;
  rects : (string * Geometry.rect) list;
  expression : Slicing.expr;
}

val shapes_of_block : block -> Slicing.shape list

val pack_expression : blocks:block list -> Slicing.expr -> placement
(** Deterministic packing of one expression. *)

val wire_length : placement -> string -> string -> float
(** Manhattan distance between two block centers.  @raise Not_found. *)

val total_wirelength : placement -> nets:(string * string) list -> float

val anneal :
  prng:Wp_util.Prng.t ->
  blocks:block list ->
  nets:(string * string) list ->
  ?wirelength_weight:float ->
  ?extra_cost:(placement -> float) ->
  ?schedule:Slicing.expr Wp_util.Anneal.schedule ->
  unit ->
  placement
(** Minimise [die area + wirelength_weight * total net length +
    extra_cost placement] (default weight 0.5, extra cost 0).  The
    [extra_cost] hook is where the wire-pipelining methodology plugs in a
    throughput objective. *)

val utilization : placement -> blocks:block list -> float
(** Sum of block areas / die area (<= 1; 1 means no dead space). *)

val pack_sequence_pair : blocks:block list -> Sequence_pair.t -> placement
(** Deterministic packing of one sequence pair (the [expression] field of
    the result holds a degenerate chain; sequence pairs are not slicing
    expressions). *)

val anneal_sequence_pair :
  prng:Wp_util.Prng.t ->
  blocks:block list ->
  nets:(string * string) list ->
  ?wirelength_weight:float ->
  ?extra_cost:(placement -> float) ->
  ?schedule:Sequence_pair.t Wp_util.Anneal.schedule ->
  unit ->
  placement
(** Same objective as {!anneal}, searched over sequence pairs instead of
    slicing trees — reaches non-slicing packings. *)
