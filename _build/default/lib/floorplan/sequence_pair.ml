module Prng = Wp_util.Prng

type t = {
  order_a : int array;
  order_b : int array;
  choice : int array;
}

let initial ~block_count =
  if block_count < 1 then invalid_arg "Sequence_pair.initial: need at least one block";
  {
    order_a = Array.init block_count Fun.id;
    order_b = Array.init block_count Fun.id;
    choice = Array.make block_count 0;
  }

let is_permutation arr =
  let n = Array.length arr in
  let seen = Array.make n false in
  Array.for_all
    (fun v ->
      if v < 0 || v >= n || seen.(v) then false
      else begin
        seen.(v) <- true;
        true
      end)
    arr

let is_valid ~shapes t =
  let n = Array.length t.order_a in
  Array.length t.order_b = n
  && Array.length t.choice = n
  && is_permutation t.order_a
  && is_permutation t.order_b
  && Array.for_all (fun c -> c >= 0) t.choice
  &&
  let ok = ref true in
  Array.iteri (fun b c -> if c >= List.length (shapes b) then ok := false) t.choice;
  !ok

let pack ~shapes t =
  if not (is_valid ~shapes t) then invalid_arg "Sequence_pair.pack: invalid state";
  let n = Array.length t.order_a in
  let shape b = List.nth (shapes b) t.choice.(b) in
  let a_index = Array.make n 0 and b_index = Array.make n 0 in
  Array.iteri (fun i b -> a_index.(b) <- i) t.order_a;
  Array.iteri (fun i b -> b_index.(b) <- i) t.order_b;
  let x = Array.make n 0.0 and y = Array.make n 0.0 in
  (* Process blocks in second-sequence order: both the left-of and the
     below relations only relate a block to ones earlier in it. *)
  Array.iteri
    (fun _ i ->
      Array.iter
        (fun j ->
          if b_index.(j) < b_index.(i) && j <> i then begin
            let sj = shape j in
            if a_index.(j) < a_index.(i) then
              (* j left of i *)
              x.(i) <- max x.(i) (x.(j) +. sj.Slicing.w)
            else
              (* j below i *)
              y.(i) <- max y.(i) (y.(j) +. sj.Slicing.h)
          end)
        t.order_b)
    t.order_b;
  let die_w = ref 0.0 and die_h = ref 0.0 in
  let rects =
    Array.init n (fun b ->
        let s = shape b in
        die_w := max !die_w (x.(b) +. s.Slicing.w);
        die_h := max !die_h (y.(b) +. s.Slicing.h);
        Geometry.rect ~x:x.(b) ~y:y.(b) ~w:s.Slicing.w ~h:s.Slicing.h)
  in
  ({ Slicing.w = !die_w; h = !die_h }, rects)

let swap arr prng =
  let fresh = Array.copy arr in
  let n = Array.length fresh in
  if n >= 2 then begin
    let i = Prng.int prng n in
    let j = (i + 1 + Prng.int prng (n - 1)) mod n in
    let tmp = fresh.(i) in
    fresh.(i) <- fresh.(j);
    fresh.(j) <- tmp
  end;
  fresh

let random_neighbor prng ~shapes t =
  match Prng.int prng 3 with
  | 0 -> { t with order_a = swap t.order_a prng }
  | 1 ->
    (* Swap the same pair of blocks in both sequences: moves the block in
       the placement without changing relative relations of others. *)
    let n = Array.length t.order_a in
    if n < 2 then t
    else begin
      let u = Prng.int prng n in
      let v = (u + 1 + Prng.int prng (n - 1)) mod n in
      let swap_values arr =
        Array.map (fun b -> if b = u then v else if b = v then u else b) arr
      in
      { t with order_a = swap_values t.order_a; order_b = swap_values t.order_b }
    end
  | _ ->
    let b = Prng.int prng (Array.length t.choice) in
    let options = List.length (shapes b) in
    let fresh = Array.copy t.choice in
    fresh.(b) <- Prng.int prng options;
    { t with choice = fresh }
