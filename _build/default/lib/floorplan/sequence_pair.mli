(** Sequence-pair floorplans (Murata et al.).

    A sequence pair is two permutations of the block set.  Block [j] is
    left of block [i] when [j] precedes [i] in both sequences, and below
    [i] when [j] follows [i] in the first but precedes it in the second;
    packing is a pair of longest-path problems over those relations.
    Unlike slicing trees, sequence pairs can express every compacted
    placement — the test suite uses this as an independent check on the
    slicing packer, and the annealer as an alternative placement engine.

    Each block also carries a {e shape choice}: an index into its list of
    candidate shapes (aspect ratios/rotations), mutated by the annealing
    moves alongside the permutations. *)

type t = {
  order_a : int array;  (** first sequence: block ids *)
  order_b : int array;  (** second sequence *)
  choice : int array;   (** per block: index into its shape list *)
}

val initial : block_count:int -> t
(** Identity permutations, first shape everywhere.
    @raise Invalid_argument if [block_count < 1]. *)

val is_valid : shapes:(int -> Slicing.shape list) -> t -> bool
(** Both arrays are permutations of the block ids and every choice is in
    range. *)

val pack : shapes:(int -> Slicing.shape list) -> t -> Slicing.shape * Geometry.rect array
(** Compacted placement: die bounding box and one rectangle per block.
    @raise Invalid_argument on an invalid state. *)

val random_neighbor : Wp_util.Prng.t -> shapes:(int -> Slicing.shape list) -> t -> t
(** One of: swap two blocks in the first sequence, swap in both
    sequences, or re-choose one block's shape. *)
