module Prng = Wp_util.Prng

type token =
  | Leaf of int
  | H
  | V

type expr = token array

type shape = {
  w : float;
  h : float;
}

let initial ~block_count =
  if block_count < 1 then invalid_arg "Slicing.initial: need at least one block";
  let tokens = ref [ Leaf 0 ] in
  for b = 1 to block_count - 1 do
    tokens := V :: Leaf b :: !tokens
  done;
  Array.of_list (List.rev !tokens)

let is_valid expr =
  let operands = ref 0 and operators = ref 0 and balloting = ref true in
  Array.iter
    (fun t ->
      (match t with
      | Leaf _ -> incr operands
      | H | V -> incr operators);
      if !operators >= !operands then balloting := false)
    expr;
  !balloting && !operands = !operators + 1 && !operands >= 1

(* --- packing ------------------------------------------------------- *)

type tree =
  | T_leaf of int
  | T_node of token * tree * tree

let tree_of_expr expr =
  let stack = ref [] in
  Array.iter
    (fun t ->
      match t with
      | Leaf b -> stack := T_leaf b :: !stack
      | H | V ->
        (match !stack with
        | right :: left :: rest -> stack := T_node (t, left, right) :: rest
        | [] | [ _ ] -> invalid_arg "Slicing.pack: invalid expression"))
    expr;
  match !stack with
  | [ root ] -> root
  | [] | _ :: _ -> invalid_arg "Slicing.pack: invalid expression"

(* A curve point: a realisable shape plus how it was obtained. *)
type curve_point = {
  shape : shape;
  left_index : int;   (* -1 for leaves *)
  right_index : int;
  leaf_shape : shape option;
}

(* Keep the Pareto frontier: sort by width, keep strictly decreasing
   heights. *)
let prune points =
  let sorted =
    List.sort
      (fun a b -> compare (a.shape.w, a.shape.h) (b.shape.w, b.shape.h))
      points
  in
  let rec keep best_h = function
    | [] -> []
    | p :: rest -> if p.shape.h < best_h then p :: keep p.shape.h rest else keep best_h rest
  in
  keep infinity sorted

let rec curve ~shapes = function
  | T_leaf b ->
    let candidates = shapes b in
    if candidates = [] then invalid_arg "Slicing.pack: empty shape list";
    prune
      (List.map
         (fun s -> { shape = s; left_index = -1; right_index = -1; leaf_shape = Some s })
         candidates)
  | T_node (op, left, right) ->
    let cl = curve ~shapes left and cr = curve ~shapes right in
    let combine i j (pl : curve_point) (pr : curve_point) =
      let shape =
        match op with
        | V -> { w = pl.shape.w +. pr.shape.w; h = max pl.shape.h pr.shape.h }
        | H -> { w = max pl.shape.w pr.shape.w; h = pl.shape.h +. pr.shape.h }
        | Leaf _ -> assert false
      in
      { shape; left_index = i; right_index = j; leaf_shape = None }
    in
    prune
      (List.concat
         (List.mapi (fun i pl -> List.mapi (fun j pr -> combine i j pl pr) cr) cl))

let pack ~shapes expr =
  if not (is_valid expr) then invalid_arg "Slicing.pack: invalid expression";
  let block_count =
    Array.fold_left (fun acc t -> match t with Leaf _ -> acc + 1 | H | V -> acc) 0 expr
  in
  let tree = tree_of_expr expr in
  (* Memoise curves per subtree by recomputing along the chosen path;
     at our sizes a direct recomputation is fine. *)
  let rects = Array.make block_count (Geometry.rect ~x:0.0 ~y:0.0 ~w:0.0 ~h:0.0) in
  let rec place node points index ~x ~y =
    let p = List.nth points index in
    match node with
    | T_leaf b ->
      (match p.leaf_shape with
      | Some s -> rects.(b) <- Geometry.rect ~x ~y ~w:s.w ~h:s.h
      | None -> assert false)
    | T_node (op, left, right) ->
      let cl = curve ~shapes left and cr = curve ~shapes right in
      let pl = List.nth cl p.left_index in
      (match op with
      | V ->
        place left cl p.left_index ~x ~y;
        place right cr p.right_index ~x:(x +. pl.shape.w) ~y
      | H ->
        place left cl p.left_index ~x ~y;
        place right cr p.right_index ~x ~y:(y +. pl.shape.h)
      | Leaf _ -> assert false)
  in
  let root_curve = curve ~shapes tree in
  let index, chosen =
    match root_curve with
    | [] -> invalid_arg "Slicing.pack: empty curve"
    | first :: rest ->
      let curve_area p = p.shape.w *. p.shape.h in
      let _, bi, bp =
        List.fold_left
          (fun (i, bi, bp) q ->
            let i = i + 1 in
            if curve_area q < curve_area bp then (i, i, q) else (i, bi, bp))
          (0, 0, first) rest
      in
      (bi, bp)
  in
  place tree root_curve index ~x:0.0 ~y:0.0;
  (chosen.shape, rects)

(* --- moves --------------------------------------------------------- *)

let operand_positions expr =
  let acc = ref [] in
  Array.iteri (fun i t -> match t with Leaf _ -> acc := i :: !acc | H | V -> ()) expr;
  Array.of_list (List.rev !acc)

let swap_adjacent_operands prng expr =
  let ops = operand_positions expr in
  if Array.length ops < 2 then Array.copy expr
  else begin
    let i = Prng.int prng (Array.length ops - 1) in
    let fresh = Array.copy expr in
    let a = ops.(i) and b = ops.(i + 1) in
    let tmp = fresh.(a) in
    fresh.(a) <- fresh.(b);
    fresh.(b) <- tmp;
    fresh
  end

let complement = function
  | H -> V
  | V -> H
  | Leaf _ -> invalid_arg "Slicing.complement: operand"

let operator_chains expr =
  (* Maximal runs of consecutive operators, as (start, length). *)
  let chains = ref [] in
  let start = ref (-1) in
  Array.iteri
    (fun i t ->
      match t with
      | H | V -> if !start < 0 then start := i
      | Leaf _ ->
        if !start >= 0 then begin
          chains := (!start, i - !start) :: !chains;
          start := -1
        end)
    expr;
  if !start >= 0 then chains := (!start, Array.length expr - !start) :: !chains;
  Array.of_list (List.rev !chains)

let complement_chain prng expr =
  let chains = operator_chains expr in
  if Array.length chains = 0 then Array.copy expr
  else begin
    let start, len = chains.(Prng.int prng (Array.length chains)) in
    let fresh = Array.copy expr in
    for i = start to start + len - 1 do
      fresh.(i) <- complement fresh.(i)
    done;
    fresh
  end

let swap_operand_operator prng expr =
  let n = Array.length expr in
  if n < 3 then None
  else begin
    let candidates = ref [] in
    for i = 0 to n - 2 do
      let is_operand t = match t with Leaf _ -> true | H | V -> false in
      if is_operand expr.(i) <> is_operand expr.(i + 1) then candidates := i :: !candidates
    done;
    match !candidates with
    | [] -> None
    | cs ->
      let arr = Array.of_list cs in
      let i = arr.(Prng.int prng (Array.length arr)) in
      let fresh = Array.copy expr in
      let tmp = fresh.(i) in
      fresh.(i) <- fresh.(i + 1);
      fresh.(i + 1) <- tmp;
      if is_valid fresh then Some fresh else None
  end

let random_neighbor prng expr =
  let rec attempt () =
    match Prng.int prng 3 with
    | 0 -> swap_adjacent_operands prng expr
    | 1 -> complement_chain prng expr
    | _ ->
      (match swap_operand_operator prng expr with
      | Some fresh -> fresh
      | None -> attempt ())
  in
  attempt ()
