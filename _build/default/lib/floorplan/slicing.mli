(** Slicing floorplans as normalised Polish expressions (Wong-Liu).

    A floorplan of [n] blocks is a postfix sequence of [n] operands and
    [n-1] cut operators; [H] stacks the two sub-floorplans vertically
    (one above the other), [V] places them side by side.  Packing uses
    shape curves (Stockmeyer): each block offers a list of (w, h)
    candidates (e.g. rotations), curves are combined bottom-up with
    dominated points pruned, and positions are recovered by walking the
    chosen shapes back down the tree. *)

type token =
  | Leaf of int      (** block index *)
  | H                (** horizontal cut: top/bottom composition *)
  | V                (** vertical cut: left/right composition *)

type expr = token array

type shape = {
  w : float;
  h : float;
}

val initial : block_count:int -> expr
(** The canonical chain [b0 b1 V b2 V ...].
    @raise Invalid_argument if [block_count < 1]. *)

val is_valid : expr -> bool
(** Balloting property and operand/operator counts; normality (no two
    identical operators adjacent in the skewed sense) is not required. *)

val pack : shapes:(int -> shape list) -> expr -> shape * Geometry.rect array
(** Minimum-area packing: the chosen die shape and one placed rectangle
    per block (indexed by block id).  @raise Invalid_argument on an
    invalid expression or an empty shape list. *)

val swap_adjacent_operands : Wp_util.Prng.t -> expr -> expr
(** Move M1: exchange two adjacent operands. *)

val complement_chain : Wp_util.Prng.t -> expr -> expr
(** Move M2: complement the operators of a random chain. *)

val swap_operand_operator : Wp_util.Prng.t -> expr -> expr option
(** Move M3: exchange an adjacent operand/operator pair when the result
    is still a valid expression. *)

val random_neighbor : Wp_util.Prng.t -> expr -> expr
(** One of M1/M2/M3, retrying until a valid neighbour appears. *)
