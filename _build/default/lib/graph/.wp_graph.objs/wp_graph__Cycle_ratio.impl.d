lib/graph/cycle_ratio.ml: Cycles Digraph Format List Scc Shortest_path
