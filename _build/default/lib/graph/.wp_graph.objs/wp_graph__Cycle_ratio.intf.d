lib/graph/cycle_ratio.mli: Digraph Format
