lib/graph/cycles.ml: Array Digraph List
