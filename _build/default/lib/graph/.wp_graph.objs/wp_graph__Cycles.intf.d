lib/graph/cycles.mli: Digraph
