lib/graph/digraph.ml: Array Fun List
