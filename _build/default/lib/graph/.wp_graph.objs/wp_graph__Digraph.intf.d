lib/graph/digraph.mli:
