lib/graph/dot.mli: Digraph
