lib/graph/howard.ml: Array Cycle_ratio Digraph List Scc
