lib/graph/howard.mli: Cycle_ratio Digraph
