lib/graph/karp.ml: Array Digraph Hashtbl List Scc
