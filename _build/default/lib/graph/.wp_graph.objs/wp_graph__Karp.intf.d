lib/graph/karp.mli: Digraph
