lib/graph/shortest_path.ml: Array Digraph Hashtbl List
