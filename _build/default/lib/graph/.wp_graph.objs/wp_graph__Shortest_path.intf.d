lib/graph/shortest_path.mli: Digraph
