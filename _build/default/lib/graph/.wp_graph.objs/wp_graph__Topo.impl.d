lib/graph/topo.ml: List Scc
