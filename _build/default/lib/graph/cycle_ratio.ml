type ratio = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make_ratio num den =
  if den = 0 then invalid_arg "Cycle_ratio.make_ratio: zero denominator";
  let num, den = if den < 0 then (-num, -den) else (num, den) in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let ratio_to_float r = float_of_int r.num /. float_of_int r.den

(* Cross-multiplication; operands stay small in this library. *)
let ratio_compare a b = compare (a.num * b.den) (b.num * a.den)

let ratio_pp ppf r =
  if r.den = 1 then Format.fprintf ppf "%d" r.num
  else Format.fprintf ppf "%d/%d" r.num r.den

let sum_over cycle f = List.fold_left (fun acc e -> acc + f e) 0 cycle

let cycle_ratio _g ~cost ~time cycle =
  make_ratio (sum_over cycle cost) (sum_over cycle time)

let validate_times g ~time =
  Digraph.iter_edges g (fun e ->
      if time e < 0 then invalid_arg "Cycle_ratio: negative time");
  (* A cycle of zero total time exists iff the subgraph of zero-time edges
     contains a cycle; reject it, the ratio would be infinite. *)
  let zero_sub = Digraph.create () in
  List.iter
    (fun v -> ignore (Digraph.add_vertex zero_sub ~label:(Digraph.vertex_label g v)))
    (Digraph.vertices g);
  Digraph.iter_edges g (fun e ->
      if time e = 0 then
        ignore
          (Digraph.add_edge zero_sub ~src:(Digraph.edge_src g e)
             ~dst:(Digraph.edge_dst g e) ~label:""));
  let has_cycle =
    List.exists (fun comp -> not (Scc.is_trivial zero_sub comp)) (Scc.components zero_sub)
  in
  if has_cycle then invalid_arg "Cycle_ratio: cycle with zero total time"

let minimum_by_enumeration g ~cost ~time =
  validate_times g ~time;
  let best = ref None in
  let consider cycle =
    let r = cycle_ratio g ~cost ~time cycle in
    match !best with
    | None -> best := Some (r, cycle)
    | Some (r0, _) -> if ratio_compare r r0 < 0 then best := Some (r, cycle)
  in
  List.iter consider (Cycles.elementary_cycles g);
  !best

(* Is there a cycle with total (cost - lambda * time) < 0 ?  Exactly the
   Lawler feasibility test.  [lambda] is a float; edge attributes are
   integers so the arithmetic is well conditioned. *)
let has_negative_cycle g ~cost ~time lambda =
  let weight e = float_of_int (cost e) -. (lambda *. float_of_int (time e)) in
  match Shortest_path.potentials g ~weight with
  | Shortest_path.Negative_cycle c -> Some c
  | Shortest_path.Distances _ -> None

let has_cycle g =
  List.exists (fun comp -> not (Scc.is_trivial g comp)) (Scc.components g)

let minimum g ~cost ~time =
  validate_times g ~time;
  if not (has_cycle g) then None
  else begin
    let max_abs_cost =
      Digraph.fold_edges g ~init:1 ~f:(fun acc e -> max acc (abs (cost e)))
    in
    let bound = float_of_int (max_abs_cost * max 1 (Digraph.edge_count g)) +. 1.0 in
    (* Invariant: a cycle of ratio < hi exists; none of ratio < lo does.
       After 64 halvings [hi - lo] is far below the smallest gap between
       two distinct achievable ratios (>= 1 / total_time^2), so the last
       witness cycle achieves the optimum; its exact integer ratio is the
       answer. *)
    let lo = ref (-.bound) and hi = ref bound and witness = ref None in
    (match has_negative_cycle g ~cost ~time !hi with
    | Some c -> witness := Some c
    | None ->
      (* Every cycle ratio is < bound by construction. *)
      assert false);
    for _ = 1 to 64 do
      let mid = 0.5 *. (!lo +. !hi) in
      if !hi -. !lo > 1e-12 then
        match has_negative_cycle g ~cost ~time mid with
        | Some c ->
          hi := mid;
          witness := Some c
        | None -> lo := mid
    done;
    match !witness with
    | Some c -> Some (cycle_ratio g ~cost ~time c, c)
    | None -> None
  end

let maximum g ~cost ~time =
  match minimum g ~cost:(fun e -> -cost e) ~time with
  | None -> None
  | Some (r, c) -> Some (make_ratio (-r.num) r.den, c)
