(** Minimum / maximum cycle ratio.

    For edge attributes [cost] and [time] (integers, [time >= 0], every
    cycle having positive total time), the minimum cycle ratio is

      min over elementary cycles C of  (sum cost) / (sum time).

    This is the quantity behind the paper's sustainable-throughput bound:
    with [cost e = 1] and [time e = 1 + relay_stations e], the minimum over
    loops of [m / (m + n)] is exactly the minimum cycle ratio.

    Two implementations are provided: an exact enumeration (small graphs)
    and a scalable parametric search (Lawler binary search over Bellman-Ford
    negative-cycle tests) whose result is returned as an exact rational
    certified by the witnessing cycle. *)

type ratio = {
  num : int;
  den : int;  (** always > 0; the fraction is in lowest terms *)
}

val ratio_to_float : ratio -> float
val ratio_compare : ratio -> ratio -> int
val ratio_pp : Format.formatter -> ratio -> unit

val make_ratio : int -> int -> ratio
(** Normalises sign and reduces. @raise Invalid_argument when the
    denominator is 0. *)

val minimum :
  Digraph.t ->
  cost:(Digraph.edge -> int) ->
  time:(Digraph.edge -> int) ->
  (ratio * Digraph.edge list) option
(** [None] when the graph is acyclic.  The returned cycle achieves the
    ratio.  @raise Invalid_argument if some [time] is negative or some cycle
    has zero total time. *)

val maximum :
  Digraph.t ->
  cost:(Digraph.edge -> int) ->
  time:(Digraph.edge -> int) ->
  (ratio * Digraph.edge list) option

val minimum_by_enumeration :
  Digraph.t ->
  cost:(Digraph.edge -> int) ->
  time:(Digraph.edge -> int) ->
  (ratio * Digraph.edge list) option
(** Reference implementation over [Cycles.elementary_cycles]; exponential in
    the worst case, exact always. *)

val cycle_ratio :
  Digraph.t ->
  cost:(Digraph.edge -> int) ->
  time:(Digraph.edge -> int) ->
  Digraph.edge list ->
  ratio
(** Ratio of one given cycle. *)
