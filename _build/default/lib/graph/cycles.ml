(* Johnson, "Finding all the elementary circuits of a directed graph",
   SIAM J. Comput. 1975 — adapted to multigraphs by walking edges rather
   than vertices.  The outer loop fixes the smallest vertex [s] of each
   cycle and explores only vertices >= s. *)

let elementary_cycles ?(max_cycles = 1_000_000) g =
  let n = Digraph.vertex_count g in
  let blocked = Array.make n false in
  let block_map = Array.make n [] in
  let results = ref [] in
  let count = ref 0 in
  let emit cycle =
    incr count;
    if !count > max_cycles then failwith "Cycles.elementary_cycles: bound exceeded";
    results := cycle :: !results
  in
  for s = 0 to n - 1 do
    (* Reset state for the subgraph induced by vertices >= s. *)
    Array.fill blocked 0 n false;
    Array.fill block_map 0 n [];
    let rec unblock v =
      blocked.(v) <- false;
      let waiting = block_map.(v) in
      block_map.(v) <- [];
      List.iter (fun w -> if blocked.(w) then unblock w) waiting
    in
    (* [circuit v path] explores from [v]; [path] is the reversed edge
       stack.  Returns true when some cycle through [v] was found. *)
    let rec circuit v path =
      blocked.(v) <- true;
      let found = ref false in
      let try_edge e =
        let w = Digraph.edge_dst g e in
        if w >= s then
          if w = s then begin
            emit (List.rev (e :: path));
            found := true
          end
          else if not blocked.(w) then
            if circuit w (e :: path) then found := true
      in
      List.iter try_edge (Digraph.out_edges g v);
      if !found then unblock v
      else
        (* Leave v blocked until a vertex on its escape routes unblocks. *)
        List.iter
          (fun e ->
            let w = Digraph.edge_dst g e in
            if w >= s && not (List.mem v block_map.(w)) then
              block_map.(w) <- v :: block_map.(w))
          (Digraph.out_edges g v);
      !found
    in
    ignore (circuit s [])
  done;
  List.rev !results

let cycle_vertices g cycle = List.map (Digraph.edge_src g) cycle

let is_elementary_cycle g = function
  | [] -> false
  | first :: _ as cycle ->
    let rec check seen prev = function
      | [] -> prev = Digraph.edge_src g first
      | e :: rest ->
        Digraph.edge_src g e = prev
        && (not (List.mem prev seen))
        && check (prev :: seen) (Digraph.edge_dst g e) rest
    in
    check [] (Digraph.edge_src g first) cycle
