(** Enumeration of elementary cycles (Johnson's algorithm).

    Cycles are returned as edge lists in traversal order; parallel edges give
    rise to distinct cycles, as required for netlists with several channels
    between the same pair of blocks.  Each cycle starts from its smallest
    vertex, so the enumeration contains no rotated duplicates. *)

val elementary_cycles : ?max_cycles:int -> Digraph.t -> Digraph.edge list list
(** All elementary cycles (including self-loops).  [max_cycles] (default
    [1_000_000]) bounds the enumeration as a safety valve; reaching the bound
    raises [Failure]. *)

val cycle_vertices : Digraph.t -> Digraph.edge list -> Digraph.vertex list
(** Vertices visited by a cycle, in order, one per edge. *)

val is_elementary_cycle : Digraph.t -> Digraph.edge list -> bool
(** Checks that the edge list is a closed walk visiting distinct vertices. *)
