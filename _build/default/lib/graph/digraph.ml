type vertex = int
type edge = int

type edge_info = { src : vertex; dst : vertex; e_label : string }

type t = {
  mutable v_labels : string array;
  mutable n_vertices : int;
  mutable e_infos : edge_info array;
  mutable n_edges : int;
  mutable out_adj : edge list array; (* reversed insertion order *)
  mutable in_adj : edge list array;
}

let dummy_edge = { src = -1; dst = -1; e_label = "" }

let create () =
  {
    v_labels = Array.make 8 "";
    n_vertices = 0;
    e_infos = Array.make 8 dummy_edge;
    n_edges = 0;
    out_adj = Array.make 8 [];
    in_adj = Array.make 8 [];
  }

let ensure_capacity arr used fill =
  if used < Array.length arr then arr
  else begin
    let fresh = Array.make (2 * Array.length arr) fill in
    Array.blit arr 0 fresh 0 used;
    fresh
  end

let add_vertex t ~label =
  t.v_labels <- ensure_capacity t.v_labels t.n_vertices "";
  t.out_adj <- ensure_capacity t.out_adj t.n_vertices [];
  t.in_adj <- ensure_capacity t.in_adj t.n_vertices [];
  let v = t.n_vertices in
  t.v_labels.(v) <- label;
  t.out_adj.(v) <- [];
  t.in_adj.(v) <- [];
  t.n_vertices <- v + 1;
  v

let check_vertex t v =
  if v < 0 || v >= t.n_vertices then invalid_arg "Digraph: no such vertex"

let add_edge t ~src ~dst ~label =
  check_vertex t src;
  check_vertex t dst;
  t.e_infos <- ensure_capacity t.e_infos t.n_edges dummy_edge;
  let e = t.n_edges in
  t.e_infos.(e) <- { src; dst; e_label = label };
  t.out_adj.(src) <- e :: t.out_adj.(src);
  t.in_adj.(dst) <- e :: t.in_adj.(dst);
  t.n_edges <- e + 1;
  e

let vertex_count t = t.n_vertices
let edge_count t = t.n_edges

let vertex_label t v = check_vertex t v; t.v_labels.(v)

let check_edge t e =
  if e < 0 || e >= t.n_edges then invalid_arg "Digraph: no such edge"

let edge_label t e = check_edge t e; t.e_infos.(e).e_label
let edge_src t e = check_edge t e; t.e_infos.(e).src
let edge_dst t e = check_edge t e; t.e_infos.(e).dst

let out_edges t v = check_vertex t v; List.rev t.out_adj.(v)
let in_edges t v = check_vertex t v; List.rev t.in_adj.(v)

let succ t v = List.map (fun e -> t.e_infos.(e).dst) (out_edges t v)

let vertices t = List.init t.n_vertices Fun.id
let edges t = List.init t.n_edges Fun.id

let find_by label n get =
  let rec loop i = if i >= n then None else if get i = label then Some i else loop (i + 1) in
  loop 0

let find_vertex t label = find_by label t.n_vertices (fun v -> t.v_labels.(v))
let find_edge t label = find_by label t.n_edges (fun e -> t.e_infos.(e).e_label)

let iter_edges t f =
  for e = 0 to t.n_edges - 1 do
    f e
  done

let fold_edges t ~init ~f =
  let acc = ref init in
  iter_edges t (fun e -> acc := f !acc e);
  !acc
