(** Mutable directed multigraph with labelled vertices and edges.

    Vertices and edges are dense integer ids handed out in creation order,
    which keeps every algorithm in this library array-based and
    deterministic.  Self-loops and parallel edges are allowed (a netlist may
    have several channels between the same pair of blocks). *)

type t

type vertex = int
type edge = int

val create : unit -> t

val add_vertex : t -> label:string -> vertex
(** Ids are consecutive from 0. *)

val add_edge : t -> src:vertex -> dst:vertex -> label:string -> edge
(** Ids are consecutive from 0.
    @raise Invalid_argument if an endpoint is not a vertex of [t]. *)

val vertex_count : t -> int
val edge_count : t -> int

val vertex_label : t -> vertex -> string
val edge_label : t -> edge -> string
val edge_src : t -> edge -> vertex
val edge_dst : t -> edge -> vertex

val out_edges : t -> vertex -> edge list
(** In insertion order. *)

val in_edges : t -> vertex -> edge list

val succ : t -> vertex -> vertex list
(** Successor vertices (with duplicates if parallel edges exist). *)

val vertices : t -> vertex list
val edges : t -> edge list

val find_vertex : t -> string -> vertex option
(** First vertex with the given label, if any. *)

val find_edge : t -> string -> edge option

val iter_edges : t -> (edge -> unit) -> unit
val fold_edges : t -> init:'a -> f:('a -> edge -> 'a) -> 'a
