let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c -> if c = '"' || c = '\\' then Buffer.add_char buf '\\'; Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attrs_to_string attrs =
  match attrs with
  | [] -> ""
  | _ ->
    let body =
      String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) attrs)
    in
    ", " ^ body

let to_string ?(name = "netlist") ?(edge_attr = fun _ -> []) ?(vertex_attr = fun _ -> []) g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=LR;\n";
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" v
           (escape (Digraph.vertex_label g v))
           (attrs_to_string (vertex_attr v))))
    (Digraph.vertices g);
  Digraph.iter_edges g (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s\"%s];\n" (Digraph.edge_src g e)
           (Digraph.edge_dst g e)
           (escape (Digraph.edge_label g e))
           (attrs_to_string (edge_attr e))));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
