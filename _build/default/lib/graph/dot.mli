(** Graphviz DOT export (used to regenerate the paper's Figure 1). *)

val to_string :
  ?name:string ->
  ?edge_attr:(Digraph.edge -> (string * string) list) ->
  ?vertex_attr:(Digraph.vertex -> (string * string) list) ->
  Digraph.t ->
  string
(** Directed graph in DOT syntax; vertex and edge labels come from the
    graph, extra attributes from the callbacks. *)
