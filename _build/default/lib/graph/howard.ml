let epsilon = 1e-9

(* Evaluate a policy (one out-edge per vertex, -1 where none): for every
   vertex, the ratio of the policy cycle it reaches and its potential.
   Returns (lambda, potential, cycle_of: vertex -> representative policy
   cycle as an edge list). *)
let evaluate g ~cost ~time policy =
  let n = Digraph.vertex_count g in
  let lambda = Array.make n infinity in
  let potential = Array.make n 0.0 in
  let cycle_repr = Array.make n [] in
  let state = Array.make n `White in
  let rec walk v path =
    (* Follow policy edges until a settled vertex or a cycle closes. *)
    match state.(v) with
    | `Done -> ()
    | `Gray ->
      (* Closed a cycle: [path] holds edges newest-first; the cycle is
         the suffix of [path] from v's edge. *)
      let rec cut acc = function
        | [] -> acc
        | e :: rest ->
          let acc = e :: acc in
          if Digraph.edge_src g e = v then acc else cut acc rest
      in
      let cycle = cut [] path in
      let total_cost = List.fold_left (fun a e -> a + cost e) 0 cycle in
      let total_time = List.fold_left (fun a e -> a + time e) 0 cycle in
      let lam = float_of_int total_cost /. float_of_int total_time in
      (* Potentials around the cycle: fix v at 0, propagate backwards
         along the cycle (d(u) = w(e) - lam*t(e) + d(dst e)). *)
      lambda.(v) <- lam;
      potential.(v) <- 0.0;
      cycle_repr.(v) <- cycle;
      state.(v) <- `Done;
      let rec assign = function
        | [] -> ()
        | e :: rest ->
          let u = Digraph.edge_src g e and x = Digraph.edge_dst g e in
          if state.(u) <> `Done then begin
            (* dst potential is known once we process edges cycle-end
               first; recurse to the end first. *)
            assign rest;
            lambda.(u) <- lam;
            potential.(u) <-
              float_of_int (cost e) -. (lam *. float_of_int (time e)) +. potential.(x);
            cycle_repr.(u) <- cycle;
            state.(u) <- `Done
          end
          else assign rest
      in
      assign cycle
    | `White ->
      state.(v) <- `Gray;
      (match policy.(v) with
      | -1 ->
        (* Dead end: no cycle reachable through the policy. *)
        state.(v) <- `Done;
        lambda.(v) <- infinity
      | e ->
        let x = Digraph.edge_dst g e in
        walk x (e :: path);
        if state.(v) <> `Done then begin
          (* Tail vertex: inherits the cycle it reaches. *)
          lambda.(v) <- lambda.(x);
          potential.(v) <-
            float_of_int (cost e) -. (lambda.(x) *. float_of_int (time e)) +. potential.(x);
          cycle_repr.(v) <- cycle_repr.(x);
          state.(v) <- `Done
        end)
  in
  for v = 0 to n - 1 do
    walk v []
  done;
  (lambda, potential, cycle_repr)

let minimum_cycle_ratio g ~cost ~time =
  let n = Digraph.vertex_count g in
  if n = 0 then None
  else begin
    (* Initial policy: any out-edge that stays inside the vertex's SCC so
       a policy path can always close a cycle; -1 if none exists. *)
    let comp = Scc.component_ids g in
    let policy = Array.make n (-1) in
    for v = 0 to n - 1 do
      policy.(v) <-
        (match
           List.find_opt (fun e -> comp.(Digraph.edge_dst g e) = comp.(v)) (Digraph.out_edges g v)
         with
        | Some e -> e
        | None -> -1)
    done;
    if Array.for_all (fun e -> e = -1) policy then None
    else begin
      let max_iterations = (n * Digraph.edge_count g) + 16 in
      let rec iterate k =
        let lambda, potential, cycle_repr = evaluate g ~cost ~time policy in
        let improved = ref false in
        Digraph.iter_edges g (fun e ->
            let u = Digraph.edge_src g e and x = Digraph.edge_dst g e in
            if comp.(u) = comp.(x) && lambda.(x) < infinity then begin
              if lambda.(x) < lambda.(u) -. epsilon then begin
                policy.(u) <- e;
                improved := true
              end
              else if
                abs_float (lambda.(x) -. lambda.(u)) <= epsilon
                && float_of_int (cost e)
                   -. (lambda.(u) *. float_of_int (time e))
                   +. potential.(x)
                   < potential.(u) -. epsilon
              then begin
                policy.(u) <- e;
                improved := true
              end
            end);
        if !improved && k < max_iterations then iterate (k + 1)
        else (lambda, cycle_repr)
      in
      let lambda, cycle_repr = iterate 0 in
      let best = ref None in
      for v = 0 to n - 1 do
        if lambda.(v) < infinity then
          match !best with
          | None -> best := Some v
          | Some b -> if lambda.(v) < lambda.(b) then best := Some v
      done;
      match !best with
      | None -> None
      | Some v ->
        let cycle = cycle_repr.(v) in
        Some (Cycle_ratio.cycle_ratio g ~cost ~time cycle, cycle)
    end
  end
