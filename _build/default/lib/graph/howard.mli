(** Howard's policy iteration for the minimum cycle ratio.

    An independent solver for the same problem as {!Cycle_ratio.minimum}
    — min over cycles of (total cost / total time) — using the
    policy-iteration scheme standard in performance analysis of timed
    event graphs.  Each vertex holds one chosen outgoing edge (the
    policy); evaluation finds the policy graph's cycles and potentials,
    improvement switches any edge that beats the Bellman equation, and
    the process converges to the optimum.

    Kept alongside the Lawler binary search as a cross-check (the test
    suite verifies all three implementations agree) and because policy
    iteration is typically the fastest in practice on large graphs. *)

val minimum_cycle_ratio :
  Digraph.t ->
  cost:(Digraph.edge -> int) ->
  time:(Digraph.edge -> int) ->
  (Cycle_ratio.ratio * Digraph.edge list) option
(** [None] when the graph is acyclic; otherwise the exact optimal ratio
    and a witnessing cycle.  Same preconditions as
    {!Cycle_ratio.minimum}: non-negative times, no zero-time cycle. *)
