(* Karp 1978.  For each SCC with vertex set S (size k), pick any root r in S
   and compute d.(j).(v) = maximum weight of a j-edge walk from r to v inside
   the SCC.  Then

     max cycle mean = max over v with d.(k).(v) finite of
                        min over j < k of (d.(k).(v) - d.(j).(v)) / (k - j).
*)

let component_mean g ~weight comp_vertices =
  let in_comp = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace in_comp v ()) comp_vertices;
  let k = List.length comp_vertices in
  match comp_vertices with
  | [] -> None
  | root :: _ ->
    let index = Hashtbl.create 16 in
    List.iteri (fun i v -> Hashtbl.replace index v i) comp_vertices;
    let d = Array.make_matrix (k + 1) k neg_infinity in
    d.(0).(Hashtbl.find index root) <- 0.0;
    for j = 1 to k do
      List.iter
        (fun v ->
          let iv = Hashtbl.find index v in
          List.iter
            (fun e ->
              let w = Digraph.edge_dst g e in
              if Hashtbl.mem in_comp w then begin
                let iw = Hashtbl.find index w in
                if d.(j - 1).(iv) > neg_infinity then begin
                  let cand = d.(j - 1).(iv) +. weight e in
                  if cand > d.(j).(iw) then d.(j).(iw) <- cand
                end
              end)
            (Digraph.out_edges g v))
        comp_vertices
    done;
    let best = ref None in
    for iv = 0 to k - 1 do
      if d.(k).(iv) > neg_infinity then begin
        let worst = ref infinity in
        for j = 0 to k - 1 do
          if d.(j).(iv) > neg_infinity then begin
            let mean = (d.(k).(iv) -. d.(j).(iv)) /. float_of_int (k - j) in
            if mean < !worst then worst := mean
          end
        done;
        if !worst < infinity then
          match !best with
          | None -> best := Some !worst
          | Some b -> if !worst > b then best := Some !worst
      end
    done;
    !best

let maximum_cycle_mean g ~weight =
  let comps = Scc.components g in
  let candidates =
    List.filter_map
      (fun comp ->
        if Scc.is_trivial g comp then None else component_mean g ~weight comp)
      comps
  in
  match candidates with
  | [] -> None
  | x :: rest -> Some (List.fold_left max x rest)

let minimum_cycle_mean g ~weight =
  match maximum_cycle_mean g ~weight:(fun e -> -.weight e) with
  | None -> None
  | Some m -> Some (-.m)
