(** Karp's maximum cycle mean.

    The maximum over elementary cycles of (total weight / number of edges),
    computed per strongly connected component with Karp's O(V*E) dynamic
    program.  The classic companion to the cycle-ratio search; also the
    special case [time = 1] of {!Cycle_ratio.maximum}. *)

val maximum_cycle_mean : Digraph.t -> weight:(Digraph.edge -> float) -> float option
(** [None] when the graph is acyclic. *)

val minimum_cycle_mean : Digraph.t -> weight:(Digraph.edge -> float) -> float option
