(* Iterative Tarjan so deep graphs do not overflow the OCaml stack. *)

let components g =
  let n = Digraph.vertex_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let comps = ref [] in
  (* Explicit DFS frames: vertex plus the list of successors still to visit. *)
  let visit root =
    let frames = Stack.create () in
    let open_vertex v =
      index.(v) <- !next_index;
      lowlink.(v) <- !next_index;
      incr next_index;
      Stack.push v stack;
      on_stack.(v) <- true;
      Stack.push (v, ref (Digraph.succ g v)) frames
    in
    open_vertex root;
    while not (Stack.is_empty frames) do
      let v, todo = Stack.top frames in
      match !todo with
      | w :: rest ->
        todo := rest;
        if index.(w) = -1 then open_vertex w
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
      | [] ->
        ignore (Stack.pop frames);
        if not (Stack.is_empty frames) then begin
          let parent, _ = Stack.top frames in
          lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
        end;
        if lowlink.(v) = index.(v) then begin
          let rec collect acc =
            let w = Stack.pop stack in
            on_stack.(w) <- false;
            if w = v then w :: acc else collect (w :: acc)
          in
          comps := collect [] :: !comps
        end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  List.rev !comps

let component_ids g =
  let ids = Array.make (Digraph.vertex_count g) (-1) in
  List.iteri (fun i comp -> List.iter (fun v -> ids.(v) <- i) comp) (components g);
  ids

let is_trivial g = function
  | [ v ] -> not (List.exists (fun w -> w = v) (Digraph.succ g v))
  | [] | _ :: _ :: _ -> false
