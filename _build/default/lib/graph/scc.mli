(** Strongly connected components (Tarjan's algorithm, iterative). *)

val components : Digraph.t -> Digraph.vertex list list
(** Components in reverse topological order of the condensation (a vertex's
    component appears after the components it can reach).  Each component
    lists its vertices in discovery order. *)

val component_ids : Digraph.t -> int array
(** [ids.(v)] is the index of [v]'s component in [components]. *)

val is_trivial : Digraph.t -> Digraph.vertex list -> bool
(** A single vertex with no self-loop (hence no cycle through it). *)
