type result =
  | Distances of float array * Digraph.edge option array
  | Negative_cycle of Digraph.edge list

(* Walk predecessor edges back from [start]; when a vertex repeats, the
   portion walked between the two visits is a cycle of the predecessor
   graph.  Returns [None] when the chain ends at a root first (possible for
   some witnesses; the caller then tries the next witness). *)
let cycle_through_preds g pred start =
  let n = Digraph.vertex_count g in
  let seen = Hashtbl.create 16 in
  let rec walk v steps =
    if steps > n + 1 then None
    else if Hashtbl.mem seen v then Some v
    else begin
      Hashtbl.add seen v ();
      match pred.(v) with
      | Some e -> walk (Digraph.edge_src g e) (steps + 1)
      | None -> None
    end
  in
  match walk start 0 with
  | None -> None
  | Some inside ->
    let rec collect v acc =
      match pred.(v) with
      | Some e ->
        let u = Digraph.edge_src g e in
        if u = inside then Some (e :: acc) else collect u (e :: acc)
      | None -> None
    in
    collect inside []

let rec bellman_ford_core g ~weight ~init_dist =
  let n = Digraph.vertex_count g in
  let dist = init_dist in
  let pred = Array.make n None in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < n do
    changed := false;
    incr passes;
    Digraph.iter_edges g (fun e ->
        let u = Digraph.edge_src g e and v = Digraph.edge_dst g e in
        if dist.(u) < infinity then begin
          let d = dist.(u) +. weight e in
          if d < dist.(v) then begin
            dist.(v) <- d;
            pred.(v) <- Some e;
            changed := true
          end
        end)
  done;
  (* Extra pass: any further relaxation proves a reachable negative cycle. *)
  let witnesses = ref [] in
  Digraph.iter_edges g (fun e ->
      let u = Digraph.edge_src g e and v = Digraph.edge_dst g e in
      if dist.(u) < infinity && dist.(u) +. weight e < dist.(v) then begin
        dist.(v) <- dist.(u) +. weight e;
        pred.(v) <- Some e;
        witnesses := v :: !witnesses
      end);
  let rec first_cycle = function
    | [] -> None
    | w :: rest ->
      (match cycle_through_preds g pred w with
      | Some cycle -> Some cycle
      | None -> first_cycle rest)
  in
  match first_cycle !witnesses with
  | Some cycle -> Negative_cycle cycle
  | None ->
    if !witnesses <> [] then
      (* A relaxation happened but no pred-cycle surfaced yet: keep
         relaxing; the predecessor graph must develop a cycle within n
         further passes. *)
      bellman_ford_core g ~weight ~init_dist:dist
    else Distances (dist, pred)

let bellman_ford g ~weight ~src =
  let n = Digraph.vertex_count g in
  let dist = Array.make n infinity in
  dist.(src) <- 0.0;
  bellman_ford_core g ~weight ~init_dist:dist

let potentials g ~weight =
  let dist = Array.make (Digraph.vertex_count g) 0.0 in
  bellman_ford_core g ~weight ~init_dist:dist

let dijkstra g ~weight ~src =
  Digraph.iter_edges g (fun e ->
      if weight e < 0.0 then invalid_arg "Shortest_path.dijkstra: negative weight");
  let n = Digraph.vertex_count g in
  let dist = Array.make n infinity in
  let pred = Array.make n None in
  let visited = Array.make n false in
  dist.(src) <- 0.0;
  (* A linear-scan "priority queue" is ample at our graph sizes. *)
  let rec loop () =
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if (not visited.(v)) && dist.(v) < infinity
         && (!best = -1 || dist.(v) < dist.(!best))
      then best := v
    done;
    if !best >= 0 then begin
      let u = !best in
      visited.(u) <- true;
      List.iter
        (fun e ->
          let v = Digraph.edge_dst g e in
          let d = dist.(u) +. weight e in
          if d < dist.(v) then begin
            dist.(v) <- d;
            pred.(v) <- Some e
          end)
        (Digraph.out_edges g u);
      loop ()
    end
  in
  loop ();
  (dist, pred)

let path_to g pred v =
  let rec collect v acc =
    match pred.(v) with
    | None -> acc
    | Some e -> collect (Digraph.edge_src g e) (e :: acc)
  in
  collect v []
