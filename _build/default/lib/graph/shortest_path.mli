(** Shortest paths and negative-cycle detection. *)

type result =
  | Distances of float array * Digraph.edge option array
      (** [Distances (dist, pred)]: [dist.(v)] is the shortest distance from
          the source set ([infinity] when unreachable) and [pred.(v)] the
          final edge of one shortest path. *)
  | Negative_cycle of Digraph.edge list
      (** A reachable cycle of negative total weight, as an edge list. *)

val bellman_ford : Digraph.t -> weight:(Digraph.edge -> float) -> src:Digraph.vertex -> result

val potentials : Digraph.t -> weight:(Digraph.edge -> float) -> result
(** Bellman-Ford from a virtual source connected to every vertex with weight
    0; reaches everything, so it detects negative cycles anywhere in the
    graph and otherwise returns finite potentials for all vertices. *)

val dijkstra : Digraph.t -> weight:(Digraph.edge -> float) -> src:Digraph.vertex -> float array * Digraph.edge option array
(** Classic Dijkstra.  @raise Invalid_argument on a negative edge weight. *)

val path_to : Digraph.t -> Digraph.edge option array -> Digraph.vertex -> Digraph.edge list
(** Reconstruct the edge path ending at the given vertex from a predecessor
    array, source-first. *)
