let sort g =
  let comps = Scc.components g in
  match List.find_opt (fun comp -> not (Scc.is_trivial g comp)) comps with
  | Some comp -> Error comp
  | None ->
    (* Components come in reverse topological order of the condensation;
       with all components trivial, reversing gives a vertex order with all
       edges forward. *)
    Ok (List.rev_map (function [ v ] -> v | _ -> assert false) comps)

let is_dag g = match sort g with Ok _ -> true | Error _ -> false
