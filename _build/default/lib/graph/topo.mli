(** Topological ordering. *)

val sort : Digraph.t -> (Digraph.vertex list, Digraph.vertex list) result
(** [Ok order] lists all vertices with every edge going forward;
    [Error comp] returns a non-trivial strongly connected component that
    prevents ordering. *)

val is_dag : Digraph.t -> bool
