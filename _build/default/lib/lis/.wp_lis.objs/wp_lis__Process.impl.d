lib/lis/process.ml: Array
