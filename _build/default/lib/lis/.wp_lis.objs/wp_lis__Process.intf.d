lib/lis/process.mli:
