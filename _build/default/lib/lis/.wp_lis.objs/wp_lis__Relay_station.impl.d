lib/lis/relay_station.ml: Printf Token Wp_util
