lib/lis/relay_station.mli: Token
