lib/lis/shell.ml: Array List Printf Process Token Wp_util
