lib/lis/shell.mli: Process Token Trace
