lib/lis/token.ml: Format
