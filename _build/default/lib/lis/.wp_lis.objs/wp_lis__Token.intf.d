lib/lis/token.mli: Format
