lib/lis/trace.ml: Format List Token
