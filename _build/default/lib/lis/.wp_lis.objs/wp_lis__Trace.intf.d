lib/lis/trace.mli: Format Token
