type instance = {
  required : unit -> bool array;
  fire : int option array -> int array;
  halted : unit -> bool;
}

type t = {
  name : string;
  input_names : string array;
  output_names : string array;
  reset_outputs : int array;
  make : unit -> instance;
}

let n_inputs t = Array.length t.input_names
let n_outputs t = Array.length t.output_names

let index_of names port =
  let rec scan i =
    if i >= Array.length names then raise Not_found
    else if names.(i) = port then i
    else scan (i + 1)
  in
  scan 0

let input_index t port = index_of t.input_names port
let output_index t port = index_of t.output_names port

let validate t =
  if Array.length t.reset_outputs <> n_outputs t then
    invalid_arg (t.name ^ ": reset_outputs arity mismatch");
  let inst = t.make () in
  if Array.length (inst.required ()) <> n_inputs t then
    invalid_arg (t.name ^ ": required() arity mismatch")

let all_required n =
  let mask = Array.make n true in
  fun () -> mask

let get inputs i =
  match inputs.(i) with
  | Some v -> v
  | None -> invalid_arg "Process: reading an input that was not required"

let pure_source ~name ~output_name ~reset f =
  {
    name;
    input_names = [||];
    output_names = [| output_name |];
    reset_outputs = [| reset |];
    make =
      (fun () ->
        let k = ref 0 in
        {
          required = all_required 0;
          fire =
            (fun _ ->
              let v = f !k in
              incr k;
              [| v |]);
          halted = (fun () -> false);
        });
  }

let sink ~name ~input_name =
  {
    name;
    input_names = [| input_name |];
    output_names = [||];
    reset_outputs = [||];
    make =
      (fun () ->
        {
          required = all_required 1;
          fire = (fun _ -> [||]);
          halted = (fun () -> false);
        });
  }

let unary ~name ~input_name ~output_name ~reset f =
  {
    name;
    input_names = [| input_name |];
    output_names = [| output_name |];
    reset_outputs = [| reset |];
    make =
      (fun () ->
        {
          required = all_required 1;
          fire = (fun inputs -> [| f (get inputs 0) |]);
          halted = (fun () -> false);
        });
  }
