(** Sequential processes (IP blocks) and their communication profile.

    A process is a clocked state machine exchanging one machine word per
    port per firing.  The same process definition is used unmodified in the
    golden system and inside WP1/WP2 wrappers — exactly the paper's premise
    ("allowing the use of IP blocks without modification").  The [required]
    function is the {e oracle}: the minimal knowledge of the communication
    profile that the WP2 wrapper exploits; plain wrappers ignore it.

    Contract for implementors:

    - [fire] is called once per firing (= one clock cycle of the original
      synchronous system).  The array holds [Some v] for every port the
      oracle required at this firing — plain wrappers supply all ports —
      and the process must not read ports it did not require.
    - [fire] returns one word per output port; the wrapper turns them into
      valid tokens (or into tau when the wrapper stalls, in which case
      [fire] is not called at all).
    - [required] must be a pure function of the current state.
    - [reset_outputs] are the reset values of the output registers; they
      travel the channels as the tokens consumed at the peers' first
      firing. *)

type instance = {
  required : unit -> bool array;
      (** Which input ports the next firing will read (length [n_inputs]). *)
  fire : int option array -> int array;
      (** Consume the required inputs, advance the state, produce all
          outputs (length [n_outputs]). *)
  halted : unit -> bool;
      (** True once the process has reached a terminal state; the engine
          uses it to stop a simulation. *)
}

type t = {
  name : string;
  input_names : string array;
  output_names : string array;
  reset_outputs : int array;
  make : unit -> instance;  (** Fresh state at reset. *)
}

val n_inputs : t -> int
val n_outputs : t -> int

val input_index : t -> string -> int
(** @raise Not_found if no port has that name. *)

val output_index : t -> string -> int

val validate : t -> unit
(** Checks arity consistency of names/reset values and that a fresh
    instance's [required] has the right length.
    @raise Invalid_argument on violation. *)

val all_required : int -> unit -> bool array
(** Convenience oracle for processes that read every input every firing. *)

val pure_source : name:string -> output_name:string -> reset:int -> (int -> int) -> t
(** [pure_source ~name ~output_name ~reset f] emits [f k] at firing [k];
    no inputs.  Handy for tests and examples. *)

val sink : name:string -> input_name:string -> t
(** Consumes its single input forever. *)

val unary :
  name:string ->
  input_name:string ->
  output_name:string ->
  reset:int ->
  (int -> int) ->
  t
(** A combinational-style stage: each firing consumes one word [v] and
    emits [f v]. *)
