(** The relay station: a stallable wire-pipelining buffer.

    A relay station (RS) segments a long wire.  Besides the pipeline
    register it holds one auxiliary register so that a valid datum arriving
    while the downstream is stopped is not lost; only when both registers
    are occupied does the stop propagate upstream (paper section 1,
    following Carloni's ICCAD'99 FSM).

    Per-clock protocol, in the order the simulation engine uses it:

    + [stop_out rs ~stop_in] — combinational back-pressure for this cycle:
      asserted exactly when the RS is full and the downstream stop is
      asserted.  The upstream must not emit a valid token while it is
      asserted.
    + [emit rs ~stop_in] — the token presented downstream this cycle:
      [Void] when stopped or empty, otherwise the oldest buffered datum,
      which is consumed.
    + [accept rs token] — latch the token arriving from upstream at the end
      of the cycle.  Voids are absorbed; a valid token is buffered.
      @raise Failure if a valid token arrives while no register is free
      (the upstream violated the stop protocol). *)

type 'a t

val create : ?name:string -> unit -> 'a t

val name : 'a t -> string
val occupancy : 'a t -> int
(** 0, 1 or 2 buffered valid data. *)

val is_full : 'a t -> bool

val stop_out : 'a t -> stop_in:bool -> bool
val emit : 'a t -> stop_in:bool -> 'a Token.t
val accept : 'a t -> 'a Token.t -> unit

val reset : 'a t -> unit
