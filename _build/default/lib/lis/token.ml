type 'a t =
  | Void
  | Valid of 'a

let is_valid = function Valid _ -> true | Void -> false
let is_void t = not (is_valid t)

let value = function Valid v -> Some v | Void -> None

let value_exn = function
  | Valid v -> v
  | Void -> invalid_arg "Token.value_exn: void token"

let map f = function Void -> Void | Valid v -> Valid (f v)

let equal eq a b =
  match (a, b) with
  | Void, Void -> true
  | Valid x, Valid y -> eq x y
  | Void, Valid _ | Valid _, Void -> false

let pp pp_v ppf = function
  | Void -> Format.pp_print_string ppf "tau"
  | Valid v -> pp_v ppf v
