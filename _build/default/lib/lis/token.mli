(** Tokens travelling on latency-insensitive channels.

    A channel realisation is a sequence of clock-cycle slots, each carrying
    either an informative event [Valid v] or the void symbol tau ([Void])
    that wire pipelining introduces (paper, section 1). *)

type 'a t =
  | Void          (** tau: no informative event this clock cycle *)
  | Valid of 'a

val is_valid : 'a t -> bool
val is_void : 'a t -> bool

val value : 'a t -> 'a option
val value_exn : 'a t -> 'a
(** @raise Invalid_argument on [Void]. *)

val map : ('a -> 'b) -> 'a t -> 'b t
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
