type 'a t = 'a Token.t list

let tau_filter t = List.filter_map Token.value t

let informative_count t =
  List.fold_left (fun acc tok -> if Token.is_valid tok then acc + 1 else acc) 0 t

let n_equivalent ~eq ~n t1 t2 =
  if n < 0 then invalid_arg "Trace.n_equivalent: negative n";
  let rec first_n k = function
    | _ when k = 0 -> Some []
    | [] -> None
    | x :: rest ->
      (match first_n (k - 1) rest with None -> None | Some tail -> Some (x :: tail))
  in
  match (first_n n (tau_filter t1), first_n n (tau_filter t2)) with
  | Some a, Some b -> List.for_all2 eq a b
  | None, _ | _, None -> false

let equivalent_prefix ~eq t1 t2 =
  let rec common k a b =
    match (a, b) with
    | x :: a', y :: b' when eq x y -> common (k + 1) a' b'
    | _, _ -> k
  in
  common 0 (tau_filter t1) (tau_filter t2)

let equivalent_upto_shorter ~eq t1 t2 =
  let a = tau_filter t1 and b = tau_filter t2 in
  equivalent_prefix ~eq t1 t2 = min (List.length a) (List.length b)

let throughput t =
  match List.length t with
  | 0 -> 0.0
  | cycles -> float_of_int (informative_count t) /. float_of_int cycles

let pp pp_v ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ".")
       (Token.pp pp_v))
    t
