(** Signal traces and the paper's (N-)equivalence relations.

    A trace is the realisation of one channel over a simulation: the
    cycle-by-cycle sequence of tokens it carried.  Two systems are
    N-equivalent when, after filtering out the void symbols, every signal
    agrees on its first N informative events; they are equivalent when this
    holds for every N (paper, section 1). *)

type 'a t = 'a Token.t list
(** Oldest event first. *)

val tau_filter : 'a t -> 'a list
(** The informative events in order. *)

val informative_count : 'a t -> int

val n_equivalent : eq:('a -> 'a -> bool) -> n:int -> 'a t -> 'a t -> bool
(** Both tau-filtered traces must contain at least [n] events and agree on
    the first [n].  @raise Invalid_argument if [n < 0]. *)

val equivalent_prefix : eq:('a -> 'a -> bool) -> 'a t -> 'a t -> int
(** Length of the longest common prefix of the tau-filtered traces. *)

val equivalent_upto_shorter : eq:('a -> 'a -> bool) -> 'a t -> 'a t -> bool
(** The shorter filtered trace is a prefix of the longer one: the strongest
    equivalence observable from finite simulations of different lengths. *)

val throughput : 'a t -> float
(** Informative events per clock cycle; 0.0 on the empty trace. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
