lib/rtl/vhdl.ml: Array Buffer List Option Printf String Wp_lis Wp_soc
