lib/rtl/vhdl.mli: Wp_lis
