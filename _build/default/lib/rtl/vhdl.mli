(** Synthesizable VHDL for the latency-insensitive building blocks.

    The paper's artifacts were VHDL: "wrappers with and without the
    additional oracle ... were described in VHDL and simulated", then
    synthesised on a 130 nm library.  This module regenerates that
    artifact from the executable models — a parametric relay station, a
    per-process shell (plain or oracle), and a self-checking relay-station
    testbench — so the OCaml semantics and the RTL stay one codebase.

    The generated code is plain VHDL-93 with numeric_std, one clock, one
    synchronous active-high reset, and the valid/stop channel protocol of
    {!Wp_lis.Relay_station}:

    - a channel is [data : std_logic_vector(width-1 downto 0)] plus
      [valid : std_logic] downstream and [stop : std_logic] upstream;
    - a relay station captures an incoming valid datum even while
      stopped (the auxiliary register) and asserts [stop] upstream only
      when both registers are full;
    - a shell holds one FIFO per input, fires the enclosed IP when every
      required input is buffered and no output is stopped, and emits
      tau (valid = '0') otherwise. *)

val relay_station : unit -> string
(** Entity [relay_station] with generic [width]. *)

val relay_station_testbench : unit -> string
(** Self-checking testbench: pushes a known burst through a relay station
    under a stop pattern and asserts losslessness and order. *)

val shell : ?oracle:bool -> Wp_lis.Process.t -> string
(** Entity [<name>_shell] wrapping the process: channel ports for every
    input and output (widths taken from {!port_width}), component
    declaration for the enclosed IP, per-input FIFOs, the synchroniser,
    and — when [oracle] is set — the required-mask port driven by the IP
    (the paper's "processing signal"). *)

val port_width : block:string -> port:string -> int
(** Bus width of a case-study port, from {!Wp_core.Area.case_study_widths}
    conventions; 32 for unknown ports. *)

val case_study_package : oracle:bool -> (string * string) list
(** The full RTL drop for the case study: one (filename, contents) pair
    per block shell, plus the relay station and its testbench. *)
