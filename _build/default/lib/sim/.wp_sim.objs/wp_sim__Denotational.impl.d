lib/sim/denotational.ml: Array List Network Wp_lis
