lib/sim/denotational.mli: Engine Network Wp_lis
