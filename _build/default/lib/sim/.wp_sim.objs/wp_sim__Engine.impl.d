lib/sim/engine.ml: Array List Network Printf Wp_lis
