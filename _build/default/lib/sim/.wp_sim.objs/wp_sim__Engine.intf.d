lib/sim/engine.mli: Network Wp_lis
