lib/sim/monitor.ml: Array Engine List Network Printf Wp_lis Wp_util
