lib/sim/monitor.mli: Engine
