lib/sim/network.ml: Array Fun List Printf Wp_graph Wp_lis
