lib/sim/network.mli: Wp_graph Wp_lis
