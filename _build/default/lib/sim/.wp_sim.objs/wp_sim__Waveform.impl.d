lib/sim/waveform.ml: Array Buffer Char Engine List Network Printf String Wp_lis
