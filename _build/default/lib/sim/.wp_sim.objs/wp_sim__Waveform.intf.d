lib/sim/waveform.mli: Engine Wp_lis
