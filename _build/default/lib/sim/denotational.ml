module Process = Wp_lis.Process
module Token = Wp_lis.Token

type run = {
  rounds : int;
  halted : bool;
  streams : (string * int list) list;
}

let run ?(max_rounds = 100_000) net =
  Network.validate net;
  let n = Network.node_count net in
  let instances =
    Array.init n (fun node -> (Network.node_process net node).Process.make ())
  in
  let out_arity node = Array.length (Network.node_process net node).Process.output_names in
  (* current.(node).(port): the word the node emitted last round. *)
  let current =
    Array.init n (fun node -> Array.copy (Network.node_process net node).Process.reset_outputs)
  in
  let channels = Network.channels net in
  let history = List.map (fun c -> (c, ref [])) channels in
  let record () =
    List.iter
      (fun (c, acc) ->
        let src_node, src_port = Network.channel_src net c in
        acc := current.(src_node).(src_port) :: !acc)
      history
  in
  (* Inputs of a node this round: the words its producers emitted last
     round — exactly one channel per input port (validated). *)
  let inputs_of node =
    let proc = Network.node_process net node in
    let arr = Array.make (Array.length proc.Process.input_names) None in
    List.iter
      (fun c ->
        let dst_node, dst_port = Network.channel_dst net c in
        if dst_node = node then begin
          let src_node, src_port = Network.channel_src net c in
          arr.(dst_port) <- Some current.(src_node).(src_port)
        end)
      channels;
    arr
  in
  let rec loop round =
    if Array.exists (fun inst -> inst.Process.halted ()) instances then (round, true)
    else if round >= max_rounds then (round, false)
    else begin
      (* The producers' round-(k-1) outputs feed round k: snapshot all
         inputs before firing anyone. *)
      let all_inputs = Array.init n inputs_of in
      for node = 0 to n - 1 do
        let words = instances.(node).Process.fire all_inputs.(node) in
        assert (Array.length words = out_arity node);
        current.(node) <- words
      done;
      record ();
      loop (round + 1)
    end
  in
  (* Streams record emissions only (round 0 = each process's first
     firing), exactly like [Shell.output_trace]; the reset values are
     visible to consumers through [current]'s initialisation, matching
     the engine's initial tokens. *)
  let rounds, halted = loop 0 in
  {
    rounds;
    halted;
    streams =
      List.map
        (fun (c, acc) -> (Network.channel_label net c, List.rev !acc))
        history;
  }

let stream run label = List.assoc label run.streams

let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | x :: a', y :: b' -> x = y && is_prefix a' b'
  | _ :: _, [] -> false

let engine_matches reference _engine traces =
  List.for_all
    (fun (label, trace) ->
      match List.assoc_opt label reference.streams with
      | None -> false
      | Some expected ->
        is_prefix (List.filter_map Token.value trace) expected)
    traces
