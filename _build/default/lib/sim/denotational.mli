(** Denotational reference semantics: the ideal synchronous system.

    Evaluates a network by plain synchronous unrolling — every process
    fires every round, consuming the tokens its producers emitted the
    previous round (reset values on round 0).  No shells, no FIFOs, no
    relay stations, no back-pressure: this is the textbook semantics the
    latency-insensitive machinery must preserve, implemented with none of
    the engine's code.

    Its uses:

    - an independent oracle: the tau-filtered stream of any {!Engine} run
      (any relay-station budget, either wrapper discipline) must be a
      prefix of the denotational stream of the same channel;
    - an exact reference for the golden cycle count: the engine with zero
      relay stations must halt on the same round. *)

type run = {
  rounds : int;                        (** rounds evaluated *)
  halted : bool;                       (** a process reached its terminal state *)
  streams : (string * int list) list;  (** per channel label, oldest first *)
}

val run : ?max_rounds:int -> Network.t -> run
(** Evaluate until a process halts or [max_rounds] (default 100_000).
    @raise Invalid_argument if the network fails {!Network.validate}. *)

val stream : run -> string -> int list
(** Stream of a channel by label.  @raise Not_found. *)

val engine_matches :
  run -> Engine.t -> (string * int Wp_lis.Token.t list) list -> bool
(** [engine_matches reference engine traces] — convenience used by tests:
    every tau-filtered engine trace is a prefix of the reference stream
    with the same label. *)
