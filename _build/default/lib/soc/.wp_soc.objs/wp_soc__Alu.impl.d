lib/soc/alu.ml: Array Codec Isa Wp_lis
