lib/soc/alu.mli: Wp_lis
