lib/soc/asm.ml: Array Buffer Format Hashtbl Isa List Printf String
