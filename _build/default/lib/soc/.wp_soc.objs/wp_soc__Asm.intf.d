lib/soc/asm.mli: Format Isa
