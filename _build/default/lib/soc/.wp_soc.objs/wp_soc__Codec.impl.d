lib/soc/codec.ml: Isa Printf
