lib/soc/codec.mli: Isa
