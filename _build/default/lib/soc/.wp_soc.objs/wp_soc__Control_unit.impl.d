lib/soc/control_unit.ml: Array Codec Isa Latency List Queue Wp_lis
