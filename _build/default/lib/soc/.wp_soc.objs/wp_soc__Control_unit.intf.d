lib/soc/control_unit.mli: Wp_lis
