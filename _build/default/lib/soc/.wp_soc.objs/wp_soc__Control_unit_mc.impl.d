lib/soc/control_unit_mc.ml: Array Codec Isa Latency Wp_lis
