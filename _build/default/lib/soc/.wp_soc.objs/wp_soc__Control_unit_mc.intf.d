lib/soc/control_unit_mc.mli: Wp_lis
