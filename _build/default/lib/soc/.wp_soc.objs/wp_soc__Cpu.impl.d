lib/soc/cpu.ml: Array Datapath Program Wp_lis Wp_sim
