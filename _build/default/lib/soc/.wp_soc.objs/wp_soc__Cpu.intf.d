lib/soc/cpu.mli: Datapath Program Wp_lis Wp_sim
