lib/soc/datapath.ml: Alu Array Control_unit Control_unit_mc Dcache Icache List Printf Program Programs Regfile String Wp_graph Wp_sim
