lib/soc/datapath.mli: Program Wp_sim
