lib/soc/dcache.ml: Array Codec Latency List Printf Wp_lis
