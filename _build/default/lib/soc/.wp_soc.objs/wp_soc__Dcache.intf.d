lib/soc/dcache.mli: Wp_lis
