lib/soc/icache.ml: Array Codec Isa Printf Wp_lis
