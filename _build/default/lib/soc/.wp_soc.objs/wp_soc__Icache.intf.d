lib/soc/icache.mli: Isa Wp_lis
