lib/soc/isa.ml: Format Printf
