lib/soc/isa.mli: Format
