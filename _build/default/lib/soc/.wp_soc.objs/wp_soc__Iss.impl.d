lib/soc/iss.ml: Array Isa List Printf
