lib/soc/iss.mli: Isa
