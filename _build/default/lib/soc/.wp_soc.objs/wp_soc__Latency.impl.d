lib/soc/latency.ml:
