lib/soc/latency.mli:
