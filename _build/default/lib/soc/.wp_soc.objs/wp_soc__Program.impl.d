lib/soc/program.ml: Array Asm Isa Iss
