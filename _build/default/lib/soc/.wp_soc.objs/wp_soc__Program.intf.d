lib/soc/program.mli: Isa Iss
