lib/soc/programs.ml: Array List Printf Program Wp_util
