lib/soc/programs.mli: Program
