lib/soc/random_program.ml: Array Asm Isa List Printf Program Wp_util
