lib/soc/random_program.mli: Program
