lib/soc/regfile.ml: Array Codec Latency Wp_lis
