lib/soc/regfile.mli: Wp_lis
