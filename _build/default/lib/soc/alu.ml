module Process = Wp_lis.Process

let eval_cond ~eq ~lt = function
  | Isa.Always -> true
  | Isa.Eq -> eq
  | Isa.Ne -> not eq
  | Isa.Lt -> lt
  | Isa.Ge -> not lt
  | Isa.Le -> lt || eq
  | Isa.Gt -> not (lt || eq)

let process () =
  {
    Process.name = "ALU";
    input_names = [| "op"; "src1"; "src2" |];
    output_names = [| "result"; "flags"; "addr" |];
    reset_outputs = [| 0; Codec.bubble; 0 |];
    make =
      (fun () ->
        let pending = ref None in
        let flags_eq = ref false and flags_lt = ref false in
        {
          Process.required = Process.all_required 3;
          fire =
            (fun inputs ->
              let value i = match inputs.(i) with Some v -> v | None -> assert false in
              let op_word = value 0 and a = value 1 and b = value 2 in
              let result = ref 0 and flags_out = ref Codec.bubble and addr = ref 0 in
              (match !pending with
              | None -> ()
              | Some { Codec.kind; imm } ->
                (match kind with
                | Codec.K_add -> result := a + b
                | Codec.K_sub -> result := a - b
                | Codec.K_mul -> result := a * b
                | Codec.K_addi -> result := a + imm
                | Codec.K_imm -> result := imm
                | Codec.K_addr -> addr := a + imm
                | Codec.K_cmp ->
                  flags_eq := a = b;
                  flags_lt := a < b
                | Codec.K_br cond ->
                  flags_out :=
                    Codec.pack_flags (Some (eval_cond ~eq:!flags_eq ~lt:!flags_lt cond))));
              pending := Codec.unpack_alu_op op_word;
              [| !result; !flags_out; !addr |]);
          halted = (fun () -> false);
        });
  }
