(** Arithmetic-logic unit block (ALU).

    Inputs: ["op"] (operation word from the CU), ["src1"], ["src2"]
    (operand values from the RF).  Outputs: ["result"] (to the RF),
    ["flags"] (branch resolutions, to the CU), ["addr"] (effective
    addresses, to the DC).

    The operation received at firing [j] is buffered one firing and
    executed at [j+1], when the matching operands arrive (see
    {!Latency}).  The flags register (equal/less-than) lives here: [Cmp]
    updates it, [Br] evaluates its condition against it and reports the
    resolution on ["flags"].

    The ALU has no useful oracle — its next operation is only known from
    the very tokens it consumes — so it requires all inputs every firing;
    WP2 gains on ALU channels come from the peers' oracles. *)

val process : unit -> Wp_lis.Process.t
