type error = {
  line : int;
  message : string;
}

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Err of error

let fail line fmt = Printf.ksprintf (fun message -> raise (Err { line; message })) fmt

(* --- lexical helpers ---------------------------------------------- *)

let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

let is_space c = c = ' ' || c = '\t' || c = '\r'

let trim = String.trim

(* Split a statement into label part and body. *)
let split_label line_no s =
  match String.index_opt s ':' with
  | None -> (None, s)
  | Some i ->
    let label = trim (String.sub s 0 i) in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    if label = "" then fail line_no "empty label";
    String.iter
      (fun c ->
        if not (c = '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'))
        then fail line_no "bad character in label %S" label)
      label;
    (Some label, rest)

(* Tokenise an operand list: split on commas, trim. *)
let operands s =
  if trim s = "" then []
  else List.map trim (String.split_on_char ',' s)

let mnemonic_and_rest line_no body =
  let body = trim body in
  if body = "" then None
  else begin
    let i = ref 0 in
    let n = String.length body in
    while !i < n && not (is_space body.[!i]) do
      incr i
    done;
    let m = String.lowercase_ascii (String.sub body 0 !i) in
    let rest = if !i >= n then "" else String.sub body !i (n - !i) in
    ignore line_no;
    Some (m, rest)
  end

let parse_reg line_no s =
  let s = trim s in
  let bad () = fail line_no "expected a register, got %S" s in
  if String.length s < 2 || (s.[0] <> 'r' && s.[0] <> 'R') then bad ();
  match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
  | Some r when r >= 0 && r <= 15 -> r
  | Some r -> fail line_no "register r%d out of range" r
  | None -> bad ()

let parse_int line_no s =
  match int_of_string_opt (trim s) with
  | Some v -> v
  | None -> fail line_no "expected an integer, got %S" (trim s)

(* "imm(rX)" for memory operands. *)
let parse_mem line_no s =
  let s = trim s in
  match String.index_opt s '(' with
  | None -> fail line_no "expected imm(rN), got %S" s
  | Some i ->
    if String.length s = 0 || s.[String.length s - 1] <> ')' then
      fail line_no "expected imm(rN), got %S" s;
    let imm_part = String.sub s 0 i in
    let reg_part = String.sub s (i + 1) (String.length s - i - 2) in
    let imm = if trim imm_part = "" then 0 else parse_int line_no imm_part in
    (parse_reg line_no reg_part, imm)

type pending =
  | Ready of Isa.instr
  | Branch of Isa.cond * string (* label or integer, resolved in pass 2 *)

let parse_statement line_no m rest =
  let ops = operands rest in
  let arity n =
    if List.length ops <> n then
      fail line_no "%s expects %d operand(s), got %d" m n (List.length ops)
  in
  let reg i = parse_reg line_no (List.nth ops i) in
  match m with
  | "nop" -> arity 0; Ready Isa.Nop
  | "halt" -> arity 0; Ready Isa.Halt
  | "ldi" -> arity 2; Ready (Isa.Ldi (reg 0, parse_int line_no (List.nth ops 1)))
  | "add" -> arity 3; Ready (Isa.Add (reg 0, reg 1, reg 2))
  | "sub" -> arity 3; Ready (Isa.Sub (reg 0, reg 1, reg 2))
  | "mul" -> arity 3; Ready (Isa.Mul (reg 0, reg 1, reg 2))
  | "addi" -> arity 3; Ready (Isa.Addi (reg 0, reg 1, parse_int line_no (List.nth ops 2)))
  | "cmp" -> arity 2; Ready (Isa.Cmp (reg 0, reg 1))
  | "ld" ->
    arity 2;
    let ra, imm = parse_mem line_no (List.nth ops 1) in
    Ready (Isa.Ld (reg 0, ra, imm))
  | "st" ->
    arity 2;
    let ra, imm = parse_mem line_no (List.nth ops 0) in
    Ready (Isa.St (ra, imm, parse_reg line_no (List.nth ops 1)))
  | _ ->
    if String.length m > 3 && String.sub m 0 3 = "br." then begin
      arity 1;
      let cond =
        match String.sub m 3 (String.length m - 3) with
        | "al" -> Isa.Always
        | "eq" -> Isa.Eq
        | "ne" -> Isa.Ne
        | "lt" -> Isa.Lt
        | "ge" -> Isa.Ge
        | "le" -> Isa.Le
        | "gt" -> Isa.Gt
        | c -> fail line_no "unknown branch condition %S" c
      in
      Branch (cond, List.nth ops 0)
    end
    else fail line_no "unknown mnemonic %S" m

let assemble source =
  try
    let lines = String.split_on_char '\n' source in
    let labels = Hashtbl.create 16 in
    let statements = ref [] in
    (* Pass 1: collect statements and label addresses. *)
    List.iteri
      (fun idx raw ->
        let line_no = idx + 1 in
        let body = trim (strip_comment raw) in
        if body <> "" then begin
          let label, rest = split_label line_no body in
          (match label with
          | Some l ->
            if Hashtbl.mem labels l then fail line_no "duplicate label %S" l;
            Hashtbl.replace labels l (List.length !statements)
          | None -> ());
          match mnemonic_and_rest line_no rest with
          | None -> ()
          | Some (m, operand_text) ->
            statements := (line_no, parse_statement line_no m operand_text) :: !statements
        end)
      lines;
    (* Pass 2: resolve branch targets. *)
    let resolve line_no target =
      match int_of_string_opt (trim target) with
      | Some addr -> addr
      | None ->
        (match Hashtbl.find_opt labels (trim target) with
        | Some addr -> addr
        | None -> fail line_no "unknown label %S" (trim target))
    in
    let instrs =
      List.rev_map
        (fun (line_no, p) ->
          let instr =
            match p with
            | Ready i -> i
            | Branch (cond, target) -> Isa.Br (cond, resolve line_no target)
          in
          (* Round-trip through the encoder to surface range errors with a
             line number. *)
          (match Isa.encode instr with
          | exception Invalid_argument msg -> fail line_no "%s" msg
          | _ -> ());
          instr)
        !statements
    in
    Ok (Array.of_list instrs)
  with Err e -> Error e

let assemble_exn source =
  match assemble source with
  | Ok instrs -> instrs
  | Error e -> failwith (Format.asprintf "Asm: %a" pp_error e)

let disassemble instrs =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun addr i -> Buffer.add_string buf (Printf.sprintf "%4d: %s\n" addr (Isa.to_string i)))
    instrs;
  Buffer.contents buf
