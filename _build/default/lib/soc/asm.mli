(** Two-pass text assembler for the minimal ISA.

    Syntax, one statement per line:
    {v
      ; comment                        -- also after a statement
      label:  add  r1, r2, r3
              addi r1, r2, -5
              ldi  r4, 100
              ld   r5, 4(r2)           -- r5 <- mem[r2 + 4]
              st   4(r2), r5           -- mem[r2 + 4] <- r5
              cmp  r1, r2
              br.lt label              -- conditions: al eq ne lt ge le gt
              nop
              halt
    v}
    Branch targets may be labels or absolute integers. *)

type error = {
  line : int;     (** 1-based source line *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit

val assemble : string -> (Isa.instr array, error) result
(** Assemble a whole source text. *)

val assemble_exn : string -> Isa.instr array
(** @raise Failure with a rendered error. *)

val disassemble : Isa.instr array -> string
(** One instruction per line, prefixed by its address. *)
