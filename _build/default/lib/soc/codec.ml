type rf_ctrl = {
  ra : int;
  rb : int;
  rv : int;
  wb1 : int option;
  wb2 : int option;
}

type alu_kind =
  | K_add
  | K_sub
  | K_mul
  | K_cmp
  | K_imm
  | K_addi
  | K_addr
  | K_br of Isa.cond

type alu_op = {
  kind : alu_kind;
  imm : int;
}

type mem_kind =
  | M_load
  | M_store

let bubble = 0

let wrap payload =
  assert (payload >= 0);
  (payload lsl 1) lor 1

let unwrap word = if word land 1 = 0 then None else Some (word lsr 1)

let pack_fetch = function
  | None -> bubble
  | Some addr ->
    if addr < 0 then invalid_arg "Codec.pack_fetch: negative address";
    wrap addr

let unpack_fetch = unwrap

let pack_instr = function
  | None -> bubble
  | Some word -> wrap word

let unpack_instr = unwrap

(* rf_ctrl payload: ra(4) rb(4) rv(4) wb1_en(1) wb1_rd(4) wb2_en(1) wb2_rd(4). *)
let pack_rf_ctrl = function
  | None -> bubble
  | Some c ->
    let flag_reg = function None -> (0, 0) | Some rd -> (1, rd) in
    let wb1_en, wb1_rd = flag_reg c.wb1 in
    let wb2_en, wb2_rd = flag_reg c.wb2 in
    wrap
      (c.ra lor (c.rb lsl 4) lor (c.rv lsl 8) lor (wb1_en lsl 12) lor (wb1_rd lsl 13)
      lor (wb2_en lsl 17)
      lor (wb2_rd lsl 18))

let unpack_rf_ctrl word =
  match unwrap word with
  | None -> None
  | Some p ->
    let field off width = (p lsr off) land ((1 lsl width) - 1) in
    let opt_reg en_off rd_off = if field en_off 1 = 1 then Some (field rd_off 4) else None in
    Some
      {
        ra = field 0 4;
        rb = field 4 4;
        rv = field 8 4;
        wb1 = opt_reg 12 13;
        wb2 = opt_reg 17 18;
      }

(* alu_op payload: kind(3) cond(3) imm(18, biased by 2^17). *)
let imm_bias = 1 lsl 17

let kind_code = function
  | K_add -> 0
  | K_sub -> 1
  | K_mul -> 2
  | K_cmp -> 3
  | K_imm -> 4
  | K_addi -> 5
  | K_addr -> 6
  | K_br _ -> 7

let cond_code = function
  | Isa.Always -> 0
  | Isa.Eq -> 1
  | Isa.Ne -> 2
  | Isa.Lt -> 3
  | Isa.Ge -> 4
  | Isa.Le -> 5
  | Isa.Gt -> 6

let cond_of_code = function
  | 0 -> Isa.Always
  | 1 -> Isa.Eq
  | 2 -> Isa.Ne
  | 3 -> Isa.Lt
  | 4 -> Isa.Ge
  | 5 -> Isa.Le
  | 6 -> Isa.Gt
  | c -> invalid_arg (Printf.sprintf "Codec: bad condition %d" c)

let pack_alu_op = function
  | None -> bubble
  | Some { kind; imm } ->
    if imm < Isa.imm_min || imm > Isa.imm_max then
      invalid_arg (Printf.sprintf "Codec.pack_alu_op: immediate %d" imm);
    let cond = match kind with K_br c -> cond_code c | _ -> 0 in
    wrap (kind_code kind lor (cond lsl 3) lor ((imm + imm_bias) lsl 6))

let unpack_alu_op word =
  match unwrap word with
  | None -> None
  | Some p ->
    let kind =
      match p land 7 with
      | 0 -> K_add
      | 1 -> K_sub
      | 2 -> K_mul
      | 3 -> K_cmp
      | 4 -> K_imm
      | 5 -> K_addi
      | 6 -> K_addr
      | 7 -> K_br (cond_of_code ((p lsr 3) land 7))
      | _ -> assert false
    in
    Some { kind; imm = ((p lsr 6) land ((1 lsl 18) - 1)) - imm_bias }

let pack_mem_cmd = function
  | None -> bubble
  | Some M_load -> wrap 0
  | Some M_store -> wrap 1

let unpack_mem_cmd word =
  match unwrap word with
  | None -> None
  | Some 0 -> Some M_load
  | Some 1 -> Some M_store
  | Some k -> invalid_arg (Printf.sprintf "Codec: bad memory command %d" k)

let pack_flags = function
  | None -> bubble
  | Some taken -> wrap (if taken then 1 else 0)

let unpack_flags word =
  match unwrap word with
  | None -> None
  | Some b -> Some (b = 1)

let no_reads = { ra = 0; rb = 0; rv = 0; wb1 = None; wb2 = None }

let dispatch_of_instr = function
  | Isa.Nop | Isa.Halt -> (None, None, None)
  | Isa.Ldi (rd, imm) ->
    (Some { no_reads with wb1 = Some rd }, Some { kind = K_imm; imm }, None)
  | Isa.Add (rd, ra, rb) ->
    (Some { no_reads with ra; rb; wb1 = Some rd }, Some { kind = K_add; imm = 0 }, None)
  | Isa.Sub (rd, ra, rb) ->
    (Some { no_reads with ra; rb; wb1 = Some rd }, Some { kind = K_sub; imm = 0 }, None)
  | Isa.Mul (rd, ra, rb) ->
    (Some { no_reads with ra; rb; wb1 = Some rd }, Some { kind = K_mul; imm = 0 }, None)
  | Isa.Addi (rd, ra, imm) ->
    (Some { no_reads with ra; wb1 = Some rd }, Some { kind = K_addi; imm }, None)
  | Isa.Cmp (ra, rb) -> (Some { no_reads with ra; rb }, Some { kind = K_cmp; imm = 0 }, None)
  | Isa.Ld (rd, ra, imm) ->
    (Some { no_reads with ra; wb2 = Some rd }, Some { kind = K_addr; imm }, Some M_load)
  | Isa.St (ra, imm, rv) ->
    (Some { no_reads with ra; rv }, Some { kind = K_addr; imm }, Some M_store)
  | Isa.Br (c, _target) -> (None, Some { kind = K_br c; imm = 0 }, None)
