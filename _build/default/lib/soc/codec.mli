(** Bit-packing of the control words travelling between blocks.

    Control channels carry one machine word per clock; a bubble (the
    word emitted when the CU dispatches nothing) is encoded as 0 and every
    informative word has its low bit set, exactly like a validity bit on a
    hardware bus.  Pure data channels (operands, results, store and load
    data) carry raw two's-complement words and need no codec: their
    consumers know from their own schedules which tags are meaningful. *)

(** What the register file must do for one instruction. *)
type rf_ctrl = {
  ra : int;            (** first operand register (0 when unused) *)
  rb : int;            (** second operand register *)
  rv : int;            (** register streamed to the DC for a store *)
  wb1 : int option;    (** ALU writeback destination *)
  wb2 : int option;    (** load writeback destination *)
}

(** ALU operation classes. *)
type alu_kind =
  | K_add
  | K_sub
  | K_mul
  | K_cmp              (** update the flags register *)
  | K_imm              (** pass the immediate through *)
  | K_addi
  | K_addr             (** effective address: first operand + immediate *)
  | K_br of Isa.cond   (** evaluate the condition against the flags *)

type alu_op = {
  kind : alu_kind;
  imm : int;
}

type mem_kind =
  | M_load
  | M_store

val bubble : int
(** The word carried by control channels on dispatch bubbles (= 0). *)

val pack_fetch : int option -> int
val unpack_fetch : int -> int option
(** Fetch address, or [None] for a bubble slot.
    @raise Invalid_argument on a negative address. *)

val pack_instr : int option -> int
val unpack_instr : int -> int option
(** Encoded instruction word from the IC. *)

val pack_rf_ctrl : rf_ctrl option -> int
val unpack_rf_ctrl : int -> rf_ctrl option

val pack_alu_op : alu_op option -> int
val unpack_alu_op : int -> alu_op option
(** @raise Invalid_argument if the immediate exceeds {!Isa.imm_max}. *)

val pack_mem_cmd : mem_kind option -> int
val unpack_mem_cmd : int -> mem_kind option

val pack_flags : bool option -> int
val unpack_flags : int -> bool option
(** Branch resolution: [Some taken], or [None] on non-branch tags. *)

val dispatch_of_instr : Isa.instr -> rf_ctrl option * alu_op option * mem_kind option
(** The three control words the CU emits when dispatching an instruction.
    [Nop] and [Halt] dispatch nothing. *)
