(** Pipelined control unit (CU).

    Inputs: ["instr"] (fetch responses from the IC), ["flags"] (branch
    resolutions from the ALU).  Outputs: ["fetch"] (to the IC), ["ctrl"]
    (to the RF), ["op"] (to the ALU), ["cmd"] (to the DC).

    Microarchitecture (all offsets in firings, see {!Latency}):

    - {b Fetch}: up to [queue_capacity] instructions in flight (decode
      queue + outstanding fetches); the fetch response issued at firing
      [k] is consumed at [k + 2].  Fetch runs ahead speculatively across
      conditional branches (fall-through path).
    - {b Dispatch}: in order, one per firing, gated by a register
      scoreboard (an ALU destination is readable 2 dispatch tags later, a
      load destination 3) and by at most one unresolved branch.
    - {b Branches}: [br.al] redirects at dispatch (queue and in-flight
      fetches squashed).  Conditional branches dispatch a condition
      evaluation to the ALU and resolve 3 firings later; on taken, the
      speculative fall-through work is squashed.
    - {b Halt}: dispatching [halt] stops fetch and dispatch; the CU keeps
      firing for {!Latency.drain} firings so in-flight effects settle,
      then reports halted.

    Oracle: ["flags"] is required only at the firing where a branch
    resolution is due — knowledge derived purely from the CU's own state,
    the paper's WP2 enabler.  ["instr"] is required every firing: whether
    a fetch response is useful cannot be decided without decoding it, so
    the fetch loop is deliberately not oracle-optimised — which reproduces
    the paper's CU-IC rows (no WP2 gain on the fetch loop in the pipelined
    machine). *)

val queue_capacity : int
(** Decode-queue + in-flight fetch budget (4). *)

val process : ?predict_taken_backward:bool -> text_length:int -> unit -> Wp_lis.Process.t
(** [text_length] bounds the PC (speculative fetch past the end of the
    program emits bubbles).  [predict_taken_backward] (default false)
    enables static BTFN branch prediction: backward conditional branches
    redirect fetch to their target at dispatch; a misprediction in either
    direction flushes the speculative fetches (the paper's processor has
    no predictor — this is the future-work variant, compared in the
    bench).  @raise Invalid_argument if [text_length] is not positive. *)
