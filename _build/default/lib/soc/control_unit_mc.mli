(** Multicycle control unit.

    Same ports as {!Control_unit}, but strictly one instruction at a time
    through the classic phase sequence — fetch, wait, decode+dispatch,
    execute, memory/writeback — so every channel is exercised at most once
    per 5-6 firings.  This is the machine in which the paper observes the
    largest WP2 gain on the CU-IC loop: the fetch response is needed in
    exactly one phase, so the multicycle oracle {e does} skip the
    ["instr"] port on the other firings (contrast with {!Control_unit}).

    Schedule for an instruction fetched at firing [t]:
    dispatch at [t+2]; next fetch at [t+5] for ALU/store instructions, at
    [t+6] for loads (writeback settles one firing later) and, for
    conditional branches, at the resolution firing [t+5]. *)

val process : text_length:int -> Wp_lis.Process.t
(** @raise Invalid_argument if [text_length] is not positive. *)
