module Engine = Wp_sim.Engine
module Monitor = Wp_sim.Monitor

type outcome =
  | Completed
  | Deadlocked
  | Out_of_cycles

type result = {
  cycles : int;
  outcome : outcome;
  memory : int array;
  registers : int array;
  result_ok : bool;
  report : Monitor.report;
}

let no_relay_stations (_ : Datapath.connection) = 0

let run ?(capacity = 2) ?(max_cycles = 2_000_000) ~machine ~mode ~rs (program : Program.t) =
  let dp = Datapath.build ~machine ~rs program in
  let engine = Engine.create ~capacity ~mode dp.Datapath.network in
  let outcome, cycles =
    match Engine.run ~max_cycles engine with
    | Engine.Halted c -> (Completed, c)
    | Engine.Deadlocked c -> (Deadlocked, c)
    | Engine.Exhausted c -> (Out_of_cycles, c)
  in
  let memory =
    match !(dp.Datapath.memory_tap) with Some get -> get () | None -> [||]
  in
  let registers =
    match !(dp.Datapath.register_tap) with Some get -> get () | None -> [||]
  in
  let result_ok =
    outcome = Completed
    &&
    let base, len = program.Program.result_region in
    let expected = Program.expected_result program in
    len = 0
    || (Array.length memory >= base + len
       && Array.for_all2 ( = ) expected (Array.sub memory base len))
  in
  { cycles; outcome; memory; registers; result_ok; report = Monitor.collect engine }

let run_golden ~machine program =
  run ~machine ~mode:Wp_lis.Shell.Plain ~rs:no_relay_stations program

let throughput ~golden result =
  if result.cycles = 0 then 0.0
  else float_of_int golden.cycles /. float_of_int result.cycles
