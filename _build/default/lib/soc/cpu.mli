(** Top-level runner: execute a program on a wire-pipelined machine.

    This ties everything together: build the datapath, run the engine,
    check the architectural result against the instruction-set simulator,
    and report cycle counts — the primitive behind every Table 1 entry. *)

type outcome =
  | Completed
  | Deadlocked
  | Out_of_cycles

type result = {
  cycles : int;
  outcome : outcome;
  memory : int array;        (** final data memory *)
  registers : int array;     (** final architectural registers *)
  result_ok : bool;          (** result region matches the ISS reference *)
  report : Wp_sim.Monitor.report;
}

val run :
  ?capacity:int ->
  ?max_cycles:int ->
  machine:Datapath.machine ->
  mode:Wp_lis.Shell.mode ->
  rs:(Datapath.connection -> int) ->
  Program.t ->
  result
(** [capacity] is the shell FIFO bound (default 2); [max_cycles] defaults
    to 2_000_000. *)

val run_golden : machine:Datapath.machine -> Program.t -> result
(** Zero relay stations everywhere, plain wrappers: the reference system
    whose cycle count defines throughput 1.0. *)

val throughput : golden:result -> result -> float
(** [golden.cycles / wp.cycles]. *)

val no_relay_stations : Datapath.connection -> int
(** The all-zero RS budget. *)
