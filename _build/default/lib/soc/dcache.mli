(** Data cache/memory block (DC).

    Inputs: ["cmd"] (memory command from the CU), ["addr"] (effective
    address from the ALU), ["store_data"] (datum from the RF).  Output:
    ["load"] (loaded values, to the RF).

    A command consumed at firing [d] schedules the store datum at [d + 1]
    and the address — and the access itself — at [d + 2] ({!Latency}).
    Like the RF, this schedule is the block's WP2 oracle: ["addr"] and
    ["store_data"] are required only at scheduled firings, while ["cmd"]
    is always required.

    [tap] exposes the memory image after a run for result checking. *)

val process :
  ?tap:(unit -> int array) option ref ->
  mem_size:int ->
  mem_init:(int * int) list ->
  unit ->
  Wp_lis.Process.t
(** @raise Invalid_argument on a non-positive size or an out-of-range
    initialiser. *)
