module Process = Wp_lis.Process

let process ~text =
  if Array.length text = 0 then invalid_arg "Icache.process: empty program";
  let imem = Array.map Isa.encode text in
  {
    Process.name = "IC";
    input_names = [| "fetch" |];
    output_names = [| "instr" |];
    reset_outputs = [| Codec.bubble |];
    make =
      (fun () ->
        {
          Process.required = Process.all_required 1;
          fire =
            (fun inputs ->
              let fetch_word =
                match inputs.(0) with Some w -> w | None -> assert false
              in
              let instr =
                match Codec.unpack_fetch fetch_word with
                | None -> Codec.bubble
                | Some addr ->
                  if addr < 0 || addr >= Array.length imem then
                    failwith (Printf.sprintf "IC: fetch address %d out of range" addr)
                  else Codec.pack_instr (Some imem.(addr))
              in
              [| instr |]);
          halted = (fun () -> false);
        });
  }
