(** Instruction cache/memory block (IC).

    One input port ["fetch"] (address or bubble from the CU), one output
    port ["instr"] (encoded instruction or bubble), one firing of latency.
    The whole program text is resident — the paper's case study models the
    IC as an ideal single-cycle instruction store. *)

val process : text:Isa.instr array -> Wp_lis.Process.t
(** @raise Invalid_argument on an empty program. *)
