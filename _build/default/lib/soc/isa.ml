type reg = int

type cond =
  | Always
  | Eq
  | Ne
  | Lt
  | Ge
  | Le
  | Gt

type instr =
  | Nop
  | Halt
  | Ldi of reg * int
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Addi of reg * reg * int
  | Cmp of reg * reg
  | Ld of reg * reg * int
  | St of reg * int * reg
  | Br of cond * int

let pp_cond ppf c =
  Format.pp_print_string ppf
    (match c with
    | Always -> "al"
    | Eq -> "eq"
    | Ne -> "ne"
    | Lt -> "lt"
    | Ge -> "ge"
    | Le -> "le"
    | Gt -> "gt")

let pp ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Halt -> Format.pp_print_string ppf "halt"
  | Ldi (rd, imm) -> Format.fprintf ppf "ldi r%d, %d" rd imm
  | Add (rd, ra, rb) -> Format.fprintf ppf "add r%d, r%d, r%d" rd ra rb
  | Sub (rd, ra, rb) -> Format.fprintf ppf "sub r%d, r%d, r%d" rd ra rb
  | Mul (rd, ra, rb) -> Format.fprintf ppf "mul r%d, r%d, r%d" rd ra rb
  | Addi (rd, ra, imm) -> Format.fprintf ppf "addi r%d, r%d, %d" rd ra imm
  | Cmp (ra, rb) -> Format.fprintf ppf "cmp r%d, r%d" ra rb
  | Ld (rd, ra, imm) -> Format.fprintf ppf "ld r%d, %d(r%d)" rd imm ra
  | St (ra, imm, rv) -> Format.fprintf ppf "st %d(r%d), r%d" imm ra rv
  | Br (c, target) -> Format.fprintf ppf "br.%a %d" pp_cond c target

let to_string i = Format.asprintf "%a" pp i
let equal = ( = )

(* --- encoding ----------------------------------------------------- *)

let imm_bits = 17
let imm_min = -(1 lsl (imm_bits - 1))
let imm_max = (1 lsl (imm_bits - 1)) - 1

let opcode = function
  | Nop -> 0
  | Halt -> 1
  | Ldi _ -> 2
  | Add _ -> 3
  | Sub _ -> 4
  | Mul _ -> 5
  | Addi _ -> 6
  | Cmp _ -> 7
  | Ld _ -> 8
  | St _ -> 9
  | Br _ -> 10

let cond_code = function
  | Always -> 0
  | Eq -> 1
  | Ne -> 2
  | Lt -> 3
  | Ge -> 4
  | Le -> 5
  | Gt -> 6

let cond_of_code = function
  | 0 -> Always
  | 1 -> Eq
  | 2 -> Ne
  | 3 -> Lt
  | 4 -> Ge
  | 5 -> Le
  | 6 -> Gt
  | c -> invalid_arg (Printf.sprintf "Isa.decode: bad condition %d" c)

let check_reg r = if r < 0 || r > 15 then invalid_arg (Printf.sprintf "Isa: register r%d" r)

let check_imm v =
  if v < imm_min || v > imm_max then invalid_arg (Printf.sprintf "Isa: immediate %d" v)

(* Layout (low to high): imm(17) | rb(4) | ra(4) | rd(4) | opcode(5). *)
let encode i =
  let fields rd ra rb imm =
    check_reg rd;
    check_reg ra;
    check_reg rb;
    check_imm imm;
    let imm_u = imm land ((1 lsl imm_bits) - 1) in
    imm_u lor (rb lsl 17) lor (ra lsl 21) lor (rd lsl 25) lor (opcode i lsl 29)
  in
  match i with
  | Nop | Halt -> fields 0 0 0 0
  | Ldi (rd, imm) -> fields rd 0 0 imm
  | Add (rd, ra, rb) | Sub (rd, ra, rb) | Mul (rd, ra, rb) -> fields rd ra rb 0
  | Addi (rd, ra, imm) -> fields rd ra 0 imm
  | Cmp (ra, rb) -> fields 0 ra rb 0
  | Ld (rd, ra, imm) -> fields rd ra 0 imm
  | St (ra, imm, rv) -> fields 0 ra rv imm
  | Br (c, target) -> fields (cond_code c) 0 0 target

let decode w =
  if w < 0 then invalid_arg "Isa.decode: negative word";
  let imm_u = w land ((1 lsl imm_bits) - 1) in
  let imm =
    if imm_u >= 1 lsl (imm_bits - 1) then imm_u - (1 lsl imm_bits) else imm_u
  in
  let rb = (w lsr 17) land 0xF in
  let ra = (w lsr 21) land 0xF in
  let rd = (w lsr 25) land 0xF in
  match (w lsr 29) land 0x1F with
  | 0 -> Nop
  | 1 -> Halt
  | 2 -> Ldi (rd, imm)
  | 3 -> Add (rd, ra, rb)
  | 4 -> Sub (rd, ra, rb)
  | 5 -> Mul (rd, ra, rb)
  | 6 -> Addi (rd, ra, imm)
  | 7 -> Cmp (ra, rb)
  | 8 -> Ld (rd, ra, imm)
  | 9 -> St (ra, imm, rb)
  | 10 -> Br (cond_of_code rd, imm)
  | op -> invalid_arg (Printf.sprintf "Isa.decode: bad opcode %d" op)

let reads = function
  | Nop | Halt | Ldi _ | Br _ -> []
  | Add (_, ra, rb) | Sub (_, ra, rb) | Mul (_, ra, rb) | Cmp (ra, rb) -> [ ra; rb ]
  | Addi (_, ra, _) | Ld (_, ra, _) -> [ ra ]
  | St (ra, _, rv) -> [ ra; rv ]

let writes = function
  | Nop | Halt | Cmp _ | St _ | Br _ -> None
  | Ldi (rd, _) | Add (rd, _, _) | Sub (rd, _, _) | Mul (rd, _, _) | Addi (rd, _, _)
  | Ld (rd, _, _) ->
    Some rd

let is_load = function Ld _ -> true | _ -> false
let is_store = function St _ -> true | _ -> false
let is_branch = function Br _ -> true | _ -> false
let sets_flags = function Cmp _ -> true | _ -> false
