(** The minimal instruction set of the case-study processor.

    16 general registers, word-addressed memory, arithmetic on machine
    words, compare-and-branch via a flags register that lives in the ALU.
    Immediates are 16-bit signed; branch targets are absolute instruction
    addresses resolved by the assembler. *)

type reg = int
(** Register index in [0, 15]. *)

type cond =
  | Always
  | Eq   (** last compare was equal *)
  | Ne
  | Lt   (** signed less-than *)
  | Ge
  | Le
  | Gt

type instr =
  | Nop
  | Halt
  | Ldi of reg * int          (** rd <- imm *)
  | Add of reg * reg * reg    (** rd <- ra + rb *)
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Addi of reg * reg * int   (** rd <- ra + imm *)
  | Cmp of reg * reg          (** set flags from ra - rb *)
  | Ld of reg * reg * int     (** rd <- mem[ra + imm] *)
  | St of reg * int * reg     (** mem[ra + imm] <- rv *)
  | Br of cond * int          (** if cond then pc <- target *)

val pp_cond : Format.formatter -> cond -> unit
val pp : Format.formatter -> instr -> unit
val to_string : instr -> string
val equal : instr -> instr -> bool

val encode : instr -> int
(** Pack into a word: opcode(5) | rd(4) | ra(4) | rb(4) | imm(17, signed).
    @raise Invalid_argument on out-of-range register or immediate. *)

val decode : int -> instr
(** @raise Invalid_argument on an unknown opcode or malformed word. *)

val imm_min : int
val imm_max : int
(** Range of representable immediates (also branch targets). *)

val reads : instr -> reg list
(** Source registers, in operand order. *)

val writes : instr -> reg option
(** Destination register, if any. *)

val is_load : instr -> bool
val is_store : instr -> bool
val is_branch : instr -> bool
val sets_flags : instr -> bool
