type result = {
  registers : int array;
  memory : int array;
  instructions : int;
}

exception Fault of string

let fault fmt = Printf.ksprintf (fun m -> raise (Fault m)) fmt

let run ?registers ?(max_steps = 10_000_000) ~mem_size ~mem_init text =
  let regs =
    match registers with
    | Some r ->
      if Array.length r <> 16 then fault "Iss: register file must have 16 entries";
      Array.copy r
    | None -> Array.make 16 0
  in
  let mem = Array.make mem_size 0 in
  List.iter
    (fun (addr, v) ->
      if addr < 0 || addr >= mem_size then fault "Iss: mem_init address %d out of range" addr;
      mem.(addr) <- v)
    mem_init;
  let flags_eq = ref false and flags_lt = ref false in
  let check_mem addr =
    if addr < 0 || addr >= mem_size then fault "Iss: memory access %d out of range" addr
  in
  let taken = function
    | Isa.Always -> true
    | Isa.Eq -> !flags_eq
    | Isa.Ne -> not !flags_eq
    | Isa.Lt -> !flags_lt
    | Isa.Ge -> not !flags_lt
    | Isa.Le -> !flags_lt || !flags_eq
    | Isa.Gt -> not (!flags_lt || !flags_eq)
  in
  let rec step pc count =
    if count > max_steps then fault "Iss: step limit exceeded";
    if pc < 0 || pc >= Array.length text then fault "Iss: PC %d out of range" pc;
    match text.(pc) with
    | Isa.Halt -> count + 1
    | Isa.Nop -> step (pc + 1) (count + 1)
    | Isa.Ldi (rd, imm) ->
      regs.(rd) <- imm;
      step (pc + 1) (count + 1)
    | Isa.Add (rd, ra, rb) ->
      regs.(rd) <- regs.(ra) + regs.(rb);
      step (pc + 1) (count + 1)
    | Isa.Sub (rd, ra, rb) ->
      regs.(rd) <- regs.(ra) - regs.(rb);
      step (pc + 1) (count + 1)
    | Isa.Mul (rd, ra, rb) ->
      regs.(rd) <- regs.(ra) * regs.(rb);
      step (pc + 1) (count + 1)
    | Isa.Addi (rd, ra, imm) ->
      regs.(rd) <- regs.(ra) + imm;
      step (pc + 1) (count + 1)
    | Isa.Cmp (ra, rb) ->
      flags_eq := regs.(ra) = regs.(rb);
      flags_lt := regs.(ra) < regs.(rb);
      step (pc + 1) (count + 1)
    | Isa.Ld (rd, ra, imm) ->
      let addr = regs.(ra) + imm in
      check_mem addr;
      regs.(rd) <- mem.(addr);
      step (pc + 1) (count + 1)
    | Isa.St (ra, imm, rv) ->
      let addr = regs.(ra) + imm in
      check_mem addr;
      mem.(addr) <- regs.(rv);
      step (pc + 1) (count + 1)
    | Isa.Br (cond, target) ->
      step (if taken cond then target else pc + 1) (count + 1)
  in
  let instructions = step 0 0 in
  { registers = regs; memory = mem; instructions }
