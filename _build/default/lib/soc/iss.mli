(** Instruction-set simulator: the functional golden reference.

    Executes a program directly (no pipeline, no timing) and returns the
    architectural state.  Every timed simulation — golden, WP1, WP2 — must
    leave memory in exactly this state; the test suite enforces it. *)

type result = {
  registers : int array;   (** 16 entries *)
  memory : int array;
  instructions : int;      (** dynamic instruction count, HALT included *)
}

exception Fault of string
(** Raised on PC or memory access out of range, or step-limit overrun. *)

val run :
  ?registers:int array ->
  ?max_steps:int ->
  mem_size:int ->
  mem_init:(int * int) list ->
  Isa.instr array ->
  result
(** [run ~mem_size ~mem_init text] starts at PC 0 with zeroed registers
    (or [registers]) and memory zero except the [mem_init] bindings.
    [max_steps] defaults to 10_000_000. *)
