(** Tag-latency constants of the datapath.

    Latency-insensitive design preserves behaviour at {e tag} granularity:
    a token emitted by a block at its firing [k] is consumed by the peer at
    the peer's firing [k+1], regardless of how many relay stations the wire
    carries.  All pipeline bookkeeping (scoreboard, writeback pipes, oracle
    schedules) is therefore expressed in these tag offsets, which hold in
    the golden system and in every wire-pipelined variant — the formal
    reason the blocks need no modification.

    Derivation, for an instruction dispatched by the CU at its firing [k]
    (one hop = +1 firing):

    - RF consumes the register-control token at firing [k+1], reads
      operands and emits them;
    - the ALU buffers its opcode one firing (received [k+1], paired with
      operands arriving tag [k+2]) and executes at firing [k+2];
    - the DC consumes the memory command at [k+1], the store datum at
      [k+2] and the effective address — emitted by the ALU at its firing
      [k+2] — at [k+3]; the DC therefore executes at its firing
      [k+3] = command + 2;
    - writebacks reach the RF at firing [k+3] (ALU result) and [k+4]
      (load). *)

val fetch_response : int
(** CU firings between issuing a fetch address and consuming the
    instruction word (= 2: one hop to the IC, one hop back). *)

val flags_response : int
(** CU firings between dispatching a branch and consuming its resolution
    (= 3: dispatch -> ALU executes at +2 -> flags consumed at +3). *)

val rf_alu_writeback : int
(** RF firings between consuming a control token and consuming the
    corresponding ALU result (= 2). *)

val rf_load_writeback : int
(** RF firings between consuming a control token and consuming the
    corresponding load datum (= 3). *)

val dc_store_data : int
(** DC firings between consuming a command and consuming the store datum
    (= 1). *)

val dc_address : int
(** DC firings between consuming a command and consuming the effective
    address — also the firing at which the DC executes the access (= 2). *)

val alu_ready_after : int
(** Dispatch-tag distance after which a register written by an ALU-class
    instruction may be read by a younger instruction (= 2: writeback is
    applied at RF firing [k+3], a reader dispatched at [k'] reads at
    [k'+1], writes apply before reads). *)

val load_ready_after : int
(** Same for a register written by a load (= 3). *)

val drain : int
(** CU firings to keep running after dispatching HALT so that in-flight
    stores and writebacks settle (= 6, one more than the longest
    dispatch-to-effect distance). *)
