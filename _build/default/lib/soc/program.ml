type t = {
  name : string;
  source : string;
  text : Isa.instr array;
  mem_size : int;
  mem_init : (int * int) list;
  result_region : int * int;
}

let of_source ~name ?(mem_size = 4096) ?(mem_init = []) ?(result_region = (0, 0)) source =
  { name; source; text = Asm.assemble_exn source; mem_size; mem_init; result_region }

let reference_run t = Iss.run ~mem_size:t.mem_size ~mem_init:t.mem_init t.text

let expected_result t =
  let base, len = t.result_region in
  Array.sub (reference_run t).Iss.memory base len
