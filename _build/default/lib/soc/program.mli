(** A runnable workload: assembled text plus initial data memory. *)

type t = {
  name : string;
  source : string;              (** assembly source, for display *)
  text : Isa.instr array;
  mem_size : int;
  mem_init : (int * int) list;  (** address/value pairs, rest zero *)
  result_region : int * int;    (** (base, length) holding the result *)
}

val of_source :
  name:string ->
  ?mem_size:int ->
  ?mem_init:(int * int) list ->
  ?result_region:int * int ->
  string ->
  t
(** Assemble [source]; defaults: [mem_size] 4096, empty init, result region
    (0, 0).  @raise Failure on assembly errors. *)

val reference_run : t -> Iss.result
(** Execute on the instruction-set simulator. *)

val expected_result : t -> int array
(** The [result_region] slice of the ISS's final memory. *)
