module Prng = Wp_util.Prng

(* Register plan: r1-r6 free data registers; r7 loop counter; r8-r9
   address registers with statically known values; r15 holds zero. *)
let data_regs = [| 1; 2; 3; 4; 5; 6 |]
let addr_regs = [| 8; 9 |]
let counter_reg = 7
let zero_reg = 15

let scratch_base = 16
let scratch_size = 24

let generate ?(length = 24) ~seed () =
  let prng = Prng.create ~seed in
  let data_reg () = data_regs.(Prng.int prng (Array.length data_regs)) in
  let addr_index () = Prng.int prng (Array.length addr_regs) in
  (* Known values of the address registers. *)
  let addr_values = Array.map (fun _ -> scratch_base) addr_regs in
  let code = ref [] in
  let count = ref 0 in
  let emit instr =
    code := instr :: !code;
    incr count
  in
  let here () = !count in
  (* Prologue: zero register, address registers, data registers. *)
  emit (Isa.Ldi (zero_reg, 0));
  Array.iteri
    (fun i r ->
      let v = scratch_base + Prng.int prng (scratch_size / 2) in
      addr_values.(i) <- v;
      emit (Isa.Ldi (r, v)))
    addr_regs;
  Array.iter (fun r -> emit (Isa.Ldi (r, Prng.int_in prng (-100) 100))) data_regs;
  (* Loop header. *)
  let iterations = Prng.int_in prng 1 3 in
  emit (Isa.Ldi (counter_reg, iterations));
  let loop_start = here () in
  (* Body: random segments.  Forward branches are emitted with a
     placeholder target and patched once the skip region is known; the
     generated instruction list is finalised into an array at the end. *)
  let patches = ref [] in
  let offset_for i =
    let a = addr_values.(i) in
    Prng.int_in prng (scratch_base - a) (scratch_base + scratch_size - 1 - a)
  in
  let emit_segment () =
    match Prng.int prng 8 with
    | 0 -> emit (Isa.Add (data_reg (), data_reg (), data_reg ()))
    | 1 -> emit (Isa.Sub (data_reg (), data_reg (), data_reg ()))
    | 2 -> emit (Isa.Mul (data_reg (), data_reg (), data_reg ()))
    | 3 -> emit (Isa.Addi (data_reg (), data_reg (), Prng.int_in prng (-20) 20))
    | 4 -> emit (Isa.Ldi (data_reg (), Prng.int_in prng (-100) 100))
    | 5 ->
      let i = addr_index () in
      emit (Isa.Ld (data_reg (), addr_regs.(i), offset_for i))
    | 6 ->
      let i = addr_index () in
      emit (Isa.St (addr_regs.(i), offset_for i, data_reg ()))
    | _ ->
      (* cmp + forward conditional branch over a couple of simple ops. *)
      emit (Isa.Cmp (data_reg (), data_reg ()));
      let branch_at = here () in
      let cond =
        match Prng.int prng 6 with
        | 0 -> Isa.Eq
        | 1 -> Isa.Ne
        | 2 -> Isa.Lt
        | 3 -> Isa.Ge
        | 4 -> Isa.Le
        | _ -> Isa.Gt
      in
      emit (Isa.Br (cond, 0) (* patched below *));
      for _ = 1 to Prng.int_in prng 1 3 do
        emit (Isa.Addi (data_reg (), data_reg (), Prng.int_in prng (-5) 5))
      done;
      patches := (branch_at, here ()) :: !patches
  in
  for _ = 1 to length do
    emit_segment ()
  done;
  (* Loop trailer. *)
  emit (Isa.Addi (counter_reg, counter_reg, -1));
  emit (Isa.Cmp (counter_reg, zero_reg));
  emit (Isa.Br (Isa.Gt, loop_start));
  (* Epilogue: spill the data registers so the result region captures the
     whole architectural outcome, then halt. *)
  Array.iteri
    (fun i r -> emit (Isa.St (addr_regs.(0), scratch_base - addr_values.(0) + i, r)))
    data_regs;
  emit Isa.Halt;
  let text = Array.of_list (List.rev !code) in
  List.iter
    (fun (at, target) ->
      match text.(at) with
      | Isa.Br (cond, _) -> text.(at) <- Isa.Br (cond, target)
      | Isa.Nop | Isa.Halt | Isa.Ldi _ | Isa.Add _ | Isa.Sub _ | Isa.Mul _ | Isa.Addi _
      | Isa.Cmp _ | Isa.Ld _ | Isa.St _ ->
        assert false)
    !patches;
  let mem_init =
    List.init scratch_size (fun i -> (scratch_base + i, Prng.int_in prng (-50) 50))
  in
  let source =
    ("; randomly generated program (seed " ^ string_of_int seed ^ ")\n")
    ^ Asm.disassemble text
  in
  {
    Program.name = Printf.sprintf "random_%d" seed;
    source;
    text;
    mem_size = 4096;
    mem_init;
    result_region = (scratch_base, scratch_size);
  }
