(** Random, guaranteed-halting programs for differential testing.

    The generator builds programs that exercise every instruction class —
    arithmetic (including overflowing multiply chains, which wrap
    identically in the ISS and in the blocks), loads and stores into a
    tracked scratch region, forward conditional branches, and one bounded
    counted loop — while remaining well-formed by construction: memory is
    only addressed through registers whose values the generator knows
    statically, and every branch target is resolved within the program.

    Used by the test suite to cross-check the ISS against both timed
    machines under random relay-station budgets. *)

val generate : ?length:int -> seed:int -> unit -> Program.t
(** [generate ~seed] builds a program of roughly [length] (default 24)
    body instructions plus prologue and loop scaffolding; equal seeds give
    equal programs.  The result region covers the whole scratch area. *)
