(** Register file block (RF).

    Inputs: ["ctrl"] (register control word from the CU), ["result"] (ALU
    writebacks), ["load"] (DC load writebacks).  Outputs: ["src1"],
    ["src2"] (operands, to the ALU) and ["store_data"] (to the DC).

    Writebacks are scheduled: a control word consumed at firing [r]
    announces an ALU writeback arriving at [r + 2] and a load writeback at
    [r + 3] ({!Latency}).  This schedule {e is} the RF's oracle: under WP2
    the ["result"] and ["load"] ports are required only at announced
    firings — the paper's "processing signal derived from the process
    operation".  Writes are applied before reads within a firing; when an
    ALU writeback and a load writeback collide on one firing the load
    (which belongs to the older instruction) is applied first.

    [tap] is set by each instantiation to expose the architectural
    registers to tests. *)

val process : ?tap:(unit -> int array) option ref -> unit -> Wp_lis.Process.t
