lib/util/anneal.ml: Prng
