lib/util/anneal.mli: Prng
