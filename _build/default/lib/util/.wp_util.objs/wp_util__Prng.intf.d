lib/util/prng.mli:
