lib/util/ring_fifo.ml: Array List
