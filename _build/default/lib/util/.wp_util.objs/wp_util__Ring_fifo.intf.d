lib/util/ring_fifo.mli:
