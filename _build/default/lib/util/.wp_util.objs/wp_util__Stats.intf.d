lib/util/stats.mli:
