lib/util/text_table.ml: Buffer List String
