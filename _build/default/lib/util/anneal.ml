module Prng = Prng

type 'state schedule = {
  steps : int;
  initial_temperature : float;
  cooling : float;
  plateau : int;
}

let default_schedule =
  { steps = 4000; initial_temperature = 1.0; cooling = 0.95; plateau = 40 }

type 'state result = {
  best : 'state;
  best_cost : float;
  accepted : int;
  evaluated : int;
}

let optimize ~prng ~init ~neighbor ~cost ?(schedule = default_schedule) () =
  let current = ref init and current_cost = ref (cost init) in
  let best = ref init and best_cost = ref !current_cost in
  let temperature = ref schedule.initial_temperature in
  let accepted = ref 0 in
  for step = 1 to schedule.steps do
    let candidate = neighbor prng !current in
    let candidate_cost = cost candidate in
    let delta = candidate_cost -. !current_cost in
    let accept =
      delta <= 0.0
      || Prng.float prng 1.0 < exp (-.delta /. max 1e-12 !temperature)
    in
    if accept then begin
      current := candidate;
      current_cost := candidate_cost;
      incr accepted;
      if candidate_cost < !best_cost then begin
        best := candidate;
        best_cost := candidate_cost
      end
    end;
    if step mod schedule.plateau = 0 then temperature := !temperature *. schedule.cooling
  done;
  { best = !best; best_cost = !best_cost; accepted = !accepted; evaluated = schedule.steps }
