(** Generic simulated annealing with geometric cooling.

    Deterministic given the PRNG: every accept/reject decision draws from
    the supplied generator.  Tracks and returns the best state ever seen,
    not the final one. *)

type 'state schedule = {
  steps : int;             (** total moves attempted *)
  initial_temperature : float;
  cooling : float;         (** multiplier applied every [plateau] steps *)
  plateau : int;           (** moves per temperature level *)
}

val default_schedule : 'state schedule

type 'state result = {
  best : 'state;
  best_cost : float;
  accepted : int;
  evaluated : int;
}

val optimize :
  prng:Prng.t ->
  init:'state ->
  neighbor:(Prng.t -> 'state -> 'state) ->
  cost:('state -> float) ->
  ?schedule:'state schedule ->
  unit ->
  'state result
(** Classic Metropolis acceptance: a worse move of cost increase [d] is
    accepted with probability [exp (-d / temperature)]. *)
