type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: xor-shift-multiply mix of an additive counter. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Non-negative 62-bit value, safe to use as an OCaml [int]. *)
let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max_value = (max_int / bound) * bound in
  let rec draw () =
    let v = next_nonneg t in
    if v < max_value then v mod bound else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = next_int64 t }
