(** Deterministic pseudo-random number generator (splitmix64).

    All stochastic parts of the library (floorplan annealing, workload
    generation) draw from this generator so that every run is reproducible
    from a single integer seed.  The global [Random] module is never used. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same future
    stream as [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of the splitmix64 step function. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** [split t] returns a new generator seeded from [t]'s stream, advancing
    [t].  Streams of the parent and child are independent for practical
    purposes. *)
