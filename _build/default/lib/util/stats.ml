let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p outside [0,1]";
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  let rank = int_of_float (ceil (p *. float_of_int n)) in
  let index = max 0 (min (n - 1) (rank - 1)) in
  List.nth sorted index

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let percent_gain baseline improved =
  if baseline = 0.0 then 0.0 else 100.0 *. (improved -. baseline) /. baseline

let round_to digits x =
  let factor = 10.0 ** float_of_int digits in
  Float.round (x *. factor) /. factor
