(** Small numeric helpers shared by monitors and benches. *)

val mean : float list -> float
(** Arithmetic mean; 0.0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0.0 on lists shorter than 2. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank on the sorted list.
    @raise Invalid_argument on the empty list or [p] outside [\[0,1\]]. *)

val ratio : int -> int -> float
(** [ratio num den] as a float; 0.0 when [den = 0]. *)

val percent_gain : float -> float -> float
(** [percent_gain baseline improved] is [100 * (improved - baseline) /
    baseline]; 0.0 when [baseline = 0.0]. *)

val round_to : int -> float -> float
(** [round_to digits x] rounds to the given number of decimal digits. *)
