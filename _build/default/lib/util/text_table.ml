type align =
  | Left
  | Right
  | Center

type row =
  | Cells of string list
  | Separator
  | Span of string

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ~columns =
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Text_table.add_row: wrong arity";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows
let add_span_row t label = t.rows <- Span label :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let left = (width - n) / 2 in
      String.make left ' ' ^ s ^ String.make (width - n - left) ' '

let render t =
  let rows = List.rev t.rows in
  let widths =
    let init = List.map String.length t.headers in
    let max_row acc = function
      | Cells cells -> List.map2 (fun w c -> max w (String.length c)) acc cells
      | Separator | Span _ -> acc
    in
    List.fold_left max_row init rows
  in
  let buf = Buffer.create 1024 in
  let rule ch =
    List.iter (fun w -> Buffer.add_char buf '+'; Buffer.add_string buf (String.make (w + 2) ch)) widths;
    Buffer.add_string buf "+\n"
  in
  let total_width = List.fold_left (fun acc w -> acc + w + 3) 0 widths - 1 in
  let line cells aligns =
    List.iter2
      (fun (w, a) c ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad a w c);
        Buffer.add_char buf ' ')
      (List.combine widths aligns) cells;
    Buffer.add_string buf "|\n"
  in
  rule '-';
  line t.headers (List.map (fun _ -> Center) t.headers);
  rule '=';
  let emit = function
    | Cells cells -> line cells t.aligns
    | Separator -> rule '-'
    | Span label ->
      Buffer.add_string buf "| ";
      Buffer.add_string buf (pad Left (total_width - 2) label);
      Buffer.add_string buf " |\n"
  in
  List.iter emit rows;
  rule '-';
  Buffer.contents buf

let print t = print_string (render t)
