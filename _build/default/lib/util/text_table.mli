(** Plain-text table rendering for bench and CLI output.

    Renders rows of cells under a header, right-aligning numeric-looking
    cells, in the style of the paper's Table 1. *)

type align =
  | Left
  | Right
  | Center

type t

val create : columns:(string * align) list -> t
(** [create ~columns] starts an empty table with the given header. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row has the wrong number of cells. *)

val add_separator : t -> unit
(** Insert a horizontal rule between row groups. *)

val add_span_row : t -> string -> unit
(** A row whose single cell spans all columns (section label). *)

val render : t -> string
(** Full table with box-drawing rules, terminated by a newline. *)

val print : t -> unit
(** [render] to stdout. *)
