(* Block-level unit tests: drive each processor block standalone through
   its Process interface and check the microarchitectural contracts
   (latencies, schedules, write ordering) that the end-to-end suites rely
   on. *)

open Wp_soc
module Process = Wp_lis.Process

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Fire an instance once with all inputs present (plain-wrapper view). *)
let fire inst inputs = inst.Process.fire (Array.map (fun v -> Some v) inputs)

(* ------------------------------------------------------------------ *)
(* IC                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ic_fetch () =
  let text = [| Isa.Ldi (1, 7); Isa.Halt |] in
  let ic = (Icache.process ~text).Process.make () in
  (* A real fetch returns the encoded instruction. *)
  let out = fire ic [| Codec.pack_fetch (Some 0) |] in
  checkb "instruction word" true
    (Codec.unpack_instr out.(0) = Some (Isa.encode (Isa.Ldi (1, 7))));
  (* A bubble propagates as a bubble. *)
  let out = fire ic [| Codec.pack_fetch None |] in
  checkb "bubble propagates" true (Codec.unpack_instr out.(0) = None)

let test_ic_out_of_range () =
  let ic = (Icache.process ~text:[| Isa.Halt |]).Process.make () in
  checkb "fault" true
    (match fire ic [| Codec.pack_fetch (Some 9) |] with
    | exception Failure _ -> true
    | _ -> false)

let test_ic_rejects_empty_program () =
  checkb "empty program" true
    (match Icache.process ~text:[||] with exception Invalid_argument _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* ALU                                                                *)
(* ------------------------------------------------------------------ *)

(* The ALU executes the operation received the previous firing, paired
   with this firing's operands. *)
let alu_run ops_and_operands =
  let alu = (Alu.process ()).Process.make () in
  List.map
    (fun (op, a, b) -> fire alu [| Codec.pack_alu_op op; a; b |])
    ops_and_operands

let test_alu_latency_and_arith () =
  let bubble = None in
  let outs =
    alu_run
      [
        (Some { Codec.kind = Codec.K_add; imm = 0 }, 0, 0);   (* op enters pipe *)
        (Some { Codec.kind = Codec.K_sub; imm = 0 }, 30, 12); (* add executes: 42 *)
        (Some { Codec.kind = Codec.K_mul; imm = 0 }, 50, 8);  (* sub executes: 42 *)
        (bubble, 6, 7);                                       (* mul executes: 42 *)
        (bubble, 9, 9);                                       (* bubble: nothing *)
      ]
  in
  let result i = (List.nth outs i).(0) in
  checki "first firing idle" 0 (result 0);
  checki "add" 42 (result 1);
  checki "sub" 42 (result 2);
  checki "mul" 42 (result 3);
  checki "bubble executes nothing" 0 (result 4)

let test_alu_imm_and_addr () =
  let outs =
    alu_run
      [
        (Some { Codec.kind = Codec.K_imm; imm = -5 }, 0, 0);
        (Some { Codec.kind = Codec.K_addr; imm = 10 }, 0, 0); (* imm executes *)
        (Some { Codec.kind = Codec.K_addi; imm = 3 }, 32, 0); (* addr executes: 32+10 *)
        (None, 100, 0);                                       (* addi executes: 103 *)
      ]
  in
  checki "imm passes through" (-5) (List.nth outs 1).(0);
  checki "effective address" 42 (List.nth outs 2).(2);
  checki "addi" 103 (List.nth outs 3).(0)

let test_alu_flags_and_branches () =
  let branch cond = Some { Codec.kind = Codec.K_br cond; imm = 0 } in
  let cmp = Some { Codec.kind = Codec.K_cmp; imm = 0 } in
  let outs =
    alu_run
      [
        (cmp, 0, 0);                 (* enters pipe *)
        (branch Isa.Lt, 3, 9);       (* cmp 3 9 executes: lt *)
        (branch Isa.Ge, 0, 0);       (* br.lt evaluates: taken *)
        (None, 0, 0);                (* br.ge evaluates: not taken *)
      ]
  in
  checkb "lt taken" true (Codec.unpack_flags (List.nth outs 2).(1) = Some true);
  checkb "ge not taken" true (Codec.unpack_flags (List.nth outs 3).(1) = Some false);
  checkb "non-branch firings emit no resolution" true
    (Codec.unpack_flags (List.nth outs 1).(1) = None)

let test_alu_eq_conditions () =
  let branch cond = Some { Codec.kind = Codec.K_br cond; imm = 0 } in
  let cmp = Some { Codec.kind = Codec.K_cmp; imm = 0 } in
  let outs =
    alu_run
      [
        (cmp, 0, 0);
        (branch Isa.Eq, 5, 5);  (* cmp 5 5: eq *)
        (branch Isa.Ne, 0, 0);  (* eq -> taken *)
        (branch Isa.Gt, 0, 0);  (* ne -> not taken *)
        (None, 0, 0);           (* gt on eq flags -> not taken *)
      ]
  in
  checkb "eq taken" true (Codec.unpack_flags (List.nth outs 2).(1) = Some true);
  checkb "ne not taken" true (Codec.unpack_flags (List.nth outs 3).(1) = Some false);
  checkb "gt not taken" true (Codec.unpack_flags (List.nth outs 4).(1) = Some false)

(* ------------------------------------------------------------------ *)
(* RF                                                                 *)
(* ------------------------------------------------------------------ *)

let rf_ctrl ?(ra = 0) ?(rb = 0) ?(rv = 0) ?wb1 ?wb2 () =
  Codec.pack_rf_ctrl (Some { Codec.ra; rb; rv; wb1; wb2 })

let rf_bubble = Codec.pack_rf_ctrl None

let test_rf_alu_writeback_schedule () =
  let rf = (Regfile.process ()).Process.make () in
  (* Firing 0: announce an ALU writeback to r3 (applies at firing 2). *)
  ignore (fire rf [| rf_ctrl ~wb1:3 (); 0; 0 |]);
  ignore (fire rf [| rf_bubble; 0; 0 |]);
  (* Firing 2: the result token (99) arrives and is written before the
     same firing's reads. *)
  let out = fire rf [| rf_ctrl ~ra:3 (); 99; 0 |] in
  checki "read-after-write same firing" 99 out.(0)

let test_rf_load_writeback_schedule () =
  let rf = (Regfile.process ()).Process.make () in
  ignore (fire rf [| rf_ctrl ~wb2:5 (); 0; 0 |]);
  ignore (fire rf [| rf_bubble; 0; 0 |]);
  ignore (fire rf [| rf_bubble; 0; 0 |]);
  (* Firing 3: load datum 77 arrives. *)
  let out = fire rf [| rf_ctrl ~ra:5 ~rb:5 ~rv:5 (); 0; 77 |] in
  checki "src1" 77 out.(0);
  checki "src2" 77 out.(1);
  checki "store data port" 77 out.(2)

let test_rf_collision_alu_wins () =
  (* A load writeback (older instruction) and an ALU writeback (newer)
     landing the same firing on the same register: the newer wins. *)
  let rf = (Regfile.process ()).Process.make () in
  ignore (fire rf [| rf_ctrl ~wb2:7 (); 0; 0 |]);    (* firing 0: load to r7, due at 3 *)
  ignore (fire rf [| rf_ctrl ~wb1:7 (); 0; 0 |]);    (* firing 1: alu to r7, due at 3 *)
  ignore (fire rf [| rf_bubble; 0; 0 |]);            (* firing 2 *)
  let out = fire rf [| rf_ctrl ~ra:7 (); 500; 400 |] in  (* firing 3: both arrive *)
  checki "newer (ALU) value wins" 500 out.(0)

let test_rf_tap () =
  let tap = ref None in
  let rf = (Regfile.process ~tap ()).Process.make () in
  ignore (fire rf [| rf_ctrl ~wb1:2 (); 0; 0 |]);
  ignore (fire rf [| rf_bubble; 0; 0 |]);
  ignore (fire rf [| rf_bubble; 11; 0 |]);
  match !tap with
  | Some get -> checki "tap sees the write" 11 (get ()).(2)
  | None -> Alcotest.fail "tap not set"

(* ------------------------------------------------------------------ *)
(* DC                                                                 *)
(* ------------------------------------------------------------------ *)

let dc_cmd kind = Codec.pack_mem_cmd kind

let test_dc_store_then_load () =
  let dc = (Dcache.process ~mem_size:32 ~mem_init:[] ()).Process.make () in
  (* Store: cmd at firing 0, datum at 1, address at 2. *)
  ignore (fire dc [| dc_cmd (Some Codec.M_store); 0; 0 |]);
  ignore (fire dc [| dc_cmd None; 0; 123 |]);
  ignore (fire dc [| dc_cmd (Some Codec.M_load); 9; 0 |]);
  (* The load command entered at firing 2; its address arrives at 4. *)
  ignore (fire dc [| dc_cmd None; 0; 0 |]);
  let out = fire dc [| dc_cmd None; 9; 0 |] in
  checki "load returns the stored value" 123 out.(0)

let test_dc_back_to_back_stores () =
  let tap = ref None in
  let dc = (Dcache.process ~tap ~mem_size:32 ~mem_init:[] ()).Process.make () in
  (* Two stores dispatched on consecutive firings. *)
  ignore (fire dc [| dc_cmd (Some Codec.M_store); 0; 0 |]);   (* firing 0 *)
  ignore (fire dc [| dc_cmd (Some Codec.M_store); 0; 11 |]);  (* firing 1: datum for 1st *)
  ignore (fire dc [| dc_cmd None; 3; 22 |]);                  (* firing 2: addr 1st, datum 2nd *)
  ignore (fire dc [| dc_cmd None; 4; 0 |]);                   (* firing 3: addr 2nd *)
  match !tap with
  | Some get ->
    let mem = get () in
    checki "first store" 11 mem.(3);
    checki "second store" 22 mem.(4)
  | None -> Alcotest.fail "tap not set"

let test_dc_mem_init_and_fault () =
  let dc = (Dcache.process ~mem_size:8 ~mem_init:[ (5, 55) ] ()).Process.make () in
  ignore (fire dc [| dc_cmd (Some Codec.M_load); 0; 0 |]);
  ignore (fire dc [| dc_cmd None; 0; 0 |]);
  let out = fire dc [| dc_cmd None; 5; 0 |] in
  checki "initialised memory" 55 out.(0);
  let dc = (Dcache.process ~mem_size:8 ~mem_init:[] ()).Process.make () in
  ignore (fire dc [| dc_cmd (Some Codec.M_load); 0; 0 |]);
  ignore (fire dc [| dc_cmd None; 0; 0 |]);
  checkb "out-of-range faults" true
    (match fire dc [| dc_cmd None; 99; 0 |] with
    | exception Failure _ -> true
    | _ -> false);
  checkb "bad initialiser rejected" true
    (match Dcache.process ~mem_size:4 ~mem_init:[ (9, 1) ] () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Pipelined CU in a closed-loop harness                              *)
(* ------------------------------------------------------------------ *)

(* Respond to the CU's fetch stream like an ideal IC (2-firing response
   latency); supply bubble flags.  Returns the rf_ctrl stream. *)
let drive_cu text firings =
  let cu = (Control_unit.process ~text_length:(Array.length text) ()).Process.make () in
  let imem = Array.map Isa.encode text in
  (* Responses in flight: the token consumed at firing k is the response
     to the fetch emitted at k-2. *)
  let pending = Queue.create () in
  Queue.add (Codec.pack_instr None) pending;
  Queue.add (Codec.pack_instr None) pending;
  let ctrls = ref [] in
  for _ = 1 to firings do
    let instr_word = Queue.pop pending in
    let outs = cu.Process.fire [| Some instr_word; Some (Codec.pack_flags None) |] in
    let response =
      match Codec.unpack_fetch outs.(0) with
      | Some addr -> Codec.pack_instr (Some imem.(addr))
      | None -> Codec.pack_instr None
    in
    Queue.add response pending;
    ctrls := Codec.unpack_rf_ctrl outs.(1) :: !ctrls
  done;
  (cu, List.rev !ctrls)

let test_cu_dispatch_timing () =
  (* ldi r1; addi r2, r1 (RAW hazard: 1 bubble); halt. *)
  let text = [| Isa.Ldi (1, 5); Isa.Addi (2, 1, 1); Isa.Halt |] in
  let _, ctrls = drive_cu text 8 in
  let dispatched = List.mapi (fun k c -> (k, c)) ctrls in
  let real = List.filter (fun (_, c) -> c <> None) dispatched in
  (match real with
  | [ (k1, Some c1); (k2, Some c2) ] ->
    checki "ldi dispatched when its fetch returns" 2 k1;
    checkb "ldi writes r1" true (c1.Codec.wb1 = Some 1);
    checki "dependent addi waits for the scoreboard" 4 k2;
    checkb "addi reads r1" true (c2.Codec.ra = 1)
  | _ -> Alcotest.failf "expected 2 dispatches, got %d" (List.length real))

let test_cu_halt_drains () =
  let text = [| Isa.Halt |] in
  let cu, _ = drive_cu text (3 + Latency.drain) in
  checkb "halted after the drain window" true (cu.Process.halted ())

let test_cu_straightline_throughput () =
  (* Independent instructions dispatch back to back: CPI 1. *)
  let text =
    [| Isa.Ldi (1, 1); Isa.Ldi (2, 2); Isa.Ldi (3, 3); Isa.Ldi (4, 4); Isa.Halt |]
  in
  let _, ctrls = drive_cu text 10 in
  let dispatch_tags =
    List.concat
      (List.mapi (fun k c -> match c with Some _ -> [ k ] | None -> []) ctrls)
  in
  Alcotest.(check (list int)) "dispatches at consecutive firings" [ 2; 3; 4; 5 ] dispatch_tags

let test_cu_unconditional_branch_redirect () =
  (* br.al jumps over a poisoned instruction; the poison must never be
     dispatched. *)
  let text = [| Isa.Br (Isa.Always, 2); Isa.Ldi (9, 999); Isa.Ldi (1, 1); Isa.Halt |] in
  let _, ctrls = drive_cu text 12 in
  let writes =
    List.filter_map (fun c -> Option.bind c (fun c -> c.Codec.wb1)) ctrls
  in
  Alcotest.(check (list int)) "only the target executes" [ 1 ] writes

let () =
  Alcotest.run "wp_blocks"
    [
      ( "ic",
        [
          Alcotest.test_case "fetch" `Quick test_ic_fetch;
          Alcotest.test_case "out of range" `Quick test_ic_out_of_range;
          Alcotest.test_case "empty program" `Quick test_ic_rejects_empty_program;
        ] );
      ( "alu",
        [
          Alcotest.test_case "latency and arithmetic" `Quick test_alu_latency_and_arith;
          Alcotest.test_case "imm and address" `Quick test_alu_imm_and_addr;
          Alcotest.test_case "flags and branches" `Quick test_alu_flags_and_branches;
          Alcotest.test_case "eq conditions" `Quick test_alu_eq_conditions;
        ] );
      ( "rf",
        [
          Alcotest.test_case "alu writeback schedule" `Quick test_rf_alu_writeback_schedule;
          Alcotest.test_case "load writeback schedule" `Quick test_rf_load_writeback_schedule;
          Alcotest.test_case "collision: newer wins" `Quick test_rf_collision_alu_wins;
          Alcotest.test_case "register tap" `Quick test_rf_tap;
        ] );
      ( "dc",
        [
          Alcotest.test_case "store then load" `Quick test_dc_store_then_load;
          Alcotest.test_case "back-to-back stores" `Quick test_dc_back_to_back_stores;
          Alcotest.test_case "init and faults" `Quick test_dc_mem_init_and_fault;
        ] );
      ( "cu",
        [
          Alcotest.test_case "dispatch timing" `Quick test_cu_dispatch_timing;
          Alcotest.test_case "halt drains" `Quick test_cu_halt_drains;
          Alcotest.test_case "straight-line CPI 1" `Quick test_cu_straightline_throughput;
          Alcotest.test_case "br.al redirect" `Quick test_cu_unconditional_branch_redirect;
        ] );
    ]
