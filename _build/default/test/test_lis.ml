(* Unit and property tests for Wp_lis: tokens, traces, relay stations,
   processes and shells. *)

module Token = Wp_lis.Token
module Trace = Wp_lis.Trace
module Relay_station = Wp_lis.Relay_station
module Process = Wp_lis.Process
module Shell = Wp_lis.Shell

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let token_testable = Alcotest.testable (Token.pp Format.pp_print_int) (Token.equal ( = ))

(* ------------------------------------------------------------------ *)
(* Token                                                              *)
(* ------------------------------------------------------------------ *)

let test_token_basics () =
  checkb "valid" true (Token.is_valid (Token.Valid 3));
  checkb "void" true (Token.is_void Token.Void);
  Alcotest.(check (option int)) "value" (Some 3) (Token.value (Token.Valid 3));
  Alcotest.(check (option int)) "value void" None (Token.value Token.Void);
  checki "value_exn" 3 (Token.value_exn (Token.Valid 3));
  Alcotest.check_raises "value_exn void" (Invalid_argument "Token.value_exn: void token")
    (fun () -> ignore (Token.value_exn (Token.Void : int Token.t)));
  Alcotest.check token_testable "map" (Token.Valid 4) (Token.map succ (Token.Valid 3));
  Alcotest.check token_testable "map void" Token.Void (Token.map succ Token.Void)

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let trace_of_list xs = List.map (function None -> Token.Void | Some v -> Token.Valid v) xs

let test_trace_filter () =
  let t = trace_of_list [ Some 1; None; None; Some 2; None; Some 3 ] in
  Alcotest.(check (list int)) "filtered" [ 1; 2; 3 ] (Trace.tau_filter t);
  checki "count" 3 (Trace.informative_count t);
  Alcotest.(check (float 1e-9)) "throughput" 0.5 (Trace.throughput t)

let test_trace_n_equivalence () =
  let a = trace_of_list [ Some 1; None; Some 2; Some 3 ] in
  let b = trace_of_list [ None; Some 1; None; None; Some 2; Some 9 ] in
  checkb "2-equivalent" true (Trace.n_equivalent ~eq:( = ) ~n:2 a b);
  checkb "not 3-equivalent" false (Trace.n_equivalent ~eq:( = ) ~n:3 a b);
  checkb "0-equivalent always" true (Trace.n_equivalent ~eq:( = ) ~n:0 a b);
  checkb "n beyond length fails" false (Trace.n_equivalent ~eq:( = ) ~n:5 a b);
  Alcotest.check_raises "negative n" (Invalid_argument "Trace.n_equivalent: negative n")
    (fun () -> ignore (Trace.n_equivalent ~eq:( = ) ~n:(-1) a b))

let test_trace_prefix () =
  let a = trace_of_list [ Some 1; Some 2; Some 3 ] in
  let b = trace_of_list [ None; Some 1; Some 2 ] in
  checki "common prefix" 2 (Trace.equivalent_prefix ~eq:( = ) a b);
  checkb "prefix equivalence" true (Trace.equivalent_upto_shorter ~eq:( = ) a b);
  let c = trace_of_list [ Some 1; Some 9 ] in
  checkb "mismatch detected" false (Trace.equivalent_upto_shorter ~eq:( = ) a c)

(* ------------------------------------------------------------------ *)
(* Relay_station                                                      *)
(* ------------------------------------------------------------------ *)

let test_rs_empty_emits_void () =
  let rs : int Relay_station.t = Relay_station.create () in
  Alcotest.check token_testable "void when empty" Token.Void (Relay_station.emit rs ~stop_in:false);
  checki "occupancy" 0 (Relay_station.occupancy rs)

let test_rs_forwarding () =
  let rs = Relay_station.create () in
  Relay_station.accept rs (Token.Valid 7);
  checki "holds one" 1 (Relay_station.occupancy rs);
  Alcotest.check token_testable "emits it" (Token.Valid 7) (Relay_station.emit rs ~stop_in:false);
  checki "drained" 0 (Relay_station.occupancy rs)

let test_rs_void_absorbed () =
  let rs : int Relay_station.t = Relay_station.create () in
  Relay_station.accept rs Token.Void;
  checki "void not stored" 0 (Relay_station.occupancy rs)

let test_rs_stop_buffers () =
  let rs = Relay_station.create () in
  Relay_station.accept rs (Token.Valid 1);
  (* Downstream stopped: emit nothing, keep data; second datum goes into
     the auxiliary register. *)
  Alcotest.check token_testable "stopped -> tau" Token.Void (Relay_station.emit rs ~stop_in:true);
  Relay_station.accept rs (Token.Valid 2);
  checki "both registers used" 2 (Relay_station.occupancy rs);
  checkb "full" true (Relay_station.is_full rs);
  checkb "stop propagates when full+stopped" true (Relay_station.stop_out rs ~stop_in:true);
  checkb "no stop when downstream free" false (Relay_station.stop_out rs ~stop_in:false);
  (* Downstream restarts: data comes out in order. *)
  Alcotest.check token_testable "first out" (Token.Valid 1) (Relay_station.emit rs ~stop_in:false);
  Alcotest.check token_testable "second out" (Token.Valid 2) (Relay_station.emit rs ~stop_in:false)

let test_rs_overflow_raises () =
  let rs = Relay_station.create ~name:"x" () in
  Relay_station.accept rs (Token.Valid 1);
  Relay_station.accept rs (Token.Valid 2);
  Alcotest.check_raises "protocol violation"
    (Failure "Relay_station x: datum lost (stop protocol violated)") (fun () ->
      Relay_station.accept rs (Token.Valid 3))

let test_rs_reset () =
  let rs = Relay_station.create () in
  Relay_station.accept rs (Token.Valid 1);
  Relay_station.reset rs;
  checki "reset clears" 0 (Relay_station.occupancy rs)

(* FIFO-order property under a random stop pattern: everything pushed in
   comes out in order, nothing lost, nothing duplicated. *)
let prop_rs_lossless =
  QCheck2.Test.make ~count:300 ~name:"relay station is lossless and order-preserving"
    QCheck2.Gen.(list (pair bool bool))
    (fun pattern ->
      let rs = Relay_station.create () in
      let sent = ref [] and received = ref [] in
      let counter = ref 0 in
      List.iter
          (fun (want_send, stop_in) ->
            let stop_out = Relay_station.stop_out rs ~stop_in in
            (match Relay_station.emit rs ~stop_in with
            | Token.Valid v -> received := v :: !received
            | Token.Void -> ());
            if want_send && not stop_out then begin
              incr counter;
              sent := !counter :: !sent;
              Relay_station.accept rs (Token.Valid !counter)
            end)
        pattern;
      (* Drain. *)
      let rec drain () =
        match Relay_station.emit rs ~stop_in:false with
        | Token.Valid v ->
          received := v :: !received;
          drain ()
        | Token.Void -> ()
      in
      drain ();
      List.rev !received = List.rev !sent)

(* A chain of relay stations behaves as one lossless, order-preserving
   FIFO under arbitrary stop patterns. *)
let prop_rs_chain_lossless =
  QCheck2.Test.make ~count:200 ~name:"relay chains are lossless end to end"
    QCheck2.Gen.(pair (int_range 1 5) (list (pair bool bool)))
    (fun (k, pattern) ->
      let chain = Array.init k (fun i -> Relay_station.create ~name:(string_of_int i) ()) in
      let sent = ref [] and received = ref [] in
      let counter = ref 0 in
      let step ~want_send ~stop_in =
        (* Backwards stop propagation, then simultaneous shift. *)
        let stops = Array.make k false in
        let stop = ref stop_in in
        for i = k - 1 downto 0 do
          stops.(i) <- !stop;
          stop := Relay_station.stop_out chain.(i) ~stop_in:!stop
        done;
        let producer_stop = !stop in
        let emissions = Array.mapi (fun i rs -> Relay_station.emit rs ~stop_in:stops.(i)) chain in
        (match emissions.(k - 1) with
        | Token.Valid v -> received := v :: !received
        | Token.Void -> ());
        for i = k - 1 downto 1 do
          Relay_station.accept chain.(i) emissions.(i - 1)
        done;
        if want_send && not producer_stop then begin
          incr counter;
          sent := !counter :: !sent;
          Relay_station.accept chain.(0) (Token.Valid !counter)
        end
        else Relay_station.accept chain.(0) Token.Void
      in
      List.iter (fun (want_send, stop_in) -> step ~want_send ~stop_in) pattern;
      (* Drain: k extra unstopped cycles flush everything in flight. *)
      for _ = 1 to (2 * k) + 2 do
        step ~want_send:false ~stop_in:false
      done;
      List.rev !received = List.rev !sent)

(* ------------------------------------------------------------------ *)
(* Process                                                            *)
(* ------------------------------------------------------------------ *)

let test_process_helpers () =
  let src = Process.pure_source ~name:"src" ~output_name:"o" ~reset:0 (fun k -> k * 10) in
  Process.validate src;
  let inst = src.Process.make () in
  Alcotest.(check (array int)) "first" [| 0 |] (inst.Process.fire [||]);
  Alcotest.(check (array int)) "second" [| 10 |] (inst.Process.fire [||]);
  let u = Process.unary ~name:"inc" ~input_name:"i" ~output_name:"o" ~reset:0 succ in
  let ui = u.Process.make () in
  Alcotest.(check (array int)) "unary" [| 6 |] (ui.Process.fire [| Some 5 |]);
  checki "input index" 0 (Process.input_index u "i");
  checki "output index" 0 (Process.output_index u "o");
  checkb "missing port" true
    (match Process.input_index u "zzz" with
    | exception Not_found -> true
    | _ -> false)

let test_process_validate_arity () =
  let bad =
    {
      Process.name = "bad";
      input_names = [||];
      output_names = [| "o" |];
      reset_outputs = [||];
      make =
        (fun () ->
          {
            Process.required = Process.all_required 0;
            fire = (fun _ -> [||]);
            halted = (fun () -> false);
          });
    }
  in
  Alcotest.check_raises "arity mismatch" (Invalid_argument "bad: reset_outputs arity mismatch")
    (fun () -> Process.validate bad)

let test_process_unrequired_read_rejected () =
  let u = Process.unary ~name:"inc" ~input_name:"i" ~output_name:"o" ~reset:0 succ in
  let ui = u.Process.make () in
  Alcotest.check_raises "reading unrequired input"
    (Invalid_argument "Process: reading an input that was not required") (fun () ->
      ignore (ui.Process.fire [| None |]))

(* ------------------------------------------------------------------ *)
(* Shell                                                              *)
(* ------------------------------------------------------------------ *)

(* A two-input process whose oracle alternates: even firings read only
   port 0 (emit 2*a), odd firings read both (emit a+b). *)
let modal_process =
  {
    Process.name = "modal";
    input_names = [| "a"; "b" |];
    output_names = [| "o" |];
    reset_outputs = [| 0 |];
    make =
      (fun () ->
        let k = ref 0 in
        {
          Process.required = (fun () -> if !k mod 2 = 0 then [| true; false |] else [| true; true |]);
          fire =
            (fun inputs ->
              let a = match inputs.(0) with Some v -> v | None -> assert false in
              let out =
                if !k mod 2 = 0 then 2 * a
                else a + (match inputs.(1) with Some v -> v | None -> assert false)
              in
              incr k;
              [| out |]);
          halted = (fun () -> false);
        });
  }

let test_shell_plain_fire_cycle () =
  let u = Process.unary ~name:"inc" ~input_name:"i" ~output_name:"o" ~reset:0 succ in
  let sh = Shell.create ~mode:Shell.Plain ~record_traces:true u in
  checkb "not ready initially" false (Shell.ready sh);
  let outs = Shell.stall sh ~reason:`Input in
  Alcotest.check token_testable "stall emits tau" Token.Void outs.(0);
  Shell.accept sh ~port:0 (Token.Valid 41);
  checkb "ready" true (Shell.ready sh);
  let outs = Shell.fire sh in
  Alcotest.check token_testable "fired" (Token.Valid 42) outs.(0);
  let stats = Shell.stats sh in
  checki "1 firing" 1 stats.Shell.firings;
  checki "1 stall" 1 stats.Shell.stalls;
  checki "starved" 1 stats.Shell.input_starved;
  Alcotest.(check (list int)) "trace filtered" [ 42 ]
    (Trace.tau_filter (Shell.output_trace sh 0))

let test_shell_fire_not_ready_rejected () =
  let u = Process.unary ~name:"inc" ~input_name:"i" ~output_name:"o" ~reset:0 succ in
  let sh = Shell.create ~mode:Shell.Plain u in
  Alcotest.check_raises "not ready" (Invalid_argument "inc: fire while not ready") (fun () ->
      ignore (Shell.fire sh))

let test_shell_input_stop_and_overflow () =
  let u = Process.unary ~name:"inc" ~input_name:"i" ~output_name:"o" ~reset:0 succ in
  let sh = Shell.create ~capacity:2 ~mode:Shell.Plain u in
  checkb "no stop empty" false (Shell.input_stop sh 0);
  Shell.accept sh ~port:0 (Token.Valid 1);
  Shell.accept sh ~port:0 (Token.Valid 2);
  checkb "stop when full" true (Shell.input_stop sh 0);
  checki "buffered" 2 (Shell.buffered sh 0);
  Alcotest.check_raises "overflow"
    (Failure "Shell inc: token lost on port i (stop protocol violated)") (fun () ->
      Shell.accept sh ~port:0 (Token.Valid 3))

let test_shell_void_ignored () =
  let u = Process.unary ~name:"inc" ~input_name:"i" ~output_name:"o" ~reset:0 succ in
  let sh = Shell.create ~mode:Shell.Plain u in
  Shell.accept sh ~port:0 Token.Void;
  checki "void not buffered" 0 (Shell.buffered sh 0)

let test_shell_unbounded () =
  let u = Process.unary ~name:"inc" ~input_name:"i" ~output_name:"o" ~reset:0 succ in
  let sh = Shell.create ~capacity:0 ~mode:Shell.Plain u in
  for i = 1 to 100 do
    Shell.accept sh ~port:0 (Token.Valid i)
  done;
  checkb "never stops" false (Shell.input_stop sh 0);
  checki "all buffered" 100 (Shell.buffered sh 0)

let test_shell_oracle_fires_without_unneeded () =
  let sh = Shell.create ~mode:Shell.Oracle modal_process in
  (* Even firing: only port a is needed. *)
  Shell.accept sh ~port:0 (Token.Valid 5);
  checkb "ready without b" true (Shell.ready sh);
  let outs = Shell.fire sh in
  Alcotest.check token_testable "2*a" (Token.Valid 10) outs.(0);
  (* The tag-0 token on b is now stale: dropped on arrival. *)
  Shell.accept sh ~port:1 (Token.Valid 99);
  checki "stale b dropped" 0 (Shell.buffered sh 1);
  (* Odd firing: both needed. *)
  Shell.accept sh ~port:0 (Token.Valid 3);
  checkb "not ready without b" false (Shell.ready sh);
  Shell.accept sh ~port:1 (Token.Valid 4);
  checkb "ready with both" true (Shell.ready sh);
  let outs = Shell.fire sh in
  Alcotest.check token_testable "a+b" (Token.Valid 7) outs.(0);
  let stats = Shell.stats sh in
  checki "b required once" 1 stats.Shell.required_counts.(1);
  checki "a required twice" 2 stats.Shell.required_counts.(0);
  checki "one b token dropped" 1 stats.Shell.dropped.(1)

let test_shell_oracle_discards_buffered () =
  let sh = Shell.create ~mode:Shell.Oracle modal_process in
  (* Both tokens arrive before the even firing: b is buffered, then
     discarded by the firing itself. *)
  Shell.accept sh ~port:0 (Token.Valid 5);
  Shell.accept sh ~port:1 (Token.Valid 77);
  ignore (Shell.fire sh);
  checki "buffered b consumed by discard" 0 (Shell.buffered sh 1);
  let stats = Shell.stats sh in
  checki "recorded as dropped" 1 stats.Shell.dropped.(1)

let test_shell_plain_consumes_everything () =
  let sh = Shell.create ~mode:Shell.Plain modal_process in
  Shell.accept sh ~port:0 (Token.Valid 5);
  checkb "plain needs both" false (Shell.ready sh);
  Shell.accept sh ~port:1 (Token.Valid 1);
  checkb "ready" true (Shell.ready sh);
  ignore (Shell.fire sh);
  let stats = Shell.stats sh in
  checki "no drops in plain mode" 0 (stats.Shell.dropped.(0) + stats.Shell.dropped.(1))

(* Property: for a random arrival schedule, the oracle shell produces the
   same informative output stream as the plain shell (the paper's
   equivalence claim, at shell granularity). *)
let prop_shell_oracle_equivalent =
  QCheck2.Test.make ~count:300 ~name:"oracle shell output = plain shell output"
    QCheck2.Gen.(list (pair small_nat small_nat))
    (fun arrivals ->
      let run mode =
        let sh = Shell.create ~capacity:0 ~record_traces:true ~mode modal_process in
        List.iter
          (fun (a, b) ->
            Shell.accept sh ~port:0 (Token.Valid a);
            Shell.accept sh ~port:1 (Token.Valid b);
            (* Fire as often as possible this cycle (at most once). *)
            if Shell.ready sh then ignore (Shell.fire sh) else ignore (Shell.stall sh ~reason:`Input))
          arrivals;
        Trace.tau_filter (Shell.output_trace sh 0)
      in
      let plain = run Shell.Plain and oracle = run Shell.Oracle in
      let rec prefix a b =
        match (a, b) with
        | [], _ | _, [] -> true
        | x :: a', y :: b' -> x = y && prefix a' b'
      in
      (* The oracle shell may run ahead; outputs must agree on the common
         prefix and the oracle must produce at least as many. *)
      prefix plain oracle && List.length oracle >= List.length plain)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_rs_lossless; prop_rs_chain_lossless; prop_shell_oracle_equivalent ]
  in
  Alcotest.run "wp_lis"
    [
      ("token", [ Alcotest.test_case "basics" `Quick test_token_basics ]);
      ( "trace",
        [
          Alcotest.test_case "filter" `Quick test_trace_filter;
          Alcotest.test_case "n-equivalence" `Quick test_trace_n_equivalence;
          Alcotest.test_case "prefix" `Quick test_trace_prefix;
        ] );
      ( "relay_station",
        [
          Alcotest.test_case "empty emits void" `Quick test_rs_empty_emits_void;
          Alcotest.test_case "forwarding" `Quick test_rs_forwarding;
          Alcotest.test_case "void absorbed" `Quick test_rs_void_absorbed;
          Alcotest.test_case "stop buffers" `Quick test_rs_stop_buffers;
          Alcotest.test_case "overflow raises" `Quick test_rs_overflow_raises;
          Alcotest.test_case "reset" `Quick test_rs_reset;
        ] );
      ( "process",
        [
          Alcotest.test_case "helpers" `Quick test_process_helpers;
          Alcotest.test_case "validate arity" `Quick test_process_validate_arity;
          Alcotest.test_case "unrequired read rejected" `Quick test_process_unrequired_read_rejected;
        ] );
      ( "shell",
        [
          Alcotest.test_case "plain fire cycle" `Quick test_shell_plain_fire_cycle;
          Alcotest.test_case "fire when not ready" `Quick test_shell_fire_not_ready_rejected;
          Alcotest.test_case "input stop and overflow" `Quick test_shell_input_stop_and_overflow;
          Alcotest.test_case "void ignored" `Quick test_shell_void_ignored;
          Alcotest.test_case "unbounded" `Quick test_shell_unbounded;
          Alcotest.test_case "oracle fires without unneeded" `Quick test_shell_oracle_fires_without_unneeded;
          Alcotest.test_case "oracle discards buffered" `Quick test_shell_oracle_discards_buffered;
          Alcotest.test_case "plain consumes everything" `Quick test_shell_plain_consumes_everything;
        ] );
      ("properties", props);
    ]
