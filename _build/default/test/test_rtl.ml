(* Tests for Wp_rtl: structural sanity of the generated VHDL. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let count_occurrences haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i acc =
    if i + n > h then acc
    else if String.sub haystack i n = needle then scan (i + n) (acc + 1)
    else scan (i + 1) acc
  in
  scan 0 0

(* Crude structural checker: VHDL block keywords must balance.  Comments
   are stripped first so prose does not confuse the counts. *)
let strip_comments text =
  String.split_on_char '\n' text
  |> List.map (fun line ->
         let rec find i =
           if i + 1 >= String.length line then None
           else if line.[i] = '-' && line.[i + 1] = '-' then Some i
           else find (i + 1)
         in
         match find 0 with Some i -> String.sub line 0 i | None -> line)
  |> String.concat "\n"

let check_balanced text =
  let text = strip_comments text in
  let count needle = count_occurrences text needle in
  (* Line-anchored and role-specific tokens avoid substring aliasing
     ("architecture" inside "end architecture"). *)
  checki "architectures balanced" (count "\narchitecture ") (count "\nend architecture");
  checki "processes balanced" (count ": process") (count "end process");
  checkb "has an entity" true (count "\nentity " >= 1);
  checkb "entities closed" true (count "end entity" >= 1);
  checkb "ifs closed" true (count "end if" >= 1)

(* ------------------------------------------------------------------ *)
(* Relay station                                                      *)
(* ------------------------------------------------------------------ *)

let test_relay_station_rtl () =
  let vhdl = Wp_rtl.Vhdl.relay_station () in
  checkb "entity" true (contains vhdl "entity relay_station is");
  checkb "generic width" true (contains vhdl "generic (width : positive := 32)");
  checkb "stop law" true (contains vhdl "in_stop   <= out_stop and main_full and aux_full");
  checkb "loss assertion" true (contains vhdl "datum lost");
  check_balanced vhdl

let test_relay_station_testbench () =
  let vhdl = Wp_rtl.Vhdl.relay_station_testbench () in
  checkb "instantiates dut" true (contains vhdl "entity work.relay_station");
  checkb "self-checking" true (contains vhdl "out of order");
  check_balanced vhdl

(* ------------------------------------------------------------------ *)
(* Shells                                                             *)
(* ------------------------------------------------------------------ *)

let alu = Wp_soc.Alu.process ()

let test_shell_ports () =
  let vhdl = Wp_rtl.Vhdl.shell alu in
  checkb "entity name" true (contains vhdl "entity alu_shell is");
  (* Every process port appears as a data/valid/stop triple. *)
  Array.iter
    (fun port ->
      checkb (port ^ " data") true (contains vhdl (port ^ "_data"));
      checkb (port ^ " valid") true (contains vhdl (port ^ "_valid"));
      checkb (port ^ " stop") true (contains vhdl (port ^ "_stop")))
    [| "op"; "src1"; "src2"; "result"; "flags"; "addr" |];
  (* Widths come from the codec table. *)
  checkb "op is 25 bits" true (contains vhdl "op_data : in std_logic_vector(24 downto 0)");
  checkb "flags is 2 bits" true
    (contains vhdl "flags_data : out std_logic_vector(1 downto 0)");
  check_balanced vhdl

let test_shell_plain_vs_oracle () =
  let plain = Wp_rtl.Vhdl.shell ~oracle:false alu in
  let oracle = Wp_rtl.Vhdl.shell ~oracle:true alu in
  checkb "plain has no mask" false (contains plain "required_mask");
  checkb "oracle has the mask" true (contains oracle "required_mask");
  checkb "oracle has discard counters" true (contains oracle "pending_discard");
  checkb "oracle mask sized by inputs" true
    (contains oracle "required : out std_logic_vector(2 downto 0)");
  check_balanced oracle

let test_shell_fire_condition () =
  let vhdl = Wp_rtl.Vhdl.shell alu in
  checkb "fires on all inputs and no stop" true
    (contains vhdl
       "fire <= op_ready and src1_ready and src2_ready and not result_stop and not \
        flags_stop and not addr_stop");
  checkb "tau on stall" true (contains vhdl "result_valid <= fire")

let test_case_study_package () =
  let files = Wp_rtl.Vhdl.case_study_package ~oracle:true in
  checki "7 files" 7 (List.length files);
  List.iter
    (fun expected ->
      checkb (expected ^ " present") true (List.mem_assoc expected files))
    [
      "relay_station.vhd";
      "relay_station_tb.vhd";
      "cu_shell.vhd";
      "ic_shell.vhd";
      "rf_shell.vhd";
      "alu_shell.vhd";
      "dc_shell.vhd";
    ];
  List.iter (fun (_, vhdl) -> check_balanced vhdl) files

let test_port_width_table () =
  checki "cu instr" 33 (Wp_rtl.Vhdl.port_width ~block:"CU" ~port:"instr");
  checki "dc cmd" 2 (Wp_rtl.Vhdl.port_width ~block:"DC" ~port:"cmd");
  checki "unknown defaults to 32" 32 (Wp_rtl.Vhdl.port_width ~block:"XX" ~port:"yy")

let test_generation_deterministic () =
  checkb "same output" true (Wp_rtl.Vhdl.shell alu = Wp_rtl.Vhdl.shell alu)

let () =
  Alcotest.run "wp_rtl"
    [
      ( "relay_station",
        [
          Alcotest.test_case "rtl" `Quick test_relay_station_rtl;
          Alcotest.test_case "testbench" `Quick test_relay_station_testbench;
        ] );
      ( "shells",
        [
          Alcotest.test_case "ports" `Quick test_shell_ports;
          Alcotest.test_case "plain vs oracle" `Quick test_shell_plain_vs_oracle;
          Alcotest.test_case "fire condition" `Quick test_shell_fire_condition;
          Alcotest.test_case "case-study package" `Quick test_case_study_package;
          Alcotest.test_case "width table" `Quick test_port_width_table;
          Alcotest.test_case "deterministic" `Quick test_generation_deterministic;
        ] );
    ]
