(* Benchmark harness: regenerates every table and figure of the paper and
   times the kernels behind them with Bechamel.

   Sections:
     1. Figure 1      — the case-study netlist (DOT + loop inventory)
     2. Table 1       — extraction sort, pipelined (13 rows, vs paper)
     3. Table 1       — matrix multiply, pipelined (25 rows, vs paper)
     4. Multicycle    — the supplement the paper discusses but omits
     5. Area          — wrapper/RS overhead (paper section 1 claim)
     6. Equivalence   — golden-vs-WP verdicts across configurations
     7. Ablation      — static bound and WP2 estimator vs simulation
     8. Floorplan     — the methodology flow and its objective ablation
     9. Bechamel      — micro-benchmarks, one per table/figure kernel

   Run with: dune exec bench/main.exe -- [--engine fast|ref] [--gc-stats]
   (set WIREPIPE_BENCH_FAST=1 to shrink workloads for smoke runs;
    --engine picks the simulation kernel for every section, default fast;
    --gc-stats reports minor-heap words per simulated cycle at the end) *)

module Datapath = Wp_soc.Datapath
module Programs = Wp_soc.Programs
module Shell = Wp_lis.Shell
module Config = Wp_core.Config
module Experiment = Wp_core.Experiment
module Table1 = Wp_core.Table1
module Runner = Wp_core.Runner

let fast = Sys.getenv_opt "WIREPIPE_BENCH_FAST" <> None

(* --engine {fast,ref} selects the simulation kernel behind every
   section (also settable via WIREPIPE_ENGINE); --gc-stats adds an
   allocation report.  Unknown flags abort so typos don't silently run
   the default configuration. *)
let engine, gc_stats =
  let engine = ref Wp_sim.Sim.default_kind in
  let gc_stats = ref false in
  let argv = Sys.argv in
  let i = ref 1 in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--engine" ->
      incr i;
      let v = if !i < Array.length argv then argv.(!i) else "" in
      (match Wp_sim.Sim.kind_of_string v with
      | Some k -> engine := k
      | None ->
        Printf.eprintf "bench: --engine wants fast|ref, got %S\n" v;
        exit 2)
    | "--gc-stats" -> gc_stats := true
    | a ->
      Printf.eprintf "bench: unknown argument %S\n" a;
      exit 2);
    incr i
  done;
  (!engine, !gc_stats)

(* One runner for the whole harness: WIREPIPE_JOBS workers, shared result
   cache.  Later sections (ablation, depth sweep) re-request rows the
   Table 1 sections already simulated, so the cache-hit counters below are
   live observability, not decoration. *)
let runner = Runner.create ()

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Run a section on the runner's wall clock and report it immediately.
   (The tables themselves are byte-identical for any WIREPIPE_JOBS; only
   these bracketed stats lines vary run to run.) *)
let timed name f =
  let g0 = if gc_stats then (Gc.quick_stat ()).Gc.minor_words else 0.0 in
  let result, s = Runner.timed runner name f in
  if gc_stats then
    let dw = (Gc.quick_stat ()).Gc.minor_words -. g0 in
    Printf.printf "[%s: %.3f s wall, %d tasks, %d cache hits, %.1f M minor words]\n" name
      s.Runner.wall_seconds s.Runner.section_tasks s.Runner.section_cache_hits (dw /. 1e6)
  else
    Printf.printf "[%s: %.3f s wall, %d tasks, %d cache hits]\n" name
      s.Runner.wall_seconds s.Runner.section_tasks s.Runner.section_cache_hits;
  result

(* ------------------------------------------------------------------ *)
(* 1. Figure 1                                                        *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  heading "Figure 1 — case-study netlist (Graphviz DOT)";
  print_string (Datapath.figure1_dot ());
  print_endline "netlist loops (the throughput-limiting structures):";
  let module T = Wp_util.Text_table in
  let t =
    T.create ~columns:[ ("loop", T.Left); ("m", T.Right); ("Th with 1 RS/channel", T.Right) ]
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun l ->
      let key = String.concat "->" l.Wp_core.Analysis.loop_blocks in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        let m = l.Wp_core.Analysis.processes in
        T.add_row t
          [
            String.concat " -> " l.Wp_core.Analysis.loop_blocks;
            string_of_int m;
            Printf.sprintf "%d/%d" m (2 * m);
          ]
      end)
    (Wp_core.Analysis.all_loops Config.zero);
  T.print t

(* ------------------------------------------------------------------ *)
(* 2-3. Table 1 with paper side-by-side                               *)
(* ------------------------------------------------------------------ *)

let side_by_side ~title ~workload rows =
  let module T = Wp_util.Text_table in
  let t =
    T.create
      ~columns:
        [
          ("#", T.Right);
          ("RS Configuration", T.Left);
          ("WP2 cycles", T.Right);
          ("Th WP1 paper", T.Right);
          ("Th WP1 ours", T.Right);
          ("Th WP2 paper", T.Right);
          ("Th WP2 ours", T.Right);
          ("gain paper", T.Right);
          ("gain ours", T.Right);
        ]
  in
  T.add_span_row t title;
  T.add_separator t;
  let reference = Table1.paper_reference ~workload in
  List.iter
    (fun (row : Table1.row) ->
      let r = row.Table1.record in
      let paper_wp1, paper_wp2 =
        match List.find_opt (fun (i, _, _, _) -> i = row.Table1.index) reference with
        | Some (_, _, wp1, wp2) -> (wp1, wp2)
        | None -> (nan, nan)
      in
      let paper_gain = Wp_util.Stats.percent_gain paper_wp1 paper_wp2 in
      T.add_row t
        [
          string_of_int row.Table1.index;
          row.Table1.label;
          string_of_int r.Experiment.wp2.Wp_soc.Cpu.cycles;
          Printf.sprintf "%.3f" paper_wp1;
          Printf.sprintf "%.3f" r.Experiment.th_wp1;
          Printf.sprintf "%.2f" paper_wp2;
          Printf.sprintf "%.2f" r.Experiment.th_wp2;
          Printf.sprintf "%+.0f%%" paper_gain;
          Printf.sprintf "%+.0f%%" r.Experiment.gain_percent;
        ])
    rows;
  T.print t

let table1_sort () =
  heading "Table 1 — Extraction Sort, pipelined (paper vs this reproduction)";
  let values = Programs.sort_values ~seed:1 ~n:(if fast then 10 else 16) in
  let rows =
    timed "table1-sort" (fun () ->
        Table1.sort_rows
          ~spec:(Wp_core.Run_spec.v ~engine ())
          ~values ~runner ~machine:Datapath.Pipelined ())
  in
  side_by_side ~title:"Extraction Sort (pipelined)" ~workload:`Sort rows

let table1_matmul () =
  heading "Table 1 — Matrix Multiply, pipelined (paper vs this reproduction)";
  let rows =
    timed "table1-matmul" (fun () ->
        Table1.matmul_rows
          ~spec:(Wp_core.Run_spec.v ~engine ())
          ~n:(if fast then 3 else 5) ~runner ~machine:Datapath.Pipelined ())
  in
  side_by_side ~title:"Matrix Multiply (pipelined)" ~workload:`Matmul rows

(* ------------------------------------------------------------------ *)
(* 4. Multicycle supplement                                           *)
(* ------------------------------------------------------------------ *)

let multicycle () =
  heading "Multicycle supplement (the case the paper describes but omits for space)";
  print_endline
    "the CU-IC loop is exercised once per ~5 cycles in the multicycle machine,\n\
     so the oracle recovers most of the relay-station penalty there (the paper\n\
     reports ~60% on this loop):";
  let program =
    Programs.extraction_sort ~values:(Programs.sort_values ~seed:1 ~n:(if fast then 8 else 12))
  in
  let module T = Wp_util.Text_table in
  let t =
    T.create
      ~columns:
        [
          ("RS Configuration", T.Left);
          ("Th WP1", T.Right);
          ("Th WP2", T.Right);
          ("WP2 vs WP1", T.Right);
        ]
  in
  let specs =
    [ ("Only CU-IC", Config.only Datapath.CU_IC 1) ]
    @ List.map
        (fun conn ->
          (Printf.sprintf "Only %s" (Datapath.connection_name conn), Config.only conn 1))
        [ Datapath.CU_AL; Datapath.ALU_CU; Datapath.RF_DC ]
    @ [ ("All 1 (no CU-IC)", Config.uniform ~except:[ Datapath.CU_IC ] 1) ]
  in
  let records =
    timed "multicycle" (fun () ->
        Runner.experiments_spec ~spec:(Wp_core.Run_spec.v ~engine ()) runner ~machine:Datapath.Multicycle ~program
          (List.map snd specs))
  in
  List.iter2
    (fun (label, _) r ->
      T.add_row t
        [
          label;
          Printf.sprintf "%.3f" r.Experiment.th_wp1;
          Printf.sprintf "%.3f" r.Experiment.th_wp2;
          Printf.sprintf "%+.0f%%" r.Experiment.gain_percent;
        ])
    specs records;
  T.print t

(* ------------------------------------------------------------------ *)
(* 5. Area                                                            *)
(* ------------------------------------------------------------------ *)

let area () =
  heading "Area overhead (paper: wrapper < 1% of a 100 kgate IP)";
  let module T = Wp_util.Text_table in
  let t =
    T.create
      ~columns:
        [
          ("block", T.Left);
          ("plain wrapper", T.Right);
          ("oracle wrapper", T.Right);
          ("overhead vs 100 kgates", T.Right);
        ]
  in
  List.iter2
    (fun (name, p, _) (_, o, pct) ->
      T.add_row t
        [
          name;
          Printf.sprintf "%d gates" p.Wp_core.Area.total_gates;
          Printf.sprintf "%d gates" o.Wp_core.Area.total_gates;
          Printf.sprintf "%.2f%%" pct;
        ])
    (Wp_core.Area.case_study_report ~oracle:false)
    (Wp_core.Area.case_study_report ~oracle:true);
  T.print t;
  Printf.printf "relay station (32-bit channel): %d gates\n"
    (Wp_core.Area.relay_station ~width:32).Wp_core.Area.total_gates

(* ------------------------------------------------------------------ *)
(* 6. Equivalence                                                     *)
(* ------------------------------------------------------------------ *)

let equivalence () =
  heading "Formal equivalence (golden vs wire-pipelined, all channels)";
  let program =
    Programs.extraction_sort ~values:(Programs.sort_values ~seed:1 ~n:(if fast then 8 else 12))
  in
  let checks =
    [
      ( "pipelined WP1, All 1 (no CU-IC)",
        Datapath.Pipelined,
        Shell.Plain,
        Config.uniform ~except:[ Datapath.CU_IC ] 1 );
      ( "pipelined WP2, All 1 (no CU-IC)",
        Datapath.Pipelined,
        Shell.Oracle,
        Config.uniform ~except:[ Datapath.CU_IC ] 1 );
      ( "pipelined WP2, All 2 (no CU-IC)",
        Datapath.Pipelined,
        Shell.Oracle,
        Config.uniform ~except:[ Datapath.CU_IC ] 2 );
      ( "multicycle WP2, Only CU-IC",
        Datapath.Multicycle,
        Shell.Oracle,
        Config.only Datapath.CU_IC 1 );
    ]
  in
  let verdicts =
    timed "equivalence" (fun () ->
        Runner.map runner
          (fun (_, machine, mode, config) ->
            Wp_core.Equiv_check.check_spec
              ~spec:(Wp_core.Run_spec.v ~engine ())
              ~machine ~mode ~config program)
          checks)
  in
  List.iter2
    (fun (label, _, _, _) v ->
      Printf.printf "%-44s %s (%d ports, %d events)\n" label
        (if v.Wp_core.Equiv_check.equivalent then "equivalent" else "NOT EQUIVALENT")
        v.Wp_core.Equiv_check.ports_checked v.Wp_core.Equiv_check.events_compared)
    checks verdicts

(* ------------------------------------------------------------------ *)
(* 7. Ablation: analytics vs simulation                               *)
(* ------------------------------------------------------------------ *)

let ablation () =
  heading "Ablation — static bound and oracle estimator vs simulation";
  let program =
    Programs.extraction_sort ~values:(Programs.sort_values ~seed:1 ~n:(if fast then 8 else 12))
  in
  (* Utilisation profile measured once on the relay-free oracle system. *)
  let profile =
    Wp_soc.Cpu.run ~engine ~machine:Datapath.Pipelined ~mode:Shell.Oracle
      ~rs:Wp_soc.Cpu.no_relay_stations program
  in
  let utilization = Wp_core.Analysis.utilization_of_report profile.Wp_soc.Cpu.report in
  let module T = Wp_util.Text_table in
  let t =
    T.create
      ~columns:
        [
          ("config", T.Left);
          ("WP1 bound", T.Right);
          ("WP1 sim", T.Right);
          ("WP2 estimate", T.Right);
          ("WP2 sim", T.Right);
        ]
  in
  let specs =
    List.map
      (fun conn ->
        (Printf.sprintf "Only %s" (Datapath.connection_name conn), Config.only conn 1))
      Datapath.all_connections
    @ [ ("All 1 (no CU-IC)", Config.uniform ~except:[ Datapath.CU_IC ] 1) ]
  in
  let records =
    timed "ablation" (fun () ->
        Runner.experiments_spec ~spec:(Wp_core.Run_spec.v ~engine ()) runner ~machine:Datapath.Pipelined ~program
          (List.map snd specs))
  in
  List.iter2
    (fun (label, config) r ->
      T.add_row t
        [
          label;
          Printf.sprintf "%.3f" r.Experiment.wp1_bound;
          Printf.sprintf "%.3f" r.Experiment.th_wp1;
          Printf.sprintf "%.3f" (Wp_core.Analysis.wp2_estimate config ~utilization);
          Printf.sprintf "%.3f" r.Experiment.th_wp2;
        ])
    specs records;
  T.print t;
  print_endline
    "(the estimator is first-order: it ignores dependency chaining through the\n\
     CU, so it overshoots on ctrl-side loops; the bound column is exact for WP1)"

(* ------------------------------------------------------------------ *)
(* 7b. Buffer sizing (extension)                                      *)
(* ------------------------------------------------------------------ *)

let buffer_sizing () =
  heading "Extension — shell FIFO sizing vs the static bound";
  print_endline
    "capacity-2 FIFOs leave a small gap to the marked-graph bound on long\n\
     loops; deeper FIFOs close it (the relay stations themselves never\n\
     limit throughput):";
  let program =
    Programs.extraction_sort ~values:(Programs.sort_values ~seed:1 ~n:(if fast then 8 else 12))
  in
  let golden = Experiment.golden ~engine ~machine:Datapath.Pipelined program in
  let module T = Wp_util.Text_table in
  let t =
    T.create
      ~columns:
        [
          ("config", T.Left);
          ("bound", T.Right);
          ("cap 2", T.Right);
          ("cap 3", T.Right);
          ("cap 4", T.Right);
          ("unbounded", T.Right);
        ]
  in
  List.iter
    (fun (label, config) ->
      let th capacity =
        let r =
          Wp_soc.Cpu.run ~engine ~capacity ~machine:Datapath.Pipelined ~mode:Shell.Plain
            ~rs:(Config.to_fun config) program
        in
        Printf.sprintf "%.3f" (Wp_soc.Cpu.throughput ~golden r)
      in
      T.add_row t
        [
          label;
          Printf.sprintf "%.3f" (Wp_core.Analysis.wp1_bound_float config);
          th 2;
          th 3;
          th 4;
          th 0;
        ])
    [
      ("Only CU-DC", Config.only Datapath.CU_DC 1);
      ("Only CU-RF", Config.only Datapath.CU_RF 1);
      ("Only ALU-DC", Config.only Datapath.ALU_DC 1);
      ("All 1 (no CU-IC)", Config.uniform ~except:[ Datapath.CU_IC ] 1);
    ];
  T.print t

(* ------------------------------------------------------------------ *)
(* 5b. System-level overhead                                          *)
(* ------------------------------------------------------------------ *)

let system_overhead () =
  heading "Extension — whole-system added hardware per configuration";
  let module T = Wp_util.Text_table in
  let t =
    T.create
      ~columns:
        [ ("config", T.Left); ("added gates", T.Right); ("vs 5 x 100 kgate IPs", T.Right) ]
  in
  List.iter
    (fun (label, config) ->
      let e = Wp_core.Area.system_overhead ~oracle:true config in
      T.add_row t
        [
          label;
          string_of_int e.Wp_core.Area.total_gates;
          Printf.sprintf "%.2f%%" (Wp_core.Area.system_overhead_percent ~oracle:true config);
        ])
    [
      ("wrappers only", Config.zero);
      ("All 1 (no CU-IC)", Config.uniform ~except:[ Datapath.CU_IC ] 1);
      ("All 2 (no CU-IC)", Config.uniform ~except:[ Datapath.CU_IC ] 2);
      ("All 2 + CU-IC 2", Config.uniform 2);
    ];
  T.print t

(* ------------------------------------------------------------------ *)
(* 7c. Throughput vs pipeline depth (extension figure)                *)
(* ------------------------------------------------------------------ *)

let depth_sweep () =
  heading "Extension — throughput vs relay stations on one connection (series)";
  let program =
    Programs.extraction_sort ~values:(Programs.sort_values ~seed:1 ~n:(if fast then 8 else 12))
  in
  let depths = [ 0; 1; 2; 3; 4 ] in
  let module T = Wp_util.Text_table in
  let t =
    T.create
      ~columns:
        (("connection / RS", T.Left)
        :: List.concat_map
             (fun d -> [ (Printf.sprintf "WP1 n=%d" d, T.Right); (Printf.sprintf "WP2 n=%d" d, T.Right) ])
             depths)
  in
  let conns = [ Datapath.CU_IC; Datapath.ALU_CU; Datapath.RF_DC; Datapath.CU_RF ] in
  let configs =
    List.concat_map (fun conn -> List.map (Config.only conn) depths) conns
  in
  let records =
    timed "depth-sweep" (fun () ->
        Runner.experiments_spec ~spec:(Wp_core.Run_spec.v ~engine ()) runner ~machine:Datapath.Pipelined ~program configs)
  in
  let cells =
    List.map
      (fun (r : Experiment.record) ->
        [
          Printf.sprintf "%.2f" r.Experiment.th_wp1;
          Printf.sprintf "%.2f" r.Experiment.th_wp2;
        ])
      records
  in
  let rec rows conns cells =
    match conns with
    | [] -> ()
    | conn :: rest ->
      let here, remaining =
        let n = List.length depths in
        (List.filteri (fun i _ -> i < n) cells, List.filteri (fun i _ -> i >= n) cells)
      in
      T.add_row t (Datapath.connection_name conn :: List.concat here);
      rows rest remaining
  in
  rows conns cells;
  T.print t;
  print_endline
    "(each WP1 column follows the worst loop m/(m+n); the oracle columns decay\n\
     far more slowly on the sparsely used flags and store-data wires)"

(* ------------------------------------------------------------------ *)
(* 7d. Branch prediction ablation (extension)                         *)
(* ------------------------------------------------------------------ *)

let prediction_ablation () =
  heading "Extension — static BTFN branch prediction (future-work CU variant)";
  let countdown =
    Wp_soc.Program.of_source ~name:"countdown"
      {|
        ldi r1, 60
        ldi r2, 0
loop:   addi r1, r1, -1
        cmp r1, r2
        br.gt loop
        halt
      |}
  in
  let programs =
    [
      countdown;
      Programs.extraction_sort ~values:(Programs.sort_values ~seed:1 ~n:(if fast then 8 else 12));
    ]
  in
  let module T = Wp_util.Text_table in
  let t =
    T.create
      ~columns:
        [
          ("program", T.Left);
          ("golden plain", T.Right);
          ("golden btfn", T.Right);
          ("speedup", T.Right);
          ("WP2 All-1 plain", T.Right);
          ("WP2 All-1 btfn", T.Right);
        ]
  in
  let all1 = Config.uniform ~except:[ Datapath.CU_IC ] 1 in
  List.iter
    (fun program ->
      let g m = (Experiment.golden ~engine ~machine:m program).Wp_soc.Cpu.cycles in
      let wp2 m =
        (Runner.experiment_spec ~spec:(Wp_core.Run_spec.v ~engine ()) runner ~machine:m ~program all1).Experiment.wp2
          .Wp_soc.Cpu.cycles
      in
      let plain = g Datapath.Pipelined and btfn = g Datapath.Pipelined_btfn in
      T.add_row t
        [
          program.Wp_soc.Program.name;
          string_of_int plain;
          string_of_int btfn;
          Printf.sprintf "%.2fx" (float_of_int plain /. float_of_int btfn);
          string_of_int (wp2 Datapath.Pipelined);
          string_of_int (wp2 Datapath.Pipelined_btfn);
        ])
    programs;
  T.print t;
  print_endline
    "(BTFN helps code whose loops close on a backward conditional branch; the\n\
     paper's workloads close loops with br.al, which the CU already redirects\n\
     at dispatch, so Table 1 is unaffected by the predictor)"

(* ------------------------------------------------------------------ *)
(* 8. Floorplan flow                                                  *)
(* ------------------------------------------------------------------ *)

let floorplan () =
  heading "Methodology flow — floorplan-derived relay stations";
  List.iter
    (fun (tag, r) ->
      Printf.printf "%-24s die %.2f mm^2 | wire %.1f mm | WP1 bound %.3f | RS: %s\n" tag
        r.Wp_floorplan.Flow.die_area r.Wp_floorplan.Flow.wirelength
        r.Wp_floorplan.Flow.wp1_bound
        (Config.describe r.Wp_floorplan.Flow.config))
    (Wp_floorplan.Flow.objectives_ablation
       ~spec:
         {
           Wp_floorplan.Flow_spec.default with
           Wp_floorplan.Flow_spec.seed = 9;
           reach = 1.3;
         }
       ())

(* ------------------------------------------------------------------ *)
(* 9. Bechamel micro-benchmarks                                       *)
(* ------------------------------------------------------------------ *)

let bechamel_section () =
  heading "Bechamel micro-benchmarks (kernel behind each table/figure)";
  let open Bechamel in
  let sort_program = Programs.extraction_sort ~values:(Programs.sort_values ~seed:1 ~n:8) in
  let matmul_program =
    Programs.matrix_multiply ~n:3 ~a:(Programs.matrix_values ~seed:2 ~n:3)
      ~b:(Programs.matrix_values ~seed:3 ~n:3)
  in
  let config = Config.uniform ~except:[ Datapath.CU_IC ] 1 in
  let run_row machine mode program () =
    ignore (Wp_soc.Cpu.run ~engine ~machine ~mode ~rs:(Config.to_fun config) program)
  in
  let tests =
    [
      Test.make ~name:"table1-sort-row (WP2 sim)"
        (Staged.stage (run_row Datapath.Pipelined Shell.Oracle sort_program));
      Test.make ~name:"table1-matmul-row (WP2 sim)"
        (Staged.stage (run_row Datapath.Pipelined Shell.Oracle matmul_program));
      Test.make ~name:"multicycle-row (WP2 sim)"
        (Staged.stage (run_row Datapath.Multicycle Shell.Oracle sort_program));
      Test.make ~name:"figure1 (netlist + DOT)"
        (Staged.stage (fun () -> ignore (Datapath.figure1_dot ())));
      Test.make ~name:"loop-analysis (min cycle ratio)"
        (Staged.stage (fun () -> ignore (Wp_core.Analysis.wp1_bound config)));
      Test.make ~name:"floorplan-pack (slicing + curves)"
        (Staged.stage (fun () ->
             ignore
               (Wp_floorplan.Place.pack_expression
                  ~blocks:Wp_floorplan.Flow.case_study_blocks
                  (Wp_floorplan.Slicing.initial ~block_count:5))));
      Test.make ~name:"equivalence-check (sort, All 1)"
        (Staged.stage (fun () ->
             ignore
               (Wp_core.Equiv_check.check_spec
                  ~spec:(Wp_core.Run_spec.v ~engine ())
                  ~machine:Datapath.Pipelined ~mode:Shell.Oracle ~config sort_program)));
      Test.make ~name:"area-model (case study)"
        (Staged.stage (fun () -> ignore (Wp_core.Area.case_study_report ~oracle:true)));
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second (if fast then 0.1 else 0.4)) ~kde:None ()
  in
  let module T = Wp_util.Text_table in
  let t = T.create ~columns:[ ("kernel", T.Left); ("time/run", T.Right) ] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
            let cell =
              if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            in
            T.add_row t [ name; cell ]
          | Some _ | None -> T.add_row t [ name; "n/a" ])
        analyzed)
    tests;
  T.print t

let () =
  print_endline "Wire-Pipelined SoC — benchmark harness (DATE'05 reproduction)";
  if fast then print_endline "(fast mode: shrunken workloads)";
  Printf.printf "(parallel runner: %d jobs; set WIREPIPE_JOBS to override)\n"
    (Runner.jobs runner);
  figure1 ();
  table1_sort ();
  table1_matmul ();
  multicycle ();
  area ();
  system_overhead ();
  equivalence ();
  ablation ();
  buffer_sizing ();
  depth_sweep ();
  prediction_ablation ();
  floorplan ();
  bechamel_section ();
  heading "Runner observability";
  Format.printf "%a@." Runner.pp_stats (Runner.stats runner);
  print_endline "\ndone."
