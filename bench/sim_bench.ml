(* Simulation-kernel benchmark: reference interpreter vs compiled Fast
   engine on the Table 1 sweep, with allocation accounting.

   Usage: dune exec bench/sim_bench.exe -- [options]
     --engine fast|ref|static|both|all
                              which kernel(s) to measure (default both;
                              'all' adds the static-schedule kernel)
     --probe core|batch|serve|degradation|topo|flow|all
                              which probe(s) to run (default core; repeatable).
                              core  = the classic engine sweep below
                              batch = 64-lane SoA Batch vs sequential Fast
                              serve = in-process daemon saturation (p50/p99)
                              degradation = serve throughput/p99 with 20%
                                      of clients misbehaving (gate: p99
                                      within 3x clean)
                              topo  = generated-topology scale (ring:1000,
                                      mesh:16x16) cycles/sec per engine
     --smoke                  shrink workloads (also WIREPIPE_BENCH_FAST=1)
     --out FILE               merge machine-readable results into FILE
                              (default BENCH_sim.json; sections from probes
                              not run this time are preserved)
     --min-ratio R            exit non-zero unless fast/ref throughput >= R
                              (core probe) / batch/sequential specs-per-sec
                              >= R (batch probe; floor defaults to 2)
     --gc-stats               print full Gc deltas per measurement

   The workload is the Table 1 configuration sweep (both paper workloads,
   plain and oracle wrappers, golden + Only-X + All-1 + All-2 rows), run
   through Cpu.run exactly as the table driver does.  A second,
   kernel-only measurement steps a deadlocked ring — no process ever
   fires, so every allocated word is the kernel's own; the compiled
   engine must score ~0 words/cycle there. *)

module Datapath = Wp_soc.Datapath
module Programs = Wp_soc.Programs
module Program = Wp_soc.Program
module Cpu = Wp_soc.Cpu
module Shell = Wp_lis.Shell
module Process = Wp_lis.Process
module Config = Wp_core.Config
module Protect = Wp_core.Protect
module Network = Wp_sim.Network
module Engine = Wp_sim.Engine
module Fast = Wp_sim.Fast
module Static = Wp_sim.Static
module Sim = Wp_sim.Sim
module Cycle_ratio = Wp_graph.Cycle_ratio

(* ------------------------------------------------------------------ *)
(* CLI                                                                *)
(* ------------------------------------------------------------------ *)

type options = {
  engines : Sim.kind list;
  smoke : bool;
  out : string;
  min_ratio : float option;
  gc_stats : bool;
  probes : string list;
}

let parse_args () =
  let engines = ref [ Sim.Reference; Sim.Fast ] in
  let smoke = ref (Sys.getenv_opt "WIREPIPE_BENCH_FAST" <> None) in
  let out = ref "BENCH_sim.json" in
  let min_ratio = ref None in
  let gc_stats = ref false in
  let probes = ref [] in
  let argv = Sys.argv in
  let i = ref 1 in
  let next what =
    incr i;
    if !i >= Array.length argv then (Printf.eprintf "sim_bench: %s needs a value\n" what; exit 2);
    argv.(!i)
  in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--engine" -> (
      match next "--engine" with
      | "both" -> engines := [ Sim.Reference; Sim.Fast ]
      | "all" -> engines := [ Sim.Reference; Sim.Fast; Sim.Static ]
      | s -> (
        match Sim.kind_of_string s with
        | Some k -> engines := [ k ]
        | None ->
          Printf.eprintf
            "sim_bench: unknown engine %S (want fast|ref|static|both|all)\n" s;
          exit 2))
    | "--smoke" -> smoke := true
    | "--out" -> out := next "--out"
    | "--min-ratio" -> min_ratio := Some (float_of_string (next "--min-ratio"))
    | "--gc-stats" -> gc_stats := true
    | "--probe" -> (
      match next "--probe" with
      | "all" ->
        probes := !probes @ [ "core"; "batch"; "serve"; "degradation"; "topo"; "flow" ]
      | ("core" | "batch" | "serve" | "degradation" | "topo" | "flow") as p ->
        probes := !probes @ [ p ]
      | s ->
        Printf.eprintf
          "sim_bench: unknown probe %S (want core|batch|serve|degradation|topo|flow|all)\n" s;
        exit 2)
    | a ->
      Printf.eprintf "sim_bench: unknown argument %S\n" a;
      exit 2);
    incr i
  done;
  {
    engines = !engines;
    smoke = !smoke;
    out = !out;
    min_ratio = !min_ratio;
    gc_stats = !gc_stats;
    probes = (if !probes = [] then [ "core" ] else !probes);
  }

(* ------------------------------------------------------------------ *)
(* Workload: the Table 1 sweep                                        *)
(* ------------------------------------------------------------------ *)

let sweep_configs =
  [ ("All 0", Config.zero) ]
  @ List.map
      (fun conn -> (Datapath.connection_name conn, Config.only conn 1))
      Datapath.all_connections
  @ [
      ("All 1 (no CU-IC)", Config.uniform ~except:[ Datapath.CU_IC ] 1);
      ("All 2 (no CU-IC)", Config.uniform ~except:[ Datapath.CU_IC ] 2);
    ]

let sweep_programs ~smoke =
  [
    ( "sort",
      Programs.extraction_sort
        ~values:(Programs.sort_values ~seed:1 ~n:(if smoke then 8 else 16)) );
    ( "matmul",
      let n = if smoke then 3 else 5 in
      Programs.matrix_multiply ~n ~a:(Programs.matrix_values ~seed:2 ~n)
        ~b:(Programs.matrix_values ~seed:3 ~n) );
  ]

let sweep_runs ~smoke =
  List.concat_map
    (fun (_, program) ->
      List.concat_map
        (fun mode -> List.map (fun (_, config) -> (program, mode, config)) sweep_configs)
        [ Shell.Plain; Shell.Oracle ])
    (sweep_programs ~smoke)

type measurement = {
  runs : int;
  total_cycles : int;
  seconds : float;
  minor_words : float;
}

let cycles_per_sec m =
  if m.seconds <= 0.0 then 0.0 else float_of_int m.total_cycles /. m.seconds

let words_per_cycle m =
  if m.total_cycles = 0 then 0.0 else m.minor_words /. float_of_int m.total_cycles

let measure_runs ~engine ?protect ?telemetry runs =
  (* Warm-up pass: fault in code paths and steady-state the heap so the
     measured pass compares kernels, not cold starts. *)
  let execute () =
    List.fold_left
      (fun acc (program, mode, config) ->
        let r =
          Cpu.run ~engine ?protect ?telemetry ~machine:Datapath.Pipelined ~mode
            ~rs:(Config.to_fun config) program
        in
        if r.Cpu.outcome <> Cpu.Completed then failwith "sim_bench: sweep run did not complete";
        acc + r.Cpu.cycles)
      0 runs
  in
  ignore (execute ());
  Gc.full_major ();
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let total_cycles = execute () in
  let seconds = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  {
    runs = List.length runs;
    total_cycles;
    seconds;
    minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
  }

(* The static kernel has no oracle-mode firing word, so its sweep covers
   the Plain rows only — still the same programs and RS configurations,
   just not comparable head-to-head with the dynamic engines' numbers
   (those are gated by [speedup] on Reference vs Fast anyway). *)
let runs_for ~engine ~smoke =
  let runs = sweep_runs ~smoke in
  match engine with
  | Sim.Static -> List.filter (fun (_, mode, _) -> mode = Shell.Plain) runs
  | Sim.Reference | Sim.Fast -> runs

let measure_sweep ~engine ~smoke = measure_runs ~engine (runs_for ~engine ~smoke)

(* ------------------------------------------------------------------ *)
(* Link-protection overhead probe                                      *)
(* ------------------------------------------------------------------ *)

(* Same workloads, plain wrappers, a representative pair of configs; run
   once with every connection link-protected and once bare.  Clean
   protected runs are cycle-neutral (the link's forward latency matches
   the relay stations it subsumes and the credit window covers the round
   trip), so the steady-state overhead is the throughput ratio in
   simulated cycles per second, alongside the kernel's words/cycle in
   each regime — the Fast engine must not allocate more per cycle with
   the link layer engaged. *)
let link_runs ~smoke =
  let configs = [ Config.zero; Config.uniform ~except:[ Datapath.CU_IC ] 1 ] in
  List.concat_map
    (fun (_, program) ->
      List.map (fun config -> (program, Shell.Plain, config)) configs)
    (sweep_programs ~smoke)

let protect_all = Protect.to_fun (Protect.all ())

let measure_link ~engine ~smoke ~protected_ =
  measure_runs ~engine
    ?protect:(if protected_ then Some protect_all else None)
    (link_runs ~smoke)

(* ------------------------------------------------------------------ *)
(* Telemetry overhead probe                                            *)
(* ------------------------------------------------------------------ *)

(* The full Table 1 sweep, counters-only telemetry vs telemetry off.
   The counters path is a few dozen array updates per cycle (one class
   write per node, occupancy/stop/gap bookkeeping per channel), so the
   compiled kernel should stay within a few percent of its bare
   throughput (target < 3%; see EXPERIMENTS.md for what we actually
   measure), and the telemetry-off path must stay allocation-free. *)
let measure_telemetry ~engine ~smoke ~telemetry_on =
  measure_runs ~engine
    ?telemetry:
      (if telemetry_on then Some Wp_sim.Telemetry.counters else None)
    (sweep_runs ~smoke)

(* ------------------------------------------------------------------ *)
(* Kernel-only allocation probe                                       *)
(* ------------------------------------------------------------------ *)

(* A two-node zero-RS ring under capacity-1 FIFOs deadlocks at reset:
   every step executes all three kernel phases but no process fires, so
   the measured allocation is purely the kernel's. *)
let stalled_ring () =
  let relay name = Process.unary ~name ~input_name:"i" ~output_name:"o" ~reset:0 succ in
  let net = Network.create () in
  let a = Network.add net (relay "a") in
  let b = Network.add net (relay "b") in
  ignore (Network.connect net ~src:(a, "o") ~dst:(b, "i") ());
  ignore (Network.connect net ~src:(b, "o") ~dst:(a, "i") ());
  net

let probe_cycles = 200_000

let measure_kernel_steps ~engine ~capacity net =
  let step =
    match engine with
    | Sim.Reference ->
      let e = Engine.create ~capacity ~mode:Shell.Plain net in
      fun () -> Engine.step e
    | Sim.Fast ->
      let f = Fast.create ~capacity ~mode:Shell.Plain net in
      fun () -> Fast.step f
    | Sim.Static ->
      let s = Static.create ~capacity ~mode:Shell.Plain net in
      fun () -> Static.step s
  in
  for _ = 1 to 1_000 do step () done;
  (* Each timed window is only tens of milliseconds, so a single sample
     is at the mercy of scheduler noise; keep the fastest of three. *)
  let best = ref infinity in
  let words = ref 0.0 in
  for _ = 1 to 3 do
    Gc.full_major ();
    let g0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to probe_cycles do step () done;
    let seconds = Unix.gettimeofday () -. t0 in
    let g1 = Gc.quick_stat () in
    if seconds < !best then begin
      best := seconds;
      words := g1.Gc.minor_words -. g0.Gc.minor_words
    end
  done;
  { runs = 1; total_cycles = probe_cycles; seconds = !best; minor_words = !words }

let measure_kernel_stall ~engine =
  measure_kernel_steps ~engine ~capacity:1 (stalled_ring ())

(* ------------------------------------------------------------------ *)
(* Static-kernel probe                                                *)
(* ------------------------------------------------------------------ *)

(* Fast vs Static on two kernel-only workloads: the deadlocked ring
   (pure per-cycle overhead — the static table replays an all-stall
   period, so this is where table lookup beats the three-phase
   handshake hardest) and a live 2/3-rate ring whose shells actually
   fire.  Alongside the timing, an exact-rational cross-check: the
   firing word the prepass discovered must sustain precisely the rate
   of the balanced-word schedule on the capacity-extended marked graph
   — 0/1 for the deadlocked ring, 2/3 for the live one. *)
let live_ring () =
  let relay name = Process.unary ~name ~input_name:"i" ~output_name:"o" ~reset:0 succ in
  let net = Network.create () in
  let a = Network.add net (relay "a") in
  let b = Network.add net (relay "b") in
  ignore (Network.connect net ~src:(a, "o") ~dst:(b, "i") ~relay_stations:1 ());
  ignore (Network.connect net ~src:(b, "o") ~dst:(a, "i") ());
  net

let check_static_rate ~capacity ~what net expected =
  let st = Static.create ~capacity ~mode:Shell.Plain net in
  let sched = Static.schedule ~capacity net in
  let measured = Static.rate st 0 in
  let show r = Printf.sprintf "%d/%d" r.Cycle_ratio.num r.Cycle_ratio.den in
  if measured <> sched.Wp_graph.Schedule.rate || measured <> expected then begin
    Printf.eprintf
      "sim_bench: FAIL — %s: static word rate %s, schedule rate %s, expected %s\n"
      what (show measured)
      (show sched.Wp_graph.Schedule.rate)
      (show expected);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)
(* ------------------------------------------------------------------ *)

let engine_name = function
  | Sim.Reference -> "reference"
  | Sim.Fast -> "fast"
  | Sim.Static -> "static"

let print_measurement ~gc_stats name m =
  Printf.printf "%-10s %3d runs  %9d cycles  %7.3f s  %12.0f cyc/s  %8.2f words/cycle\n"
    name m.runs m.total_cycles m.seconds (cycles_per_sec m) (words_per_cycle m);
  if gc_stats then
    Printf.printf "           minor words: %.0f (%.1f per cycle, %.0f per run)\n" m.minor_words
      (words_per_cycle m)
      (m.minor_words /. float_of_int (max 1 m.runs))

let json_of_measurement m =
  Printf.sprintf
    "{ \"runs\": %d, \"cycles\": %d, \"seconds\": %.6f, \"cycles_per_sec\": %.1f, \
     \"minor_words_per_cycle\": %.4f }"
    m.runs m.total_cycles m.seconds (cycles_per_sec m) (words_per_cycle m)


(* ------------------------------------------------------------------ *)
(* Probe: the classic engine sweep (reference vs fast vs static)      *)
(* ------------------------------------------------------------------ *)

(* Each probe returns its JSON sections as [(key, raw value)] pairs plus
   a list of gate failures; main merges the sections into the output
   file ({!Wp_util.Json_merge}), so a single-probe run updates only its
   own sections instead of dropping everyone else's numbers. *)

let run_core opts =
  Printf.printf "Simulation kernel benchmark — Table 1 sweep (%s workloads)\n%!"
    (if opts.smoke then "smoke" else "full");
  let sweep =
    List.map
      (fun engine ->
        let m = measure_sweep ~engine ~smoke:opts.smoke in
        print_measurement ~gc_stats:opts.gc_stats (engine_name engine) m;
        (engine, m))
      opts.engines
  in
  print_endline "kernel-only stall probe (deadlocked ring, no process firings):";
  let stall =
    List.map
      (fun engine ->
        let m = measure_kernel_stall ~engine in
        print_measurement ~gc_stats:opts.gc_stats (engine_name engine) m;
        (engine, m))
      opts.engines
  in
  print_endline "static-kernel probe (table replay vs compiled kernel):";
  let static_kernel =
    check_static_rate ~capacity:1 ~what:"stalled ring" (stalled_ring ())
      (Cycle_ratio.make_ratio 0 1);
    check_static_rate ~capacity:2 ~what:"live ring" (live_ring ())
      (Cycle_ratio.make_ratio 2 3);
    let stall_fast = measure_kernel_steps ~engine:Sim.Fast ~capacity:1 (stalled_ring ()) in
    let stall_static = measure_kernel_steps ~engine:Sim.Static ~capacity:1 (stalled_ring ()) in
    let live_fast = measure_kernel_steps ~engine:Sim.Fast ~capacity:2 (live_ring ()) in
    let live_static = measure_kernel_steps ~engine:Sim.Static ~capacity:2 (live_ring ()) in
    print_measurement ~gc_stats:opts.gc_stats "fast/stall" stall_fast;
    print_measurement ~gc_stats:opts.gc_stats "static/stall" stall_static;
    print_measurement ~gc_stats:opts.gc_stats "fast/live" live_fast;
    print_measurement ~gc_stats:opts.gc_stats "static/live" live_static;
    let ratio a b = if cycles_per_sec b > 0.0 then cycles_per_sec a /. cycles_per_sec b else 0.0 in
    let stall_speedup = ratio stall_static stall_fast in
    let live_speedup = ratio live_static live_fast in
    Printf.printf "static/fast speedup: %.2fx stalled, %.2fx live\n" stall_speedup live_speedup;
    (stall_fast, stall_static, live_fast, live_static, stall_speedup, live_speedup)
  in
  (* Link protection and telemetry are unschedulable by construction, so
     those two probes only cover the dynamic engines. *)
  let dynamic_engines = List.filter (fun e -> e <> Sim.Static) opts.engines in
  print_endline "link-protection overhead (plain wrappers, all connections protected):";
  let link =
    List.map
      (fun engine ->
        let bare = measure_link ~engine ~smoke:opts.smoke ~protected_:false in
        let prot = measure_link ~engine ~smoke:opts.smoke ~protected_:true in
        print_measurement ~gc_stats:opts.gc_stats (engine_name engine ^ "/bare") bare;
        print_measurement ~gc_stats:opts.gc_stats (engine_name engine ^ "/link") prot;
        let slowdown =
          if cycles_per_sec prot > 0.0 then cycles_per_sec bare /. cycles_per_sec prot else 0.0
        in
        Printf.printf "%-10s protected slowdown %.2fx (%.2f -> %.2f words/cycle)\n"
          (engine_name engine) slowdown (words_per_cycle bare) (words_per_cycle prot);
        (engine, (bare, prot, slowdown)))
      dynamic_engines
  in
  print_endline "telemetry overhead (counters on vs off, plain wrappers):";
  let telemetry =
    List.map
      (fun engine ->
        let off = measure_telemetry ~engine ~smoke:opts.smoke ~telemetry_on:false in
        let on = measure_telemetry ~engine ~smoke:opts.smoke ~telemetry_on:true in
        print_measurement ~gc_stats:opts.gc_stats (engine_name engine ^ "/off") off;
        print_measurement ~gc_stats:opts.gc_stats (engine_name engine ^ "/tel") on;
        let slowdown =
          if cycles_per_sec on > 0.0 then cycles_per_sec off /. cycles_per_sec on else 0.0
        in
        Printf.printf "%-10s telemetry slowdown %.3fx (%.2f -> %.2f words/cycle)\n"
          (engine_name engine) slowdown (words_per_cycle off) (words_per_cycle on);
        (engine, (off, on, slowdown)))
      dynamic_engines
  in
  let speedup =
    match (List.assoc_opt Sim.Reference sweep, List.assoc_opt Sim.Fast sweep) with
    | Some r, Some f when cycles_per_sec r > 0.0 -> Some (cycles_per_sec f /. cycles_per_sec r)
    | _ -> None
  in
  (match speedup with
  | Some s -> Printf.printf "fast/reference throughput ratio: %.2fx\n" s
  | None -> ());
  let engine_map entries =
    Printf.sprintf "{\n%s\n  }"
      (String.concat ",\n"
         (List.map
            (fun (e, m) -> Printf.sprintf "    %S: %s" (engine_name e) (json_of_measurement m))
            entries))
  in
  let stall_fast, stall_static, live_fast, live_static, stall_speedup, live_speedup =
    static_kernel
  in
  let static_pass = stall_speedup > 1.0 in
  let pass =
    match (opts.min_ratio, speedup) with
    | Some r, Some s -> s >= r
    | Some _, None -> false
    | None, _ -> true
  in
  let sections =
    [
      ("smoke", Printf.sprintf "%b" opts.smoke);
      ( "workloads",
        Printf.sprintf "[%s]"
          (String.concat ", "
             (List.map (fun (n, _) -> Printf.sprintf "%S" n) (sweep_programs ~smoke:opts.smoke)))
      );
      ("table1_sweep", engine_map sweep);
      ("kernel_stall_probe", engine_map stall);
      ( "link_overhead",
        Printf.sprintf "{\n%s\n  }"
          (String.concat ",\n"
             (List.map
                (fun (e, (bare, prot, slowdown)) ->
                  Printf.sprintf
                    "    %S: { \"unprotected\": %s,\n           \"protected\": %s,\n           \
                     \"slowdown\": %.3f }"
                    (engine_name e) (json_of_measurement bare) (json_of_measurement prot) slowdown)
                link)) );
      ( "telemetry_overhead",
        Printf.sprintf "{\n%s\n  }"
          (String.concat ",\n"
             (List.map
                (fun (e, (off, on, slowdown)) ->
                  Printf.sprintf
                    "    %S: { \"off\": %s,\n           \"on\": %s,\n           \
                     \"slowdown\": %.3f }"
                    (engine_name e) (json_of_measurement off) (json_of_measurement on) slowdown)
                telemetry)) );
      ( "static_kernel",
        Printf.sprintf
          "{\n    \"stall\": { \"fast\": %s,\n               \"static\": %s,\n               \
           \"speedup\": %.3f },\n    \"live\": { \"fast\": %s,\n              \"static\": %s,\n   \
           \           \"speedup\": %.3f },\n    \"pass\": %b\n  }"
          (json_of_measurement stall_fast)
          (json_of_measurement stall_static)
          stall_speedup
          (json_of_measurement live_fast)
          (json_of_measurement live_static)
          live_speedup static_pass );
    ]
    @ (match speedup with
      | Some s -> [ ("speedup", Printf.sprintf "%.3f" s) ]
      | None -> [])
    @ (match opts.min_ratio with
      | Some r -> [ ("min_ratio", Printf.sprintf "%.3f" r) ]
      | None -> [])
    @ [ ("pass", Printf.sprintf "%b" pass) ]
  in
  let failures =
    (if static_pass then []
     else
       [
         Printf.sprintf
           "sim_bench: FAIL — static kernel not strictly faster than fast on the stall probe \
            (%.2fx)"
           stall_speedup;
       ])
    @
    if pass then []
    else
      match (opts.min_ratio, speedup) with
      | Some r, Some s ->
        [ Printf.sprintf "sim_bench: FAIL — fast/reference ratio %.2f below required %.2f" s r ]
      | Some r, None ->
        [ Printf.sprintf "sim_bench: FAIL — ratio check requires both engines (min %.2f)" r ]
      | None, _ -> []
  in
  (sections, failures)

(* ------------------------------------------------------------------ *)
(* Probe: batched SoA kernel vs sequential Fast                       *)
(* ------------------------------------------------------------------ *)

(* N = 64 independent Run_specs stepped as one Wp_sim.Batch invocation
   vs the same specs run one after another on Fast.  Two workloads:

   - stall-heavy: random programs under deep relay-station chains
     (uniform 1..4 everywhere but CU-IC, capacity 2) — the paper's
     wire-pipelined regime, where most cycles move tokens through relay
     stations rather than firing processes.  This is the gated ratio:
     the batch kernel's static-schedule replay amortizes all of that
     handshake work across lanes.
   - mixed: alternating bare and All-1 configurations with varying
     capacities — process-execution-bound, so the achievable ratio is
     structurally smaller; it is reported but not gated.

   Lanes are Plain and unfaulted in both workloads, matching Table 1's
   throughput rows.  Results byte-match per-lane Fast by construction
   (the 50-seed differential battery in test_batch.ml asserts it). *)

let batch_lanes = 64
let batch_max_cycles = 2_000_000

let batch_program seed =
  match Programs.of_string (Printf.sprintf "random:%d" seed) with
  | Ok p -> p
  | Error m -> failwith ("sim_bench: random program: " ^ m)

let batch_workload kind =
  Array.init batch_lanes (fun i ->
      match kind with
      | `Stall ->
        let config = Config.uniform ~except:[ Datapath.CU_IC ] (1 + (i mod 4)) in
        (batch_program (1000 + i), config, 2)
      | `Mixed ->
        let config =
          if i mod 2 = 0 then Config.zero
          else Config.uniform ~except:[ Datapath.CU_IC ] 1
        in
        (batch_program i, config, 2 + (i mod 3)))

let measure_batch_workload ~reps kind =
  let specs = batch_workload kind in
  let dps =
    Array.map
      (fun (program, config, _) ->
        Datapath.build ~machine:Datapath.Pipelined ~rs:(Config.to_fun config) program)
      specs
  in
  let lanes =
    Array.mapi
      (fun i dp ->
        let _, _, capacity = specs.(i) in
        {
          Wp_sim.Batch.net = dp.Datapath.network;
          mode = Shell.Plain;
          capacity;
          fault = Wp_sim.Fault.none;
          max_cycles = batch_max_cycles;
          cancel = Wp_util.Cancel.never;
        })
      dps
  in
  let run_seq () =
    Array.iteri
      (fun i dp ->
        let _, _, capacity = specs.(i) in
        let f = Fast.create ~capacity ~mode:Shell.Plain dp.Datapath.network in
        ignore (Fast.run ~max_cycles:batch_max_cycles f))
      dps
  in
  let run_batch () =
    let b = Wp_sim.Batch.create lanes in
    ignore (Wp_sim.Batch.run b)
  in
  let time f =
    f ();
    (* one warm-up rep *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do f () done;
    Unix.gettimeofday () -. t0
  in
  let seq_s = time run_seq in
  let batch_s = time run_batch in
  let specs_per_sec s =
    if s <= 0.0 then 0.0 else float_of_int (batch_lanes * reps) /. s
  in
  (specs_per_sec seq_s, specs_per_sec batch_s)

let run_batch_probe opts =
  let reps = if opts.smoke then 10 else 30 in
  let floor = match opts.min_ratio with Some r -> r | None -> 2.0 in
  Printf.printf
    "batch-kernel probe (%d lanes, %d reps, sequential Fast vs fused Batch):\n%!"
    batch_lanes reps;
  let seq_stall, batch_stall = measure_batch_workload ~reps `Stall in
  let seq_mixed, batch_mixed = measure_batch_workload ~reps `Mixed in
  let ratio seq batch = if seq > 0.0 then batch /. seq else 0.0 in
  let stall_ratio = ratio seq_stall batch_stall in
  let mixed_ratio = ratio seq_mixed batch_mixed in
  Printf.printf
    "  stall-heavy: %8.1f specs/s sequential, %8.1f specs/s batched — %.2fx (floor %.2fx)\n"
    seq_stall batch_stall stall_ratio floor;
  Printf.printf
    "  mixed:       %8.1f specs/s sequential, %8.1f specs/s batched — %.2fx (reported only)\n"
    seq_mixed batch_mixed mixed_ratio;
  let pass = stall_ratio >= floor in
  let workload_json seq batch r =
    Printf.sprintf
      "{ \"seq_specs_per_sec\": %.1f, \"batch_specs_per_sec\": %.1f, \"ratio\": %.3f }"
      seq batch r
  in
  let sections =
    [
      ( "batch_kernel",
        Printf.sprintf
          "{\n    \"lanes\": %d,\n    \"reps\": %d,\n    \"stall_heavy\": %s,\n    \"mixed\": \
           %s,\n    \"min_ratio\": %.3f,\n    \"pass\": %b\n  }"
          batch_lanes reps
          (workload_json seq_stall batch_stall stall_ratio)
          (workload_json seq_mixed batch_mixed mixed_ratio)
          floor pass );
    ]
  in
  let failures =
    if pass then []
    else
      [
        Printf.sprintf
          "sim_bench: FAIL — batch/sequential specs-per-sec ratio %.2f below required %.2f \
           (stall-heavy workload, %d lanes)"
          stall_ratio floor batch_lanes;
      ]
  in
  (sections, failures)

(* ------------------------------------------------------------------ *)
(* Probe: serve-daemon saturation                                     *)
(* ------------------------------------------------------------------ *)

(* An in-process Service daemon on a throwaway socket, driven through
   Service.Client at increasing offered load (pipelining windows 1 and
   8).  Every request is a distinct random program, so each one is real
   simulation work, not a cache hit; latency is measured send-to-reply
   per request, so queueing delay under load lands in p99 exactly as a
   remote client would see it. *)

let serve_levels = [ 1; 8 ]

let run_serve_probe opts =
  let n_requests = if opts.smoke then 8 else 32 in
  Printf.printf "serve-saturation probe (windows %s, %d requests each):\n%!"
    (String.concat ", " (List.map string_of_int serve_levels))
    n_requests;
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wp_bench_%d.sock" (Unix.getpid ()))
  in
  let runner = Wp_core.Runner.create ~cache:false () in
  let svc = Wp_core.Service.create ~runner socket in
  let conn = Wp_core.Service.Client.connect socket in
  let errors = ref 0 in
  let measure_level level_idx window =
    let module Client = Wp_core.Service.Client in
    let module Wire = Wp_core.Wire in
    let base = 10_000 * (level_idx + 1) in
    let args i =
      Wire.run_defaults
        ~program:(Printf.sprintf "random:%d" (base + i))
        ~machine:"pipelined" ~config:"none"
    in
    let lat = Array.make n_requests 0.0 in
    let sent_at = Array.make n_requests 0.0 in
    let busy = ref 0 in
    let sent = ref 0 and recvd = ref 0 in
    let t0 = Unix.gettimeofday () in
    while !recvd < n_requests do
      while !sent < n_requests && !sent - !recvd < window do
        sent_at.(!sent) <- Unix.gettimeofday ();
        Client.send conn ~tag:!sent (Wire.Run (args !sent));
        incr sent
      done;
      match Client.recv conn with
      | None -> failwith "sim_bench: daemon closed the connection"
      | Some (tag, Wire.Busy _) ->
        incr busy;
        Thread.delay 0.002;
        Client.send conn ~tag (Wire.Run (args tag))
      | Some (tag, reply) ->
        lat.(tag) <- Unix.gettimeofday () -. sent_at.(tag);
        incr recvd;
        (match reply with
        | Wire.Result _ -> ()
        | Wire.Error m ->
          incr errors;
          Printf.eprintf "sim_bench: serve probe: daemon error: %s\n" m
        | Wire.Quarantined { last_error; _ } ->
          incr errors;
          Printf.eprintf "sim_bench: serve probe: quarantined: %s\n" last_error
        | _ -> ())
    done;
    let elapsed = Unix.gettimeofday () -. t0 in
    Array.sort compare lat;
    let pct p = lat.(min (n_requests - 1) (n_requests * p / 100)) *. 1e3 in
    let specs_per_sec =
      if elapsed > 0.0 then float_of_int n_requests /. elapsed else 0.0
    in
    let p50 = pct 50 and p99 = pct 99 in
    Printf.printf
      "  window %2d: %7.1f specs/s, p50 %7.2f ms, p99 %7.2f ms, %d busy retries\n"
      window specs_per_sec p50 p99 !busy;
    Printf.sprintf
      "{ \"window\": %d, \"requests\": %d, \"specs_per_sec\": %.1f, \"p50_ms\": %.3f, \
       \"p99_ms\": %.3f, \"busy\": %d }"
      window n_requests specs_per_sec p50 p99 !busy
  in
  let levels = List.mapi measure_level serve_levels in
  Wp_core.Service.Client.close conn;
  Wp_core.Service.stop svc;
  Wp_core.Runner.shutdown runner;
  let pass = !errors = 0 in
  let sections =
    [
      ( "serve_saturation",
        Printf.sprintf "{\n    \"levels\": [\n      %s\n    ],\n    \"pass\": %b\n  }"
          (String.concat ",\n      " levels)
          pass );
    ]
  in
  let failures =
    if pass then []
    else [ Printf.sprintf "sim_bench: FAIL — serve probe saw %d error replies" !errors ]
  in
  (sections, failures)

(* ------------------------------------------------------------------ *)
(* Probe: degradation under misbehaving clients                       *)
(* ------------------------------------------------------------------ *)

(* The serve numbers with 20% of the tenants misbehaving: four
   well-behaved clients run the usual distinct-program workload while a
   fifth connection cycles through the hostile repertoire (framed
   garbage, then a reply flood it never reads).  Throughput and p99 are
   measured for the well-behaved clients only, once clean and once
   under attack; the gate is the fault-boundary invariant — hostile
   tenants may cost throughput, never correctness (no error replies to
   the good clients) and no more than 3x the clean p99. *)

let degradation_good_clients = 4

let run_degradation_probe opts =
  let module Client = Wp_core.Service.Client in
  let module Wire = Wp_core.Wire in
  let module Frame = Wp_util.Frame in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let n_requests = if opts.smoke then 8 else 32 in
  Printf.printf
    "degradation probe (%d well-behaved clients x %d requests, 1 hostile):\n%!"
    degradation_good_clients n_requests;
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wp_bench_degrade_%d.sock" (Unix.getpid ()))
  in
  let runner = Wp_core.Runner.create ~cache:false () in
  let svc =
    Wp_core.Service.create ~reply_bound:32 ~stall_timeout:0.5
      ~write_timeout:0.3 ~runner socket
  in
  let errors = ref 0 in
  let emut = Mutex.create () in
  let fail msg =
    Mutex.lock emut;
    incr errors;
    Mutex.unlock emut;
    Printf.eprintf "sim_bench: degradation probe: %s\n" msg
  in
  (* One well-behaved client: window 2, every request a distinct random
     program (real work, not hits), latency measured send-to-reply. *)
  let good_client ~base deliver =
    Thread.create
      (fun () ->
        let conn = Client.connect socket in
        let args i =
          Wire.run_defaults
            ~program:(Printf.sprintf "random:%d" (base + i))
            ~machine:"pipelined" ~config:"none"
        in
        let lat = Array.make n_requests 0.0 in
        let sent_at = Array.make n_requests 0.0 in
        let sent = ref 0 and recvd = ref 0 in
        while !recvd < n_requests do
          while !sent < n_requests && !sent - !recvd < 2 do
            sent_at.(!sent) <- Unix.gettimeofday ();
            Client.send conn ~tag:!sent (Wire.Run (args !sent));
            incr sent
          done;
          match Client.recv conn with
          | None -> failwith "sim_bench: daemon closed a well-behaved client"
          | Some (tag, Wire.Busy _) ->
            Thread.delay 0.002;
            Client.send conn ~tag (Wire.Run (args tag))
          | Some (tag, reply) ->
            lat.(tag) <- Unix.gettimeofday () -. sent_at.(tag);
            incr recvd;
            (match reply with
            | Wire.Result _ -> ()
            | Wire.Error m -> fail m
            | Wire.Deadline_exceeded m -> fail ("deadline: " ^ m)
            | Wire.Quarantined { last_error; _ } ->
              fail ("quarantined: " ^ last_error)
            | _ -> ())
        done;
        Client.close conn;
        deliver lat)
      ()
  in
  let hostile_loop stop =
    let ping = Wire.encode_request ~tag:0 Wire.Ping in
    let prefix =
      let b = Bytes.create 4 in
      Bytes.set_int32_be b 0 (Int32.of_int (String.length ping));
      Bytes.to_string b
    in
    let burst = String.concat "" (List.init 256 (fun _ -> prefix ^ ping)) in
    while not !stop do
      (try
         let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         Unix.connect fd (Unix.ADDR_UNIX socket);
         (try
            for _ = 1 to 20 do
              Frame.write fd "garbage!";
              ignore (Frame.read fd)
            done;
            (* now turn slow-loris: flood pings, never read a pong *)
            for _ = 1 to 20 do
              ignore (Unix.write_substring fd burst 0 (String.length burst))
            done
          with _ -> ());
         (try Unix.close fd with _ -> ())
       with _ -> ());
      Thread.delay 0.005
    done
  in
  let measure ~hostile ~base =
    let all = ref [] in
    let amut = Mutex.create () in
    let stop = ref false in
    let attacker = if hostile then Some (Thread.create hostile_loop stop) else None in
    let t0 = Unix.gettimeofday () in
    let goods =
      List.init degradation_good_clients (fun i ->
          good_client
            ~base:(base + (i * n_requests))
            (fun lat ->
              Mutex.lock amut;
              all := Array.to_list lat @ !all;
              Mutex.unlock amut))
    in
    List.iter Thread.join goods;
    let elapsed = Unix.gettimeofday () -. t0 in
    stop := true;
    Option.iter Thread.join attacker;
    let lat = Array.of_list !all in
    Array.sort compare lat;
    let n = Array.length lat in
    let p99 = lat.(min (n - 1) (n * 99 / 100)) *. 1e3 in
    (float_of_int n /. elapsed, p99)
  in
  let clean_specs, clean_p99 = measure ~hostile:false ~base:40_000 in
  Printf.printf "  clean:    %7.1f specs/s, p99 %7.2f ms\n%!" clean_specs clean_p99;
  let att_specs, att_p99 = measure ~hostile:true ~base:50_000 in
  let counters = Wp_core.Service.counters svc in
  Printf.printf
    "  attacked: %7.1f specs/s, p99 %7.2f ms (%d shed, %d slow-client disconnects)\n%!"
    att_specs att_p99 counters.Wp_core.Service.shed
    counters.Wp_core.Service.slow_disconnects;
  Wp_core.Service.stop svc;
  Wp_core.Runner.shutdown runner;
  (* The floor keeps a microsecond-scale clean p99 from turning
     scheduler noise into a failure. *)
  let limit = Float.max (3.0 *. clean_p99) (clean_p99 +. 25.0) in
  let pass = !errors = 0 && att_p99 <= limit in
  let sections =
    [
      ( "degradation",
        Printf.sprintf
          "{\n    \"good_clients\": %d,\n    \"requests_per_client\": %d,\n    \
           \"clean\": { \"specs_per_sec\": %.1f, \"p99_ms\": %.3f },\n    \
           \"attacked\": { \"specs_per_sec\": %.1f, \"p99_ms\": %.3f },\n    \
           \"shed\": %d,\n    \"slow_disconnects\": %d,\n    \"pass\": %b\n  }"
          degradation_good_clients n_requests clean_specs clean_p99 att_specs
          att_p99 counters.Wp_core.Service.shed
          counters.Wp_core.Service.slow_disconnects pass );
    ]
  in
  let failures =
    if pass then []
    else if !errors > 0 then
      [
        Printf.sprintf
          "sim_bench: FAIL — degradation probe: %d error replies to well-behaved clients"
          !errors;
      ]
    else
      [
        Printf.sprintf
          "sim_bench: FAIL — degradation probe: p99 under attack %.2f ms exceeds \
           limit %.2f ms (clean %.2f ms)"
          att_p99 limit clean_p99;
      ]
  in
  (sections, failures)

(* ------------------------------------------------------------------ *)
(* Probe: generated-topology scale                                    *)
(* ------------------------------------------------------------------ *)

(* Cycles/sec on two generated instances an order of magnitude past the
   Table 1 SoC: a 1000-block ring (deep pipeline, one loop) and a
   16x16 mesh (256 blocks, 481 channels, dense feedback through the
   mesh return edge).  The same Topology.build output feeds test_topo
   and wp_cli sweep, so these numbers anchor what the differential
   battery and sweep harness cost per simulated cycle.  The static
   engine's measured word rate is cross-checked against the Howard-MCR
   bound of the capacity-extended graph before timing. *)

let topo_instances = [ "ring:1000"; "mesh:16x16" ]

let measure_topo_steps ~engine ~cycles net =
  let step =
    match engine with
    | Sim.Reference ->
      let e = Engine.create ~capacity:2 ~mode:Shell.Plain net in
      fun () -> Engine.step e
    | Sim.Fast ->
      let f = Fast.create ~capacity:2 ~mode:Shell.Plain net in
      fun () -> Fast.step f
    | Sim.Static ->
      let s = Static.create ~capacity:2 ~mode:Shell.Plain net in
      fun () -> Static.step s
  in
  for _ = 1 to 100 do step () done;
  let best = ref infinity in
  let words = ref 0.0 in
  for _ = 1 to 3 do
    Gc.full_major ();
    let g0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to cycles do step () done;
    let seconds = Unix.gettimeofday () -. t0 in
    let g1 = Gc.quick_stat () in
    if seconds < !best then begin
      best := seconds;
      words := g1.Gc.minor_words -. g0.Gc.minor_words
    end
  done;
  { runs = 1; total_cycles = cycles; seconds = !best; minor_words = !words }

let run_topo_probe opts =
  let module Topology = Wp_topo.Topology in
  let cycles = if opts.smoke then 1_000 else 10_000 in
  Printf.printf "generated-topology probe (%d timed cycles, capacity 2):\n%!" cycles;
  (* The static table replays every engine's steady state, so its word
     rate must match the marked-graph bound exactly — gate on it before
     spending time on the measurements. *)
  let failures = ref [] in
  let instances =
    List.map
      (fun name ->
        let spec =
          match Topology.of_string name with
          | Ok t -> t
          | Error e -> failwith (Printf.sprintf "sim_bench: %s: %s" name e)
        in
        let net = Topology.build spec in
        let bound = Topology.mcr ~capacity:2 net in
        let st = Static.create ~capacity:2 ~mode:Shell.Plain net in
        let rate = Static.rate st 0 in
        if rate <> bound then
          failures :=
            !failures
            @ [
                Printf.sprintf
                  "sim_bench: FAIL — %s: static word rate %d/%d != Howard-MCR bound %d/%d"
                  name rate.Cycle_ratio.num rate.Cycle_ratio.den
                  bound.Cycle_ratio.num bound.Cycle_ratio.den;
              ];
        Printf.printf "%s: %d blocks, %d channels, bound %d/%d\n" name
          (Network.node_count net) (Network.channel_count net)
          bound.Cycle_ratio.num bound.Cycle_ratio.den;
        let engines =
          (* always include static here: replaying the table at this
             scale is the point of the probe *)
          if List.mem Sim.Static opts.engines then opts.engines
          else opts.engines @ [ Sim.Static ]
        in
        let per_engine =
          List.map
            (fun engine ->
              let m = measure_topo_steps ~engine ~cycles net in
              print_measurement ~gc_stats:opts.gc_stats
                (Printf.sprintf "%s" (engine_name engine))
                m;
              (engine, m))
            engines
        in
        (name, per_engine))
      topo_instances
  in
  let sections =
    [
      ( "topology_probe",
        Printf.sprintf "{\n%s\n  }"
          (String.concat ",\n"
             (List.map
                (fun (name, per_engine) ->
                  Printf.sprintf "    %S: {\n%s\n    }" name
                    (String.concat ",\n"
                       (List.map
                          (fun (e, m) ->
                            Printf.sprintf "      %S: %s" (engine_name e)
                              (json_of_measurement m))
                          per_engine)))
                instances)) );
    ]
  in
  (sections, !failures)

(* ------------------------------------------------------------------ *)
(* Flow probe: incremental MCR evaluator vs from-scratch re-solve      *)
(* ------------------------------------------------------------------ *)

(* The co-optimization flow's inner loop re-derives a few channels'
   relay-station counts after every move and re-solves the throughput
   bound.  This probe replays one perturbation sequence through both
   evaluators -- the warm-started {!Cycle_ratio.Incremental} state and
   the from-scratch path (set the relay stations on the network, rebuild
   the capacity graph, run Howard cold) -- checks they agree exactly at
   every step, and gates on the speedup. *)
let run_flow_probe opts =
  let module Topology = Wp_topo.Topology in
  let module Howard = Wp_graph.Howard in
  let name = if opts.smoke then "rand:100" else "rand:1000" in
  let perturbations = if opts.smoke then 60 else 300 in
  let capacity = 2 in
  Printf.printf "flow probe (%s, %d relay-station perturbations, capacity %d):\n%!"
    name perturbations capacity;
  let spec =
    match Topology.of_string name with
    | Ok t -> t
    | Error e -> failwith (Printf.sprintf "sim_bench: %s: %s" name e)
  in
  let net = Topology.build spec in
  let n_chans = Network.channel_count net in
  (* One deterministic perturbation sequence, shared by both sides. *)
  let prng = Wp_util.Prng.create ~seed:7 in
  let seq =
    Array.init perturbations (fun _ ->
        (Wp_util.Prng.int prng n_chans, Wp_util.Prng.int prng 5))
  in
  let g, tokens, time = Static.capacity_graph ~capacity net in
  let inc = Cycle_ratio.Incremental.create g ~cost:tokens ~time in
  let ratio_of = function
    | Some (r, _) -> r
    | None -> failwith "sim_bench: flow probe: capacity graph became acyclic"
  in
  let incremental_ratios = Array.make perturbations { Cycle_ratio.num = 0; den = 1 } in
  let t0 = Unix.gettimeofday () in
  Array.iteri
    (fun i (c, rs) ->
      Cycle_ratio.Incremental.set_time inc (2 * c) (1 + rs);
      Cycle_ratio.Incremental.set_cost inc ((2 * c) + 1) (capacity + (2 * rs) - 1);
      incremental_ratios.(i) <- ratio_of (Cycle_ratio.Incremental.solve inc))
    seq;
  let incremental_seconds = Unix.gettimeofday () -. t0 in
  let failures = ref [] in
  let t0 = Unix.gettimeofday () in
  Array.iteri
    (fun i (c, rs) ->
      Network.set_relay_stations net c rs;
      let g, tokens, time = Static.capacity_graph ~capacity net in
      let r = ratio_of (Howard.minimum_cycle_ratio g ~cost:tokens ~time) in
      if Cycle_ratio.ratio_compare r incremental_ratios.(i) <> 0 then
        failures :=
          !failures
          @ [
              Printf.sprintf
                "sim_bench: FAIL — flow probe step %d: incremental %d/%d != scratch %d/%d"
                i incremental_ratios.(i).Cycle_ratio.num
                incremental_ratios.(i).Cycle_ratio.den r.Cycle_ratio.num
                r.Cycle_ratio.den;
            ])
    seq;
  let scratch_seconds = Unix.gettimeofday () -. t0 in
  let speedup = scratch_seconds /. incremental_seconds in
  Printf.printf
    "incremental: %.4f s (%d policy re-solves)  from-scratch: %.4f s  speedup: %.1fx\n"
    incremental_seconds
    (Cycle_ratio.Incremental.solves inc)
    scratch_seconds speedup;
  let floor = 5.0 in
  if speedup < floor then
    failures :=
      !failures
      @ [
          Printf.sprintf
            "sim_bench: FAIL — incremental MCR evaluator only %.1fx over from-scratch \
             (gate %.1fx) on %s"
            speedup floor name;
        ];
  let sections =
    [
      ( "flow_probe",
        Printf.sprintf
          "{ \"netlist\": %S, \"perturbations\": %d, \"incremental_seconds\": %.6f, \
           \"scratch_seconds\": %.6f, \"speedup\": %.2f, \"solves\": %d }"
          name perturbations incremental_seconds scratch_seconds speedup
          (Cycle_ratio.Incremental.solves inc) );
    ]
  in
  (sections, !failures)

(* ------------------------------------------------------------------ *)
(* Main                                                               *)
(* ------------------------------------------------------------------ *)

let () =
  let opts = parse_args () in
  let sections = ref [] and failures = ref [] in
  let add (s, f) =
    sections := !sections @ s;
    failures := !failures @ f
  in
  if List.mem "core" opts.probes then add (run_core opts);
  if List.mem "batch" opts.probes then add (run_batch_probe opts);
  if List.mem "serve" opts.probes then add (run_serve_probe opts);
  if List.mem "degradation" opts.probes then add (run_degradation_probe opts);
  if List.mem "topo" opts.probes then add (run_topo_probe opts);
  if List.mem "flow" opts.probes then add (run_flow_probe opts);
  (* Merge into the existing results file: sections this run did not
     re-measure keep their previous values. *)
  let existing =
    if Sys.file_exists opts.out then
      Some (In_channel.with_open_text opts.out In_channel.input_all)
    else None
  in
  let doc = Wp_util.Json_merge.merge ~existing ~updates:!sections in
  let oc = open_out opts.out in
  output_string oc doc;
  close_out oc;
  Printf.printf "wrote %s\n" opts.out;
  List.iter prerr_endline !failures;
  if !failures <> [] then exit 1
