(* wirepipe: command-line front-end for the wire-pipelined SoC library.

   Subcommands: table1, run, loops, floorplan, graph, equiv, area. *)

open Cmdliner
module Datapath = Wp_soc.Datapath
module Programs = Wp_soc.Programs
module Shell = Wp_lis.Shell
module Config = Wp_core.Config

(* --- shared argument parsing --------------------------------------- *)

(* The grammars live next to the types they produce
   ({!Programs.of_string}, {!Datapath.machine_of_name},
   {!Config.of_string}) so the serve daemon's wire protocol and this
   CLI accept exactly the same strings; here they only get wrapped into
   cmdliner converters. *)

let program_conv =
  Arg.conv
    ( (fun s -> Programs.of_string s |> Result.map_error (fun m -> `Msg m)),
      fun ppf p -> Format.pp_print_string ppf p.Wp_soc.Program.name )

let machine_conv =
  Arg.conv
    ( (fun s ->
        match Datapath.machine_of_name s with
        | Some m -> Ok m
        | None -> Error (`Msg "machine must be 'pipelined', 'btfn' or 'multicycle'")),
      fun ppf m -> Format.pp_print_string ppf (Datapath.machine_name m) )

let config_conv =
  Arg.conv
    ( (fun s -> Config.of_string s |> Result.map_error (fun m -> `Msg m)),
      fun ppf c -> Config.pp ppf c )

let program_arg =
  Arg.(value & opt program_conv (Result.get_ok (Programs.of_string "sort")) & info [ "p"; "program" ] ~docv:"PROG" ~doc:"Workload: sort[:n], matmul[:n], fib[:n], dot[:n], memcpy[:n], bubble[:n], random[:seed], asm:FILE.")

let machine_arg =
  Arg.(value & opt machine_conv Datapath.Pipelined & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc:"CPU fashion: pipelined or multicycle.")

let config_arg =
  Arg.(value & opt config_conv Config.zero & info [ "rs" ] ~docv:"CONFIG" ~doc:"Relay stations, e.g. 'CU-AL=1,DC-RF=2' (or 'none').")

(* --- the shared run-spec flags --------------------------------------

   Every simulation-driving subcommand (run, equiv, table1, optimal)
   parses the same flags into one [Wp_core.Run_spec.t] through the same
   [Run_spec.of_args] — each flag is declared and documented exactly
   once, and a syntax error in any of them surfaces as a normal cmdliner
   error. *)

let engine_str_arg =
  Arg.(value & opt (some string) None
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Simulation kernel: $(b,fast) (compiled, default), $(b,ref) \
                 (reference interpreter) or $(b,static) (precomputed \
                 balanced-word firing table; plain-mode, fault-free, \
                 unprotected configurations only — anything else is refused \
                 as unschedulable, and oracle-mode WP2 runs downgrade \
                 explicitly to $(b,fast)).  All kernels produce \
                 byte-identical results where they apply; the default can \
                 also be set via $(b,WIREPIPE_ENGINE).")

let capacity_arg =
  Arg.(value & opt int 2
       & info [ "capacity" ] ~docv:"N" ~doc:"Shell input-FIFO capacity (default 2).")

let max_cycles_arg =
  Arg.(value & opt (some int) None
       & info [ "max-cycles" ] ~docv:"N"
           ~doc:"Explicit simulation cycle budget (default: the MCR-guided \
                 bound derived from the golden run, with a full-budget \
                 fallback).")

let fault_str_arg =
  Arg.(value & opt (some string) None
       & info [ "fault" ] ~docv:"SPEC"
           ~doc:"Fault-injection spec, comma-separated clauses: \
                 $(b,jitter:PCT[@H]) (random per-channel stalls), \
                 $(b,storm:P/B[@H]) (backpressure storm, B of every P cycles), \
                 $(b,stall:CHAN@c1+c2) (explicit stall schedule), \
                 $(b,drop:CHAN:N) / $(b,dup:CHAN:N) / $(b,corrupt:CHAN:N) / \
                 $(b,spurious:CHAN:N) (destructive token faults on the Nth \
                 token), or $(b,none).  Stall-only specs must preserve \
                 equivalence; destructive ones must be caught.")

let fault_seed_arg =
  Arg.(value & opt int 0
       & info [ "fault-seed" ] ~docv:"SEED"
           ~doc:"Seed for randomized fault clauses (jitter). The same seed \
                 reproduces the same schedule on both engines.")

let protect_str_arg =
  Arg.(value & opt (some string) None
       & info [ "protect" ] ~docv:"POLICY"
           ~doc:"Link-protection policy: $(b,none), $(b,all), or a \
                 comma-separated list of connection names (e.g. \
                 $(b,CU-AL,DC-RF)), each optionally annotated \
                 $(b,:w=W:t=T) to override window/timeout per \
                 connection.  Protected connections get \
                 sequence-numbered, CRC-tagged, go-back-N retransmitting \
                 channels with credit flow control — bounded \
                 drop/dup/corrupt faults on them are absorbed instead of \
                 diverging.")

let link_window_arg =
  Arg.(value & opt int 0
       & info [ "link-window" ] ~docv:"W"
           ~doc:"Sender replay-window size for protected channels \
                 (0 = auto-size from the relay-station count).")

let link_timeout_arg =
  Arg.(value & opt int 0
       & info [ "link-timeout" ] ~docv:"T"
           ~doc:"Retransmission timeout in cycles for protected channels \
                 (0 = auto).")

let stall_report_arg =
  Arg.(value & flag
       & info [ "stall-report" ]
           ~doc:"Collect cycle-accurate telemetry (per-block stall \
                 attribution, per-channel occupancy/duty histograms, link \
                 recoveries) and print the report.")

let trace_depth_arg =
  Arg.(value & opt int 0
       & info [ "trace-depth" ] ~docv:"N"
           ~doc:"Cycles retained by the bounded event-trace ring buffer \
                 (0 = no trace; $(b,--trace)/$(b,--trace-json) imply a \
                 default depth).")

let deadline_ms_arg =
  Arg.(value & opt (some int) None
       & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Wall-clock budget for the run: the simulation polls a \
                 cancellation token and abandons the work once MS \
                 milliseconds have elapsed (reported as deadline \
                 exceeded).  Deadlines bound latency, never results — \
                 cached records satisfy any deadline.")

let spec_term =
  let build engine capacity max_cycles fault fault_seed protect link_window
      link_timeout stall_report trace_depth deadline_ms =
    match
      Wp_core.Run_spec.of_args ?engine ~capacity ?max_cycles ?fault ~fault_seed
        ?protect ~link_window ~link_timeout ~stall_report ~trace_depth
        ?deadline_ms ()
    with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  Term.term_result
    Term.(const build $ engine_str_arg $ capacity_arg $ max_cycles_arg
          $ fault_str_arg $ fault_seed_arg $ protect_str_arg $ link_window_arg
          $ link_timeout_arg $ stall_report_arg $ trace_depth_arg
          $ deadline_ms_arg)

(* Trace exporters (run and table1). *)

let trace_vcd_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write the retained event-trace window as a VCD waveform \
                 (valid/stop per channel, fire per block).  Implies a trace \
                 buffer.")

let trace_json_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-json" ] ~docv:"FILE"
           ~doc:"Write the retained event-trace window as Chrome trace_event \
                 JSON (load in chrome://tracing or Perfetto; one track per \
                 block, stall spans colored by reason).  Implies a trace \
                 buffer.")

(* --trace / --trace-json without --trace-depth get a default-depth ring. *)
let ensure_trace ~depth ~vcd ~json spec =
  if vcd = None && json = None then spec
  else if spec.Wp_core.Run_spec.telemetry.Wp_sim.Telemetry.trace_depth > 0 then
    spec
  else
    { spec with Wp_core.Run_spec.telemetry = Wp_sim.Telemetry.with_trace ~depth () }

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Export one run's retained trace.  [suffix] (e.g. "wp1") is inserted
   before the extension when one invocation produces several traces. *)
let export_trace ~vcd ~json ~suffix (rep : Wp_sim.Telemetry.report option) =
  match Option.bind rep (fun r -> r.Wp_sim.Telemetry.event_trace) with
  | None -> ()
  | Some tr ->
    let with_suffix path =
      if suffix = "" then path
      else Filename.remove_extension path ^ "." ^ suffix ^ Filename.extension path
    in
    (match vcd with
    | None -> ()
    | Some p ->
      let p = with_suffix p in
      write_file p (Wp_sim.Telemetry.vcd_of_trace tr);
      Printf.printf "VCD trace written to %s\n" p);
    (match json with
    | None -> ()
    | Some p ->
      let p = with_suffix p in
      write_file p (Wp_sim.Telemetry.chrome_of_trace tr);
      Printf.printf "Chrome trace written to %s\n" p)

let gc_stats_arg =
  Arg.(value & flag
       & info [ "gc-stats" ]
           ~doc:"Print minor-heap allocation for the command's simulations \
                 (via $(b,Gc.quick_stat) deltas) to stderr.")

let with_gc_stats gc f =
  if not gc then f ()
  else begin
    Gc.full_major ();
    let g0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let seconds = Unix.gettimeofday () -. t0 in
    let g1 = Gc.quick_stat () in
    let words = g1.Gc.minor_words -. g0.Gc.minor_words in
    Printf.eprintf "gc: %.0f minor words (%.1f MB) in %.3f s, %d minor collections\n%!"
      words
      (words *. float_of_int (Sys.word_size / 8) /. 1e6)
      seconds
      (g1.Gc.minor_collections - g0.Gc.minor_collections);
    r
  end

(* Parallel runner controls, shared by the simulation-sweep commands. *)

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker pool size for simulation sweeps (default: \
                 $(b,WIREPIPE_JOBS) or one per core). Output is \
                 byte-identical for any value.")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Disable the content-addressed experiment result cache \
                 (every row is re-simulated).")

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ] ~doc:"Print runner statistics (tasks, cache hits, wall time) to stderr.")

let make_runner jobs no_cache =
  Wp_core.Runner.create ?jobs ~cache:(not no_cache) ()

let report_stats runner stats =
  if stats then
    Format.eprintf "%a@." Wp_core.Runner.pp_stats (Wp_core.Runner.stats runner)

(* --- table1 --------------------------------------------------------- *)

let table1_cmd =
  let workload =
    Arg.(value & opt (enum [ ("sort", `Sort); ("matmul", `Matmul) ]) `Sort
         & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"sort or matmul.")
  in
  let size =
    Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N" ~doc:"Workload size (sort length / matrix dimension).")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the rows as CSV.")
  in
  let trace_row =
    Arg.(value & opt int 12
         & info [ "trace-row" ] ~docv:"ROW"
             ~doc:"Which row's WP1 trace $(b,--trace)/$(b,--trace-json) \
                   export (default 12, the 'All 1' row).")
  in
  let run workload machine size csv jobs no_cache stats spec trace_vcd
      trace_json trace_row gc =
    (* Table 1 instruments up to 2 x 38 runs, so the implied trace ring
       is kept small; pass --trace-depth to override. *)
    let spec = ensure_trace ~depth:8192 ~vcd:trace_vcd ~json:trace_json spec in
    let runner = make_runner jobs no_cache in
    let rows, _ =
      with_gc_stats gc (fun () ->
          Wp_core.Runner.timed runner "table1" (fun () ->
              match workload with
              | `Sort ->
                let values = Programs.sort_values ~seed:1 ~n:(Option.value size ~default:16) in
                Wp_core.Table1.sort_rows ~spec ~values ~runner ~machine ()
              | `Matmul -> Wp_core.Table1.matmul_rows ~spec ?n:size ~runner ~machine ()))
    in
    let title =
      Printf.sprintf "Table 1 — %s (%s)"
        (match workload with `Sort -> "Extraction Sort" | `Matmul -> "Matrix Multiply")
        (Datapath.machine_name machine)
    in
    print_string (Wp_core.Table1.render ~title rows);
    (match csv with
    | None -> ()
    | Some path ->
      write_file path (Wp_core.Table1.to_csv rows);
      Printf.printf "CSV written to %s\n" path);
    if spec.Wp_core.Run_spec.telemetry.Wp_sim.Telemetry.counters then begin
      print_newline ();
      print_string
        (Wp_core.Table1.render_stall_report ~title:(title ^ " — stall attribution")
           rows);
      (* An unexplained row means the oracle-skip accounting failed the
         paper's cross-check — make the driver fail loudly so CI gates
         on it. *)
      match Wp_core.Table1.attribute rows with
      | None -> ()
      | Some atts ->
        let bad =
          List.filter (fun a -> not a.Wp_core.Table1.explained) atts
        in
        if bad <> [] then begin
          List.iter
            (fun a ->
              Printf.eprintf
                "wirepipe: row %d (%s): WP1-vs-WP2 delta not explained by \
                 the oracle-skip stall class\n"
                a.Wp_core.Table1.att_index a.Wp_core.Table1.att_label)
            bad;
          exit 1
        end
    end;
    (match
       List.find_opt (fun r -> r.Wp_core.Table1.index = trace_row) rows
     with
    | Some row ->
      export_trace ~vcd:trace_vcd ~json:trace_json ~suffix:""
        row.Wp_core.Table1.record.Wp_core.Experiment.wp1.Wp_soc.Cpu.telemetry
    | None ->
      if trace_vcd <> None || trace_json <> None then
        Printf.eprintf "wirepipe: --trace-row %d is not a row of this table\n%!"
          trace_row);
    report_stats runner stats
  in
  Cmd.v (Cmd.info "table1" ~doc:"Regenerate the paper's Table 1")
    Term.(const run $ workload $ machine_arg $ size $ csv $ jobs_arg $ no_cache_arg $ stats_arg
          $ spec_term $ trace_vcd_arg $ trace_json_arg $ trace_row $ gc_stats_arg)

(* --- run ------------------------------------------------------------ *)

let run_cmd =
  let mode =
    Arg.(value & opt (enum [ ("wp1", `Wp1); ("wp2", `Wp2); ("both", `Both) ]) `Both
         & info [ "mode" ] ~docv:"MODE" ~doc:"wp1 (plain wrappers), wp2 (oracle) or both.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print per-block statistics.") in
  let run program machine config mode verbose spec trace_vcd trace_json gc =
    let spec = ensure_trace ~depth:65536 ~vcd:trace_vcd ~json:trace_json spec in
    let engine = spec.Wp_core.Run_spec.engine in
    with_gc_stats gc (fun () ->
        let golden = Wp_core.Experiment.golden ~engine ~machine program in
        Printf.printf "program %s on the %s machine; golden run: %d cycles (%s engine)\n"
          program.Wp_soc.Program.name (Datapath.machine_name machine) golden.Wp_soc.Cpu.cycles
          (Wp_sim.Sim.kind_to_string engine);
        Printf.printf "relay stations: %s (static WP1 bound %.3f)\n" (Config.describe config)
          (Wp_core.Analysis.wp1_bound_float config);
        if not (Wp_sim.Fault.is_none spec.Wp_core.Run_spec.fault) then
          Printf.printf "injecting %s\n"
            (Wp_sim.Fault.describe spec.Wp_core.Run_spec.fault);
        if not (Wp_core.Protect.is_none spec.Wp_core.Run_spec.protect) then
          Printf.printf "link protection: %s\n"
            (Wp_core.Protect.describe spec.Wp_core.Run_spec.protect);
        let both = mode = `Both in
        let one label shell_mode =
          let r =
            Wp_core.Run_spec.run_cpu ~mcr_work:golden.Wp_soc.Cpu.cycles ~spec
              ~machine ~mode:shell_mode ~rs:(Config.to_fun config) program
          in
          let th = Wp_soc.Cpu.throughput ~golden r in
          Printf.printf "%s: %d cycles, throughput %.3f, result %s%s\n" label r.Wp_soc.Cpu.cycles
            th
            (if r.Wp_soc.Cpu.result_ok then "correct" else "WRONG")
            (match r.Wp_soc.Cpu.outcome with
            | Wp_soc.Cpu.Completed -> ""
            | Wp_soc.Cpu.Deadlocked -> " (deadlocked)"
            | Wp_soc.Cpu.Out_of_cycles -> " (out of cycles)"
            | Wp_soc.Cpu.Cancelled -> " (deadline exceeded)");
          if verbose then print_string (Wp_sim.Monitor.to_table r.Wp_soc.Cpu.report);
          (match r.Wp_soc.Cpu.telemetry with
          | Some rep when spec.Wp_core.Run_spec.telemetry.Wp_sim.Telemetry.counters ->
            Printf.printf "%s stall report:\n" label;
            print_string (Wp_sim.Telemetry.to_table rep.Wp_sim.Telemetry.summary)
          | Some _ | None -> ());
          export_trace ~vcd:trace_vcd ~json:trace_json
            ~suffix:(if both then String.lowercase_ascii label else "")
            r.Wp_soc.Cpu.telemetry
        in
        match mode with
        | `Wp1 -> one "WP1" Shell.Plain
        | `Wp2 -> one "WP2" Shell.Oracle
        | `Both ->
          one "WP1" Shell.Plain;
          one "WP2" Shell.Oracle)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one workload under one RS configuration")
    Term.(const run $ program_arg $ machine_arg $ config_arg $ mode $ verbose $ spec_term
          $ trace_vcd_arg $ trace_json_arg $ gc_stats_arg)

(* --- loops ----------------------------------------------------------- *)

let loops_cmd =
  let run config =
    let module T = Wp_util.Text_table in
    let t =
      T.create
        ~columns:[ ("loop", T.Left); ("m", T.Right); ("n", T.Right); ("m/(m+n)", T.Right) ]
    in
    List.iter
      (fun l ->
        T.add_row t
          [
            String.concat " -> " l.Wp_core.Analysis.loop_blocks;
            string_of_int l.Wp_core.Analysis.processes;
            string_of_int l.Wp_core.Analysis.stations;
            Format.asprintf "%a" Wp_graph.Cycle_ratio.ratio_pp l.Wp_core.Analysis.wp1_ratio;
          ])
      (Wp_core.Analysis.all_loops config);
    T.print t;
    Printf.printf "worst-loop WP1 bound: %.3f\n" (Wp_core.Analysis.wp1_bound_float config)
  in
  Cmd.v (Cmd.info "loops" ~doc:"Enumerate netlist loops and the static throughput bound")
    Term.(const run $ config_arg)

(* --- floorplan -------------------------------------------------------- *)

let floorplan_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let reach =
    Arg.(value & opt float 1.3 & info [ "reach" ] ~docv:"MM" ~doc:"Signal reach per clock (mm).")
  in
  let ablation = Arg.(value & flag & info [ "ablation" ] ~doc:"Compare floorplan objectives.") in
  let show tag (r : Wp_floorplan.Flow.result) =
    Printf.printf "%-24s die %.2f mm^2, wire %.1f mm, WP1 bound %.3f, RS: %s\n" tag
      r.Wp_floorplan.Flow.die_area r.Wp_floorplan.Flow.wirelength r.Wp_floorplan.Flow.wp1_bound
      (Config.describe r.Wp_floorplan.Flow.config)
  in
  let run seed reach ablation =
    let spec =
      { Wp_floorplan.Flow_spec.default with Wp_floorplan.Flow_spec.seed; reach }
    in
    if ablation then
      List.iter (fun (tag, r) -> show tag r) (Wp_floorplan.Flow.objectives_ablation ~spec ())
    else begin
      let r = Wp_floorplan.Flow.run ~spec () in
      show "floorplan" r;
      List.iter
        (fun (name, rect) ->
          Printf.printf "  %-4s at (%.2f, %.2f) size %.2f x %.2f\n" name
            rect.Wp_floorplan.Geometry.origin.Wp_floorplan.Geometry.x
            rect.Wp_floorplan.Geometry.origin.Wp_floorplan.Geometry.y
            rect.Wp_floorplan.Geometry.width rect.Wp_floorplan.Geometry.height)
        r.Wp_floorplan.Flow.placement.Wp_floorplan.Place.rects
    end
  in
  Cmd.v
    (Cmd.info "floorplan" ~doc:"Floorplan the SoC and derive relay-station counts")
    Term.(const run $ seed $ reach $ ablation)

(* --- flow -------------------------------------------------------------- *)

let flow_cmd =
  let module Flow_spec = Wp_floorplan.Flow_spec in
  let module Flow_scale = Wp_floorplan.Flow_scale in
  let topology_arg =
    Arg.(required & opt (some string) None
         & info [ "topology" ] ~docv:"SHAPE"
             ~doc:"Generated netlist to co-optimize: $(b,ring:N), \
                   $(b,mesh:RxC), $(b,torus:RxC) or $(b,rand:N), \
                   optionally suffixed $(b,:seedK).")
  in
  let reach_arg =
    Arg.(value & opt (some float) None
         & info [ "reach" ] ~docv:"CELLS"
             ~doc:"Signal reach per clock, in grid cells (default 1.5).")
  in
  let objective_arg =
    Arg.(value & opt (some string) None
         & info [ "objective" ] ~docv:"OBJ"
             ~doc:"$(b,area), $(b,wire), $(b,aware) or $(b,pareto) \
                   (default $(b,wire); $(b,pareto) gives every walker \
                   its own scalarisation).")
  in
  let budget_arg =
    Arg.(value & opt (some int) None
         & info [ "budget" ] ~docv:"N"
             ~doc:"Total annealing moves across all walkers (default 4000).")
  in
  let seed_arg =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED")
  in
  let pool_arg =
    Arg.(value & opt (some int) None
         & info [ "pool" ] ~docv:"K" ~doc:"Walker population size (default 4).")
  in
  let out_arg =
    Arg.(value & opt string "flow_front.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Pareto-front artifact path.")
  in
  let run topology reach objective budget seed pool out jobs gc =
    with_gc_stats gc @@ fun () ->
    match Flow_spec.of_args ~topology ?reach ?objective ?budget ?seed ?pool () with
    | Error e ->
      Printf.eprintf "wirepipe flow: %s\n" e;
      exit 1
    | Ok { Flow_spec.topology = Flow_spec.Case_study; _ } ->
      Printf.eprintf
        "wirepipe flow: the 5-block case study goes through `wirepipe floorplan' \
         (pass a generated topology: mesh:RxC, ring:N, torus:RxC, rand:N)\n";
      exit 1
    | Ok spec ->
      let r = Flow_scale.run ?jobs ~spec () in
      let best = r.Flow_scale.best in
      Printf.printf "flow: %s\n" (Flow_spec.describe spec);
      Printf.printf
        "search: %d walkers x %d rounds, %d moves, %d evaluations (%d cache hits)\n"
        r.Flow_scale.walkers r.Flow_scale.rounds r.Flow_scale.moves
        r.Flow_scale.evaluations r.Flow_scale.cache_hits;
      Printf.printf "front: %d non-dominated points\n" (List.length r.Flow_scale.front);
      Printf.printf
        "best: die %.0f cells, wire %.0f cells, %d relay stations, WP1 bound %s (%.4f)\n"
        best.Flow_scale.die_area best.Flow_scale.wirelength best.Flow_scale.rs_total
        (Format.asprintf "%a" Wp_graph.Cycle_ratio.ratio_pp best.Flow_scale.wp1_bound)
        (Wp_graph.Cycle_ratio.ratio_to_float best.Flow_scale.wp1_bound);
      (* [Flow_scale.run] has already verified the incremental bound against
         a from-scratch Howard solve of the derived network -- exactly. *)
      Printf.printf "cross-check: incremental bound == from-scratch Howard MCR (exact)\n";
      if Array.length best.Flow_scale.cells <= 256 then begin
        let net = Flow_scale.derived_network spec best in
        let rate = Flow_scale.static_rate net in
        Printf.printf "cross-check: static balanced-word rate %s (%s)\n"
          (Format.asprintf "%a" Wp_graph.Cycle_ratio.ratio_pp rate)
          (if Wp_graph.Cycle_ratio.ratio_compare rate best.Flow_scale.wp1_bound = 0 then
             "matches the WP1 bound"
           else "differs from the WP1 bound")
      end;
      let oc = open_out out in
      output_string oc (Flow_scale.front_to_json ~spec r);
      close_out oc;
      Printf.printf "wrote %s\n" out
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:"Floorplan->throughput co-optimization on a generated netlist")
    Term.(const run $ topology_arg $ reach_arg $ objective_arg $ budget_arg $ seed_arg
          $ pool_arg $ out_arg $ jobs_arg $ gc_stats_arg)

(* --- graph ------------------------------------------------------------ *)

let graph_cmd =
  let run () = print_string (Datapath.figure1_dot ()) in
  Cmd.v (Cmd.info "graph" ~doc:"Emit the case-study netlist (Figure 1) as Graphviz DOT")
    Term.(const run $ const ())

(* --- equiv ------------------------------------------------------------ *)

let equiv_cmd =
  let mode =
    Arg.(value & opt (enum [ ("wp1", `Wp1); ("wp2", `Wp2); ("both", `Both) ]) `Both
         & info [ "mode" ] ~docv:"MODE" ~doc:"wp1 (plain wrappers), wp2 (oracle) or both.")
  in
  let run program machine config mode spec =
    let fault = spec.Wp_core.Run_spec.fault in
    if not (Wp_sim.Fault.is_none fault) then
      Printf.printf "injecting %s\n" (Wp_sim.Fault.describe fault);
    if not (Wp_core.Protect.is_none spec.Wp_core.Run_spec.protect) then
      Printf.printf "link protection: %s\n"
        (Wp_core.Protect.describe spec.Wp_core.Run_spec.protect);
    let outcome_tag = function
      | Wp_sim.Engine.Halted _ -> ""
      | Wp_sim.Engine.Deadlocked _ -> " deadlocked"
      | Wp_sim.Engine.Exhausted _ -> " out of cycles"
      | Wp_sim.Engine.Cancelled _ -> " deadline exceeded"
    in
    let any_bad = ref false in
    let one label shell_mode =
      match
        Wp_core.Equiv_check.check_spec ~spec ~machine ~mode:shell_mode ~config
          program
      with
      | v ->
        if not v.Wp_core.Equiv_check.equivalent then any_bad := true;
        Printf.printf "%s: %s (%d ports, %d informative events compared)%s%s\n" label
          (if v.Wp_core.Equiv_check.equivalent then "equivalent" else "NOT EQUIVALENT")
          v.Wp_core.Equiv_check.ports_checked v.Wp_core.Equiv_check.events_compared
          (match v.Wp_core.Equiv_check.first_mismatch with
          | Some port -> " first mismatch at " ^ port
          | None -> "")
          (match outcome_tag v.Wp_core.Equiv_check.wp_outcome with
          | "" -> ""
          | tag -> " (wp run" ^ tag ^ ")");
        (match v.Wp_core.Equiv_check.recovery with
        | None -> ()
        | Some s ->
          Printf.printf
            "  link: %d protected channel%s, %d frames, %d retransmissions \
             (%d timeouts, %d NAKs), %d CRC detections, %d dedups, %d \
             recoveries, max recovery latency %d cycles\n"
            s.Wp_sim.Link.protected_channels
            (if s.Wp_sim.Link.protected_channels = 1 then "" else "s")
            s.Wp_sim.Link.frames_sent s.Wp_sim.Link.retransmissions
            s.Wp_sim.Link.timeouts s.Wp_sim.Link.naks s.Wp_sim.Link.crc_detected
            s.Wp_sim.Link.dedup_drops s.Wp_sim.Link.recoveries
            s.Wp_sim.Link.max_recovery_latency)
      | exception e when not (Wp_sim.Fault.is_none fault) ->
        (* An injected fault that crashes a process outright (e.g. a
           corrupted instruction encoding) is a detection, just a louder
           one than a trace mismatch. *)
        any_bad := true;
        Printf.printf "%s: NOT EQUIVALENT (wp run crashed: %s)\n" label
          (Printexc.to_string e)
    in
    (match mode with
    | `Wp1 -> one "WP1" Shell.Plain
    | `Wp2 -> one "WP2" Shell.Oracle
    | `Both ->
      one "WP1" Shell.Plain;
      one "WP2" Shell.Oracle);
    if !any_bad then exit 1
  in
  Cmd.v
    (Cmd.info "equiv" ~doc:"Check golden-vs-WP trace equivalence on every channel")
    Term.(const run $ program_arg $ machine_arg $ config_arg $ mode $ spec_term)

(* --- area ------------------------------------------------------------- *)

let area_cmd =
  let run () =
    let module T = Wp_util.Text_table in
    let t =
      T.create
        ~columns:
          [
            ("block", T.Left);
            ("plain gates", T.Right);
            ("oracle gates", T.Right);
            ("overhead", T.Right);
          ]
    in
    let plain = Wp_core.Area.case_study_report ~oracle:false in
    let oracle = Wp_core.Area.case_study_report ~oracle:true in
    List.iter2
      (fun (name, p, _) (_, o, pct) ->
        T.add_row t
          [
            name;
            string_of_int p.Wp_core.Area.total_gates;
            string_of_int o.Wp_core.Area.total_gates;
            Printf.sprintf "%.2f%%" pct;
          ])
      plain oracle;
    T.print t;
    let rs = Wp_core.Area.relay_station ~width:32 in
    Printf.printf "relay station (32-bit): %d gates\n" rs.Wp_core.Area.total_gates;
    Printf.printf "(overhead relative to the paper's %d-gate reference IP)\n"
      Wp_core.Area.reference_ip_gates
  in
  Cmd.v (Cmd.info "area" ~doc:"Wrapper and relay-station area estimates")
    Term.(const run $ const ())

(* --- exec: assemble and run a user program ---------------------------- *)

let exec_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Assembly source file.")
  in
  let result_region =
    Arg.(value & opt (pair ~sep:':' int int) (0, 16)
         & info [ "result" ] ~docv:"BASE:LEN" ~doc:"Memory region to print and check.")
  in
  let run file machine config (base, len) =
    let ic = open_in file in
    let n = in_channel_length ic in
    let source = really_input_string ic n in
    close_in ic;
    match Wp_soc.Asm.assemble source with
    | Error e ->
      Format.eprintf "%s: %a@." file Wp_soc.Asm.pp_error e;
      exit 1
    | Ok text ->
      let program =
        {
          Wp_soc.Program.name = Filename.basename file;
          source;
          text;
          mem_size = 4096;
          mem_init = [];
          result_region = (base, len);
        }
      in
      let iss = Wp_soc.Program.reference_run program in
      Printf.printf "ISS: %d instructions\n" iss.Wp_soc.Iss.instructions;
      let golden = Wp_soc.Cpu.run_golden ~machine program in
      Printf.printf "golden: %d cycles\n" golden.Wp_soc.Cpu.cycles;
      let r =
        Wp_soc.Cpu.run ~machine ~mode:Shell.Oracle ~rs:(Config.to_fun config) program
      in
      Printf.printf "WP2 under %s: %d cycles (throughput %.3f), result %s\n"
        (Config.describe config) r.Wp_soc.Cpu.cycles
        (Wp_soc.Cpu.throughput ~golden r)
        (if r.Wp_soc.Cpu.result_ok then "correct" else "WRONG");
      Printf.printf "memory[%d..%d]:" base (base + len - 1);
      Array.iteri
        (fun i v -> if i >= base && i < base + len then Printf.printf " %d" v)
        r.Wp_soc.Cpu.memory;
      print_newline ()
  in
  Cmd.v (Cmd.info "exec" ~doc:"Assemble a file and run it on the wire-pipelined SoC")
    Term.(const run $ file $ machine_arg $ config_arg $ result_region)

(* --- optimal ----------------------------------------------------------- *)

let optimal_cmd =
  let budget = Arg.(value & opt int 9 & info [ "budget" ] ~docv:"N" ~doc:"Total relay stations.") in
  let per_max = Arg.(value & opt int 2 & info [ "max" ] ~docv:"K" ~doc:"Max per connection.") in
  let run budget per_max program machine jobs no_cache stats spec gc =
    let runner = make_runner jobs no_cache in
    let (config, value), _ =
      with_gc_stats gc (fun () ->
          Wp_core.Runner.timed runner "optimal" (fun () ->
              Wp_core.Optimizer.optimal
                ~search:
                  {
                    Wp_core.Optimizer.default_search with
                    Wp_core.Optimizer.budget;
                    per_connection_max = per_max;
                  }
                ~map:(Wp_core.Runner.map runner)
                ~objective:(Wp_core.Runner.objective_spec ~spec runner ~machine ~program)
                ()))
    in
    Printf.printf "best placement of %d relay stations (max %d per connection):\n" budget per_max;
    Printf.printf "  %s\n  simulated WP2 throughput %.3f (static WP1 bound %.3f)\n"
      (Config.describe config) value (Wp_core.Analysis.wp1_bound_float config);
    report_stats runner stats
  in
  Cmd.v
    (Cmd.info "optimal" ~doc:"Search for the best relay-station placement under a budget")
    Term.(const run $ budget $ per_max $ program_arg $ machine_arg $ jobs_arg $ no_cache_arg
          $ stats_arg $ spec_term $ gc_stats_arg)

(* --- wave -------------------------------------------------------------- *)

let wave_cmd =
  let cycles = Arg.(value & opt int 40 & info [ "cycles" ] ~docv:"N" ~doc:"Window length.") in
  let from_cycle = Arg.(value & opt int 0 & info [ "from" ] ~docv:"CYCLE") in
  let vcd_out =
    Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE" ~doc:"Also write a VCD dump.")
  in
  let mode =
    Arg.(value & opt (enum [ ("wp1", Shell.Plain); ("wp2", Shell.Oracle) ]) Shell.Oracle
         & info [ "mode" ] ~docv:"MODE")
  in
  let run program machine config mode cycles from_cycle vcd_out =
    let dp = Datapath.build ~machine ~rs:(Config.to_fun config) program in
    let engine =
      Wp_sim.Engine.create ~record_traces:true ~mode dp.Datapath.network
    in
    ignore (Wp_sim.Engine.run ~max_cycles:(from_cycle + cycles + 10_000) engine);
    let traces = Wp_sim.Waveform.capture engine in
    print_string (Wp_sim.Waveform.ascii ~from_cycle ~cycles traces);
    match vcd_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Wp_sim.Waveform.vcd traces);
      close_out oc;
      Printf.printf "VCD written to %s\n" path
  in
  Cmd.v
    (Cmd.info "wave" ~doc:"Render channel activity as an ASCII timeline (and optional VCD)")
    Term.(const run $ program_arg $ machine_arg $ config_arg $ mode $ cycles $ from_cycle $ vcd_out)

(* --- rtl --------------------------------------------------------------- *)

let rtl_cmd =
  let out_dir =
    Arg.(value & opt string "rtl" & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let oracle =
    Arg.(value & flag & info [ "oracle" ] ~doc:"Generate WP2 (oracle) shells instead of plain ones.")
  in
  let run out_dir oracle =
    if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
    List.iter
      (fun (filename, contents) ->
        let path = Filename.concat out_dir filename in
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Printf.printf "wrote %s\n" path)
      (Wp_rtl.Vhdl.case_study_package ~oracle)
  in
  Cmd.v
    (Cmd.info "rtl" ~doc:"Generate the VHDL wrappers, relay station and testbench")
    Term.(const run $ out_dir $ oracle)

(* --- serve / client ---------------------------------------------------- *)

module Service = Wp_core.Service
module Wire = Wp_core.Wire

let socket_arg =
  Arg.(value & opt string "/tmp/wirepipe.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path of the experiment daemon.")

let serve_cmd =
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Directory for the on-disk experiment cache (default: \
                   $(b,WIREPIPE_CACHE) or $(b,.wirepipe-cache)).")
  in
  let queue_bound =
    Arg.(value & opt int 32
         & info [ "queue-bound" ] ~docv:"N"
             ~doc:"Per-client pending-request cap; a request arriving on a \
                   full queue is answered $(b,Busy) immediately instead of \
                   buffering without bound.")
  in
  let shard =
    Arg.(value & opt int 8
         & info [ "shard" ] ~docv:"N"
             ~doc:"Lanes per batch-kernel shard handed to the worker pool.")
  in
  let batch_max =
    Arg.(value & opt int 64
         & info [ "batch-max" ] ~docv:"N"
             ~doc:"Requests drained per dispatch round (round robin, at most \
                   one per client per round).")
  in
  let reply_bound =
    Arg.(value & opt int 128
         & info [ "reply-bound" ] ~docv:"N"
             ~doc:"Per-client reply-queue cap; a client that stops reading \
                   overflows it and is disconnected (slow-loris defense).")
  in
  let idle_timeout =
    Arg.(value & opt float 300.0
         & info [ "idle-timeout" ] ~docv:"SECONDS"
             ~doc:"Reap a connection that has been idle this long with no \
                   queued, running or unread work.")
  in
  let io_timeout =
    Arg.(value & opt float 10.0
         & info [ "io-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-chunk budget for reading the rest of a started frame \
                   and for writing replies; a peer that trickles or stops \
                   draining is dropped.")
  in
  let shed_limit =
    Arg.(value & opt int 256
         & info [ "shed-limit" ] ~docv:"N"
             ~doc:"Total queued-request backlog at which normal-priority \
                   requests are shed with $(b,Busy) (priority 0 sheds at \
                   half this; priority 2+ only at the per-client bound).")
  in
  let breaker_threshold =
    Arg.(value & opt int 5
         & info [ "breaker-threshold" ] ~docv:"N"
             ~doc:"Consecutive quarantined outcomes for one \
                   (machine, config) key that open its circuit breaker.")
  in
  let breaker_cooldown =
    Arg.(value & opt float 1.0
         & info [ "breaker-cooldown" ] ~docv:"SECONDS"
             ~doc:"How long an open breaker sheds matching requests before \
                   going half-open.")
  in
  let run socket jobs no_cache cache_dir queue_bound shard batch_max
      reply_bound idle_timeout io_timeout shed_limit breaker_threshold
      breaker_cooldown =
    let runner =
      Wp_core.Runner.create ?jobs ~cache:(not no_cache) ?cache_dir ()
    in
    let svc =
      Service.create ~queue_bound ~shard ~batch_max ~reply_bound ~idle_timeout
        ~stall_timeout:io_timeout ~write_timeout:io_timeout ~shed_limit
        ~breaker_threshold ~breaker_cooldown ~runner socket
    in
    Printf.printf "wirepipe serve: listening on %s\n%!" socket;
    (* Block until SIGINT/SIGTERM; the handler only flips a flag — the
       actual teardown (joining service threads, unlinking the socket,
       draining the pool) happens on this thread. *)
    let stopping = ref false in
    let handler = Sys.Signal_handle (fun _ -> stopping := true) in
    Sys.set_signal Sys.sigint handler;
    Sys.set_signal Sys.sigterm handler;
    while not !stopping do Thread.delay 0.1 done;
    Service.stop svc;
    Wp_core.Runner.shutdown runner;
    Printf.printf "wirepipe serve: stopped after %d requests\n%!"
      (Service.served svc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the multi-tenant experiment daemon on a Unix socket")
    Term.(const run $ socket_arg $ jobs_arg $ no_cache_arg $ cache_dir
          $ queue_bound $ shard $ batch_max $ reply_bound $ idle_timeout
          $ io_timeout $ shed_limit $ breaker_threshold $ breaker_cooldown)

let client_cmd =
  (* The wire protocol carries the *textual* parameter forms (the daemon
     parses them with the same library grammars the local commands use),
     so these are plain string options, not the parsed converters. *)
  let program_str =
    Arg.(value & opt string "sort"
         & info [ "p"; "program" ] ~docv:"PROG"
             ~doc:"Workload, textual form (same grammar as the local \
                   commands: sort[:n], matmul[:n], random[:seed], ...).")
  in
  let machine_str =
    Arg.(value & opt string "pipelined"
         & info [ "m"; "machine" ] ~docv:"MACHINE"
             ~doc:"CPU fashion: pipelined, btfn or multicycle.")
  in
  let config_str =
    Arg.(value & opt string "none"
         & info [ "rs" ] ~docv:"CONFIG"
             ~doc:"Relay stations, e.g. 'CU-AL=1,DC-RF=2' (or 'none').")
  in
  let repeat =
    Arg.(value & opt int 1
         & info [ "n"; "repeat" ] ~docv:"N"
             ~doc:"Send the request N times (load generation; after the \
                   first miss the rest are cache hits).")
  in
  let window =
    Arg.(value & opt int 1
         & info [ "window" ] ~docv:"N"
             ~doc:"Pipelining window: requests kept in flight at once.")
  in
  let max_p99 =
    Arg.(value & opt float 0.0
         & info [ "max-p99" ] ~docv:"MS"
             ~doc:"Exit non-zero if the observed p99 latency exceeds MS \
                   milliseconds (0 disables the gate).")
  in
  let ping =
    Arg.(value & flag
         & info [ "ping" ] ~doc:"Round-trip a ping, print the latency, exit.")
  in
  let daemon_stats =
    Arg.(value & flag
         & info [ "daemon-stats" ]
             ~doc:"Print the daemon's runner statistics and exit.")
  in
  let retry_budget =
    Arg.(value & opt int 8
         & info [ "retry-budget" ] ~docv:"N"
             ~doc:"Busy retries allowed per request before giving up with \
                   exit code 3.  Retries back off exponentially with \
                   seeded jitter, never sooner than the daemon's \
                   retry-after hint.")
  in
  let priority =
    Arg.(value & opt int 1
         & info [ "priority" ] ~docv:"P"
             ~doc:"Request priority: 0 = best-effort (shed first under \
                   load), 1 = normal, 2+ = critical (shed last).")
  in
  let run socket program machine config engine capacity max_cycles fault
      fault_seed deadline_ms priority retry_budget repeat window max_p99 ping
      daemon_stats =
    let conn = Service.Client.connect socket in
    if ping then begin
      let t0 = Unix.gettimeofday () in
      (match Service.Client.call conn ~tag:0 Wire.Ping with
      | Wire.Pong ->
        Printf.printf "pong (%.2f ms)\n" ((Unix.gettimeofday () -. t0) *. 1e3)
      | _ -> failwith "unexpected reply to ping");
      Service.Client.close conn
    end
    else if daemon_stats then begin
      (match Service.Client.call conn ~tag:0 Wire.Stats with
      | Wire.Stats_reply
          { st_jobs; st_tasks_run; st_cache_hits; st_cache_misses;
            st_quarantined; st_expired; st_shed; st_breaker_trips;
            st_slow_disconnects; st_stale_reaped; st_cache_corrupt } ->
        Printf.printf
          "jobs %d, tasks run %d, cache %d hits / %d misses, %d quarantined\n\
           deadlines expired %d, shed %d, breaker trips %d, slow-client \
           disconnects %d\nstale temp files reaped %d, corrupt entries \
           quarantined %d\n"
          st_jobs st_tasks_run st_cache_hits st_cache_misses st_quarantined
          st_expired st_shed st_breaker_trips st_slow_disconnects
          st_stale_reaped st_cache_corrupt
      | _ -> failwith "unexpected reply to stats");
      Service.Client.close conn
    end
    else begin
      if repeat < 1 then invalid_arg "--repeat must be >= 1";
      if window < 1 then invalid_arg "--window must be >= 1";
      let args =
        { (Wire.run_defaults ~program ~machine ~config) with
          Wire.rq_engine = engine;
          rq_capacity = capacity;
          rq_max_cycles = max_cycles;
          rq_fault = fault;
          rq_fault_seed = fault_seed;
          rq_deadline_ms = deadline_ms;
          rq_priority = priority;
        }
      in
      let lat = Array.make repeat 0.0 in
      let sent_at = Array.make repeat 0.0 in
      let retries = Array.make repeat 0 in
      let backoff_rng = Random.State.make [| 0x2bad; fault_seed |] in
      let first = ref None in
      let busy = ref 0 and errors = ref 0 and hits = ref 0 and expired = ref 0 in
      let sent = ref 0 and recvd = ref 0 in
      let t_start = Unix.gettimeofday () in
      while !recvd < repeat do
        while !sent < repeat && !sent - !recvd < window do
          sent_at.(!sent) <- Unix.gettimeofday ();
          Service.Client.send conn ~tag:!sent (Wire.Run args);
          incr sent
        done;
        match Service.Client.recv conn with
        | None -> failwith "daemon closed the connection"
        | Some (tag, Wire.Busy { retry_after_ms }) ->
          (* Backpressure: resubmit the same tag after a jittered
             exponential backoff, never sooner than the daemon's hint.
             Latency keeps accumulating from the first send, so a
             saturated daemon shows up in p99 rather than being
             hidden. *)
          if retries.(tag) >= retry_budget then begin
            Printf.eprintf
              "wirepipe client: request %d still Busy after %d retries\n" tag
              retry_budget;
            exit 3
          end;
          incr busy;
          let base = max retry_after_ms (1 lsl retries.(tag)) in
          retries.(tag) <- retries.(tag) + 1;
          let jit = Random.State.int backoff_rng (1 + (base / 2)) in
          Thread.delay (float_of_int (base + jit) /. 1000.);
          Service.Client.send conn ~tag (Wire.Run args)
        | Some (tag, reply) ->
          lat.(tag) <- Unix.gettimeofday () -. sent_at.(tag);
          incr recvd;
          (match reply with
          | Wire.Result s ->
            if s.Wire.rs_from_cache then incr hits;
            if !first = None then first := Some s
          | Wire.Error msg ->
            incr errors;
            Printf.eprintf "wirepipe client: daemon error: %s\n" msg
          | Wire.Quarantined { attempts; last_error; _ } ->
            incr errors;
            Printf.eprintf "wirepipe client: quarantined after %d attempts: %s\n"
              attempts last_error
          | Wire.Deadline_exceeded msg ->
            incr expired;
            Printf.eprintf "wirepipe client: deadline exceeded: %s\n" msg
          | _ -> ())
      done;
      let elapsed = Unix.gettimeofday () -. t_start in
      Service.Client.close conn;
      (match !first with
      | Some s ->
        Printf.printf
          "%s on %s, rs=%s: golden %d, WP1 %d cycles (th %.3f), WP2 %d cycles \
           (th %.3f), gain %.1f%%\n"
          s.Wire.rs_program s.Wire.rs_machine s.Wire.rs_config
          s.Wire.rs_golden_cycles s.Wire.rs_wp1_cycles s.Wire.rs_th_wp1
          s.Wire.rs_wp2_cycles s.Wire.rs_th_wp2 s.Wire.rs_gain_percent
      | None -> ());
      Array.sort compare lat;
      let pct p = lat.(min (repeat - 1) (repeat * p / 100)) *. 1e3 in
      let p50 = pct 50 and p99 = pct 99 in
      if repeat > 1 || max_p99 > 0.0 then
        Printf.printf
          "%d requests in %.3f s (%.1f specs/sec), p50 %.2f ms, p99 %.2f ms, \
           %d busy retries, %d cache hits, %d expired, %d errors\n"
          repeat elapsed
          (float_of_int repeat /. elapsed)
          p50 p99 !busy !hits !expired !errors;
      if !errors > 0 then exit 1;
      if max_p99 > 0.0 && p99 > max_p99 then begin
        Printf.eprintf "wirepipe client: p99 %.2f ms exceeds --max-p99 %.2f ms\n"
          p99 max_p99;
        exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send experiment requests to a running daemon and report latency")
    Term.(const run $ socket_arg $ program_str $ machine_str $ config_str
          $ engine_str_arg $ capacity_arg $ max_cycles_arg $ fault_str_arg
          $ fault_seed_arg $ deadline_ms_arg $ priority $ retry_budget $ repeat
          $ window $ max_p99 $ ping $ daemon_stats)

(* --- chaos ------------------------------------------------------------ *)

(* Self-contained fault-boundary drill: every hostile-client scenario the
   service defends against, exercised against a real daemon, plus a
   SIGKILL-and-restart pass over a shared disk cache.  Exit 0 iff every
   scenario holds, including the latency gate: p99 under attack must
   stay within 3x the unloaded p99. *)
let chaos_cmd =
  let module Frame = Wp_util.Frame in
  let requests_arg =
    Arg.(value & opt int 50
         & info [ "requests" ] ~docv:"N"
             ~doc:"Cached requests per latency measurement (baseline and \
                   under-attack p99 are both over N requests).")
  in
  let u32_be n =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int n);
    Bytes.to_string b
  in
  let raw_connect socket =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    fd
  in
  let send_raw fd s =
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    let rec go o = if o < n then go (o + Unix.write fd b o (n - o)) in
    go 0
  in
  let fd_count () = Array.length (Sys.readdir "/proc/self/fd") in
  let healthy socket =
    let conn = Service.Client.connect socket in
    Fun.protect ~finally:(fun () -> Service.Client.close conn)
      (fun () -> Service.Client.call conn ~tag:0 Wire.Ping = Wire.Pong)
  in
  let wait_for ?(timeout = 10.0) pred =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec go () =
      if pred () then true
      else if Unix.gettimeofday () > deadline then false
      else (Thread.delay 0.02; go ())
    in
    go ()
  in
  let chaos_args =
    { (Wire.run_defaults ~program:"sort:8" ~machine:"pipelined"
         ~config:"CU-AL=1")
      with Wire.rq_priority = 2 (* the good client is the critical tenant *) }
  in
  (* p99 (ms) over [n] cached requests, riding out Busy shedding. *)
  let p99_ms socket n =
    let conn = Service.Client.connect socket in
    Fun.protect ~finally:(fun () -> Service.Client.close conn)
      (fun () ->
        let lat = Array.make n 0.0 in
        for i = 0 to n - 1 do
          let t0 = Unix.gettimeofday () in
          let rec get () =
            match Service.Client.call conn ~tag:i (Wire.Run chaos_args) with
            | Wire.Busy { retry_after_ms } ->
              Thread.delay (float_of_int (max 1 retry_after_ms) /. 1000.);
              get ()
            | Wire.Result _ -> ()
            | _ -> failwith "chaos: unexpected reply to the probe request"
          in
          get ();
          lat.(i) <- Unix.gettimeofday () -. t0
        done;
        Array.sort compare lat;
        lat.(n * 99 / 100) *. 1e3)
  in
  let run jobs requests =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let failures = ref 0 in
    let scenario name ok detail =
      Printf.printf "%-44s %s%s\n%!" name (if ok then "PASS" else "FAIL")
        (if detail = "" then "" else "  " ^ detail);
      if not ok then incr failures
    in
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "wp_chaos_%d" (Unix.getpid ()))
    in
    Unix.mkdir dir 0o755;
    Fun.protect
      ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
    @@ fun () ->
    let socket = Filename.concat dir "chaos.sock" in
    let cache = Filename.concat dir "cache" in
    let runner = Wp_core.Runner.create ?jobs ~cache:true ~cache_dir:cache () in
    let fd_before = fd_count () in
    let svc =
      Service.create ~reply_bound:32 ~write_timeout:0.3 ~stall_timeout:0.5
        ~runner socket
    in
    (* Warm the cache so both latency measurements serve hits. *)
    ignore (p99_ms socket 1);
    let baseline = p99_ms socket requests in
    Printf.printf "baseline p99 over %d cached requests: %.2f ms\n%!" requests
      baseline;

    (* Garbage frame: answered Error, connection survives. *)
    (let fd = raw_connect socket in
     Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
       (fun () ->
         Frame.write fd "garbage!";
         let classified =
           match Frame.read fd with
           | Some p -> (match Wire.decode_reply p with
             | Ok (0, Wire.Error _) -> true
             | _ -> false)
           | None -> false
         in
         Frame.write fd (Wire.encode_request ~tag:1 Wire.Ping);
         let survived =
           match Frame.read fd with
           | Some p -> Wire.decode_reply p = Ok (1, Wire.Pong)
           | None -> false
         in
         scenario "garbage frame answered Error" (classified && survived) ""));

    (* Oversized length prefix: dropped without allocating. *)
    (let fd = raw_connect socket in
     Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
       (fun () ->
         send_raw fd (u32_be 0x7F00_0000);
         let buf = Bytes.create 1 in
         scenario "oversized frame drops client"
           (Unix.read fd buf 0 1 = 0 && healthy socket) ""));

    (* Mid-frame disconnect: classified, daemon stays healthy. *)
    (let fd = raw_connect socket in
     send_raw fd (u32_be 64);
     send_raw fd "0123456789";
     Unix.close fd;
     scenario "mid-frame disconnect tolerated" (healthy socket) "");

    (* Silent client: floods requests, never reads replies. *)
    (let before = (Service.counters svc).Service.slow_disconnects in
     let fd = raw_connect socket in
     Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
       (fun () ->
         let ping = Wire.encode_request ~tag:0 Wire.Ping in
         let frame = u32_be (String.length ping) ^ ping in
         let burst = String.concat "" (List.init 512 (fun _ -> frame)) in
         (try for _ = 1 to 200 do send_raw fd burst done
          with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
         scenario "silent client disconnected"
           (wait_for (fun () ->
                (Service.counters svc).Service.slow_disconnects > before)
            && healthy socket)
           ""));

    (* Deadline storm: expired requests come back Deadline_exceeded. *)
    (Service.pause svc;
     let conn = Service.Client.connect socket in
     Fun.protect ~finally:(fun () -> Service.Client.close conn)
       (fun () ->
         (* An uncached spec: a cache hit would (by design) satisfy any
            deadline, and the probe spec is already warm. *)
         let n = 16 in
         for tag = 0 to n - 1 do
           Service.Client.send conn ~tag
             (Wire.Run
                { chaos_args with
                  Wire.rq_program = Printf.sprintf "random:%d" (9000 + tag);
                  rq_deadline_ms = Some 1;
                })
         done;
         Thread.delay 0.1;
         Service.resume svc;
         let expired = ref 0 in
         for _ = 1 to n do
           match Service.Client.recv conn with
           | Some (_, Wire.Deadline_exceeded _) -> incr expired
           | _ -> ()
         done;
         scenario "deadline storm all expired"
           (!expired = n && healthy socket)
           (Printf.sprintf "%d/%d" !expired n)));

    (* Degradation: p99 with hostile clients attacking concurrently. *)
    (let hostile_stop = ref false in
     let garbage_flooder =
       Thread.create
         (fun () ->
           while not !hostile_stop do
             (try
                let fd = raw_connect socket in
                for _ = 1 to 50 do
                  Frame.write fd "garbage!";
                  ignore (Frame.read fd)
                done;
                (* vanish mid-frame on the way out *)
                send_raw fd (u32_be 64);
                send_raw fd "0123";
                Unix.close fd
              with _ -> ());
             Thread.delay 0.005
           done)
         ()
     in
     let silent_flooder =
       Thread.create
         (fun () ->
           let ping = Wire.encode_request ~tag:0 Wire.Ping in
           let frame = u32_be (String.length ping) ^ ping in
           let burst = String.concat "" (List.init 256 (fun _ -> frame)) in
           while not !hostile_stop do
             (try
                let fd = raw_connect socket in
                (try for _ = 1 to 50 do send_raw fd burst done with _ -> ());
                (try Unix.close fd with _ -> ())
              with _ -> ());
             Thread.delay 0.005
           done)
         ()
     in
     let attacked = p99_ms socket requests in
     hostile_stop := true;
     Thread.join garbage_flooder;
     Thread.join silent_flooder;
     (* 3x the unloaded p99, with a floor so a microsecond baseline does
        not turn scheduler noise into a failure. *)
     let limit = Float.max (3.0 *. baseline) (baseline +. 25.0) in
     scenario "p99 under attack within 3x baseline" (attacked <= limit)
       (Printf.sprintf "%.2f ms vs limit %.2f ms" attacked limit));

    Service.stop svc;
    let fd_after = fd_count () in
    scenario "no fd leak" (fd_after <= fd_before)
      (Printf.sprintf "before %d, after %d" fd_before fd_after);
    Wp_core.Runner.shutdown runner;

    (* SIGKILL-and-restart: a murdered daemon's cache directory must be
       fully usable by its successor — stale temp files swept, no
       corruption, prior entries served as hits. *)
    (let sock2 = Filename.concat dir "kill.sock" in
     let spawn () =
       let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
       Fun.protect ~finally:(fun () -> Unix.close devnull)
         (fun () ->
           Unix.create_process Sys.executable_name
             [| Sys.executable_name; "serve"; "--socket"; sock2;
                "--cache-dir"; cache; "--jobs"; "2" |]
             Unix.stdin devnull devnull)
     in
     let ready () =
       wait_for (fun () -> try healthy sock2 with _ -> false)
     in
     let ask () =
       let conn = Service.Client.connect sock2 in
       Fun.protect ~finally:(fun () -> Service.Client.close conn)
         (fun () ->
           match Service.Client.call conn ~tag:0 (Wire.Run chaos_args) with
           | Wire.Result s -> Some s.Wire.rs_from_cache
           | _ -> None)
     in
     let pid = spawn () in
     let first = if ready () then ask () else None in
     Unix.kill pid Sys.sigkill;
     ignore (Unix.waitpid [] pid);
     let pid2 = spawn () in
     let second = if ready () then ask () else None in
     let strays =
       Sys.readdir cache |> Array.to_list
       |> List.filter (fun n -> List.mem "tmp" (String.split_on_char '.' n))
     in
     Unix.kill pid2 Sys.sigterm;
     ignore (Unix.waitpid [] pid2);
     scenario "SIGKILL'd daemon restarts onto its cache"
       (first <> None && second = Some true && strays = [])
       (Printf.sprintf "hit after restart: %b, stray temp files: %d"
          (second = Some true) (List.length strays)));

    if !failures > 0 then begin
      Printf.eprintf "chaos: %d scenario(s) failed\n" !failures;
      exit 1
    end;
    Printf.printf "chaos: all scenarios passed\n"
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Drill the daemon's fault boundary with hostile clients and a \
             SIGKILL-restart cycle")
    Term.(const run $ jobs_arg $ requests_arg)

(* --- sweep ------------------------------------------------------------ *)

let sweep_cmd =
  let module Topology = Wp_topo.Topology in
  let module Sweep = Wp_topo.Sweep in
  let topology_conv =
    let parse s =
      match Topology.of_string s with
      | Ok t -> Ok t
      | Error e -> Error (`Msg e)
    in
    let print ppf t = Format.pp_print_string ppf (Topology.to_string t) in
    Arg.conv (parse, print)
  in
  let topology_arg =
    Arg.(non_empty & opt_all topology_conv []
         & info [ "topology" ] ~docv:"SHAPE"
             ~doc:"Topology family to sweep (repeatable): \
                   $(b,ring:N), $(b,mesh:RxC), $(b,torus:RxC) or \
                   $(b,rand:N), each optionally suffixed \
                   $(b,:seedK), $(b,:rsK) (max relay stations per \
                   channel) and $(b,:adapt) (insert mismatched-width \
                   channels bridged by space-time adapter shells).")
  in
  let seeds_arg =
    Arg.(value & opt int 1
         & info [ "seeds" ] ~docv:"N"
             ~doc:"Generator seeds per family: each family is \
                   instantiated with seeds $(i,base..base+N-1).")
  in
  let no_check_arg =
    Arg.(value & flag
         & info [ "no-check" ]
             ~doc:"Skip the cross-engine agreement checks (static \
                   schedule replay and reference-interpreter spot \
                   checks); only run the primary engine.")
  in
  let run topos seeds no_check jobs gc spec =
    with_gc_stats gc @@ fun () ->
    let scenarios = Sweep.expand ~topos ~seeds ~spec in
    let results = Sweep.run ?jobs ~check_engines:(not no_check) scenarios in
    print_string (Sweep.render results);
    let failures = List.filter (fun r -> not (Sweep.ok r)) results in
    if failures <> [] then begin
      List.iter
        (fun (r : Sweep.result) ->
          let reason =
            match r.Sweep.r_error with
            | Some e -> e
            | None ->
              if r.Sweep.r_word_ok = Some false then "word-rate mismatch"
              else String.concat "; " r.Sweep.r_disagreements
          in
          let path = Sweep.write_repro r.Sweep.r_scenario ~reason in
          Printf.eprintf "FAIL %s: %s\n  repro:  %s\n  replay: %s\n"
            (Topology.digest r.Sweep.r_scenario.Sweep.topo)
            reason path
            (Sweep.replay_command r.Sweep.r_scenario))
        failures;
      Printf.eprintf "sweep: %d/%d scenarios failed\n" (List.length failures)
        (List.length results);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Stress generated topologies across engines and seeds")
    Term.(const run $ topology_arg $ seeds_arg $ no_check_arg $ jobs_arg
          $ gc_stats_arg $ spec_term)

let () =
  let doc = "wire-pipelined SoC design methodology (DATE'05 reproduction)" in
  let info = Cmd.info "wirepipe" ~version:"1.0.0" ~doc in
  exit
    (try
       (* [~catch:false]: cmdliner's own handler would swallow the
          Unschedulable exception below as an "internal error" (125)
          before we can turn it into the documented exit code 2. *)
       Cmd.eval ~catch:false
         (Cmd.group info
          [
            table1_cmd;
            run_cmd;
            loops_cmd;
            floorplan_cmd;
            flow_cmd;
            graph_cmd;
            equiv_cmd;
            area_cmd;
            exec_cmd;
            optimal_cmd;
            wave_cmd;
            rtl_cmd;
            serve_cmd;
            client_cmd;
            chaos_cmd;
            sweep_cmd;
          ])
     with Wp_sim.Static.Unschedulable reason ->
       (* --engine static on a configuration with no static firing
          word: refuse loudly rather than fall back silently. *)
       Printf.eprintf
         "wirepipe: configuration is not statically schedulable: %s\n\
          (use --engine fast or --engine ref for this configuration)\n"
         reason;
       2
     | exn ->
       (* Preserve cmdliner's internal-error convention for anything
          else now that ~catch:false lets exceptions through. *)
       Printf.eprintf "wirepipe: internal error, uncaught exception:\n%s\n"
         (Printexc.to_string exn);
       125)
