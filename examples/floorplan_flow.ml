(* The "new system design methodology" end to end: floorplan the SoC,
   derive relay-station counts from wire lengths, analyse the loops, and
   show what a throughput-aware floorplan objective buys.

   Run with: dune exec examples/floorplan_flow.exe *)

module Flow = Wp_floorplan.Flow
module Place = Wp_floorplan.Place
module Geometry = Wp_floorplan.Geometry

let show_placement (p : Place.placement) =
  List.iter
    (fun (name, r) ->
      Printf.printf "    %-4s at (%.2f, %.2f)  %.2f x %.2f mm\n" name
        r.Geometry.origin.Geometry.x r.Geometry.origin.Geometry.y r.Geometry.width
        r.Geometry.height)
    p.Place.rects

let () =
  print_endline "wire-pipelining methodology: floorplan -> RS budget -> loop analysis\n";
  let reach = 1.3 in
  let spec = { Wp_floorplan.Flow_spec.default with Wp_floorplan.Flow_spec.seed = 9; reach } in
  Printf.printf "signal reach per clock: %.1f mm\n\n" reach;
  List.iter
    (fun (tag, r) ->
      Printf.printf "objective: %s\n" tag;
      Printf.printf "  die %.2f mm^2, total wire %.1f mm\n" r.Flow.die_area r.Flow.wirelength;
      Printf.printf "  relay stations from geometry: %s\n"
        (Wp_core.Config.describe r.Flow.config);
      Printf.printf "  worst-loop throughput bound: %.3f\n" r.Flow.wp1_bound;
      show_placement r.Flow.placement;
      print_newline ())
    (Flow.objectives_ablation ~spec ());
  (* Close the loop: simulate the processor under the best floorplan's RS
     budget and confirm the bound. *)
  let results = Flow.objectives_ablation ~spec () in
  let aware = List.assoc "area + loop throughput" results in
  let program = Wp_soc.Programs.extraction_sort ~values:(Wp_soc.Programs.sort_values ~seed:1 ~n:12) in
  let record =
    Wp_core.Experiment.run_spec ~spec:Wp_core.Run_spec.default
      ~machine:Wp_soc.Datapath.Pipelined ~program aware.Flow.config
  in
  Printf.printf
    "simulated under the throughput-aware floorplan: WP1 %.3f (bound %.3f), WP2 %.3f\n"
    record.Wp_core.Experiment.th_wp1 aware.Flow.wp1_bound record.Wp_core.Experiment.th_wp2
