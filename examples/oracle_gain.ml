(* Where does the WP2 oracle gain come from?  This example opens the
   hood: it profiles the channel utilisations of the case-study blocks
   (how often each input port is actually required) and relates them to
   the measured per-connection oracle gains — the paper's "advantage
   depends on the features of the communication channel at stake".

   Run with: dune exec examples/oracle_gain.exe *)

module Datapath = Wp_soc.Datapath
module Programs = Wp_soc.Programs
module Shell = Wp_lis.Shell
module Monitor = Wp_sim.Monitor
module Config = Wp_core.Config

let () =
  let program = Programs.extraction_sort ~values:(Programs.sort_values ~seed:1 ~n:16) in
  (* Profile: run the golden system with oracle wrappers; the monitor
     reports, per input port, the fraction of firings that required it. *)
  let profile =
    Wp_soc.Cpu.run ~machine:Datapath.Pipelined ~mode:Shell.Oracle
      ~rs:Wp_soc.Cpu.no_relay_stations program
  in
  let report = profile.Wp_soc.Cpu.report in
  print_endline "channel utilisation (fraction of consumer firings that need the token):";
  List.iter
    (fun node ->
      Array.iter
        (fun (port, u) ->
          if u < 0.999 then
            Printf.printf "  %-3s.%-10s %5.1f%%\n" node.Monitor.node_name port (100.0 *. u))
        node.Monitor.port_utilization)
    report.Monitor.nodes;
  print_endline "\nper-connection oracle gain with one relay station (simulated):";
  List.iter
    (fun conn ->
      let record =
        Wp_core.Experiment.run_spec ~spec:Wp_core.Run_spec.default
          ~machine:Datapath.Pipelined ~program (Config.only conn 1)
      in
      let estimate =
        Wp_core.Analysis.wp2_estimate (Config.only conn 1)
          ~utilization:(Wp_core.Analysis.utilization_of_report report)
      in
      Printf.printf "  %-7s WP1 %.3f -> WP2 %.3f (gain %+3.0f%%)   heuristic estimate %.3f\n"
        (Datapath.connection_name conn)
        record.Wp_core.Experiment.th_wp1 record.Wp_core.Experiment.th_wp2
        record.Wp_core.Experiment.gain_percent estimate)
    Datapath.all_connections;
  print_endline
    "\nthe busy channels (ctrl, cmd, fetch) show no gain; the sparse ones\n\
     (flags, store data, load writeback) recover almost everything."
