(* Quickstart: build a tiny latency-insensitive system by hand, pipeline
   one of its wires, and watch the throughput obey m/(m+n) while the
   informative behaviour stays exactly the same.

   Run with: dune exec examples/quickstart.exe *)

module Process = Wp_lis.Process
module Shell = Wp_lis.Shell
module Trace = Wp_lis.Trace
module Network = Wp_sim.Network
module Engine = Wp_sim.Engine
module Monitor = Wp_sim.Monitor

(* A two-process ring: [doubler] sends x*2 to [incrementer], which sends
   x+1 back.  In the golden system both fire every clock cycle. *)
let build ~relay_stations =
  let net = Network.create () in
  let doubler =
    Network.add net
      (Process.unary ~name:"doubler" ~input_name:"i" ~output_name:"o" ~reset:1 (fun x -> x * 2))
  in
  let incrementer =
    Network.add net
      (Process.unary ~name:"incrementer" ~input_name:"i" ~output_name:"o" ~reset:0 (fun x -> x + 1))
  in
  ignore (Network.connect net ~src:(doubler, "o") ~dst:(incrementer, "i") ~relay_stations ());
  ignore (Network.connect net ~src:(incrementer, "o") ~dst:(doubler, "i") ());
  net

let run ~relay_stations ~cycles =
  let engine = Engine.create ~record_traces:true ~mode:Shell.Plain (build ~relay_stations) in
  (match Engine.run ~max_cycles:cycles engine with
  | Engine.Exhausted _ -> ()
  | Engine.Halted _ | Engine.Deadlocked _ | Engine.Cancelled _ -> assert false);
  let report = Monitor.collect engine in
  let throughput = Monitor.node_throughput report "doubler" in
  let trace = Shell.output_trace (Engine.shell engine 0) 0 in
  (throughput, Trace.tau_filter trace)

let () =
  print_endline "A 2-process ring, with n relay stations on one wire:";
  print_endline "(the paper predicts throughput m/(m+n) with m = 2)";
  let golden_throughput, golden_values = run ~relay_stations:0 ~cycles:200 in
  List.iter
    (fun n ->
      let throughput, values = run ~relay_stations:n ~cycles:200 in
      (* Wire pipelining slows the system down ... *)
      Printf.printf "  n = %d: throughput %.3f (predicted %.3f)\n" n throughput
        (2.0 /. float_of_int (2 + n));
      (* ... but never changes what it computes: the informative events
         are a prefix of the golden ones. *)
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: a', y :: b' -> x = y && is_prefix a' b'
        | _ :: _, [] -> false
      in
      assert (is_prefix values golden_values))
    [ 0; 1; 2; 3 ];
  Printf.printf "golden throughput: %.3f\n" golden_throughput;
  print_endline "all wire-pipelined traces are prefixes of the golden trace \xe2\x9c\x93"
