(* The paper's case study, scenario 2: matrix multiply under deeper wire
   pipelining (the "All 1 and 2 X" family of Table 1), plus a check that
   the computed product is bit-exact in every configuration.

   Run with: dune exec examples/soc_matmul.exe *)

module Datapath = Wp_soc.Datapath
module Programs = Wp_soc.Programs
module Config = Wp_core.Config

let () =
  let n = 4 in
  let a = Programs.matrix_values ~seed:2 ~n and b = Programs.matrix_values ~seed:3 ~n in
  let program = Programs.matrix_multiply ~n ~a ~b in
  Printf.printf "C = A x B for %dx%d matrices, pipelined machine\n\n" n n;
  let all1 = Config.uniform ~except:[ Datapath.CU_IC ] 1 in
  let scenarios =
    [
      ("All 1 (no CU-IC)", all1);
      ("All 1 and 2 CU-AL", Config.set all1 Datapath.CU_AL 2);
      ("All 1 and 2 RF-ALU", Config.set all1 Datapath.RF_ALU 2);
      ("All 2 (no CU-IC)", Config.uniform ~except:[ Datapath.CU_IC ] 2);
    ]
  in
  List.iter
    (fun (label, config) ->
      let r = Wp_core.Experiment.run_spec ~spec:Wp_core.Run_spec.default
          ~machine:Datapath.Pipelined ~program config in
      Printf.printf "%-20s WP1 %.3f | WP2 %.3f | gain %+.0f%% | WP2 cycles %d\n" label
        r.Wp_core.Experiment.th_wp1 r.Wp_core.Experiment.th_wp2
        r.Wp_core.Experiment.gain_percent r.Wp_core.Experiment.wp2.Wp_soc.Cpu.cycles;
      (* Experiment.run already verified the product against the ISS; do
         it once more explicitly for show. *)
      let expected = Wp_soc.Program.expected_result program in
      let base, len = program.Wp_soc.Program.result_region in
      let got = Array.sub r.Wp_core.Experiment.wp2.Wp_soc.Cpu.memory base len in
      assert (got = expected))
    scenarios;
  print_endline "\nevery configuration computed the exact same product \xe2\x9c\x93"
