(* The paper's case study, scenario 1: run extraction sort on the 5-block
   processor, compare classic latency-insensitive wrappers (WP1) against
   the oracle wrappers (WP2) on the configurations that matter.

   Run with: dune exec examples/soc_sort.exe *)

module Datapath = Wp_soc.Datapath
module Programs = Wp_soc.Programs
module Config = Wp_core.Config

let () =
  let values = Programs.sort_values ~seed:1 ~n:16 in
  let program = Programs.extraction_sort ~values in
  Printf.printf "sorting %d values on the pipelined 5-block processor\n\n"
    (Array.length values);
  (* Golden reference: no relay stations. *)
  let golden = Wp_core.Experiment.golden ~machine:Datapath.Pipelined program in
  Printf.printf "golden system: %d cycles (throughput 1.0 by definition)\n\n"
    golden.Wp_soc.Cpu.cycles;
  let scenarios =
    [
      ("one RS on the fetch interface (CU-IC)", Config.only Datapath.CU_IC 1);
      ("one RS on the branch-flags wire (ALU-CU)", Config.only Datapath.ALU_CU 1);
      ("one RS on the store-data wire (RF-DC)", Config.only Datapath.RF_DC 1);
      ("one RS everywhere but CU-IC", Config.uniform ~except:[ Datapath.CU_IC ] 1);
    ]
  in
  List.iter
    (fun (what, config) ->
      let r = Wp_core.Experiment.run_spec ~spec:Wp_core.Run_spec.default
          ~machine:Datapath.Pipelined ~program config in
      Printf.printf "%s:\n" what;
      Printf.printf "  WP1 %.3f | WP2 %.3f | oracle gain %+.0f%% | static bound %.3f\n\n"
        r.Wp_core.Experiment.th_wp1 r.Wp_core.Experiment.th_wp2
        r.Wp_core.Experiment.gain_percent r.Wp_core.Experiment.wp1_bound)
    scenarios;
  print_endline
    "note how the fetch loop is oracle-immune (the CU reads every response)\n\
     while rarely-used wires (flags, store data) recover most of the loss —\n\
     exactly the trend of the paper's Table 1."
