module Datapath = Wp_soc.Datapath

(* Keyed by position in [Datapath.all_connections]. *)
type t = int array

let connection_count = List.length Datapath.all_connections

let index conn =
  let rec scan i = function
    | [] -> assert false
    | c :: rest -> if c = conn then i else scan (i + 1) rest
  in
  scan 0 Datapath.all_connections

let zero = Array.make connection_count 0

let get t conn = t.(index conn)

let set t conn n =
  if n < 0 then invalid_arg "Config.set: negative relay station count";
  let fresh = Array.copy t in
  fresh.(index conn) <- n;
  fresh

let only conn n = set zero conn n

let uniform ?(except = []) n =
  List.fold_left
    (fun acc conn -> if List.mem conn except then acc else set acc conn n)
    zero Datapath.all_connections

let of_alist alist = List.fold_left (fun acc (conn, n) -> set acc conn n) zero alist

let to_alist t = List.map (fun conn -> (conn, get t conn)) Datapath.all_connections

let to_fun t conn = get t conn

let total_connections t = Array.fold_left ( + ) 0 t

let channels_per_connection conn =
  match conn with
  | Datapath.CU_IC | Datapath.RF_ALU -> 2
  | Datapath.CU_RF | Datapath.CU_AL | Datapath.CU_DC | Datapath.RF_DC | Datapath.ALU_CU
  | Datapath.ALU_RF | Datapath.ALU_DC | Datapath.DC_RF ->
    1

let total_channels t =
  List.fold_left
    (fun acc (conn, n) -> acc + (n * channels_per_connection conn))
    0 (to_alist t)

let equal = ( = )

let digest t =
  (* Content-addressed key material for the experiment cache: stable
     across processes (unlike [Hashtbl.hash]) and injective on the count
     vector.  The array is in [Datapath.all_connections] order. *)
  let buf = Buffer.create 32 in
  Array.iter
    (fun n ->
      Buffer.add_string buf (string_of_int n);
      Buffer.add_char buf ',')
    t;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let describe t =
  let parts =
    List.filter_map
      (fun (conn, n) ->
        if n = 0 then None else Some (Printf.sprintf "%s=%d" (Datapath.connection_name conn) n))
      (to_alist t)
  in
  match parts with
  | [] -> "none"
  | _ -> String.concat " " parts

let pp ppf t = Format.pp_print_string ppf (describe t)

(* The CLI/service grammar: "CU-AL=1,DC-RF=2", or ""/"none" for zero.
   Shared by [wp_cli] argument parsing and the serve daemon. *)
let of_string s =
  if String.trim s = "" || String.lowercase_ascii (String.trim s) = "none" then Ok zero
  else begin
    let parts = String.split_on_char ',' s in
    let parse_part acc part =
      match acc with
      | Error _ as e -> e
      | Ok config ->
        (match String.split_on_char '=' (String.trim part) with
        | [ conn_name; count ] ->
          (match (Datapath.connection_of_name conn_name, int_of_string_opt count) with
          | Some conn, Some n when n >= 0 -> Ok (set config conn n)
          | None, _ -> Error (Printf.sprintf "unknown connection %S" conn_name)
          | _, (Some _ | None) -> Error (Printf.sprintf "bad count in %S" part))
        | _ -> Error (Printf.sprintf "expected CONN=N, got %S" part))
    in
    List.fold_left parse_part (Ok zero) parts
  end
