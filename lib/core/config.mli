(** Relay-station configurations: how many RS each connection carries.

    A configuration is a total map from the ten named connections of the
    case study to RS counts, with the algebra needed to express every row
    of the paper's Table 1. *)

type t

val zero : t
(** The ideal system: no relay stations. *)

val get : t -> Wp_soc.Datapath.connection -> int

val set : t -> Wp_soc.Datapath.connection -> int -> t
(** Functional update. @raise Invalid_argument on a negative count. *)

val only : Wp_soc.Datapath.connection -> int -> t
(** RS on a single connection. *)

val uniform : ?except:Wp_soc.Datapath.connection list -> int -> t
(** The same count everywhere, except the listed connections (0 there). *)

val of_alist : (Wp_soc.Datapath.connection * int) list -> t
(** Unlisted connections get 0; later entries win. *)

val to_alist : t -> (Wp_soc.Datapath.connection * int) list
(** In {!Wp_soc.Datapath.all_connections} order, including zeros. *)

val to_fun : t -> Wp_soc.Datapath.connection -> int

val total_connections : t -> int
(** Sum of per-connection counts (the paper's placement budget). *)

val total_channels : t -> int
(** Sum weighted by channels per connection (CU-IC and RF-ALU count
    double) — the physical RS count. *)

val equal : t -> t -> bool

val digest : t -> string
(** Stable hex digest of the full count vector (equal configurations give
    equal digests, distinct ones distinct digests) — the configuration
    component of {!Runner}'s content-addressed result-cache keys. *)

val pp : Format.formatter -> t -> unit
val describe : t -> string
(** Compact human description, e.g. ["ALU-RF=1 DC-RF=2"] or ["none"]. *)

val of_string : string -> (t, string) result
(** Parse ["CU-AL=1,DC-RF=2"] (or [""] / ["none"] for {!zero}); the
    inverse of {!describe} up to ordering.  One-line [Error] on an
    unknown connection name or malformed count. *)
