module Datapath = Wp_soc.Datapath
module Network = Wp_sim.Network
module Sim = Wp_sim.Sim
module Engine = Wp_sim.Engine
module Fault = Wp_sim.Fault
module Shell = Wp_lis.Shell
module Trace = Wp_lis.Trace
module Process = Wp_lis.Process

module Link = Wp_sim.Link

type verdict = {
  equivalent : bool;
  ports_checked : int;
  events_compared : int;
  first_mismatch : string option;
  golden_outcome : Engine.outcome;
  wp_outcome : Engine.outcome;
  recovery : Link.summary option;
}

(* Run one system and collect, per "BLOCK.port", the output trace (plus
   the link-layer summary when a protection policy is active).  All run
   parameters come in through one [Run_spec.t]. *)
let traced_run_spec ~spec ~machine ~mode ~config program =
  let protect =
    if Protect.is_none spec.Run_spec.protect then None
    else Some (Protect.to_fun spec.Run_spec.protect)
  in
  let max_cycles =
    match spec.Run_spec.max_cycles with Some n -> n | None -> 2_000_000
  in
  let dp = Datapath.build ?protect ~machine ~rs:(Config.to_fun config) program in
  let sim =
    Sim.create ~engine:spec.Run_spec.engine ~capacity:spec.Run_spec.capacity
      ~record_traces:true ~fault:spec.Run_spec.fault
      ~telemetry:spec.Run_spec.telemetry ~mode dp.Datapath.network
  in
  let outcome = Sim.run ~max_cycles sim in
  let net = dp.Datapath.network in
  let ports =
    List.concat_map
      (fun node ->
        let proc = Network.node_process net node in
        List.init
          (Array.length proc.Process.output_names)
          (fun p ->
            ( proc.Process.name ^ "." ^ proc.Process.output_names.(p),
              Sim.output_trace sim node p )))
      (Network.nodes net)
  in
  (outcome, ports, Sim.link_summary sim)

let traced_run ?engine ?max_cycles ?fault ~machine ~mode ~config program =
  let outcome, ports, _ =
    traced_run_spec
      ~spec:(Run_spec.v ?engine ?max_cycles ?fault ())
      ~machine ~mode ~config program
  in
  (outcome, ports)

let halted = function Engine.Halted _ -> true | _ -> false

let check_spec ~spec ~machine ~mode ~config program =
  let golden_outcome, golden, _ =
    (* The reference run is always clean and unprotected: strip the
       perturbing fields but keep the engine/budget/capacity so the two
       runs remain comparable. *)
    traced_run_spec
      ~spec:
        {
          spec with
          Run_spec.fault = Fault.none;
          protect = Protect.none;
          telemetry = Wp_sim.Telemetry.off;
        }
      ~machine ~mode:Shell.Plain ~config:Config.zero program
  in
  let wp_outcome, wp, recovery =
    traced_run_spec ~spec ~machine ~mode ~config program
  in
  let ports_checked = ref 0 and events = ref 0 in
  (* A value mismatch is pinned to the port whose tau-filtered streams
     diverge at the {e earliest} informative index — under fault
     injection that names the consumer of the faulted channel rather
     than whichever port happens to come first in node order. *)
  let best_port = ref None and best_index = ref max_int in
  (* If no value diverges but the WP run stops short (deadlock after a
     clean prefix — e.g. a dropped token starves a loop), blame the
     port with the largest informative-event shortfall. *)
  let short_port = ref None and short_by = ref 0 in
  List.iter
    (fun (port, golden_trace) ->
      match List.assoc_opt port wp with
      | None -> if !best_port = None then (best_port := Some port; best_index := -1)
      | Some wp_trace ->
        incr ports_checked;
        let a = Trace.tau_filter golden_trace and b = Trace.tau_filter wp_trace in
        let na = List.length a and nb = List.length b in
        let shorter = min na nb in
        events := !events + shorter;
        let agree = Trace.equivalent_prefix ~eq:( = ) golden_trace wp_trace in
        if agree < shorter && agree < !best_index then begin
          best_index := agree;
          best_port := Some port
        end;
        if na - nb > !short_by then begin
          short_by := na - nb;
          short_port := Some port
        end)
    golden;
  let mismatch =
    match !best_port with
    | Some _ as m -> m
    | None ->
      (* Clean prefixes everywhere; still inequivalent if the golden
         system halts but the WP system deadlocks or runs forever. *)
      if halted golden_outcome && not (halted wp_outcome) then
        match !short_port with Some _ as p -> p | None -> Some "<no progress>"
      else None
  in
  {
    equivalent = mismatch = None;
    ports_checked = !ports_checked;
    events_compared = !events;
    first_mismatch = mismatch;
    golden_outcome;
    wp_outcome;
    recovery;
  }


let check_n_equivalence_spec ~spec ~n ~machine ~mode ~config program =
  let _, golden, _ =
    traced_run_spec
      ~spec:
        {
          spec with
          Run_spec.fault = Fault.none;
          protect = Protect.none;
          telemetry = Wp_sim.Telemetry.off;
        }
      ~machine ~mode:Shell.Plain ~config:Config.zero program
  in
  let _, wp, _ = traced_run_spec ~spec ~machine ~mode ~config program in
  List.for_all
    (fun (port, golden_trace) ->
      match List.assoc_opt port wp with
      | None -> false
      | Some wp_trace ->
        let enough t = Trace.informative_count t >= n in
        if enough golden_trace && enough wp_trace then
          Trace.n_equivalent ~eq:( = ) ~n golden_trace wp_trace
        else true)
    golden

