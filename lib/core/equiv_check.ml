module Datapath = Wp_soc.Datapath
module Network = Wp_sim.Network
module Sim = Wp_sim.Sim
module Shell = Wp_lis.Shell
module Trace = Wp_lis.Trace
module Process = Wp_lis.Process

type verdict = {
  equivalent : bool;
  ports_checked : int;
  events_compared : int;
  first_mismatch : string option;
}

(* Run one system and collect, per "BLOCK.port", the output trace. *)
let traced_run ?engine ?(max_cycles = 2_000_000) ~machine ~mode ~config program =
  let dp = Datapath.build ~machine ~rs:(Config.to_fun config) program in
  let sim = Sim.create ?engine ~record_traces:true ~mode dp.Datapath.network in
  ignore (Sim.run ~max_cycles sim);
  let net = dp.Datapath.network in
  List.concat_map
    (fun node ->
      let proc = Network.node_process net node in
      List.init
        (Array.length proc.Process.output_names)
        (fun p ->
          ( proc.Process.name ^ "." ^ proc.Process.output_names.(p),
            Sim.output_trace sim node p )))
    (Network.nodes net)

let check ?engine ?max_cycles ~machine ~mode ~config program =
  let golden =
    traced_run ?engine ?max_cycles ~machine ~mode:Shell.Plain ~config:Config.zero program
  in
  let wp = traced_run ?engine ?max_cycles ~machine ~mode ~config program in
  let ports_checked = ref 0 and events = ref 0 and mismatch = ref None in
  List.iter
    (fun (port, golden_trace) ->
      match List.assoc_opt port wp with
      | None -> if !mismatch = None then mismatch := Some port
      | Some wp_trace ->
        incr ports_checked;
        let a = Trace.tau_filter golden_trace and b = Trace.tau_filter wp_trace in
        let shorter = min (List.length a) (List.length b) in
        events := !events + shorter;
        if
          Trace.equivalent_prefix ~eq:( = ) golden_trace wp_trace < shorter
          && !mismatch = None
        then mismatch := Some port)
    golden;
  {
    equivalent = !mismatch = None;
    ports_checked = !ports_checked;
    events_compared = !events;
    first_mismatch = !mismatch;
  }

let check_n_equivalence ?engine ?max_cycles ~n ~machine ~mode ~config program =
  let golden =
    traced_run ?engine ?max_cycles ~machine ~mode:Shell.Plain ~config:Config.zero program
  in
  let wp = traced_run ?engine ?max_cycles ~machine ~mode ~config program in
  List.for_all
    (fun (port, golden_trace) ->
      match List.assoc_opt port wp with
      | None -> false
      | Some wp_trace ->
        let enough t = Trace.informative_count t >= n in
        if enough golden_trace && enough wp_trace then
          Trace.n_equivalent ~eq:( = ) ~n golden_trace wp_trace
        else true)
    golden
