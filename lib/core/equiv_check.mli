(** End-to-end equivalence checking of a wire-pipelined run against the
    golden system — the paper's formal claim, made executable.

    Both systems are simulated with trace recording; for every block and
    every output port, the tau-filtered token stream of the WP system must
    be prefix-compatible with the golden stream (the shorter is a prefix
    of the longer).  This is exactly N-equivalence for N = the shorter
    stream's length, on {e all} signals at once.

    Fault injection sharpens the claim into a theorem with a converse:
    a benign fault spec (stalls only — see {!Wp_sim.Fault.benign}) must
    leave the verdict equivalent, while destructive faults (token drop,
    duplication, corruption, spurious injection) must flip it.  To catch
    drops that leave a clean prefix and then wedge the machine, the
    verdict also demands that the WP system halts whenever the golden
    system does. *)

type verdict = {
  equivalent : bool;
  ports_checked : int;
  events_compared : int;  (** total informative events on the shorter sides *)
  first_mismatch : string option;
      (** "BLOCK.port" whose tau-filtered streams diverge at the earliest
          informative index; for a clean-prefix deadlock, the port with
          the largest informative-event shortfall. *)
  golden_outcome : Wp_sim.Engine.outcome;
  wp_outcome : Wp_sim.Engine.outcome;
  recovery : Wp_sim.Link.summary option;
      (** link-layer recovery statistics of the WP run (retransmissions,
          CRC detections, recovery latency); [None] when no channel is
          protected.  The {e recovery verdict} of a protected faulted run
          is [equivalent = true] together with a summary showing the
          faults were absorbed ([retransmissions]/[recoveries] > 0). *)
}

val traced_run :
  ?engine:Wp_sim.Sim.kind ->
  ?max_cycles:int ->
  ?fault:Wp_sim.Fault.spec ->
  machine:Wp_soc.Datapath.machine ->
  mode:Wp_lis.Shell.mode ->
  config:Config.t ->
  Wp_soc.Program.t ->
  Wp_sim.Engine.outcome * (string * int Wp_lis.Token.t list) list
(** Run one system with trace recording and return the outcome plus the
    raw (unfiltered) output trace per ["BLOCK.port"].  [max_cycles]
    defaults to 2_000_000. *)

val check_spec :
  spec:Run_spec.t ->
  machine:Wp_soc.Datapath.machine ->
  mode:Wp_lis.Shell.mode ->
  config:Config.t ->
  Wp_soc.Program.t ->
  verdict
(** Check one WP run, described by [spec], against the golden reference.
    The spec's engine, capacity and cycle budget apply to {e both}
    traced runs; its fault, protection and telemetry fields apply to the
    WP run only (the golden reference is always the clean raw system).
    With protection, bounded drop/dup/corrupt faults on protected
    connections must leave the verdict equivalent, and the [recovery]
    field reports how the link layer absorbed them. *)


val check_n_equivalence_spec :
  spec:Run_spec.t ->
  n:int ->
  machine:Wp_soc.Datapath.machine ->
  mode:Wp_lis.Shell.mode ->
  config:Config.t ->
  Wp_soc.Program.t ->
  bool
(** The paper's N-equivalence on every port: both runs must produce at
    least [n] informative events per port and agree on the first [n].
    Ports that never carry [n] events in either run are skipped.  Spec
    fields split between the runs as in {!check_spec}. *)

