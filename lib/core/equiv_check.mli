(** End-to-end equivalence checking of a wire-pipelined run against the
    golden system — the paper's formal claim, made executable.

    Both systems are simulated with trace recording; for every block and
    every output port, the tau-filtered token stream of the WP system must
    be prefix-compatible with the golden stream (the shorter is a prefix
    of the longer).  This is exactly N-equivalence for N = the shorter
    stream's length, on {e all} signals at once. *)

type verdict = {
  equivalent : bool;
  ports_checked : int;
  events_compared : int;  (** total informative events on the shorter sides *)
  first_mismatch : string option;  (** "BLOCK.port" of the first failure *)
}

val check :
  ?engine:Wp_sim.Sim.kind ->
  ?max_cycles:int ->
  machine:Wp_soc.Datapath.machine ->
  mode:Wp_lis.Shell.mode ->
  config:Config.t ->
  Wp_soc.Program.t ->
  verdict
(** [engine] selects the simulation kernel for both traced runs
    (default {!Wp_sim.Sim.default_kind}). *)

val check_n_equivalence :
  ?engine:Wp_sim.Sim.kind ->
  ?max_cycles:int ->
  n:int ->
  machine:Wp_soc.Datapath.machine ->
  mode:Wp_lis.Shell.mode ->
  config:Config.t ->
  Wp_soc.Program.t ->
  bool
(** The paper's N-equivalence on every port: both runs must produce at
    least [n] informative events per port and agree on the first [n].
    Ports that never carry [n] events in either run are skipped. *)
