module Cpu = Wp_soc.Cpu
module Datapath = Wp_soc.Datapath
module Program = Wp_soc.Program
module Shell = Wp_lis.Shell

type record = {
  program_name : string;
  machine : Datapath.machine;
  config : Config.t;
  golden_cycles : int;
  wp1 : Cpu.result;
  wp2 : Cpu.result;
  th_wp1 : float;
  th_wp2 : float;
  gain_percent : float;
  wp1_bound : float;
}

let program_digest (program : Program.t) =
  (* Two programs may share a name with different data (e.g. sorts of
     different sizes); the key must cover the full workload content.
     [Digest] (not [Hashtbl.hash]) so the key is collision-resistant and
     stable across processes. *)
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (program.Program.text, program.Program.mem_init, program.Program.mem_size)
          []))

(* The golden memo table is shared by every worker domain of the parallel
   runner, so all access goes through [golden_mutex].  The reference run
   itself executes outside the lock: concurrent misses on the same key may
   duplicate the simulation (harmless — [Cpu.run_golden] is pure), but the
   first completed result wins the table, so later calls return the same
   physical record. *)
let golden_cache : (string, Cpu.result) Hashtbl.t = Hashtbl.create 16
let golden_mutex = Mutex.create ()

let golden ?(engine = Wp_sim.Sim.default_kind) ~machine (program : Program.t) =
  (* The engine is part of the key: the two kernels produce identical
     results (the differential battery asserts it), but sharing a memo
     entry across engines would let a reference-run result stand in for
     a fast-run one and mask a regression in the compiled kernel. *)
  let key =
    Printf.sprintf "%s/%s/%s/%s" (Datapath.machine_name machine) program.Program.name
      (program_digest program)
      (Wp_sim.Sim.kind_to_string engine)
  in
  let cached =
    Mutex.lock golden_mutex;
    let r = Hashtbl.find_opt golden_cache key in
    Mutex.unlock golden_mutex;
    r
  in
  match cached with
  | Some r -> r
  | None ->
    let r = Cpu.run_golden ~engine ~machine program in
    if r.Cpu.outcome <> Cpu.Completed || not r.Cpu.result_ok then
      failwith ("Experiment.golden: reference run failed for " ^ key);
    Mutex.lock golden_mutex;
    let winner =
      match Hashtbl.find_opt golden_cache key with
      | Some first -> first
      | None ->
        Hashtbl.replace golden_cache key r;
        r
    in
    Mutex.unlock golden_mutex;
    winner

(* Oracle-mode (WP2) runs have no static firing word — the oracle's
   input masks are data-dependent — so under [--engine static] they
   downgrade, explicitly, to the differentially-verified Fast kernel.
   Everything statically schedulable (golden, WP1) still exercises the
   table kernel; nothing is ever silently mis-simulated because the
   Static engine itself refuses oracle mode with [Unschedulable]. *)
let oracle_spec (spec : Run_spec.t) =
  match spec.Run_spec.engine with
  | Wp_sim.Sim.Static -> { spec with Run_spec.engine = Wp_sim.Sim.Fast }
  | _ -> spec

let checked_run ?cancel ?mcr_work ~spec ~machine ~mode ~config program =
  let r =
    Run_spec.run_cpu ?cancel ?mcr_work ~spec ~machine ~mode
      ~rs:(Config.to_fun config) program
  in
  (match r.Cpu.outcome with
  | Cpu.Completed -> ()
  | Cpu.Deadlocked ->
    failwith
      (Printf.sprintf "Experiment: deadlock (%s, %s)" program.Program.name
         (Config.describe config))
  | Cpu.Out_of_cycles ->
    failwith
      (Printf.sprintf "Experiment: cycle budget exhausted (%s, %s)" program.Program.name
         (Config.describe config))
  | Cpu.Cancelled ->
    (* An exception, not a [failwith]: cancellation is the caller's own
       doing — the {!Runner} converts it to [Expired] without burning
       retries, and nothing below may cache the partial run. *)
    raise
      (Wp_util.Cancel.Cancelled
         (Printf.sprintf "deadline exceeded after %d cycles (%s, %s)"
            r.Cpu.cycles program.Program.name (Config.describe config))));
  if not r.Cpu.result_ok then
    failwith
      (Printf.sprintf "Experiment: wrong architectural result (%s, %s)" program.Program.name
         (Config.describe config));
  r

let run_spec ?cancel ~spec ~machine ~program config =
  (* An already-expired token must not burn a golden run (the memo is
     shared, but a miss still simulates). *)
  (match cancel with
  | Some c -> Wp_util.Cancel.check ~what:"before golden run" c
  | None -> ());
  (* The golden run is always clean and unprotected: faults perturb the
     wire-pipelined systems under test, never the reference they are
     judged against — and the link layer exists to make the protected
     runs equivalent to that untouched reference.  It also runs without
     the cancel token: it is memoized and shared across requests, so a
     cancelled caller must not poison the table for everyone else. *)
  let g = golden ~engine:spec.Run_spec.engine ~machine program in
  (* The golden cycle count is the work the wire-pipelined runs must
     complete, so it feeds the MCR-guided bound: each run is capped at
     [ceil (golden / Th) + slack] instead of the blanket 2M budget. *)
  let mcr_work = g.Cpu.cycles in
  let wp1 =
    checked_run ?cancel ~mcr_work ~spec ~machine ~mode:Shell.Plain ~config
      program
  in
  let wp2 =
    checked_run ?cancel ~mcr_work ~spec:(oracle_spec spec) ~machine
      ~mode:Shell.Oracle ~config program
  in
  let th_wp1 = Cpu.throughput ~golden:g wp1 in
  let th_wp2 = Cpu.throughput ~golden:g wp2 in
  {
    program_name = program.Program.name;
    machine;
    config;
    golden_cycles = g.Cpu.cycles;
    wp1;
    wp2;
    th_wp1;
    th_wp2;
    gain_percent = Wp_util.Stats.percent_gain th_wp1 th_wp2;
    wp1_bound = Analysis.wp1_bound_float config;
  }


(* Batched [run_spec]: every request contributes two lanes (WP1 plain +
   WP2 oracle) of one structure-of-arrays kernel, so N requests compile
   the netlist once per lane-set instead of running 2N full simulations.
   Per-request failures (deadlock, exhausted budget, wrong result) come
   back as [Error] in place — they must not poison the other lanes —
   while a kernel-level raise (which only a non-benign fault can cause,
   and [Runner.batchable] excludes those) propagates to the caller. *)
let run_batch_spec ?cancels ~machine
    (requests : (Run_spec.t * Program.t * Config.t) array) =
  let n = Array.length requests in
  if n = 0 then [||]
  else begin
    Array.iter
      (fun ((spec : Run_spec.t), _, _) ->
        if spec.Run_spec.engine <> Wp_sim.Sim.Fast then
          invalid_arg "Experiment.run_batch_spec: engine must be Fast")
      requests;
    let cancel_of i =
      match cancels with
      | Some cs when Array.length cs = n -> cs.(i)
      | Some _ ->
        invalid_arg "Experiment.run_batch_spec: cancels length mismatch"
      | None -> (
        match (let s, _, _ = requests.(i) in s.Run_spec.deadline_ms) with
        | Some ms -> Wp_util.Cancel.create ~deadline_ms:ms ()
        | None -> Wp_util.Cancel.never)
    in
    let lane_cancels = Array.init n cancel_of in
    let goldens =
      Array.map
        (fun ((spec : Run_spec.t), program, _) ->
          golden ~engine:spec.Run_spec.engine ~machine program)
        requests
    in
    let items =
      Array.init (2 * n) (fun k ->
          let i = k / 2 in
          let (spec : Run_spec.t), program, config = requests.(i) in
          {
            Cpu.b_mode = (if k land 1 = 0 then Shell.Plain else Shell.Oracle);
            b_rs = Config.to_fun config;
            b_capacity = spec.Run_spec.capacity;
            b_max_cycles = spec.Run_spec.max_cycles;
            b_mcr_work = Some goldens.(i).Cpu.cycles;
            b_fault = spec.Run_spec.fault;
            b_cancel = lane_cancels.(i);
            b_program = program;
          })
    in
    let lane_results = Cpu.run_batch ~machine items in
    let validate (r : Cpu.result) (program : Program.t) config =
      (* Same checks, same messages as [checked_run] — a quarantined
         batch request reports exactly what its solo run would. *)
      match r.Cpu.outcome with
      | Cpu.Deadlocked ->
        Error
          (Printf.sprintf "Experiment: deadlock (%s, %s)" program.Program.name
             (Config.describe config))
      | Cpu.Out_of_cycles ->
        Error
          (Printf.sprintf "Experiment: cycle budget exhausted (%s, %s)"
             program.Program.name (Config.describe config))
      | Cpu.Cancelled ->
        Error
          (Printf.sprintf "deadline exceeded after %d cycles (%s, %s)"
             r.Cpu.cycles program.Program.name (Config.describe config))
      | Cpu.Completed ->
        if not r.Cpu.result_ok then
          Error
            (Printf.sprintf "Experiment: wrong architectural result (%s, %s)"
               program.Program.name (Config.describe config))
        else Ok r
    in
    Array.init n (fun i ->
        let _, program, config = requests.(i) in
        let g = goldens.(i) in
        match
          ( validate lane_results.(2 * i) program config,
            validate lane_results.((2 * i) + 1) program config )
        with
        | Error e, _ | _, Error e -> Error e
        | Ok wp1, Ok wp2 ->
          let th_wp1 = Cpu.throughput ~golden:g wp1 in
          let th_wp2 = Cpu.throughput ~golden:g wp2 in
          Ok
            {
              program_name = program.Program.name;
              machine;
              config;
              golden_cycles = g.Cpu.cycles;
              wp1;
              wp2;
              th_wp1;
              th_wp2;
              gain_percent = Wp_util.Stats.percent_gain th_wp1 th_wp2;
              wp1_bound = Analysis.wp1_bound_float config;
            })
  end

let wp2_cycles_objective_spec ~spec ~machine ~program config =
  let g = golden ~engine:spec.Run_spec.engine ~machine program in
  let wp2 =
    Run_spec.run_cpu ~mcr_work:g.Cpu.cycles ~spec:(oracle_spec spec) ~machine
      ~mode:Shell.Oracle ~rs:(Config.to_fun config) program
  in
  match wp2.Cpu.outcome with
  | Cpu.Completed when wp2.Cpu.result_ok -> Cpu.throughput ~golden:g wp2
  | Cpu.Completed | Cpu.Deadlocked | Cpu.Out_of_cycles | Cpu.Cancelled -> 0.0

