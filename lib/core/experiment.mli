(** One Table 1 measurement: a (program, machine, configuration) triple
    simulated under both wrapper disciplines and compared to golden. *)

type record = {
  program_name : string;
  machine : Wp_soc.Datapath.machine;
  config : Config.t;
  golden_cycles : int;
  wp1 : Wp_soc.Cpu.result;
  wp2 : Wp_soc.Cpu.result;
  th_wp1 : float;          (** golden_cycles / wp1.cycles *)
  th_wp2 : float;
  gain_percent : float;    (** 100 * (th_wp2 - th_wp1) / th_wp1 *)
  wp1_bound : float;       (** static worst-loop bound *)
}

val program_digest : Wp_soc.Program.t -> string
(** Stable hex digest of the full workload content (text, initial memory,
    memory size) — the program component of cache keys here and in
    {!Runner}. *)

val golden :
  ?engine:Wp_sim.Sim.kind ->
  machine:Wp_soc.Datapath.machine ->
  Wp_soc.Program.t ->
  Wp_soc.Cpu.result
(** Run (and memoise per program content, machine and engine kind) the
    reference system.  The memo table is thread-safe: worker domains of
    the parallel {!Runner} may call this concurrently. *)

val run_spec :
  ?cancel:Wp_util.Cancel.t ->
  spec:Run_spec.t ->
  machine:Wp_soc.Datapath.machine ->
  program:Wp_soc.Program.t ->
  Config.t ->
  record
(** Simulate WP1 and WP2 under one {!Run_spec.t}.  Unless
    [spec.max_cycles] overrides it, each run is capped by the MCR-guided
    bound derived from the golden cycle count ({!Wp_soc.Cpu.run}'s
    [mcr_work]).  [spec.fault] is injected into both WP runs (never the
    golden reference); a benign spec must leave both runs correct — only
    slower.  [spec.protect] applies a {!Protect} policy to both WP runs
    (never the golden reference): protected connections get the
    self-healing {!Wp_sim.Link} layer, which must keep even destructive
    fault specs architecturally invisible.  [spec.telemetry] turns on
    stall attribution for both WP runs; the reports land in
    [wp1.telemetry] / [wp2.telemetry].
    [cancel] (default: a token built from [spec.deadline_ms], or
    {!Wp_util.Cancel.never}) cooperatively aborts the WP runs — never
    the memoized golden reference, which other requests share.
    @raise Failure if any run fails to complete or corrupts the
    architectural result — equivalence is an invariant here, not a
    statistic.
    @raise Wp_util.Cancel.Cancelled when the token fires mid-run; the
    partial result is discarded and never cached. *)


val run_batch_spec :
  ?cancels:Wp_util.Cancel.t array ->
  machine:Wp_soc.Datapath.machine ->
  (Run_spec.t * Wp_soc.Program.t * Config.t) array ->
  (record, string) result array
(** Batched {!run_spec}: all requests become lanes (WP1 + WP2 each) of
    one {!Wp_soc.Cpu.run_batch} kernel sharing a single compiled
    netlist.  Results are in request order and each record is identical
    to the corresponding {!run_spec}.  A request whose run deadlocks,
    exhausts its budget, exceeds its deadline or corrupts the result
    comes back as [Error] with {!run_spec}'s failure message, without
    disturbing the other lanes — a cancelled lane is compacted out of
    the kernel and its siblings' results stay byte-identical.
    [cancels] (one token per request, both of a request's lanes share
    it) overrides each spec's own [deadline_ms]; its length must equal
    the request count.  Specs must satisfy {!Runner.batchable}-style constraints:
    @raise Invalid_argument if any spec's engine is not [Fast];
    @raise Wp_sim.Batch.Unbatchable on capacity 0 or protection. *)

val wp2_cycles_objective_spec :
  spec:Run_spec.t ->
  machine:Wp_soc.Datapath.machine ->
  program:Wp_soc.Program.t ->
  Config.t ->
  float
(** Objective for the optimiser: the WP2 throughput of the configuration
    (higher is better). *)

