module Network = Wp_sim.Network
module Sim = Wp_sim.Sim
module Engine = Wp_sim.Engine
module Fault = Wp_sim.Fault
module Shell = Wp_lis.Shell
module Process = Wp_lis.Process
module Trace = Wp_lis.Trace
module Token = Wp_lis.Token
module Datapath = Wp_soc.Datapath
module Program = Wp_soc.Program
module Isa = Wp_soc.Isa
module Iss = Wp_soc.Iss
module Asm = Wp_soc.Asm
module Shrink = Wp_util.Shrink

type network_kind = Ring | Diamond | Oracle2

let all_networks = [ Ring; Diamond; Oracle2 ]

let network_name = function
  | Ring -> "ring"
  | Diamond -> "diamond"
  | Oracle2 -> "oracle2"

(* ------------------------------------------------------------------ *)
(* Small checker networks.                                            *)
(*                                                                    *)
(* Every token stream is strictly increasing (injective): two token   *)
(* lineages never collide in value within the checking window, so any *)
(* dropped, duplicated, corrupted or spuriously injected token is     *)
(* guaranteed to produce a visible divergence, not a silent repair.   *)
(* ------------------------------------------------------------------ *)

let got inputs i =
  match inputs.(i) with
  | Some v -> v
  | None -> invalid_arg "Lid_check: reading an input that was not required"

let source2 ~name ~reset_a ~reset_b f =
  {
    Process.name;
    input_names = [||];
    output_names = [| "a"; "b" |];
    reset_outputs = [| reset_a; reset_b |];
    make =
      (fun () ->
        let k = ref 0 in
        {
          Process.required = Process.all_required 0;
          fire =
            (fun _ ->
              let va, vb = f !k in
              incr k;
              [| va; vb |]);
          halted = (fun () -> false);
        });
  }

let join2 ~name ~reset f =
  {
    Process.name;
    input_names = [| "x"; "y" |];
    output_names = [| "out" |];
    reset_outputs = [| reset |];
    make =
      (fun () ->
        {
          Process.required = Process.all_required 2;
          fire =
            (fun inputs -> [| f (got inputs 0) (got inputs 1) |]);
          halted = (fun () -> false);
        });
  }

(* Oracle join: port "b" is only required on even firings — the shell's
   drop-pending machinery discards the odd-tag tokens. *)
let alternating_join ~name ~reset =
  {
    Process.name;
    input_names = [| "a"; "b" |];
    output_names = [| "out" |];
    reset_outputs = [| reset |];
    make =
      (fun () ->
        let count = ref 0 in
        let both = [| true; true |] and only_a = [| true; false |] in
        {
          Process.required =
            (fun () -> if !count mod 2 = 0 then both else only_a);
          fire =
            (fun inputs ->
              let a = got inputs 0 in
              let b = match inputs.(1) with Some v -> v | None -> 0 in
              incr count;
              [| (a * 1_000_000) + b |]);
          halted = (fun () -> false);
        });
  }

let build = function
  | Ring ->
      (* Two +1 relays in a loop; the two circulating token lineages are
         kept 1_000_000 apart so their value streams stay disjoint. *)
      let net = Network.create () in
      let a =
        Network.add net
          (Process.unary ~name:"A" ~input_name:"in" ~output_name:"out"
             ~reset:1_000_000 succ)
      in
      let b =
        Network.add net
          (Process.unary ~name:"B" ~input_name:"in" ~output_name:"out" ~reset:1
             succ)
      in
      let c0 =
        Network.connect net ~src:(a, "out") ~dst:(b, "in") ~relay_stations:1 ()
      in
      let c1 = Network.connect net ~src:(b, "out") ~dst:(a, "in") () in
      (net, Shell.Plain, [ c0; c1 ])
  | Diamond ->
      (* Fork/join: S emits (3k+1, 3k+2); the arms keep the streams in
         disjoint bands; the join's sum is strictly increasing. *)
      let net = Network.create () in
      let s =
        Network.add net
          (source2 ~name:"S" ~reset_a:1 ~reset_b:2 (fun k ->
               ((3 * (k + 1)) + 1, (3 * (k + 1)) + 2)))
      in
      let a =
        Network.add net
          (Process.unary ~name:"A" ~input_name:"in" ~output_name:"out"
             ~reset:9_999 (fun v -> 10_000 + v))
      in
      let b =
        Network.add net
          (Process.unary ~name:"B" ~input_name:"in" ~output_name:"out"
             ~reset:19_999 (fun v -> 20_000 + (2 * v)))
      in
      let j = Network.add net (join2 ~name:"J" ~reset:29_000 ( + )) in
      let k = Network.add net (Process.sink ~name:"K" ~input_name:"in") in
      let _c0 = Network.connect net ~src:(s, "a") ~dst:(a, "in") () in
      let _c1 = Network.connect net ~src:(s, "b") ~dst:(b, "in") () in
      let c2 =
        Network.connect net ~src:(a, "out") ~dst:(j, "x") ~relay_stations:1 ()
      in
      let c3 =
        Network.connect net ~src:(b, "out") ~dst:(j, "y") ~relay_stations:2 ()
      in
      let _c4 = Network.connect net ~src:(j, "out") ~dst:(k, "in") () in
      (net, Shell.Plain, [ c2; c3 ])
  | Oracle2 ->
      (* Two counters feeding an oracle join that skips port "b" on odd
         firings — exercising the drop-pending path under faults. *)
      let net = Network.create () in
      let sa =
        Network.add net
          (Process.pure_source ~name:"SA" ~output_name:"out" ~reset:999
             (fun k -> 1_000 + k))
      in
      let sb =
        Network.add net
          (Process.pure_source ~name:"SB" ~output_name:"out" ~reset:4_999
             (fun k -> 5_000 + k))
      in
      let j = Network.add net (alternating_join ~name:"J" ~reset:0) in
      let k = Network.add net (Process.sink ~name:"K" ~input_name:"in") in
      let c0 =
        Network.connect net ~src:(sa, "out") ~dst:(j, "a") ~relay_stations:1 ()
      in
      let c1 = Network.connect net ~src:(sb, "out") ~dst:(j, "b") () in
      let _c2 = Network.connect net ~src:(j, "out") ~dst:(k, "in") () in
      (net, Shell.Oracle, [ c0; c1 ])

(* ------------------------------------------------------------------ *)
(* Running and comparing                                              *)
(* ------------------------------------------------------------------ *)

type run_result = {
  outcome : Engine.outcome;
  injected : int;
  ports : (string * int list) list; (* tau-filtered, per "NODE.port" *)
  link : Wp_sim.Link.summary option; (* Some iff a channel was protected *)
}

let run_network ?engine ?(protect_first = false) ~max_cycles ~fault kind =
  let net, mode, fault_channels = build kind in
  if protect_first then (
    match fault_channels with
    | c :: _ ->
        Network.set_protection net c
          (Some { Network.window = 0; timeout = 0 })
    | [] -> ());
  let sim = Sim.create ?engine ~record_traces:true ~fault ~mode net in
  let outcome = Sim.run ~max_cycles sim in
  let ports =
    List.concat_map
      (fun node ->
        let proc = Network.node_process net node in
        List.init
          (Array.length proc.Process.output_names)
          (fun p ->
            ( proc.Process.name ^ "." ^ proc.Process.output_names.(p),
              Trace.tau_filter (Sim.output_trace sim node p) )))
      (Network.nodes net)
  in
  {
    outcome;
    injected = Sim.fault_injections sim;
    ports;
    link = Sim.link_summary sim;
  }

(* Compare a faulted run against the clean run of the same engine:
   prefix-compatibility on every port, bounded informative deficit,
   no deadlock.  Returns the first violation, if any. *)
let compare_runs ~clean ~faulted ~deficit_bound =
  let rec prefix_len a b n =
    match (a, b) with
    | x :: a', y :: b' when x = y -> prefix_len a' b' (n + 1)
    | _ -> n
  in
  let check_port (port, clean_events) =
    match List.assoc_opt port faulted.ports with
    | None -> Some (port, "port missing in faulted run")
    | Some faulted_events ->
        let nc = List.length clean_events
        and nf = List.length faulted_events in
        let common = prefix_len clean_events faulted_events 0 in
        if common < min nc nf then
          Some (port, Printf.sprintf "divergence at informative index %d" common)
        else if nf > nc then
          Some (port, Printf.sprintf "faulted run produced %d extra events" (nf - nc))
        else if nc - nf > deficit_bound then
          Some
            ( port,
              Printf.sprintf "liveness: deficit %d exceeds bound %d" (nc - nf)
                deficit_bound )
        else None
  in
  match faulted.outcome with
  | Engine.Deadlocked _ -> Some ("<network>", "deadlock under injected faults")
  | _ -> List.find_map check_port clean.ports

(* ------------------------------------------------------------------ *)
(* Exhaustive stall-schedule enumeration                              *)
(* ------------------------------------------------------------------ *)

type violation = { v_fault : Fault.spec; v_port : string; v_reason : string }

type report = {
  rep_network : network_kind;
  rep_engine : Sim.kind;
  rep_horizon : int;
  rep_fault_channels : int list;
  rep_schedules : int;
  rep_violations : violation list;
}

let schedule_spec ~fault_channels ~horizon bits =
  let clauses =
    List.concat
      (List.mapi
         (fun fi chan ->
           let cycles =
             List.filter
               (fun h -> bits land (1 lsl ((fi * horizon) + h)) <> 0)
               (List.init horizon (fun h -> h))
           in
           if cycles = [] then [] else [ Fault.Stall { chan; cycles } ])
         fault_channels)
  in
  { Fault.seed = 0; clauses }

let exhaustive ?engine ?(horizon = 6) ?(max_cycles = 120) ?(slack = 16) kind =
  let engine = match engine with Some e -> e | None -> Sim.default_kind in
  let _, _, fault_channels = build kind in
  let f = List.length fault_channels in
  let n_schedules = 1 lsl (f * horizon) in
  let clean = run_network ~engine ~max_cycles ~fault:Fault.none kind in
  let deficit_bound = horizon + slack in
  let violations = ref [] in
  for bits = 0 to n_schedules - 1 do
    let spec = schedule_spec ~fault_channels ~horizon bits in
    let faulted = run_network ~engine ~max_cycles ~fault:spec kind in
    match compare_runs ~clean ~faulted ~deficit_bound with
    | None -> ()
    | Some (port, reason) ->
        violations :=
          { v_fault = spec; v_port = port; v_reason = reason } :: !violations
  done;
  {
    rep_network = kind;
    rep_engine = engine;
    rep_horizon = horizon;
    rep_fault_channels = fault_channels;
    rep_schedules = n_schedules;
    rep_violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Static-schedule conformance                                        *)
(*                                                                    *)
(* The exhaustive harness above proves stalls never change WHAT the   *)
(* network computes; this one bounds HOW FAST.  The balanced firing   *)
(* word of the capacity-extended marked graph names an exact rational *)
(* rate; no stall schedule may beat it, and the unperturbed run must  *)
(* achieve it exactly.  Firing counts come from the raw per-cycle     *)
(* output traces (Valid = fired), measured over a period-aligned      *)
(* window in the steady tail, past both the start-up transient and    *)
(* every injected stall.                                              *)
(* ------------------------------------------------------------------ *)

type static_report = {
  st_network : network_kind;
  st_engine : Sim.kind;
  st_rate : Wp_graph.Cycle_ratio.ratio;
  st_schedules : int;
  st_violations : (Fault.spec * string) list;
}

let static_conformance ?engine ?(horizon = 6) kind =
  let engine = match engine with Some e -> e | None -> Sim.default_kind in
  let net0, mode, fault_channels = build kind in
  (match mode with
  | Shell.Plain -> ()
  | Shell.Oracle ->
      invalid_arg
        "Lid_check.static_conformance: oracle networks have no static schedule");
  (* Default capacity 2 on both sides, matching [Sim.create]. *)
  let sched = Wp_sim.Static.schedule net0 in
  let rate = sched.Wp_graph.Schedule.rate in
  let num = rate.Wp_graph.Cycle_ratio.num
  and den = rate.Wp_graph.Cycle_ratio.den in
  let settle = 32 + horizon in
  let windows = 8 in
  let window = windows * den in
  let max_cycles = settle + window in
  let f = List.length fault_channels in
  let n_schedules = 1 lsl (f * horizon) in
  let violations = ref [] in
  for bits = 0 to n_schedules - 1 do
    let spec = schedule_spec ~fault_channels ~horizon bits in
    let note fmt =
      Printf.ksprintf (fun s -> violations := (spec, s) :: !violations) fmt
    in
    let net, _, _ = build kind in
    let sim = Sim.create ~engine ~record_traces:true ~fault:spec ~mode net in
    (match Sim.run ~max_cycles sim with
    | Engine.Exhausted _ -> () (* free-running: the budget IS the window *)
    | Engine.Halted c | Engine.Deadlocked c | Engine.Cancelled c ->
        note "run ended at cycle %d, before the measurement window closed" c);
    List.iter
      (fun node ->
        let proc = Network.node_process net node in
        if Array.length proc.Process.output_names > 0 then begin
          let trace = Array.of_list (Sim.output_trace sim node 0) in
          if Array.length trace < max_cycles then
            note "node %s: trace covers %d cycles, window needs %d"
              proc.Process.name (Array.length trace) max_cycles
          else begin
            let fired = ref 0 in
            for i = settle to max_cycles - 1 do
              match trace.(i) with
              | Token.Valid _ -> incr fired
              | Token.Void -> ()
            done;
            if !fired > windows * num then
              note "node %s: %d firings in a %d-cycle window beats rate %d/%d"
                proc.Process.name !fired window num den
            else if bits = 0 && !fired <> windows * num then
              note
                "node %s: stall-free run made %d firings in a %d-cycle window, \
                 rate %d/%d demands %d"
                proc.Process.name !fired window num den (windows * num)
          end
        end)
      (Network.nodes net)
  done;
  {
    st_network = kind;
    st_engine = engine;
    st_rate = rate;
    st_schedules = n_schedules;
    st_violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Negative controls                                                  *)
(* ------------------------------------------------------------------ *)

type detection = {
  det_fault : Fault.spec;
  det_injected : bool;
  det_detected : bool;
}

type neg_report = {
  neg_network : network_kind;
  neg_engine : Sim.kind;
  neg_cases : detection list;
}

(* Which break kinds make a detectable promise on a given fault channel.
   Drop and Dup change the token stream's length and pairing, which every
   network turns into a value or liveness divergence.  Corrupt and
   Spurious only change {e values}, so they are detectable only on
   channels whose every token actually enters the computation: on
   [Oracle2]'s second channel the oracle's old-tag rule legitimately
   discards stale tokens, and corrupting (or injecting) a token that is
   then discarded is invisible {e by design} — that is the oracle
   absorbing a fault, not the checker missing one. *)
let break_kinds_for kind ~chan_index =
  match (kind, chan_index) with
  | Oracle2, 1 -> [ Fault.Drop; Fault.Dup ]
  | _ -> [ Fault.Drop; Fault.Dup; Fault.Corrupt; Fault.Spurious ]

let negative_controls ?engine ?(max_cycles = 120) kind =
  let engine = match engine with Some e -> e | None -> Sim.default_kind in
  let _, _, fault_channels = build kind in
  let clean = run_network ~engine ~max_cycles ~fault:Fault.none kind in
  (* The deficit bound is irrelevant for destructive faults (no stalls
     are injected), so any deficit beyond alignment slack is itself a
     detection; keep the same bound as the benign check for symmetry. *)
  let deficit_bound = 16 in
  let cases =
    List.concat
      (List.mapi
         (fun chan_index chan ->
           List.concat_map
             (fun kind_b ->
               List.map
                 (fun nth ->
                   let spec =
                     {
                       Fault.seed = 0;
                       clauses = [ Fault.Break { kind = kind_b; chan; nth } ];
                     }
                   in
                   let faulted = run_network ~engine ~max_cycles ~fault:spec kind in
                   {
                     det_fault = spec;
                     det_injected = faulted.injected > 0;
                     det_detected =
                       compare_runs ~clean ~faulted ~deficit_bound <> None;
                   })
                 [ 0; 2; 7 ])
             (break_kinds_for kind ~chan_index))
         fault_channels)
  in
  { neg_network = kind; neg_engine = engine; neg_cases = cases }

let undetected r =
  List.filter (fun d -> d.det_injected && not d.det_detected) r.neg_cases

(* ------------------------------------------------------------------ *)
(* Recovery sweep: the link layer's exhaustive counterpart.

   Same philosophy as [exhaustive], applied to the defender instead of
   the shells: on the ring with its first fault channel protected by
   [Wp_sim.Link], enumerate EVERY 1-fault and 2-fault drop/corrupt
   placement over the first token indices and demand that the protected
   run stays prefix-compatible with the clean run (bounded deficit, no
   deadlock) — zero informative-token loss.  Each spec is then replayed
   on the UNPROTECTED ring as its own negative control: the same faults
   must still be detected there, proving the protection (not a blind
   checker) is what absorbed them. *)
(* ------------------------------------------------------------------ *)

module Link = Wp_sim.Link

type recovery_case = {
  rc_fault : Fault.spec;
  rc_injected : int;
  rc_retransmissions : int;
  rc_recoveries : int;
  rc_max_latency : int;
}

type recovery_report = {
  recov_engine : Sim.kind;
  recov_window : int;
  recov_timeout : int;
  recov_cases : recovery_case list;
  recov_violations : violation list;
  recov_undetected : Fault.spec list;
}

let recovery_placements ~kinds ~nths =
  let singles =
    List.concat_map (fun k -> List.map (fun n -> [ (k, n) ]) nths) kinds
  in
  let pairs =
    List.concat_map
      (fun k1 ->
        List.concat_map
          (fun k2 ->
            List.concat_map
              (fun n1 ->
                List.filter_map
                  (fun n2 ->
                    if n1 < n2 then Some [ (k1, n1); (k2, n2) ] else None)
                  nths)
              nths)
          kinds)
      kinds
  in
  singles @ pairs

let recovery_sweep ?engine ?(max_cycles = 600) ?(slack = 64) () =
  let engine = match engine with Some e -> e | None -> Sim.default_kind in
  let kind = Ring in
  (* The ring's protected channel has 1 relay station; a 2-fault episode
     costs at most two full recovery rounds (timeout + round trips), so
     4x the auto timeout plus slack bounds the transient deficit. *)
  let timeout = Link.auto_timeout ~rs:1 in
  let window = Link.auto_window ~rs:1 in
  let deficit_bound = (4 * timeout) + slack in
  let clean = run_network ~engine ~max_cycles ~fault:Fault.none kind in
  let _, _, fault_channels = build kind in
  let chan = List.hd fault_channels in
  let placements =
    recovery_placements
      ~kinds:[ Fault.Drop; Fault.Corrupt ]
      ~nths:[ 0; 1; 2; 3; 4 ]
  in
  let cases = ref [] and violations = ref [] and undetected = ref [] in
  List.iter
    (fun placement ->
      let spec =
        {
          Fault.seed = 0;
          clauses =
            List.map
              (fun (k, nth) -> Fault.Break { kind = k; chan; nth })
              placement;
        }
      in
      let prot =
        run_network ~engine ~protect_first:true ~max_cycles ~fault:spec kind
      in
      (match compare_runs ~clean ~faulted:prot ~deficit_bound with
      | None -> ()
      | Some (port, reason) ->
          violations :=
            { v_fault = spec; v_port = port; v_reason = reason }
            :: !violations);
      let s =
        match prot.link with
        | Some s -> s
        | None -> failwith "Lid_check.recovery_sweep: protection not applied"
      in
      cases :=
        {
          rc_fault = spec;
          rc_injected = prot.injected;
          rc_retransmissions = s.Link.retransmissions;
          rc_recoveries = s.Link.recoveries;
          rc_max_latency = s.Link.max_recovery_latency;
        }
        :: !cases;
      (* Negative control: the same spec on the raw ring must be caught
         (compare_runs already counts a deadlock as a violation). *)
      let raw = run_network ~engine ~max_cycles ~fault:spec kind in
      if
        raw.injected > 0
        && compare_runs ~clean ~faulted:raw ~deficit_bound:16 = None
      then undetected := spec :: !undetected)
    placements;
  {
    recov_engine = engine;
    recov_window = window;
    recov_timeout = timeout;
    recov_cases = List.rev !cases;
    recov_violations = List.rev !violations;
    recov_undetected = List.rev !undetected;
  }

(* ------------------------------------------------------------------ *)
(* Shrinking counterexample driver                                    *)
(* ------------------------------------------------------------------ *)

type repro = {
  r_seed : int;
  r_name : string;
  r_machine : Datapath.machine;
  r_mode : Shell.mode;
  r_engine : Sim.kind;
  r_config : Config.t;
  r_fault : Fault.spec;
  r_text : Isa.instr array;
  r_mem_size : int;
  r_mem_init : (int * int) list;
}

let repro_of_program ~seed ~machine ~mode ~engine ~config ~fault
    (program : Program.t) =
  {
    r_seed = seed;
    r_name = program.Program.name;
    r_machine = machine;
    r_mode = mode;
    r_engine = engine;
    r_config = config;
    r_fault = fault;
    r_text = Array.copy program.Program.text;
    r_mem_size = program.Program.mem_size;
    r_mem_init = program.Program.mem_init;
  }

let listing text =
  String.concat "\n" (Array.to_list (Array.map Isa.to_string text)) ^ "\n"

let program_of_repro r =
  {
    Program.name = r.r_name;
    source = listing r.r_text;
    text = Array.copy r.r_text;
    mem_size = r.r_mem_size;
    mem_init = r.r_mem_init;
    result_region = (0, 0);
  }

(* A candidate program must be a valid, promptly terminating ISS
   workload, otherwise the golden run itself would not halt and the
   equivalence check would be meaningless (and slow). *)
let iss_valid r =
  Array.length r.r_text > 0
  &&
  match
    Iss.run ~max_steps:100_000 ~mem_size:r.r_mem_size ~mem_init:r.r_mem_init
      r.r_text
  with
  | (_ : Iss.result) -> true
  | exception Iss.Fault _ -> false
  | exception Invalid_argument _ -> false

let check_repro ?(max_cycles = 200_000) r =
  iss_valid r
  &&
  match
    Equiv_check.check_spec
      ~spec:(Run_spec.v ~engine:r.r_engine ~max_cycles ~fault:r.r_fault ())
      ~machine:r.r_machine ~mode:r.r_mode ~config:r.r_config
      (program_of_repro r)
  with
  | v -> not v.Equiv_check.equivalent
  | exception _ ->
      (* A stop-protocol violation or a crashed codec is a failure too:
         the counterexample still reproduces it. *)
      true

(* Removing instructions [pos, pos+len) shifts everything after the
   chunk; absolute branch targets must follow.  Targets into the removed
   chunk land on its first survivor; everything is clamped in range. *)
let fixup_branches text ~pos ~len =
  let n = Array.length text in
  Array.map
    (fun i ->
      match i with
      | Isa.Br (c, t) ->
          let t' = if t >= pos + len then t - len else if t >= pos then pos else t in
          let t' = if n = 0 then 0 else max 0 (min t' (n - 1)) in
          Isa.Br (c, t')
      | i -> i)
    text

let candidates r =
  let program_shrinks =
    Seq.map
      (fun (shrunk, pos, len) ->
        { r with r_text = fixup_branches shrunk ~pos ~len })
      (Shrink.chunk_removals r.r_text)
  in
  let config_shrinks =
    List.to_seq
      (List.filter_map
         (fun (conn, count) ->
           if count > 0 then Some { r with r_config = Config.set r.r_config conn 0 }
           else None)
         (Config.to_alist r.r_config))
  in
  let fault_shrinks =
    match r.r_fault.Fault.clauses with
    | [] | [ _ ] -> Seq.empty
    | clauses ->
        Seq.mapi
          (fun i _ ->
            {
              r with
              r_fault =
                {
                  r.r_fault with
                  Fault.clauses = List.filteri (fun j _ -> j <> i) clauses;
                };
            })
          (List.to_seq clauses)
  in
  let nop_shrinks =
    Seq.filter_map
      (fun i ->
        if r.r_text.(i) = Isa.Nop then None
        else begin
          let text = Array.copy r.r_text in
          text.(i) <- Isa.Nop;
          Some { r with r_text = text }
        end)
      (Seq.init (Array.length r.r_text) (fun i -> i))
  in
  Seq.concat
    (List.to_seq [ program_shrinks; config_shrinks; fault_shrinks; nop_shrinks ])

let shrink_repro ?max_cycles r =
  Shrink.fixpoint ~max_rounds:400 ~candidates
    ~still_fails:(fun c -> check_repro ?max_cycles c)
    r

let mode_string = function Shell.Plain -> "plain" | Shell.Oracle -> "oracle"

(* The CLI's --config grammar: comma-separated NAME=N, "none" if empty. *)
let config_cli_string config =
  let parts =
    List.filter_map
      (fun (conn, n) ->
        if n = 0 then None
        else Some (Printf.sprintf "%s=%d" (Datapath.connection_name conn) n))
      (Config.to_alist config)
  in
  match parts with [] -> "none" | _ -> String.concat "," parts

let replay_command ?asm_path r =
  let program_arg =
    match asm_path with Some p -> "asm:" ^ p | None -> "asm:" ^ r.r_name ^ ".asm"
  in
  Printf.sprintf
    "wp_cli equiv -p %s -m %s --mode %s --engine %s --rs \"%s\" --fault \
     \"%s\" --fault-seed %d"
    program_arg
    (Datapath.machine_name r.r_machine)
    (match r.r_mode with Shell.Plain -> "wp1" | Shell.Oracle -> "wp2")
    (Sim.kind_to_string r.r_engine)
    (config_cli_string r.r_config)
    (Fault.to_string r.r_fault)
    r.r_fault.Fault.seed

let write_repro ?dir r =
  let dir = match dir with Some d -> d | None -> Shrink.default_repro_dir () in
  let asm_path = Filename.concat dir (r.r_name ^ ".asm") in
  let open Shrink.Sexp in
  let path =
    Shrink.write_repro ~dir ~name:r.r_name
      [
        ("seed", int r.r_seed);
        ("program", atom r.r_name);
        ("machine", atom (Datapath.machine_name r.r_machine));
        ("mode", atom (mode_string r.r_mode));
        ("engine", atom (Sim.kind_to_string r.r_engine));
        ("config", atom (Config.describe r.r_config));
        ("fault", atom (Fault.to_string r.r_fault));
        ("fault-seed", int r.r_fault.Fault.seed);
        ("mem-size", int r.r_mem_size);
        ( "mem-init",
          List
            (List.map
               (fun (a, v) -> List [ int a; int v ])
               r.r_mem_init) );
        ("instructions", int (Array.length r.r_text));
        ("listing", atom (listing r.r_text));
        ("replay", atom (replay_command ~asm_path r));
      ]
  in
  let oc = open_out asm_path in
  output_string oc (listing r.r_text);
  close_out oc;
  path
