(** Exhaustive small-state checking of latency-insensitive correctness.

    The paper claims latency-insensitive shells keep a system N-equivalent
    to the golden design {e no matter how latency is distributed}.  This
    module makes the claim executable on three small networks — a relay
    ring, a fork/join diamond and a two-source oracle join — by
    enumerating {e every} stall schedule up to a bounded horizon on the
    designated fault channels (2^(F·H) schedules) and checking that:

    - the faulted run's tau-filtered trace on every output port is a
      prefix of the clean run's trace (equivalence is preserved);
    - the faulted run keeps making progress (its informative-event
      deficit is bounded by the horizon plus slack);
    - the faulted run never deadlocks.

    The same harness runs {e negative controls}: destructive token
    faults (drop, duplication, corruption, spurious injection) that the
    comparison must always detect.  Together: LID absorbs arbitrary
    latency, and only latency.

    Finally, the module carries the shrinking driver used by the CPU-level
    differential batteries: a failing (program × config × fault) triple is
    minimised with {!Wp_util.Shrink} and written to a replayable
    counterexample file. *)

module Fault = Wp_sim.Fault

type network_kind = Ring | Diamond | Oracle2

val all_networks : network_kind list
val network_name : network_kind -> string

val build :
  network_kind ->
  Wp_sim.Network.t * Wp_lis.Shell.mode * Wp_sim.Network.channel list
(** The netlist, the wrapper mode it is meant to run under, and the
    designated fault channels.  Every token stream in these networks is
    strictly increasing (injective), so any drop/dup/corrupt/spurious
    fault must produce a visible divergence. *)

(** {1 Exhaustive stall-schedule exploration} *)

type violation = {
  v_fault : Fault.spec;   (** the schedule that broke the property *)
  v_port : string;        (** "NODE.port" where it was observed *)
  v_reason : string;
}

type report = {
  rep_network : network_kind;
  rep_engine : Wp_sim.Sim.kind;
  rep_horizon : int;
  rep_fault_channels : int list;
  rep_schedules : int;        (** 2^(F·H) schedules actually checked *)
  rep_violations : violation list;  (** empty = the theorem holds *)
}

val exhaustive :
  ?engine:Wp_sim.Sim.kind ->
  ?horizon:int ->
  ?max_cycles:int ->
  ?slack:int ->
  network_kind ->
  report
(** Enumerate all 2^(F·H) joint stall schedules ([horizon] defaults to 6,
    [max_cycles] to 120) and check equivalence-preservation, liveness
    (per-port informative deficit ≤ horizon + [slack], default 16) and
    deadlock-freedom against the clean run of the same engine. *)

(** {1 Static-schedule conformance} *)

type static_report = {
  st_network : network_kind;
  st_engine : Wp_sim.Sim.kind;
  st_rate : Wp_graph.Cycle_ratio.ratio;  (** the balanced word's rate *)
  st_schedules : int;
  st_violations : (Fault.spec * string) list;  (** empty = bound holds *)
}

val static_conformance :
  ?engine:Wp_sim.Sim.kind -> ?horizon:int -> network_kind -> static_report
(** The throughput counterpart of {!exhaustive}: on a plain-mode
    network ({!Ring} or {!Diamond}), enumerate every stall schedule up
    to [horizon] (default 6) and check that each node's firing count
    over a period-aligned window in the steady tail never exceeds the
    rate of the balanced firing word computed on the capacity-extended
    marked graph ({!Wp_sim.Static.schedule}) — and that the stall-free
    schedule achieves it exactly.  Stalls may only delay; they can
    never beat the static schedule.
    @raise Invalid_argument on {!Oracle2} (no static schedule). *)

(** {1 Negative controls} *)

type detection = {
  det_fault : Fault.spec;
  det_injected : bool;  (** the destructive event actually happened *)
  det_detected : bool;  (** the trace comparison flagged it *)
}

type neg_report = {
  neg_network : network_kind;
  neg_engine : Wp_sim.Sim.kind;
  neg_cases : detection list;
}

val negative_controls :
  ?engine:Wp_sim.Sim.kind ->
  ?max_cycles:int ->
  network_kind ->
  neg_report
(** Inject destructive kinds on every fault channel at several token
    indices; a case whose fault fired ([det_injected]) must be
    [det_detected].  Drop and duplication are exercised on {e every}
    fault channel; corruption and spurious injection only on channels
    whose every token enters the computation — on [Oracle2]'s
    conditionally-required channel the oracle's old-tag rule discards
    stale tokens, so a corrupted-then-discarded value is absorbed by
    design and makes no detection claim.  (Spurious injection also needs
    a void slot with FIFO room to fire; cases that never fire are
    reported with [det_injected = false] and make no claim.) *)

val undetected : neg_report -> detection list
(** The failing cases: injected but not detected. *)

(** {1 Recovery sweep (link-layer counterpart of {!exhaustive})} *)

type recovery_case = {
  rc_fault : Fault.spec;
  rc_injected : int;        (** destructive events actually performed *)
  rc_retransmissions : int;
  rc_recoveries : int;
  rc_max_latency : int;     (** worst recovery latency, in cycles *)
}

type recovery_report = {
  recov_engine : Wp_sim.Sim.kind;
  recov_window : int;       (** resolved auto window of the protected chan *)
  recov_timeout : int;      (** resolved auto timeout *)
  recov_cases : recovery_case list;  (** one per placement, in order *)
  recov_violations : violation list; (** protected runs that diverged *)
  recov_undetected : Fault.spec list;
      (** negative-control failures: specs whose unprotected replay went
          undetected *)
}

val recovery_sweep :
  ?engine:Wp_sim.Sim.kind -> ?max_cycles:int -> ?slack:int -> unit ->
  recovery_report
(** On the [Ring] with its first fault channel protected
    ([window]/[timeout] auto), run every 1-fault and 2-fault
    drop/corrupt placement over token indices 0..4 (50 specs) and check
    the protected run stays prefix-compatible with the clean run with a
    deficit bounded by [4 * timeout + slack] ([slack] defaults to 64)
    and never deadlocks — zero informative-token loss.  Every spec is
    replayed unprotected as its own negative control.  The theorem
    holds iff [recov_violations] and [recov_undetected] are both empty;
    [recov_cases] carries the measured retransmission and
    recovery-latency statistics, byte-identical across engines. *)

(** {1 Shrinking counterexample driver (CPU-level)} *)

type repro = {
  r_seed : int;                     (** battery seed that found it *)
  r_name : string;
  r_machine : Wp_soc.Datapath.machine;
  r_mode : Wp_lis.Shell.mode;
  r_engine : Wp_sim.Sim.kind;
  r_config : Config.t;
  r_fault : Fault.spec;
  r_text : Wp_soc.Isa.instr array;
  r_mem_size : int;
  r_mem_init : (int * int) list;
}

val repro_of_program :
  seed:int ->
  machine:Wp_soc.Datapath.machine ->
  mode:Wp_lis.Shell.mode ->
  engine:Wp_sim.Sim.kind ->
  config:Config.t ->
  fault:Fault.spec ->
  Wp_soc.Program.t ->
  repro

val program_of_repro : repro -> Wp_soc.Program.t

val check_repro : ?max_cycles:int -> repro -> bool
(** [true] iff the triple still fails {!Equiv_check.check} (i.e. the
    counterexample reproduces).  Candidates whose program is not a valid
    terminating ISS workload return [false], so the shrinker skips them;
    [max_cycles] defaults to 200_000 to keep shrinking fast. *)

val shrink_repro : ?max_cycles:int -> repro -> repro
(** Greedy {!Wp_util.Shrink.fixpoint} minimisation: remove instruction
    chunks (fixing up absolute branch targets), zero relay-station
    counts, drop fault clauses and neutralise instructions to [nop] —
    keeping only changes under which {!check_repro} still fails. *)

val write_repro : ?dir:string -> repro -> string
(** Write [NAME.sexp] (full repro: config, fault, memory image, replay
    command) and a companion [NAME.asm] under [dir] (default
    {!Wp_util.Shrink.default_repro_dir}); returns the [.sexp] path. *)

val replay_command : ?asm_path:string -> repro -> string
(** The [wp_cli equiv] invocation that replays the counterexample. *)
