module Datapath = Wp_soc.Datapath

let default_exclude = [ Datapath.CU_IC ]

let enumerate ~budget ~per_connection_max ?(exclude = default_exclude) () =
  if budget < 0 then invalid_arg "Optimizer.enumerate: negative budget";
  let slots = List.filter (fun c -> not (List.mem c exclude)) Datapath.all_connections in
  if budget > per_connection_max * List.length slots then
    invalid_arg "Optimizer.enumerate: budget exceeds capacity";
  let results = ref [] in
  let rec distribute remaining config = function
    | [] -> if remaining = 0 then results := config :: !results
    | conn :: rest ->
      for n = 0 to min remaining per_connection_max do
        distribute (remaining - n) (Config.set config conn n) rest
      done
  in
  distribute budget Config.zero slots;
  List.rev !results

(* The static score is evaluated once per placement (decorate-sort), never
   inside a comparator: the "Optimal 2" search space has ~180k
   placements. *)
let static_score config =
  (Analysis.wp1_bound_float config, -Config.total_channels config)

let best_static ~budget ~per_connection_max ?(exclude = default_exclude) () =
  let configs = enumerate ~budget ~per_connection_max ~exclude () in
  match configs with
  | [] -> invalid_arg "Optimizer.best_static: empty search space"
  | first :: rest ->
    let best, best_score =
      List.fold_left
        (fun (bc, bs) config ->
          let s = static_score config in
          if s > bs then (config, s) else (bc, bs))
        (first, static_score first) rest
    in
    (best, fst best_score)

let optimal ~budget ~per_connection_max ?(exclude = default_exclude) ?(candidates = 24)
    ?(map = List.map) ~objective () =
  let configs = enumerate ~budget ~per_connection_max ~exclude () in
  let decorated = List.map (fun c -> (static_score c, c)) configs in
  let ranked = List.sort (fun (sa, _) (sb, _) -> compare sb sa) decorated in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  match take candidates ranked with
  | [] -> invalid_arg "Optimizer.optimal: empty search space"
  | shortlist ->
    (* Objective evaluations fan out through [map] (e.g. a parallel
       runner); the winner is then folded in shortlist order, so the
       result — including tie-breaking towards the better static rank —
       is identical to the sequential fold. *)
    let shortlist = List.map snd shortlist in
    let values = map objective shortlist in
    (match List.combine shortlist values with
    | [] -> assert false
    | (first, first_v) :: rest ->
      List.fold_left
        (fun (bc, bv) (config, v) -> if v > bv then (config, v) else (bc, bv))
        (first, first_v) rest)

let anneal_placement ~prng ~budget ~per_connection_max ?(exclude = default_exclude)
    ?(objective = Analysis.wp1_bound_float) ?schedule () =
  let slots =
    Array.of_list (List.filter (fun c -> not (List.mem c exclude)) Datapath.all_connections)
  in
  let n = Array.length slots in
  if budget > per_connection_max * n then
    invalid_arg "Optimizer.anneal_placement: budget exceeds capacity";
  (* Deterministic initial spread: round-robin one station at a time. *)
  let init =
    let config = ref Config.zero in
    for i = 0 to budget - 1 do
      let conn = slots.(i mod n) in
      config := Config.set !config conn (Config.get !config conn + 1)
    done;
    !config
  in
  (* Move: take one relay station from a loaded connection, give it to a
     connection with headroom. *)
  let neighbor prng config =
    let loaded = Array.to_list slots |> List.filter (fun c -> Config.get config c > 0) in
    let roomy =
      Array.to_list slots |> List.filter (fun c -> Config.get config c < per_connection_max)
    in
    match (loaded, roomy) with
    | [], _ | _, [] -> config
    | _ ->
      let pick xs = List.nth xs (Wp_util.Prng.int prng (List.length xs)) in
      let from_conn = pick loaded and to_conn = pick roomy in
      if from_conn = to_conn then config
      else
        Config.set
          (Config.set config from_conn (Config.get config from_conn - 1))
          to_conn
          (Config.get config to_conn + 1)
  in
  let schedule =
    match schedule with
    | Some s -> s
    | None ->
      { Wp_util.Anneal.steps = 2000; initial_temperature = 0.2; cooling = 0.95; plateau = 40 }
  in
  let result =
    Wp_util.Anneal.optimize ~prng ~init ~neighbor
      ~cost:(fun config -> -.objective config)
      ~schedule ()
  in
  (result.Wp_util.Anneal.best, -.result.Wp_util.Anneal.best_cost)
