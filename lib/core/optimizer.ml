module Datapath = Wp_soc.Datapath

let default_exclude = [ Datapath.CU_IC ]

type search = {
  budget : int;
  per_connection_max : int;
  exclude : Datapath.connection list;
  candidates : int;
  seed : int;
  schedule : Config.t Wp_util.Anneal.schedule;
}

let default_search =
  {
    budget = 9;
    per_connection_max = 2;
    exclude = default_exclude;
    candidates = 24;
    seed = 42;
    schedule =
      { Wp_util.Anneal.steps = 2000; initial_temperature = 0.2; cooling = 0.95; plateau = 40 };
  }

let search_digest s =
  String.concat "|"
    [
      Printf.sprintf "b%d" s.budget;
      Printf.sprintf "m%d" s.per_connection_max;
      Printf.sprintf "x%s"
        (String.concat "+" (List.map Datapath.connection_name s.exclude));
      Printf.sprintf "c%d" s.candidates;
      Printf.sprintf "s%d" s.seed;
      Printf.sprintf "a%dt%gx%gp%d" s.schedule.Wp_util.Anneal.steps
        s.schedule.Wp_util.Anneal.initial_temperature s.schedule.Wp_util.Anneal.cooling
        s.schedule.Wp_util.Anneal.plateau;
    ]

let unreachable_budget who budget per_connection_max slots =
  invalid_arg
    (Printf.sprintf
       "%s: budget %d exceeds capacity %d (%d connections x %d per connection)" who budget
       (per_connection_max * slots) slots per_connection_max)

let enumerate ~budget ~per_connection_max ?(exclude = default_exclude) () =
  if budget < 0 then
    invalid_arg (Printf.sprintf "Optimizer.enumerate: negative budget %d" budget);
  let slots = List.filter (fun c -> not (List.mem c exclude)) Datapath.all_connections in
  if budget > per_connection_max * List.length slots then
    unreachable_budget "Optimizer.enumerate" budget per_connection_max (List.length slots);
  let results = ref [] in
  let rec distribute remaining config = function
    | [] -> if remaining = 0 then results := config :: !results
    | conn :: rest ->
      for n = 0 to min remaining per_connection_max do
        distribute (remaining - n) (Config.set config conn n) rest
      done
  in
  distribute budget Config.zero slots;
  List.rev !results

(* The static score is evaluated once per placement (decorate-sort), never
   inside a comparator: the "Optimal 2" search space has ~180k
   placements. *)
let static_score config =
  (Analysis.wp1_bound_float config, -Config.total_channels config)

let best_static ~budget ~per_connection_max ?(exclude = default_exclude) () =
  let configs = enumerate ~budget ~per_connection_max ~exclude () in
  match configs with
  | [] -> invalid_arg "Optimizer.best_static: empty search space"
  | first :: rest ->
    let best, best_score =
      List.fold_left
        (fun (bc, bs) config ->
          let s = static_score config in
          if s > bs then (config, s) else (bc, bs))
        (first, static_score first) rest
    in
    (best, fst best_score)

let optimal ~search ?(map = List.map) ~objective () =
  let { budget; per_connection_max; exclude; candidates; _ } = search in
  let configs = enumerate ~budget ~per_connection_max ~exclude () in
  let decorated = List.map (fun c -> (static_score c, c)) configs in
  let ranked = List.sort (fun (sa, _) (sb, _) -> compare sb sa) decorated in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  match take candidates ranked with
  | [] -> invalid_arg "Optimizer.optimal: empty search space"
  | shortlist ->
    (* Objective evaluations fan out through [map] (e.g. a parallel
       runner); the winner is then folded in shortlist order, so the
       result — including tie-breaking towards the better static rank —
       is identical to the sequential fold. *)
    let shortlist = List.map snd shortlist in
    let values = map objective shortlist in
    (match List.combine shortlist values with
    | [] -> assert false
    | (first, first_v) :: rest ->
      List.fold_left
        (fun (bc, bv) (config, v) -> if v > bv then (config, v) else (bc, bv))
        (first, first_v) rest)

let anneal_placement ~search ?(objective = Analysis.wp1_bound_float) () =
  let { budget; per_connection_max; exclude; seed; schedule; _ } = search in
  let prng = Wp_util.Prng.create ~seed in
  let slots =
    Array.of_list (List.filter (fun c -> not (List.mem c exclude)) Datapath.all_connections)
  in
  let n = Array.length slots in
  if budget > per_connection_max * n then
    unreachable_budget "Optimizer.anneal_placement" budget per_connection_max n;
  (* Deterministic initial spread: round-robin one station at a time. *)
  let init =
    let config = ref Config.zero in
    for i = 0 to budget - 1 do
      let conn = slots.(i mod n) in
      config := Config.set !config conn (Config.get !config conn + 1)
    done;
    !config
  in
  (* Move: take one relay station from a loaded connection, give it to a
     connection with headroom. *)
  let neighbor prng config =
    let loaded = Array.to_list slots |> List.filter (fun c -> Config.get config c > 0) in
    let roomy =
      Array.to_list slots |> List.filter (fun c -> Config.get config c < per_connection_max)
    in
    match (loaded, roomy) with
    | [], _ | _, [] -> config
    | _ ->
      let pick xs = List.nth xs (Wp_util.Prng.int prng (List.length xs)) in
      let from_conn = pick loaded and to_conn = pick roomy in
      if from_conn = to_conn then config
      else
        Config.set
          (Config.set config from_conn (Config.get config from_conn - 1))
          to_conn
          (Config.get config to_conn + 1)
  in
  let result =
    Wp_util.Anneal.optimize ~prng ~init ~neighbor
      ~cost:(fun config -> -.objective config)
      ~schedule ()
  in
  (result.Wp_util.Anneal.best, -.result.Wp_util.Anneal.best_cost)
