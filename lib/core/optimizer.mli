(** Relay-station placement optimisation (the "Optimal k" Table 1 rows).

    Given a total relay-station budget, search the placements over the
    nine optimisable connections (CU-IC is excluded: its RS count is fixed
    by the fetch-interface length, and the paper never re-places it) for
    the one with the best throughput.  Placements are pre-ranked by the
    static worst-loop bound — cheap to evaluate — and only the best
    candidates are simulated. *)

val enumerate :
  budget:int ->
  per_connection_max:int ->
  ?exclude:Wp_soc.Datapath.connection list ->
  unit ->
  Config.t list
(** All configurations with exactly [budget] relay stations in total and
    at most [per_connection_max] per connection; excluded connections stay
    at zero.  @raise Invalid_argument if the budget is unreachable. *)

val best_static :
  budget:int ->
  per_connection_max:int ->
  ?exclude:Wp_soc.Datapath.connection list ->
  unit ->
  Config.t * float
(** The placement maximising the static WP1 bound (ties broken towards
    fewer physical relay stations, then enumeration order). *)

val optimal :
  budget:int ->
  per_connection_max:int ->
  ?exclude:Wp_soc.Datapath.connection list ->
  ?candidates:int ->
  ?map:((Config.t -> float) -> Config.t list -> float list) ->
  objective:(Config.t -> float) ->
  unit ->
  Config.t * float
(** Rank all placements by the static bound, keep the [candidates]
    (default 24) best, evaluate [objective] (e.g. simulated WP2
    throughput) on those, return the winner.  [map] (default [List.map])
    evaluates the shortlist; pass {!Runner.map} to fan the simulations
    out across cores — the winner is folded in shortlist order either
    way, so the result is independent of [map]. *)

val anneal_placement :
  prng:Wp_util.Prng.t ->
  budget:int ->
  per_connection_max:int ->
  ?exclude:Wp_soc.Datapath.connection list ->
  ?objective:(Config.t -> float) ->
  ?schedule:Config.t Wp_util.Anneal.schedule ->
  unit ->
  Config.t * float
(** Simulated-annealing alternative for budgets where exhaustive
    enumeration is impractical: moves shift one relay station between
    connections, keeping the total exactly [budget].  The default
    objective is the static WP1 bound (cheap); pass a simulation-backed
    objective for final refinement.  @raise Invalid_argument if the
    budget is unreachable. *)
