(** Relay-station placement optimisation (the "Optimal k" Table 1 rows).

    Given a total relay-station budget, search the placements over the
    nine optimisable connections (CU-IC is excluded: its RS count is fixed
    by the fetch-interface length, and the paper never re-places it) for
    the one with the best throughput.  Placements are pre-ranked by the
    static worst-loop bound — cheap to evaluate — and only the best
    candidates are simulated.

    The searches take a {!search} spec record — the same convention as
    {!Run_spec} for simulation runs and [Wp_floorplan.Flow_spec] for the
    co-optimization flow (which projects onto {!search}; the dependency
    points floorplan→core, so the projection lives there). *)

type search = {
  budget : int;               (** total relay stations to place *)
  per_connection_max : int;   (** cap per connection *)
  exclude : Wp_soc.Datapath.connection list;  (** connections pinned at 0 *)
  candidates : int;           (** shortlist size for {!optimal} *)
  seed : int;                 (** PRNG seed for {!anneal_placement} *)
  schedule : Config.t Wp_util.Anneal.schedule;  (** annealing schedule *)
}

val default_search : search
(** budget 9, per-connection max 2, CU-IC excluded, 24 candidates,
    seed 42, the annealer's classic 2000-step schedule. *)

val search_digest : search -> string
(** Stable pipe-joined key over every field (cache/artifact naming). *)

val enumerate :
  budget:int ->
  per_connection_max:int ->
  ?exclude:Wp_soc.Datapath.connection list ->
  unit ->
  Config.t list
(** All configurations with exactly [budget] relay stations in total and
    at most [per_connection_max] per connection; excluded connections stay
    at zero.  @raise Invalid_argument if the budget is negative or
    unreachable — the message names the offending budget and the
    capacity ([connections x per-connection max]) so sweep scripts can
    report the bad knob directly. *)

val best_static :
  budget:int ->
  per_connection_max:int ->
  ?exclude:Wp_soc.Datapath.connection list ->
  unit ->
  Config.t * float
(** The placement maximising the static WP1 bound (ties broken towards
    fewer physical relay stations, then enumeration order). *)

val optimal :
  search:search ->
  ?map:((Config.t -> float) -> Config.t list -> float list) ->
  objective:(Config.t -> float) ->
  unit ->
  Config.t * float
(** Rank all placements by the static bound, keep the [search.candidates]
    best, evaluate [objective] (e.g. simulated WP2 throughput) on those,
    return the winner.  [map] (default [List.map]) evaluates the
    shortlist; pass {!Runner.map} to fan the simulations out across cores
    — the winner is folded in shortlist order either way, so the result
    is independent of [map]. *)

val anneal_placement :
  search:search ->
  ?objective:(Config.t -> float) ->
  unit ->
  Config.t * float
(** Simulated-annealing alternative for budgets where exhaustive
    enumeration is impractical: moves shift one relay station between
    connections, keeping the total exactly [search.budget]; the PRNG is
    seeded from [search.seed] so equal specs give equal placements.  The
    default objective is the static WP1 bound (cheap); pass a
    simulation-backed objective for final refinement.
    @raise Invalid_argument if the budget is unreachable (message names
    budget and capacity, as {!enumerate}). *)
