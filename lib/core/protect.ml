module Datapath = Wp_soc.Datapath
module Network = Wp_sim.Network

(* Keyed by position in [Datapath.all_connections], mirroring [Config]. *)
type t = Network.protection option array

let connection_count = List.length Datapath.all_connections

let index conn =
  let rec scan i = function
    | [] -> assert false
    | c :: rest -> if c = conn then i else scan (i + 1) rest
  in
  scan 0 Datapath.all_connections

let none : t = Array.make connection_count None

let set t conn p =
  (match p with
  | Some { Network.window; timeout } when window < 0 || timeout < 0 ->
      invalid_arg "Protect.set: negative window or timeout"
  | _ -> ());
  let fresh = Array.copy t in
  fresh.(index conn) <- p;
  fresh

let get t conn = t.(index conn)

let of_connections ?(window = 0) ?(timeout = 0) conns =
  List.fold_left
    (fun acc conn -> set acc conn (Some { Network.window; timeout }))
    none conns

let all ?window ?timeout () = of_connections ?window ?timeout Datapath.all_connections

let to_fun t conn = get t conn

let is_none t = Array.for_all Option.is_none t

let equal = ( = )

let digest t =
  (* Same contract as [Config.digest]: stable across processes,
     injective on the slot vector, cheap.  The distinguished "noprot"
     digest keeps unprotected cache keys human-greppable. *)
  if is_none t then "noprot"
  else begin
    let buf = Buffer.create 64 in
    Array.iter
      (fun slot ->
        (match slot with
        | None -> Buffer.add_char buf '-'
        | Some { Network.window; timeout } ->
            Buffer.add_string buf (string_of_int window);
            Buffer.add_char buf ':';
            Buffer.add_string buf (string_of_int timeout));
        Buffer.add_char buf ',')
      t;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  end

let annotate name { Network.window; timeout } =
  let b = Buffer.create 16 in
  Buffer.add_string b name;
  if window <> 0 then Buffer.add_string b (Printf.sprintf ":w=%d" window);
  if timeout <> 0 then Buffer.add_string b (Printf.sprintf ":t=%d" timeout);
  Buffer.contents b

let to_string t =
  if is_none t then "none"
  else begin
    let slots =
      List.filter_map
        (fun conn ->
          match get t conn with
          | None -> None
          | Some p -> Some (conn, p))
        Datapath.all_connections
    in
    let uniform =
      match slots with
      | [] -> None
      | (_, p0) :: rest ->
          if List.length slots = connection_count
             && List.for_all (fun (_, p) -> p = p0) rest
          then Some p0
          else None
    in
    match uniform with
    | Some p -> annotate "all" p
    | None ->
        String.concat ","
          (List.map
             (fun (conn, p) -> annotate (Datapath.connection_name conn) p)
             slots)
  end

(* Parse one [NAME[:w=W][:t=T]] item into (name, window, timeout) over
   the ambient defaults. *)
let parse_item ~window ~timeout item =
  match String.split_on_char ':' item with
  | [] -> invalid_arg "Protect.of_string: empty item"
  | name :: annots ->
      let window = ref window and timeout = ref timeout in
      List.iter
        (fun a ->
          let bad () =
            invalid_arg
              (Printf.sprintf
                 "Protect.of_string: bad annotation %S (expected w=N or t=N)" a)
          in
          match String.index_opt a '=' with
          | None -> bad ()
          | Some eq -> (
              let key = String.sub a 0 eq in
              let v =
                match int_of_string_opt (String.sub a (eq + 1) (String.length a - eq - 1)) with
                | Some v when v >= 0 -> v
                | _ -> bad ()
              in
              match key with
              | "w" -> window := v
              | "t" -> timeout := v
              | _ -> bad ()))
        annots;
      (name, !window, !timeout)

let of_string ?(window = 0) ?(timeout = 0) s =
  let s = String.trim s in
  match String.lowercase_ascii s with
  | "" | "none" -> none
  | _ ->
      let items =
        List.filter (fun x -> x <> "")
          (List.map String.trim (String.split_on_char ',' s))
      in
      List.fold_left
        (fun acc item ->
          let name, window, timeout = parse_item ~window ~timeout item in
          let p = Some { Network.window; timeout } in
          if String.lowercase_ascii name = "all" then
            List.fold_left (fun acc conn -> set acc conn p) acc
              Datapath.all_connections
          else
            match Datapath.connection_of_name name with
            | Some conn -> set acc conn p
            | None ->
                invalid_arg
                  (Printf.sprintf "Protect.of_string: unknown connection %S"
                     name))
        none items

let describe t =
  if is_none t then "none"
  else begin
    let part (conn, { Network.window; timeout }) =
      let name = Datapath.connection_name conn in
      if window = 0 && timeout = 0 then name
      else Printf.sprintf "%s(w=%d,t=%d)" name window timeout
    in
    let slots =
      List.filter_map
        (fun conn -> Option.map (fun p -> (conn, p)) (get t conn))
        Datapath.all_connections
    in
    Printf.sprintf "protected: %s" (String.concat " " (List.map part slots))
  end
