(** Per-connection link-protection policy for the case-study SoC.

    Mirrors {!Config} (the relay-station budget): one slot per
    {!Wp_soc.Datapath.connection}, holding an optional
    {!Wp_sim.Network.protection}.  Protected connections get
    sequence-numbered, CRC-tagged, go-back-N retransmitting channels
    with credit flow control (see {!Wp_sim.Link}); unprotected
    connections keep the raw stop-wire relay chains.  The policy is
    immutable, participates in the experiment-cache digest, and has a
    CLI grammar. *)

type t

val none : t
(** No connection protected — bit-for-bit the pre-link behaviour. *)

val all : ?window:int -> ?timeout:int -> unit -> t
(** Protect every connection.  [window]/[timeout] default to [0]
    ("auto": sized per channel from its relay-station count by
    {!Wp_sim.Link}). *)

val of_connections :
  ?window:int -> ?timeout:int -> Wp_soc.Datapath.connection list -> t

val set :
  t -> Wp_soc.Datapath.connection -> Wp_sim.Network.protection option -> t
(** Functional update. *)

val get : t -> Wp_soc.Datapath.connection -> Wp_sim.Network.protection option

val to_fun : t -> Wp_soc.Datapath.connection -> Wp_sim.Network.protection option
(** The shape {!Wp_soc.Datapath.build} and {!Wp_soc.Cpu.run} take. *)

val is_none : t -> bool

val equal : t -> t -> bool

val digest : t -> string
(** Stable content digest for cache keys; ["noprot"] for {!none}. *)

val to_string : t -> string
(** CLI grammar round-trip: ["none"], ["all"], or comma-separated
    connection names (["CU-AL,DC-RF"]), each optionally annotated
    [:w=W:t=T] when the window/timeout differ from auto. *)

val of_string : ?window:int -> ?timeout:int -> string -> t
(** Parse the CLI grammar.  [window]/[timeout] apply to every named
    connection (per-connection [:w=W:t=T] annotations override).
    @raise Invalid_argument on an unknown connection name. *)

val describe : t -> string
(** Human-readable one-liner. *)
