module Sim = Wp_sim.Sim
module Fault = Wp_sim.Fault
module Telemetry = Wp_sim.Telemetry
module Cpu = Wp_soc.Cpu

type t = {
  engine : Sim.kind;
  capacity : int;
  max_cycles : int option;
  fault : Fault.spec;
  protect : Protect.t;
  telemetry : Telemetry.spec;
  deadline_ms : int option;
}

let default =
  {
    engine = Sim.default_kind;
    capacity = 2;
    max_cycles = None;
    fault = Fault.none;
    protect = Protect.none;
    telemetry = Telemetry.off;
    deadline_ms = None;
  }

let v ?(engine = Sim.default_kind) ?(capacity = 2) ?max_cycles
    ?(fault = Fault.none) ?(protect = Protect.none)
    ?(telemetry = Telemetry.off) ?deadline_ms () =
  { engine; capacity; max_cycles; fault; protect; telemetry; deadline_ms }

let digest t =
  (* Every result-affecting field is covered; Runner cache keys embed
     this verbatim, so such a field added to the record automatically
     becomes part of every key (the very drift this module exists to
     prevent).  [deadline_ms] is deliberately absent: a deadline decides
     {e whether} a run finishes, never what it computes, so a cached
     record may satisfy any deadline and an expired request must not
     fragment the cache. *)
  String.concat "|"
    [
      Sim.kind_to_string t.engine;
      "cap" ^ string_of_int t.capacity;
      (match t.max_cycles with Some n -> string_of_int n | None -> "mcr");
      Fault.digest t.fault;
      Protect.digest t.protect;
      Telemetry.spec_digest t.telemetry;
    ]

let equal a b = digest a = digest b

let describe t =
  let parts = ref [] in
  let add s = parts := s :: !parts in
  (match t.deadline_ms with
  | Some ms -> add ("deadline_ms=" ^ string_of_int ms)
  | None -> ());
  if not (Telemetry.is_off t.telemetry) then
    add ("telemetry=" ^ Telemetry.spec_digest t.telemetry);
  if not (Protect.is_none t.protect) then
    add ("protect=" ^ Protect.to_string t.protect);
  if not (Fault.is_none t.fault) then add ("fault=" ^ Fault.to_string t.fault);
  (match t.max_cycles with
  | Some n -> add ("max_cycles=" ^ string_of_int n)
  | None -> ());
  if t.capacity <> 2 then add ("capacity=" ^ string_of_int t.capacity);
  add ("engine=" ^ Sim.kind_to_string t.engine);
  String.concat " " !parts

let of_args ?engine ?(capacity = 2) ?max_cycles ?fault ?(fault_seed = 0)
    ?protect ?(link_window = 0) ?(link_timeout = 0) ?(stall_report = false)
    ?(trace_depth = 0) ?deadline_ms () =
  let ( let* ) = Result.bind in
  let* engine =
    match engine with
    | None -> Ok Sim.default_kind
    | Some s -> (
        match Sim.kind_of_string s with
        | Some k -> Ok k
        | None ->
            Error
              (Printf.sprintf "engine must be 'fast', 'ref' or 'static', got %S"
                 s))
  in
  let* () =
    if capacity < 0 then Error "capacity must be >= 0" else Ok ()
  in
  let* () =
    match max_cycles with
    | Some n when n <= 0 -> Error "max-cycles must be > 0"
    | _ -> Ok ()
  in
  let* fault =
    match fault with
    | None -> Ok Fault.none
    | Some s -> (
        match Fault.of_string ~seed:fault_seed s with
        | spec -> Ok spec
        | exception Invalid_argument msg -> Error msg)
  in
  let* protect =
    match protect with
    | None -> Ok Protect.none
    | Some s -> (
        match Protect.of_string ~window:link_window ~timeout:link_timeout s with
        | p -> Ok p
        | exception Invalid_argument msg -> Error msg)
  in
  let* () =
    if trace_depth < 0 then Error "trace-depth must be >= 0" else Ok ()
  in
  let* () =
    match deadline_ms with
    | Some ms when ms <= 0 -> Error "deadline-ms must be > 0"
    | _ -> Ok ()
  in
  let telemetry =
    if trace_depth > 0 then Telemetry.with_trace ~depth:trace_depth ()
    else if stall_report then Telemetry.counters
    else Telemetry.off
  in
  Ok { engine; capacity; max_cycles; fault; protect; telemetry; deadline_ms }

let run_cpu ?cancel ?mcr_work ~spec ~machine ~mode ~rs program =
  let protect =
    if Protect.is_none spec.protect then None
    else Some (Protect.to_fun spec.protect)
  in
  (* An explicit token (the serve daemon's, stamped at request arrival)
     wins over the spec's relative deadline, which wins over [never]. *)
  let cancel =
    match cancel, spec.deadline_ms with
    | Some c, _ -> c
    | None, Some ms -> Wp_util.Cancel.create ~deadline_ms:ms ()
    | None, None -> Wp_util.Cancel.never
  in
  Cpu.run ~engine:spec.engine ~capacity:spec.capacity ~cancel
    ?max_cycles:spec.max_cycles ?mcr_work ~fault:spec.fault ?protect
    ~telemetry:spec.telemetry ~machine ~mode ~rs program
