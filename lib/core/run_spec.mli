(** One record describing {e how} to run a simulation — engine kind,
    FIFO capacity, cycle budget, fault injection, link protection and
    telemetry — with a single content digest.

    Before this module, every layer of the stack ({!Wp_soc.Cpu.run},
    [Experiment.run], [Equiv_check.check], {!Runner}, {!Table1} and
    the CLI) re-declared the same [?engine ?fault ?protect ?max_cycles]
    optional-argument sprawl, and the {!Runner} cache key concatenated
    the fields by hand.  A [Run_spec.t] carries them all at once:

    - the spec-taking functions ([Experiment.run_spec],
      [Runner.experiment_spec], …) are the {e only} API — the legacy
      optional-argument bridge wrappers have been removed; build specs
      with {!v} or {!of_args};
    - {!digest} is the {e only} source of cache-key material for the
      run-parameter component — a field added here is automatically
      keyed everywhere.

    The CLI builds specs through {!of_args}, so [run], [equiv] and
    [table1] parse [--engine]/[--fault]/[--protect]/… identically. *)

type t = {
  engine : Wp_sim.Sim.kind;  (** simulation kernel (default {!Wp_sim.Sim.default_kind}) *)
  capacity : int;  (** shell FIFO bound; 0 = unbounded (default 2) *)
  max_cycles : int option;
      (** explicit cycle budget; [None] = MCR-guided bound with
          full-budget fallback (the {!Wp_soc.Cpu.run} default) *)
  fault : Wp_sim.Fault.spec;  (** injected faults (default {!Wp_sim.Fault.none}) *)
  protect : Protect.t;  (** link-protection policy (default {!Protect.none}) *)
  telemetry : Wp_sim.Telemetry.spec;
      (** stall attribution / event trace (default {!Wp_sim.Telemetry.off}) *)
  deadline_ms : int option;
      (** wall-clock latency budget: the run auto-cancels once this many
          milliseconds elapse and finishes [Cancelled].  Deliberately
          {e not} part of {!digest} — a deadline never changes what a
          run computes, so cached results satisfy any deadline *)
}

val default : t

val v :
  ?engine:Wp_sim.Sim.kind ->
  ?capacity:int ->
  ?max_cycles:int ->
  ?fault:Wp_sim.Fault.spec ->
  ?protect:Protect.t ->
  ?telemetry:Wp_sim.Telemetry.spec ->
  ?deadline_ms:int ->
  unit ->
  t
(** Build a spec from optional arguments; omitted fields take their
    {!default} values. *)

val digest : t -> string
(** Stable content digest covering every result-affecting field, e.g.
    ["fast|cap2|mcr|nofault|noprot|notel"].  {!Runner} cache keys embed
    it verbatim; two specs with equal digests are observably
    interchangeable.  [deadline_ms] is excluded: it bounds latency, not
    results, so any cached record satisfies any deadline. *)

val equal : t -> t -> bool

val describe : t -> string
(** Human-readable one-liner (only non-default fields). *)

val of_args :
  ?engine:string ->
  ?capacity:int ->
  ?max_cycles:int ->
  ?fault:string ->
  ?fault_seed:int ->
  ?protect:string ->
  ?link_window:int ->
  ?link_timeout:int ->
  ?stall_report:bool ->
  ?trace_depth:int ->
  ?deadline_ms:int ->
  unit ->
  (t, string) result
(** The single CLI parser: every subcommand maps its flags onto these
    string/int arguments.  [engine] accepts ["fast"]/["ref"] (default:
    {!Wp_sim.Sim.default_kind}); [fault] uses the {!Wp_sim.Fault}
    grammar seeded with [fault_seed]; [protect] uses the {!Protect}
    grammar with [link_window]/[link_timeout] (0 = auto) as defaults;
    [stall_report] enables telemetry counters; [trace_depth > 0]
    additionally enables the bounded event trace.  Any syntax error in
    any field comes back as [Error msg] — no exceptions, no [exit]. *)

val run_cpu :
  ?cancel:Wp_util.Cancel.t ->
  ?mcr_work:int ->
  spec:t ->
  machine:Wp_soc.Datapath.machine ->
  mode:Wp_lis.Shell.mode ->
  rs:(Wp_soc.Datapath.connection -> int) ->
  Wp_soc.Program.t ->
  Wp_soc.Cpu.result
(** {!Wp_soc.Cpu.run} driven by a spec: unpacks the fields (converting
    {!Protect.t} to the function form {!Wp_soc.Datapath.build} expects)
    so callers above the SoC layer never touch the optional-argument
    form.  An explicit [cancel] token (e.g. the serve daemon's,
    stamped at request arrival so queueing counts against the budget)
    takes precedence over the spec's own [deadline_ms]. *)
