module Datapath = Wp_soc.Datapath
module Program = Wp_soc.Program
module Pool = Wp_util.Pool

type section = {
  section_name : string;
  wall_seconds : float;
  section_tasks : int;
  section_cache_hits : int;
}

type stats = {
  jobs : int;
  tasks_run : int;
  cache_hits : int;
  cache_misses : int;
  sections : section list;
}

type t = {
  pool : Pool.t;
  cache : bool;
  mutex : Mutex.t;
  (* Content-addressed result tables.  Both are keyed by
     (program content digest, machine, config digest, cycle budget);
     records hold full Experiment.records, objectives hold the optimiser's
     failure-tolerant WP2 throughput probes. *)
  records : (string, Experiment.record) Hashtbl.t;
  objectives : (string, float) Hashtbl.t;
  mutable tasks_run : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable sections_rev : section list;
}

let create ?jobs ?(cache = true) () =
  {
    pool = Pool.create ?jobs ();
    cache;
    mutex = Mutex.create ();
    records = Hashtbl.create 64;
    objectives = Hashtbl.create 256;
    tasks_run = 0;
    cache_hits = 0;
    cache_misses = 0;
    sections_rev = [];
  }

let default_runner = lazy (create ())
let default () = Lazy.force default_runner
let jobs t = Pool.jobs t.pool
let cache_enabled t = t.cache
let shutdown t = Pool.shutdown t.pool

let map t f xs =
  Pool.map t.pool
    (fun x ->
      let y = f x in
      Mutex.lock t.mutex;
      t.tasks_run <- t.tasks_run + 1;
      Mutex.unlock t.mutex;
      y)
    xs

(* One cache transaction.  The simulation runs outside the lock;
   concurrent misses on the same key may race the computation (pure, so
   harmless) but the first stored value wins, keeping every caller's view
   identical. *)
let lookup t table key compute =
  if not t.cache then begin
    Mutex.lock t.mutex;
    t.cache_misses <- t.cache_misses + 1;
    Mutex.unlock t.mutex;
    compute ()
  end
  else begin
    Mutex.lock t.mutex;
    match Hashtbl.find_opt table key with
    | Some v ->
      t.cache_hits <- t.cache_hits + 1;
      Mutex.unlock t.mutex;
      v
    | None ->
      t.cache_misses <- t.cache_misses + 1;
      Mutex.unlock t.mutex;
      let v = compute () in
      Mutex.lock t.mutex;
      let winner =
        match Hashtbl.find_opt table key with
        | Some first -> first
        | None ->
          Hashtbl.replace table key v;
          v
      in
      Mutex.unlock t.mutex;
      winner
  end

let key ?engine ?max_cycles ?fault ~machine ~(program : Program.t) config =
  (* The engine kind is part of the key: both kernels agree observably,
     but a cache must never blur which kernel produced a stored record.
     Likewise the fault digest: a faulted record must never satisfy a
     clean lookup (or vice versa). *)
  let engine = match engine with Some k -> k | None -> Wp_sim.Sim.default_kind in
  let fault_digest =
    match fault with
    | Some f -> Wp_sim.Fault.digest f
    | None -> Wp_sim.Fault.digest Wp_sim.Fault.none
  in
  Printf.sprintf "%s|%s|%s|%s|%d|%s|%s" program.Program.name
    (Experiment.program_digest program)
    (Datapath.machine_name machine) (Config.digest config)
    (match max_cycles with Some n -> n | None -> -1)
    (Wp_sim.Sim.kind_to_string engine)
    fault_digest

let experiment ?engine ?max_cycles ?fault t ~machine ~program config =
  lookup t t.records
    (key ?engine ?max_cycles ?fault ~machine ~program config)
    (fun () -> Experiment.run ?engine ?max_cycles ?fault ~machine ~program config)

let experiments ?engine ?max_cycles ?fault t ~machine ~program configs =
  (* Warm the golden memo once before fanning out, so the first parallel
     wave does not duplicate the reference run across workers. *)
  ignore (Experiment.golden ?engine ~machine program);
  map t (experiment ?engine ?max_cycles ?fault t ~machine ~program) configs

let objective ?engine t ~machine ~program config =
  lookup t t.objectives
    (key ?engine ~machine ~program config)
    (fun () -> Experiment.wp2_cycles_objective ?engine ~machine ~program config)

let timed t name f =
  let t0 = Unix.gettimeofday () in
  Mutex.lock t.mutex;
  let tasks0 = t.tasks_run and hits0 = t.cache_hits in
  Mutex.unlock t.mutex;
  let result = f () in
  let wall = Unix.gettimeofday () -. t0 in
  Mutex.lock t.mutex;
  let s =
    {
      section_name = name;
      wall_seconds = wall;
      section_tasks = t.tasks_run - tasks0;
      section_cache_hits = t.cache_hits - hits0;
    }
  in
  t.sections_rev <- s :: t.sections_rev;
  Mutex.unlock t.mutex;
  (result, s)

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      jobs = Pool.jobs t.pool;
      tasks_run = t.tasks_run;
      cache_hits = t.cache_hits;
      cache_misses = t.cache_misses;
      sections = List.rev t.sections_rev;
    }
  in
  Mutex.unlock t.mutex;
  s

let reset_stats t =
  Mutex.lock t.mutex;
  t.tasks_run <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.sections_rev <- [];
  Mutex.unlock t.mutex

let clear_cache t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.records;
  Hashtbl.reset t.objectives;
  Mutex.unlock t.mutex

let pp_stats ppf s =
  Format.fprintf ppf "runner: %d job%s, %d task%s run, %d cache hit%s, %d miss%s"
    s.jobs
    (if s.jobs = 1 then "" else "s")
    s.tasks_run
    (if s.tasks_run = 1 then "" else "s")
    s.cache_hits
    (if s.cache_hits = 1 then "" else "s")
    s.cache_misses
    (if s.cache_misses = 1 then "" else "es");
  List.iter
    (fun sec ->
      Format.fprintf ppf "@\n  %-36s %8.3f s wall  %4d tasks  %4d cache hits"
        sec.section_name sec.wall_seconds sec.section_tasks sec.section_cache_hits)
    s.sections
