module Datapath = Wp_soc.Datapath
module Program = Wp_soc.Program
module Cpu = Wp_soc.Cpu
module Pool = Wp_util.Pool
module Telemetry = Wp_sim.Telemetry

type section = {
  section_name : string;
  wall_seconds : float;
  section_tasks : int;
  section_cache_hits : int;
  section_telemetry : Telemetry.summary option;
}

type stats = {
  jobs : int;
  tasks_run : int;
  cache_hits : int;
  cache_misses : int;
  cache_corrupt : int;
  quarantined : int;
  expired : int;
  stale_reaped : int;
  telemetry : Telemetry.summary option;
  sections : section list;
}

type t = {
  pool : Pool.t;
  cache : bool;
  cache_dir : string option;
  mutex : Mutex.t;
  (* Content-addressed result tables.  Both are keyed by
     (program content digest, machine, config digest, cycle budget,
     engine, fault digest, protection digest); records hold full
     Experiment.records, objectives hold the optimiser's
     failure-tolerant WP2 throughput probes.  When [cache_dir] is set,
     entries are additionally persisted as digest-guarded files and
     survive the process. *)
  records : (string, Experiment.record) Hashtbl.t;
  objectives : (string, float) Hashtbl.t;
  mutable tasks_run : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_corrupt : int;
  mutable quarantined : int;
  mutable expired : int;
  mutable stale_reaped : int;
  mutable sections_rev : section list;
  (* Monotone accumulator of every telemetry summary that flowed through
     [experiment_spec] (cache hits included: the aggregate describes the
     records the sweep consumed, not the simulations it ran).  Sections
     report deltas of this accumulator via {!Telemetry.diff}. *)
  mutable telemetry_acc : Telemetry.summary option;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Crash recovery.

   Entry writes go through [<entry>.tmp.<pid>.<domain>] + rename, so a
   crash (or SIGKILL) can only strand temp files, never tear a named
   entry.  At [create] time we sweep those orphans: a temp file whose
   writer PID is dead is garbage by construction — the rename that
   would have published it can no longer happen.  The scan runs under
   an advisory file lock ([.wpcache.lock], opened close-on-exec so a
   daemon's children never inherit it); if another process holds the
   lock it is already doing this exact job, so we skip rather than
   block the constructor. *)
(* ------------------------------------------------------------------ *)

let lock_file_name = ".wpcache.lock"
let quarantine_subdir = "quarantine"

(* [name] is ["<hexdigest>.<ns>.tmp.<pid>.<domain>"]; anything else is
   not ours to touch. *)
let stale_tmp_pid name =
  match String.split_on_char '.' name with
  | [ _digest; _ns; "tmp"; pid; _domain ] -> int_of_string_opt pid
  | _ -> None

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  (* EPERM means the PID exists but belongs to someone else: alive. *)
  | exception Unix.Unix_error _ -> true

let recover_cache_dir dir =
  match
    Unix.openfile
      (Filename.concat dir lock_file_name)
      [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ]
      0o644
  with
  | exception Unix.Unix_error _ -> 0
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.lockf fd Unix.F_TLOCK 0 with
        | exception Unix.Unix_error _ -> 0 (* someone else is sweeping *)
        | () ->
          let reaped = ref 0 in
          let entries = try Sys.readdir dir with Sys_error _ -> [||] in
          Array.iter
            (fun name ->
              match stale_tmp_pid name with
              | Some pid when pid > 0 && not (pid_alive pid) ->
                (try
                   Sys.remove (Filename.concat dir name);
                   incr reaped
                 with Sys_error _ -> ())
              | _ -> ())
            entries;
          (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
          !reaped)

let create ?jobs ?(cache = true) ?cache_dir () =
  (match cache_dir with Some dir -> mkdir_p dir | None -> ());
  let cache_dir = if cache then cache_dir else None in
  let stale_reaped =
    match cache_dir with Some dir -> recover_cache_dir dir | None -> 0
  in
  {
    pool = Pool.create ?jobs ();
    cache;
    cache_dir;
    mutex = Mutex.create ();
    records = Hashtbl.create 64;
    objectives = Hashtbl.create 256;
    tasks_run = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_corrupt = 0;
    quarantined = 0;
    expired = 0;
    stale_reaped;
    sections_rev = [];
    telemetry_acc = None;
  }

let default_runner = lazy (create ())
let default () = Lazy.force default_runner
let jobs t = Pool.jobs t.pool
let cache_enabled t = t.cache
let shutdown t = Pool.shutdown t.pool

let map t f xs =
  Pool.map t.pool
    (fun x ->
      let y = f x in
      Mutex.lock t.mutex;
      t.tasks_run <- t.tasks_run + 1;
      Mutex.unlock t.mutex;
      y)
    xs

(* ------------------------------------------------------------------ *)
(* Persistent cache entries.

   On-disk format: a fixed magic, the 16-byte [Digest] of the marshalled
   payload, then the payload.  The digest is validated on every read, so
   a truncated, bit-flipped or partially written entry is detected
   BEFORE [Marshal.from_string] ever sees it and is treated as a cache
   miss (logged, counted, and overwritten by the recomputed value) —
   never an exception.  Writes go through a temporary file and a rename,
   so concurrent writers and crashes leave either the old entry or the
   new one, not a torn file. *)
(* ------------------------------------------------------------------ *)

(* Bumped whenever the marshalled payload shape changes ("WPCACHE1"
   predates the telemetry field in [Cpu.result]); old entries fail the
   magic check and are treated as misses, never mis-decoded. *)
let disk_magic = "WPCACHE2"

let entry_path dir ~ns cache_key =
  Filename.concat dir (Digest.to_hex (Digest.string cache_key) ^ "." ^ ns)

let note_corrupt t path why =
  Printf.eprintf "runner: corrupt cache entry %s (%s): quarantined, treated as miss\n%!"
    path why;
  (* Move the bad entry aside instead of leaving it in place: the cache
     directory stays clean for the next reader (the chaos harness
     asserts zero corrupt entries after a SIGKILL + restart), and the
     evidence survives under [quarantine/] for post-mortem.  A rename
     race with a concurrent recomputing writer is benign — either the
     fresh entry wins the name or the rename fails and we fall back to
     deleting. *)
  (match t.cache_dir with
  | Some dir -> (
    let qdir = Filename.concat dir quarantine_subdir in
    (try mkdir_p qdir with Unix.Unix_error _ | Sys_error _ -> ());
    let dst = Filename.concat qdir (Filename.basename path) in
    try Sys.rename path dst
    with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ()))
  | None -> ());
  Mutex.lock t.mutex;
  t.cache_corrupt <- t.cache_corrupt + 1;
  Mutex.unlock t.mutex

let disk_read t ~ns cache_key =
  match t.cache_dir with
  | None -> None
  | Some dir ->
    let path = entry_path dir ~ns cache_key in
    if not (Sys.file_exists path) then None
    else begin
      let corrupt why =
        note_corrupt t path why;
        None
      in
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception Sys_error e -> corrupt e
      | exception End_of_file -> corrupt "truncated while reading"
      | raw ->
        let mlen = String.length disk_magic in
        let hdr = mlen + 16 in
        if String.length raw < hdr then corrupt "truncated header"
        else if String.sub raw 0 mlen <> disk_magic then corrupt "bad magic"
        else begin
          let stored = String.sub raw mlen 16 in
          let payload = String.sub raw hdr (String.length raw - hdr) in
          if not (Digest.equal (Digest.string payload) stored) then
            corrupt "digest mismatch"
          else
            (* The digest already vouches for the payload bytes; the
               catch-all is belt and braces against entries written by an
               incompatible compiler version. *)
            match Marshal.from_string payload 0 with
            | v -> Some v
            | exception _ -> corrupt "unreadable payload"
        end
    end

let disk_write t ~ns cache_key v =
  match t.cache_dir with
  | None -> ()
  | Some dir -> (
    try
      let payload = Marshal.to_string v [] in
      let path = entry_path dir ~ns cache_key in
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
          (Domain.self () :> int)
      in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc disk_magic;
          output_string oc (Digest.string payload);
          output_string oc payload);
      Sys.rename tmp path
    with Sys_error _ | Unix.Unix_error _ -> ())

(* One cache transaction.  The simulation runs outside the lock;
   concurrent misses on the same key may race the computation (pure, so
   harmless) but the first stored value wins, keeping every caller's view
   identical.  [ns] namespaces the disk entry ("rec" / "obj") so the two
   tables cannot alias on disk. *)
let lookup t table ~ns key compute =
  if not t.cache then begin
    Mutex.lock t.mutex;
    t.cache_misses <- t.cache_misses + 1;
    Mutex.unlock t.mutex;
    compute ()
  end
  else begin
    let store_winner ~persist v =
      Mutex.lock t.mutex;
      let winner =
        match Hashtbl.find_opt table key with
        | Some first -> first
        | None ->
          Hashtbl.replace table key v;
          v
      in
      Mutex.unlock t.mutex;
      if persist && winner == v then disk_write t ~ns key v;
      winner
    in
    Mutex.lock t.mutex;
    match Hashtbl.find_opt table key with
    | Some v ->
      t.cache_hits <- t.cache_hits + 1;
      Mutex.unlock t.mutex;
      v
    | None -> (
      Mutex.unlock t.mutex;
      match disk_read t ~ns key with
      | Some v ->
        Mutex.lock t.mutex;
        t.cache_hits <- t.cache_hits + 1;
        Mutex.unlock t.mutex;
        store_winner ~persist:false v
      | None ->
        Mutex.lock t.mutex;
        t.cache_misses <- t.cache_misses + 1;
        Mutex.unlock t.mutex;
        let v = compute () in
        store_winner ~persist:true v)
  end

let key ~spec ~machine ~(program : Program.t) config =
  (* The run parameters enter the key solely through [Run_spec.digest]:
     engine kind (both kernels agree observably, but a cache must never
     blur which kernel produced a stored record), fault digest (a
     faulted record must never satisfy a clean lookup, or vice versa),
     protection digest (a link-layer run has different latencies and
     statistics than a raw one), telemetry digest (an instrumented
     record carries extra payload a plain lookup should not see), cycle
     budget and FIFO capacity.  A field added to [Run_spec.t] is
     automatically keyed here — no hand-assembled concatenation to
     drift. *)
  Printf.sprintf "%s|%s|%s|%s|%s" program.Program.name
    (Experiment.program_digest program)
    (Datapath.machine_name machine) (Config.digest config)
    (Run_spec.digest spec)

(* Fold a finished record's telemetry into the monotone accumulator.
   Mixed-topology sweeps degrade gracefully: [merge_opt] keeps the
   accumulator unchanged on a topology mismatch. *)
let note_telemetry t (r : Experiment.record) =
  let summary_of (res : Cpu.result) =
    Option.map (fun rep -> rep.Telemetry.summary) res.Cpu.telemetry
  in
  match (summary_of r.Experiment.wp1, summary_of r.Experiment.wp2) with
  | None, None -> ()
  | s1, s2 ->
    Mutex.lock t.mutex;
    (match s1 with
    | Some s -> t.telemetry_acc <- Telemetry.merge_opt t.telemetry_acc s
    | None -> ());
    (match s2 with
    | Some s -> t.telemetry_acc <- Telemetry.merge_opt t.telemetry_acc s
    | None -> ());
    Mutex.unlock t.mutex

let experiment_spec ?cancel ~spec t ~machine ~program config =
  (* A cancelled compute raises out of [lookup] before [store_winner], so
     an abandoned run never poisons the cache; a cache hit on the other
     hand is free and satisfies any deadline. *)
  let r =
    lookup t t.records ~ns:"rec"
      (key ~spec ~machine ~program config)
      (fun () -> Experiment.run_spec ?cancel ~spec ~machine ~program config)
  in
  note_telemetry t r;
  r

let experiments_spec ~spec t ~machine ~program configs =
  (* Warm the golden memo once before fanning out, so the first parallel
     wave does not duplicate the reference run across workers. *)
  ignore (Experiment.golden ~engine:spec.Run_spec.engine ~machine program);
  map t (experiment_spec ~spec t ~machine ~program) configs

let objective_spec ~spec t ~machine ~program config =
  lookup t t.objectives ~ns:"obj"
    (key ~spec ~machine ~program config)
    (fun () ->
      Experiment.wp2_cycles_objective_spec ~spec ~machine ~program config)

(* ------------------------------------------------------------------ *)
(* Guarded experiments: quarantine + seeded-backoff retry.

   A sweep of hundreds of configurations must not die because ONE
   experiment deadlocks, exhausts its budget or trips an internal
   invariant.  [experiment_guarded] runs each attempt through the normal
   cached path; an exception is retried up to [attempts] times with a
   deterministic, seeded exponential backoff (and, when the caller gave
   an explicit [max_cycles] budget, an exponentially escalated budget —
   the per-experiment "timeout" is a cycle budget, so escalation is the
   retry that can actually help).  A task that still fails is returned
   as [Failed] with a one-line repro, and the rest of the sweep
   proceeds. *)
(* ------------------------------------------------------------------ *)

type failure = {
  failed_key : string;
  attempts_made : int;
  last_error : string;
  repro : string;
}

type outcome =
  | Completed of Experiment.record
  | Failed of failure
  | Expired of string

let repro_line ~spec ~machine ~(program : Program.t) config =
  Printf.sprintf
    "machine=%s program=%s rs=%S engine=%s fault=%S protect=%S max_cycles=%s"
    (Datapath.machine_name machine)
    program.Program.name (Config.describe config)
    (Wp_sim.Sim.kind_to_string spec.Run_spec.engine)
    (Wp_sim.Fault.to_string spec.Run_spec.fault)
    (Protect.to_string spec.Run_spec.protect)
    (match spec.Run_spec.max_cycles with
    | Some n -> string_of_int n
    | None -> "default")

let experiment_guarded_spec ~spec ?(attempts = 3) ?(retry_seed = 0) ?cancel t
    ~machine ~program config =
  let attempts = max 1 attempts in
  let k = key ~spec ~machine ~program config in
  let cancel_tok = Option.value cancel ~default:Wp_util.Cancel.never in
  let expired msg =
    (* A deadline is not a fault: no retry (the budget is wall-clock and
       it is gone), no quarantine. *)
    Mutex.lock t.mutex;
    t.expired <- t.expired + 1;
    Mutex.unlock t.mutex;
    Expired msg
  in
  let rng = Random.State.make [| retry_seed; Hashtbl.hash k |] in
  let spec_for i =
    (* Attempt i gets 2^(i-1) times the caller's budget: a run killed by
       a too-tight timeout converges instead of failing identically. *)
    match spec.Run_spec.max_cycles with
    | Some m -> { spec with Run_spec.max_cycles = Some (m * (1 lsl (i - 1))) }
    | None -> spec
  in
  let rec go i last_error =
    if Wp_util.Cancel.cancelled cancel_tok then
      expired
        (Printf.sprintf "deadline exceeded before attempt %d/%d (%s)" i
           attempts
           (repro_line ~spec ~machine ~program config))
    else if i > attempts then begin
      Mutex.lock t.mutex;
      t.quarantined <- t.quarantined + 1;
      Mutex.unlock t.mutex;
      Failed
        {
          failed_key = k;
          attempts_made = attempts;
          last_error;
          repro = repro_line ~spec ~machine ~program config;
        }
    end
    else begin
      if i > 1 then begin
        (* Seeded exponential backoff: deterministic for a given
           [retry_seed], bounded (the last gap is ~2^attempts ms). *)
        let base = 0.001 *. float_of_int (1 lsl (i - 2)) in
        let jitter = Random.State.float rng base in
        try Unix.sleepf (base +. jitter) with Unix.Unix_error _ -> ()
      end;
      match experiment_spec ?cancel ~spec:(spec_for i) t ~machine ~program
              config
      with
      | r -> Completed r
      | exception Wp_util.Cancel.Cancelled msg -> expired msg
      | exception e -> go (i + 1) (Printexc.to_string e)
    end
  in
  go 1 "not attempted"

let experiments_guarded_spec ~spec ?attempts ?retry_seed t ~machine ~program
    configs =
  (* Warm the golden memo, but through the quarantine: a failing
     reference run surfaces as per-task [Failed]s, not a dead sweep. *)
  (try ignore (Experiment.golden ~engine:spec.Run_spec.engine ~machine program)
   with _ -> ());
  map t
    (experiment_guarded_spec ~spec ?attempts ?retry_seed t ~machine ~program)
    configs

(* ------------------------------------------------------------------ *)
(* Batched experiments: SoA kernel sharding + cache + quarantine.

   The service-facing entry point.  Requests are heterogeneous (any
   machine / program / config / spec mix); each is first probed against
   the cache, the batchable misses are grouped by machine and handed to
   [Experiment.run_batch_spec] in shards across the pool's domains, and
   everything the batch path cannot serve (non-batchable specs,
   per-request batch failures) is routed through the guarded
   retry/quarantine machinery, so a poisoned request degrades exactly as
   it would in a sequential sweep. *)
(* ------------------------------------------------------------------ *)

type request = {
  req_spec : Run_spec.t;
  req_machine : Datapath.machine;
  req_program : Program.t;
  req_config : Config.t;
  req_cancel : Wp_util.Cancel.t;
}

let batchable (spec : Run_spec.t) =
  (* The batch kernel IS the Fast engine, one lane per run.  Destructive
     (non-benign) faults are excluded because they may legitimately make
     a process closure raise — identically to the solo run, but a raise
     in a fused loop poisons every lane of the batch.  Protection and
     telemetry carry per-run state the SoA kernel does not model, and a
     record computed by the batch must be byte-identical to the one the
     solo path would cache under the same key. *)
  spec.Run_spec.engine = Wp_sim.Sim.Fast
  && Wp_sim.Fault.benign spec.Run_spec.fault
  && spec.Run_spec.capacity >= 1
  && Protect.is_none spec.Run_spec.protect
  && Telemetry.is_off spec.Run_spec.telemetry

(* Cache probe without compute: memory table first, then the
   digest-guarded disk layer (promoted into memory on hit, first stored
   value winning as in [lookup]).  Does not touch the hit/miss counters
   — the caller accounts for the request's final disposition exactly
   once. *)
let probe t table ~ns key =
  if not t.cache then None
  else begin
    Mutex.lock t.mutex;
    let mem = Hashtbl.find_opt table key in
    Mutex.unlock t.mutex;
    match mem with
    | Some _ -> mem
    | None -> (
      match disk_read t ~ns key with
      | None -> None
      | Some v ->
        Mutex.lock t.mutex;
        let winner =
          match Hashtbl.find_opt table key with
          | Some first -> first
          | None ->
            Hashtbl.replace table key v;
            v
        in
        Mutex.unlock t.mutex;
        Some winner)
  end

(* Store a batch-computed value under its key (memory + disk), first
   writer winning so every caller's view stays identical. *)
let store t table ~ns key v =
  if not t.cache then v
  else begin
    Mutex.lock t.mutex;
    let winner =
      match Hashtbl.find_opt table key with
      | Some first -> first
      | None ->
        Hashtbl.replace table key v;
        v
    in
    Mutex.unlock t.mutex;
    if winner == v then disk_write t ~ns key v;
    winner
  end

let experiments_batch_spec ?attempts ?retry_seed ?(shard = 8) t requests =
  let reqs = Array.of_list requests in
  let n = Array.length reqs in
  let keys =
    Array.map
      (fun r ->
        key ~spec:r.req_spec ~machine:r.req_machine ~program:r.req_program
          r.req_config)
      reqs
  in
  let results : (outcome * bool) option array = Array.make n None in
  (* Phase 1: answer what the cache already holds. *)
  Array.iteri
    (fun i _ ->
      match probe t t.records ~ns:"rec" keys.(i) with
      | Some record ->
        Mutex.lock t.mutex;
        t.cache_hits <- t.cache_hits + 1;
        Mutex.unlock t.mutex;
        note_telemetry t record;
        results.(i) <- Some (Completed record, true)
      | None -> ())
    reqs;
  let misses =
    List.filter (fun i -> results.(i) = None) (List.init n Fun.id)
  in
  (* A request whose deadline already passed gets no compute at all: the
     cache said no, and burning a lane (or a golden run) on it can only
     delay its live siblings. *)
  let dead_misses, misses =
    List.partition
      (fun i -> Wp_util.Cancel.cancelled reqs.(i).req_cancel)
      misses
  in
  List.iter
    (fun i ->
      Mutex.lock t.mutex;
      t.expired <- t.expired + 1;
      Mutex.unlock t.mutex;
      results.(i) <- Some (Expired "deadline exceeded before dispatch", false))
    dead_misses;
  let batch_misses, solo_misses =
    List.partition (fun i -> batchable reqs.(i).req_spec) misses
  in
  let fallback i =
    let r = reqs.(i) in
    let cancel =
      if Wp_util.Cancel.is_never r.req_cancel then None else Some r.req_cancel
    in
    let o =
      experiment_guarded_spec ~spec:r.req_spec ?attempts ?retry_seed ?cancel t
        ~machine:r.req_machine ~program:r.req_program r.req_config
    in
    results.(i) <- Some (o, false)
  in
  (* Phase 2: shard the batchable misses, one machine group at a time
     (lanes of one kernel must share a topology; all programs on one
     machine do). *)
  let groups : (Datapath.machine, int list) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun i ->
      let m = reqs.(i).req_machine in
      let prev = Option.value (Hashtbl.find_opt groups m) ~default:[] in
      Hashtbl.replace groups m (i :: prev))
    batch_misses;
  Hashtbl.iter
    (fun machine idxs_rev ->
      let idxs = Array.of_list (List.rev idxs_rev) in
      (* Warm the golden memos through the quarantine: a failing
         reference run must surface as per-request [Failed]s from the
         fallback path, never as a dead batch. *)
      Array.iter
        (fun i ->
          try
            ignore
              (Experiment.golden ~engine:reqs.(i).req_spec.Run_spec.engine
                 ~machine reqs.(i).req_program)
          with _ -> ())
        idxs;
      let shard_results =
        try
          Pool.map_shards t.pool ~shard
            (fun chunk ->
              try
                Experiment.run_batch_spec ~machine
                  ~cancels:(Array.map (fun i -> reqs.(i).req_cancel) chunk)
                  (Array.map
                     (fun i ->
                       (reqs.(i).req_spec, reqs.(i).req_program,
                        reqs.(i).req_config))
                     chunk)
              with e ->
                (* A kernel-level raise poisons the whole shard; every
                   request in it retries through the solo guarded path. *)
                Array.map (fun _ -> Error (Printexc.to_string e)) chunk)
            idxs
        with e -> Array.map (fun _ -> Error (Printexc.to_string e)) idxs
      in
      Array.iteri
        (fun j i ->
          match shard_results.(j) with
          | Ok record ->
            Mutex.lock t.mutex;
            t.tasks_run <- t.tasks_run + 1;
            t.cache_misses <- t.cache_misses + 1;
            Mutex.unlock t.mutex;
            let winner = store t t.records ~ns:"rec" keys.(i) record in
            note_telemetry t winner;
            results.(i) <- Some (Completed winner, false)
          | Error msg when Wp_util.Cancel.cancelled reqs.(i).req_cancel ->
            (* The lane was cancelled mid-batch (its deadline passed while
               siblings kept running): that is a final disposition, not a
               failure to retry — keep the batch's message, which carries
               the cycle count where the lane stopped. *)
            Mutex.lock t.mutex;
            t.expired <- t.expired + 1;
            Mutex.unlock t.mutex;
            results.(i) <- Some (Expired msg, false)
          | Error _ ->
            (* The batch already knows this request fails; the guarded
               path re-runs it solo (bounded retries, escalating budget)
               and quarantines it with a repro line if it still fails. *)
            fallback i)
        idxs)
    groups;
  List.iter fallback solo_misses;
  Array.to_list
    (Array.map (function Some x -> x | None -> assert false) results)

let timed t name f =
  let t0 = Unix.gettimeofday () in
  Mutex.lock t.mutex;
  let tasks0 = t.tasks_run and hits0 = t.cache_hits in
  let tel0 = t.telemetry_acc in
  Mutex.unlock t.mutex;
  let result = f () in
  let wall = Unix.gettimeofday () -. t0 in
  Mutex.lock t.mutex;
  let section_telemetry =
    (* Delta of the monotone accumulator over the section; a mid-sweep
       topology change falls back to the end-of-section total. *)
    match (tel0, t.telemetry_acc) with
    | None, acc -> acc
    | Some _, None -> None
    | Some before, Some now -> (
        match Telemetry.diff now before with
        | d -> Some d
        | exception Invalid_argument _ -> Some now)
  in
  let s =
    {
      section_name = name;
      wall_seconds = wall;
      section_tasks = t.tasks_run - tasks0;
      section_cache_hits = t.cache_hits - hits0;
      section_telemetry;
    }
  in
  t.sections_rev <- s :: t.sections_rev;
  Mutex.unlock t.mutex;
  (result, s)

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      jobs = Pool.jobs t.pool;
      tasks_run = t.tasks_run;
      cache_hits = t.cache_hits;
      cache_misses = t.cache_misses;
      cache_corrupt = t.cache_corrupt;
      quarantined = t.quarantined;
      expired = t.expired;
      stale_reaped = t.stale_reaped;
      telemetry = t.telemetry_acc;
      sections = List.rev t.sections_rev;
    }
  in
  Mutex.unlock t.mutex;
  s

let reset_stats t =
  Mutex.lock t.mutex;
  t.tasks_run <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.cache_corrupt <- 0;
  t.quarantined <- 0;
  t.expired <- 0;
  t.stale_reaped <- 0;
  t.sections_rev <- [];
  t.telemetry_acc <- None;
  Mutex.unlock t.mutex

let clear_cache t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.records;
  Hashtbl.reset t.objectives;
  Mutex.unlock t.mutex

let pp_stats ppf s =
  Format.fprintf ppf "runner: %d job%s, %d task%s run, %d cache hit%s, %d miss%s"
    s.jobs
    (if s.jobs = 1 then "" else "s")
    s.tasks_run
    (if s.tasks_run = 1 then "" else "s")
    s.cache_hits
    (if s.cache_hits = 1 then "" else "s")
    s.cache_misses
    (if s.cache_misses = 1 then "" else "es");
  if s.cache_corrupt > 0 then
    Format.fprintf ppf ", %d corrupt entr%s recovered" s.cache_corrupt
      (if s.cache_corrupt = 1 then "y" else "ies");
  if s.quarantined > 0 then
    Format.fprintf ppf ", %d task%s quarantined" s.quarantined
      (if s.quarantined = 1 then "" else "s");
  if s.expired > 0 then
    Format.fprintf ppf ", %d deadline%s expired" s.expired
      (if s.expired = 1 then "" else "s");
  if s.stale_reaped > 0 then
    Format.fprintf ppf ", %d stale temp file%s reaped" s.stale_reaped
      (if s.stale_reaped = 1 then "" else "s");
  (match s.telemetry with
  | None -> ()
  | Some tel ->
    Format.fprintf ppf ", telemetry over %d cycles" tel.Telemetry.cycles);
  List.iter
    (fun sec ->
      Format.fprintf ppf "@\n  %-36s %8.3f s wall  %4d tasks  %4d cache hits"
        sec.section_name sec.wall_seconds sec.section_tasks sec.section_cache_hits;
      match sec.section_telemetry with
      | None -> ()
      | Some tel -> Format.fprintf ppf "  %9d telemetry cycles" tel.Telemetry.cycles)
    s.sections
