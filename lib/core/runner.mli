(** Parallel, cache-aware experiment runner.

    Every Table 1 regeneration simulates 13 + 25 (program, configuration)
    rows under golden, WP1 and WP2; the optimiser's objective adds a
    shortlist of WP2 sweeps per "Optimal k" row; the randomized
    equivalence battery adds hundreds more.  All of these are
    embarrassingly parallel and heavily overlapping, so the runner
    provides two things on top of {!Wp_util.Pool}:

    - a {b worker pool} ([WIREPIPE_JOBS] or
      [Domain.recommended_domain_count] workers) with order-preserving
      fan-out, so parallel output is byte-identical to sequential output;
    - a {b content-addressed result cache} keyed by
      [(program content digest, machine, Config.digest, max_cycles)] that
      memoises {!Experiment.record}s and optimiser objective values across
      Table 1, the optimiser and the equivalence sweeps.

    Determinism contract: all cached computations are pure, keys cover
    every input that can change the result, and batch results are
    reassembled in submission order — so for any [jobs] count (including
    the [WIREPIPE_JOBS=1] sequential fallback) and any cache state,
    {!Table1.render}/{!Table1.to_csv} output is byte-identical. *)

type t

type section = {
  section_name : string;
  wall_seconds : float;       (** wall-clock time inside {!timed} *)
  section_tasks : int;        (** tasks executed during the section *)
  section_cache_hits : int;   (** cache hits during the section *)
  section_telemetry : Wp_sim.Telemetry.summary option;
      (** merged stall/channel telemetry of the records consumed during
          the section (counters and histograms summed pointwise);
          [None] when the section's specs had telemetry off *)
}

type stats = {
  jobs : int;                 (** pool width *)
  tasks_run : int;            (** pool tasks actually executed *)
  cache_hits : int;           (** experiment + objective cache hits *)
  cache_misses : int;         (** lookups that had to simulate *)
  cache_corrupt : int;        (** disk entries rejected by digest check *)
  quarantined : int;          (** guarded tasks that exhausted retries *)
  expired : int;              (** requests abandoned at their deadline *)
  stale_reaped : int;         (** dead writers' temp files swept at startup *)
  telemetry : Wp_sim.Telemetry.summary option;
      (** running merge of every record's WP1+WP2 telemetry since the
          last {!reset_stats}; mixed-topology sweeps keep the first
          topology seen *)
  sections : section list;    (** chronological *)
}

val create : ?jobs:int -> ?cache:bool -> ?cache_dir:string -> unit -> t
(** [jobs] defaults to {!Wp_util.Pool.default_jobs} (the [WIREPIPE_JOBS]
    environment variable, else every core); [cache] defaults to [true].
    With [cache:false] every lookup misses — results are still correct
    and deterministic, just recomputed.

    [cache_dir] adds a persistent layer under the in-memory cache: each
    entry is stored as a digest-guarded file (magic + MD5 of the
    marshalled payload + payload, written atomically via rename).  The
    digest is validated on every read; a truncated or bit-flipped entry
    is logged, counted in [cache_corrupt], moved into a [quarantine/]
    subdirectory for post-mortem, treated as a miss and replaced by the
    recomputed value — corruption can cost time, never correctness, and
    never raises.

    Crash safety: entries are only ever published by an atomic rename of
    a [*.tmp.<pid>.<domain>] file, so a crashed or SIGKILLed writer can
    strand temp files but never tear an entry.  [create] sweeps the
    directory for temp files whose writer PID is dead and deletes them
    (counted in [stale_reaped]), under an advisory [.wpcache.lock] file
    lock so concurrent daemons sharing the directory do not race the
    sweep (if the lock is busy, the other process is already
    sweeping). *)

val default : unit -> t
(** A lazily created process-wide runner with default parameters; used
    when no explicit runner is passed to {!Table1}. *)

val jobs : t -> int
val cache_enabled : t -> bool

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map on the runner's pool (counted in
    {!stats}).  The first task exception is re-raised in the caller. *)

val experiment_spec :
  ?cancel:Wp_util.Cancel.t ->
  spec:Run_spec.t ->
  t ->
  machine:Wp_soc.Datapath.machine ->
  program:Wp_soc.Program.t ->
  Config.t ->
  Experiment.record
(** Cached {!Experiment.run_spec}.  [cancel] (and the spec's own
    [deadline_ms]) bound wall-clock, not results: a cache hit satisfies
    any deadline, a cancelled compute raises
    {!Wp_util.Cancel.Cancelled} before anything is stored, and
    [deadline_ms] is deliberately excluded from the cache key.  The
    cache key is
    [(program content digest, machine, Config.digest, Run_spec.digest)]
    — every run parameter (engine kind, cycle budget, FIFO capacity,
    fault, protection, telemetry) enters through {!Run_spec.digest}, so
    a faulted, link-protected or instrumented record never satisfies a
    lookup for a different spec and vice versa.  The record's WP1/WP2
    telemetry summaries (if any) are folded into the runner's running
    aggregate ({!stats}), cache hits included. *)

val experiments_spec :
  spec:Run_spec.t ->
  t ->
  machine:Wp_soc.Datapath.machine ->
  program:Wp_soc.Program.t ->
  Config.t list ->
  Experiment.record list
(** Parallel batch of {!experiment_spec} over one program: the golden
    reference is pre-warmed once, then configurations fan out across the
    pool.  Results are in input order.  The first task exception kills
    the batch (see {!experiments_guarded_spec} for the quarantining
    variant). *)

type failure = {
  failed_key : string;     (** the full cache key of the failed task *)
  attempts_made : int;
  last_error : string;     (** [Printexc.to_string] of the final attempt *)
  repro : string;          (** one-line parameter dump to rerun it *)
}

type outcome =
  | Completed of Experiment.record
  | Failed of failure
  | Expired of string
      (** the request's deadline passed (before or during a run); the
          payload says where it stopped.  Deadlines are not faults:
          expiry burns no retries and is counted in [stats.expired],
          not [quarantined]. *)

val experiment_guarded_spec :
  spec:Run_spec.t ->
  ?attempts:int ->
  ?retry_seed:int ->
  ?cancel:Wp_util.Cancel.t ->
  t ->
  machine:Wp_soc.Datapath.machine ->
  program:Wp_soc.Program.t ->
  Config.t ->
  outcome
(** {!experiment_spec} behind a quarantine: an exception (deadlock,
    exhausted budget, violated invariant) is retried up to [attempts]
    times (default 3) with a deterministic seeded exponential backoff;
    when the spec carries an explicit [max_cycles] budget, attempt [i]
    runs with [max_cycles * 2^(i-1)], so a too-tight per-experiment
    timeout escalates instead of failing identically (each escalated
    budget is its own cache key, via the spec digest).  A task that
    still fails returns [Failed] with its repro line — it never
    raises.

    [cancel] is checked before every attempt and polled inside the run:
    a cancelled or deadline-expired task returns [Expired] immediately,
    with no retries (the budget that ran out is wall-clock) and no
    quarantine. *)

val experiments_guarded_spec :
  spec:Run_spec.t ->
  ?attempts:int ->
  ?retry_seed:int ->
  t ->
  machine:Wp_soc.Datapath.machine ->
  program:Wp_soc.Program.t ->
  Config.t list ->
  outcome list
(** Parallel batch of {!experiment_guarded_spec}: one poisoned
    experiment no longer kills the sweep — it comes back as [Failed] in
    its input position while every other configuration completes. *)

type request = {
  req_spec : Run_spec.t;
  req_machine : Wp_soc.Datapath.machine;
  req_program : Wp_soc.Program.t;
  req_config : Config.t;
  req_cancel : Wp_util.Cancel.t;
      (** per-request cancellation/deadline token
          ({!Wp_util.Cancel.never} for no bound); the service cancels it
          when the client disconnects *)
}
(** One experiment request of a heterogeneous batch (the unit of work
    the [wp_cli serve] daemon receives). *)

val batchable : Run_spec.t -> bool
(** Whether a spec may ride the structure-of-arrays batch kernel:
    [Fast] engine, benign (stall-only) fault, capacity >= 1, no link
    protection, telemetry off.  Non-batchable specs still work through
    {!experiments_batch_spec} — they just take the solo guarded path. *)

val experiments_batch_spec :
  ?attempts:int ->
  ?retry_seed:int ->
  ?shard:int ->
  t ->
  request list ->
  (outcome * bool) list
(** Serve a heterogeneous request batch: cache probe first (the [bool]
    is [true] for requests answered from cache), then the {!batchable}
    misses grouped by machine and run as lanes of shared
    {!Experiment.run_batch_spec} kernels, [shard] requests (default 8,
    i.e. 16 lanes) per pool task.  Everything else — non-batchable
    specs, and requests the batch reports as failing — goes through
    {!experiment_guarded_spec} with its bounded retries, so a poisoned
    request returns [Failed] with a repro line instead of killing the
    batch.  Computed records are stored under the same cache keys as
    {!experiment_spec}; results are in request order.

    Deadlines: a miss whose [req_cancel] is already cancelled returns
    [Expired] without touching a lane; a lane cancelled mid-batch is
    compacted out of the kernel (its live siblings' results stay
    byte-identical to a batch that never contained it) and returns
    [Expired] with the cycle count where it stopped. *)

val objective_spec :
  spec:Run_spec.t ->
  t ->
  machine:Wp_soc.Datapath.machine ->
  program:Wp_soc.Program.t ->
  Config.t ->
  float
(** Cached {!Experiment.wp2_cycles_objective_spec}, sharing the cache
    with {!experiment_spec} batches (an objective probe for a
    configuration whose full record is already cached is free, and vice
    versa). *)

val timed : t -> string -> (unit -> 'a) -> 'a * section
(** Run a section under the wall clock and record it in {!stats},
    attributing the tasks and cache hits that occur inside it. *)

val stats : t -> stats
val reset_stats : t -> unit
(** Zero the counters and section log (the cache is kept). *)

val clear_cache : t -> unit
(** Forget the in-memory tables.  Disk entries (if [cache_dir] was
    given) are kept: they revalidate through the digest check on the
    next lookup. *)

val pp_stats : Format.formatter -> stats -> unit
(** One line per section plus a totals line — what the bench harness
    prints after each run. *)

val shutdown : t -> unit
(** Join the worker domains.  The {!default} runner is never shut down. *)
