(* Multi-tenant serve daemon.  See service.mli for the threading model.

   Locking: [t.mutex] guards the client table, every per-client work
   queue and in-flight list, the breaker table, the shed RNG and the
   counters; [client.rmutex] guards the client's reply queue and
   [closed] flag.  The lock order is [t.mutex] strictly before any
   [rmutex]; no thread takes them the other way around (in particular,
   [post_reply] releases [rmutex] before a disconnect takes [t.mutex]).

   Fd ownership: the reader and writer threads share the client fd;
   [drop_client] only ever shuts the fd down (which wakes both), and the
   reader — last out, after joining the writer — closes it.  No thread
   can touch a recycled descriptor number. *)

module Frame = Wp_util.Frame
module Cancel = Wp_util.Cancel

type client = {
  id : int;
  fd : Unix.file_descr;
  rmutex : Mutex.t;
  rcond : Condition.t;
  replies : (int * Wire.reply) Queue.t;  (* under rmutex *)
  queue : (int * Runner.request) Queue.t;  (* under t.mutex *)
  mutable inflight : Runner.request list;  (* under t.mutex *)
  mutable closed : bool;  (* under rmutex *)
  mutable writer : Thread.t option;
}

(* Per-(machine, config) circuit breaker: [fails] quarantine outcomes in
   a row open it for [breaker_cooldown] seconds, during which matching
   requests are refused with [Busy] instead of burning retry budgets on
   a key that is currently poisoned. *)
type breaker = { mutable fails : int; mutable open_until : float }

type counters = {
  shed : int;
  breaker_trips : int;
  slow_disconnects : int;
}

type t = {
  runner : Runner.t;
  sock : Unix.file_descr;
  path : string;
  queue_bound : int;
  reply_bound : int;
  shard : int;
  batch_max : int;
  idle_timeout : float;
  stall_timeout : float;
  write_timeout : float;
  shed_limit : int;
  breaker_threshold : int;
  breaker_cooldown : float;
  mutex : Mutex.t;
  cond : Condition.t;
  clients : (int, client) Hashtbl.t;
  breakers : (string, breaker) Hashtbl.t;
  shed_rng : Random.State.t;  (* under t.mutex *)
  mutable next_client : int;
  mutable paused : bool;
  mutable stopping : bool;
  mutable served_count : int;
  mutable shed_count : int;
  mutable breaker_trip_count : int;
  mutable slow_disconnect_count : int;
  mutable accept_thread : Thread.t option;
  mutable dispatch_thread : Thread.t option;
  mutable reader_threads : Thread.t list;
}

let socket_path t = t.path

let served t =
  Mutex.lock t.mutex;
  let n = t.served_count in
  Mutex.unlock t.mutex;
  n

let counters t =
  Mutex.lock t.mutex;
  let c =
    {
      shed = t.shed_count;
      breaker_trips = t.breaker_trip_count;
      slow_disconnects = t.slow_disconnect_count;
    }
  in
  Mutex.unlock t.mutex;
  c

let cancel_request (req : Runner.request) = Cancel.cancel req.Runner.req_cancel

let drop_client t c =
  Mutex.lock t.mutex;
  let was = Hashtbl.mem t.clients c.id in
  Hashtbl.remove t.clients c.id;
  (* The client is gone, so its work is garbage: cancel every token it
     owns (queued and in-flight) so running lanes abandon it at the next
     poll instead of computing for nobody. *)
  Queue.iter (fun (_, req) -> cancel_request req) c.queue;
  Queue.clear c.queue;
  List.iter cancel_request c.inflight;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  Mutex.lock c.rmutex;
  c.closed <- true;
  Condition.broadcast c.rcond;
  Mutex.unlock c.rmutex;
  if was then
    (* shutdown() wakes both the reader (EOF) and the writer (EPIPE)
       without invalidating the descriptor number; the reader closes the
       fd after joining the writer. *)
    try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* Enqueue a reply for the writer thread.  A client that stopped
   draining replies fills its bounded queue and is disconnected — the
   slow-loris defense: a reader that never reads costs one queue, never
   a blocked service thread or unbounded memory. *)
let post_reply t c ~tag reply =
  Mutex.lock c.rmutex;
  let verdict =
    if c.closed then `Gone
    else if Queue.length c.replies >= t.reply_bound then `Overflow
    else begin
      Queue.push (tag, reply) c.replies;
      Condition.signal c.rcond;
      `Queued
    end
  in
  Mutex.unlock c.rmutex;
  match verdict with
  | `Queued | `Gone -> ()
  | `Overflow ->
    Mutex.lock t.mutex;
    t.slow_disconnect_count <- t.slow_disconnect_count + 1;
    Mutex.unlock t.mutex;
    drop_client t c

let writer_loop t c =
  let rec loop () =
    Mutex.lock c.rmutex;
    while Queue.is_empty c.replies && not c.closed do
      Condition.wait c.rcond c.rmutex
    done;
    let next = if c.closed then None else Some (Queue.pop c.replies) in
    Mutex.unlock c.rmutex;
    match next with
    | None -> ()
    | Some (tag, reply) -> (
      let payload = Wire.encode_reply ~tag reply in
      match Frame.write_timed ~timeout:t.write_timeout c.fd payload with
      | () -> loop ()
      | exception Frame.Timeout ->
        (* The peer accepted the connection but stopped reading
           (SIGSTOP'd, or a deliberate slow-loris): drop it. *)
        Mutex.lock t.mutex;
        t.slow_disconnect_count <- t.slow_disconnect_count + 1;
        Mutex.unlock t.mutex;
        drop_client t c
      | exception (Unix.Unix_error _ | Sys_error _ | Invalid_argument _) ->
        drop_client t c)
  in
  loop ()

let stats_reply t =
  let s = Runner.stats t.runner in
  let c = counters t in
  Wire.Stats_reply
    {
      st_jobs = s.Runner.jobs;
      st_tasks_run = s.Runner.tasks_run;
      st_cache_hits = s.Runner.cache_hits;
      st_cache_misses = s.Runner.cache_misses;
      st_quarantined = s.Runner.quarantined;
      st_expired = s.Runner.expired;
      st_shed = c.shed;
      st_breaker_trips = c.breaker_trips;
      st_slow_disconnects = c.slow_disconnects;
      st_stale_reaped = s.Runner.stale_reaped;
      st_cache_corrupt = s.Runner.cache_corrupt;
    }

(* --- circuit breaker ------------------------------------------------ *)

let breaker_key (req : Runner.request) =
  Wp_soc.Datapath.machine_name req.Runner.req_machine
  ^ "|"
  ^ Config.describe req.Runner.req_config

(* Call with [t.mutex] held. *)
let breaker_state t key ~now =
  match Hashtbl.find_opt t.breakers key with
  | None -> `Closed
  | Some b ->
    if b.open_until > now then `Open (b.open_until -. now)
    else begin
      if b.open_until > 0. then begin
        (* Cooldown over: half-open.  One success closes it, one more
           failure re-trips immediately. *)
        b.open_until <- 0.;
        b.fails <- max 0 (t.breaker_threshold - 1)
      end;
      `Closed
    end

let note_request_failure t key =
  Mutex.lock t.mutex;
  let b =
    match Hashtbl.find_opt t.breakers key with
    | Some b -> b
    | None ->
      let b = { fails = 0; open_until = 0. } in
      Hashtbl.replace t.breakers key b;
      b
  in
  b.fails <- b.fails + 1;
  if b.fails >= t.breaker_threshold && b.open_until = 0. then begin
    b.open_until <- Unix.gettimeofday () +. t.breaker_cooldown;
    b.fails <- 0;
    t.breaker_trip_count <- t.breaker_trip_count + 1
  end;
  Mutex.unlock t.mutex

let note_request_success t key =
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.breakers key with
  | Some b -> if b.open_until = 0. then b.fails <- 0
  | None -> ());
  Mutex.unlock t.mutex

(* --- admission ------------------------------------------------------ *)

(* Call with [t.mutex] held.  The jitter keeps a thundering herd of
   shed clients from retrying in lockstep; seeded, so tests are
   reproducible. *)
let jitter t ms = ms + Random.State.int t.shed_rng (max 1 (ms / 2))

let total_backlog t =
  Hashtbl.fold (fun _ c acc -> acc + Queue.length c.queue) t.clients 0

let admit t c ~tag (args : Wire.run_args) =
  (* Cheap shed checks before the parse: a refused request must cost
     (almost) nothing.  Priority tiers: 0 sheds at half the backlog
     limit, 1 at the limit, 2+ only at the per-client bound. *)
  let prio = args.Wire.rq_priority in
  Mutex.lock t.mutex;
  let backlog = total_backlog t in
  let shed_floor =
    if prio <= 0 then t.shed_limit / 2
    else if prio = 1 then t.shed_limit
    else max_int
  in
  let verdict =
    if t.stopping then `Shed (jitter t 200)
    else if Queue.length c.queue >= t.queue_bound then
      `Shed (jitter t (100 + (10 * Queue.length c.queue)))
    else if backlog >= shed_floor then `Shed (jitter t (100 + backlog))
    else `Go
  in
  (match verdict with
  | `Shed _ -> t.shed_count <- t.shed_count + 1
  | `Go -> ());
  Mutex.unlock t.mutex;
  match verdict with
  | `Shed ms -> post_reply t c ~tag (Wire.Busy { retry_after_ms = ms })
  | `Go -> (
    match Wire.parse_run args with
    | Error msg ->
      Mutex.lock t.mutex;
      t.served_count <- t.served_count + 1;
      Mutex.unlock t.mutex;
      post_reply t c ~tag (Wire.Error msg)
    | Ok req -> (
      let key = breaker_key req in
      let now = Unix.gettimeofday () in
      Mutex.lock t.mutex;
      let verdict =
        match breaker_state t key ~now with
        | `Open left ->
          t.shed_count <- t.shed_count + 1;
          `Shed (jitter t (max 1 (int_of_float (ceil (left *. 1000.)))))
        | `Closed ->
          if t.stopping then begin
            t.shed_count <- t.shed_count + 1;
            `Shed (jitter t 200)
          end
          else begin
            Queue.push (tag, req) c.queue;
            Condition.broadcast t.cond;
            `Queued
          end
      in
      Mutex.unlock t.mutex;
      match verdict with
      | `Queued -> ()
      | `Shed ms -> post_reply t c ~tag (Wire.Busy { retry_after_ms = ms })))

(* --- per-connection threads ----------------------------------------- *)

let reader_loop t c =
  let quiescent () =
    Mutex.lock t.mutex;
    let no_work = Queue.is_empty c.queue && c.inflight = [] in
    Mutex.unlock t.mutex;
    no_work
    &&
    (Mutex.lock c.rmutex;
     let no_replies = Queue.is_empty c.replies in
     Mutex.unlock c.rmutex;
     no_replies)
  in
  let rec loop () =
    match Frame.read_timed ~idle:t.idle_timeout ~stall:t.stall_timeout c.fd with
    | Frame.Eof -> ()
    | Frame.Idle ->
      (* Reap only a quiescent connection: a client with work queued,
         running or unread is waiting on us, not the other way round. *)
      if quiescent () then () else loop ()
    | Frame.Frame payload ->
      (match Wire.decode_request payload with
      | Error msg ->
        (* Tag 0: the payload was too mangled to recover the real tag. *)
        post_reply t c ~tag:0 (Wire.Error msg)
      | Ok (tag, Wire.Ping) -> post_reply t c ~tag Wire.Pong
      | Ok (tag, Wire.Stats) -> post_reply t c ~tag (stats_reply t)
      | Ok (tag, Wire.Run args) -> admit t c ~tag args);
      loop ()
  in
  (try loop ()
   with
  | Frame.Truncated | Frame.Oversized _ | Frame.Timeout | Unix.Unix_error _
  | Sys_error _
  ->
    ());
  drop_client t c;
  (* Last out closes the fd: the writer has seen [closed] and exited. *)
  (match c.writer with Some th -> Thread.join th | None -> ());
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    match Unix.accept t.sock with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | fd, _ ->
      Mutex.lock t.mutex;
      if t.stopping then begin
        Mutex.unlock t.mutex;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        let c =
          {
            id = t.next_client;
            fd;
            rmutex = Mutex.create ();
            rcond = Condition.create ();
            replies = Queue.create ();
            queue = Queue.create ();
            inflight = [];
            closed = false;
            writer = None;
          }
        in
        t.next_client <- t.next_client + 1;
        Hashtbl.replace t.clients c.id c;
        c.writer <- Some (Thread.create (fun () -> writer_loop t c) ());
        let th = Thread.create (fun () -> reader_loop t c) () in
        t.reader_threads <- th :: t.reader_threads;
        Mutex.unlock t.mutex;
        loop ()
      end
  in
  loop ()

(* One fair dispatch round: at most one request per client per pass
   (clients in connection order), passes repeating until [batch_max]
   requests are drained or every queue is empty.  A client pipelining
   hundreds of requests therefore shares the batch evenly with a client
   sending one.  Call with [t.mutex] held. *)
let drain_round t =
  let batch = ref [] in
  let count = ref 0 in
  let progress = ref true in
  while !progress && !count < t.batch_max do
    progress := false;
    let ids = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.clients []) in
    List.iter
      (fun id ->
        if !count < t.batch_max then
          match Hashtbl.find_opt t.clients id with
          | Some c when not (Queue.is_empty c.queue) ->
            let tag, req = Queue.pop c.queue in
            c.inflight <- req :: c.inflight;
            batch := (c, tag, req) :: !batch;
            incr count;
            progress := true
          | Some _ | None -> ())
      ids
  done;
  List.rev !batch

let dispatch_batch t batch =
  if batch <> [] then begin
    let outcomes =
      Runner.experiments_batch_spec ~shard:t.shard t.runner
        (List.map (fun (_, _, req) -> req) batch)
    in
    List.iter2
      (fun (c, tag, req) (outcome, from_cache) ->
        let key = breaker_key req in
        let reply =
          match outcome with
          | Runner.Completed record ->
            note_request_success t key;
            Wire.Result (Wire.summary_of_record ~from_cache record)
          | Runner.Failed f ->
            note_request_failure t key;
            Wire.Quarantined
              {
                attempts = f.Runner.attempts_made;
                last_error = f.Runner.last_error;
                repro = f.Runner.repro;
              }
          | Runner.Expired msg ->
            (* A deadline is the client's choice, not the key's fault:
               the breaker does not count it. *)
            Wire.Deadline_exceeded msg
        in
        Mutex.lock t.mutex;
        t.served_count <- t.served_count + 1;
        c.inflight <- List.filter (fun r -> r != req) c.inflight;
        Mutex.unlock t.mutex;
        post_reply t c ~tag reply)
      batch outcomes
  end

let dispatch_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec wait () =
      if t.stopping then false
      else if
        t.paused
        || not
             (Hashtbl.fold
                (fun _ c any -> any || not (Queue.is_empty c.queue))
                t.clients false)
      then begin
        Condition.wait t.cond t.mutex;
        wait ()
      end
      else true
    in
    let work = wait () in
    let batch = if work then drain_round t else [] in
    Mutex.unlock t.mutex;
    if work then begin
      dispatch_batch t batch;
      loop ()
    end
  in
  loop ()

let create ?(queue_bound = 32) ?(shard = 8) ?(batch_max = 64) ?(paused = false)
    ?(reply_bound = 128) ?(idle_timeout = 300.) ?(stall_timeout = 10.)
    ?(write_timeout = 10.) ?(shed_limit = 256) ?(breaker_threshold = 5)
    ?(breaker_cooldown = 1.0) ?(shed_seed = 0) ~runner path =
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind sock (Unix.ADDR_UNIX path);
     Unix.listen sock 64
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      runner;
      sock;
      path;
      queue_bound;
      reply_bound;
      shard;
      batch_max;
      idle_timeout;
      stall_timeout;
      write_timeout;
      shed_limit;
      breaker_threshold;
      breaker_cooldown;
      mutex = Mutex.create ();
      cond = Condition.create ();
      clients = Hashtbl.create 8;
      breakers = Hashtbl.create 8;
      shed_rng = Random.State.make [| shed_seed; 0x5ced |];
      next_client = 0;
      paused;
      stopping = false;
      served_count = 0;
      shed_count = 0;
      breaker_trip_count = 0;
      slow_disconnect_count = 0;
      accept_thread = None;
      dispatch_thread = None;
      reader_threads = [];
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t.dispatch_thread <- Some (Thread.create (fun () -> dispatch_loop t) ());
  t

let pause t =
  Mutex.lock t.mutex;
  t.paused <- true;
  Mutex.unlock t.mutex

let resume t =
  Mutex.lock t.mutex;
  t.paused <- false;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let stop t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.clients [] in
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  if not already then begin
    (* Wake the accept thread with a throwaway connection: on Linux
       neither close(2) nor shutdown(2) on a listening socket unblocks a
       thread already parked in accept(2) (shutdown fails ENOTCONN), but
       a real connection returns from accept, which then sees [stopping]
       and exits.  Only close the listening fd after the join. *)
    let poke = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect poke (Unix.ADDR_UNIX t.path) with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    (try Unix.close poke with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    List.iter (fun c -> drop_client t c) cs;
    Option.iter Thread.join t.dispatch_thread;
    Mutex.lock t.mutex;
    let readers = t.reader_threads in
    t.reader_threads <- [];
    Mutex.unlock t.mutex;
    (* Each reader joins its own writer and closes the client fd on the
       way out, so after this join no service thread or descriptor is
       left behind. *)
    List.iter Thread.join readers;
    if Sys.file_exists t.path then try Sys.remove t.path with Sys_error _ -> ()
  end

(* --- client --------------------------------------------------------- *)

module Client = struct
  type conn = {
    fd : Unix.file_descr;
    mutable pending : (int * Wire.reply) list;  (** replies buffered by [call] *)
  }

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; pending = [] }

  let send conn ~tag req = Frame.write conn.fd (Wire.encode_request ~tag req)

  let read_one conn =
    match Frame.read conn.fd with
    | None -> None
    | Some payload -> (
      match Wire.decode_reply payload with
      | Ok (tag, reply) -> Some (tag, reply)
      | Error msg -> failwith ("Service.Client: undecodable reply: " ^ msg))

  let recv conn =
    match conn.pending with
    | r :: rest ->
      conn.pending <- rest;
      Some r
    | [] -> read_one conn

  let call conn ~tag req =
    send conn ~tag req;
    let rec await () =
      match read_one conn with
      | None -> failwith "Service.Client: daemon closed the connection"
      | Some (t, reply) ->
        if t = tag then reply
        else begin
          conn.pending <- conn.pending @ [ (t, reply) ];
          await ()
        end
    in
    await ()

  let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()
end
