(* Multi-tenant serve daemon.  See service.mli for the threading model.

   Locking: [t.mutex] guards the client table, every per-client queue
   and the paused/stopping flags; [client.write_mutex] guards the
   client's fd for writes, so reader-thread replies (Busy/Pong/Error)
   never interleave with dispatcher replies.  The lock order is
   [t.mutex] strictly before any [write_mutex]; no thread takes them the
   other way around. *)

module Frame = Wp_util.Frame

type client = {
  id : int;
  fd : Unix.file_descr;
  write_mutex : Mutex.t;
  queue : (int * Wire.run_args) Queue.t;
  mutable closed : bool;
}

type t = {
  runner : Runner.t;
  sock : Unix.file_descr;
  path : string;
  queue_bound : int;
  shard : int;
  batch_max : int;
  mutex : Mutex.t;
  cond : Condition.t;
  clients : (int, client) Hashtbl.t;
  mutable next_client : int;
  mutable paused : bool;
  mutable stopping : bool;
  mutable served_count : int;
  mutable accept_thread : Thread.t option;
  mutable dispatch_thread : Thread.t option;
  mutable reader_threads : Thread.t list;
}

let socket_path t = t.path

let served t =
  Mutex.lock t.mutex;
  let n = t.served_count in
  Mutex.unlock t.mutex;
  n

(* A write to a vanished client must never kill a service thread; the
   client is simply marked gone and its queued work dropped on reply. *)
let write_reply c ~tag reply =
  let payload = Wire.encode_reply ~tag reply in
  Mutex.lock c.write_mutex;
  let ok =
    if c.closed then false
    else
      match Frame.write c.fd payload with
      | () -> true
      | exception (Unix.Unix_error _ | Sys_error _ | Invalid_argument _) ->
        c.closed <- true;
        false
  in
  Mutex.unlock c.write_mutex;
  ok

let drop_client t c =
  Mutex.lock t.mutex;
  let was = not c.closed || Hashtbl.mem t.clients c.id in
  c.closed <- true;
  Hashtbl.remove t.clients c.id;
  Mutex.unlock t.mutex;
  if was then begin
    (* shutdown() before close(): closing an fd does not wake a thread
       already blocked in read(2) on it, shutting it down does. *)
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let stats_reply t =
  let s = Runner.stats t.runner in
  Wire.Stats_reply
    {
      st_jobs = s.Runner.jobs;
      st_tasks_run = s.Runner.tasks_run;
      st_cache_hits = s.Runner.cache_hits;
      st_cache_misses = s.Runner.cache_misses;
      st_quarantined = s.Runner.quarantined;
    }

let reader_loop t c =
  let rec loop () =
    match Frame.read c.fd with
    | None -> ()
    | Some payload ->
      (match Wire.decode_request payload with
      | Error msg ->
        (* Tag 0: the payload was too mangled to recover the real tag. *)
        ignore (write_reply c ~tag:0 (Wire.Error msg))
      | Ok (tag, Wire.Ping) -> ignore (write_reply c ~tag Wire.Pong)
      | Ok (tag, Wire.Stats) -> ignore (write_reply c ~tag (stats_reply t))
      | Ok (tag, Wire.Run args) ->
        Mutex.lock t.mutex;
        let accepted =
          if t.stopping || Queue.length c.queue >= t.queue_bound then false
          else begin
            Queue.push (tag, args) c.queue;
            Condition.broadcast t.cond;
            true
          end
        in
        Mutex.unlock t.mutex;
        if not accepted then ignore (write_reply c ~tag Wire.Busy));
      loop ()
  in
  (try loop ()
   with Frame.Truncated | Frame.Oversized _ | Unix.Unix_error _ | Sys_error _ ->
     ());
  drop_client t c;
  (* The dispatcher may be blocked waiting for this client's work. *)
  Mutex.lock t.mutex;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let accept_loop t =
  let rec loop () =
    match Unix.accept t.sock with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | fd, _ ->
      Mutex.lock t.mutex;
      if t.stopping then begin
        Mutex.unlock t.mutex;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        let c =
          {
            id = t.next_client;
            fd;
            write_mutex = Mutex.create ();
            queue = Queue.create ();
            closed = false;
          }
        in
        t.next_client <- t.next_client + 1;
        Hashtbl.replace t.clients c.id c;
        let th = Thread.create (fun () -> reader_loop t c) () in
        t.reader_threads <- th :: t.reader_threads;
        Mutex.unlock t.mutex;
        loop ()
      end
  in
  loop ()

(* One fair dispatch round: at most one request per client per pass
   (clients in connection order), passes repeating until [batch_max]
   requests are drained or every queue is empty.  A client pipelining
   hundreds of requests therefore shares the batch evenly with a client
   sending one. *)
let drain_round t =
  let batch = ref [] in
  let count = ref 0 in
  let progress = ref true in
  while !progress && !count < t.batch_max do
    progress := false;
    let ids = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.clients []) in
    List.iter
      (fun id ->
        if !count < t.batch_max then
          match Hashtbl.find_opt t.clients id with
          | Some c when (not c.closed) && not (Queue.is_empty c.queue) ->
            let tag, args = Queue.pop c.queue in
            batch := (c, tag, args) :: !batch;
            incr count;
            progress := true
          | Some _ | None -> ())
      ids
  done;
  List.rev !batch

let dispatch_batch t batch =
  (* Resolve the textual requests; protocol errors answer immediately
     and never reach the runner. *)
  let runnable =
    List.filter_map
      (fun (c, tag, args) ->
        match Wire.parse_run args with
        | Ok req -> Some (c, tag, req)
        | Error msg ->
          ignore (write_reply c ~tag (Wire.Error msg));
          Mutex.lock t.mutex;
          t.served_count <- t.served_count + 1;
          Mutex.unlock t.mutex;
          None)
      batch
  in
  if runnable <> [] then begin
    let outcomes =
      Runner.experiments_batch_spec ~shard:t.shard t.runner
        (List.map (fun (_, _, req) -> req) runnable)
    in
    List.iter2
      (fun (c, tag, _) (outcome, from_cache) ->
        let reply =
          match outcome with
          | Runner.Completed record ->
            Wire.Result (Wire.summary_of_record ~from_cache record)
          | Runner.Failed f ->
            Wire.Quarantined
              {
                attempts = f.Runner.attempts_made;
                last_error = f.Runner.last_error;
                repro = f.Runner.repro;
              }
        in
        ignore (write_reply c ~tag reply);
        Mutex.lock t.mutex;
        t.served_count <- t.served_count + 1;
        Mutex.unlock t.mutex)
      runnable outcomes
  end

let dispatch_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec wait () =
      if t.stopping then false
      else if
        t.paused
        || not
             (Hashtbl.fold
                (fun _ c any -> any || ((not c.closed) && not (Queue.is_empty c.queue)))
                t.clients false)
      then begin
        Condition.wait t.cond t.mutex;
        wait ()
      end
      else true
    in
    let work = wait () in
    let batch = if work then drain_round t else [] in
    Mutex.unlock t.mutex;
    if work then begin
      dispatch_batch t batch;
      loop ()
    end
  in
  loop ()

let create ?(queue_bound = 32) ?(shard = 8) ?(batch_max = 64) ?(paused = false)
    ~runner path =
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind sock (Unix.ADDR_UNIX path);
     Unix.listen sock 64
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      runner;
      sock;
      path;
      queue_bound;
      shard;
      batch_max;
      mutex = Mutex.create ();
      cond = Condition.create ();
      clients = Hashtbl.create 8;
      next_client = 0;
      paused;
      stopping = false;
      served_count = 0;
      accept_thread = None;
      dispatch_thread = None;
      reader_threads = [];
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t.dispatch_thread <- Some (Thread.create (fun () -> dispatch_loop t) ());
  t

let pause t =
  Mutex.lock t.mutex;
  t.paused <- true;
  Mutex.unlock t.mutex

let resume t =
  Mutex.lock t.mutex;
  t.paused <- false;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let stop t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.clients [] in
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  if not already then begin
    (* Wake the accept thread with a throwaway connection: on Linux
       neither close(2) nor shutdown(2) on a listening socket unblocks a
       thread already parked in accept(2) (shutdown fails ENOTCONN), but
       a real connection returns from accept, which then sees [stopping]
       and exits.  Only close the listening fd after the join. *)
    let poke = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect poke (Unix.ADDR_UNIX t.path) with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    (try Unix.close poke with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    List.iter (fun c -> drop_client t c) cs;
    Option.iter Thread.join t.dispatch_thread;
    Mutex.lock t.mutex;
    let readers = t.reader_threads in
    t.reader_threads <- [];
    Mutex.unlock t.mutex;
    List.iter Thread.join readers;
    if Sys.file_exists t.path then try Sys.remove t.path with Sys_error _ -> ()
  end

(* --- client --------------------------------------------------------- *)

module Client = struct
  type conn = {
    fd : Unix.file_descr;
    mutable pending : (int * Wire.reply) list;  (** replies buffered by [call] *)
  }

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; pending = [] }

  let send conn ~tag req = Frame.write conn.fd (Wire.encode_request ~tag req)

  let read_one conn =
    match Frame.read conn.fd with
    | None -> None
    | Some payload -> (
      match Wire.decode_reply payload with
      | Ok (tag, reply) -> Some (tag, reply)
      | Error msg -> failwith ("Service.Client: undecodable reply: " ^ msg))

  let recv conn =
    match conn.pending with
    | r :: rest ->
      conn.pending <- rest;
      Some r
    | [] -> read_one conn

  let call conn ~tag req =
    send conn ~tag req;
    let rec await () =
      match read_one conn with
      | None -> failwith "Service.Client: daemon closed the connection"
      | Some (t, reply) ->
        if t = tag then reply
        else begin
          conn.pending <- conn.pending @ [ (t, reply) ];
          await ()
        end
    in
    await ()

  let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()
end
