(** Multi-tenant experiment daemon: the engine behind [wp_cli serve].

    One long-lived process owns a {!Runner} (worker-domain pool, warm
    in-memory cache, optional WPCACHE2 disk cache) and serves {!Wire}
    requests over a Unix-domain stream socket, so repeated sweeps from
    short-lived clients stop paying process start-up, netlist
    compilation and cache-warming for every invocation.

    Concurrency model — four kinds of threads over one runner:

    - an {b accept} thread registers clients and spawns one {b reader}
      and one {b writer} thread per connection;
    - each reader parses frames with bounded waits ({!Wp_util.Frame.read_timed}):
      an idle, quiescent connection is reaped after [idle_timeout], a
      peer trickling bytes mid-frame is dropped after [stall_timeout].
      [Run] requests are admitted (or shed, see below) onto the client's
      {e bounded} work queue; [Ping]/[Stats] are answered inline;
    - each writer drains the client's {e bounded} reply queue with
      {!Wp_util.Frame.write_timed}: a client that stops reading either
      fills its reply queue or times out a write — both disconnect it
      (the slow-loris defense; counted in [slow_disconnects]);
    - one {b dispatcher} thread repeatedly drains a fair batch (round
      robin: at most one request per client per round, oldest clients
      first) and hands it to {!Runner.experiments_batch_spec}, which
      serves cache hits, shards batchable misses across the pool's
      domains as structure-of-arrays kernel lanes, abandons requests at
      their deadline ([Deadline_exceeded]), and quarantines poisoned
      requests through the guarded retry machinery.

    Fault boundary:

    - {b deadlines}: a [Run] carrying [rq_deadline_ms] gets a
      cancellation token whose clock starts at arrival; queueing and
      compute past the deadline answer [Deadline_exceeded] and the
      simulation lanes abandon the work cooperatively.  A client
      disconnect cancels all its queued and in-flight tokens;
    - {b load shedding}: when the total queued backlog reaches
      [shed_limit] (priority 1; priority 0 sheds at half that, 2+ only
      at the per-client bound), or the per-client queue is full, the
      request is refused with [Busy {retry_after_ms}] — a jittered,
      seeded backoff hint;
    - {b circuit breaker}: [breaker_threshold] consecutive quarantine
      outcomes for one (machine, config) key open that key's breaker for
      [breaker_cooldown] seconds; matching requests shed with [Busy]
      instead of burning bounded retries on a poisoned key.  Half-open
      after cooldown: one success closes, one failure re-trips. *)

type t

type counters = {
  shed : int;             (** requests refused with [Busy] *)
  breaker_trips : int;    (** closed→open breaker transitions *)
  slow_disconnects : int; (** clients dropped for not reading replies *)
}

val create :
  ?queue_bound:int ->
  ?shard:int ->
  ?batch_max:int ->
  ?paused:bool ->
  ?reply_bound:int ->
  ?idle_timeout:float ->
  ?stall_timeout:float ->
  ?write_timeout:float ->
  ?shed_limit:int ->
  ?breaker_threshold:int ->
  ?breaker_cooldown:float ->
  ?shed_seed:int ->
  runner:Runner.t ->
  string ->
  t
(** [create ~runner path] binds [path] (an existing socket file is
    replaced), starts the accept and dispatcher threads and returns.

    [queue_bound] (default 32) is the per-client pending-request cap
    beyond which requests get [Busy]; [shard] (default 8) is forwarded
    to {!Runner.experiments_batch_spec}; [batch_max] (default 64) caps
    the requests drained per dispatch round.  [paused] (default false)
    starts the dispatcher idle — requests still enqueue (and overflow to
    [Busy]), nothing is simulated until {!resume}; this makes the
    backpressure path deterministic to test.

    Robustness knobs: [reply_bound] (default 128) caps the per-client
    reply queue; [idle_timeout] (default 300s) reaps connections that
    are idle {e and} quiescent; [stall_timeout] (default 10s) bounds the
    wait for the rest of a started frame; [write_timeout] (default 10s)
    bounds each write chunk to a non-reading client; [shed_limit]
    (default 256) is the total-backlog shed threshold;
    [breaker_threshold] (default 5) and [breaker_cooldown] (default 1s)
    parameterise the per-key circuit breaker; [shed_seed] seeds the
    retry-after jitter. *)

val pause : t -> unit
val resume : t -> unit

val socket_path : t -> string

val served : t -> int
(** Run requests answered so far (any reply kind except [Busy]). *)

val counters : t -> counters
(** Fault-boundary counters since {!create} (also carried, merged with
    the runner's, in every [Stats_reply]). *)

val stop : t -> unit
(** Stop accepting, disconnect clients (cancelling their in-flight
    work), join all service threads and unlink the socket.  The runner
    is NOT shut down — it belongs to the caller.  Idempotent. *)

(** Client side of the protocol, shared by [wp_cli client], the
    saturation bench and the tests. *)
module Client : sig
  type conn

  val connect : string -> conn
  (** Connect to a daemon's socket path. *)

  val send : conn -> tag:int -> Wire.request -> unit
  (** Fire one request without waiting — the pipelining primitive. *)

  val recv : conn -> (int * Wire.reply) option
  (** Next reply frame ([None] on clean daemon close).
      @raise Failure on an undecodable reply. *)

  val call : conn -> tag:int -> Wire.request -> Wire.reply
  (** {!send} then block for the reply with the matching tag; replies
      for other tags arriving first are buffered for later {!recv}ing.
      @raise Failure if the daemon closes before replying. *)

  val close : conn -> unit
end
