(** Multi-tenant experiment daemon: the engine behind [wp_cli serve].

    One long-lived process owns a {!Runner} (worker-domain pool, warm
    in-memory cache, optional WPCACHE2 disk cache) and serves {!Wire}
    requests over a Unix-domain stream socket, so repeated sweeps from
    short-lived clients stop paying process start-up, netlist
    compilation and cache-warming for every invocation.

    Concurrency model — three kinds of threads over one runner:

    - an {b accept} thread registers clients and spawns one {b reader}
      thread per connection;
    - each reader parses frames and pushes [Run] requests onto its
      client's {e bounded} queue ([Ping]/[Stats] are answered inline).
      A request arriving on a full queue is answered [Busy] immediately
      — backpressure is a protocol reply, never unbounded buffering;
    - one {b dispatcher} thread repeatedly drains a fair batch (round
      robin: at most one request per client per round, oldest clients
      first) and hands it to {!Runner.experiments_batch_spec}, which
      serves cache hits, shards batchable misses across the pool's
      domains as structure-of-arrays kernel lanes, and quarantines
      poisoned requests through the guarded retry machinery.

    Replies are written under a per-client mutex, so an inline [Busy]
    from the reader thread cannot interleave bytes with a [Result] from
    the dispatcher. *)

type t

val create :
  ?queue_bound:int ->
  ?shard:int ->
  ?batch_max:int ->
  ?paused:bool ->
  runner:Runner.t ->
  string ->
  t
(** [create ~runner path] binds [path] (an existing socket file is
    replaced), starts the accept and dispatcher threads and returns.
    [queue_bound] (default 32) is the per-client pending-request cap
    beyond which requests get [Busy]; [shard] (default 8) is forwarded
    to {!Runner.experiments_batch_spec}; [batch_max] (default 64) caps
    the requests drained per dispatch round.  [paused] (default false)
    starts the dispatcher idle — requests still enqueue (and overflow to
    [Busy]), nothing is simulated until {!resume}; this makes the
    backpressure path deterministic to test. *)

val pause : t -> unit
val resume : t -> unit

val socket_path : t -> string

val served : t -> int
(** Run requests answered so far (any reply kind except [Busy]). *)

val stop : t -> unit
(** Stop accepting, disconnect clients, join all service threads and
    unlink the socket.  The runner is NOT shut down — it belongs to the
    caller.  Idempotent. *)

(** Client side of the protocol, shared by [wp_cli client], the
    saturation bench and the tests. *)
module Client : sig
  type conn

  val connect : string -> conn
  (** Connect to a daemon's socket path. *)

  val send : conn -> tag:int -> Wire.request -> unit
  (** Fire one request without waiting — the pipelining primitive. *)

  val recv : conn -> (int * Wire.reply) option
  (** Next reply frame ([None] on clean daemon close).
      @raise Failure on an undecodable reply. *)

  val call : conn -> tag:int -> Wire.request -> Wire.reply
  (** {!send} then block for the reply with the matching tag; replies
      for other tags arriving first are buffered for later {!recv}ing.
      @raise Failure if the daemon closes before replying. *)

  val close : conn -> unit
end
