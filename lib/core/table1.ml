module Datapath = Wp_soc.Datapath
module Programs = Wp_soc.Programs

type row = {
  index : int;
  label : string;
  record : Experiment.record;
}

(* Table 1 lists the single-RS rows in this order. *)
let single_rs_order =
  [
    Datapath.CU_RF;
    Datapath.CU_AL;
    Datapath.CU_DC;
    Datapath.CU_IC;
    Datapath.RF_ALU;
    Datapath.RF_DC;
    Datapath.ALU_CU;
    Datapath.ALU_RF;
    Datapath.ALU_DC;
    Datapath.DC_RF;
  ]

let optimal_config ?engine ~runner ~machine ~program ~k () =
  let budget = 9 * k in
  let config, _ =
    Optimizer.optimal ~budget ~per_connection_max:(2 * k)
      ~map:(Runner.map runner)
      ~objective:(Runner.objective ?engine runner ~machine ~program)
      ()
  in
  config

let run_rows ?engine ~runner ~machine ~program specs =
  let records =
    Runner.experiments ?engine runner ~machine ~program (List.map snd specs)
  in
  List.mapi
    (fun i ((label, _config), record) -> { index = i + 1; label; record })
    (List.combine specs records)

let common_head =
  [ ("All 0 (ideal)", Config.zero) ]
  @ List.map
      (fun conn ->
        (Printf.sprintf "Only %s" (Datapath.connection_name conn), Config.only conn 1))
      single_rs_order

let sort_rows ?engine ?(values = Programs.sort_values ~seed:1 ~n:16) ?runner ~machine () =
  let runner = match runner with Some r -> r | None -> Runner.default () in
  let program = Programs.extraction_sort ~values in
  let specs =
    common_head
    @ [
        ("All 1 (no CU-IC)", Config.uniform ~except:[ Datapath.CU_IC ] 1);
        ("Optimal 1 (no CU-IC)", optimal_config ?engine ~runner ~machine ~program ~k:1 ());
      ]
  in
  run_rows ?engine ~runner ~machine ~program specs

let matmul_rows ?engine ?(n = 5) ?runner ~machine () =
  let runner = match runner with Some r -> r | None -> Runner.default () in
  let program =
    Programs.matrix_multiply ~n ~a:(Programs.matrix_values ~seed:2 ~n)
      ~b:(Programs.matrix_values ~seed:3 ~n)
  in
  let all1 = Config.uniform ~except:[ Datapath.CU_IC ] 1 in
  let all1_and_2 conn =
    ( Printf.sprintf "All 1 and 2 %s" (Datapath.connection_name conn),
      (* "All 1" leaves CU-IC at zero unless CU-IC itself is doubled. *)
      Config.set all1 conn 2 )
  in
  let specs =
    common_head
    @ [ ("All 1 (no CU-IC)", all1) ]
    @ List.map all1_and_2 single_rs_order
    @ [
        ("Optimal 2 (no CU-IC)", optimal_config ?engine ~runner ~machine ~program ~k:2 ());
        ("All 2 (no CU-IC)", Config.uniform ~except:[ Datapath.CU_IC ] 2);
        ( "All 2 and 1 CU-RF",
          Config.set (Config.uniform ~except:[ Datapath.CU_IC ] 2) Datapath.CU_RF 1 );
      ]
  in
  run_rows ?engine ~runner ~machine ~program specs

let render ~title rows =
  let module T = Wp_util.Text_table in
  let t =
    T.create
      ~columns:
        [
          ("#", T.Right);
          ("RS Configuration", T.Left);
          ("Cycles (WP2)", T.Right);
          ("Th WP1 bound", T.Right);
          ("Th WP1 sim", T.Right);
          ("Th WP2 sim", T.Right);
          ("WP2 vs WP1", T.Right);
        ]
  in
  T.add_span_row t title;
  T.add_separator t;
  List.iter
    (fun row ->
      let r = row.record in
      T.add_row t
        [
          string_of_int row.index;
          row.label;
          string_of_int r.Experiment.wp2.Wp_soc.Cpu.cycles;
          Printf.sprintf "%.3f" r.Experiment.wp1_bound;
          Printf.sprintf "%.3f" r.Experiment.th_wp1;
          Printf.sprintf "%.3f" r.Experiment.th_wp2;
          Printf.sprintf "%+.0f%%" r.Experiment.gain_percent;
        ])
    rows;
  T.render t

let csv_field s =
  let needs_quoting = String.exists (fun c -> c = ',' || c = '"' || c = '\n') s in
  if needs_quoting then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "index,configuration,wp2_cycles,wp1_bound,th_wp1,th_wp2,gain_percent\n";
  List.iter
    (fun row ->
      let r = row.record in
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%d,%.4f,%.4f,%.4f,%.2f\n" row.index (csv_field row.label)
           r.Experiment.wp2.Wp_soc.Cpu.cycles r.Experiment.wp1_bound r.Experiment.th_wp1
           r.Experiment.th_wp2 r.Experiment.gain_percent))
    rows;
  Buffer.contents buf

(* Paper Table 1 (pipelined case): row, label, Th WP1, Th WP2. *)
let paper_reference ~workload =
  match workload with
  | `Sort ->
    [
      (1, "All 0 (ideal)", 1.0, 1.0);
      (2, "Only CU-RF", 0.75, 0.75);
      (3, "Only CU-AL", 0.667, 0.75);
      (4, "Only CU-DC", 0.75, 0.75);
      (5, "Only CU-IC", 0.5, 0.5);
      (6, "Only RF-ALU", 0.667, 0.83);
      (7, "Only RF-DC", 0.667, 0.99);
      (8, "Only ALU-CU", 0.667, 0.93);
      (9, "Only ALU-RF", 0.667, 0.92);
      (10, "Only ALU-DC", 0.667, 0.96);
      (11, "Only DC-RF", 0.667, 0.96);
      (12, "All 1 (no CU-IC)", 0.5, 0.67);
      (13, "Optimal 1 (no CU-IC)", 0.667, 0.80);
    ]
  | `Matmul ->
    [
      (1, "All 0 (ideal)", 1.0, 1.0);
      (2, "Only CU-RF", 0.75, 0.75);
      (3, "Only CU-AL", 0.667, 0.75);
      (4, "Only CU-DC", 0.75, 0.75);
      (5, "Only CU-IC", 0.5, 0.5);
      (6, "Only RF-ALU", 0.667, 0.77);
      (7, "Only RF-DC", 0.667, 0.98);
      (8, "Only ALU-CU", 0.667, 0.97);
      (9, "Only ALU-RF", 0.667, 0.81);
      (10, "Only ALU-DC", 0.667, 0.91);
      (11, "Only DC-RF", 0.667, 0.93);
      (12, "All 1 (no CU-IC)", 0.5, 0.59);
      (13, "All 1 and 2 CU-RF", 0.5, 0.58);
      (14, "All 1 and 2 CU-AL", 0.4, 0.59);
      (15, "All 1 and 2 CU-DC", 0.5, 0.59);
      (16, "All 1 and 2 CU-IC", 0.33, 0.33);
      (17, "All 1 and 2 RF-ALU", 0.4, 0.50);
      (18, "All 1 and 2 RF-DC", 0.4, 0.59);
      (19, "All 1 and 2 ALU-CU", 0.4, 0.58);
      (20, "All 1 and 2 ALU-RF", 0.4, 0.53);
      (21, "All 1 and 2 ALU-DC", 0.4, 0.56);
      (22, "All 1 and 2 DC-RF", 0.4, 0.56);
      (23, "Optimal 2 (no CU-IC)", 0.4, 0.56);
      (24, "All 2 (no CU-IC)", 0.33, 0.42);
      (25, "All 2 and 1 CU-RF", 0.33, 0.42);
    ]
