module Datapath = Wp_soc.Datapath
module Programs = Wp_soc.Programs
module Cpu = Wp_soc.Cpu
module Telemetry = Wp_sim.Telemetry

type row = {
  index : int;
  label : string;
  record : Experiment.record;
}

(* Table 1 lists the single-RS rows in this order. *)
let single_rs_order =
  [
    Datapath.CU_RF;
    Datapath.CU_AL;
    Datapath.CU_DC;
    Datapath.CU_IC;
    Datapath.RF_ALU;
    Datapath.RF_DC;
    Datapath.ALU_CU;
    Datapath.ALU_RF;
    Datapath.ALU_DC;
    Datapath.DC_RF;
  ]

let optimal_config ~spec ~runner ~machine ~program ~k () =
  (* The optimiser probes WP2 throughput only; running its shortlist with
     telemetry on would instrument hundreds of throwaway runs (and key
     them apart from plain probes), so the objective always uses the
     uninstrumented spec. *)
  let probe_spec = { spec with Run_spec.telemetry = Telemetry.off } in
  let search =
    { Optimizer.default_search with Optimizer.budget = 9 * k; per_connection_max = 2 * k }
  in
  let config, _ =
    Optimizer.optimal ~search
      ~map:(Runner.map runner)
      ~objective:(Runner.objective_spec ~spec:probe_spec runner ~machine ~program)
      ()
  in
  config

let run_rows ~spec ~runner ~machine ~program specs =
  let records =
    Runner.experiments_spec ~spec runner ~machine ~program (List.map snd specs)
  in
  List.mapi
    (fun i ((label, _config), record) -> { index = i + 1; label; record })
    (List.combine specs records)

let common_head =
  [ ("All 0 (ideal)", Config.zero) ]
  @ List.map
      (fun conn ->
        (Printf.sprintf "Only %s" (Datapath.connection_name conn), Config.only conn 1))
      single_rs_order

let sort_rows ?(spec = Run_spec.default) ?(values = Programs.sort_values ~seed:1 ~n:16)
    ?runner ~machine () =
  let runner = match runner with Some r -> r | None -> Runner.default () in
  let program = Programs.extraction_sort ~values in
  let specs =
    common_head
    @ [
        ("All 1 (no CU-IC)", Config.uniform ~except:[ Datapath.CU_IC ] 1);
        ("Optimal 1 (no CU-IC)", optimal_config ~spec ~runner ~machine ~program ~k:1 ());
      ]
  in
  run_rows ~spec ~runner ~machine ~program specs

let matmul_rows ?(spec = Run_spec.default) ?(n = 5) ?runner ~machine () =
  let runner = match runner with Some r -> r | None -> Runner.default () in
  let program =
    Programs.matrix_multiply ~n ~a:(Programs.matrix_values ~seed:2 ~n)
      ~b:(Programs.matrix_values ~seed:3 ~n)
  in
  let all1 = Config.uniform ~except:[ Datapath.CU_IC ] 1 in
  let all1_and_2 conn =
    ( Printf.sprintf "All 1 and 2 %s" (Datapath.connection_name conn),
      (* "All 1" leaves CU-IC at zero unless CU-IC itself is doubled. *)
      Config.set all1 conn 2 )
  in
  let specs =
    common_head
    @ [ ("All 1 (no CU-IC)", all1) ]
    @ List.map all1_and_2 single_rs_order
    @ [
        ("Optimal 2 (no CU-IC)", optimal_config ~spec ~runner ~machine ~program ~k:2 ());
        ("All 2 (no CU-IC)", Config.uniform ~except:[ Datapath.CU_IC ] 2);
        ( "All 2 and 1 CU-RF",
          Config.set (Config.uniform ~except:[ Datapath.CU_IC ] 2) Datapath.CU_RF 1 );
      ]
  in
  run_rows ~spec ~runner ~machine ~program specs

let render ~title rows =
  let module T = Wp_util.Text_table in
  let t =
    T.create
      ~columns:
        [
          ("#", T.Right);
          ("RS Configuration", T.Left);
          ("Cycles (WP2)", T.Right);
          ("Th WP1 bound", T.Right);
          ("Th WP1 sim", T.Right);
          ("Th WP2 sim", T.Right);
          ("WP2 vs WP1", T.Right);
        ]
  in
  T.add_span_row t title;
  T.add_separator t;
  List.iter
    (fun row ->
      let r = row.record in
      T.add_row t
        [
          string_of_int row.index;
          row.label;
          string_of_int r.Experiment.wp2.Wp_soc.Cpu.cycles;
          Printf.sprintf "%.3f" r.Experiment.wp1_bound;
          Printf.sprintf "%.3f" r.Experiment.th_wp1;
          Printf.sprintf "%.3f" r.Experiment.th_wp2;
          Printf.sprintf "%+.0f%%" r.Experiment.gain_percent;
        ])
    rows;
  T.render t

let csv_field s =
  let needs_quoting = String.exists (fun c -> c = ',' || c = '"' || c = '\n') s in
  if needs_quoting then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "index,configuration,wp2_cycles,wp1_bound,th_wp1,th_wp2,gain_percent\n";
  List.iter
    (fun row ->
      let r = row.record in
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%d,%.4f,%.4f,%.4f,%.2f\n" row.index (csv_field row.label)
           r.Experiment.wp2.Wp_soc.Cpu.cycles r.Experiment.wp1_bound r.Experiment.th_wp1
           r.Experiment.th_wp2 r.Experiment.gain_percent))
    rows;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Stall attribution: the telemetry cross-check of Table 1.

   Per block, [cycles = fired + stalls], and the firing counts are
   program-determined — identical under WP1 and WP2.  Three invariants
   therefore tie the stall counters to the table:

   - {b conservation}: for the halting CU block, the WP1-vs-WP2 cycle
     delta equals the difference of its stall-cycle totals (up to the
     few start-up/drain cycles where firing counts can differ by one
     pipeline fill);
   - {b full recovery}: a WP2 (oracle) run records {e zero} oracle-skip
     anywhere — the class is defined as "an oracle shell would have
     fired", so the oracle eliminates it by construction;
   - {b skip pool bound}: the recovered delta never exceeds the largest
     per-block WP1 oracle-skip total.  The oracle only changes behaviour
     in skip-classified cycles, so every saved cycle is drawn from that
     pool; the pool is not saved in full when the configuration's loop
     bound re-saturates the WP2 run (e.g. Only CU-AL, where backpressure
     replaces part of the skip). *)
(* ------------------------------------------------------------------ *)

type attribution = {
  att_index : int;
  att_label : string;
  wp1_cycles : int;
  wp2_cycles : int;
  delta_cycles : int;
  cu_stall_delta : int;
  skip_pool : int;
  wp2_skip : int;
  att_tolerance : int;
  explained : bool;
}

let halting_block = "CU"

let nodes_of (res : Cpu.result) =
  Option.map
    (fun rep -> rep.Telemetry.summary.Telemetry.nodes)
    res.Cpu.telemetry

let find_node name nodes =
  let found = ref None in
  Array.iter
    (fun ns ->
      if !found = None && ns.Telemetry.node_name = name then found := Some ns)
    nodes;
  !found

let stalls ns = Telemetry.node_cycles ns - ns.Telemetry.fired

let max_skip nodes =
  Array.fold_left (fun m ns -> max m ns.Telemetry.oracle_skip) 0 nodes

let attribute ?(tolerance_percent = 5.0) ?(tolerance_floor = 8) rows =
  let one row =
    match
      (nodes_of row.record.Experiment.wp1, nodes_of row.record.Experiment.wp2)
    with
    | Some n1, Some n2 -> (
      match (find_node halting_block n1, find_node halting_block n2) with
      | Some cu1, Some cu2 ->
        let wp1_cycles = row.record.Experiment.wp1.Cpu.cycles in
        let wp2_cycles = row.record.Experiment.wp2.Cpu.cycles in
        let delta = wp1_cycles - wp2_cycles in
        let cu_stall_delta = stalls cu1 - stalls cu2 in
        let skip_pool = max_skip n1 in
        let wp2_skip = max_skip n2 in
        (* Relative tolerance on the larger quantity in play, with a
           small absolute floor so zero-delta rows (All 0, Only CU-IC)
           tolerate the start-up/drain cycles attributed before the
           pipeline reaches steady state. *)
        let tol =
          max tolerance_floor
            (int_of_float
               (ceil
                  (tolerance_percent /. 100.
                  *. float_of_int (max (abs delta) skip_pool))))
        in
        Some
          {
            att_index = row.index;
            att_label = row.label;
            wp1_cycles;
            wp2_cycles;
            delta_cycles = delta;
            cu_stall_delta;
            skip_pool;
            wp2_skip;
            att_tolerance = tol;
            explained =
              abs (delta - cu_stall_delta) <= tol
              && delta <= skip_pool + tol
              && wp2_skip = 0;
          }
      | _ -> None)
    | _ -> None
  in
  let atts = List.filter_map one rows in
  if atts = [] then None else Some atts

let merged_summary rows =
  List.fold_left
    (fun acc row ->
      let fold acc (res : Cpu.result) =
        match res.Cpu.telemetry with
        | None -> acc
        | Some rep -> Telemetry.merge_opt acc rep.Telemetry.summary
      in
      fold (fold acc row.record.Experiment.wp1) row.record.Experiment.wp2)
    None rows

let render_attribution atts =
  let module T = Wp_util.Text_table in
  let t =
    T.create
      ~columns:
        [
          ("#", T.Right);
          ("RS Configuration", T.Left);
          ("WP1 cyc", T.Right);
          ("WP2 cyc", T.Right);
          ("Delta", T.Right);
          ("CU stall d", T.Right);
          ("Skip pool", T.Right);
          ("Recovered", T.Right);
          ("OK", T.Left);
        ]
  in
  T.add_span_row t
    "Delta = CU stall difference; recovered cycles drawn from the WP1 \
     oracle-skip pool";
  T.add_separator t;
  List.iter
    (fun a ->
      T.add_row t
        [
          string_of_int a.att_index;
          a.att_label;
          string_of_int a.wp1_cycles;
          string_of_int a.wp2_cycles;
          string_of_int a.delta_cycles;
          string_of_int a.cu_stall_delta;
          string_of_int a.skip_pool;
          (if a.skip_pool = 0 then "-"
           else
             Printf.sprintf "%.1f%%"
               (100. *. float_of_int a.delta_cycles /. float_of_int a.skip_pool));
          (if a.explained then "yes" else "NO");
        ])
    atts;
  T.render t

let render_stall_report ~title rows =
  match merged_summary rows with
  | None ->
    Printf.sprintf
      "%s: no telemetry recorded — rerun with --stall-report (or a spec whose \
       telemetry is enabled)"
      title
  | Some sum ->
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (title ^ "\n\n");
    (match attribute rows with
    | None -> ()
    | Some atts ->
      Buffer.add_string buf (render_attribution atts);
      Buffer.add_char buf '\n');
    Buffer.add_string buf (Telemetry.to_table sum);
    Buffer.contents buf

(* Paper Table 1 (pipelined case): row, label, Th WP1, Th WP2. *)
let paper_reference ~workload =
  match workload with
  | `Sort ->
    [
      (1, "All 0 (ideal)", 1.0, 1.0);
      (2, "Only CU-RF", 0.75, 0.75);
      (3, "Only CU-AL", 0.667, 0.75);
      (4, "Only CU-DC", 0.75, 0.75);
      (5, "Only CU-IC", 0.5, 0.5);
      (6, "Only RF-ALU", 0.667, 0.83);
      (7, "Only RF-DC", 0.667, 0.99);
      (8, "Only ALU-CU", 0.667, 0.93);
      (9, "Only ALU-RF", 0.667, 0.92);
      (10, "Only ALU-DC", 0.667, 0.96);
      (11, "Only DC-RF", 0.667, 0.96);
      (12, "All 1 (no CU-IC)", 0.5, 0.67);
      (13, "Optimal 1 (no CU-IC)", 0.667, 0.80);
    ]
  | `Matmul ->
    [
      (1, "All 0 (ideal)", 1.0, 1.0);
      (2, "Only CU-RF", 0.75, 0.75);
      (3, "Only CU-AL", 0.667, 0.75);
      (4, "Only CU-DC", 0.75, 0.75);
      (5, "Only CU-IC", 0.5, 0.5);
      (6, "Only RF-ALU", 0.667, 0.77);
      (7, "Only RF-DC", 0.667, 0.98);
      (8, "Only ALU-CU", 0.667, 0.97);
      (9, "Only ALU-RF", 0.667, 0.81);
      (10, "Only ALU-DC", 0.667, 0.91);
      (11, "Only DC-RF", 0.667, 0.93);
      (12, "All 1 (no CU-IC)", 0.5, 0.59);
      (13, "All 1 and 2 CU-RF", 0.5, 0.58);
      (14, "All 1 and 2 CU-AL", 0.4, 0.59);
      (15, "All 1 and 2 CU-DC", 0.5, 0.59);
      (16, "All 1 and 2 CU-IC", 0.33, 0.33);
      (17, "All 1 and 2 RF-ALU", 0.4, 0.50);
      (18, "All 1 and 2 RF-DC", 0.4, 0.59);
      (19, "All 1 and 2 ALU-CU", 0.4, 0.58);
      (20, "All 1 and 2 ALU-RF", 0.4, 0.53);
      (21, "All 1 and 2 ALU-DC", 0.4, 0.56);
      (22, "All 1 and 2 DC-RF", 0.4, 0.56);
      (23, "Optimal 2 (no CU-IC)", 0.4, 0.56);
      (24, "All 2 (no CU-IC)", 0.33, 0.42);
      (25, "All 2 and 1 CU-RF", 0.33, 0.42);
    ]
