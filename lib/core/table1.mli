(** The driver that regenerates the paper's Table 1.

    Rows (per workload): the ideal system; one RS on each of the ten
    connections; [All 1 (no CU-IC)]; an optimised 1-RS-class placement;
    and, for matrix multiply, the [All 1 and 2 X] family, the optimised
    2-RS-class placement, [All 2 (no CU-IC)] and [All 2 and 1 CU-RF] —
    the same 13 + 25 row structure as the paper.

    "Optimal k (no CU-IC)" is defined as: the placement of the same total
    relay-station budget as [All k (no CU-IC)] (nine connections, k each),
    at most 2k per connection, maximising simulated WP2 throughput (the
    paper does not spell its criterion out; this one is recorded in
    EXPERIMENTS.md). *)

type row = {
  index : int;                 (** 1-based row number, as in the paper *)
  label : string;              (** e.g. ["Only CU-RF"] *)
  record : Experiment.record;
}

val single_rs_order : Wp_soc.Datapath.connection list
(** The ten single-RS rows of Table 1, in the paper's order — also the
    canonical connection enumeration for schedule goldens and the
    static-rate cross-checks. *)

val sort_rows :
  ?spec:Run_spec.t ->
  ?values:int array ->
  ?runner:Runner.t ->
  machine:Wp_soc.Datapath.machine ->
  unit ->
  row list
(** The 13 extraction-sort rows.  Default workload: 16 pseudo-random
    values (seed 1).  [spec] carries every run parameter (engine,
    telemetry, fault, protection, …; default {!Run_spec.default}) — the
    former [engine] shorthand is gone, build a spec with
    [Run_spec.v ~engine ()].  Both kernels produce byte-identical
    tables.  Rows are simulated
    through [runner] (default {!Runner.default}): fan-out across its
    worker pool, memoised in its result cache, byte-identical output for
    any job count.  The optimiser's objective probes always run with
    telemetry off — only the 13/25 table rows are instrumented. *)

val matmul_rows :
  ?spec:Run_spec.t ->
  ?n:int ->
  ?runner:Runner.t ->
  machine:Wp_soc.Datapath.machine ->
  unit ->
  row list
(** The 25 matrix-multiply rows.  Default: 5x5 matrices (seed 2/3) — large
    enough to show every trend, small enough to simulate 25 configurations
    quickly; pass [n] to scale up.  Same [spec]/[runner] contract as
    {!sort_rows}. *)

val render : title:string -> row list -> string
(** Text table in the paper's column layout: RS configuration, WP2 cycles,
    Th WP1 (static bound and simulated), Th WP2, gain. *)

val to_csv : row list -> string
(** Machine-readable export: header plus one line per row with label,
    WP2 cycles, static bound, simulated WP1/WP2 throughput and gain.
    Labels containing commas or quotes are quoted per RFC 4180. *)

val paper_reference : workload:[ `Sort | `Matmul ] -> (int * string * float * float) list
(** The published numbers: (row index, label, Th WP1, Th WP2) from the
    paper's Table 1 (pipelined case), for side-by-side reporting. *)

(** {1 Stall attribution}

    The telemetry cross-check of Table 1.  Per block,
    [cycles = fired + stalls] and the firing counts are
    program-determined — identical under WP1 and WP2 — so each row's
    WP1-vs-WP2 cycle delta must satisfy three invariants:

    - {b conservation}: the delta equals the CU block's stall-cycle
      difference between the two runs;
    - {b full recovery}: the WP2 (oracle) run records zero oracle-skip
      anywhere — the oracle eliminates the class by construction;
    - {b skip pool bound}: the delta never exceeds the largest
      per-block WP1 oracle-skip total (the oracle only changes
      behaviour in skip-classified cycles, so every recovered cycle is
      drawn from that pool; loop-bound configurations recover only part
      of it). *)

type attribution = {
  att_index : int;
  att_label : string;
  wp1_cycles : int;
  wp2_cycles : int;
  delta_cycles : int;       (** [wp1_cycles - wp2_cycles] *)
  cu_stall_delta : int;     (** CU stall cycles, WP1 minus WP2 *)
  skip_pool : int;          (** largest per-block WP1 oracle-skip total *)
  wp2_skip : int;           (** largest per-block WP2 oracle-skip (must be 0) *)
  att_tolerance : int;      (** cycles of slack granted to this row *)
  explained : bool;
      (** [|delta - cu_stall_delta| <= tol && delta <= skip_pool + tol
          && wp2_skip = 0] *)
}

val attribute :
  ?tolerance_percent:float ->
  ?tolerance_floor:int ->
  row list ->
  attribution list option
(** Per-row attribution for rows that carry WP1+WP2 telemetry; [None]
    when no row does (telemetry was off).  The tolerance is
    [max floor (percent/100 * max |delta| skip_pool)] — default 5% with
    an 8-cycle floor, so zero-delta rows tolerate the few start-up/drain
    cycles attributed before steady state. *)

val merged_summary : row list -> Wp_sim.Telemetry.summary option
(** Pointwise-merged WP1+WP2 telemetry over all rows ([None] when
    telemetry was off). *)

val render_stall_report : title:string -> row list -> string
(** The [--stall-report] rendering: the attribution table (when
    available) followed by the merged {!Wp_sim.Telemetry.to_table}
    stall/channel report; a one-line hint when telemetry was off. *)
