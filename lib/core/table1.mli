(** The driver that regenerates the paper's Table 1.

    Rows (per workload): the ideal system; one RS on each of the ten
    connections; [All 1 (no CU-IC)]; an optimised 1-RS-class placement;
    and, for matrix multiply, the [All 1 and 2 X] family, the optimised
    2-RS-class placement, [All 2 (no CU-IC)] and [All 2 and 1 CU-RF] —
    the same 13 + 25 row structure as the paper.

    "Optimal k (no CU-IC)" is defined as: the placement of the same total
    relay-station budget as [All k (no CU-IC)] (nine connections, k each),
    at most 2k per connection, maximising simulated WP2 throughput (the
    paper does not spell its criterion out; this one is recorded in
    EXPERIMENTS.md). *)

type row = {
  index : int;                 (** 1-based row number, as in the paper *)
  label : string;              (** e.g. ["Only CU-RF"] *)
  record : Experiment.record;
}

val sort_rows :
  ?engine:Wp_sim.Sim.kind ->
  ?values:int array ->
  ?runner:Runner.t ->
  machine:Wp_soc.Datapath.machine ->
  unit ->
  row list
(** The 13 extraction-sort rows.  Default workload: 16 pseudo-random
    values (seed 1).  [engine] picks the simulation kernel for every row
    (default {!Wp_sim.Sim.default_kind}); both kernels produce
    byte-identical tables.  Rows are simulated through [runner] (default
    {!Runner.default}): fan-out across its worker pool, memoised in its
    result cache, byte-identical output for any job count. *)

val matmul_rows :
  ?engine:Wp_sim.Sim.kind ->
  ?n:int ->
  ?runner:Runner.t ->
  machine:Wp_soc.Datapath.machine ->
  unit ->
  row list
(** The 25 matrix-multiply rows.  Default: 5x5 matrices (seed 2/3) — large
    enough to show every trend, small enough to simulate 25 configurations
    quickly; pass [n] to scale up.  Same [runner] contract as
    {!sort_rows}. *)

val render : title:string -> row list -> string
(** Text table in the paper's column layout: RS configuration, WP2 cycles,
    Th WP1 (static bound and simulated), Th WP2, gain. *)

val to_csv : row list -> string
(** Machine-readable export: header plus one line per row with label,
    WP2 cycles, static bound, simulated WP1/WP2 throughput and gain.
    Labels containing commas or quotes are quoted per RFC 4180. *)

val paper_reference : workload:[ `Sort | `Matmul ] -> (int * string * float * float) list
(** The published numbers: (row index, label, Th WP1, Th WP2) from the
    paper's Table 1 (pipelined case), for side-by-side reporting. *)
