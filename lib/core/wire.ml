(* Binary codec for the serve daemon.  See wire.mli for the model.

   Layout: every payload is [tag:u32][type:u8][fields...].  Strings are
   [len:u32][bytes]; options are [present:u8][value]; booleans are one
   byte; floats travel as IEEE-754 bits in a u64.  All integers are
   big-endian, matching the Frame length prefix. *)

type run_args = {
  rq_program : string;
  rq_machine : string;
  rq_config : string;
  rq_engine : string option;
  rq_capacity : int;
  rq_max_cycles : int option;
  rq_fault : string option;
  rq_fault_seed : int;
  rq_protect : string option;
  rq_link_window : int;
  rq_link_timeout : int;
  rq_stall_report : bool;
  rq_trace_depth : int;
  rq_deadline_ms : int option;
  rq_priority : int;
}

let run_defaults ~program ~machine ~config =
  {
    rq_program = program;
    rq_machine = machine;
    rq_config = config;
    rq_engine = None;
    rq_capacity = 2;
    rq_max_cycles = None;
    rq_fault = None;
    rq_fault_seed = 0;
    rq_protect = None;
    rq_link_window = 0;
    rq_link_timeout = 0;
    rq_stall_report = false;
    rq_trace_depth = 0;
    rq_deadline_ms = None;
    rq_priority = 1;
  }

type request =
  | Run of run_args
  | Ping
  | Stats

type summary = {
  rs_program : string;
  rs_machine : string;
  rs_config : string;
  rs_golden_cycles : int;
  rs_wp1_cycles : int;
  rs_wp2_cycles : int;
  rs_th_wp1 : float;
  rs_th_wp2 : float;
  rs_gain_percent : float;
  rs_from_cache : bool;
}

type reply =
  | Result of summary
  | Busy of { retry_after_ms : int }
  | Error of string
  | Quarantined of { attempts : int; last_error : string; repro : string }
  | Pong
  | Stats_reply of {
      st_jobs : int;
      st_tasks_run : int;
      st_cache_hits : int;
      st_cache_misses : int;
      st_quarantined : int;
      st_expired : int;
      st_shed : int;
      st_breaker_trips : int;
      st_slow_disconnects : int;
      st_stale_reaped : int;
      st_cache_corrupt : int;
    }
  | Deadline_exceeded of string

(* --- encoding ------------------------------------------------------- *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))
let put_u32 buf v = Buffer.add_int32_be buf (Int32.of_int v)
let put_bool buf v = put_u8 buf (if v then 1 else 0)
let put_f64 buf v = Buffer.add_int64_be buf (Int64.bits_of_float v)

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_opt put buf = function
  | None -> put_u8 buf 0
  | Some v ->
    put_u8 buf 1;
    put buf v

(* Optional ints ([max_cycles], [deadline_ms]) are flat-encoded as -1
   for [None]; neither has -1 as a legal value, so the encoding is
   unambiguous. *)
let put_opt_int buf = function
  | None -> put_u32 buf (-1)
  | Some v -> put_u32 buf v

let encode_request ~tag req =
  let buf = Buffer.create 64 in
  put_u32 buf tag;
  (match req with
  | Ping -> put_u8 buf 1
  | Stats -> put_u8 buf 2
  | Run a ->
    put_u8 buf 0;
    put_str buf a.rq_program;
    put_str buf a.rq_machine;
    put_str buf a.rq_config;
    put_opt put_str buf a.rq_engine;
    put_u32 buf a.rq_capacity;
    put_opt_int buf a.rq_max_cycles;
    put_opt put_str buf a.rq_fault;
    put_u32 buf a.rq_fault_seed;
    put_opt put_str buf a.rq_protect;
    put_u32 buf a.rq_link_window;
    put_u32 buf a.rq_link_timeout;
    put_bool buf a.rq_stall_report;
    put_u32 buf a.rq_trace_depth;
    put_opt_int buf a.rq_deadline_ms;
    put_u32 buf a.rq_priority);
  Buffer.contents buf

let encode_reply ~tag reply =
  let buf = Buffer.create 64 in
  put_u32 buf tag;
  (match reply with
  | Result s ->
    put_u8 buf 0;
    put_str buf s.rs_program;
    put_str buf s.rs_machine;
    put_str buf s.rs_config;
    put_u32 buf s.rs_golden_cycles;
    put_u32 buf s.rs_wp1_cycles;
    put_u32 buf s.rs_wp2_cycles;
    put_f64 buf s.rs_th_wp1;
    put_f64 buf s.rs_th_wp2;
    put_f64 buf s.rs_gain_percent;
    put_bool buf s.rs_from_cache
  | Busy b ->
    put_u8 buf 1;
    put_u32 buf b.retry_after_ms
  | Error msg ->
    put_u8 buf 2;
    put_str buf msg
  | Quarantined q ->
    put_u8 buf 3;
    put_u32 buf q.attempts;
    put_str buf q.last_error;
    put_str buf q.repro
  | Pong -> put_u8 buf 4
  | Stats_reply s ->
    put_u8 buf 5;
    put_u32 buf s.st_jobs;
    put_u32 buf s.st_tasks_run;
    put_u32 buf s.st_cache_hits;
    put_u32 buf s.st_cache_misses;
    put_u32 buf s.st_quarantined;
    put_u32 buf s.st_expired;
    put_u32 buf s.st_shed;
    put_u32 buf s.st_breaker_trips;
    put_u32 buf s.st_slow_disconnects;
    put_u32 buf s.st_stale_reaped;
    put_u32 buf s.st_cache_corrupt
  | Deadline_exceeded msg ->
    put_u8 buf 6;
    put_str buf msg);
  Buffer.contents buf

(* --- decoding ------------------------------------------------------- *)

exception Bad of string

type cursor = { data : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.data then raise (Bad "truncated payload")

let get_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_be c.data c.pos) in
  c.pos <- c.pos + 4;
  v

let get_bool c = get_u8 c <> 0

let get_f64 c =
  need c 8;
  let v = Int64.float_of_bits (String.get_int64_be c.data c.pos) in
  c.pos <- c.pos + 8;
  v

let get_str c =
  let n = get_u32 c in
  if n < 0 then raise (Bad "negative string length");
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_opt get c = if get_u8 c = 0 then None else Some (get c)

let get_opt_int c =
  let v = get_u32 c in
  if v = -1 then None else Some v

let decode payload f =
  let c = { data = payload; pos = 0 } in
  match
    let tag = get_u32 c in
    (tag, f c)
  with
  | v -> Ok v
  | exception Bad msg -> Result.Error msg

let decode_request payload =
  decode payload (fun c ->
      match get_u8 c with
      | 1 -> Ping
      | 2 -> Stats
      | 0 ->
        let rq_program = get_str c in
        let rq_machine = get_str c in
        let rq_config = get_str c in
        let rq_engine = get_opt get_str c in
        let rq_capacity = get_u32 c in
        let rq_max_cycles = get_opt_int c in
        let rq_fault = get_opt get_str c in
        let rq_fault_seed = get_u32 c in
        let rq_protect = get_opt get_str c in
        let rq_link_window = get_u32 c in
        let rq_link_timeout = get_u32 c in
        let rq_stall_report = get_bool c in
        let rq_trace_depth = get_u32 c in
        let rq_deadline_ms = get_opt_int c in
        let rq_priority = get_u32 c in
        Run
          {
            rq_program;
            rq_machine;
            rq_config;
            rq_engine;
            rq_capacity;
            rq_max_cycles;
            rq_fault;
            rq_fault_seed;
            rq_protect;
            rq_link_window;
            rq_link_timeout;
            rq_stall_report;
            rq_trace_depth;
            rq_deadline_ms;
            rq_priority;
          }
      | t -> raise (Bad (Printf.sprintf "unknown request type %d" t)))

let decode_reply payload =
  decode payload (fun c ->
      match get_u8 c with
      | 0 ->
        let rs_program = get_str c in
        let rs_machine = get_str c in
        let rs_config = get_str c in
        let rs_golden_cycles = get_u32 c in
        let rs_wp1_cycles = get_u32 c in
        let rs_wp2_cycles = get_u32 c in
        let rs_th_wp1 = get_f64 c in
        let rs_th_wp2 = get_f64 c in
        let rs_gain_percent = get_f64 c in
        let rs_from_cache = get_bool c in
        Result
          {
            rs_program;
            rs_machine;
            rs_config;
            rs_golden_cycles;
            rs_wp1_cycles;
            rs_wp2_cycles;
            rs_th_wp1;
            rs_th_wp2;
            rs_gain_percent;
            rs_from_cache;
          }
      | 1 ->
        let retry_after_ms = get_u32 c in
        Busy { retry_after_ms }
      | 2 -> Error (get_str c)
      | 3 ->
        let attempts = get_u32 c in
        let last_error = get_str c in
        let repro = get_str c in
        Quarantined { attempts; last_error; repro }
      | 4 -> Pong
      | 5 ->
        let st_jobs = get_u32 c in
        let st_tasks_run = get_u32 c in
        let st_cache_hits = get_u32 c in
        let st_cache_misses = get_u32 c in
        let st_quarantined = get_u32 c in
        let st_expired = get_u32 c in
        let st_shed = get_u32 c in
        let st_breaker_trips = get_u32 c in
        let st_slow_disconnects = get_u32 c in
        let st_stale_reaped = get_u32 c in
        let st_cache_corrupt = get_u32 c in
        Stats_reply
          {
            st_jobs;
            st_tasks_run;
            st_cache_hits;
            st_cache_misses;
            st_quarantined;
            st_expired;
            st_shed;
            st_breaker_trips;
            st_slow_disconnects;
            st_stale_reaped;
            st_cache_corrupt;
          }
      | 6 -> Deadline_exceeded (get_str c)
      | t -> raise (Bad (Printf.sprintf "unknown reply type %d" t)))

(* --- request resolution -------------------------------------------- *)

let parse_run (a : run_args) =
  let ( let* ) = Result.bind in
  let* program = Wp_soc.Programs.of_string a.rq_program in
  let* machine =
    match Wp_soc.Datapath.machine_of_name a.rq_machine with
    | Some m -> Ok m
    | None ->
      Error
        (Printf.sprintf "unknown machine %S (want pipelined, btfn or multicycle)"
           a.rq_machine)
  in
  let* config = Config.of_string a.rq_config in
  let* spec =
    Run_spec.of_args ?engine:a.rq_engine ~capacity:a.rq_capacity
      ?max_cycles:a.rq_max_cycles ?fault:a.rq_fault ~fault_seed:a.rq_fault_seed
      ?protect:a.rq_protect ~link_window:a.rq_link_window
      ~link_timeout:a.rq_link_timeout ~stall_report:a.rq_stall_report
      ~trace_depth:a.rq_trace_depth ?deadline_ms:a.rq_deadline_ms ()
  in
  (* The deadline clock starts here, at parse time — i.e. at arrival in
     the daemon — not when a dispatcher thread finally picks the request
     up: time spent queued behind a saturated pool counts against the
     client's budget, which is the whole point of a deadline. *)
  let cancel =
    match spec.Run_spec.deadline_ms with
    | Some ms -> Wp_util.Cancel.create ~deadline_ms:ms ()
    | None -> Wp_util.Cancel.never
  in
  Ok
    {
      Runner.req_spec = spec;
      req_machine = machine;
      req_program = program;
      req_config = config;
      req_cancel = cancel;
    }

let summary_of_record ~from_cache (r : Experiment.record) =
  {
    rs_program = r.Experiment.program_name;
    rs_machine = Wp_soc.Datapath.machine_name r.Experiment.machine;
    rs_config = Config.describe r.Experiment.config;
    rs_golden_cycles = r.Experiment.golden_cycles;
    rs_wp1_cycles = r.Experiment.wp1.Wp_soc.Cpu.cycles;
    rs_wp2_cycles = r.Experiment.wp2.Wp_soc.Cpu.cycles;
    rs_th_wp1 = r.Experiment.th_wp1;
    rs_th_wp2 = r.Experiment.th_wp2;
    rs_gain_percent = r.Experiment.gain_percent;
    rs_from_cache = from_cache;
  }
