(** Binary wire protocol for the [wp_cli serve] daemon.

    Every message travels as one {!Wp_util.Frame} (4-byte big-endian
    length prefix) whose payload starts with a 32-bit client-chosen tag.
    The tag is echoed verbatim in the reply, so a client may pipeline
    requests and match replies out of order — which is exactly how the
    daemon's busy-backpressure works: a [Busy] reply for an over-quota
    request overtakes the results still being computed.

    Requests carry the {e textual} forms of every run parameter (the
    same grammars the CLI accepts: {!Wp_soc.Programs.of_string},
    {!Wp_soc.Datapath.machine_of_name}, {!Config.of_string},
    {!Run_spec.of_args}); the daemon parses and validates them and
    answers a malformed request with [Error] instead of dying.  Replies
    carry a compact record summary, not the full marshalled record —
    the daemon's disk cache already persists those. *)

type run_args = {
  rq_program : string;  (** e.g. ["sort:16"] — {!Wp_soc.Programs.of_string} *)
  rq_machine : string;  (** e.g. ["pipelined"] *)
  rq_config : string;   (** e.g. ["CU-AL=1,DC-RF=2"] or ["none"] *)
  rq_engine : string option;      (** ["fast"] / ["ref"] / ["static"] *)
  rq_capacity : int;
  rq_max_cycles : int option;
  rq_fault : string option;       (** {!Wp_sim.Fault.of_string} clause list *)
  rq_fault_seed : int;
  rq_protect : string option;     (** {!Protect.of_string} policy *)
  rq_link_window : int;
  rq_link_timeout : int;
  rq_stall_report : bool;
  rq_trace_depth : int;
  rq_deadline_ms : int option;
      (** wall-clock budget for the whole request, measured from the
          moment the daemon parses it (queueing included); [None] = no
          bound *)
  rq_priority : int;
      (** 0 = best-effort (shed first under load), 1 = normal (default),
          2+ = critical (shed last) *)
}

val run_defaults : program:string -> machine:string -> config:string -> run_args
(** A [Run] request with every spec knob at its CLI default. *)

type request =
  | Run of run_args
  | Ping
  | Stats

type summary = {
  rs_program : string;
  rs_machine : string;
  rs_config : string;           (** {!Config.describe} form *)
  rs_golden_cycles : int;
  rs_wp1_cycles : int;
  rs_wp2_cycles : int;
  rs_th_wp1 : float;
  rs_th_wp2 : float;
  rs_gain_percent : float;
  rs_from_cache : bool;
}

type reply =
  | Result of summary
  | Busy of { retry_after_ms : int }
      (** load-shed: the daemon declined to queue the request.
          [retry_after_ms] is a jittered backoff hint — retrying sooner
          just earns another [Busy] *)
  | Error of string             (** malformed or unparseable request *)
  | Quarantined of { attempts : int; last_error : string; repro : string }
      (** the guarded runner exhausted its retries on this request *)
  | Pong
  | Stats_reply of {
      st_jobs : int;
      st_tasks_run : int;
      st_cache_hits : int;
      st_cache_misses : int;
      st_quarantined : int;
      st_expired : int;          (** requests abandoned at their deadline *)
      st_shed : int;             (** requests refused with [Busy] *)
      st_breaker_trips : int;    (** circuit-breaker open transitions *)
      st_slow_disconnects : int; (** clients dropped for not reading *)
      st_stale_reaped : int;     (** dead writers' temp files swept *)
      st_cache_corrupt : int;    (** disk entries quarantined *)
    }
  | Deadline_exceeded of string
      (** the request's [rq_deadline_ms] elapsed before (or while) it
          ran; the payload says where it stopped.  Final — the run was
          abandoned, not queued *)

val encode_request : tag:int -> request -> string
val decode_request : string -> (int * request, string) result
(** [decode_request payload] returns [(tag, request)]; a truncated or
    unknown-typed payload is an [Error] (the daemon replies [Error] with
    tag 0 if even the tag is unreadable). *)

val encode_reply : tag:int -> reply -> string
val decode_reply : string -> (int * reply, string) result

val parse_run : run_args -> (Runner.request, string) result
(** Resolve a [Run] request's strings into a runnable
    {!Runner.request}: program, machine and config through their
    library parsers, the spec knobs through {!Run_spec.of_args}.  The
    first failing field wins.  When [rq_deadline_ms] is set, the
    returned request carries a live {!Wp_util.Cancel} token whose clock
    starts {e now} — parse at arrival, so daemon queueing time counts
    against the client's budget. *)

val summary_of_record : from_cache:bool -> Experiment.record -> summary
