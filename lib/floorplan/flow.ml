module Config = Wp_core.Config
module Analysis = Wp_core.Analysis
module Datapath = Wp_soc.Datapath

let relay_stations_for ~reach length =
  if reach <= 0.0 then invalid_arg "Flow.relay_stations_for: non-positive reach";
  max 0 (int_of_float (ceil (length /. reach)) - 1)

let case_study_blocks =
  [
    Place.block ~name:"CU" ~area:0.8 ();
    Place.block ~name:"IC" ~area:2.2 ();
    Place.block ~name:"DC" ~area:2.2 ();
    Place.block ~name:"RF" ~area:0.6 ();
    Place.block ~name:"ALU" ~area:1.0 ();
  ]

let nets =
  List.map
    (fun (_, (src_block, _), (dst_block, _)) -> (src_block, dst_block))
    Datapath.topology

(* Every channel of a connection runs between the same two blocks, so one
   length per connection suffices. *)
let connection_endpoints conn =
  let _, (src_block, _), (dst_block, _) =
    List.find (fun (c, _, _) -> c = conn) Datapath.topology
  in
  (src_block, dst_block)

let config_of_placement ~reach placement =
  List.fold_left
    (fun config conn ->
      let a, b = connection_endpoints conn in
      let rs = relay_stations_for ~reach (Place.wire_length placement a b) in
      Config.set config conn rs)
    Config.zero Datapath.all_connections

type result = {
  placement : Place.placement;
  config : Config.t;
  wp1_bound : float;
  die_area : float;
  wirelength : float;
}

let result_of_placement ~reach placement =
  let config = config_of_placement ~reach placement in
  {
    placement;
    config;
    wp1_bound = Analysis.wp1_bound_float config;
    die_area = placement.Place.die.Slicing.w *. placement.Place.die.Slicing.h;
    wirelength = Place.total_wirelength placement ~nets;
  }

(* Weight chosen so the throughput term competes with die area (a few
   mm^2): losing 0.25 of loop throughput costs like 7.5 mm^2 of silicon. *)
let aware_weight = 30.0

(* The spec's abstract objective, as the case-study scalar weights. *)
let weights_of_objective = function
  | Flow_spec.Area -> (0.0, 0.0)
  | Flow_spec.Area_wire -> (0.5, 0.0)
  | Flow_spec.Aware | Flow_spec.Pareto -> (0.0, aware_weight)

let run ?(spec = Flow_spec.default) () =
  (match spec.Flow_spec.topology with
  | Flow_spec.Case_study -> ()
  | Flow_spec.Generated _ ->
    invalid_arg "Flow.run: generated topologies go through Flow_scale.run");
  let reach = spec.Flow_spec.reach in
  let prng = Wp_util.Prng.create ~seed:spec.Flow_spec.seed in
  let wirelength_weight, throughput_weight = weights_of_objective spec.Flow_spec.objective in
  let extra_cost placement =
    if throughput_weight = 0.0 then 0.0
    else begin
      let config = config_of_placement ~reach placement in
      throughput_weight *. (1.0 -. Analysis.wp1_bound_float config)
    end
  in
  let s = spec.Flow_spec.schedule in
  let schedule =
    {
      Wp_util.Anneal.steps = spec.Flow_spec.budget;
      initial_temperature =
        (if s.Flow_spec.initial_temperature > 0.0 then s.Flow_spec.initial_temperature
         else
           (* Auto: the packer's classic problem-scaled temperature. *)
           0.3
           *. List.fold_left
                (fun acc b -> acc +. b.Place.block_area)
                0.0 case_study_blocks);
      cooling = s.Flow_spec.cooling;
      plateau = s.Flow_spec.plateau;
    }
  in
  let placement =
    Place.anneal ~prng ~blocks:case_study_blocks ~nets ~wirelength_weight ~extra_cost
      ~schedule ()
  in
  result_of_placement ~reach placement

let objectives_ablation ?(spec = Flow_spec.default) () =
  let with_objective objective = { spec with Flow_spec.objective } in
  [
    ("area only", run ~spec:(with_objective Flow_spec.Area) ());
    ("area + wirelength", run ~spec:(with_objective Flow_spec.Area_wire) ());
    ("area + loop throughput", run ~spec:(with_objective Flow_spec.Aware) ());
  ]
