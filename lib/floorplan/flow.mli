(** The paper's "new system design methodology", end to end:

    floorplan the SoC -> derive per-connection wire lengths -> size each
    connection's relay-station chain from the signal reach per clock ->
    analyse the resulting loop throughput -> (optionally) let the
    floorplanner see that throughput, so that placement trades a little
    area/wirelength for shorter loops.

    A wire of length [l] needs [ceil (l / reach) - 1] relay stations:
    with reach = the distance a signal covers in one clock period, a wire
    shorter than one reach needs none. *)

val relay_stations_for : reach:float -> float -> int
(** @raise Invalid_argument if [reach <= 0]. *)

val case_study_blocks : Place.block list
(** The five blocks with representative 130 nm-class areas (mm^2):
    CU 0.8, IC 2.2, DC 2.2, RF 0.6, ALU 1.0. *)

val nets : (string * string) list
(** Block-name pairs, one per channel of {!Wp_soc.Datapath.topology}. *)

val config_of_placement : reach:float -> Place.placement -> Wp_core.Config.t
(** Size every connection from its center-to-center Manhattan length; a
    bundle (CU-IC) gets the same count on both directions by
    construction. *)

type result = {
  placement : Place.placement;
  config : Wp_core.Config.t;
  wp1_bound : float;       (** static worst-loop throughput of the config *)
  die_area : float;
  wirelength : float;      (** total over {!nets} *)
}

val run : ?spec:Flow_spec.t -> unit -> result
(** One methodology pass on the 5-block case study, every knob carried
    by the {!Flow_spec.t} (default {!Flow_spec.default}): [spec.seed]
    drives the annealer, [spec.reach] sizes the relay-station chains,
    [spec.objective] selects the cost — {!Flow_spec.Area} is area only,
    {!Flow_spec.Area_wire} adds the net-length term,
    {!Flow_spec.Aware}/{!Flow_spec.Pareto} add the [(1 - wp1_bound)]
    penalty (the wire-pipelining-aware mode) — and [spec.budget] /
    [spec.schedule] parameterise the annealing.
    @raise Invalid_argument on a {!Flow_spec.Generated} topology: the
    scaled flow is {!Flow_scale.run}. *)

val objectives_ablation : ?spec:Flow_spec.t -> unit -> (string * result) list
(** The methodology ablation, same seed throughout: floorplan driven by
    (a) area only, (b) area + wirelength, (c) area + loop throughput —
    [spec] with only its [objective] overridden per run.  The headline
    is that (c) achieves the best loop bound — on the 5-block case study
    (a) typically lands at 0.5 while (c) reaches the geometric
    optimum. *)
