module Topology = Wp_topo.Topology
module Network = Wp_sim.Network
module Static = Wp_sim.Static
module Cycle_ratio = Wp_graph.Cycle_ratio
module Howard = Wp_graph.Howard
module Prng = Wp_util.Prng
module Pool = Wp_util.Pool

let one = Cycle_ratio.make_ratio 1 1

type point = {
  die_area : float;
  wirelength : float;
  wp1_bound : Cycle_ratio.ratio;
  rs_total : int;
  cells : int array;
}

type result = {
  front : point list;
  best : point;
  walkers : int;
  rounds : int;
  moves : int;
  evaluations : int;
  cache_hits : int;
}

(* ------------------------------------------------------------------ *)
(* Geometry: generated blocks live on a square grid with ~30% empty
   cells (so the occupied bounding box — the die area — can vary), unit
   cell pitch, Manhattan lengths between cell centers.               *)
(* ------------------------------------------------------------------ *)

type ctx = {
  n : int;                     (* nodes *)
  side : int;
  cells_total : int;
  chans : (int * int) array;   (* channel -> (src node, dst node) *)
  incident : int list array;   (* node -> incident channels, deduped *)
  reach : float;
  capacity : int;
  area0 : float;               (* initial-placement normalisers *)
  wire0 : float;
}

let cell_dist ctx a b =
  let ra = a / ctx.side and ca = a mod ctx.side in
  let rb = b / ctx.side and cb = b mod ctx.side in
  float_of_int (abs (ra - rb) + abs (ca - cb))

let chan_len ctx cells c =
  let a, b = ctx.chans.(c) in
  cell_dist ctx cells.(a) cells.(b)

let total_wire ctx cells =
  let acc = ref 0.0 in
  for c = 0 to Array.length ctx.chans - 1 do
    acc := !acc +. chan_len ctx cells c
  done;
  !acc

let bbox_area ctx cells =
  let rmin = ref max_int and rmax = ref min_int in
  let cmin = ref max_int and cmax = ref min_int in
  Array.iter
    (fun cell ->
      let r = cell / ctx.side and c = cell mod ctx.side in
      if r < !rmin then rmin := r;
      if r > !rmax then rmax := r;
      if c < !cmin then cmin := c;
      if c > !cmax then cmax := c)
    cells;
  if !rmax < !rmin then 0.0
  else float_of_int ((!rmax - !rmin + 1) * (!cmax - !cmin + 1))

let rs_for ctx len = Flow.relay_stations_for ~reach:ctx.reach len

(* ------------------------------------------------------------------ *)
(* Pareto dominance over (die area min, wirelength min, bound max)    *)
(* ------------------------------------------------------------------ *)

let dominates p q =
  p.die_area <= q.die_area && p.wirelength <= q.wirelength
  && Cycle_ratio.ratio_compare p.wp1_bound q.wp1_bound >= 0
  && (p.die_area < q.die_area || p.wirelength < q.wirelength
     || Cycle_ratio.ratio_compare p.wp1_bound q.wp1_bound > 0)

let same_metrics p q =
  p.die_area = q.die_area && p.wirelength = q.wirelength
  && Cycle_ratio.ratio_compare p.wp1_bound q.wp1_bound = 0

(* Insertion keeps first-seen order (deterministic merge): a point equal
   or dominated is dropped, otherwise it evicts what it dominates. *)
let archive_insert archive p =
  if List.exists (fun q -> dominates q p || same_metrics q p) archive then archive
  else List.filter (fun q -> not (dominates p q)) archive @ [ p ]

(* ------------------------------------------------------------------ *)
(* Walkers                                                            *)
(* ------------------------------------------------------------------ *)

type walker = {
  id : int;
  prng : Prng.t;
  cells : int array;
  cell_of : int array;          (* cell -> node, -1 when empty *)
  rs : int array;               (* channel -> relay stations *)
  eval : Cycle_ratio.Incremental.t;
  wa : float;                   (* scalarisation weights *)
  ww : float;
  wt : float;
  mutable temperature : float;
  mutable cooldown : int;       (* moves since last cooling *)
  mutable current : float;
  mutable best_point : point;
  mutable best_cost : float;
  mutable archive : point list;
  mutable moves : int;
  mutable lookups : int;        (* evaluations requested (miss or hit) *)
}

let scalar w (area, wire, bound) ctx =
  (w.wa *. (area /. ctx.area0))
  +. (w.ww *. (wire /. ctx.wire0))
  +. (w.wt *. (1.0 -. Cycle_ratio.ratio_to_float bound))

(* Channel [c] of the capacity graph owns edges [2c] (forward: tokens 1,
   time [1 + rs]) and [2c + 1] (reverse: tokens [capacity + 2 rs - 1],
   time 1) — [Static.capacity_graph] adds them in channel order. *)
let refresh_channel ctx w c =
  let k = rs_for ctx (chan_len ctx w.cells c) in
  if w.rs.(c) <> k then begin
    w.rs.(c) <- k;
    Cycle_ratio.Incremental.set_time w.eval (2 * c) (1 + k);
    Cycle_ratio.Incremental.set_cost w.eval ((2 * c) + 1) (ctx.capacity + (2 * k) - 1)
  end

let refresh_all ctx w =
  for c = 0 to Array.length ctx.chans - 1 do
    refresh_channel ctx w c
  done

type cache = {
  table : (string, float * float * Cycle_ratio.ratio * int) Hashtbl.t;
  lock : Mutex.t;
}

(* Score the walker's current placement.  The cache is keyed by the
   placement digest and shared by every walker on every domain: values
   are pure functions of the cells array (die area and wirelength are
   recomputed from scratch in a fixed order, the bound is an exact
   rational), so a hit returns byte-identical data to a recompute and
   the walker trajectories do not depend on which domain filled the
   entry first. *)
let evaluate ctx cache w =
  w.lookups <- w.lookups + 1;
  let key = Digest.string (Marshal.to_string w.cells []) in
  let cached =
    Mutex.lock cache.lock;
    let r = Hashtbl.find_opt cache.table key in
    Mutex.unlock cache.lock;
    r
  in
  match cached with
  | Some v -> v
  | None ->
    let area = bbox_area ctx w.cells in
    let wire = total_wire ctx w.cells in
    let bound =
      match Cycle_ratio.Incremental.solve w.eval with
      | None -> one
      | Some (r, _) -> if Cycle_ratio.ratio_compare r one > 0 then one else r
    in
    let rs_total = Array.fold_left ( + ) 0 w.rs in
    let v = (area, wire, bound, rs_total) in
    Mutex.lock cache.lock;
    if not (Hashtbl.mem cache.table key) then Hashtbl.add cache.table key v;
    Mutex.unlock cache.lock;
    v

let observe ctx w (area, wire, bound, rs_total) =
  let cost = scalar w (area, wire, bound) ctx in
  let mk () = { die_area = area; wirelength = wire; wp1_bound = bound; rs_total;
                cells = Array.copy w.cells } in
  w.archive <- archive_insert w.archive (mk ());
  if cost < w.best_cost then begin
    w.best_cost <- cost;
    w.best_point <- mk ()
  end;
  cost

(* Swap node [u] into cell [target] (swapping with the occupant if the
   cell is taken); returns the undo closure's data. *)
let apply_move ctx w u target =
  let cur = w.cells.(u) in
  let v = w.cell_of.(target) in
  w.cells.(u) <- target;
  w.cell_of.(target) <- u;
  if v >= 0 then begin
    w.cells.(v) <- cur;
    w.cell_of.(cur) <- v
  end
  else w.cell_of.(cur) <- -1;
  let dirty =
    if v >= 0 && v <> u then
      List.sort_uniq compare (ctx.incident.(u) @ ctx.incident.(v))
    else ctx.incident.(u)
  in
  List.iter (refresh_channel ctx w) dirty;
  (cur, v, dirty)

let undo_move ctx w u (cur, v, dirty) =
  let target = w.cells.(u) in
  w.cells.(u) <- cur;
  w.cell_of.(cur) <- u;
  if v >= 0 then begin
    w.cells.(v) <- target;
    w.cell_of.(target) <- v
  end
  else w.cell_of.(target) <- -1;
  List.iter (refresh_channel ctx w) dirty

let cool schedule w =
  w.cooldown <- w.cooldown + 1;
  if w.cooldown >= schedule.Flow_spec.plateau then begin
    w.cooldown <- 0;
    w.temperature <- w.temperature *. schedule.Flow_spec.cooling
  end

let step ctx cache schedule w =
  w.moves <- w.moves + 1;
  let u = Prng.int w.prng ctx.n in
  let target = Prng.int w.prng ctx.cells_total in
  if target <> w.cells.(u) then begin
    let undo = apply_move ctx w u target in
    let v = evaluate ctx cache w in
    let cost = observe ctx w v in
    let d = cost -. w.current in
    let accept =
      d <= 0.0 || Prng.float w.prng 1.0 < exp (-.d /. max w.temperature 1e-12)
    in
    if accept then w.current <- cost else undo_move ctx w u undo
  end;
  cool schedule w

(* ------------------------------------------------------------------ *)
(* Population                                                          *)
(* ------------------------------------------------------------------ *)

let walker_weights spec i =
  match spec.Flow_spec.objective with
  | Flow_spec.Area -> (1.0, 0.0, 0.0)
  | Flow_spec.Area_wire -> (1.0, 0.5, 0.0)
  | Flow_spec.Aware -> (1.0, 0.5, 3.0)
  | Flow_spec.Pareto ->
    (* Diverse deterministic scalarisations: each walker pushes into a
       different region of the (area, wire, throughput) front. *)
    let prng = Prng.create ~seed:(spec.Flow_spec.seed + (1_000_003 * (i + 1))) in
    let wa = 0.2 +. Prng.float prng 1.0 in
    let ww = 0.1 +. Prng.float prng 1.0 in
    let wt = 0.5 +. Prng.float prng 4.0 in
    (wa, ww, wt)

let make_walker ctx spec g tokens time i =
  let cells = Array.init ctx.n Fun.id in
  let cell_of = Array.make ctx.cells_total (-1) in
  Array.iteri (fun node cell -> cell_of.(cell) <- node) cells;
  let rs = Array.make (max 1 (Array.length ctx.chans)) (-1) in
  let eval = Cycle_ratio.Incremental.create g ~cost:tokens ~time in
  let wa, ww, wt = walker_weights spec i in
  let temperature =
    let t = spec.Flow_spec.schedule.Flow_spec.initial_temperature in
    if t > 0.0 then t else 0.3 *. (wa +. ww +. wt)
  in
  let w =
    {
      id = i;
      prng = Prng.create ~seed:(spec.Flow_spec.seed lxor (0x9E3779B9 * (i + 1)));
      cells;
      cell_of;
      rs;
      eval;
      wa;
      ww;
      wt;
      temperature;
      cooldown = 0;
      current = infinity;
      best_point =
        { die_area = infinity; wirelength = infinity; wp1_bound = Cycle_ratio.make_ratio 0 1;
          rs_total = 0; cells = Array.copy cells };
      best_cost = infinity;
      archive = [];
      moves = 0;
      lookups = 0;
    }
  in
  refresh_all ctx w;
  w

let adopt ctx w (p : point) cost =
  Array.blit p.cells 0 w.cells 0 Array.(length p.cells);
  Array.fill w.cell_of 0 (Array.length w.cell_of) (-1);
  Array.iteri (fun node cell -> w.cell_of.(cell) <- node) w.cells;
  refresh_all ctx w;
  w.current <- cost;
  w.best_cost <- cost;
  w.best_point <-
    { die_area = p.die_area; wirelength = p.wirelength; wp1_bound = p.wp1_bound;
      rs_total = p.rs_total; cells = Array.copy p.cells }

(* Ring elite exchange: after a round, walker [i] adopts its left
   neighbour's best state when that state scores better under [i]'s own
   scalarisation.  A pure function of the (deterministic) per-walker
   bests, so the exchange itself is domain-count independent. *)
let exchange ctx walkers =
  let k = Array.length walkers in
  let bests = Array.map (fun w -> w.best_point) walkers in
  Array.iteri
    (fun i w ->
      let donor = bests.((i + k - 1) mod k) in
      if donor.die_area < infinity then begin
        let cost = scalar w (donor.die_area, donor.wirelength, donor.wp1_bound) ctx in
        if cost < w.best_cost then adopt ctx w donor cost
      end)
    walkers

let build_ctx spec tspec =
  let net = Topology.build tspec in
  let n = Network.node_count net in
  let side = max 1 (int_of_float (ceil (sqrt (1.3 *. float_of_int n)))) in
  let chans =
    Array.of_list
      (List.map
         (fun c -> (fst (Network.channel_src net c), fst (Network.channel_dst net c)))
         (Network.channels net))
  in
  let incident = Array.make n [] in
  Array.iteri
    (fun c (a, b) ->
      incident.(a) <- c :: incident.(a);
      if b <> a then incident.(b) <- c :: incident.(b))
    chans;
  Array.iteri (fun v l -> incident.(v) <- List.rev l) incident;
  let ctx =
    {
      n;
      side;
      cells_total = side * side;
      chans;
      incident;
      reach = spec.Flow_spec.reach;
      capacity = 2;
      area0 = 1.0;
      wire0 = 1.0;
    }
  in
  let cells0 = Array.init n Fun.id in
  let area0 = max (bbox_area ctx cells0) 1.0 in
  let wire0 = max (total_wire ctx cells0) 1.0 in
  (net, { ctx with area0; wire0 })

let spec_topology spec =
  match spec.Flow_spec.topology with
  | Flow_spec.Generated t -> t
  | Flow_spec.Case_study ->
    invalid_arg "Flow_scale.run: the 5-block case study goes through Flow.run"

(* Derive the concrete network of one placement: the generated netlist
   with every channel's relay-station count set from its grid length. *)
let derived_network spec (point : point) =
  let tspec = spec_topology spec in
  let net, ctx = build_ctx spec tspec in
  List.iter
    (fun c ->
      Network.set_relay_stations net c (rs_for ctx (chan_len ctx point.cells c)))
    (Network.channels net);
  net

let scratch_bound ?(capacity = 2) net =
  let g, tokens, time = Static.capacity_graph ~capacity net in
  match Howard.minimum_cycle_ratio g ~cost:tokens ~time with
  | None -> one
  | Some (r, _) -> if Cycle_ratio.ratio_compare r one > 0 then one else r

let run ?(jobs = Pool.default_jobs ()) ?(spec = Flow_spec.default) () =
  let tspec = spec_topology spec in
  let net, ctx = build_ctx spec tspec in
  let g, tokens, time = Static.capacity_graph ~capacity:ctx.capacity net in
  let k = max 1 spec.Flow_spec.pool in
  let walkers = Array.init k (make_walker ctx spec g tokens time) in
  let cache = { table = Hashtbl.create 4096; lock = Mutex.create () } in
  (* Score the (shared) initial placement so every walker starts with a
     defined current cost and one archive entry. *)
  Array.iter
    (fun w ->
      let v = evaluate ctx cache w in
      w.current <- observe ctx w v)
    walkers;
  let steps_per_walker = max 1 (spec.Flow_spec.budget / k) in
  let rounds = max 1 (min 8 steps_per_walker) in
  let schedule = spec.Flow_spec.schedule in
  Pool.with_pool ~jobs (fun pool ->
      for round = 0 to rounds - 1 do
        let base = steps_per_walker / rounds in
        let extra = if round < steps_per_walker mod rounds then 1 else 0 in
        let steps = base + extra in
        ignore
          (Pool.map pool
             (fun w ->
               for _ = 1 to steps do
                 step ctx cache schedule w
               done)
             (Array.to_list walkers));
        if k > 1 && round < rounds - 1 then exchange ctx walkers
      done);
  let merged =
    Array.fold_left
      (fun acc w -> List.fold_left archive_insert acc w.archive)
      [] walkers
  in
  let better p q =
    let c = Cycle_ratio.ratio_compare q.wp1_bound p.wp1_bound in
    if c <> 0 then c
    else if p.die_area <> q.die_area then compare p.die_area q.die_area
    else compare p.wirelength q.wirelength
  in
  let front = List.stable_sort better merged in
  let best = match front with [] -> assert false | p :: _ -> p in
  (* The headline invariant: the incremental evaluator's bound for the
     winning placement must equal a from-scratch Howard solve on the
     freshly derived network, exactly. *)
  let check = scratch_bound ~capacity:ctx.capacity (derived_network spec best) in
  if Cycle_ratio.ratio_compare check best.wp1_bound <> 0 then
    failwith
      (Format.asprintf
         "Flow_scale.run: incremental bound %a disagrees with from-scratch %a"
         Cycle_ratio.ratio_pp best.wp1_bound Cycle_ratio.ratio_pp check);
  let moves = Array.fold_left (fun a w -> a + w.moves) 0 walkers in
  let lookups = Array.fold_left (fun a w -> a + w.lookups) 0 walkers in
  let evaluations = Hashtbl.length cache.table in
  {
    front;
    best;
    walkers = k;
    rounds;
    moves;
    evaluations;
    cache_hits = lookups - evaluations;
  }

let static_rate ?(capacity = 2) net =
  let s = Static.schedule ~capacity net in
  Wp_graph.Schedule.word_rate s 0

let point_json p =
  Printf.sprintf
    "{ \"die_area\": %.6f, \"wirelength\": %.6f, \"wp1_bound\": \"%d/%d\", \"wp1_bound_float\": %.9f, \"rs_total\": %d }"
    p.die_area p.wirelength p.wp1_bound.Cycle_ratio.num p.wp1_bound.Cycle_ratio.den
    (Cycle_ratio.ratio_to_float p.wp1_bound)
    p.rs_total

let front_to_json ~spec r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"spec\": %S,\n" (Flow_spec.digest spec));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"walkers\": %d,\n  \"rounds\": %d,\n  \"moves\": %d,\n  \"evaluations\": %d,\n  \"cache_hits\": %d,\n"
       r.walkers r.rounds r.moves r.evaluations r.cache_hits);
  Buffer.add_string buf (Printf.sprintf "  \"best\": %s,\n" (point_json r.best));
  Buffer.add_string buf "  \"front\": [\n";
  List.iteri
    (fun i p ->
      Buffer.add_string buf "    ";
      Buffer.add_string buf (point_json p);
      if i < List.length r.front - 1 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n")
    r.front;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
