(** Floorplan→throughput co-optimization at generated-netlist scale.

    The closed methodology loop of the paper — geometry determines
    relay-station counts, relay stations determine loop throughput,
    throughput feeds back into placement — run on {!Wp_topo.Topology}
    netlists (meshes, tori, rings, random graphs up to thousands of
    blocks) instead of the 5-block case study:

    - blocks live on a square grid with ~30% slack cells, so the
      occupied bounding box (the die area) and every channel's Manhattan
      length respond to moves;
    - every move re-derives the touched channels' relay-station counts
      from geometry and pushes only those weights into a
      {!Wp_graph.Cycle_ratio.Incremental} evaluator, whose warm-started
      policy iteration re-solves the throughput bound without rebuilding
      the capacity graph;
    - the search is population-based annealing: [spec.pool] walkers
      (each a deterministic Metropolis chain with its own PRNG and, in
      Pareto mode, its own scalarisation weights) sharded across
      {!Wp_util.Pool} domains, exchanging elites on a ring after every
      round;
    - a digest-keyed evaluation cache shared by all walkers scores any
      repeated placement once — values are pure functions of the
      placement, so the trajectories (and hence the result, byte for
      byte) are independent of the domain count;
    - every evaluation feeds a dominance-filtered Pareto archive over
      (die area, total wirelength, WP1/static throughput bound).

    The returned best point's bound is re-checked against a from-scratch
    Howard solve of the freshly derived network before [run] returns —
    exact rational equality, not a tolerance. *)

type point = {
  die_area : float;            (** occupied bounding box, cells *)
  wirelength : float;          (** total Manhattan channel length *)
  wp1_bound : Wp_graph.Cycle_ratio.ratio;  (** MCR clamped at 1/1 *)
  rs_total : int;              (** total relay stations implied *)
  cells : int array;           (** node -> grid cell *)
}

type result = {
  front : point list;
      (** the Pareto front, best throughput first (ties: smaller area,
          then smaller wirelength) *)
  best : point;                (** head of [front] *)
  walkers : int;
  rounds : int;                (** elite-exchange barriers *)
  moves : int;                 (** total annealing proposals *)
  evaluations : int;           (** distinct placements actually scored *)
  cache_hits : int;            (** evaluations served from the cache *)
}

val run : ?jobs:int -> ?spec:Flow_spec.t -> unit -> result
(** Run the scaled flow.  [spec.topology] must be
    {!Flow_spec.Generated}; [spec.budget] total moves are split evenly
    across [spec.pool] walkers; [jobs] (default
    {!Wp_util.Pool.default_jobs}) only sets the domain count — the
    result is byte-identical for any [jobs].
    @raise Invalid_argument on {!Flow_spec.Case_study}.
    @raise Failure if the incremental bound of the winning placement
    disagrees with the from-scratch solve (cannot happen if the
    incremental evaluator is correct; checked unconditionally). *)

val derived_network : Flow_spec.t -> point -> Wp_sim.Network.t
(** The generated netlist with every channel's relay-station count set
    from the point's grid geometry — the concrete configuration the
    point stands for. *)

val scratch_bound : ?capacity:int -> Wp_sim.Network.t -> Wp_graph.Cycle_ratio.ratio
(** From-scratch reference: Howard's solver on a freshly built
    capacity-extended graph, clamped at 1/1 (capacity defaults to 2,
    matching the flow). *)

val static_rate : ?capacity:int -> Wp_sim.Network.t -> Wp_graph.Cycle_ratio.ratio
(** The balanced-word firing rate of node 0 under the {!Wp_sim.Static}
    engine's schedule — the simulation-side cross-check of
    {!scratch_bound} (equal on strongly connected nets).
    @raise Wp_sim.Static.Unschedulable as {!Wp_sim.Static.schedule}. *)

val front_to_json : spec:Flow_spec.t -> result -> string
(** The [flow_front.json] artifact: spec digest, search counters, best
    point and the full front. *)
