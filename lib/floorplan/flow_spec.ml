module Topology = Wp_topo.Topology

type topology = Case_study | Generated of Topology.spec

type objective = Area | Area_wire | Aware | Pareto

type schedule = {
  initial_temperature : float;
  cooling : float;
  plateau : int;
}

type t = {
  topology : topology;
  reach : float;
  objective : objective;
  budget : int;
  seed : int;
  schedule : schedule;
  pool : int;
}

(* initial_temperature <= 0 means "auto": scale to the problem (the
   packer's classic 0.3 x total block area for the case study, a
   fraction of the initial scalar cost for generated netlists). *)
let default_schedule = { initial_temperature = 0.0; cooling = 0.95; plateau = 40 }

let default =
  {
    topology = Case_study;
    reach = 1.5;
    objective = Area_wire;
    budget = 4000;
    seed = 42;
    schedule = default_schedule;
    pool = 4;
  }

let objective_to_string = function
  | Area -> "area"
  | Area_wire -> "wire"
  | Aware -> "aware"
  | Pareto -> "pareto"

let objective_of_string = function
  | "area" -> Ok Area
  | "wire" -> Ok Area_wire
  | "aware" -> Ok Aware
  | "pareto" -> Ok Pareto
  | s -> Error (Printf.sprintf "objective must be 'area', 'wire', 'aware' or 'pareto', got %S" s)

let topology_to_string = function
  | Case_study -> "case"
  | Generated spec -> Topology.to_string spec

let topology_of_string = function
  | "case" -> Ok Case_study
  | s -> Result.map (fun spec -> Generated spec) (Topology.of_string s)

let v ?(topology = default.topology) ?(reach = default.reach)
    ?(objective = default.objective) ?(budget = default.budget) ?(seed = default.seed)
    ?(schedule = default.schedule) ?(pool = default.pool) () =
  { topology; reach; objective; budget; seed; schedule; pool }

let digest t =
  String.concat "|"
    [
      topology_to_string t.topology;
      Printf.sprintf "r%g" t.reach;
      objective_to_string t.objective;
      Printf.sprintf "b%d" t.budget;
      Printf.sprintf "s%d" t.seed;
      Printf.sprintf "t%gc%gp%d" t.schedule.initial_temperature t.schedule.cooling
        t.schedule.plateau;
      Printf.sprintf "k%d" t.pool;
    ]

let equal a b = String.equal (digest a) (digest b)

let describe t =
  let parts = ref [] in
  let add s = parts := s :: !parts in
  (match t.topology with
  | Case_study -> add "5-block case study"
  | Generated spec -> add (Printf.sprintf "topology %s" (Topology.to_string spec)));
  add (Printf.sprintf "reach %g" t.reach);
  add
    (match t.objective with
    | Area -> "area objective"
    | Area_wire -> "area+wirelength objective"
    | Aware -> "throughput-aware objective"
    | Pareto -> "Pareto objective");
  add (Printf.sprintf "budget %d" t.budget);
  add (Printf.sprintf "seed %d" t.seed);
  if t.pool <> 1 then add (Printf.sprintf "%d walkers" t.pool);
  String.concat ", " (List.rev !parts)

let of_args ?topology ?reach ?objective ?budget ?seed ?temperature ?cooling ?plateau
    ?pool () =
  let ( let* ) = Result.bind in
  let* topology =
    match topology with None -> Ok default.topology | Some s -> topology_of_string s
  in
  let* reach =
    match reach with
    | None -> Ok default.reach
    | Some r -> if r > 0.0 then Ok r else Error (Printf.sprintf "reach must be > 0, got %g" r)
  in
  let* objective =
    match objective with None -> Ok default.objective | Some s -> objective_of_string s
  in
  let* budget =
    match budget with
    | None -> Ok default.budget
    | Some b -> if b >= 1 then Ok b else Error (Printf.sprintf "budget must be >= 1, got %d" b)
  in
  let seed = Option.value seed ~default:default.seed in
  let* temperature =
    match temperature with
    | None -> Ok default.schedule.initial_temperature
    | Some x -> Ok x
  in
  let* cooling =
    match cooling with
    | None -> Ok default.schedule.cooling
    | Some c ->
      if c > 0.0 && c <= 1.0 then Ok c
      else Error (Printf.sprintf "cooling must be in (0, 1], got %g" c)
  in
  let* plateau =
    match plateau with
    | None -> Ok default.schedule.plateau
    | Some p ->
      if p >= 1 then Ok p else Error (Printf.sprintf "plateau must be >= 1, got %d" p)
  in
  let* pool =
    match pool with
    | None -> Ok default.pool
    | Some k -> if k >= 1 then Ok k else Error (Printf.sprintf "pool must be >= 1, got %d" k)
  in
  Ok
    {
      topology;
      reach;
      objective;
      budget;
      seed;
      schedule = { initial_temperature = temperature; cooling; plateau };
      pool;
    }

let to_search ?budget ?per_connection_max (t : t) =
  let flow_seed = t.seed and flow_budget = t.budget and flow_schedule = t.schedule in
  let open Wp_core.Optimizer in
  {
    default_search with
    budget = Option.value budget ~default:default_search.budget;
    per_connection_max =
      Option.value per_connection_max ~default:default_search.per_connection_max;
    seed = flow_seed;
    schedule =
      {
        Wp_util.Anneal.steps = flow_budget;
        initial_temperature =
          (if flow_schedule.initial_temperature > 0.0 then
             flow_schedule.initial_temperature
           else default_search.schedule.Wp_util.Anneal.initial_temperature);
        cooling = flow_schedule.cooling;
        plateau = flow_schedule.plateau;
      };
  }
