(** One record describing {e how} to run the floorplan→throughput
    co-optimization flow — the floorplan counterpart of
    {!Wp_core.Run_spec}.

    Before this module, {!Flow.run} (and its CLI surface) re-declared a
    sprawl of [?seed ?reach ?wirelength_weight ?throughput_weight
    ?schedule] optional arguments that could not express the scaled flow
    at all (no topology, no walker pool, no Pareto mode).  A
    [Flow_spec.t] carries every knob at once and {!digest} gives the
    single content key for caches and artifacts, exactly mirroring the
    [Run_spec] convention:

    - {!Flow.run} / {!Flow.objectives_ablation} (5-block case study) and
      [Flow_scale.run] (generated topologies) take [?spec];
    - {!of_args} is the one CLI parsing path;
    - {!to_search} projects onto {!Wp_core.Optimizer.search}, so the
      relay-station placement searches run under the same seed and
      annealing temperature discipline as the flow that invokes them
      (the dependency points floorplan→core, hence the projection lives
      here, not in [Optimizer]). *)

type topology =
  | Case_study  (** the paper's 5-block processor *)
  | Generated of Wp_topo.Topology.spec
      (** a generated netlist, e.g. [mesh:16x16] or [rand:1000] *)

type objective =
  | Area       (** die area only *)
  | Area_wire  (** area + wirelength (the classic floorplanner) *)
  | Aware      (** area + wirelength + loop-throughput penalty *)
  | Pareto
      (** fused multi-objective over (die area, total wirelength,
          WP1/static throughput bound): walkers scalarise with diverse
          weight vectors and every evaluation feeds a dominance-filtered
          Pareto front.  In the single-result case study this behaves
          like {!Aware}. *)

type schedule = {
  initial_temperature : float;
      (** [<= 0] means "auto": scaled to the problem (0.3 x total block
          area on the case study, a fraction of the initial cost on
          generated netlists) *)
  cooling : float;  (** multiplier applied every [plateau] moves *)
  plateau : int;
}

type t = {
  topology : topology;
  reach : float;    (** signal reach per clock, mm (wire of length [l]
                        needs [ceil (l/reach) - 1] relay stations) *)
  objective : objective;
  budget : int;     (** total annealing moves (split across the pool in
                        the scaled flow) *)
  seed : int;
  schedule : schedule;
  pool : int;       (** population size: annealing walkers (sharded
                        across [Wp_util.Pool] domains in the scaled
                        flow) *)
}

val default : t
(** Case study, reach 1.5, area+wirelength, budget 4000, seed 42, auto
    temperature with cooling 0.95 / plateau 40, 4 walkers. *)

val default_schedule : schedule

val v :
  ?topology:topology ->
  ?reach:float ->
  ?objective:objective ->
  ?budget:int ->
  ?seed:int ->
  ?schedule:schedule ->
  ?pool:int ->
  unit ->
  t
(** Build a spec; omitted fields take their {!default} values. *)

val of_args :
  ?topology:string ->
  ?reach:float ->
  ?objective:string ->
  ?budget:int ->
  ?seed:int ->
  ?temperature:float ->
  ?cooling:float ->
  ?plateau:int ->
  ?pool:int ->
  unit ->
  (t, string) result
(** Validating constructor for the CLI: [topology] is ["case"] or a
    {!Wp_topo.Topology.of_string} spec; [objective] is
    ["area"]/["wire"]/["aware"]/["pareto"].  The error message names the
    offending argument and value. *)

val digest : t -> string
(** Stable pipe-joined content key over every field, e.g.
    ["mesh:16x16|r1.5|pareto|b4000|s42|t0c0.95p40|k4"]. *)

val equal : t -> t -> bool
val describe : t -> string

val objective_to_string : objective -> string
val objective_of_string : string -> (objective, string) result
val topology_to_string : topology -> string
val topology_of_string : string -> (topology, string) result

val to_search :
  ?budget:int -> ?per_connection_max:int -> t -> Wp_core.Optimizer.search
(** Project the flow spec onto a relay-station placement search:
    [seed] and the temperature schedule come from the flow spec ([budget]
    here is the {e relay-station} budget, defaulting to
    {!Wp_core.Optimizer.default_search}'s); auto temperature falls back
    to the optimizer's default. *)
