type ratio = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make_ratio num den =
  if den = 0 then invalid_arg "Cycle_ratio.make_ratio: zero denominator";
  let num, den = if den < 0 then (-num, -den) else (num, den) in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let ratio_to_float r = float_of_int r.num /. float_of_int r.den

(* Cross-multiplication; operands stay small in this library. *)
let ratio_compare a b = compare (a.num * b.den) (b.num * a.den)

let ratio_pp ppf r =
  if r.den = 1 then Format.fprintf ppf "%d" r.num
  else Format.fprintf ppf "%d/%d" r.num r.den

let sum_over cycle f = List.fold_left (fun acc e -> acc + f e) 0 cycle

let cycle_ratio _g ~cost ~time cycle =
  make_ratio (sum_over cycle cost) (sum_over cycle time)

let validate_times g ~time =
  Digraph.iter_edges g (fun e ->
      if time e < 0 then invalid_arg "Cycle_ratio: negative time");
  (* A cycle of zero total time exists iff the subgraph of zero-time edges
     contains a cycle; reject it, the ratio would be infinite. *)
  let zero_sub = Digraph.create () in
  List.iter
    (fun v -> ignore (Digraph.add_vertex zero_sub ~label:(Digraph.vertex_label g v)))
    (Digraph.vertices g);
  Digraph.iter_edges g (fun e ->
      if time e = 0 then
        ignore
          (Digraph.add_edge zero_sub ~src:(Digraph.edge_src g e)
             ~dst:(Digraph.edge_dst g e) ~label:""));
  let has_cycle =
    List.exists (fun comp -> not (Scc.is_trivial zero_sub comp)) (Scc.components zero_sub)
  in
  if has_cycle then invalid_arg "Cycle_ratio: cycle with zero total time"

let minimum_by_enumeration g ~cost ~time =
  validate_times g ~time;
  let best = ref None in
  let consider cycle =
    let r = cycle_ratio g ~cost ~time cycle in
    match !best with
    | None -> best := Some (r, cycle)
    | Some (r0, _) -> if ratio_compare r r0 < 0 then best := Some (r, cycle)
  in
  List.iter consider (Cycles.elementary_cycles g);
  !best

(* Is there a cycle with total (cost - lambda * time) < 0 ?  Exactly the
   Lawler feasibility test.  [lambda] is a float; edge attributes are
   integers so the arithmetic is well conditioned. *)
let has_negative_cycle g ~cost ~time lambda =
  let weight e = float_of_int (cost e) -. (lambda *. float_of_int (time e)) in
  match Shortest_path.potentials g ~weight with
  | Shortest_path.Negative_cycle c -> Some c
  | Shortest_path.Distances _ -> None

let has_cycle g =
  List.exists (fun comp -> not (Scc.is_trivial g comp)) (Scc.components g)

let minimum g ~cost ~time =
  validate_times g ~time;
  if not (has_cycle g) then None
  else begin
    let max_abs_cost =
      Digraph.fold_edges g ~init:1 ~f:(fun acc e -> max acc (abs (cost e)))
    in
    let bound = float_of_int (max_abs_cost * max 1 (Digraph.edge_count g)) +. 1.0 in
    (* Invariant: a cycle of ratio < hi exists; none of ratio < lo does.
       After 64 halvings [hi - lo] is far below the smallest gap between
       two distinct achievable ratios (>= 1 / total_time^2), so the last
       witness cycle achieves the optimum; its exact integer ratio is the
       answer. *)
    let lo = ref (-.bound) and hi = ref bound and witness = ref None in
    (match has_negative_cycle g ~cost ~time !hi with
    | Some c -> witness := Some c
    | None ->
      (* Every cycle ratio is < bound by construction. *)
      assert false);
    for _ = 1 to 64 do
      let mid = 0.5 *. (!lo +. !hi) in
      if !hi -. !lo > 1e-12 then
        match has_negative_cycle g ~cost ~time mid with
        | Some c ->
          hi := mid;
          witness := Some c
        | None -> lo := mid
    done;
    match !witness with
    | Some c -> Some (cycle_ratio g ~cost ~time c, c)
    | None -> None
  end

let maximum g ~cost ~time =
  match minimum g ~cost:(fun e -> -cost e) ~time with
  | None -> None
  | Some (r, c) -> Some (make_ratio (-r.num) r.den, c)

(* ------------------------------------------------------------------ *)
(* Incremental minimum cycle ratio                                    *)
(* ------------------------------------------------------------------ *)

module Incremental = struct
  (* Policy iteration (Howard's scheme) over a fixed topology with
     mutable edge weights.  The policy — one outgoing edge per vertex —
     survives weight perturbations: edges chosen at [create] time stay
     inside the vertex's SCC, and SCCs depend only on the topology, so
     the previous optimum is always a proper warm start.  After a local
     perturbation the warm policy is usually optimal or one improvement
     sweep away, which is where the speedup over a from-scratch solve
     comes from. *)

  let epsilon = 1e-9

  type t = {
    g : Digraph.t;
    cost : int array;           (* edge id -> cost *)
    time : int array;           (* edge id -> time, >= 0 *)
    comp : int array;           (* SCC ids, fixed: topology never changes *)
    policy : int array;         (* vertex -> chosen out-edge, -1 if none *)
    (* Scratch for policy evaluation, reused across solves. *)
    lambda : float array;
    potential : float array;
    cycle_repr : Digraph.edge list array;
    state : int array;          (* 0 white / 1 gray / 2 done *)
    mutable dirty : bool;
    mutable cached : (ratio * Digraph.edge list) option;
    mutable solves : int;       (* policy-iteration runs (cache misses) *)
  }

  let create g ~cost ~time =
    let n = Digraph.vertex_count g in
    let m = Digraph.edge_count g in
    let times = Array.init m time in
    Array.iter
      (fun t -> if t < 0 then invalid_arg "Cycle_ratio.Incremental.create: negative time")
      times;
    let comp = Scc.component_ids g in
    let policy = Array.make (max n 1) (-1) in
    for v = 0 to n - 1 do
      policy.(v) <-
        (match
           List.find_opt
             (fun e -> comp.(Digraph.edge_dst g e) = comp.(v))
             (Digraph.out_edges g v)
         with
        | Some e -> e
        | None -> -1)
    done;
    {
      g;
      cost = Array.init m cost;
      time = times;
      comp;
      policy;
      lambda = Array.make (max n 1) infinity;
      potential = Array.make (max n 1) 0.0;
      cycle_repr = Array.make (max n 1) [];
      state = Array.make (max n 1) 0;
      dirty = true;
      cached = None;
      solves = 0;
    }

  let cost t e = t.cost.(e)
  let time t e = t.time.(e)

  let set_cost t e c =
    if t.cost.(e) <> c then begin
      t.cost.(e) <- c;
      t.dirty <- true
    end

  let set_time t e x =
    if x < 0 then invalid_arg "Cycle_ratio.Incremental.set_time: negative time";
    if t.time.(e) <> x then begin
      t.time.(e) <- x;
      t.dirty <- true
    end

  let solves t = t.solves

  (* Evaluate the current policy: per-vertex cycle ratio [lambda],
     potential, and representative policy cycle.  Same recurrence as the
     from-scratch solver, but reading weights from the mutable arrays and
     writing into preallocated scratch. *)
  let evaluate t =
    let g = t.g in
    let n = Digraph.vertex_count g in
    Array.fill t.state 0 (Array.length t.state) 0;
    let rec walk v path =
      match t.state.(v) with
      | 2 -> ()
      | 1 ->
        (* Closed a cycle: [path] holds edges newest-first; the cycle is
           the suffix of [path] from v's edge. *)
        let rec cut acc = function
          | [] -> acc
          | e :: rest ->
            let acc = e :: acc in
            if Digraph.edge_src g e = v then acc else cut acc rest
        in
        let cycle = cut [] path in
        let total_cost = List.fold_left (fun a e -> a + t.cost.(e)) 0 cycle in
        let total_time = List.fold_left (fun a e -> a + t.time.(e)) 0 cycle in
        let lam = float_of_int total_cost /. float_of_int total_time in
        t.lambda.(v) <- lam;
        t.potential.(v) <- 0.0;
        t.cycle_repr.(v) <- cycle;
        t.state.(v) <- 2;
        let rec assign = function
          | [] -> ()
          | e :: rest ->
            let u = Digraph.edge_src g e and x = Digraph.edge_dst g e in
            if t.state.(u) <> 2 then begin
              assign rest;
              t.lambda.(u) <- lam;
              t.potential.(u) <-
                float_of_int t.cost.(e)
                -. (lam *. float_of_int t.time.(e))
                +. t.potential.(x);
              t.cycle_repr.(u) <- cycle;
              t.state.(u) <- 2
            end
            else assign rest
        in
        assign cycle
      | _ ->
        t.state.(v) <- 1;
        (match t.policy.(v) with
        | -1 ->
          t.state.(v) <- 2;
          t.lambda.(v) <- infinity
        | e ->
          let x = Digraph.edge_dst g e in
          walk x (e :: path);
          if t.state.(v) <> 2 then begin
            t.lambda.(v) <- t.lambda.(x);
            t.potential.(v) <-
              float_of_int t.cost.(e)
              -. (t.lambda.(x) *. float_of_int t.time.(e))
              +. t.potential.(x);
            t.cycle_repr.(v) <- t.cycle_repr.(x);
            t.state.(v) <- 2
          end)
    in
    for v = 0 to n - 1 do
      walk v []
    done

  let solve t =
    if not t.dirty then t.cached
    else begin
      let g = t.g in
      let n = Digraph.vertex_count g in
      let result =
        if n = 0 || Array.for_all (fun e -> e = -1) t.policy then None
        else begin
          t.solves <- t.solves + 1;
          let max_iterations = (n * Digraph.edge_count g) + 16 in
          let rec iterate k =
            evaluate t;
            let improved = ref false in
            Digraph.iter_edges g (fun e ->
                let u = Digraph.edge_src g e and x = Digraph.edge_dst g e in
                if t.comp.(u) = t.comp.(x) && t.lambda.(x) < infinity then begin
                  if t.lambda.(x) < t.lambda.(u) -. epsilon then begin
                    t.policy.(u) <- e;
                    improved := true
                  end
                  else if
                    abs_float (t.lambda.(x) -. t.lambda.(u)) <= epsilon
                    && float_of_int t.cost.(e)
                       -. (t.lambda.(u) *. float_of_int t.time.(e))
                       +. t.potential.(x)
                       < t.potential.(u) -. epsilon
                  then begin
                    t.policy.(u) <- e;
                    improved := true
                  end
                end);
            if !improved && k < max_iterations then iterate (k + 1)
          in
          iterate 0;
          let best = ref (-1) in
          for v = 0 to n - 1 do
            if t.lambda.(v) < infinity
               && (!best < 0 || t.lambda.(v) < t.lambda.(!best))
            then best := v
          done;
          if !best < 0 then None
          else begin
            let cycle = t.cycle_repr.(!best) in
            Some
              ( cycle_ratio g
                  ~cost:(fun e -> t.cost.(e))
                  ~time:(fun e -> t.time.(e))
                  cycle,
                cycle )
          end
        end
      in
      t.dirty <- false;
      t.cached <- result;
      result
    end
end
