(** Minimum / maximum cycle ratio.

    For edge attributes [cost] and [time] (integers, [time >= 0], every
    cycle having positive total time), the minimum cycle ratio is

      min over elementary cycles C of  (sum cost) / (sum time).

    This is the quantity behind the paper's sustainable-throughput bound:
    with [cost e = 1] and [time e = 1 + relay_stations e], the minimum over
    loops of [m / (m + n)] is exactly the minimum cycle ratio.

    Two implementations are provided: an exact enumeration (small graphs)
    and a scalable parametric search (Lawler binary search over Bellman-Ford
    negative-cycle tests) whose result is returned as an exact rational
    certified by the witnessing cycle. *)

type ratio = {
  num : int;
  den : int;  (** always > 0; the fraction is in lowest terms *)
}

val ratio_to_float : ratio -> float
val ratio_compare : ratio -> ratio -> int
val ratio_pp : Format.formatter -> ratio -> unit

val make_ratio : int -> int -> ratio
(** Normalises sign and reduces. @raise Invalid_argument when the
    denominator is 0. *)

val minimum :
  Digraph.t ->
  cost:(Digraph.edge -> int) ->
  time:(Digraph.edge -> int) ->
  (ratio * Digraph.edge list) option
(** [None] when the graph is acyclic.  The returned cycle achieves the
    ratio.  @raise Invalid_argument if some [time] is negative or some cycle
    has zero total time. *)

val maximum :
  Digraph.t ->
  cost:(Digraph.edge -> int) ->
  time:(Digraph.edge -> int) ->
  (ratio * Digraph.edge list) option

val minimum_by_enumeration :
  Digraph.t ->
  cost:(Digraph.edge -> int) ->
  time:(Digraph.edge -> int) ->
  (ratio * Digraph.edge list) option
(** Reference implementation over [Cycles.elementary_cycles]; exponential in
    the worst case, exact always. *)

val cycle_ratio :
  Digraph.t ->
  cost:(Digraph.edge -> int) ->
  time:(Digraph.edge -> int) ->
  Digraph.edge list ->
  ratio
(** Ratio of one given cycle. *)

(** Incremental minimum cycle ratio over a fixed topology with mutable
    edge weights.

    Built for the floorplan→throughput co-optimization loop: moving a
    block only changes the weights of the channels incident to it, so
    the evaluator keeps Howard-style policy-iteration state (the chosen
    out-edge per vertex, plus the SCC decomposition, which depends only
    on the never-changing topology) alive across perturbations and
    warm-starts the next solve from the previous optimal policy.  On
    local perturbations the warm policy typically needs zero or one
    improvement sweeps, versus a full cold policy iteration plus graph
    reconstruction for a from-scratch solve.

    The result of {!Incremental.solve} is always the exact optimum —
    identical ratio to {!minimum} on the same weights (the test suite
    proves this differentially over random perturbation sequences); only
    the work to reach it is amortised. *)
module Incremental : sig
  type t

  val create :
    Digraph.t ->
    cost:(Digraph.edge -> int) ->
    time:(Digraph.edge -> int) ->
    t
  (** Snapshot the weights and precompute the SCC decomposition and an
      initial proper policy.  The graph topology must not change after
      this call (weights change through {!set_cost}/{!set_time}).
      @raise Invalid_argument if some [time] is negative. *)

  val set_cost : t -> Digraph.edge -> int -> unit
  val set_time : t -> Digraph.edge -> int -> unit
  (** Perturb one edge's weight; O(1), marks the state dirty.  As with
      {!minimum}, every cycle must keep positive total time — this is
      the caller's invariant (relay-station weights are always >= 1
      on forward edges). @raise Invalid_argument on negative time. *)

  val cost : t -> Digraph.edge -> int
  val time : t -> Digraph.edge -> int

  val solve : t -> (ratio * Digraph.edge list) option
  (** Exact minimum cycle ratio under the current weights, [None] when
      the graph is acyclic.  Returns the memoised result in O(1) when no
      weight changed since the last solve; otherwise runs policy
      improvement warm-started from the previous optimal policy. *)

  val solves : t -> int
  (** Number of actual policy-iteration runs (i.e. cache misses) so far
      — observability for the evaluation-cache benchmarks. *)
end
