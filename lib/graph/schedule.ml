(* Balanced-binary-word periodic schedules on marked graphs.

   The schedule is the mechanical (Sturmian) staircase

     cum_v t = max 0 (floor ((t * num + offset_v) / den))

   at the graph's minimum cycle ratio num/den.  The offsets solve the
   difference-constraint system

     offset_dst - offset_src <= tokens e * den - time e * num

   whose constraint graph has no negative cycle exactly because num/den
   is the minimum over cycles of (sum tokens / sum time): summing the
   right-hand sides around any cycle C gives
   den * tokens(C) - num * time(C) >= 0.  Bellman-Ford therefore
   converges, and the resulting staircases never let any edge's token
   count go negative (the proof is a floor-difference bound; the
   checker below re-verifies it by direct simulation). *)

type t = {
  rate : Cycle_ratio.ratio;
  period : int;
  offsets : int array;
  words : bool array array;
  critical : Digraph.edge list;
}

(* Floor division for possibly-negative numerators (offsets can be
   arbitrarily negative on long chains). *)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let cum ~num ~den ~offset n =
  let f = fdiv ((n * num) + offset) den in
  if f > 0 then f else 0

let firings_before t v n =
  cum ~num:t.rate.Cycle_ratio.num ~den:t.rate.Cycle_ratio.den
    ~offset:t.offsets.(v) n

let fires_at t v n = firings_before t v (n + 1) > firings_before t v n

let word_rate t v =
  let ones = Array.fold_left (fun a b -> if b then a + 1 else a) 0 t.words.(v) in
  Cycle_ratio.make_ratio ones t.period

(* The steady-state word: firing indicator over one period of the
   unclamped staircase.  Periodic because f (i + den) = f i + num. *)
let word_of ~num ~den ~offset =
  Array.init den (fun i ->
      fdiv (((i + 1) * num) + offset) den > fdiv ((i * num) + offset) den)

let one_one = Cycle_ratio.make_ratio 1 1

let min_ratio g ~tokens ~time =
  match Howard.minimum_cycle_ratio g ~cost:tokens ~time with
  | None -> (one_one, [])
  | Some (r, cyc) ->
      if Cycle_ratio.ratio_compare r one_one > 0 then (one_one, cyc)
      else (r, cyc)

(* Feasible offsets by Bellman-Ford on the difference constraints; all
   sources at 0.  No negative cycle can exist (see header), so V-1
   rounds suffice; a V-th improving round means the rate passed in was
   not actually minimal. *)
let solve_offsets g ~tokens ~time ~num ~den =
  let nv = Digraph.vertex_count g in
  let theta = Array.make (max 1 nv) 0 in
  let relax () =
    let changed = ref false in
    Digraph.iter_edges g (fun e ->
        let u = Digraph.edge_src g e and v = Digraph.edge_dst g e in
        let w = (tokens e * den) - (time e * num) in
        if theta.(v) > theta.(u) + w then begin
          theta.(v) <- theta.(u) + w;
          changed := true
        end);
    !changed
  in
  let rounds = ref 0 in
  while relax () do
    incr rounds;
    if !rounds > nv then
      failwith "Schedule.build: difference constraints diverge (rate not minimal?)"
  done;
  theta

let build g ~tokens ~time =
  Digraph.iter_edges g (fun e ->
      if tokens e < 0 then invalid_arg "Schedule.build: negative token count");
  let rate, critical = min_ratio g ~tokens ~time in
  let num = rate.Cycle_ratio.num and den = rate.Cycle_ratio.den in
  let nv = Digraph.vertex_count g in
  let theta = solve_offsets g ~tokens ~time ~num ~den in
  (* Normalise by a common shift (differences — hence constraints — are
     preserved) so the largest offset is den - 1: every staircase then
     starts at cum 0 and the clamp only ever delays firings. *)
  if nv > 0 then begin
    let mx = Array.fold_left max theta.(0) (Array.sub theta 0 nv) in
    let shift = den - 1 - mx in
    for v = 0 to nv - 1 do
      theta.(v) <- theta.(v) + shift
    done
  end;
  let offsets = Array.sub theta 0 nv in
  let words = Array.init nv (fun v -> word_of ~num ~den ~offset:offsets.(v)) in
  { rate; period = den; offsets; words; critical }

let is_balanced w =
  let n = Array.length w in
  if n = 0 then true
  else begin
    let bit i = if w.(i mod n) then 1 else 0 in
    let ok = ref true in
    for len = 1 to n - 1 do
      let mn = ref max_int and mx = ref min_int in
      for start = 0 to n - 1 do
        let s = ref 0 in
        for i = start to start + len - 1 do
          s := !s + bit i
        done;
        if !s < !mn then mn := !s;
        if !s > !mx then mx := !s
      done;
      if !mx - !mn > 1 then ok := false
    done;
    !ok
  end

let check g ~tokens ~time t =
  let nv = Digraph.vertex_count g in
  let num = t.rate.Cycle_ratio.num and den = t.rate.Cycle_ratio.den in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let expected_rate, _ = min_ratio g ~tokens ~time in
  if t.rate <> expected_rate then
    err "rate %d/%d is not the minimum cycle ratio %d/%d" num den
      expected_rate.Cycle_ratio.num expected_rate.Cycle_ratio.den
  else if t.period <> den then err "period %d differs from denominator %d" t.period den
  else if Array.length t.offsets <> nv || Array.length t.words <> nv then
    err "schedule shape does not match the graph (%d vertices)" nv
  else begin
    let problem = ref None in
    let fail v fmt =
      Printf.ksprintf
        (fun s ->
          if !problem = None then
            problem := Some (Printf.sprintf "vertex %d (%s): %s" v (Digraph.vertex_label g v) s))
        fmt
    in
    for v = 0 to nv - 1 do
      let w = t.words.(v) in
      if Array.length w <> t.period then
        fail v "word length %d, expected %d" (Array.length w) t.period
      else begin
        let ones = Array.fold_left (fun a b -> if b then a + 1 else a) 0 w in
        if ones <> num then fail v "word has %d ones, rate demands %d" ones num;
        if not (is_balanced w) then fail v "word is not balanced";
        let mech = word_of ~num ~den ~offset:t.offsets.(v) in
        if w <> mech then fail v "word is not the mechanical word of offset %d" t.offsets.(v)
      end
    done;
    (match !problem with
    | Some _ -> ()
    | None ->
        Digraph.iter_edges g (fun e ->
            let u = Digraph.edge_src g e and v = Digraph.edge_dst g e in
            let slack = (tokens e * den) - (time e * num) - (t.offsets.(v) - t.offsets.(u)) in
            if slack < 0 then
              fail v "edge %s violates its difference constraint by %d"
                (Digraph.edge_label g e) (-slack)));
    (match !problem with
    | Some _ -> ()
    | None ->
        (* Direct evidence: replay the staircases and watch every
           edge's token count over the whole transient plus two full
           periods.  The transient ends once every unclamped staircase
           has reached zero. *)
        let transient = ref 0 in
        for v = 0 to nv - 1 do
          if num > 0 && t.offsets.(v) < 0 then
            transient := max !transient ((-t.offsets.(v) + num - 1) / num)
        done;
        let max_time = ref 0 in
        Digraph.iter_edges g (fun e -> max_time := max !max_time (time e));
        let horizon = !transient + (2 * t.period) + !max_time + 1 in
        Digraph.iter_edges g (fun e ->
            let u = Digraph.edge_src g e and v = Digraph.edge_dst g e in
            let l = time e in
            for n = 1 to horizon do
              let avail = tokens e + firings_before t u (n - l) - firings_before t v n in
              if avail < 0 && !problem = None then
                fail v "edge %s runs out of tokens at cycle %d"
                  (Digraph.edge_label g e) (n - 1)
            done));
    match !problem with Some s -> Error s | None -> Ok ()
  end

let render g t =
  let b = Buffer.create 256 in
  Printf.bprintf b "rate %d/%d  period %d\n" t.rate.Cycle_ratio.num
    t.rate.Cycle_ratio.den t.period;
  (match t.critical with
  | [] -> Buffer.add_string b "critical cycle: (acyclic)\n"
  | cyc ->
      Buffer.add_string b "critical cycle:";
      List.iter (fun e -> Printf.bprintf b " %s" (Digraph.edge_label g e)) cyc;
      Buffer.add_char b '\n');
  let width =
    List.fold_left
      (fun a v -> max a (String.length (Digraph.vertex_label g v)))
      1 (Digraph.vertices g)
  in
  List.iter
    (fun v ->
      let word =
        String.init t.period (fun i -> if t.words.(v).(i) then '1' else '0')
      in
      Printf.bprintf b "  %-*s  offset %4d  word %s\n" width
        (Digraph.vertex_label g v) t.offsets.(v) word)
    (Digraph.vertices g);
  Buffer.contents b
