(** Static periodic schedules from balanced binary firing words.

    Millo & de Simone show that a strongly connected marked graph
    running at its minimum cycle ratio [num/den] admits a periodic
    schedule in which every actor fires along a {e balanced binary
    word}: a 0/1 word of length [den] containing exactly [num] ones,
    mechanical in the Sturmian sense — actor [v]'s cumulative firing
    count after [t] cycles is

      [cum_v t = max 0 (floor ((t * num + offset_v) / den))].

    This module turns the critical-cycle analysis of {!Howard} /
    {!Cycle_ratio} into that schedule: the rate is the exact minimum
    cycle ratio (clamped at [1/1] — an actor cannot fire more than once
    per cycle), the per-vertex phase offsets come from the
    difference-constraint system

      [offset_dst - offset_src <= tokens e * den - time e * num]

    (one inequality per edge; solvable by Bellman-Ford, with no
    negative cycle precisely because [num/den] is the {e minimum}
    ratio), and the word is the first period of the cumulative
    staircase.  The schedule is valid from cycle 0: the [max 0] clamp
    only delays firings, which can never consume a token early.

    Edge attributes follow the conventions of {!Cycle_ratio}:
    [tokens e] is the initial marking of edge [e] (cost) and [time e]
    its latency in cycles, [time >= 0] with every cycle's total time
    positive. *)

type t = {
  rate : Cycle_ratio.ratio;  (** firings per cycle, in lowest terms *)
  period : int;  (** word length = [rate.den] *)
  offsets : int array;
      (** per-vertex phase [offset_v], normalised so that
          [max_v offset_v = period - 1] (hence every cumulative count
          starts at 0). *)
  words : bool array array;
      (** per-vertex steady-state firing word, length [period], with
          exactly [rate.num] ones each *)
  critical : Digraph.edge list;
      (** a cycle achieving the minimum ratio (empty only when the
          graph is acyclic) *)
}

val build :
  Digraph.t ->
  tokens:(Digraph.edge -> int) ->
  time:(Digraph.edge -> int) ->
  t
(** Compute the schedule.  An acyclic graph gets rate [1/1] (every
    actor fires every cycle once its inputs have filled).
    @raise Invalid_argument on a negative token count, or on the
    conditions of {!Cycle_ratio.minimum} (negative time, zero-time
    cycle). *)

val firings_before : t -> Digraph.vertex -> int -> int
(** [firings_before t v n] is the number of firings of [v] scheduled
    at cycles [0 .. n-1] — the clamped cumulative staircase. *)

val fires_at : t -> Digraph.vertex -> int -> bool
(** Whether [v] fires at cycle [n] ([>= 0]).  Agrees with [words]
    after the start-up transient and is [false] while the clamp
    holds the vertex back. *)

val word_rate : t -> Digraph.vertex -> Cycle_ratio.ratio
(** Ones-per-period of one vertex's word, in lowest terms — always
    equal to [t.rate]; exposed so tests can assert exactly that. *)

val is_balanced : bool array -> bool
(** Cyclic balance: for every window length, the number of ones in any
    two windows of that length (taken cyclically) differs by at most
    one.  Mechanical words are balanced; the property tests lean on
    this as the structural half of validity. *)

val check :
  Digraph.t ->
  tokens:(Digraph.edge -> int) ->
  time:(Digraph.edge -> int) ->
  t ->
  (unit, string) result
(** Validity proof for a schedule: word shapes and one-counts match
    the rate, every word is balanced and is exactly the mechanical
    word of its offset, every edge's difference constraint holds, and
    a direct token-count simulation over the transient plus two full
    periods never drives any edge's marking negative.  Any mutation of
    a word, offset, rate or period is rejected with a reason. *)

val render : Digraph.t -> t -> string
(** Deterministic multi-line rendering (rate, period, critical cycle,
    then one line per vertex with offset and word) for golden tests
    and the CLI. *)
