module Ring_fifo = Wp_util.Ring_fifo

type 'a t = {
  rs_name : string;
  buffer : 'a Ring_fifo.t; (* main + auxiliary register *)
}

let create ?(name = "rs") () = { rs_name = name; buffer = Ring_fifo.create (Ring_fifo.Bounded 2) }

let name t = t.rs_name
let occupancy t = Ring_fifo.length t.buffer
let is_full t = Ring_fifo.is_full t.buffer

(* Full and stopped: next cycle both registers stay occupied, so the
   upstream must hold its datum. *)
let stop_out t ~stop_in = stop_in && is_full t

let emit t ~stop_in =
  if stop_in || Ring_fifo.is_empty t.buffer then Token.Void
  else Token.Valid (Ring_fifo.pop_exn t.buffer)

let accept t token =
  match token with
  | Token.Void -> ()
  | Token.Valid v ->
    if not (Ring_fifo.push t.buffer v) then
      failwith (Printf.sprintf "Relay_station %s: datum lost (stop protocol violated)" t.rs_name)

let reset t = Ring_fifo.clear t.buffer
