module Ring_fifo = Wp_util.Ring_fifo

type mode =
  | Plain
  | Oracle

type stats = {
  firings : int;
  stalls : int;
  input_starved : int;
  output_blocked : int;
  required_counts : int array;
  dropped : int array;
}

type t = {
  proc : Process.t;
  shell_mode : mode;
  instance : Process.instance;
  fifos : int Ring_fifo.t array;
  drop_pending : int array;
  record_traces : bool;
  traces : int Token.t list array; (* newest first *)
  mutable firings : int;
  mutable stalls : int;
  mutable input_starved : int;
  mutable output_blocked : int;
  required_counts : int array;
  dropped : int array;
}

let create ?(capacity = 2) ?(record_traces = false) ~mode proc =
  if capacity < 0 then invalid_arg "Shell.create: negative capacity";
  Process.validate proc;
  let cap = if capacity = 0 then Ring_fifo.Unbounded else Ring_fifo.Bounded capacity in
  let n_in = Process.n_inputs proc in
  {
    proc;
    shell_mode = mode;
    instance = proc.Process.make ();
    fifos = Array.init n_in (fun _ -> Ring_fifo.create cap);
    drop_pending = Array.make n_in 0;
    record_traces;
    traces = Array.make (Process.n_outputs proc) [];
    firings = 0;
    stalls = 0;
    input_starved = 0;
    output_blocked = 0;
    required_counts = Array.make n_in 0;
    dropped = Array.make n_in 0;
  }

let process t = t.proc
let mode t = t.shell_mode
let name t = t.proc.Process.name

let input_stop t port =
  Ring_fifo.is_full t.fifos.(port) && t.drop_pending.(port) = 0

let required_mask t =
  match t.shell_mode with
  | Plain -> Array.make (Array.length t.fifos) true
  | Oracle -> t.instance.Process.required ()

let oracle_ready t =
  let mask = t.instance.Process.required () in
  let ok = ref true in
  Array.iteri
    (fun p need -> if need && Ring_fifo.is_empty t.fifos.(p) then ok := false)
    mask;
  !ok

let ready t =
  let mask = required_mask t in
  let ok = ref true in
  Array.iteri (fun p need -> if need && Ring_fifo.is_empty t.fifos.(p) then ok := false) mask;
  !ok

let record t outputs =
  if t.record_traces then
    Array.iteri (fun p tok -> t.traces.(p) <- tok :: t.traces.(p)) outputs

let fire t =
  if not (ready t) then invalid_arg (name t ^ ": fire while not ready");
  let mask = required_mask t in
  let inputs =
    Array.mapi
      (fun p need ->
        if need then begin
          t.required_counts.(p) <- t.required_counts.(p) + 1;
          Some (Ring_fifo.pop_exn t.fifos.(p))
        end
        else begin
          (* The oracle skips this port: the token of the current tag is
             useless.  Discard it now if buffered, or on arrival. *)
          if not (Ring_fifo.is_empty t.fifos.(p)) then begin
            Ring_fifo.drop_exn t.fifos.(p);
            t.dropped.(p) <- t.dropped.(p) + 1
          end
          else t.drop_pending.(p) <- t.drop_pending.(p) + 1;
          None
        end)
      mask
  in
  let words = t.instance.Process.fire inputs in
  t.firings <- t.firings + 1;
  let outputs = Array.map (fun w -> Token.Valid w) words in
  record t outputs;
  outputs

let stall t ~reason =
  t.stalls <- t.stalls + 1;
  (match reason with
  | `Input -> t.input_starved <- t.input_starved + 1
  | `Output -> t.output_blocked <- t.output_blocked + 1);
  let outputs = Array.make (Process.n_outputs t.proc) Token.Void in
  record t outputs;
  outputs

let accept t ~port tok =
  match tok with
  | Token.Void -> ()
  | Token.Valid v ->
    if t.drop_pending.(port) > 0 then begin
      t.drop_pending.(port) <- t.drop_pending.(port) - 1;
      t.dropped.(port) <- t.dropped.(port) + 1
    end
    else if not (Ring_fifo.push t.fifos.(port) v) then
      failwith
        (Printf.sprintf "Shell %s: token lost on port %s (stop protocol violated)"
           (name t)
           t.proc.Process.input_names.(port))

let halted t = t.instance.Process.halted ()

let stats t =
  {
    firings = t.firings;
    stalls = t.stalls;
    input_starved = t.input_starved;
    output_blocked = t.output_blocked;
    required_counts = Array.copy t.required_counts;
    dropped = Array.copy t.dropped;
  }

let output_trace t port = List.rev t.traces.(port)
let buffered t port = Ring_fifo.length t.fifos.(port)
