(** Wrappers (shells) that make a process latency-insensitive.

    A shell buffers tau-filtered input tokens in per-port FIFOs and fires
    the enclosed process according to its mode:

    - {b Plain} (the paper's WP1, Carloni's patient process): fire only
      when {e every} input port holds the token of the current tag.
    - {b Oracle} (the paper's WP2): fire as soon as the ports named by the
      process oracle hold their tokens; tokens of the current tag on the
      other ports are discarded — immediately if already buffered, or on
      arrival via a pending-discard counter (the "old tag" rule that keeps
      the system synchronised and provably equivalent).

    Firing decisions also depend on downstream back-pressure, which the
    engine checks separately; the shell itself exposes [input_stop] so that
    upstream relay chains can hold data when a FIFO is full.

    Tag bookkeeping uses only counters and the validity bit, never explicit
    tags on the wires — the simplification the paper describes. *)

type mode =
  | Plain
  | Oracle

type stats = {
  firings : int;      (** process activations *)
  stalls : int;       (** cycles spent emitting tau *)
  input_starved : int;(** stalls caused by a missing required token *)
  output_blocked : int;(** stalls caused by downstream back-pressure only *)
  required_counts : int array;
      (** per input port: firings that actually required the port *)
  dropped : int array; (** per input port: tokens discarded by the oracle rule *)
}

type t

val create : ?capacity:int -> ?record_traces:bool -> mode:mode -> Process.t -> t
(** [capacity] (default 2) bounds each input FIFO; [0] means unbounded (the
    theoretical semi-infinite wrapper).  Fresh process state is created.
    @raise Invalid_argument if [capacity < 0]. *)

val process : t -> Process.t
val mode : t -> mode
val name : t -> string

val input_stop : t -> int -> bool
(** Back-pressure on an input port, from start-of-cycle occupancy. *)

val ready : t -> bool
(** All tokens needed for the next firing are buffered. *)

val oracle_ready : t -> bool
(** Whether an {e Oracle}-mode shell in the same state would be ready:
    every port named by the process oracle for the next firing holds a
    token.  Pure (the oracle query does not advance process state), so
    it is safe to consult on a Plain shell — telemetry uses it to
    attribute a WP1 stall to the oracle-skip class. *)

val fire : t -> int Token.t array
(** Consume inputs per the mode, run the process, return the valid output
    tokens.  Must only be called when [ready] and when the engine has
    established that every output channel accepts.
    @raise Invalid_argument when not [ready]. *)

val stall : t -> reason:[ `Input | `Output ] -> int Token.t array
(** Record a stalled cycle and return tau on every output. *)

val accept : t -> port:int -> int Token.t -> unit
(** Token arriving on an input port at the end of the cycle.  Voids are
    ignored.  @raise Failure if a valid token arrives while the port FIFO
    is full (stop protocol violated). *)

val halted : t -> bool

val stats : t -> stats

val output_trace : t -> int -> int Trace.t
(** Recorded emissions on an output port, oldest first; empty unless
    [record_traces] was set. *)

val buffered : t -> int -> int
(** Tokens currently queued on an input port (diagnostics). *)
