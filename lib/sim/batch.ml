(* Composite structure-of-arrays batch kernel.

   Lanes are partitioned at [create] time:

   - Plain-mode, unfaulted lanes are {e statically schedulable}: their
     firing pattern is a pure function of (topology, per-channel
     relay-station counts, FIFO capacity) — a marked graph — so lanes
     agreeing on those compile ONE count-only prepass table
     ({!Static.tables}) and replay it together in [Replay] below.  A
     replay cycle does no stop propagation, no readiness scan and no
     stall accounting: scheduled shells fire their real process
     closures on values in per-channel rings, and {e everything else}
     (stall counters, delivered counts, buffered occupancies) is
     reconstructed on demand from cumulative schedule tables shared by
     the whole group.  Stall-heavy configurations — exactly the
     wire-pipelined ones this library studies — cost almost nothing
     per cycle.

   - Oracle-mode and faulted lanes are data-dependent, so they step on
     the dynamic SoA kernel in [Dyn]: Fast.step with one extra inner
     loop over active lanes, entity-outer / lane-inner ([e * L + l])
     so consecutive iterations touch adjacent cells and per-entity
     setup is amortized across lanes.

   Both sub-kernels mirror Fast cycle by cycle as a correctness
   obligation, not a style choice: the differential battery requires
   byte-identical outcomes, cycle counts, delivered counts, stats and
   traces.  When editing, diff against Fast.step phase by phase. *)

module Shell = Wp_lis.Shell
module Token = Wp_lis.Token
module Process = Wp_lis.Process
module Ba = Bigarray.Array1

type ia = (int, Bigarray.int_elt, Bigarray.c_layout) Ba.t

type lane = {
  net : Network.t;
  mode : Shell.mode;
  capacity : int;
  fault : Fault.spec;
  max_cycles : int;
  cancel : Wp_util.Cancel.t;
}

exception Unbatchable of string

let unbatchable fmt = Printf.ksprintf (fun s -> raise (Unbatchable s)) fmt

let ia n =
  let a = Ba.create Bigarray.int Bigarray.c_layout (max 1 n) in
  Ba.fill a 0;
  a

(* ------------------------------------------------------------------ *)
(* Dynamic kernel: Oracle and faulted lanes                           *)
(* ------------------------------------------------------------------ *)

module Dyn = struct
  type t = {
    n_lanes : int;
    n_nodes : int;
    n_chans : int;
    record_traces : bool;
    nets : Network.t array; (* per lane *)
    oracle : bool array; (* per lane *)
    cap : int array; (* per lane, >= 1 *)
    cap_max : int;
    faults : Fault.t option array; (* per lane *)
    budget : int array; (* per lane max_cycles *)
    cancels : Wp_util.Cancel.t array; (* per lane *)
    has_cancel : bool; (* any non-[never] token in [cancels] *)
    quiescence : int array; (* per lane *)
    (* shared structure (validated equal across lanes) *)
    in_base : int array; (* n_nodes + 1 *)
    out_base : int array; (* n_nodes + 1 *)
    chan_src_op : int array;
    chan_dst_ip : int array;
    out_chan_base : int array; (* n_nodes + 1 *)
    out_chan_ids : int array;
    (* per (node, lane) process instances, flat [n * L + l] *)
    instances : Process.instance array;
    mutable inputs_scratch : int option array array;
        (* per node; refreshed each step so the arrays stay in the minor
           heap and [Some v] stores skip the remembered set *)
    plain_masks : bool array array; (* per node *)
    halt_flag : Bytes.t; (* per lane, sticky; updated right after a fire *)
    (* SoA lane state; cell index is [entity * L + lane] unless noted *)
    fifo_buf : ia; (* [(ip * L + l) * cap_max + slot], ring mod cap.(l) *)
    fifo_head : ia;
    fifo_len : ia;
    drop_pending : ia;
    required_counts : ia;
    dropped : ia;
    emit_val : ia;
    emit_valid : Bytes.t;
    firings : ia;
    stalls : ia;
    input_starved : ia;
    output_blocked : ia;
    chan_delivered : ia;
    producer_stop : Bytes.t;
    (* relay pool: per-(chan, lane) slice of a global slot array, grouped
       per channel so lanes of one channel are contiguous *)
    rs_off : int array; (* n_chans * L *)
    rs_cnt : int array; (* n_chans * L *)
    rs_val : ia; (* 2 * total_slots *)
    rs_head : ia;
    rs_len : ia;
    stage_stops : Bytes.t;
    rs_out_val : ia;
    rs_out_valid : Bytes.t;
    (* faulted-lane delivery hooks, preallocated at [c * L + l] *)
    f_can : (unit -> bool) array;
    f_acc : (int -> unit) array;
    traces : int Token.t list array; (* [(out_port * L) + l]; only if record_traces *)
    (* scheduling *)
    mutable clock : int;
    act : int array; (* active lane ids, first n_act entries *)
    mutable n_act : int;
    finished : Engine.outcome option array; (* per lane *)
    lane_end : int array; (* per lane: clock at finish *)
    quiet : int array; (* per lane *)
    fired : Bytes.t; (* per lane, per-cycle scratch *)
  }

  (* ---------------------------------------------------------------- *)
  (* Compile                                                          *)
  (* ---------------------------------------------------------------- *)

  let create ~record_traces lanes =
    let n_lanes = Array.length lanes in
    let net0 = lanes.(0).net in
    let n_nodes = Network.node_count net0 in
    let n_chans = Network.channel_count net0 in
    let procs0 = Array.init n_nodes (fun n -> Network.node_process net0 n) in
    let prefix f =
      let base = Array.make (n_nodes + 1) 0 in
      for n = 0 to n_nodes - 1 do
        base.(n + 1) <- base.(n) + f procs0.(n)
      done;
      base
    in
    let in_base = prefix Process.n_inputs in
    let out_base = prefix Process.n_outputs in
    let n_in_total = in_base.(n_nodes) in
    let n_out_total = out_base.(n_nodes) in
    let chan_src_op = Array.make (max 1 n_chans) 0 in
    let chan_dst_ip = Array.make (max 1 n_chans) 0 in
    let chan_src_node = Array.make (max 1 n_chans) 0 in
    for c = 0 to n_chans - 1 do
      let src_node, src_port = Network.channel_src net0 c in
      let dst_node, dst_port = Network.channel_dst net0 c in
      chan_src_node.(c) <- src_node;
      chan_src_op.(c) <- out_base.(src_node) + src_port;
      chan_dst_ip.(c) <- in_base.(dst_node) + dst_port
    done;
    let out_chan_base = Array.make (n_nodes + 1) 0 in
    for c = 0 to n_chans - 1 do
      let n = chan_src_node.(c) in
      out_chan_base.(n + 1) <- out_chan_base.(n + 1) + 1
    done;
    for n = 0 to n_nodes - 1 do
      out_chan_base.(n + 1) <- out_chan_base.(n + 1) + out_chan_base.(n)
    done;
    let out_chan_ids = Array.make (max 1 n_chans) 0 in
    let cursor = Array.copy out_chan_base in
    for c = 0 to n_chans - 1 do
      let n = chan_src_node.(c) in
      out_chan_ids.(cursor.(n)) <- c;
      cursor.(n) <- cursor.(n) + 1
    done;
    (* relay pool: per-(chan, lane) slices, lanes of a channel contiguous *)
    let rs_off = Array.make (max 1 (n_chans * n_lanes)) 0 in
    let rs_cnt = Array.make (max 1 (n_chans * n_lanes)) 0 in
    let total_slots = ref 0 in
    for c = 0 to n_chans - 1 do
      for l = 0 to n_lanes - 1 do
        let k = Network.relay_stations lanes.(l).net c in
        rs_off.((c * n_lanes) + l) <- !total_slots;
        rs_cnt.((c * n_lanes) + l) <- k;
        total_slots := !total_slots + k
      done
    done;
    let quiescence =
      Array.init n_lanes (fun l ->
          let rs =
            List.fold_left
              (fun acc c -> acc + Network.relay_stations lanes.(l).net c)
              0
              (Network.channels lanes.(l).net)
          in
          16 + (4 * (n_nodes + n_chans + rs)))
    in
    let faults =
      Array.map
        (fun ln ->
          if Fault.is_none ln.fault then None
          else Some (Fault.make ln.fault ~n_chans))
        lanes
    in
    let cap = Array.map (fun ln -> ln.capacity) lanes in
    let cap_max = Array.fold_left max 1 cap in
    let dummy_inst =
      {
        Process.required = (fun () -> [||]);
        fire = (fun _ -> [||]);
        halted = (fun () -> false);
      }
    in
    let instances = Array.make (max 1 (n_nodes * n_lanes)) dummy_inst in
    let lane_procs =
      Array.map
        (fun ln -> Array.init n_nodes (fun n -> Network.node_process ln.net n))
        lanes
    in
    for n = 0 to n_nodes - 1 do
      for l = 0 to n_lanes - 1 do
        instances.((n * n_lanes) + l) <- lane_procs.(l).(n).Process.make ()
      done
    done;
    let no_can () = false in
    let t =
      {
        n_lanes;
        n_nodes;
        n_chans;
        record_traces;
        nets = Array.map (fun ln -> ln.net) lanes;
        oracle = Array.map (fun ln -> ln.mode = Shell.Oracle) lanes;
        cap;
        cap_max;
        faults;
        budget = Array.map (fun ln -> ln.max_cycles) lanes;
        cancels = Array.map (fun ln -> ln.cancel) lanes;
        has_cancel =
          Array.exists (fun ln -> not (Wp_util.Cancel.is_never ln.cancel)) lanes;
        quiescence;
        in_base;
        out_base;
        chan_src_op;
        chan_dst_ip;
        out_chan_base;
        out_chan_ids;
        instances;
        inputs_scratch =
          Array.init n_nodes (fun n ->
              Array.make (Process.n_inputs procs0.(n)) None);
        plain_masks =
          Array.init n_nodes (fun n ->
              Array.make (Process.n_inputs procs0.(n)) true);
        halt_flag = Bytes.make n_lanes '\000';
        fifo_buf = ia (n_in_total * n_lanes * cap_max);
        fifo_head = ia (n_in_total * n_lanes);
        fifo_len = ia (n_in_total * n_lanes);
        drop_pending = ia (n_in_total * n_lanes);
        required_counts = ia (n_in_total * n_lanes);
        dropped = ia (n_in_total * n_lanes);
        emit_val = ia (n_out_total * n_lanes);
        emit_valid = Bytes.make (max 1 (n_out_total * n_lanes)) '\000';
        firings = ia (n_nodes * n_lanes);
        stalls = ia (n_nodes * n_lanes);
        input_starved = ia (n_nodes * n_lanes);
        output_blocked = ia (n_nodes * n_lanes);
        chan_delivered = ia (n_chans * n_lanes);
        producer_stop = Bytes.make (max 1 (n_chans * n_lanes)) '\000';
        rs_off;
        rs_cnt;
        rs_val = ia (2 * !total_slots);
        rs_head = ia !total_slots;
        rs_len = ia !total_slots;
        stage_stops = Bytes.make (max 1 !total_slots) '\000';
        rs_out_val = ia !total_slots;
        rs_out_valid = Bytes.make (max 1 !total_slots) '\000';
        f_can = Array.make (max 1 (n_chans * n_lanes)) no_can;
        f_acc = Array.make (max 1 (n_chans * n_lanes)) ignore;
        traces = Array.make (max 1 (n_out_total * n_lanes)) [];
        clock = 0;
        act = Array.init (max 1 n_lanes) (fun l -> l);
        n_act = n_lanes;
        finished = Array.make n_lanes None;
        lane_end = Array.make n_lanes 0;
        quiet = Array.make n_lanes 0;
        fired = Bytes.make n_lanes '\000';
      }
    in
    let fifo_push_exn ipl capl v =
      let len = Ba.get t.fifo_len ipl in
      if len >= capl then
        failwith "Batch shell: token lost (stop protocol violated)"
      else begin
        let head = Ba.get t.fifo_head ipl in
        (* head < capl and len < capl, so one conditional subtract replaces
           the integer division of [mod]. *)
        let slot = head + len in
        let slot = if slot >= capl then slot - capl else slot in
        Ba.set t.fifo_buf ((ipl * cap_max) + slot) v;
        Ba.set t.fifo_len ipl (len + 1)
      end
    in
    (* A process can in principle be terminal at reset; seed the sticky
       halt flags so the first run-loop check agrees with Fast. *)
    for l = 0 to n_lanes - 1 do
      let h = ref false in
      for n = 0 to n_nodes - 1 do
        if (not !h) && (instances.((n * n_lanes) + l)).Process.halted () then
          h := true
      done;
      if !h then Bytes.set t.halt_flag l '\001'
    done;
    (* Per-(channel, lane) delivery hooks for faulted lanes: Fault.deliver
       needs live closures, so allocate them once here instead of per
       cycle (Fast allocates per cycle; the decisions are identical). *)
    for l = 0 to n_lanes - 1 do
      match faults.(l) with
      | None -> ()
      | Some _ ->
        for c = 0 to n_chans - 1 do
          let cl = (c * n_lanes) + l in
          let ipl = (chan_dst_ip.(c) * n_lanes) + l in
          let capl = cap.(l) in
          t.f_can.(cl) <-
            (fun () ->
              not
                (Ba.get t.fifo_len ipl >= capl
                && Ba.get t.drop_pending ipl = 0));
          t.f_acc.(cl) <-
            (fun v ->
              Ba.set t.chan_delivered cl (Ba.get t.chan_delivered cl + 1);
              if Ba.get t.drop_pending ipl > 0 then begin
                Ba.set t.drop_pending ipl (Ba.get t.drop_pending ipl - 1);
                Ba.set t.dropped ipl (Ba.get t.dropped ipl + 1)
              end
              else fifo_push_exn ipl capl v)
        done
    done;
    (* Reset: one initial token per channel per lane. *)
    for l = 0 to n_lanes - 1 do
      for c = 0 to n_chans - 1 do
        let src_node, src_port = Network.channel_src net0 c in
        let reset_value =
          lane_procs.(l).(src_node).Process.reset_outputs.(src_port)
        in
        fifo_push_exn ((chan_dst_ip.(c) * n_lanes) + l) cap.(l) reset_value;
        match faults.(l) with
        | Some f -> Fault.note_reset f ~chan:c ~value:reset_value
        | None -> ()
      done
    done;
    t

  (* ---------------------------------------------------------------- *)
  (* Step                                                             *)
  (* ---------------------------------------------------------------- *)

  let step t =
    let ll = t.n_lanes in
    let cyc = t.clock in
    (* Fresh (minor-heap) input scratch each cycle: storing a young
       [Some v] into an old array would go through the remembered set on
       every token of every firing; a young target makes it a plain
       store.  Five word-sized arrays per cycle is far cheaper. *)
    t.inputs_scratch <-
      Array.map (fun a -> Array.make (Array.length a) None) t.inputs_scratch;
    (* Phase 1: propagate stops backwards along each relay chain. *)
    for c = 0 to t.n_chans - 1 do
      let ip = Array.unsafe_get t.chan_dst_ip c in
      for a = 0 to t.n_act - 1 do
        let l = Array.unsafe_get t.act a in
        let ipl = (ip * ll) + l in
        let cl = (c * ll) + l in
        let stop =
          ref
            ((Ba.unsafe_get t.fifo_len ipl >= Array.unsafe_get t.cap l
             && Ba.unsafe_get t.drop_pending ipl = 0)
            ||
            match Array.unsafe_get t.faults l with
            | None -> false
            | Some f -> Fault.stalled f ~cycle:cyc ~chan:c)
        in
        let base = Array.unsafe_get t.rs_off cl in
        let k = Array.unsafe_get t.rs_cnt cl in
        for i = k - 1 downto 0 do
          let r = base + i in
          Bytes.unsafe_set t.stage_stops r (if !stop then '\001' else '\000');
          stop := !stop && Ba.unsafe_get t.rs_len r >= 2
        done;
        Bytes.unsafe_set t.producer_stop cl (if !stop then '\001' else '\000')
      done
    done;
    (* Phase 2: firing decisions, emissions into the flat scratch. *)
    for n = 0 to t.n_nodes - 1 do
      let ocb = Array.unsafe_get t.out_chan_base n in
      let oce = Array.unsafe_get t.out_chan_base (n + 1) in
      let ib = Array.unsafe_get t.in_base n in
      let n_in = Array.unsafe_get t.in_base (n + 1) - ib in
      let op0 = Array.unsafe_get t.out_base n in
      let n_out = Array.unsafe_get t.out_base (n + 1) - op0 in
      let inputs = Array.unsafe_get t.inputs_scratch n in
      let plain = Array.unsafe_get t.plain_masks n in
      for a = 0 to t.n_act - 1 do
        let l = Array.unsafe_get t.act a in
        let inst = Array.unsafe_get t.instances ((n * ll) + l) in
        let outputs_clear =
          let ok = ref true in
          for j = ocb to oce - 1 do
            if
              Bytes.unsafe_get t.producer_stop
                ((Array.unsafe_get t.out_chan_ids j * ll) + l)
              = '\001'
            then ok := false
          done;
          !ok
        in
        let mask =
          if Array.unsafe_get t.oracle l then inst.Process.required ()
          else plain
        in
        let ready = ref true in
        for p = 0 to n_in - 1 do
          if
            Array.unsafe_get mask p
            && Ba.unsafe_get t.fifo_len (((ib + p) * ll) + l) = 0
          then ready := false
        done;
        if !ready && outputs_clear then begin
          Bytes.unsafe_set t.fired l '\001';
          let capl = Array.unsafe_get t.cap l in
          for p = 0 to n_in - 1 do
            let ipl = ((ib + p) * ll) + l in
            if Array.unsafe_get mask p then begin
              Ba.unsafe_set t.required_counts ipl
                (Ba.unsafe_get t.required_counts ipl + 1);
              let head = Ba.unsafe_get t.fifo_head ipl in
              let v = Ba.unsafe_get t.fifo_buf ((ipl * t.cap_max) + head) in
              let head' = head + 1 in
              Ba.unsafe_set t.fifo_head ipl (if head' >= capl then 0 else head');
              Ba.unsafe_set t.fifo_len ipl (Ba.unsafe_get t.fifo_len ipl - 1);
              Array.unsafe_set inputs p (Some v)
            end
            else begin
              (* Oracle skip: discard the useless token now or on arrival. *)
              if Ba.unsafe_get t.fifo_len ipl > 0 then begin
                let head = Ba.unsafe_get t.fifo_head ipl in
                let head' = head + 1 in
                Ba.unsafe_set t.fifo_head ipl
                  (if head' >= capl then 0 else head');
                Ba.unsafe_set t.fifo_len ipl
                  (Ba.unsafe_get t.fifo_len ipl - 1);
                Ba.unsafe_set t.dropped ipl (Ba.unsafe_get t.dropped ipl + 1)
              end
              else
                Ba.unsafe_set t.drop_pending ipl
                  (Ba.unsafe_get t.drop_pending ipl + 1);
              Array.unsafe_set inputs p None
            end
          done;
          let words = inst.Process.fire inputs in
          (* [halted] is a pure function of process state and state only
             advances in [fire], so probing right here keeps the sticky
             per-lane flag exactly as fresh as Fast's end-of-cycle scan —
             without paying [n_nodes] closure calls per lane per cycle. *)
          if inst.Process.halted () then Bytes.unsafe_set t.halt_flag l '\001';
          let nl = (n * ll) + l in
          Ba.unsafe_set t.firings nl (Ba.unsafe_get t.firings nl + 1);
          for q = 0 to n_out - 1 do
            let opl = ((op0 + q) * ll) + l in
            Ba.unsafe_set t.emit_val opl (Array.unsafe_get words q);
            Bytes.unsafe_set t.emit_valid opl '\001'
          done;
          if t.record_traces then
            for q = 0 to n_out - 1 do
              let opl = ((op0 + q) * ll) + l in
              t.traces.(opl) <- Token.Valid words.(q) :: t.traces.(opl)
            done
        end
        else begin
          let nl = (n * ll) + l in
          Ba.unsafe_set t.stalls nl (Ba.unsafe_get t.stalls nl + 1);
          if !ready then
            Ba.unsafe_set t.output_blocked nl
              (Ba.unsafe_get t.output_blocked nl + 1)
          else
            Ba.unsafe_set t.input_starved nl
              (Ba.unsafe_get t.input_starved nl + 1);
          for q = 0 to n_out - 1 do
            Bytes.unsafe_set t.emit_valid (((op0 + q) * ll) + l) '\000'
          done;
          if t.record_traces then
            for q = 0 to n_out - 1 do
              let opl = ((op0 + q) * ll) + l in
              t.traces.(opl) <- Token.Void :: t.traces.(opl)
            done
        end
      done
    done;
    (* Phase 3: simultaneous shift; relay emissions computed pre-shift. *)
    for c = 0 to t.n_chans - 1 do
      let op = Array.unsafe_get t.chan_src_op c in
      let ip = Array.unsafe_get t.chan_dst_ip c in
      for a = 0 to t.n_act - 1 do
        let l = Array.unsafe_get t.act a in
        let cl = (c * ll) + l in
        let opl = (op * ll) + l in
        let base = Array.unsafe_get t.rs_off cl in
        let k = Array.unsafe_get t.rs_cnt cl in
        let tc_valid, tc_val =
          if k = 0 then
            (Bytes.unsafe_get t.emit_valid opl = '\001', Ba.unsafe_get t.emit_val opl)
          else begin
            for i = 0 to k - 1 do
              let r = base + i in
              if
                Bytes.unsafe_get t.stage_stops r = '\001'
                || Ba.unsafe_get t.rs_len r = 0
              then Bytes.unsafe_set t.rs_out_valid r '\000'
              else begin
                Bytes.unsafe_set t.rs_out_valid r '\001';
                let head = Ba.unsafe_get t.rs_head r in
                Ba.unsafe_set t.rs_out_val r
                  (Ba.unsafe_get t.rs_val ((2 * r) + head));
                Ba.unsafe_set t.rs_head r (1 - head);
                Ba.unsafe_set t.rs_len r (Ba.unsafe_get t.rs_len r - 1)
              end
            done;
            let accept r v =
              if Ba.unsafe_get t.rs_len r >= 2 then
                failwith "Batch relay station: datum lost (stop protocol violated)"
              else begin
                Ba.unsafe_set t.rs_val
                  ((2 * r)
                  + ((Ba.unsafe_get t.rs_head r + Ba.unsafe_get t.rs_len r)
                     land 1))
                  v;
                Ba.unsafe_set t.rs_len r (Ba.unsafe_get t.rs_len r + 1)
              end
            in
            if Bytes.unsafe_get t.emit_valid opl = '\001' then
              accept base (Ba.unsafe_get t.emit_val opl);
            for i = 1 to k - 1 do
              if Bytes.unsafe_get t.rs_out_valid (base + i - 1) = '\001' then
                accept (base + i) (Ba.unsafe_get t.rs_out_val (base + i - 1))
            done;
            ( Bytes.unsafe_get t.rs_out_valid (base + k - 1) = '\001',
              Ba.unsafe_get t.rs_out_val (base + k - 1) )
          end
        in
        match Array.unsafe_get t.faults l with
        | None ->
          if tc_valid then begin
            let ipl = (ip * ll) + l in
            Ba.unsafe_set t.chan_delivered cl
              (Ba.unsafe_get t.chan_delivered cl + 1);
            if Ba.unsafe_get t.drop_pending ipl > 0 then begin
              Ba.unsafe_set t.drop_pending ipl
                (Ba.unsafe_get t.drop_pending ipl - 1);
              Ba.unsafe_set t.dropped ipl (Ba.unsafe_get t.dropped ipl + 1)
            end
            else begin
              let capl = Array.unsafe_get t.cap l in
              let len = Ba.unsafe_get t.fifo_len ipl in
              if len >= capl then
                failwith "Batch shell: token lost (stop protocol violated)"
              else begin
                let head = Ba.unsafe_get t.fifo_head ipl in
                let slot = head + len in
                let slot = if slot >= capl then slot - capl else slot in
                Ba.unsafe_set t.fifo_buf ((ipl * t.cap_max) + slot) tc_val;
                Ba.unsafe_set t.fifo_len ipl (len + 1)
              end
            end
          end
        | Some f ->
          Fault.deliver f ~chan:c ~valid:tc_valid ~value:tc_val
            ~can_accept:(Array.unsafe_get t.f_can cl)
            ~accept:(Array.unsafe_get t.f_acc cl)
      done
    done;
    t.clock <- t.clock + 1;
    for a = 0 to t.n_act - 1 do
      let l = Array.unsafe_get t.act a in
      if Bytes.unsafe_get t.fired l = '\001' then t.quiet.(l) <- 0
      else t.quiet.(l) <- t.quiet.(l) + 1;
      Bytes.unsafe_set t.fired l '\000'
    done

  let lane_halted t l = Bytes.unsafe_get t.halt_flag l = '\001'

  let run t =
    while t.n_act > 0 do
      (* Same per-lane termination checks, in the same order, as Fast.run:
         halt, quiescence-window deadlock, the cycle budget, then the
         cancellation poll (every [Engine.cancel_interval] cycles, one
         clock sample shared by every lane of the round).  A cancelled
         lane is compacted out exactly like a finished one, so its
         siblings' results stay byte-identical. *)
      let poll_cancel =
        t.has_cancel && t.clock land (Engine.cancel_interval - 1) = 0
      in
      let now = if poll_cancel then Wp_util.Cancel.now () else 0. in
      let w = ref 0 in
      for a = 0 to t.n_act - 1 do
        let l = t.act.(a) in
        let fin =
          if lane_halted t l then Some (Engine.Halted t.clock)
          else if t.quiet.(l) > t.quiescence.(l) then
            Some (Engine.Deadlocked t.clock)
          else if t.clock >= t.budget.(l) then Some (Engine.Exhausted t.clock)
          else if
            poll_cancel && Wp_util.Cancel.cancelled_at ~now t.cancels.(l)
          then Some (Engine.Cancelled t.clock)
          else None
        in
        match fin with
        | Some o ->
          t.finished.(l) <- Some o;
          t.lane_end.(l) <- t.clock
        | None ->
          t.act.(!w) <- l;
          incr w
      done;
      t.n_act <- !w;
      if t.n_act > 0 then step t
    done;
    Array.map
      (function Some o -> o | None -> assert false)
      t.finished

  (* ---------------------------------------------------------------- *)
  (* Accessors                                                        *)
  (* ---------------------------------------------------------------- *)

  let cycles t = t.clock

  let lane_cycles t ~lane =
    match t.finished.(lane) with Some _ -> t.lane_end.(lane) | None -> t.clock

  let outcome t ~lane = t.finished.(lane)
  let network t ~lane = t.nets.(lane)
  let mode t ~lane = if t.oracle.(lane) then Shell.Oracle else Shell.Plain
  let delivered t ~lane c = Ba.get t.chan_delivered ((c * t.n_lanes) + lane)

  let fault_injections t ~lane =
    match t.faults.(lane) with Some f -> Fault.injections f | None -> 0

  let node_stats t ~lane n =
    let lo = t.in_base.(n) and hi = t.in_base.(n + 1) in
    let per a = Array.init (hi - lo) (fun p -> Ba.get a (((lo + p) * t.n_lanes) + lane)) in
    {
      Shell.firings = Ba.get t.firings ((n * t.n_lanes) + lane);
      stalls = Ba.get t.stalls ((n * t.n_lanes) + lane);
      input_starved = Ba.get t.input_starved ((n * t.n_lanes) + lane);
      output_blocked = Ba.get t.output_blocked ((n * t.n_lanes) + lane);
      required_counts = per t.required_counts;
      dropped = per t.dropped;
    }

  let output_trace t ~lane node port =
    List.rev t.traces.(((t.out_base.(node) + port) * t.n_lanes) + lane)

  let buffered t ~lane node port =
    Ba.get t.fifo_len (((t.in_base.(node) + port) * t.n_lanes) + lane)
end

(* ------------------------------------------------------------------ *)
(* Static-replay kernel: groups of Plain, unfaulted lanes             *)
(* ------------------------------------------------------------------ *)

module Replay = struct
  (* All lanes of a group share (topology, per-channel relay-station
     counts, capacity), hence the exact same firing schedule, the same
     quiescence window and — while active — the same clock.  Values
     flow through per-channel rings whose head/tail cursors are shared
     by every lane: active lanes have consumed and produced the same
     token counts at every cycle, so cursor maintenance is paid once
     per channel, not once per lane.  Cell [(c, slot, l)] lives at
     [q_base.(c) + slot * L + l], lane-inner for contiguity.

     A ring never overflows: a channel with capacity [C] and [k] relay
     stations holds at most [C + 2k] tokens in flight at a cycle
     boundary, plus one transiently when a producer fires earlier in
     the table row than its consumer — stride [C + 2k + 2] leaves a
     spare slot on top of that.

     Stall and delivery accounting does not happen per cycle at all:
     the schedule determines every count, so cumulative tables over
     the transient plus one period (shared by the group) reconstruct
     any lane's statistics at any end cycle in O(1). *)

  type t = {
    n_lanes : int;
    global : int array; (* local lane -> caller's lane id *)
    record_traces : bool;
    nets : Network.t array; (* per local lane *)
    budget : int array; (* per local lane *)
    cancels : Wp_util.Cancel.t array; (* per local lane *)
    has_cancel : bool;
    n_nodes : int;
    n_chans : int;
    instances : Process.instance array; (* [n * L + l] *)
    in_base : int array;
    out_base : int array;
    ip_chan : int array; (* global input port -> feeding channel *)
    op_chan : int array; (* global output port -> driven channel *)
    transient : int;
    period : int;
    table : Static.table_cycle array;
    (* cumulative schedule counts: row [j] covers cycles [0, j),
       rows 0 .. transient + period; beyond that extrapolate with the
       per-period deltas *)
    cum_fired : int array; (* (row * n_nodes) + n *)
    cum_starved : int array;
    cum_blocked : int array;
    cum_deliver : int array; (* (row * n_chans) + c *)
    per_fired : int array; (* per node, one period's worth *)
    per_starved : int array;
    per_blocked : int array;
    per_deliver : int array; (* per channel *)
    mutable inputs_scratch : int option array array;
    halt_flag : Bytes.t; (* per local lane, sticky *)
    traces : int Token.t list array; (* [(out_port * L) + l] *)
    (* per-channel value rings, cursors shared across lanes *)
    q_val : ia;
    q_base : int array;
    q_stride : int array;
    q_head : int array;
    q_tail : int array;
    q_fill : int array;
    quiescence : int;
    mutable quiet : int;
    mutable clock : int;
    act : int array;
    mutable n_act : int;
    finished : Engine.outcome option array;
    lane_end : int array;
  }

  let create ~record_traces ~capacity ~schedule:(transient, period, table)
      ~global lanes =
    let n_lanes = Array.length lanes in
    let net0 = lanes.(0).net in
    let n_nodes = Network.node_count net0 in
    let n_chans = Network.channel_count net0 in
    let procs0 = Array.init n_nodes (fun n -> Network.node_process net0 n) in
    let prefix f =
      let base = Array.make (n_nodes + 1) 0 in
      for n = 0 to n_nodes - 1 do
        base.(n + 1) <- base.(n) + f procs0.(n)
      done;
      base
    in
    let in_base = prefix Process.n_inputs in
    let out_base = prefix Process.n_outputs in
    let n_in_total = in_base.(n_nodes) in
    let n_out_total = out_base.(n_nodes) in
    let ip_chan = Array.make (max 1 n_in_total) (-1) in
    let op_chan = Array.make (max 1 n_out_total) (-1) in
    let rs = Array.init n_chans (fun c -> Network.relay_stations net0 c) in
    for c = 0 to n_chans - 1 do
      let src_node, src_port = Network.channel_src net0 c in
      let dst_node, dst_port = Network.channel_dst net0 c in
      ip_chan.(in_base.(dst_node) + dst_port) <- c;
      op_chan.(out_base.(src_node) + src_port) <- c
    done;
    let total_rs = Array.fold_left ( + ) 0 rs in
    let lane_procs =
      Array.map
        (fun ln -> Array.init n_nodes (fun n -> Network.node_process ln.net n))
        lanes
    in
    let dummy_inst =
      {
        Process.required = (fun () -> [||]);
        fire = (fun _ -> [||]);
        halted = (fun () -> false);
      }
    in
    let instances = Array.make (max 1 (n_nodes * n_lanes)) dummy_inst in
    for n = 0 to n_nodes - 1 do
      for l = 0 to n_lanes - 1 do
        instances.((n * n_lanes) + l) <- lane_procs.(l).(n).Process.make ()
      done
    done;
    let tp = transient + period in
    let build_cum n_ent proj =
      let cum = Array.make (max 1 ((tp + 1) * n_ent)) 0 in
      for j = 0 to tp - 1 do
        Array.blit cum (j * n_ent) cum ((j + 1) * n_ent) n_ent;
        let ids = proj table.(j) in
        for i = 0 to Array.length ids - 1 do
          let e = ((j + 1) * n_ent) + ids.(i) in
          cum.(e) <- cum.(e) + 1
        done
      done;
      cum
    in
    let per_of cum n_ent =
      Array.init n_ent (fun e ->
          cum.((tp * n_ent) + e) - cum.((transient * n_ent) + e))
    in
    let cum_fired = build_cum n_nodes (fun tc -> tc.Static.tc_fired) in
    let cum_starved = build_cum n_nodes (fun tc -> tc.Static.tc_starved) in
    let cum_blocked = build_cum n_nodes (fun tc -> tc.Static.tc_blocked) in
    let cum_deliver = build_cum n_chans (fun tc -> tc.Static.tc_deliver) in
    let q_stride = Array.map (fun k -> capacity + (2 * k) + 2) rs in
    let q_base = Array.make (n_chans + 1) 0 in
    for c = 0 to n_chans - 1 do
      q_base.(c + 1) <- q_base.(c) + (q_stride.(c) * n_lanes)
    done;
    let t =
      {
        n_lanes;
        global;
        record_traces;
        nets = Array.map (fun ln -> ln.net) lanes;
        budget = Array.map (fun ln -> ln.max_cycles) lanes;
        cancels = Array.map (fun ln -> ln.cancel) lanes;
        has_cancel =
          Array.exists (fun ln -> not (Wp_util.Cancel.is_never ln.cancel)) lanes;
        n_nodes;
        n_chans;
        instances;
        in_base;
        out_base;
        ip_chan;
        op_chan;
        transient;
        period;
        table;
        cum_fired;
        cum_starved;
        cum_blocked;
        cum_deliver;
        per_fired = per_of cum_fired n_nodes;
        per_starved = per_of cum_starved n_nodes;
        per_blocked = per_of cum_blocked n_nodes;
        per_deliver = per_of cum_deliver n_chans;
        inputs_scratch =
          Array.init n_nodes (fun n ->
              Array.make (Process.n_inputs procs0.(n)) None);
        halt_flag = Bytes.make n_lanes '\000';
        traces = Array.make (max 1 (n_out_total * n_lanes)) [];
        q_val = ia q_base.(n_chans);
        q_base;
        q_stride;
        q_head = Array.make (max 1 n_chans) 0;
        q_tail = Array.make (max 1 n_chans) 1;
        q_fill = Array.make (max 1 n_chans) 1;
        quiescence = 16 + (4 * (n_nodes + n_chans + total_rs));
        quiet = 0;
        clock = 0;
        act = Array.init (max 1 n_lanes) (fun l -> l);
        n_act = n_lanes;
        finished = Array.make n_lanes None;
        lane_end = Array.make n_lanes 0;
      }
    in
    (* Reset: slot 0 of every ring holds the channel's reset token. *)
    for c = 0 to n_chans - 1 do
      let src_node, src_port = Network.channel_src net0 c in
      for l = 0 to n_lanes - 1 do
        Ba.set t.q_val (q_base.(c) + l)
          lane_procs.(l).(src_node).Process.reset_outputs.(src_port)
      done
    done;
    (* A process can be terminal at reset; agree with Fast's first check. *)
    for l = 0 to n_lanes - 1 do
      let h = ref false in
      for n = 0 to n_nodes - 1 do
        if (not !h) && (instances.((n * n_lanes) + l)).Process.halted () then
          h := true
      done;
      if !h then Bytes.set t.halt_flag l '\001'
    done;
    t

  let table_index t =
    if t.clock < t.transient then t.clock
    else t.transient + ((t.clock - t.transient) mod t.period)

  let step t =
    let ll = t.n_lanes in
    let tc = t.table.(table_index t) in
    let fired = tc.Static.tc_fired in
    if Array.length fired > 0 then begin
      (* Fresh minor-heap scratch, as in Dyn.step. *)
      t.inputs_scratch <-
        Array.map (fun a -> Array.make (Array.length a) None) t.inputs_scratch;
      for i = 0 to Array.length fired - 1 do
        let n = Array.unsafe_get fired i in
        let ib = Array.unsafe_get t.in_base n in
        let n_in = Array.unsafe_get t.in_base (n + 1) - ib in
        let op0 = Array.unsafe_get t.out_base n in
        let n_out = Array.unsafe_get t.out_base (n + 1) - op0 in
        let inputs = Array.unsafe_get t.inputs_scratch n in
        for a = 0 to t.n_act - 1 do
          let l = Array.unsafe_get t.act a in
          for p = 0 to n_in - 1 do
            let c = Array.unsafe_get t.ip_chan (ib + p) in
            Array.unsafe_set inputs p
              (Some
                 (Ba.unsafe_get t.q_val
                    (Array.unsafe_get t.q_base c
                    + (Array.unsafe_get t.q_head c * ll)
                    + l)))
          done;
          let inst = Array.unsafe_get t.instances ((n * ll) + l) in
          let words = inst.Process.fire inputs in
          if inst.Process.halted () then Bytes.unsafe_set t.halt_flag l '\001';
          for q = 0 to n_out - 1 do
            let c = Array.unsafe_get t.op_chan (op0 + q) in
            Ba.unsafe_set t.q_val
              (Array.unsafe_get t.q_base c
              + (Array.unsafe_get t.q_tail c * ll)
              + l)
              (Array.unsafe_get words q)
          done;
          if t.record_traces then
            for q = 0 to n_out - 1 do
              let opl = ((op0 + q) * ll) + l in
              t.traces.(opl) <- Token.Valid words.(q) :: t.traces.(opl)
            done
        done;
        (* Advance the shared cursors once per port, after the lanes. *)
        for p = 0 to n_in - 1 do
          let c = Array.unsafe_get t.ip_chan (ib + p) in
          let h = t.q_head.(c) + 1 in
          t.q_head.(c) <- (if h >= t.q_stride.(c) then 0 else h);
          t.q_fill.(c) <- t.q_fill.(c) - 1
        done;
        for q = 0 to n_out - 1 do
          let c = Array.unsafe_get t.op_chan (op0 + q) in
          let s = t.q_tail.(c) + 1 in
          t.q_tail.(c) <- (if s >= t.q_stride.(c) then 0 else s);
          t.q_fill.(c) <- t.q_fill.(c) + 1;
          if t.q_fill.(c) > t.q_stride.(c) then
            failwith "Batch replay: value ring overflow (schedule violated)"
        done
      done
    end;
    if t.record_traces then begin
      let voids cls =
        for i = 0 to Array.length cls - 1 do
          let n = cls.(i) in
          let op0 = t.out_base.(n) in
          for q = 0 to t.out_base.(n + 1) - op0 - 1 do
            for a = 0 to t.n_act - 1 do
              let l = t.act.(a) in
              let opl = ((op0 + q) * ll) + l in
              t.traces.(opl) <- Token.Void :: t.traces.(opl)
            done
          done
        done
      in
      voids tc.Static.tc_starved;
      voids tc.Static.tc_blocked
    end;
    t.clock <- t.clock + 1;
    if tc.Static.tc_any then t.quiet <- 0 else t.quiet <- t.quiet + 1

  let run t =
    while t.n_act > 0 do
      (* Same per-lane checks, in the same order, as Fast.run.  The
         quiet counter is shared: the firing pattern — hence every
         silent-cycle run — is identical across the group's lanes.
         Cancelled lanes leave the act set like finished ones; the
         schedule replay is lane-independent, so survivors keep their
         byte-identical results. *)
      let poll_cancel =
        t.has_cancel && t.clock land (Engine.cancel_interval - 1) = 0
      in
      let now = if poll_cancel then Wp_util.Cancel.now () else 0. in
      let w = ref 0 in
      for a = 0 to t.n_act - 1 do
        let l = t.act.(a) in
        let fin =
          if Bytes.unsafe_get t.halt_flag l = '\001' then
            Some (Engine.Halted t.clock)
          else if t.quiet > t.quiescence then Some (Engine.Deadlocked t.clock)
          else if t.clock >= t.budget.(l) then Some (Engine.Exhausted t.clock)
          else if
            poll_cancel && Wp_util.Cancel.cancelled_at ~now t.cancels.(l)
          then Some (Engine.Cancelled t.clock)
          else None
        in
        match fin with
        | Some o ->
          t.finished.(l) <- Some o;
          t.lane_end.(l) <- t.clock
        | None ->
          t.act.(!w) <- l;
          incr w
      done;
      t.n_act <- !w;
      if t.n_act > 0 then step t
    done;
    Array.map
      (function Some o -> o | None -> assert false)
      t.finished

  (* ---------------------------------------------------------------- *)
  (* Accessors: schedule-table arithmetic, O(1) per query             *)
  (* ---------------------------------------------------------------- *)

  (* Occurrences of entity [e] during cycles [0, cycles). *)
  let count t cum per n_ent e cycles =
    let tp = t.transient + t.period in
    if cycles <= tp then cum.((cycles * n_ent) + e)
    else begin
      let r = (cycles - t.transient) mod t.period in
      let k = (cycles - t.transient - r) / t.period in
      cum.(((t.transient + r) * n_ent) + e) + (k * per.(e))
    end

  let ended t l =
    match t.finished.(l) with Some _ -> t.lane_end.(l) | None -> t.clock

  let cycles t = t.clock
  let lane_cycles t l = ended t l
  let outcome t l = t.finished.(l)
  let network t l = t.nets.(l)

  let delivered t l c =
    count t t.cum_deliver t.per_deliver t.n_chans c (ended t l)

  let node_stats t l n =
    let e = ended t l in
    let f = count t t.cum_fired t.per_fired t.n_nodes n e in
    let starved = count t t.cum_starved t.per_starved t.n_nodes n e in
    let blocked = count t t.cum_blocked t.per_blocked t.n_nodes n e in
    let n_in = t.in_base.(n + 1) - t.in_base.(n) in
    {
      Shell.firings = f;
      stalls = starved + blocked;
      input_starved = starved;
      output_blocked = blocked;
      (* Plain mode consumes every input port once per firing and never
         skips a token. *)
      required_counts = Array.make n_in f;
      dropped = Array.make n_in 0;
    }

  let output_trace t l node port =
    List.rev t.traces.(((t.out_base.(node) + port) * t.n_lanes) + l)

  let buffered t l node port =
    (* 1 (reset token) + delivered - consumed; each firing of [node]
       consumes exactly one token per input port. *)
    let c = t.ip_chan.(t.in_base.(node) + port) in
    let e = ended t l in
    1
    + count t t.cum_deliver t.per_deliver t.n_chans c e
    - count t t.cum_fired t.per_fired t.n_nodes node e
end

(* ------------------------------------------------------------------ *)
(* Schedule memo                                                      *)
(* ------------------------------------------------------------------ *)

(* A schedule depends only on (capacity, per-channel relay stations,
   topology shape) — never on process data — and the serve daemon
   replays the same machines all day, so memoize tables across [create]
   calls.  The key spells out everything the prepass reads.  Guarded by
   a mutex: runner pools call [create] from several domains.  Cached
   tables are immutable once built, so sharing them is safe. *)

let schedule_cache : (string, int * int * Static.table_cycle array) Hashtbl.t =
  Hashtbl.create 64

let schedule_mutex = Mutex.create ()

let schedule_key ~capacity net =
  let b = Buffer.create 128 in
  let n_nodes = Network.node_count net in
  let n_chans = Network.channel_count net in
  Printf.bprintf b "%d|%d|%d" capacity n_nodes n_chans;
  for n = 0 to n_nodes - 1 do
    let p = Network.node_process net n in
    Printf.bprintf b "|%d.%d" (Process.n_inputs p) (Process.n_outputs p)
  done;
  for c = 0 to n_chans - 1 do
    let sn, sp = Network.channel_src net c in
    let dn, dp = Network.channel_dst net c in
    Printf.bprintf b "|%d.%d.%d.%d.%d" sn sp dn dp
      (Network.relay_stations net c)
  done;
  Buffer.contents b

let cached_tables ~capacity net =
  let key = schedule_key ~capacity net in
  Mutex.lock schedule_mutex;
  let hit = Hashtbl.find_opt schedule_cache key in
  Mutex.unlock schedule_mutex;
  match hit with
  | Some s -> s
  | None ->
    let s = Static.tables ~capacity net in
    Mutex.lock schedule_mutex;
    if Hashtbl.length schedule_cache >= 256 then Hashtbl.reset schedule_cache;
    Hashtbl.replace schedule_cache key s;
    Mutex.unlock schedule_mutex;
    s


(* ------------------------------------------------------------------ *)
(* Topology signature                                                 *)
(* ------------------------------------------------------------------ *)

(* What two lanes must agree on to share one compiled sub-kernel: node
   count, per-node port shapes and channel endpoints.  Relay-station
   counts and capacity are deliberately absent — they vary per lane
   (Dyn) or per replay group.  This is also the key [Topology.signature]
   exposes so sweep drivers can predict lane grouping. *)
let signature net =
  let b = Buffer.create 128 in
  let n_nodes = Network.node_count net in
  let n_chans = Network.channel_count net in
  Printf.bprintf b "n%d|c%d" n_nodes n_chans;
  for n = 0 to n_nodes - 1 do
    let p = Network.node_process net n in
    Printf.bprintf b "|%d.%d" (Process.n_inputs p) (Process.n_outputs p)
  done;
  for c = 0 to n_chans - 1 do
    let sn, sp = Network.channel_src net c in
    let dn, dp = Network.channel_dst net c in
    Printf.bprintf b "|%d.%d.%d.%d" sn sp dn dp
  done;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Composite: partition, dispatch                                     *)
(* ------------------------------------------------------------------ *)

type sub = Dyn_lane of int | Rep_lane of int * int

(* One topology-homogeneous sub-composite: every lane in it shares the
   signature above, so Dyn's shared-structure assumption and Replay's
   shared-schedule assumption both hold within it. *)
type homo = {
  h_global : int array; (* local lane id -> caller's lane id *)
  h_where : sub array; (* local lane id -> owning sub-kernel *)
  h_dyn : Dyn.t option;
  h_dyn_local : int array; (* dyn lane order -> local lane id *)
  h_groups : Replay.t array;
}

type t = {
  n_lanes : int;
  loc : (int * int) array; (* caller's lane id -> (topology, local lane) *)
  homos : homo array;
}

(* Compile one topology-homogeneous lane set.  Lanes are already
   validated (capacity >= 1, no protection, valid network) and agree on
   the topology signature; [global] maps them back to the caller's lane
   ids for error messages. *)
let create_homo ~record_traces ~global lanes =
  let n_lanes = Array.length lanes in
  let net0 = lanes.(0).net in
  let n_chans = Network.channel_count net0 in
  (* Partition: Plain, unfaulted lanes share a data-independent firing
     schedule keyed by (capacity, relay stations per channel); the rest
     step dynamically.  A group whose prepass finds no periodic steady
     state falls back to the dynamic kernel too. *)
  let keys = ref [] in
  let by_key = Hashtbl.create 8 in
  let dyn_ids = ref [] in
  for l = n_lanes - 1 downto 0 do
    let ln = lanes.(l) in
    if ln.mode = Shell.Plain && Fault.is_none ln.fault then begin
      let k =
        ( ln.capacity,
          Array.init n_chans (fun c -> Network.relay_stations ln.net c) )
      in
      (match Hashtbl.find_opt by_key k with
      | None ->
        keys := k :: !keys;
        Hashtbl.add by_key k [ l ]
      | Some ls -> Hashtbl.replace by_key k (l :: ls))
    end
    else dyn_ids := l :: !dyn_ids
  done;
  let groups = ref [] in
  List.iter
    (fun ((capacity, _) as k) ->
      let ids = Hashtbl.find by_key k in
      let rep = List.hd ids in
      match cached_tables ~capacity lanes.(rep).net with
      | schedule ->
        let local = Array.of_list ids in
        let sub = Array.map (fun l -> lanes.(l)) local in
        groups :=
          Replay.create ~record_traces ~capacity ~schedule ~global:local sub
          :: !groups
      | exception Static.Unschedulable _ ->
        dyn_ids := List.merge compare ids !dyn_ids)
    (List.rev !keys);
  let h_groups = Array.of_list (List.rev !groups) in
  let h_dyn_local = Array.of_list !dyn_ids in
  let h_dyn =
    if Array.length h_dyn_local = 0 then None
    else
      Some
        (Dyn.create ~record_traces
           (Array.map (fun l -> lanes.(l)) h_dyn_local))
  in
  let h_where = Array.make n_lanes (Dyn_lane 0) in
  Array.iteri (fun i l -> h_where.(l) <- Dyn_lane i) h_dyn_local;
  Array.iteri
    (fun gi grp ->
      Array.iteri (fun i l -> h_where.(l) <- Rep_lane (gi, i)) grp.Replay.global)
    h_groups;
  { h_global = global; h_where; h_dyn; h_dyn_local; h_groups }

let create ?(record_traces = false) lanes =
  let n_lanes = Array.length lanes in
  if n_lanes = 0 then invalid_arg "Batch.create: empty lane array";
  Array.iteri
    (fun l ln ->
      if ln.capacity < 1 then
        unbatchable "lane %d: capacity %d (unbounded FIFOs are not batchable)"
          l ln.capacity;
      Network.validate ln.net;
      List.iter
        (fun c ->
          if Network.protection ln.net c <> None then
            unbatchable "lane %d: channel %d is link-protected" l c)
        (Network.channels ln.net))
    lanes;
  (* Group lanes by topology signature, in first-appearance order; each
     signature compiles its own sub-composite, so a heterogeneous batch
     (several generated topologies in one call) needs no fallback. *)
  let sig_order = ref [] in
  let by_sig = Hashtbl.create 8 in
  for l = n_lanes - 1 downto 0 do
    let key = signature lanes.(l).net in
    match Hashtbl.find_opt by_sig key with
    | None ->
      sig_order := key :: !sig_order;
      Hashtbl.add by_sig key [ l ]
    | Some ls -> Hashtbl.replace by_sig key (l :: ls)
  done;
  let homos =
    Array.of_list
      (List.map
         (fun key ->
           let global = Array.of_list (Hashtbl.find by_sig key) in
           let sub = Array.map (fun l -> lanes.(l)) global in
           create_homo ~record_traces ~global sub)
         !sig_order)
  in
  let loc = Array.make n_lanes (0, 0) in
  Array.iteri
    (fun hi h -> Array.iteri (fun li g -> loc.(g) <- (hi, li)) h.h_global)
    homos;
  { n_lanes; loc; homos }

let run t =
  let out = Array.make t.n_lanes None in
  Array.iter
    (fun h ->
      (match h.h_dyn with
      | None -> ()
      | Some d ->
        let o = Dyn.run d in
        Array.iteri (fun i l -> out.(h.h_global.(l)) <- Some o.(i)) h.h_dyn_local);
      Array.iter
        (fun grp ->
          let o = Replay.run grp in
          Array.iteri
            (fun i l -> out.(h.h_global.(l)) <- Some o.(i))
            grp.Replay.global)
        h.h_groups)
    t.homos;
  Array.map (function Some o -> o | None -> assert false) out

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let n_lanes t = t.n_lanes

let cycles t =
  Array.fold_left
    (fun acc h ->
      let m = match h.h_dyn with Some d -> max acc (Dyn.cycles d) | None -> acc in
      Array.fold_left (fun acc g -> max acc (Replay.cycles g)) m h.h_groups)
    0 t.homos

let h_dyn h = match h.h_dyn with Some d -> d | None -> assert false

let locate t lane =
  let hi, li = t.loc.(lane) in
  let h = t.homos.(hi) in
  (h, h.h_where.(li))

let lane_cycles t ~lane =
  match locate t lane with
  | h, Dyn_lane i -> Dyn.lane_cycles (h_dyn h) ~lane:i
  | h, Rep_lane (g, i) -> Replay.lane_cycles h.h_groups.(g) i

let outcome t ~lane =
  match locate t lane with
  | h, Dyn_lane i -> Dyn.outcome (h_dyn h) ~lane:i
  | h, Rep_lane (g, i) -> Replay.outcome h.h_groups.(g) i

let network t ~lane =
  match locate t lane with
  | h, Dyn_lane i -> Dyn.network (h_dyn h) ~lane:i
  | h, Rep_lane (g, i) -> Replay.network h.h_groups.(g) i

let mode t ~lane =
  match locate t lane with
  | h, Dyn_lane i -> Dyn.mode (h_dyn h) ~lane:i
  | _, Rep_lane _ -> Shell.Plain

let delivered t ~lane c =
  match locate t lane with
  | h, Dyn_lane i -> Dyn.delivered (h_dyn h) ~lane:i c
  | h, Rep_lane (g, i) -> Replay.delivered h.h_groups.(g) i c

let fault_injections t ~lane =
  match locate t lane with
  | h, Dyn_lane i -> Dyn.fault_injections (h_dyn h) ~lane:i
  | _, Rep_lane _ -> 0

let node_stats t ~lane n =
  match locate t lane with
  | h, Dyn_lane i -> Dyn.node_stats (h_dyn h) ~lane:i n
  | h, Rep_lane (g, i) -> Replay.node_stats h.h_groups.(g) i n

let output_trace t ~lane node port =
  match locate t lane with
  | h, Dyn_lane i -> Dyn.output_trace (h_dyn h) ~lane:i node port
  | h, Rep_lane (g, i) -> Replay.output_trace h.h_groups.(g) i node port

let buffered t ~lane node port =
  match locate t lane with
  | h, Dyn_lane i -> Dyn.buffered (h_dyn h) ~lane:i node port
  | h, Rep_lane (g, i) -> Replay.buffered h.h_groups.(g) i node port
