(** Batched structure-of-arrays simulation kernel.

    {!Fast} compiles one netlist into flat arrays and steps it with no
    per-cycle allocation; this module goes one step further and steps
    [N] {e independent} simulations — lanes — at once.  Lanes are first
    grouped by topology {!signature} (node count, port shapes, channel
    endpoints), each signature compiling its own sub-composite, so a
    heterogeneous batch — several generated topologies in one call — is
    fine.  Within a signature each lane carries its own process
    instances (programs), FIFO capacity, relay-station counts and fault
    seed, so a sweep's worth of [Run_spec]s becomes one kernel
    invocation.

    The kernel is a composite of two engines, chosen per lane at
    {!create}:

    - {b Static replay} — Plain, unfaulted lanes are grouped by
      (capacity, per-channel relay-station counts); such a group is a
      marked graph, so one count-only {!Static.tables} prepass per group
      (memoized across calls) yields a shared firing schedule that every
      lane in the group replays in lockstep.  Per-cycle stall/delivery
      bookkeeping disappears entirely: statistics are reconstructed in
      O(1) from cumulative schedule tables, and the inner loop only
      fires scheduled processes, lane-innermost over shared value-ring
      cursors so neighbouring lanes' tokens stay contiguous.
    - {b Dynamic SoA} — Oracle-mode and faulted lanes (whose firing is
      data- or fault-dependent) run the full three-phase handshake with
      state laid out structure-of-arrays: for entity [e] (input port,
      output port, channel or node) and lane [l], the cell lives at
      [e * n_lanes + l], amortizing channel decode and CSR scans across
      lanes.

    Lanes that finish (halt, deadlock, budget exhaustion) are compacted
    out of the active set; the survivors keep stepping on the shared
    global clock.  Every lane's observable results — outcome, cycle
    count, delivered counts, per-node statistics, traces, fault
    injections — are byte-identical to running that lane alone on
    {!Fast}, which the 50-seed differential battery asserts.

    Deliberately out of scope (callers fall back to {!Fast}):
    unbounded FIFOs (capacity 0), link-layer protection, telemetry. *)

module Shell = Wp_lis.Shell
module Token = Wp_lis.Token

type t

type lane = {
  net : Network.t;        (** any topology; equal {!signature}s share a sub-kernel *)
  mode : Shell.mode;      (** Plain (WP1) or Oracle (WP2) wrapper rule *)
  capacity : int;         (** shell FIFO capacity; must be >= 1 *)
  fault : Fault.spec;     (** per-lane fault program ({!Fault.none} ok) *)
  max_cycles : int;       (** per-lane cycle budget *)
  cancel : Wp_util.Cancel.t;
      (** per-lane cancellation token ({!Wp_util.Cancel.never} ok);
          polled every {!Engine.cancel_interval} cycles — a cancelled
          lane finishes with [Engine.Cancelled] and is compacted out of
          the active set without disturbing sibling lanes' results *)
}

exception Unbatchable of string
(** A lane violates the kernel's restrictions (capacity 0, protected
    channels).  The message names the offending lane. *)

val signature : Network.t -> string
(** Topology signature: node count, per-node port shapes and channel
    endpoints — {e not} relay-station counts or capacity, which may
    vary lane to lane.  Lanes with equal signatures share one compiled
    sub-kernel; unequal signatures are simply compiled separately. *)

val create : ?record_traces:bool -> lane array -> t
(** Group the lanes by {!signature}, compile each topology once and
    allocate the SoA state for all lanes.  Each lane starts at cycle 0
    with the usual reset token per channel.  @raise Unbatchable as
    described above, [Invalid_argument] on an empty lane array. *)

val run : t -> Engine.outcome array
(** Step all lanes to completion and return one outcome per lane, in
    lane order.  Each lane stops exactly where {!Fast.run} would: halt,
    quiescence-window deadlock, or its own [max_cycles]. *)

val n_lanes : t -> int
val cycles : t -> int
(** Global clock: the number of cycles stepped so far (= the slowest
    lane's progress). *)

val lane_cycles : t -> lane:int -> int
(** The cycle at which [lane] finished (equals the matching
    {!Fast.cycles} after a solo run), or the global clock while it is
    still active. *)

val outcome : t -> lane:int -> Engine.outcome option
val network : t -> lane:int -> Network.t
val mode : t -> lane:int -> Shell.mode
val delivered : t -> lane:int -> Network.channel -> int
val node_stats : t -> lane:int -> Network.node -> Shell.stats
val output_trace : t -> lane:int -> Network.node -> int -> int Token.t list
val fault_injections : t -> lane:int -> int
val buffered : t -> lane:int -> Network.node -> int -> int
