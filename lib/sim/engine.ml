module Shell = Wp_lis.Shell
module Relay_station = Wp_lis.Relay_station
module Token = Wp_lis.Token
module Process = Wp_lis.Process

type chain = {
  channel : Network.channel;
  relays : int Relay_station.t array; (* index 0 nearest the producer *)
  mutable delivered : int;
  (* scratch, refreshed each cycle *)
  mutable producer_stop : bool;
  mutable consumer_stop : bool;
  stage_stops : bool array; (* stop_in seen by each relay this cycle *)
  protected_ : bool; (* wire owned by the Link layer, relays bypassed *)
  link_can_accept : unit -> bool; (* preallocated consumer-side hooks *)
  mutable link_accept : int -> unit; (* tied after construction *)
}

type t = {
  net : Network.t;
  engine_mode : Shell.mode;
  shells : Shell.t array;
  chains : chain array;
  out_channels : Network.channel list array; (* per node *)
  fault : Fault.t option;
  link : Link.t option;
  telemetry : Telemetry.t option;
  mutable clock : int;
  mutable last_fired : bool;
  mutable quiet_cycles : int;
  quiescence : int;
}

type outcome =
  | Halted of int
  | Deadlocked of int
  | Exhausted of int
  | Cancelled of int

(* Cancellation-poll cadence shared by all engines: at 256 the
   uncancellable inner loop pays one land+branch per cycle, and an
   expired deadline still stops a run within a few microseconds of
   simulated work. *)
let cancel_interval = 256

let create ?(capacity = 2) ?(record_traces = false) ?fault
    ?(telemetry = Telemetry.off) ~mode net =
  Network.validate net;
  let fault_rt =
    match fault with
    | None -> None
    | Some spec when Fault.is_none spec -> None
    | Some spec -> Some (Fault.make spec ~n_chans:(Network.channel_count net))
  in
  let shells =
    Array.init (Network.node_count net) (fun n ->
        Shell.create ~capacity ~record_traces ~mode (Network.node_process net n))
  in
  let link = Link.make ?fault:fault_rt net in
  let chains =
    Array.of_list
      (List.map
         (fun c ->
           let rs = Network.relay_stations net c in
           let label = Network.channel_label net c in
           let dst_node, dst_port = Network.channel_dst net c in
           let sh = shells.(dst_node) in
           let protected_ =
             match link with
             | Some l -> Link.is_protected l ~chan:c
             | None -> false
           in
           let chain =
             {
               channel = c;
               relays =
                 Array.init rs (fun i ->
                     Relay_station.create ~name:(Printf.sprintf "%s/rs%d" label i) ());
               delivered = 0;
               producer_stop = false;
               consumer_stop = false;
               stage_stops = Array.make rs false;
               protected_;
               link_can_accept = (fun () -> not (Shell.input_stop sh dst_port));
               link_accept = ignore;
             }
           in
           (* [link_accept] needs [chain] itself for the delivered count,
              so it is tied after construction. *)
           chain.link_accept <-
             (fun v ->
               chain.delivered <- chain.delivered + 1;
               Shell.accept sh ~port:dst_port (Token.Valid v));
           chain)
         (Network.channels net))
  in
  let out_channels = Array.make (Network.node_count net) [] in
  List.iter
    (fun c ->
      let src, _ = Network.channel_src net c in
      out_channels.(src) <- c :: out_channels.(src))
    (List.rev (Network.channels net));
  let total_rs =
    List.fold_left (fun acc c -> acc + Network.relay_stations net c) 0 (Network.channels net)
  in
  let quiescence =
    16
    + (4 * (Network.node_count net + Network.channel_count net + total_rs))
    + (match link with Some l -> Link.quiescence_bonus l | None -> 0)
  in
  (* Reset: one initial token per channel = the reset value of the
     producer's output register, latched in the consumer FIFO. *)
  Array.iter
    (fun ch ->
      let src_node, src_port = Network.channel_src net ch.channel in
      let dst_node, dst_port = Network.channel_dst net ch.channel in
      let reset_value = (Network.node_process net src_node).Process.reset_outputs.(src_port) in
      Shell.accept shells.(dst_node) ~port:dst_port (Token.Valid reset_value);
      match fault_rt with
      | Some f -> Fault.note_reset f ~chan:ch.channel ~value:reset_value
      | None -> ())
    chains;
  {
    net;
    engine_mode = mode;
    shells;
    chains;
    out_channels;
    fault = fault_rt;
    link;
    telemetry = Telemetry.make telemetry net;
    clock = 0;
    last_fired = false;
    quiet_cycles = 0;
    quiescence;
  }

let cycles t = t.clock
let mode t = t.engine_mode
let network t = t.net
let shell t n = t.shells.(n)

let delivered t c =
  let chain = t.chains.(c) in
  chain.delivered

let fired_last_cycle t = t.last_fired
let quiescence_window t = t.quiescence

let fault_injections t =
  match t.fault with Some f -> Fault.injections f | None -> 0

let link_stats t = match t.link with Some l -> Link.stats l | None -> []

let link_summary t = Option.map Link.summary t.link

let telemetry_report t =
  Option.map
    (fun tl -> Telemetry.report_of tl ~link:(link_summary t))
    t.telemetry

(* Phase 1: propagate stops backwards along one channel. *)
let compute_stops t chain =
  if chain.protected_ then begin
    (* The Link layer owns the wire: the producer stalls on replay
       window exhaustion or missing credits, never on a propagated stop
       (benign fault stalls freeze the link wire inside [channel_step]
       instead). *)
    chain.consumer_stop <- false;
    chain.producer_stop <-
      (match t.link with
      | Some l -> Link.producer_stop l ~chan:chain.channel
      | None -> false)
  end
  else begin
  let dst_node, dst_port = Network.channel_dst t.net chain.channel in
  chain.consumer_stop <-
    (Shell.input_stop t.shells.(dst_node) dst_port
    ||
    match t.fault with
    | None -> false
    | Some f -> Fault.stalled f ~cycle:t.clock ~chan:chain.channel);
  let k = Array.length chain.relays in
  let stop = ref chain.consumer_stop in
  for i = k - 1 downto 0 do
    chain.stage_stops.(i) <- !stop;
    stop := Relay_station.stop_out chain.relays.(i) ~stop_in:!stop
  done;
  chain.producer_stop <- !stop
  end

let step t =
  Array.iter (fun chain -> compute_stops t chain) t.chains;
  (match t.telemetry with
  | None -> ()
  | Some tl ->
      (* Start-of-cycle observables: consumer-FIFO depth and the
         producer-visible stop, per channel. *)
      Array.iter
        (fun chain ->
          let dst_node, dst_port = Network.channel_dst t.net chain.channel in
          Telemetry.sample_channel tl ~chan:chain.channel
            ~occupancy:(Shell.buffered t.shells.(dst_node) dst_port)
            ~stop:chain.producer_stop)
        t.chains);
  (* Phase 2: firing decisions; collect every node's output tokens. *)
  let fired_any = ref false in
  let emissions =
    Array.mapi
      (fun n sh ->
        let outputs_clear =
          List.for_all (fun c -> not t.chains.(c).producer_stop) t.out_channels.(n)
        in
        let ready = Shell.ready sh in
        let fired = ready && outputs_clear in
        (match t.telemetry with
        | None -> ()
        | Some tl ->
            let oracle_ready =
              (not ready) && outputs_clear && Shell.oracle_ready sh
            in
            let link_blocked =
              ready && (not outputs_clear)
              &&
              (* first refusing output channel, in channel order — the
                 same scan order the Fast kernel's CSR rows use *)
              match
                List.find_opt
                  (fun c -> t.chains.(c).producer_stop)
                  t.out_channels.(n)
              with
              | Some c -> t.chains.(c).protected_
              | None -> false
            in
            Telemetry.note_node tl ~node:n
              ~cls:
                (Telemetry.classify ~fired ~ready ~outputs_clear ~oracle_ready
                   ~link_blocked));
        if fired then begin
          fired_any := true;
          Shell.fire sh
        end
        else Shell.stall sh ~reason:(if ready then `Output else `Input))
      t.shells
  in
  (* Phase 3: move tokens.  All relay emissions are computed before any
     acceptance so the shift is simultaneous. *)
  Array.iter
    (fun chain ->
      let src_node, src_port = Network.channel_src t.net chain.channel in
      let dst_node, dst_port = Network.channel_dst t.net chain.channel in
      let produced = emissions.(src_node).(src_port) in
      if chain.protected_ then begin
        let link = match t.link with Some l -> l | None -> assert false in
        let produced_valid, produced_value =
          match produced with
          | Token.Valid v -> (true, v)
          | Token.Void -> (false, 0)
        in
        Link.channel_step link ~chan:chain.channel ~cycle:t.clock
          ~produced_valid ~produced_value ~can_accept:chain.link_can_accept
          ~accept:chain.link_accept
      end
      else begin
      let k = Array.length chain.relays in
      let to_consumer =
        if k = 0 then produced
        else begin
          let outs =
            Array.mapi
              (fun i rs -> Relay_station.emit rs ~stop_in:chain.stage_stops.(i))
              chain.relays
          in
          Relay_station.accept chain.relays.(0) produced;
          for i = 1 to k - 1 do
            Relay_station.accept chain.relays.(i) outs.(i - 1)
          done;
          outs.(k - 1)
        end
      in
      (match t.fault with
      | None ->
          if Token.is_valid to_consumer then
            chain.delivered <- chain.delivered + 1;
          Shell.accept t.shells.(dst_node) ~port:dst_port to_consumer
      | Some f ->
          let sh = t.shells.(dst_node) in
          let valid, value =
            match to_consumer with
            | Token.Valid v -> (true, v)
            | Token.Void -> (false, 0)
          in
          Fault.deliver f ~chan:chain.channel ~valid ~value
            ~can_accept:(fun () -> not (Shell.input_stop sh dst_port))
            ~accept:(fun v ->
              chain.delivered <- chain.delivered + 1;
              Shell.accept sh ~port:dst_port (Token.Valid v)))
      end)
    t.chains;
  (match t.telemetry with
  | None -> ()
  | Some tl ->
      Array.iter
        (fun chain ->
          Telemetry.commit_channel tl ~chan:chain.channel
            ~delivered:chain.delivered)
        t.chains;
      Telemetry.end_cycle tl);
  t.clock <- t.clock + 1;
  t.last_fired <- !fired_any;
  if !fired_any then t.quiet_cycles <- 0 else t.quiet_cycles <- t.quiet_cycles + 1

let any_halted t = Array.exists Shell.halted t.shells

let run ?(cancel = Wp_util.Cancel.never) ?(max_cycles = 1_000_000) t =
  let poll = not (Wp_util.Cancel.is_never cancel) in
  let rec loop () =
    if any_halted t then Halted t.clock
    else if t.quiet_cycles > t.quiescence then Deadlocked t.clock
    else if t.clock >= max_cycles then Exhausted t.clock
    else if
      poll && t.clock land (cancel_interval - 1) = 0
      && Wp_util.Cancel.cancelled cancel
    then Cancelled t.clock
    else begin
      step t;
      loop ()
    end
  in
  loop ()
