(** Cycle-accurate execution of a network under a wrapper mode.

    Each simulated clock cycle proceeds in three phases:

    + back-pressure: for every channel, the consumer FIFO's stop is
      propagated backwards through the relay chain (a relay station
      forwards the stop only when both of its registers are full);
    + firing: every shell whose required inputs are buffered and whose
      output channels all accept either fires the enclosed process or
      emits tau;
    + movement: relay stations shift by one stage and tokens arriving at
      consumer FIFOs are latched.

    At reset every channel holds exactly one initial token — the reset
    value of the producer's output register — which gives the golden
    (zero-relay-station) system a throughput of 1.0 and RS-extended loops
    the paper's [m/(m+n)] behaviour. *)

type t

type outcome =
  | Halted of int      (** a process reached its terminal state at this cycle count *)
  | Deadlocked of int  (** no firing for a full quiescence window *)
  | Exhausted of int   (** max_cycles reached *)
  | Cancelled of int
      (** the run's {!Wp_util.Cancel} token fired (deadline expired or
          client abandoned); the engine stopped cooperatively at this
          cycle count, state intact *)

val create :
  ?capacity:int ->
  ?record_traces:bool ->
  ?fault:Fault.spec ->
  ?telemetry:Telemetry.spec ->
  mode:Wp_lis.Shell.mode ->
  Network.t ->
  t
(** Instantiate shells and relay chains.  [capacity] is each shell FIFO's
    bound (default 2; 0 = unbounded).  [fault] perturbs delivery and
    backpressure as described in {!Fault} (default: no faults).
    [telemetry] (default {!Telemetry.off}) enables cycle-accurate stall
    attribution and channel telemetry; when off, no runtime is allocated
    and stepping costs one branch per phase.
    @raise Invalid_argument if the network fails {!Network.validate} or
    the fault spec fails {!Fault.validate}. *)

val step : t -> unit
(** Advance one clock cycle. *)

val run : ?cancel:Wp_util.Cancel.t -> ?max_cycles:int -> t -> outcome
(** Step until a process halts, a deadlock is detected, or [max_cycles]
    (default 1_000_000) elapses.  [cancel] (default
    {!Wp_util.Cancel.never}) is polled every {!cancel_interval} cycles;
    when it fires the run stops with [Cancelled] instead of burning the
    rest of its budget. *)

val cancel_interval : int
(** Cycles between cancellation polls (shared by every engine): coarse
    enough that the uncancellable path pays one integer test per cycle,
    fine enough that an expired deadline stops the run within
    microseconds. *)

val cycles : t -> int
val mode : t -> Wp_lis.Shell.mode
val network : t -> Network.t

val shell : t -> Network.node -> Wp_lis.Shell.t
(** Access a shell for stats and traces. *)

val delivered : t -> Network.channel -> int
(** Valid tokens delivered end-to-end on a channel so far. *)

val fired_last_cycle : t -> bool

val quiescence_window : t -> int
(** Cycles without any firing after which {!run} declares deadlock. *)

val fault_injections : t -> int
(** Destructive fault events actually performed so far ({!Fault.injections});
    0 when no fault spec was given. *)

val link_stats : t -> Link.chan_stats list
(** Per-protected-channel ARQ statistics; [[]] when nothing is protected. *)

val link_summary : t -> Link.summary option
(** Aggregate link-layer statistics; [None] when nothing is protected. *)

val telemetry_report : t -> Telemetry.report option
(** Stall-attribution summary and event trace collected so far; [None]
    when the engine was created with {!Telemetry.off}.  Link recovery
    counters are folded into the summary when channels are protected. *)
