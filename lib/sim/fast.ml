(* Compiled, allocation-free simulation kernel.

   [Engine] is the readable reference interpreter: every cycle it boxes
   tokens ([Token.Valid]), allocates emission arrays, pops options out of
   ring FIFOs and walks channel lists through closures.  This module
   compiles a validated {!Network.t} into flat integer arrays once, then
   steps with zero heap allocation per cycle in the steady state (the
   only remaining allocations are inside the user-supplied
   [Process.instance] closures when a node actually fires, and trace
   conses when [record_traces] is requested).

   Layout (all indices are dense ints):
   - input ports are flattened: global id [ip = in_base.(node) + port];
     each FIFO is a preallocated [int array] plus head/len cursors —
     void never enters a FIFO, so no validity bit is needed there;
   - output ports are flattened the same way; per-cycle emissions live
     in [emit_val] with a parallel [emit_valid] bitmask instead of boxed
     [Token.t];
   - channels form a CSR adjacency: [out_chan_base]/[out_chan_ids] list
     each node's outgoing channels, and [chan_rs_base] gives each
     channel's slice of the global relay-station slot pool;
   - every relay station is the same 2-register micro-FIFO as
     {!Wp_lis.Relay_station}, stored as two int slots plus head/len.

   The step function reproduces the reference engine's three phases
   (stop propagation, firing, simultaneous shift) in the identical
   order, so outcomes, delivered counts, per-shell statistics and traces
   are byte-identical — the test battery asserts exactly that. *)

module Shell = Wp_lis.Shell
module Token = Wp_lis.Token
module Process = Wp_lis.Process

type t = {
  net : Network.t;
  engine_mode : Shell.mode;
  record_traces : bool;
  n_nodes : int;
  n_chans : int;
  instances : Process.instance array;
  (* input ports *)
  in_base : int array; (* n_nodes + 1 *)
  fifo_buf : int array array; (* per global input port *)
  fifo_head : int array;
  fifo_len : int array;
  fifo_cap : int; (* 0 = unbounded *)
  drop_pending : int array;
  required_counts : int array;
  dropped : int array;
  (* output ports *)
  out_base : int array; (* n_nodes + 1 *)
  emit_val : int array;
  emit_valid : bool array;
  traces : int Token.t list array; (* newest first; only if record_traces *)
  (* per-node stats and reusable scratch *)
  firings : int array;
  stalls : int array;
  input_starved : int array;
  output_blocked : int array;
  inputs_scratch : int option array array;
  plain_masks : bool array array;
  (* channels *)
  chan_src_op : int array;
  chan_dst_ip : int array;
  chan_rs_base : int array; (* n_chans + 1 *)
  chan_delivered : int array;
  producer_stop : bool array;
  out_chan_base : int array; (* n_nodes + 1 *)
  out_chan_ids : int array;
  fault : Fault.t option;
  telemetry : Telemetry.t option;
  (* link layer: protected channels bypass the relay pool entirely *)
  link : Link.t option;
  link_protected : bool array;
  link_can : (unit -> bool) array; (* per channel, tied after construction *)
  link_acc : (int -> unit) array;
  (* relay stations: 2 register slots each *)
  rs_val : int array; (* 2 * total_rs *)
  rs_head : int array;
  rs_len : int array;
  stage_stops : bool array;
  rs_out_val : int array;
  rs_out_valid : bool array;
  (* clocking *)
  mutable clock : int;
  mutable last_fired : bool;
  mutable quiet_cycles : int;
  quiescence : int;
}

(* ------------------------------------------------------------------ *)
(* FIFO primitives on the flattened pool                              *)
(* ------------------------------------------------------------------ *)

let fifo_is_empty t ip = t.fifo_len.(ip) = 0
let fifo_is_full t ip = t.fifo_cap > 0 && t.fifo_len.(ip) >= t.fifo_cap

let fifo_push t ip v =
  if fifo_is_full t ip then false
  else begin
    let buf = t.fifo_buf.(ip) in
    let size = Array.length buf in
    let buf =
      if t.fifo_len.(ip) = size then begin
        (* unbounded growth; never reached in bounded mode *)
        let fresh = Array.make (2 * size) 0 in
        for i = 0 to t.fifo_len.(ip) - 1 do
          fresh.(i) <- buf.((t.fifo_head.(ip) + i) mod size)
        done;
        t.fifo_buf.(ip) <- fresh;
        t.fifo_head.(ip) <- 0;
        fresh
      end
      else buf
    in
    let size = Array.length buf in
    buf.((t.fifo_head.(ip) + t.fifo_len.(ip)) mod size) <- v;
    t.fifo_len.(ip) <- t.fifo_len.(ip) + 1;
    true
  end

let fifo_pop t ip =
  let buf = t.fifo_buf.(ip) in
  let v = buf.(t.fifo_head.(ip)) in
  t.fifo_head.(ip) <- (t.fifo_head.(ip) + 1) mod Array.length buf;
  t.fifo_len.(ip) <- t.fifo_len.(ip) - 1;
  v

(* ------------------------------------------------------------------ *)
(* Compile                                                            *)
(* ------------------------------------------------------------------ *)

let create ?(capacity = 2) ?(record_traces = false) ?fault
    ?(telemetry = Telemetry.off) ~mode net =
  if capacity < 0 then invalid_arg "Fast.create: negative capacity";
  Network.validate net;
  let n_nodes = Network.node_count net in
  let n_chans = Network.channel_count net in
  let fault_rt =
    match fault with
    | None -> None
    | Some spec when Fault.is_none spec -> None
    | Some spec -> Some (Fault.make spec ~n_chans)
  in
  let procs = Array.init n_nodes (fun n -> Network.node_process net n) in
  let instances = Array.make n_nodes { Process.required = (fun () -> [||]); fire = (fun _ -> [||]); halted = (fun () -> false) } in
  for n = 0 to n_nodes - 1 do
    instances.(n) <- procs.(n).Process.make ()
  done;
  let prefix f =
    let base = Array.make (n_nodes + 1) 0 in
    for n = 0 to n_nodes - 1 do
      base.(n + 1) <- base.(n) + f procs.(n)
    done;
    base
  in
  let in_base = prefix Process.n_inputs in
  let out_base = prefix Process.n_outputs in
  let n_in_total = in_base.(n_nodes) in
  let n_out_total = out_base.(n_nodes) in
  let initial_fifo = max 1 (if capacity = 0 then 8 else capacity) in
  (* channels *)
  let chan_src_op = Array.make (max 1 n_chans) 0 in
  let chan_dst_ip = Array.make (max 1 n_chans) 0 in
  let chan_src_node = Array.make (max 1 n_chans) 0 in
  let chan_rs_base = Array.make (n_chans + 1) 0 in
  for c = 0 to n_chans - 1 do
    let src_node, src_port = Network.channel_src net c in
    let dst_node, dst_port = Network.channel_dst net c in
    chan_src_node.(c) <- src_node;
    chan_src_op.(c) <- out_base.(src_node) + src_port;
    chan_dst_ip.(c) <- in_base.(dst_node) + dst_port;
    chan_rs_base.(c + 1) <- chan_rs_base.(c) + Network.relay_stations net c
  done;
  let total_rs = chan_rs_base.(n_chans) in
  (* CSR of outgoing channels per node, channels in increasing order *)
  let out_chan_base = Array.make (n_nodes + 1) 0 in
  for c = 0 to n_chans - 1 do
    let n = chan_src_node.(c) in
    out_chan_base.(n + 1) <- out_chan_base.(n + 1) + 1
  done;
  for n = 0 to n_nodes - 1 do
    out_chan_base.(n + 1) <- out_chan_base.(n + 1) + out_chan_base.(n)
  done;
  let out_chan_ids = Array.make (max 1 n_chans) 0 in
  let cursor = Array.copy out_chan_base in
  for c = 0 to n_chans - 1 do
    let n = chan_src_node.(c) in
    out_chan_ids.(cursor.(n)) <- c;
    cursor.(n) <- cursor.(n) + 1
  done;
  let link = Link.make ?fault:fault_rt net in
  let link_protected = Array.make (max 1 n_chans) false in
  (match link with
  | Some l ->
      for c = 0 to n_chans - 1 do
        link_protected.(c) <- Link.is_protected l ~chan:c
      done
  | None -> ());
  let quiescence =
    16
    + (4 * (n_nodes + n_chans + total_rs))
    + (match link with Some l -> Link.quiescence_bonus l | None -> 0)
  in
  let no_can () = false in
  let t =
    {
      net;
      engine_mode = mode;
      record_traces;
      n_nodes;
      n_chans;
      instances;
      in_base;
      fifo_buf = Array.init n_in_total (fun _ -> Array.make initial_fifo 0);
      fifo_head = Array.make (max 1 n_in_total) 0;
      fifo_len = Array.make (max 1 n_in_total) 0;
      fifo_cap = capacity;
      drop_pending = Array.make (max 1 n_in_total) 0;
      required_counts = Array.make (max 1 n_in_total) 0;
      dropped = Array.make (max 1 n_in_total) 0;
      out_base;
      emit_val = Array.make (max 1 n_out_total) 0;
      emit_valid = Array.make (max 1 n_out_total) false;
      traces = Array.make (max 1 n_out_total) [];
      firings = Array.make (max 1 n_nodes) 0;
      stalls = Array.make (max 1 n_nodes) 0;
      input_starved = Array.make (max 1 n_nodes) 0;
      output_blocked = Array.make (max 1 n_nodes) 0;
      inputs_scratch =
        Array.init n_nodes (fun n -> Array.make (Process.n_inputs procs.(n)) None);
      plain_masks =
        Array.init n_nodes (fun n -> Array.make (Process.n_inputs procs.(n)) true);
      chan_src_op;
      chan_dst_ip;
      chan_rs_base;
      chan_delivered = Array.make (max 1 n_chans) 0;
      producer_stop = Array.make (max 1 n_chans) false;
      out_chan_base;
      out_chan_ids;
      fault = fault_rt;
      telemetry = Telemetry.make telemetry net;
      link;
      link_protected;
      link_can = Array.make (max 1 n_chans) no_can;
      link_acc = Array.make (max 1 n_chans) ignore;
      rs_val = Array.make (max 1 (2 * total_rs)) 0;
      rs_head = Array.make (max 1 total_rs) 0;
      rs_len = Array.make (max 1 total_rs) 0;
      stage_stops = Array.make (max 1 total_rs) false;
      rs_out_val = Array.make (max 1 total_rs) 0;
      rs_out_valid = Array.make (max 1 total_rs) false;
      clock = 0;
      last_fired = false;
      quiet_cycles = 0;
      quiescence;
    }
  in
  (* Tie the per-channel consumer-side hooks for protected channels —
     they capture [t], so they can only be built now.  They are
     allocated once here; the per-cycle path reuses them. *)
  for c = 0 to n_chans - 1 do
    if link_protected.(c) then begin
      let ip = chan_dst_ip.(c) in
      t.link_can.(c) <-
        (fun () -> not (fifo_is_full t ip && t.drop_pending.(ip) = 0));
      t.link_acc.(c) <-
        (fun v ->
          t.chan_delivered.(c) <- t.chan_delivered.(c) + 1;
          if t.drop_pending.(ip) > 0 then begin
            t.drop_pending.(ip) <- t.drop_pending.(ip) - 1;
            t.dropped.(ip) <- t.dropped.(ip) + 1
          end
          else if not (fifo_push t ip v) then
            failwith "Fast shell: token lost (stop protocol violated)")
    end
  done;
  (* Reset: one initial token per channel — the reset value of the
     producer's output register, latched in the consumer FIFO. *)
  for c = 0 to n_chans - 1 do
    let src_node, src_port = Network.channel_src net c in
    let reset_value = procs.(src_node).Process.reset_outputs.(src_port) in
    ignore (fifo_push t chan_dst_ip.(c) reset_value);
    match fault_rt with
    | Some f -> Fault.note_reset f ~chan:c ~value:reset_value
    | None -> ()
  done;
  t

let cycles t = t.clock
let mode t = t.engine_mode
let network t = t.net
let delivered t c = t.chan_delivered.(c)
let fired_last_cycle t = t.last_fired
let quiescence_window t = t.quiescence

let fault_injections t =
  match t.fault with Some f -> Fault.injections f | None -> 0

let link_stats t = match t.link with Some l -> Link.stats l | None -> []
let link_summary t = Option.map Link.summary t.link

let telemetry_report t =
  Option.map
    (fun tl -> Telemetry.report_of tl ~link:(link_summary t))
    t.telemetry
let buffered t node port = t.fifo_len.(t.in_base.(node) + port)

let node_stats t n =
  let lo = t.in_base.(n) and hi = t.in_base.(n + 1) in
  {
    Shell.firings = t.firings.(n);
    stalls = t.stalls.(n);
    input_starved = t.input_starved.(n);
    output_blocked = t.output_blocked.(n);
    required_counts = Array.sub t.required_counts lo (hi - lo);
    dropped = Array.sub t.dropped lo (hi - lo);
  }

let output_trace t node port = List.rev t.traces.(t.out_base.(node) + port)

(* ------------------------------------------------------------------ *)
(* Step                                                               *)
(* ------------------------------------------------------------------ *)

let step t =
  (* Phase 1: propagate stops backwards along each relay chain. *)
  for c = 0 to t.n_chans - 1 do
    if t.link_protected.(c) then
      (* Link-owned wire: producer stalls on window/credit exhaustion,
         never on a propagated stop. *)
      t.producer_stop.(c) <-
        (match t.link with
        | Some l -> Link.producer_stop l ~chan:c
        | None -> false)
    else begin
    let ip = t.chan_dst_ip.(c) in
    let stop =
      ref
        ((fifo_is_full t ip && t.drop_pending.(ip) = 0)
        ||
        match t.fault with
        | None -> false
        | Some f -> Fault.stalled f ~cycle:t.clock ~chan:c)
    in
    let base = t.chan_rs_base.(c) in
    for i = t.chan_rs_base.(c + 1) - 1 - base downto 0 do
      let r = base + i in
      t.stage_stops.(r) <- !stop;
      (* stop_out = stop_in && both registers full *)
      stop := !stop && t.rs_len.(r) >= 2
    done;
    t.producer_stop.(c) <- !stop
    end
  done;
  (match t.telemetry with
  | None -> ()
  | Some tl ->
      (* Start-of-cycle observables, in the same channel order as the
         reference engine — written straight into the runtime's scratch
         (the bulk protocol; one cross-module call per phase, not per
         element). *)
      let occ = Telemetry.occ_scratch tl
      and stop = Telemetry.stop_scratch tl in
      for c = 0 to t.n_chans - 1 do
        occ.(c) <- t.fifo_len.(t.chan_dst_ip.(c));
        stop.(c) <- t.producer_stop.(c)
      done);
  (* Phase 2: firing decisions, emissions into the flat scratch. *)
  let tel_cls =
    match t.telemetry with
    | None -> None
    | Some tl -> Some (Telemetry.cls_scratch tl)
  in
  let fired_any = ref false in
  for n = 0 to t.n_nodes - 1 do
    let outputs_clear =
      let ok = ref true in
      for j = t.out_chan_base.(n) to t.out_chan_base.(n + 1) - 1 do
        if t.producer_stop.(t.out_chan_ids.(j)) then ok := false
      done;
      !ok
    in
    let n_in = t.in_base.(n + 1) - t.in_base.(n) in
    let mask =
      match t.engine_mode with
      | Shell.Plain -> t.plain_masks.(n)
      | Shell.Oracle -> (t.instances.(n)).Process.required ()
    in
    let ready = ref true in
    for p = 0 to n_in - 1 do
      if mask.(p) && fifo_is_empty t (t.in_base.(n) + p) then ready := false
    done;
    let op0 = t.out_base.(n) in
    let n_out = t.out_base.(n + 1) - op0 in
    (match tel_cls with
    | None -> ()
    | Some cls ->
        (* Class codes written directly into the telemetry scratch; the
           decision tree mirrors Telemetry.classify / cls_code exactly
           (the cross-engine differential tests pin the agreement), with
           each predicate evaluated only on the branch that needs it. *)
        let code =
          if !ready && outputs_clear then 0 (* fired *)
          else if !ready then begin
            (* first refusing output channel in CSR (increasing channel)
               order — matches the reference engine's list scan *)
            let first = ref (-1) in
            let j = ref t.out_chan_base.(n) in
            while !first < 0 && !j < t.out_chan_base.(n + 1) do
              let c = t.out_chan_ids.(!j) in
              if t.producer_stop.(c) then first := c;
              incr j
            done;
            if !first >= 0 && t.link_protected.(!first) then 4 (* link-credit *)
            else 3 (* output-backpressure *)
          end
          else if
            outputs_clear
            &&
            let omask = (t.instances.(n)).Process.required () in
            let ok = ref true in
            for p = 0 to n_in - 1 do
              if omask.(p) && fifo_is_empty t (t.in_base.(n) + p) then
                ok := false
            done;
            !ok
          then 1 (* oracle-skip *)
          else 2 (* missing-input *)
        in
        cls.(n) <- code);
    if !ready && outputs_clear then begin
      fired_any := true;
      let inputs = t.inputs_scratch.(n) in
      for p = 0 to n_in - 1 do
        let ip = t.in_base.(n) + p in
        if mask.(p) then begin
          t.required_counts.(ip) <- t.required_counts.(ip) + 1;
          inputs.(p) <- Some (fifo_pop t ip)
        end
        else begin
          (* Oracle skip: the token of the current tag is useless —
             discard it now if buffered, or on arrival. *)
          if not (fifo_is_empty t ip) then begin
            ignore (fifo_pop t ip);
            t.dropped.(ip) <- t.dropped.(ip) + 1
          end
          else t.drop_pending.(ip) <- t.drop_pending.(ip) + 1;
          inputs.(p) <- None
        end
      done;
      let words = (t.instances.(n)).Process.fire inputs in
      t.firings.(n) <- t.firings.(n) + 1;
      for q = 0 to n_out - 1 do
        t.emit_val.(op0 + q) <- words.(q);
        t.emit_valid.(op0 + q) <- true
      done;
      if t.record_traces then
        for q = 0 to n_out - 1 do
          t.traces.(op0 + q) <- Token.Valid words.(q) :: t.traces.(op0 + q)
        done
    end
    else begin
      t.stalls.(n) <- t.stalls.(n) + 1;
      if !ready then t.output_blocked.(n) <- t.output_blocked.(n) + 1
      else t.input_starved.(n) <- t.input_starved.(n) + 1;
      for q = 0 to n_out - 1 do
        t.emit_valid.(op0 + q) <- false
      done;
      if t.record_traces then
        for q = 0 to n_out - 1 do
          t.traces.(op0 + q) <- Token.Void :: t.traces.(op0 + q)
        done
    end
  done;
  (* Phase 3: simultaneous shift — all relay emissions are computed from
     the pre-shift state before any acceptance. *)
  for c = 0 to t.n_chans - 1 do
    if t.link_protected.(c) then begin
      let op = t.chan_src_op.(c) in
      let link = match t.link with Some l -> l | None -> assert false in
      Link.channel_step link ~chan:c ~cycle:t.clock
        ~produced_valid:t.emit_valid.(op) ~produced_value:t.emit_val.(op)
        ~can_accept:t.link_can.(c) ~accept:t.link_acc.(c)
    end
    else begin
    let op = t.chan_src_op.(c) in
    let base = t.chan_rs_base.(c) in
    let k = t.chan_rs_base.(c + 1) - base in
    let tc_valid, tc_val =
      if k = 0 then (t.emit_valid.(op), t.emit_val.(op))
      else begin
        for i = 0 to k - 1 do
          let r = base + i in
          if t.stage_stops.(r) || t.rs_len.(r) = 0 then t.rs_out_valid.(r) <- false
          else begin
            t.rs_out_valid.(r) <- true;
            t.rs_out_val.(r) <- t.rs_val.((2 * r) + t.rs_head.(r));
            t.rs_head.(r) <- 1 - t.rs_head.(r);
            t.rs_len.(r) <- t.rs_len.(r) - 1
          end
        done;
        let accept r v =
          if t.rs_len.(r) >= 2 then
            failwith "Fast relay station: datum lost (stop protocol violated)"
          else begin
            t.rs_val.((2 * r) + ((t.rs_head.(r) + t.rs_len.(r)) land 1)) <- v;
            t.rs_len.(r) <- t.rs_len.(r) + 1
          end
        in
        if t.emit_valid.(op) then accept base t.emit_val.(op);
        for i = 1 to k - 1 do
          if t.rs_out_valid.(base + i - 1) then accept (base + i) t.rs_out_val.(base + i - 1)
        done;
        (t.rs_out_valid.(base + k - 1), t.rs_out_val.(base + k - 1))
      end
    in
    (match t.fault with
    | None ->
        if tc_valid then begin
          t.chan_delivered.(c) <- t.chan_delivered.(c) + 1;
          let ip = t.chan_dst_ip.(c) in
          if t.drop_pending.(ip) > 0 then begin
            t.drop_pending.(ip) <- t.drop_pending.(ip) - 1;
            t.dropped.(ip) <- t.dropped.(ip) + 1
          end
          else if not (fifo_push t ip tc_val) then
            failwith "Fast shell: token lost (stop protocol violated)"
        end
    | Some f ->
        let ip = t.chan_dst_ip.(c) in
        Fault.deliver f ~chan:c ~valid:tc_valid ~value:tc_val
          ~can_accept:(fun () ->
            not (fifo_is_full t ip && t.drop_pending.(ip) = 0))
          ~accept:(fun v ->
            t.chan_delivered.(c) <- t.chan_delivered.(c) + 1;
            if t.drop_pending.(ip) > 0 then begin
              t.drop_pending.(ip) <- t.drop_pending.(ip) - 1;
              t.dropped.(ip) <- t.dropped.(ip) + 1
            end
            else if not (fifo_push t ip v) then
              failwith "Fast shell: token lost (stop protocol violated)"))
    end
  done;
  (match t.telemetry with
  | None -> ()
  | Some tl -> Telemetry.commit_cycle tl ~delivered:t.chan_delivered);
  t.clock <- t.clock + 1;
  t.last_fired <- !fired_any;
  if !fired_any then t.quiet_cycles <- 0 else t.quiet_cycles <- t.quiet_cycles + 1

let any_halted t =
  let n = ref 0 and halted = ref false in
  while (not !halted) && !n < t.n_nodes do
    if (t.instances.(!n)).Process.halted () then halted := true;
    incr n
  done;
  !halted

let run ?(cancel = Wp_util.Cancel.never) ?(max_cycles = 1_000_000) t =
  let poll = not (Wp_util.Cancel.is_never cancel) in
  let rec loop () =
    if any_halted t then Engine.Halted t.clock
    else if t.quiet_cycles > t.quiescence then Engine.Deadlocked t.clock
    else if t.clock >= max_cycles then Engine.Exhausted t.clock
    else if
      poll
      && t.clock land (Engine.cancel_interval - 1) = 0
      && Wp_util.Cancel.cancelled cancel
    then Engine.Cancelled t.clock
    else begin
      step t;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* MCR-guided cycle bounds                                            *)
(* ------------------------------------------------------------------ *)

(* The network is a marked graph: every channel holds exactly one
   initial token at reset, and a token needs [1 + relay_stations]
   cycles to traverse a channel (the producer's register plus one per
   relay station).  The sustainable throughput of any loop with [m]
   processes and [n] relay stations is therefore [m / (m + n)], and the
   system bound is the minimum over loops — the minimum cycle ratio
   with cost 1 and time [1 + rs] per edge, which Howard's policy
   iteration computes exactly. *)
let throughput_bound net =
  let g, chan_of_edge = Network.to_digraph net in
  match
    Wp_graph.Howard.minimum_cycle_ratio g
      ~cost:(fun _ -> 1)
      ~time:(fun e -> 1 + Network.relay_stations net (chan_of_edge e))
  with
  | None -> 1.0 (* acyclic: source-limited, one token per cycle *)
  | Some (ratio, _) -> min 1.0 (Wp_graph.Cycle_ratio.ratio_to_float ratio)

let cycle_bound ?(slack_num = 1) ?(slack_den = 4) ~work_cycles net =
  if work_cycles < 0 then invalid_arg "Fast.cycle_bound: negative work";
  let th = throughput_bound net in
  let total_rs =
    List.fold_left (fun acc c -> acc + Network.relay_stations net c) 0 (Network.channels net)
  in
  let structure = Network.node_count net + Network.channel_count net + total_rs in
  let base = int_of_float (ceil (float_of_int work_cycles /. th)) in
  (* Engineering margin: finite (capacity-2) shell FIFOs can run a few
     percent below the marked-graph bound on long loops, and the run
     needs headroom for pipeline fill/drain plus a full quiescence
     window for deadlock detection.  Callers that must be exact treat an
     [Exhausted] at this bound as "re-run with the full budget". *)
  base + (base * slack_num / slack_den) + 64 + (8 * structure)
