(** Compiled, allocation-free simulation kernel.

    Same observable semantics as {!Engine} — identical outcomes,
    delivered-token counts, per-shell statistics and (when requested)
    output traces — but the network is compiled once into contiguous
    integer arrays (CSR adjacency for outgoing channels, a flat relay
    slot pool, preallocated FIFO buffers with head/length cursors and a
    validity bitmask instead of boxed tokens), so each {!step} performs
    zero heap allocation in the steady state.  The only remaining
    per-cycle allocations happen inside user-supplied
    [Process.instance] closures when a node fires, and trace conses when
    [record_traces] is set. *)

type t

val create :
  ?capacity:int ->
  ?record_traces:bool ->
  ?fault:Fault.spec ->
  ?telemetry:Telemetry.spec ->
  mode:Wp_lis.Shell.mode ->
  Network.t ->
  t
(** Compile the network.  [capacity] is each shell FIFO's bound
    (default 2; 0 = unbounded).  [record_traces] enables per-output
    token traces (costs one cons per output per cycle).  [fault]
    perturbs delivery and backpressure exactly as in {!Engine.create}
    (the two engines share {!Fault}'s policy code and stay
    byte-identical under a given spec); when absent the kernel keeps its
    zero-allocation steady state.  [telemetry] (default
    {!Telemetry.off}) enables stall attribution and channel telemetry —
    the counters are flat preallocated arrays, but the oracle-readiness
    probe allocates inside the process closure, so the zero-words
    guarantee only holds with telemetry off.
    @raise Invalid_argument if the network fails {!Network.validate} or
    the fault spec fails {!Fault.validate}. *)

val step : t -> unit
(** Advance one clock cycle (three phases: stop propagation, firing,
    simultaneous shift — in the same order as {!Engine.step}). *)

val run : ?cancel:Wp_util.Cancel.t -> ?max_cycles:int -> t -> Engine.outcome
(** Step until a process halts, a deadlock is detected, or [max_cycles]
    (default 1_000_000) elapses.  Outcomes are shared with the
    reference engine so callers can compare them directly. *)

val cycles : t -> int
val mode : t -> Wp_lis.Shell.mode
val network : t -> Network.t

val delivered : t -> Network.channel -> int
(** Valid tokens delivered end-to-end on a channel so far. *)

val fired_last_cycle : t -> bool

val quiescence_window : t -> int
(** Cycles without any firing after which {!run} declares deadlock. *)

val fault_injections : t -> int
(** Destructive fault events actually performed so far ({!Fault.injections});
    0 when no fault spec was given. *)

val link_stats : t -> Link.chan_stats list
(** Per-protected-channel ARQ statistics; [[]] when nothing is protected. *)

val link_summary : t -> Link.summary option
(** Aggregate link-layer statistics; [None] when nothing is protected. *)

val telemetry_report : t -> Telemetry.report option
(** Stall-attribution summary and event trace collected so far; [None]
    when the kernel was compiled with {!Telemetry.off}.  Byte-identical
    to the reference engine's {!Engine.telemetry_report} on the same
    run. *)

val buffered : t -> Network.node -> int -> int
(** Occupancy of one shell input FIFO. *)

val node_stats : t -> Network.node -> Wp_lis.Shell.stats
(** Per-shell statistics, identical field-for-field to
    [Shell.stats (Engine.shell e n)] on the reference engine. *)

val output_trace : t -> Network.node -> int -> int Wp_lis.Token.t list
(** Recorded token stream of one output port, oldest first.  Empty
    unless [record_traces] was set. *)

val any_halted : t -> bool

(** {1 MCR-guided cycle bounds}

    The reset marking places exactly one token on every channel, so the
    network is a marked graph whose sustainable throughput is
    [min over loops m / (m + n)] for [m] processes and [n] relay
    stations on the loop — the minimum cycle ratio with cost [1] and
    time [1 + rs] per edge. *)

val throughput_bound : Network.t -> float
(** Exact marked-graph throughput upper bound via Howard's policy
    iteration; [1.0] for acyclic networks. *)

val cycle_bound : ?slack_num:int -> ?slack_den:int -> work_cycles:int -> Network.t -> int
(** [cycle_bound ~work_cycles net] is a provable-with-margin cycle
    budget for a run that needs [work_cycles] firings of the critical
    process: [ceil (work / Th)] plus [slack_num/slack_den] relative
    slack (default 1/4) plus absolute headroom for pipeline fill and a
    quiescence window.  Callers treat [Exhausted] at this bound as
    "re-run with the full budget". *)
