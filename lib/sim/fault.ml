type break_kind = Drop | Dup | Corrupt | Spurious

type clause =
  | Jitter of { pct : int; horizon : int }
  | Storm of { period : int; burst : int; horizon : int }
  | Stall of { chan : int; cycles : int list }
  | Break of { kind : break_kind; chan : int; nth : int }

type spec = { seed : int; clauses : clause list }

let none = { seed = 0; clauses = [] }

let is_none s = s.clauses = []

let benign s =
  List.for_all (function Break _ -> false | _ -> true) s.clauses

let validate_clauses s =
  List.iter
    (fun clause ->
      match clause with
      | Jitter { pct; horizon } ->
          if pct < 0 || pct > 100 then
            invalid_arg "Fault: jitter pct must be in 0..100";
          if horizon < 0 then invalid_arg "Fault: jitter horizon must be >= 0"
      | Storm { period; burst; horizon } ->
          if period <= 0 then invalid_arg "Fault: storm period must be > 0";
          if burst <= 0 || burst >= period then
            invalid_arg "Fault: storm burst must satisfy 0 < burst < period";
          if horizon < 0 then invalid_arg "Fault: storm horizon must be >= 0"
      | Stall { chan; cycles } ->
          if chan < 0 then invalid_arg "Fault: stall channel must be >= 0";
          List.iter
            (fun c -> if c < 0 then invalid_arg "Fault: stall cycle must be >= 0")
            cycles
      | Break { chan; nth; _ } ->
          if chan < 0 then invalid_arg "Fault: break channel must be >= 0";
          if nth < 0 then invalid_arg "Fault: break token index must be >= 0")
    s.clauses

let validate s ~n_chans =
  if n_chans <= 0 then invalid_arg "Fault.validate: empty network";
  validate_clauses s

let break_kind_name = function
  | Drop -> "drop"
  | Dup -> "dup"
  | Corrupt -> "corrupt"
  | Spurious -> "spurious"

let clause_to_string = function
  | Jitter { pct; horizon } ->
      if horizon = 0 then Printf.sprintf "jitter:%d" pct
      else Printf.sprintf "jitter:%d@%d" pct horizon
  | Storm { period; burst; horizon } ->
      if horizon = 0 then Printf.sprintf "storm:%d/%d" period burst
      else Printf.sprintf "storm:%d/%d@%d" period burst horizon
  | Stall { chan; cycles } ->
      Printf.sprintf "stall:%d@%s" chan
        (String.concat "+" (List.map string_of_int cycles))
  | Break { kind; chan; nth } ->
      Printf.sprintf "%s:%d:%d" (break_kind_name kind) chan nth

let to_string s =
  if is_none s then "none"
  else String.concat "," (List.map clause_to_string s.clauses)

let parse_error what part =
  invalid_arg (Printf.sprintf "Fault.of_string: %s in %S" what part)

let int_of_part part name s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> parse_error (Printf.sprintf "bad %s" name) part

let parse_clause part =
  match String.split_on_char ':' part with
  | [ "jitter"; rest ] -> (
      match String.split_on_char '@' rest with
      | [ pct ] -> Jitter { pct = int_of_part part "pct" pct; horizon = 0 }
      | [ pct; h ] ->
          Jitter
            {
              pct = int_of_part part "pct" pct;
              horizon = int_of_part part "horizon" h;
            }
      | _ -> parse_error "bad jitter clause" part)
  | [ "storm"; rest ] -> (
      let body, horizon =
        match String.split_on_char '@' rest with
        | [ body ] -> (body, 0)
        | [ body; h ] -> (body, int_of_part part "horizon" h)
        | _ -> parse_error "bad storm clause" part
      in
      match String.split_on_char '/' body with
      | [ p; b ] ->
          Storm
            {
              period = int_of_part part "period" p;
              burst = int_of_part part "burst" b;
              horizon;
            }
      | _ -> parse_error "bad storm clause (want P/B)" part)
  | [ "stall"; rest ] -> (
      match String.split_on_char '@' rest with
      | [ chan; cycles ] ->
          let cycles =
            if cycles = "" then []
            else
              List.map
                (fun c -> int_of_part part "cycle" c)
                (String.split_on_char '+' cycles)
          in
          Stall { chan = int_of_part part "channel" chan; cycles }
      | _ -> parse_error "bad stall clause (want CHAN@c1+c2)" part)
  | [ kind_s; chan; nth ] -> (
      let kind =
        match kind_s with
        | "drop" -> Drop
        | "dup" -> Dup
        | "corrupt" -> Corrupt
        | "spurious" -> Spurious
        | _ -> parse_error "unknown clause kind" part
      in
      Break
        {
          kind;
          chan = int_of_part part "channel" chan;
          nth = int_of_part part "token index" nth;
        })
  | _ -> parse_error "unknown clause" part

let of_string ~seed text =
  let text = String.trim text in
  if text = "" || text = "none" then { none with seed }
  else
    let clauses =
      String.split_on_char ',' text
      |> List.map String.trim
      |> List.filter (fun p -> p <> "")
      |> List.map parse_clause
    in
    let spec = { seed; clauses } in
    validate_clauses spec;
    spec

(* splitmix64-style stateless mix of (seed, cycle, chan). *)
let mix_constant_1 = 0xBF58476D1CE4E5B9L
let mix_constant_2 = 0x94D049BB133111EBL
let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) mix_constant_1
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) mix_constant_2
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash3 seed a b =
  let z = Int64.of_int seed in
  let z = mix64 (Int64.add z golden_gamma) in
  let z = mix64 (Int64.add z (Int64.mul golden_gamma (Int64.of_int (a + 1)))) in
  let z = mix64 (Int64.add z (Int64.mul golden_gamma (Int64.of_int (b + 1)))) in
  Int64.to_int (Int64.shift_right_logical z 2)

let digest s =
  if is_none s then "nofault"
  else
    let text = to_string s in
    let h = ref (Int64.of_int s.seed) in
    String.iter
      (fun c ->
        h := mix64 (Int64.add !h (Int64.mul golden_gamma (Int64.of_int (Char.code c)))))
      text;
    Printf.sprintf "f%012Lx" (Int64.logand !h 0xFFFFFFFFFFFFL)

let describe s =
  if is_none s then "no faults"
  else Printf.sprintf "faults[seed=%d] %s" s.seed (to_string s)

(* --- runtime ------------------------------------------------------- *)

type chan_state = {
  mutable valid_seen : int;  (* informative tokens that reached delivery *)
  mutable void_seen : int;   (* void slots observed at delivery *)
  mutable last_value : int;  (* most recent value actually delivered *)
  mutable dup_pending : bool;
  mutable dup_value : int;
  mutable spur_armed : bool;
}

type t = {
  spec : spec;
  n_chans : int;
  (* Per-channel compiled clause views. *)
  stall_sched : (int, unit) Hashtbl.t array; (* chan -> cycle set *)
  breaks : (break_kind * int) list array;    (* chan -> (kind, nth) *)
  jitters : (int * int) list;                (* pct, horizon *)
  storms : (int * int * int) list;           (* period, burst, horizon *)
  chans : chan_state array;
  mutable injections : int;
}

let make spec ~n_chans =
  validate spec ~n_chans;
  let stall_sched = Array.init n_chans (fun _ -> Hashtbl.create 4) in
  let breaks = Array.make n_chans [] in
  let jitters = ref [] in
  let storms = ref [] in
  List.iter
    (fun clause ->
      match clause with
      | Jitter { pct; horizon } -> jitters := (pct, horizon) :: !jitters
      | Storm { period; burst; horizon } ->
          storms := (period, burst, horizon) :: !storms
      | Stall { chan; cycles } ->
          let chan = chan mod n_chans in
          List.iter
            (fun c -> Hashtbl.replace stall_sched.(chan) c ())
            cycles
      | Break { kind; chan; nth } ->
          let chan = chan mod n_chans in
          breaks.(chan) <- breaks.(chan) @ [ (kind, nth) ])
    spec.clauses;
  {
    spec;
    n_chans;
    stall_sched;
    breaks;
    jitters = List.rev !jitters;
    storms = List.rev !storms;
    chans =
      Array.init n_chans (fun _ ->
          {
            valid_seen = 0;
            void_seen = 0;
            last_value = 0;
            dup_pending = false;
            dup_value = 0;
            spur_armed = false;
          });
    injections = 0;
  }

let spec t = t.spec

let within horizon cycle = horizon = 0 || cycle < horizon

let stalled t ~cycle ~chan =
  Hashtbl.mem t.stall_sched.(chan) cycle
  || List.exists
       (fun (period, burst, horizon) ->
         within horizon cycle && cycle mod period < burst)
       t.storms
  || List.exists
       (fun (pct, horizon) ->
         pct > 0
         && within horizon cycle
         && hash3 t.spec.seed cycle chan mod 100 < pct)
       t.jitters

let note_reset t ~chan ~value = t.chans.(chan).last_value <- value

let matching_break t ~chan ~nth =
  List.find_map
    (fun (kind, n) -> if n = nth then Some kind else None)
    t.breaks.(chan)

let deliver t ~chan ~valid ~value ~can_accept ~accept =
  let cs = t.chans.(chan) in
  if valid then begin
    let nth = cs.valid_seen in
    cs.valid_seen <- cs.valid_seen + 1;
    (match matching_break t ~chan ~nth with
    | Some Drop ->
        t.injections <- t.injections + 1 (* token discarded *)
    | Some Corrupt ->
        t.injections <- t.injections + 1;
        let v = value lxor 1 in
        accept v;
        cs.last_value <- v
    | Some Dup ->
        accept value;
        cs.last_value <- value;
        if can_accept () then begin
          accept value;
          t.injections <- t.injections + 1
        end
        else begin
          cs.dup_pending <- true;
          cs.dup_value <- value
        end
    | Some Spurious | None ->
        (* Spurious keys on void slots; on a valid token it is inert
           (the schedule names void_seen indices). *)
        accept value;
        cs.last_value <- value)
  end
  else begin
    let nth = cs.void_seen in
    cs.void_seen <- cs.void_seen + 1;
    (match matching_break t ~chan ~nth with
    | Some Spurious -> cs.spur_armed <- true
    | _ -> ());
    if cs.dup_pending && can_accept () then begin
      cs.dup_pending <- false;
      accept cs.dup_value;
      t.injections <- t.injections + 1
    end
    else if cs.spur_armed && can_accept () then begin
      cs.spur_armed <- false;
      accept cs.last_value;
      t.injections <- t.injections + 1
    end
  end

let injections t = t.injections

let record_injection t = t.injections <- t.injections + 1

let break_at_arrival t ~chan =
  let cs = t.chans.(chan) in
  let nth = cs.valid_seen in
  cs.valid_seen <- cs.valid_seen + 1;
  matching_break t ~chan ~nth

let spurious_at_void t ~chan =
  let cs = t.chans.(chan) in
  let nth = cs.void_seen in
  cs.void_seen <- cs.void_seen + 1;
  match matching_break t ~chan ~nth with
  | Some Spurious -> true
  | _ -> false
