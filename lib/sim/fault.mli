(** Seeded fault injection for latency-insensitive networks.

    The paper's central claim is that latency-insensitive shells keep the
    system N-equivalent to the golden design {e no matter how latency is
    distributed}.  This module turns that claim into something we can
    attack: it perturbs a running engine (Reference or Fast — both share
    the exact same policy code, so they stay byte-identical under a given
    spec) with two families of faults:

    {2 Benign faults — legal backpressure}

    [Jitter], [Storm] and [Stall] clauses only ever {e stall} channels:
    they are OR-ed into the consumer-side stop wire during phase 1, which
    is indistinguishable from a slow consumer.  LID theory says these must
    preserve N-equivalence; the test suite proves it.

    {2 Destructive faults — negative controls}

    [Break] clauses violate the token stream itself (drop, duplicate,
    corrupt, or inject a spurious token).  These are {e supposed} to break
    equivalence; [Wp_core.Lid_check] asserts they are always caught by
    [Equiv_check].

    Fault decisions are stateless hashes of (seed, cycle, channel), so two
    engine instances created from the same spec behave identically without
    sharing mutable state. *)

type break_kind = Drop | Dup | Corrupt | Spurious

type clause =
  | Jitter of { pct : int; horizon : int }
      (** Each (cycle, channel) pair independently stalls with probability
          [pct]/100, for cycles [< horizon] ([horizon = 0] means forever). *)
  | Storm of { period : int; burst : int; horizon : int }
      (** Backpressure storm: every channel stalls during the first [burst]
          cycles of each [period]-cycle window, for cycles [< horizon].
          Requires [0 < burst < period] so progress is always possible. *)
  | Stall of { chan : int; cycles : int list }
      (** Explicit schedule: stall channel [chan] exactly at the listed
          cycles.  This is the primitive the exhaustive checker drives. *)
  | Break of { kind : break_kind; chan : int; nth : int }
      (** Destructive: affect the [nth] (0-based) informative token
          arriving at the consumer end of channel [chan]. *)

type spec = { seed : int; clauses : clause list }

val none : spec
(** The empty spec: no seed relevance, no clauses, injects nothing. *)

val is_none : spec -> bool

val benign : spec -> bool
(** [true] iff the spec contains no [Break] clause (pure backpressure). *)

val validate : spec -> n_chans:int -> unit
(** Raises [Invalid_argument] for nonsensical clauses ([pct] outside
    0..100, [burst >= period], negative cycles/nth). *)

val to_string : spec -> string
(** Render the clause list in the CLI grammar (without the seed):
    ["jitter:15@200,stall:3@2+5,drop:1:0"]; ["none"] when empty. *)

val of_string : seed:int -> string -> spec
(** Parse the CLI grammar.  Comma-separated clauses:
    - [jitter:PCT] or [jitter:PCT\@H]
    - [storm:P/B] or [storm:P/B\@H]
    - [stall:CHAN\@c1+c2+...]
    - [drop:CHAN:N], [dup:CHAN:N], [corrupt:CHAN:N], [spurious:CHAN:N]
    - [none] (alone) for the empty spec.
    Raises [Invalid_argument] on syntax errors or nonsensical clauses
    (the result always passes the clause checks of {!validate}). *)

val digest : spec -> string
(** Short stable digest for cache keys; ["nofault"] for [none]. *)

val describe : spec -> string
(** Human-readable one-liner including the seed. *)

(** {1 Runtime}

    One [t] per engine instance.  All observable behaviour is a pure
    function of (spec, cycle, channel, token-arrival history), so two
    runtimes built from the same spec driving byte-identical engines make
    byte-identical decisions. *)

type t

val make : spec -> n_chans:int -> t
(** Channels named in clauses are taken modulo [n_chans]. *)

val spec : t -> spec

val stalled : t -> cycle:int -> chan:int -> bool
(** Phase-1 hook: extra consumer-side stop for [chan] at [cycle]. *)

val note_reset : t -> chan:int -> value:int -> unit
(** Record a reset token pushed directly into the consumer FIFO (it never
    crosses the channel, but it gives [Spurious] a plausible value). *)

val deliver :
  t ->
  chan:int ->
  valid:bool ->
  value:int ->
  can_accept:(unit -> bool) ->
  accept:(int -> unit) ->
  unit
(** Phase-3 hook, replacing the engine's direct "if valid then accept"
    delivery.  [can_accept] must reflect the {e live} consumer state (it
    is re-checked before any extra injected token) and [accept] performs
    the actual push (and delivery accounting).  Policy:
    - a valid token matching a [Drop] clause is discarded;
    - a valid token matching [Dup] is accepted and then accepted a second
      time (immediately if there is room, else re-tried at later void
      slots);
    - a valid token matching [Corrupt] is accepted with its value XOR 1;
    - a void slot matching [Spurious] arms an injection of the most
      recently delivered value, fired at the first void slot with room.
    Exactly the engine's normal behaviour when no clause matches. *)

val injections : t -> int
(** Number of destructive events actually performed so far (drops,
    duplicate deliveries, corruptions, spurious injections). *)

(** {1 Frame-level hooks for the link layer}

    {!Wp_sim.Link} owns the wire on protected channels, so {!deliver}'s
    token-level policy does not apply there: faults hit {e frames} in
    flight instead.  The link layer consumes arrival slots through these
    two hooks — keyed on the same [nth] counters as {!deliver}, so a
    given spec names the same logical positions whether or not the
    channel is protected — and performs the actual mutation (drop /
    duplicate / payload-corrupt / replay) itself, calling
    {!record_injection} for each event it realises. *)

val break_at_arrival : t -> chan:int -> break_kind option
(** Consume one informative-arrival slot on [chan] and return the break
    clause armed for it, if any.  The caller applies the mutation. *)

val spurious_at_void : t -> chan:int -> bool
(** Consume one void slot on [chan]; [true] iff a [Spurious] clause is
    keyed on it (the caller replays its most recent frame). *)

val record_injection : t -> unit
(** Count one realised destructive event (link-layer callers only). *)
