(* Recoverable channel layer: sequence numbers + CRC + go-back-N ARQ +
   credit flow control.  See link.mli for the protocol overview.

   Implementation notes:

   - All state is struct-of-arrays indexed by channel id; unprotected
     channels get 0-length dummies so lookups never branch on option.
   - The per-cycle path ([channel_step] + [receive]) allocates nothing:
     frames move through preallocated delay-line rings, the
     transmit/arrival frame lives in mutable scratch fields on [t], and
     [receive] is a toplevel function rather than a closure.
   - Both engines drive the same [t] API in the same channel order, so
     every protocol decision is shared and the engines stay
     byte-identical under protection. *)

type t = {
  fault : Fault.t option;
  protected_ : bool array;
  window : int array;
  timeout : int array;
  fwd_lat : int array; (* = rs_count: same latency as the chain it replaces *)
  ack_lat : int array; (* = rs_count + 1: ack path is never combinational *)
  labels : string array;
  (* sender *)
  replay : int array array; (* window slots of unacked payloads *)
  s_base : int array; (* oldest unacknowledged sequence number *)
  s_next_tx : int array; (* next sequence number to (re)transmit *)
  s_next_new : int array; (* sequence number of the next admission *)
  s_credits : int array;
  s_timer : int array;
  s_nak_base : int array; (* last base a NAK was honoured for *)
  s_hi_tx : int array; (* 1 + highest sequence number ever transmitted *)
  (* forward wire: delay line of length fwd_lat (0 = combinational) *)
  w_seq : int array array;
  w_pay : int array array;
  w_crc : int array array;
  w_valid : bool array array;
  w_head : int array;
  (* ack wire: delay line of length ack_lat >= 1 *)
  a_ack : int array array; (* cumulative ack: highest in-order seq *)
  a_nak : bool array array;
  a_credit : int array array;
  a_valid : bool array array;
  a_head : int array;
  (* receiver *)
  rwin : int array array; (* in-order payloads awaiting the consumer *)
  r_head : int array;
  r_len : int array;
  r_expected : int array;
  r_nak_pending : bool array;
  r_credit_pending : int array;
  (* last raw frame seen on the wire, for Spurious replay *)
  l_seq : int array;
  l_pay : int array;
  l_crc : int array;
  l_has : bool array;
  (* recovery-latency measurement *)
  rec_pending : bool array;
  rec_start : int array;
  (* per-channel statistics *)
  st_sent : int array;
  st_retrans : int array;
  st_timeouts : int array;
  st_naks : int array;
  st_crc_fail : int array;
  st_dedup : int array;
  st_delivered : int array;
  st_recoveries : int array;
  st_max_rec : int array;
  (* per-cycle frame scratch (no tuples on the hot path) *)
  mutable sc_valid : bool;
  mutable sc_seq : int;
  mutable sc_pay : int;
  mutable sc_crc : int;
}

(* --- CRC ------------------------------------------------------------ *)

(* Native-int avalanche of the sequence number (boxed Int64 arithmetic
   would reintroduce steady-state allocation in the Fast kernel).  The
   tag's statistical quality is incidental: detection certainty below
   comes from the xor, not from the hash. *)
let seq_tag seq =
  let z = seq + 0x9E3779B9 in
  let z = (z lxor (z lsr 30)) * 0x45D9F3B3335B369 in
  let z = (z lxor (z lsr 27)) * 0x3335B36945D9F3B in
  z lxor (z lsr 31)

(* [crc ~seq ~pay] = pay lxor tag(seq): for a fixed sequence number the
   map payload -> crc is a bijection, so ANY payload mutation (the fault
   layer's [lxor 1] in particular) is detected with certainty, not just
   with high probability. *)
let crc ~seq ~pay = pay lxor seq_tag seq

(* --- construction --------------------------------------------------- *)

let auto_window ~rs = max 8 (4 * (rs + 1))
let auto_timeout ~rs = max (8 + (4 * (rs + 1))) ((2 * rs) + 4)

let make ?fault net =
  let n = Network.channel_count net in
  let any = ref false in
  for c = 0 to n - 1 do
    if Network.protection net c <> None then any := true
  done;
  if not !any then None
  else begin
    let protected_ = Array.make n false in
    let window = Array.make n 0 in
    let timeout = Array.make n 0 in
    let fwd_lat = Array.make n 0 in
    let ack_lat = Array.make n 1 in
    let labels = Array.make n "" in
    let empty_i = [||] and empty_b = [||] in
    let replay = Array.make n empty_i in
    let w_seq = Array.make n empty_i in
    let w_pay = Array.make n empty_i in
    let w_crc = Array.make n empty_i in
    let w_valid = Array.make n empty_b in
    let a_ack = Array.make n empty_i in
    let a_nak = Array.make n empty_b in
    let a_credit = Array.make n empty_i in
    let a_valid = Array.make n empty_b in
    let rwin = Array.make n empty_i in
    let s_credits = Array.make n 0 in
    for c = 0 to n - 1 do
      match Network.protection net c with
      | None -> ()
      | Some { Network.window = w; timeout = tmo } ->
          let rs = Network.relay_stations net c in
          let w = if w > 0 then w else auto_window ~rs in
          let tmo =
            max (if tmo > 0 then tmo else auto_timeout ~rs) ((2 * rs) + 4)
          in
          protected_.(c) <- true;
          window.(c) <- w;
          timeout.(c) <- tmo;
          fwd_lat.(c) <- rs;
          ack_lat.(c) <- rs + 1;
          labels.(c) <- Network.channel_label net c;
          replay.(c) <- Array.make w 0;
          w_seq.(c) <- Array.make rs 0;
          w_pay.(c) <- Array.make rs 0;
          w_crc.(c) <- Array.make rs 0;
          w_valid.(c) <- Array.make rs false;
          a_ack.(c) <- Array.make (rs + 1) (-1);
          a_nak.(c) <- Array.make (rs + 1) false;
          a_credit.(c) <- Array.make (rs + 1) 0;
          a_valid.(c) <- Array.make (rs + 1) false;
          rwin.(c) <- Array.make w 0;
          s_credits.(c) <- w
    done;
    Some
      {
        fault;
        protected_;
        window;
        timeout;
        fwd_lat;
        ack_lat;
        labels;
        replay;
        s_base = Array.make n 0;
        s_next_tx = Array.make n 0;
        s_next_new = Array.make n 0;
        s_credits;
        s_timer = Array.make n 0;
        s_nak_base = Array.make n (-1);
        s_hi_tx = Array.make n 0;
        w_seq;
        w_pay;
        w_crc;
        w_valid;
        w_head = Array.make n 0;
        a_ack;
        a_nak;
        a_credit;
        a_valid;
        a_head = Array.make n 0;
        rwin;
        r_head = Array.make n 0;
        r_len = Array.make n 0;
        r_expected = Array.make n 0;
        r_nak_pending = Array.make n false;
        r_credit_pending = Array.make n 0;
        l_seq = Array.make n 0;
        l_pay = Array.make n 0;
        l_crc = Array.make n 0;
        l_has = Array.make n false;
        rec_pending = Array.make n false;
        rec_start = Array.make n 0;
        st_sent = Array.make n 0;
        st_retrans = Array.make n 0;
        st_timeouts = Array.make n 0;
        st_naks = Array.make n 0;
        st_crc_fail = Array.make n 0;
        st_dedup = Array.make n 0;
        st_delivered = Array.make n 0;
        st_recoveries = Array.make n 0;
        st_max_rec = Array.make n 0;
        sc_valid = false;
        sc_seq = 0;
        sc_pay = 0;
        sc_crc = 0;
      }
  end

let is_protected t ~chan = t.protected_.(chan)
let window t ~chan = t.window.(chan)
let timeout t ~chan = t.timeout.(chan)

let producer_stop t ~chan =
  t.s_next_new.(chan) - t.s_base.(chan) >= t.window.(chan)
  || t.s_credits.(chan) <= 0

let quiescence_bonus t =
  let bonus = ref 0 in
  for c = 0 to Array.length t.protected_ - 1 do
    if t.protected_.(c) then begin
      let rtt = t.fwd_lat.(c) + t.ack_lat.(c) in
      let b = (4 * t.timeout.(c)) + (4 * rtt) + 32 in
      if b > !bonus then bonus := b
    end
  done;
  !bonus

(* --- receiver ------------------------------------------------------- *)

let start_recovery t c cycle =
  if not t.rec_pending.(c) then begin
    t.rec_pending.(c) <- true;
    t.rec_start.(c) <- cycle
  end

(* Process one frame arriving at the receiver end of channel [c]. *)
let receive t c cycle seq pay crc_v =
  (* remember the raw frame so a Spurious fault can replay it *)
  t.l_seq.(c) <- seq;
  t.l_pay.(c) <- pay;
  t.l_crc.(c) <- crc_v;
  t.l_has.(c) <- true;
  if crc_v <> crc ~seq ~pay then begin
    (* corrupted in flight: discard, demand a go-back *)
    t.st_crc_fail.(c) <- t.st_crc_fail.(c) + 1;
    t.r_nak_pending.(c) <- true;
    start_recovery t c cycle
  end
  else if seq < t.r_expected.(c) then
    (* stale duplicate (retransmission overlap, Dup or Spurious fault) *)
    t.st_dedup.(c) <- t.st_dedup.(c) + 1
  else if seq > t.r_expected.(c) then begin
    (* gap: a frame was lost ahead of this one; go-back-N discards the
       out-of-order frame and NAKs *)
    t.r_nak_pending.(c) <- true;
    start_recovery t c cycle
  end
  else begin
    (* in-order: queue for the consumer *)
    let w = t.window.(c) in
    if t.r_len.(c) >= w then
      failwith "Link: receive window overflow (credit protocol violated)";
    t.rwin.(c).((t.r_head.(c) + t.r_len.(c)) mod w) <- pay;
    t.r_len.(c) <- t.r_len.(c) + 1;
    t.r_expected.(c) <- seq + 1;
    if t.rec_pending.(c) then begin
      t.rec_pending.(c) <- false;
      t.st_recoveries.(c) <- t.st_recoveries.(c) + 1;
      let lat = cycle - t.rec_start.(c) in
      if lat > t.st_max_rec.(c) then t.st_max_rec.(c) <- lat
    end
  end

(* --- per-cycle step ------------------------------------------------- *)

let channel_step t ~chan:c ~cycle ~produced_valid ~produced_value ~can_accept
    ~accept =
  (* 0. admit the producer's emission into the replay buffer.  The
     engine only lets the producer fire when [producer_stop] was false,
     so a replay slot and a credit are guaranteed. *)
  if produced_valid then begin
    let w = t.window.(c) in
    if t.s_next_new.(c) - t.s_base.(c) >= w || t.s_credits.(c) <= 0 then
      failwith "Link: admission without window/credit (stop protocol violated)";
    t.replay.(c).(t.s_next_new.(c) mod w) <- produced_value;
    t.s_next_new.(c) <- t.s_next_new.(c) + 1;
    t.s_credits.(c) <- t.s_credits.(c) - 1
  end;
  let stalled =
    match t.fault with
    | Some f -> Fault.stalled f ~cycle ~chan:c
    | None -> false
  in
  if not stalled then begin
    (* 1. ack-wire exit: the record emitted ack_lat cycles ago. *)
    let ah = t.a_head.(c) in
    if t.a_valid.(c).(ah) then begin
      let ack = t.a_ack.(c).(ah) in
      t.s_credits.(c) <- t.s_credits.(c) + t.a_credit.(c).(ah);
      if ack >= t.s_base.(c) then begin
        t.s_base.(c) <- ack + 1;
        t.s_timer.(c) <- 0;
        if t.s_next_tx.(c) < t.s_base.(c) then t.s_next_tx.(c) <- t.s_base.(c)
      end;
      if
        t.a_nak.(c).(ah)
        && t.s_nak_base.(c) < t.s_base.(c)
        && t.s_base.(c) < t.s_next_new.(c)
      then begin
        (* honour one NAK per base value; repeats for the same base are
           redundant go-backs already in flight (timeout is the
           backstop if this go-back is itself lost) *)
        t.s_nak_base.(c) <- t.s_base.(c);
        t.s_next_tx.(c) <- t.s_base.(c);
        t.s_timer.(c) <- 0
      end
    end;
    (* 2. retransmission timeout. *)
    if t.s_base.(c) < t.s_next_new.(c) then begin
      t.s_timer.(c) <- t.s_timer.(c) + 1;
      if t.s_timer.(c) >= t.timeout.(c) then begin
        t.s_timer.(c) <- 0;
        t.s_next_tx.(c) <- t.s_base.(c);
        t.st_timeouts.(c) <- t.st_timeouts.(c) + 1;
        start_recovery t c cycle
      end
    end
    else t.s_timer.(c) <- 0;
    (* 3. transmit (at most one frame per cycle) into the scratch. *)
    t.sc_valid <- false;
    if t.s_next_tx.(c) < t.s_next_new.(c) then begin
      let s = t.s_next_tx.(c) in
      let p = t.replay.(c).(s mod t.window.(c)) in
      t.st_sent.(c) <- t.st_sent.(c) + 1;
      if s < t.s_hi_tx.(c) then t.st_retrans.(c) <- t.st_retrans.(c) + 1
      else t.s_hi_tx.(c) <- s + 1;
      t.s_next_tx.(c) <- s + 1;
      t.sc_valid <- true;
      t.sc_seq <- s;
      t.sc_pay <- p;
      t.sc_crc <- crc ~seq:s ~pay:p
    end;
    (* 4. forward-wire shift: exchange the scratch with the slot written
       fwd_lat cycles ago (fwd_lat = 0 passes straight through). *)
    let f = t.fwd_lat.(c) in
    if f > 0 then begin
      let h = t.w_head.(c) in
      let ev = t.w_valid.(c).(h)
      and es = t.w_seq.(c).(h)
      and ep = t.w_pay.(c).(h)
      and ec = t.w_crc.(c).(h) in
      t.w_valid.(c).(h) <- t.sc_valid;
      t.w_seq.(c).(h) <- t.sc_seq;
      t.w_pay.(c).(h) <- t.sc_pay;
      t.w_crc.(c).(h) <- t.sc_crc;
      t.w_head.(c) <- (h + 1) mod f;
      t.sc_valid <- ev;
      t.sc_seq <- es;
      t.sc_pay <- ep;
      t.sc_crc <- ec
    end;
    (* 5. fault application on the frame leaving the wire, then 6. the
       receiver processes whatever physically arrives. *)
    (match t.fault with
    | None ->
        if t.sc_valid then receive t c cycle t.sc_seq t.sc_pay t.sc_crc
    | Some fa ->
        if t.sc_valid then (
          match Fault.break_at_arrival fa ~chan:c with
          | Some Fault.Drop -> Fault.record_injection fa
          | Some Fault.Corrupt ->
              Fault.record_injection fa;
              receive t c cycle t.sc_seq (t.sc_pay lxor 1) t.sc_crc
          | Some Fault.Dup ->
              Fault.record_injection fa;
              receive t c cycle t.sc_seq t.sc_pay t.sc_crc;
              receive t c cycle t.sc_seq t.sc_pay t.sc_crc
          | Some Fault.Spurious | None ->
              (* Spurious keys on void wire slots, inert here *)
              receive t c cycle t.sc_seq t.sc_pay t.sc_crc)
        else if Fault.spurious_at_void fa ~chan:c && t.l_has.(c) then begin
          Fault.record_injection fa;
          receive t c cycle t.l_seq.(c) t.l_pay.(c) t.l_crc.(c)
        end);
    (* 7. drain at most one in-order payload to the consumer shell. *)
    if t.r_len.(c) > 0 && can_accept () then begin
      accept t.rwin.(c).(t.r_head.(c));
      t.r_head.(c) <- (t.r_head.(c) + 1) mod t.window.(c);
      t.r_len.(c) <- t.r_len.(c) - 1;
      t.st_delivered.(c) <- t.st_delivered.(c) + 1;
      t.r_credit_pending.(c) <- t.r_credit_pending.(c) + 1
    end;
    (* 8. emit this cycle's ack record into the slot freed in step 1. *)
    let ah = t.a_head.(c) in
    t.a_valid.(c).(ah) <- true;
    t.a_ack.(c).(ah) <- t.r_expected.(c) - 1;
    t.a_nak.(c).(ah) <- t.r_nak_pending.(c);
    t.a_credit.(c).(ah) <- t.r_credit_pending.(c);
    if t.r_nak_pending.(c) then t.st_naks.(c) <- t.st_naks.(c) + 1;
    t.r_nak_pending.(c) <- false;
    t.r_credit_pending.(c) <- 0;
    t.a_head.(c) <- (ah + 1) mod t.ack_lat.(c)
  end

(* --- measurement ---------------------------------------------------- *)

type chan_stats = {
  chan : int;
  label : string;
  window : int;
  timeout : int;
  sent : int;
  retransmissions : int;
  timeouts : int;
  naks : int;
  crc_detected : int;
  dedup_drops : int;
  delivered : int;
  recoveries : int;
  max_recovery_latency : int;
}

let stats t =
  let out = ref [] in
  for c = Array.length t.protected_ - 1 downto 0 do
    if t.protected_.(c) then
      out :=
        {
          chan = c;
          label = t.labels.(c);
          window = t.window.(c);
          timeout = t.timeout.(c);
          sent = t.st_sent.(c);
          retransmissions = t.st_retrans.(c);
          timeouts = t.st_timeouts.(c);
          naks = t.st_naks.(c);
          crc_detected = t.st_crc_fail.(c);
          dedup_drops = t.st_dedup.(c);
          delivered = t.st_delivered.(c);
          recoveries = t.st_recoveries.(c);
          max_recovery_latency = t.st_max_rec.(c);
        }
        :: !out
  done;
  !out

type summary = {
  protected_channels : int;
  frames_sent : int;
  retransmissions : int;
  timeouts : int;
  naks : int;
  crc_detected : int;
  dedup_drops : int;
  recoveries : int;
  max_recovery_latency : int;
}

let summary t =
  let s =
    ref
      {
        protected_channels = 0;
        frames_sent = 0;
        retransmissions = 0;
        timeouts = 0;
        naks = 0;
        crc_detected = 0;
        dedup_drops = 0;
        recoveries = 0;
        max_recovery_latency = 0;
      }
  in
  for c = 0 to Array.length t.protected_ - 1 do
    if t.protected_.(c) then
      s :=
        {
          protected_channels = !s.protected_channels + 1;
          frames_sent = !s.frames_sent + t.st_sent.(c);
          retransmissions = !s.retransmissions + t.st_retrans.(c);
          timeouts = !s.timeouts + t.st_timeouts.(c);
          naks = !s.naks + t.st_naks.(c);
          crc_detected = !s.crc_detected + t.st_crc_fail.(c);
          dedup_drops = !s.dedup_drops + t.st_dedup.(c);
          recoveries = !s.recoveries + t.st_recoveries.(c);
          max_recovery_latency = max !s.max_recovery_latency t.st_max_rec.(c);
        }
  done;
  !s
