(** Recoverable channel layer: ARQ retransmission and credit flow control
    over relay-station chains.

    The raw wire-pipelined channel of the paper loses at most nothing —
    relay stations and the stop protocol guarantee lossless delivery as
    long as the physical wires behave.  [Wp_sim.Fault]'s destructive
    clauses break exactly that assumption: a single dropped or corrupted
    token permanently desynchronises the SoC.  This module is the
    defender.  A channel armed with {!Network.set_protection} is wrapped
    at engine-build time:

    - every payload admitted from the producer shell is tagged with a
      sequence number and a CRC ([pay lxor mix64(seq)], injective in the
      payload for a fixed sequence number, so any payload corruption is
      detected with certainty);
    - the sender keeps the last [window] unacknowledged payloads in a
      replay buffer and go-back-N retransmits from the cumulative-ack
      base on a NAK or on a timeout;
    - the receiver checks CRC, drops stale duplicates, NAKs gaps and
      corruptions, and releases payloads to the consumer shell strictly
      in order — so the consumer observes exactly the produced stream,
      possibly later ({e latency-insensitivity is preserved by
      construction});
    - credit-based flow control replaces the raw stop wire: the sender
      spends one credit per admission and the receiver returns credits
      as the consumer drains, bounding all buffers by [window].

    The forward path costs [rs_count] cycles (the same latency as the
    relay chain it replaces) and the acknowledgement path
    [rs_count + 1]; both are modelled as delay lines inside this module,
    so the two engines share every bit of protocol state and stay
    byte-identical.  The per-cycle path allocates nothing. *)

type t

val make : ?fault:Fault.t -> Network.t -> t option
(** Compile the protection policy of [net] into a link runtime; [None]
    when no channel is protected.  Window/timeout values of [0] are
    resolved per channel from the relay-station count:
    window [max 8 (4*(rs+1))], timeout [8 + 4*(rs+1)] (clamped to at
    least one round trip).  When [fault] is given, destructive clauses
    on protected channels are applied at {e frame} granularity (see
    {!Fault.break_at_arrival}) and benign stall clauses freeze the
    channel for the cycle. *)

val is_protected : t -> chan:int -> bool

val window : t -> chan:int -> int
(** Resolved window (frames) for a protected channel. *)

val timeout : t -> chan:int -> int
(** Resolved retransmission timeout (cycles) for a protected channel. *)

val producer_stop : t -> chan:int -> bool
(** Phase-1 hook: the producer shell must stall iff the replay window is
    full or the sender is out of credits.  Replaces the propagated stop
    wire on protected channels. *)

val channel_step :
  t ->
  chan:int ->
  cycle:int ->
  produced_valid:bool ->
  produced_value:int ->
  can_accept:(unit -> bool) ->
  accept:(int -> unit) ->
  unit
(** Phase-3 hook: advance one protected channel by one cycle.
    [produced_valid]/[produced_value] describe the producer shell's
    emission this cycle (the engine guarantees it only fires when
    {!producer_stop} was false).  [can_accept]/[accept] are the live
    consumer-side callbacks, identical in meaning to
    {!Fault.deliver}'s; at most one payload is released per cycle.
    Order within the cycle: admit, ack processing, timeout, transmit,
    wire shift, fault application, receive, drain, ack emission. *)

val quiescence_bonus : t -> int
(** Extra quiescence headroom the engine must add to its deadlock
    detector: a recovery episode legitimately silences every shell for
    up to a few timeouts plus round trips. *)

(** {1 Measurement} *)

type chan_stats = {
  chan : int;
  label : string;
  window : int;
  timeout : int;
  sent : int;  (** frames transmitted, including retransmissions *)
  retransmissions : int;
  timeouts : int;
  naks : int;
  crc_detected : int;  (** corrupted frames caught by the CRC check *)
  dedup_drops : int;  (** stale duplicates discarded at the receiver *)
  delivered : int;  (** payloads released to the consumer shell *)
  recoveries : int;  (** loss episodes healed *)
  max_recovery_latency : int;
      (** worst cycles from first loss detection to the in-order
          acceptance that healed it *)
}

val stats : t -> chan_stats list
(** One entry per protected channel, in channel order. *)

type summary = {
  protected_channels : int;
  frames_sent : int;
  retransmissions : int;
  timeouts : int;
  naks : int;
  crc_detected : int;
  dedup_drops : int;
  recoveries : int;
  max_recovery_latency : int;
}

val summary : t -> summary

val auto_window : rs:int -> int
(** The window resolved for [{window = 0; _}] on a channel with [rs]
    relay stations. *)

val auto_timeout : rs:int -> int
(** The timeout resolved for [{timeout = 0; _}] likewise. *)
