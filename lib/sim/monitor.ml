module Shell = Wp_lis.Shell
module Process = Wp_lis.Process

type node_report = {
  node_name : string;
  firings : int;
  stalls : int;
  input_starved : int;
  output_blocked : int;
  port_utilization : (string * float) array;
  port_dropped : (string * int) array;
}

type channel_report = {
  channel_label : string;
  relay_stations : int;
  delivered : int;
  channel_throughput : float;
}

type report = {
  cycles : int;
  nodes : node_report list;
  channels : channel_report list;
}

let collect_from ~net ~cycles ~node_stats ~delivered =
  let node_report n =
    let proc = Network.node_process net n in
    let stats = node_stats n in
    let firings = stats.Shell.firings in
    let util p count =
      ( proc.Process.input_names.(p),
        if firings = 0 then 0.0 else float_of_int count /. float_of_int firings )
    in
    {
      node_name = proc.Process.name;
      firings;
      stalls = stats.Shell.stalls;
      input_starved = stats.Shell.input_starved;
      output_blocked = stats.Shell.output_blocked;
      port_utilization = Array.mapi util stats.Shell.required_counts;
      port_dropped =
        Array.mapi (fun p d -> (proc.Process.input_names.(p), d)) stats.Shell.dropped;
    }
  in
  let channel_report c =
    let delivered = delivered c in
    {
      channel_label = Network.channel_label net c;
      relay_stations = Network.relay_stations net c;
      delivered;
      channel_throughput =
        (if cycles = 0 then 0.0 else float_of_int delivered /. float_of_int cycles);
    }
  in
  {
    cycles;
    nodes = List.map node_report (Network.nodes net);
    channels = List.map channel_report (Network.channels net);
  }

let collect_sim sim =
  collect_from ~net:(Sim.network sim) ~cycles:(Sim.cycles sim)
    ~node_stats:(Sim.node_stats sim) ~delivered:(Sim.delivered sim)

let collect_batch b ~lane =
  collect_from ~net:(Batch.network b ~lane) ~cycles:(Batch.lane_cycles b ~lane)
    ~node_stats:(Batch.node_stats b ~lane) ~delivered:(Batch.delivered b ~lane)

let collect engine = collect_sim (Sim.of_engine engine)

let node_throughput report name =
  let node = List.find (fun n -> n.node_name = name) report.nodes in
  if report.cycles = 0 then 0.0
  else float_of_int node.firings /. float_of_int report.cycles

let utilization report ~node ~port =
  let n = List.find (fun n -> n.node_name = node) report.nodes in
  let _, u = Array.to_list n.port_utilization |> List.find (fun (p, _) -> p = port) in
  u

let to_table report =
  let module T = Wp_util.Text_table in
  let nodes =
    T.create
      ~columns:
        [
          ("node", T.Left);
          ("firings", T.Right);
          ("stalls", T.Right);
          ("starved", T.Right);
          ("blocked", T.Right);
        ]
  in
  List.iter
    (fun n ->
      T.add_row nodes
        [
          n.node_name;
          string_of_int n.firings;
          string_of_int n.stalls;
          string_of_int n.input_starved;
          string_of_int n.output_blocked;
        ])
    report.nodes;
  let chans =
    T.create
      ~columns:
        [ ("channel", T.Left); ("RS", T.Right); ("delivered", T.Right); ("Th", T.Right) ]
  in
  List.iter
    (fun c ->
      T.add_row chans
        [
          c.channel_label;
          string_of_int c.relay_stations;
          string_of_int c.delivered;
          Printf.sprintf "%.3f" c.channel_throughput;
        ])
    report.channels;
  Printf.sprintf "cycles: %d\n%s\n%s" report.cycles (T.render nodes) (T.render chans)
