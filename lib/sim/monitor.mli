(** Post-run reporting: per-node and per-channel statistics. *)

type node_report = {
  node_name : string;
  firings : int;
  stalls : int;
  input_starved : int;
  output_blocked : int;
  port_utilization : (string * float) array;
      (** per input port: fraction of firings that required the port (1.0
          everywhere under plain wrappers) *)
  port_dropped : (string * int) array;
      (** per input port: tokens discarded by the oracle rule *)
}

type channel_report = {
  channel_label : string;
  relay_stations : int;
  delivered : int;       (** valid tokens that reached the consumer *)
  channel_throughput : float;  (** delivered per cycle *)
}

type report = {
  cycles : int;
  nodes : node_report list;
  channels : channel_report list;
}

val collect_sim : Sim.t -> report
(** Engine-agnostic collection; works with either kernel. *)

val collect_batch : Batch.t -> lane:int -> report
(** Per-lane collection from a batch kernel; identical to running
    {!collect_sim} on the lane's solo {!Fast} equivalent. *)

val collect : Engine.t -> report
(** [collect e] is [collect_sim (Sim.of_engine e)]. *)

val node_throughput : report -> string -> float
(** Firings per cycle of the named node.  @raise Not_found. *)

val utilization : report -> node:string -> port:string -> float
(** Required fraction for one input port.  @raise Not_found. *)

val to_table : report -> string
(** Rendered summary (one table for nodes, one for channels). *)
