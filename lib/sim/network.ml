module Process = Wp_lis.Process

type node = int
type channel = int

type protection = { window : int; timeout : int }

type channel_info = {
  src_node : node;
  src_port : int;
  dst_node : node;
  dst_port : int;
  mutable rs_count : int;
  mutable protect : protection option;
  label : string;
}

type t = {
  mutable procs : Process.t array;
  mutable n_nodes : int;
  mutable chans : channel_info array;
  mutable n_chans : int;
  (* O(1) lookup indices, maintained incrementally so building a network
     with E channels is O(E) instead of the O(E^2) that per-connect
     linear scans used to cost on large random netlists. *)
  names : (string, node) Hashtbl.t;
  labels : (string, channel) Hashtbl.t;
  mutable in_taken : Bytes.t array; (* per node, one byte per input port *)
  mutable out_taken : Bytes.t array; (* per node, one byte per output port *)
}

let dummy_chan =
  { src_node = -1; src_port = -1; dst_node = -1; dst_port = -1; rs_count = 0;
    protect = None; label = "" }

let create () =
  {
    procs = Array.make 8 (Process.sink ~name:"" ~input_name:"");
    n_nodes = 0;
    chans = Array.make 8 dummy_chan;
    n_chans = 0;
    names = Hashtbl.create 16;
    labels = Hashtbl.create 16;
    in_taken = Array.make 8 Bytes.empty;
    out_taken = Array.make 8 Bytes.empty;
  }

let grow arr used fill =
  if used < Array.length arr then arr
  else begin
    let fresh = Array.make (2 * Array.length arr) fill in
    Array.blit arr 0 fresh 0 used;
    fresh
  end

let node_count t = t.n_nodes
let channel_count t = t.n_chans

let check_node t n = if n < 0 || n >= t.n_nodes then invalid_arg "Network: no such node"
let check_channel t c = if c < 0 || c >= t.n_chans then invalid_arg "Network: no such channel"

let node_process t n = check_node t n; t.procs.(n)

let node_of_name t name = Hashtbl.find_opt t.names name

let add t proc =
  Process.validate proc;
  if Hashtbl.mem t.names proc.Process.name then
    invalid_arg ("Network.add: duplicate process name " ^ proc.Process.name);
  t.procs <- grow t.procs t.n_nodes proc;
  t.in_taken <- grow t.in_taken t.n_nodes Bytes.empty;
  t.out_taken <- grow t.out_taken t.n_nodes Bytes.empty;
  let n = t.n_nodes in
  t.procs.(n) <- proc;
  t.in_taken.(n) <- Bytes.make (Process.n_inputs proc) '\000';
  t.out_taken.(n) <- Bytes.make (Process.n_outputs proc) '\000';
  t.n_nodes <- n + 1;
  Hashtbl.replace t.names proc.Process.name n;
  n

let port_taken t ~output node port =
  check_node t node;
  let bits = if output then t.out_taken.(node) else t.in_taken.(node) in
  port >= 0 && port < Bytes.length bits && Bytes.get bits port <> '\000'

let mark_port t ~output node port =
  let bits = if output then t.out_taken.(node) else t.in_taken.(node) in
  Bytes.set bits port '\001'

let connect t ~src:(src_node, src_port_name) ~dst:(dst_node, dst_port_name)
    ?(relay_stations = 0) ?label () =
  check_node t src_node;
  check_node t dst_node;
  if relay_stations < 0 then invalid_arg "Network.connect: negative relay station count";
  let src_proc = t.procs.(src_node) and dst_proc = t.procs.(dst_node) in
  let src_port =
    try Process.output_index src_proc src_port_name
    with Not_found ->
      invalid_arg
        (Printf.sprintf "Network.connect: %s has no output port %s" src_proc.Process.name
           src_port_name)
  in
  let dst_port =
    try Process.input_index dst_proc dst_port_name
    with Not_found ->
      invalid_arg
        (Printf.sprintf "Network.connect: %s has no input port %s" dst_proc.Process.name
           dst_port_name)
  in
  if port_taken t ~output:true src_node src_port then
    invalid_arg
      (Printf.sprintf "Network.connect: output %s.%s already connected"
         src_proc.Process.name src_port_name);
  if port_taken t ~output:false dst_node dst_port then
    invalid_arg
      (Printf.sprintf "Network.connect: input %s.%s already connected" dst_proc.Process.name
         dst_port_name);
  let label =
    match label with
    | Some l -> l
    | None ->
      Printf.sprintf "%s.%s -> %s.%s" src_proc.Process.name src_port_name
        dst_proc.Process.name dst_port_name
  in
  t.chans <- grow t.chans t.n_chans dummy_chan;
  let c = t.n_chans in
  t.chans.(c) <-
    { src_node; src_port; dst_node; dst_port; rs_count = relay_stations;
      protect = None; label };
  t.n_chans <- c + 1;
  mark_port t ~output:true src_node src_port;
  mark_port t ~output:false dst_node dst_port;
  (* First channel wins a shared label, matching the old scan order. *)
  if not (Hashtbl.mem t.labels label) then Hashtbl.replace t.labels label c;
  c

let set_relay_stations t c n =
  check_channel t c;
  if n < 0 then invalid_arg "Network.set_relay_stations: negative count";
  t.chans.(c).rs_count <- n

let relay_stations t c = check_channel t c; t.chans.(c).rs_count

let set_protection t c p =
  check_channel t c;
  (match p with
  | Some { window; timeout } ->
    if window < 0 then invalid_arg "Network.set_protection: negative window";
    if timeout < 0 then invalid_arg "Network.set_protection: negative timeout"
  | None -> ());
  t.chans.(c).protect <- p

let protection t c = check_channel t c; t.chans.(c).protect

let validate t =
  for n = 0 to t.n_nodes - 1 do
    let proc = t.procs.(n) in
    for p = 0 to Process.n_inputs proc - 1 do
      if not (port_taken t ~output:false n p) then
        invalid_arg
          (Printf.sprintf "Network.validate: input %s.%s unconnected" proc.Process.name
             proc.Process.input_names.(p))
    done;
    for p = 0 to Process.n_outputs proc - 1 do
      if not (port_taken t ~output:true n p) then
        invalid_arg
          (Printf.sprintf "Network.validate: output %s.%s unconnected" proc.Process.name
             proc.Process.output_names.(p))
    done
  done

let channel_of_label t label = Hashtbl.find_opt t.labels label

let channel_label t c = check_channel t c; t.chans.(c).label
let channel_src t c = check_channel t c; (t.chans.(c).src_node, t.chans.(c).src_port)
let channel_dst t c = check_channel t c; (t.chans.(c).dst_node, t.chans.(c).dst_port)

let channels t = List.init t.n_chans Fun.id
let nodes t = List.init t.n_nodes Fun.id

let to_digraph t =
  let g = Wp_graph.Digraph.create () in
  for n = 0 to t.n_nodes - 1 do
    ignore (Wp_graph.Digraph.add_vertex g ~label:t.procs.(n).Process.name)
  done;
  for c = 0 to t.n_chans - 1 do
    let info = t.chans.(c) in
    ignore
      (Wp_graph.Digraph.add_edge g ~src:info.src_node ~dst:info.dst_node ~label:info.label)
  done;
  (g, fun e -> e)
