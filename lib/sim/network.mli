(** Netlist description: processes connected by point-to-point channels,
    each channel carrying a number of relay stations.

    The network is a static description; the {!Engine} instantiates it into
    shells and relay chains.  Every input and output port must be connected
    exactly once (hardware fan-out is modelled by giving a process one
    output port per destination, as the paper's case study does). *)

type t

type node = int
type channel = int

type protection = { window : int; timeout : int }
(** Link-layer protection policy for one channel.  [window] is the
    go-back-N replay window (and credit pool) in frames; [timeout] is the
    sender's retransmission timeout in cycles.  Either may be [0], meaning
    "auto": the {!Link} layer sizes it from the channel's relay-station
    count at build time. *)

val create : unit -> t

val add : t -> Wp_lis.Process.t -> node
(** @raise Invalid_argument if the process fails {!Wp_lis.Process.validate}
    or a process with the same name was already added. *)

val connect :
  t ->
  src:node * string ->
  dst:node * string ->
  ?relay_stations:int ->
  ?label:string ->
  unit ->
  channel
(** Connect output port [snd src] of [fst src] to input port [snd dst].
    [relay_stations] defaults to 0; the default label is
    ["<src>.<port> -> <dst>.<port>"].
    @raise Invalid_argument on unknown node/port, negative RS count, or a
    port connected twice. *)

val set_relay_stations : t -> channel -> int -> unit
(** Re-dimension one channel (used to sweep RS configurations without
    rebuilding the netlist). @raise Invalid_argument if negative. *)

val relay_stations : t -> channel -> int

val set_protection : t -> channel -> protection option -> unit
(** Arm (or disarm, with [None]) link-layer protection on one channel.
    Protected channels are wrapped by {!Link} at engine-build time:
    sequence-numbered frames, CRC tagging, go-back-N retransmission and
    credit-based flow control replace the raw stop-wire.
    @raise Invalid_argument on a negative window or timeout. *)

val protection : t -> channel -> protection option

val validate : t -> unit
(** @raise Invalid_argument listing any unconnected port. *)

val node_count : t -> int
val channel_count : t -> int
val node_process : t -> node -> Wp_lis.Process.t
val node_of_name : t -> string -> node option
val channel_of_label : t -> string -> channel option
val channel_label : t -> channel -> string
val channel_src : t -> channel -> node * int
val channel_dst : t -> channel -> node * int
val channels : t -> channel list
val nodes : t -> node list

val to_digraph : t -> Wp_graph.Digraph.t * (Wp_graph.Digraph.edge -> channel)
(** Graph with one vertex per node (same indices) and one edge per channel
    (same indices), plus the edge-to-channel mapping for analytics. *)
