module Shell = Wp_lis.Shell
module Token = Wp_lis.Token

type kind =
  | Reference
  | Fast
  | Static

let kind_to_string = function
  | Reference -> "ref"
  | Fast -> "fast"
  | Static -> "static"

let kind_of_string = function
  | "ref" | "reference" -> Some Reference
  | "fast" -> Some Fast
  | "static" -> Some Static
  | _ -> None

let default_kind =
  match Sys.getenv_opt "WIREPIPE_ENGINE" with
  | Some s -> (match kind_of_string (String.lowercase_ascii s) with Some k -> k | None -> Fast)
  | None -> Fast

type t =
  | Ref of Engine.t
  | Fst of Fast.t
  | Sta of Static.t

let kind = function Ref _ -> Reference | Fst _ -> Fast | Sta _ -> Static
let of_engine e = Ref e
let of_fast f = Fst f
let of_static s = Sta s

let create ?(engine = default_kind) ?capacity ?record_traces ?fault ?telemetry
    ~mode net =
  match engine with
  | Reference ->
      Ref (Engine.create ?capacity ?record_traces ?fault ?telemetry ~mode net)
  | Fast ->
      Fst (Fast.create ?capacity ?record_traces ?fault ?telemetry ~mode net)
  | Static ->
      Sta (Static.create ?capacity ?record_traces ?fault ?telemetry ~mode net)

let step = function
  | Ref e -> Engine.step e
  | Fst f -> Fast.step f
  | Sta s -> Static.step s

let run ?cancel ?max_cycles = function
  | Ref e -> Engine.run ?cancel ?max_cycles e
  | Fst f -> Fast.run ?cancel ?max_cycles f
  | Sta s -> Static.run ?cancel ?max_cycles s

let cycles = function
  | Ref e -> Engine.cycles e
  | Fst f -> Fast.cycles f
  | Sta s -> Static.cycles s

let mode = function
  | Ref e -> Engine.mode e
  | Fst f -> Fast.mode f
  | Sta s -> Static.mode s

let network = function
  | Ref e -> Engine.network e
  | Fst f -> Fast.network f
  | Sta s -> Static.network s

let delivered t c =
  match t with
  | Ref e -> Engine.delivered e c
  | Fst f -> Fast.delivered f c
  | Sta s -> Static.delivered s c

let fired_last_cycle = function
  | Ref e -> Engine.fired_last_cycle e
  | Fst f -> Fast.fired_last_cycle f
  | Sta s -> Static.fired_last_cycle s

let quiescence_window = function
  | Ref e -> Engine.quiescence_window e
  | Fst f -> Fast.quiescence_window f
  | Sta s -> Static.quiescence_window s

let fault_injections = function
  | Ref e -> Engine.fault_injections e
  | Fst f -> Fast.fault_injections f
  | Sta s -> Static.fault_injections s

let link_stats = function
  | Ref e -> Engine.link_stats e
  | Fst f -> Fast.link_stats f
  | Sta s -> Static.link_stats s

let link_summary = function
  | Ref e -> Engine.link_summary e
  | Fst f -> Fast.link_summary f
  | Sta s -> Static.link_summary s

let telemetry_report = function
  | Ref e -> Engine.telemetry_report e
  | Fst f -> Fast.telemetry_report f
  | Sta s -> Static.telemetry_report s

let node_stats t n =
  match t with
  | Ref e -> Shell.stats (Engine.shell e n)
  | Fst f -> Fast.node_stats f n
  | Sta s -> Static.node_stats s n

let output_trace t n p =
  match t with
  | Ref e -> Shell.output_trace (Engine.shell e n) p
  | Fst f -> Fast.output_trace f n p
  | Sta s -> Static.output_trace s n p

let buffered t n p =
  match t with
  | Ref e -> Shell.buffered (Engine.shell e n) p
  | Fst f -> Fast.buffered f n p
  | Sta s -> Static.buffered s n p
