(** Engine-agnostic simulation facade.

    Every experiment can run on the readable reference interpreter
    ({!Engine}), the compiled allocation-free kernel ({!Fast}), or the
    table-driven static-schedule kernel ({!Static}); the three are
    byte-identical in observable behaviour (outcomes, cycle counts,
    delivered tokens, shell statistics, traces) wherever they all
    apply, and the differential test battery asserts it.  This module
    hides the choice behind one type so callers thread a single
    [?engine] argument instead of duplicating code paths.

    {!Static} only covers statically schedulable configurations (Plain
    mode, no faults, no link protection, no telemetry, bounded FIFOs);
    {!create} with [engine = Static] raises {!Static.Unschedulable}
    on anything else — an explicit refusal, never a silently wrong
    simulation. *)

type kind =
  | Reference  (** {!Engine}: boxed tokens, per-cycle allocation, easy to read *)
  | Fast       (** {!Fast}: compiled int arrays, zero steady-state allocation *)
  | Static     (** {!Static}: precomputed firing table, no per-cycle handshake *)

val kind_to_string : kind -> string
(** ["ref"] / ["fast"] / ["static"] — stable strings for CLI flags and
    cache keys. *)

val kind_of_string : string -> kind option
(** Accepts ["ref"], ["reference"], ["fast"] and ["static"]. *)

val default_kind : kind
(** [Fast], unless the [WIREPIPE_ENGINE] environment variable names a
    valid kind. *)

type t

val create :
  ?engine:kind ->
  ?capacity:int ->
  ?record_traces:bool ->
  ?fault:Fault.spec ->
  ?telemetry:Telemetry.spec ->
  mode:Wp_lis.Shell.mode ->
  Network.t ->
  t
(** [engine] defaults to {!default_kind}; the remaining arguments are
    forwarded to {!Engine.create} / {!Fast.create} / {!Static.create}
    unchanged.  The dynamic engines interpret a [fault] spec through
    the same {!Fault} policy code, so the differential batteries stay
    byte-identical even under injected faults.
    @raise Static.Unschedulable when [engine = Static] and the
    configuration has no static firing word (oracle mode, faults,
    protection, telemetry, or unbounded FIFOs). *)

val of_engine : Engine.t -> t
val of_fast : Fast.t -> t
val of_static : Static.t -> t
val kind : t -> kind

val step : t -> unit
val run : ?cancel:Wp_util.Cancel.t -> ?max_cycles:int -> t -> Engine.outcome
val cycles : t -> int
val mode : t -> Wp_lis.Shell.mode
val network : t -> Network.t
val delivered : t -> Network.channel -> int
val fired_last_cycle : t -> bool
val quiescence_window : t -> int

val fault_injections : t -> int
(** Destructive fault events performed so far; 0 without a fault spec. *)

val link_stats : t -> Link.chan_stats list
(** Per-protected-channel ARQ statistics; [[]] when nothing is protected. *)

val link_summary : t -> Link.summary option
(** Aggregate link-layer statistics; [None] when nothing is protected. *)

val telemetry_report : t -> Telemetry.report option
(** Stall-attribution summary and optional event trace; [None] when the
    run was created with {!Telemetry.off}.  Byte-identical across the
    engines on the same run. *)

val node_stats : t -> Network.node -> Wp_lis.Shell.stats
val output_trace : t -> Network.node -> int -> int Wp_lis.Token.t list
val buffered : t -> Network.node -> int -> int
