(* Static-schedule kernel: one count-only prepass, then table replay.

   The prepass replicates Fast's three-phase step on occupancies alone
   (FIFO lengths and relay-station fills — in Plain mode with no
   faults these determine firing exactly), hashing the state vector
   each cycle until it repeats.  That yields a transient prefix plus a
   period, and per-cycle tables of fired / starved / blocked shells
   and delivered channels.  Replay then walks the table: scheduled
   shells fire their real process closures on real data (values travel
   through per-channel append-only queues instead of FIFOs — channel
   order is FIFO order because [Network.connect] makes ports and
   channels one-to-one), scheduled stalls bump the same counters Fast
   bumps, scheduled deliveries bump [delivered].  Everything
   observable stays byte-identical to the dynamic engines while the
   per-cycle cost drops to a few array reads. *)

module Shell = Wp_lis.Shell
module Token = Wp_lis.Token
module Process = Wp_lis.Process
module Digraph = Wp_graph.Digraph
module Cycle_ratio = Wp_graph.Cycle_ratio
module Schedule = Wp_graph.Schedule

exception Unschedulable of string

let unschedulable fmt = Printf.ksprintf (fun s -> raise (Unschedulable s)) fmt

(* One cycle of the precomputed table. *)
type table_cycle = {
  tc_fired : int array;  (* shells firing this cycle, ascending *)
  tc_starved : int array;  (* stalled, missing an input *)
  tc_blocked : int array;  (* stalled, ready but backpressured *)
  tc_deliver : int array;  (* channels delivering a token *)
  tc_any : bool;
}

type t = {
  net : Network.t;
  record_traces : bool;
  n_nodes : int;
  n_chans : int;
  instances : Process.instance array;
  in_base : int array;
  out_base : int array;
  ip_chan : int array;  (* global input port -> feeding channel *)
  op_chan : int array;  (* global output port -> driven channel *)
  chan_dst_ip : int array;
  (* the schedule *)
  transient : int;
  period : int;
  table : table_cycle array;  (* length transient + period *)
  (* per-shell statistics, identical meaning to Fast's *)
  firings : int array;
  stalls : int array;
  input_starved : int array;
  output_blocked : int array;
  required_counts : int array;
  dropped : int array;  (* always 0: oracle skips are unschedulable *)
  inputs_scratch : int option array array;
  traces : int Token.t list array;  (* newest first *)
  (* per-channel value stream: absolute index 0 is the reset token;
     [q_buf.(c)] holds indices [q_off.(c) ..< q_off.(c) + q_len.(c)]
     (the consumed prefix is compacted away on growth, so the buffer
     stays bounded by the tokens actually in flight) *)
  q_buf : int array array;
  q_off : int array;
  q_len : int array;
  consumed : int array;
  chan_delivered : int array;
  (* clocking *)
  mutable clock : int;
  mutable last_fired : bool;
  mutable quiet_cycles : int;
  quiescence : int;
}

(* ------------------------------------------------------------------ *)
(* Count-only prepass                                                 *)
(* ------------------------------------------------------------------ *)

(* A generous ceiling: the reachable occupancy space of the paper's
   networks cycles within tens of cycles, but a pathological graph
   could wander longer before closing its orbit. *)
let prepass_budget = 1 lsl 16

let prepass ~capacity ~n_nodes ~n_chans ~in_base ~out_base ~chan_src_op
    ~chan_dst_ip ~chan_rs_base ~out_chan_base ~out_chan_ids =
  let n_in_total = in_base.(n_nodes) in
  let total_rs = chan_rs_base.(n_chans) in
  let fifo_len = Array.make (max 1 n_in_total) 0 in
  let rs_len = Array.make (max 1 total_rs) 0 in
  let stage_stops = Array.make (max 1 total_rs) false in
  let rs_out_valid = Array.make (max 1 total_rs) false in
  let producer_stop = Array.make (max 1 n_chans) false in
  let emit_valid = Array.make (max 1 out_base.(n_nodes)) false in
  (* Reset: one token per channel, exactly as in [Fast.create]. *)
  for c = 0 to n_chans - 1 do
    let ip = chan_dst_ip.(c) in
    if fifo_len.(ip) < capacity then fifo_len.(ip) <- fifo_len.(ip) + 1
  done;
  let state_key () =
    let key = Array.make (n_in_total + total_rs) 0 in
    Array.blit fifo_len 0 key 0 n_in_total;
    Array.blit rs_len 0 key n_in_total total_rs;
    key
  in
  let seen : (int array, int) Hashtbl.t = Hashtbl.create 1024 in
  let records = ref [] in
  let result = ref None in
  let cycle = ref 0 in
  while !result = None do
    (match Hashtbl.find_opt seen (state_key ()) with
    | Some first -> result := Some (first, !cycle - first)
    | None ->
        if !cycle >= prepass_budget then
          unschedulable
            "no periodic steady state within %d cycles (capacity %d)"
            prepass_budget capacity;
        Hashtbl.add seen (state_key ()) !cycle;
        (* Phase 1: stop propagation. *)
        for c = 0 to n_chans - 1 do
          let stop = ref (fifo_len.(chan_dst_ip.(c)) >= capacity) in
          let base = chan_rs_base.(c) in
          for i = chan_rs_base.(c + 1) - 1 - base downto 0 do
            let r = base + i in
            stage_stops.(r) <- !stop;
            stop := !stop && rs_len.(r) >= 2
          done;
          producer_stop.(c) <- !stop
        done;
        (* Phase 2: firing decisions. *)
        let fired = ref [] and starved = ref [] and blocked = ref [] in
        let any = ref false in
        for n = 0 to n_nodes - 1 do
          let outputs_clear =
            let ok = ref true in
            for j = out_chan_base.(n) to out_chan_base.(n + 1) - 1 do
              if producer_stop.(out_chan_ids.(j)) then ok := false
            done;
            !ok
          in
          let ready = ref true in
          for p = 0 to in_base.(n + 1) - in_base.(n) - 1 do
            if fifo_len.(in_base.(n) + p) = 0 then ready := false
          done;
          let op0 = out_base.(n) in
          if !ready && outputs_clear then begin
            any := true;
            fired := n :: !fired;
            for p = 0 to in_base.(n + 1) - in_base.(n) - 1 do
              let ip = in_base.(n) + p in
              fifo_len.(ip) <- fifo_len.(ip) - 1
            done;
            for q = 0 to out_base.(n + 1) - op0 - 1 do
              emit_valid.(op0 + q) <- true
            done
          end
          else begin
            (if !ready then blocked := n :: !blocked
             else starved := n :: !starved);
            for q = 0 to out_base.(n + 1) - op0 - 1 do
              emit_valid.(op0 + q) <- false
            done
          end
        done;
        (* Phase 3: simultaneous shift and delivery. *)
        let deliver = ref [] in
        for c = 0 to n_chans - 1 do
          let op = chan_src_op.(c) in
          let base = chan_rs_base.(c) in
          let k = chan_rs_base.(c + 1) - base in
          let tc_valid =
            if k = 0 then emit_valid.(op)
            else begin
              for i = 0 to k - 1 do
                let r = base + i in
                if stage_stops.(r) || rs_len.(r) = 0 then
                  rs_out_valid.(r) <- false
                else begin
                  rs_out_valid.(r) <- true;
                  rs_len.(r) <- rs_len.(r) - 1
                end
              done;
              if emit_valid.(op) then rs_len.(base) <- rs_len.(base) + 1;
              for i = 1 to k - 1 do
                if rs_out_valid.(base + i - 1) then
                  rs_len.(base + i) <- rs_len.(base + i) + 1
              done;
              rs_out_valid.(base + k - 1)
            end
          in
          if tc_valid then begin
            deliver := c :: !deliver;
            let ip = chan_dst_ip.(c) in
            if fifo_len.(ip) >= capacity then
              failwith "Static prepass: token lost (stop protocol violated)";
            fifo_len.(ip) <- fifo_len.(ip) + 1
          end
        done;
        records :=
          {
            tc_fired = Array.of_list (List.rev !fired);
            tc_starved = Array.of_list (List.rev !starved);
            tc_blocked = Array.of_list (List.rev !blocked);
            tc_deliver = Array.of_list (List.rev !deliver);
            tc_any = !any;
          }
          :: !records;
        incr cycle)
  done;
  let transient, period =
    match !result with Some tp -> tp | None -> assert false
  in
  (* Keep only the transient plus one full period. *)
  let all = Array.of_list (List.rev !records) in
  (transient, period, Array.sub all 0 (transient + period))

(* ------------------------------------------------------------------ *)
(* Shared CSR metadata                                                *)
(* ------------------------------------------------------------------ *)

(* Flattened topology: every engine in this library derives the same
   arrays from a network; factoring them out lets {!tables} serve both
   this module and the batch kernel's static lane groups. *)
type meta = {
  m_n_nodes : int;
  m_n_chans : int;
  m_in_base : int array;
  m_out_base : int array;
  m_chan_src_op : int array;
  m_chan_dst_ip : int array;
  m_chan_rs_base : int array;
  m_out_chan_base : int array;
  m_out_chan_ids : int array;
  m_ip_chan : int array;
  m_op_chan : int array;
}

let meta_of net =
  let n_nodes = Network.node_count net in
  let n_chans = Network.channel_count net in
  let procs = Array.init n_nodes (fun n -> Network.node_process net n) in
  let prefix f =
    let base = Array.make (n_nodes + 1) 0 in
    for n = 0 to n_nodes - 1 do
      base.(n + 1) <- base.(n) + f procs.(n)
    done;
    base
  in
  let in_base = prefix Process.n_inputs in
  let out_base = prefix Process.n_outputs in
  let n_in_total = in_base.(n_nodes) in
  let n_out_total = out_base.(n_nodes) in
  let chan_src_op = Array.make (max 1 n_chans) 0 in
  let chan_dst_ip = Array.make (max 1 n_chans) 0 in
  let chan_src_node = Array.make (max 1 n_chans) 0 in
  let chan_rs_base = Array.make (n_chans + 1) 0 in
  let ip_chan = Array.make (max 1 n_in_total) (-1) in
  let op_chan = Array.make (max 1 n_out_total) (-1) in
  for c = 0 to n_chans - 1 do
    let src_node, src_port = Network.channel_src net c in
    let dst_node, dst_port = Network.channel_dst net c in
    chan_src_node.(c) <- src_node;
    chan_src_op.(c) <- out_base.(src_node) + src_port;
    chan_dst_ip.(c) <- in_base.(dst_node) + dst_port;
    ip_chan.(chan_dst_ip.(c)) <- c;
    op_chan.(chan_src_op.(c)) <- c;
    chan_rs_base.(c + 1) <- chan_rs_base.(c) + Network.relay_stations net c
  done;
  let out_chan_base = Array.make (n_nodes + 1) 0 in
  for c = 0 to n_chans - 1 do
    let n = chan_src_node.(c) in
    out_chan_base.(n + 1) <- out_chan_base.(n + 1) + 1
  done;
  for n = 0 to n_nodes - 1 do
    out_chan_base.(n + 1) <- out_chan_base.(n + 1) + out_chan_base.(n)
  done;
  let out_chan_ids = Array.make (max 1 n_chans) 0 in
  let cursor = Array.copy out_chan_base in
  for c = 0 to n_chans - 1 do
    let n = chan_src_node.(c) in
    out_chan_ids.(cursor.(n)) <- c;
    cursor.(n) <- cursor.(n) + 1
  done;
  {
    m_n_nodes = n_nodes;
    m_n_chans = n_chans;
    m_in_base = in_base;
    m_out_base = out_base;
    m_chan_src_op = chan_src_op;
    m_chan_dst_ip = chan_dst_ip;
    m_chan_rs_base = chan_rs_base;
    m_out_chan_base = out_chan_base;
    m_out_chan_ids = out_chan_ids;
    m_ip_chan = ip_chan;
    m_op_chan = op_chan;
  }

let tables ~capacity net =
  if capacity <= 0 then
    unschedulable "unbounded FIFOs have no finite occupancy state";
  let m = meta_of net in
  prepass ~capacity ~n_nodes:m.m_n_nodes ~n_chans:m.m_n_chans
    ~in_base:m.m_in_base ~out_base:m.m_out_base ~chan_src_op:m.m_chan_src_op
    ~chan_dst_ip:m.m_chan_dst_ip ~chan_rs_base:m.m_chan_rs_base
    ~out_chan_base:m.m_out_chan_base ~out_chan_ids:m.m_out_chan_ids

(* ------------------------------------------------------------------ *)
(* Compile                                                            *)
(* ------------------------------------------------------------------ *)

let create ?(capacity = 2) ?(record_traces = false) ?fault
    ?(telemetry = Telemetry.off) ~mode net =
  if capacity < 0 then invalid_arg "Static.create: negative capacity";
  Network.validate net;
  (match mode with
  | Shell.Plain -> ()
  | Shell.Oracle ->
      unschedulable "oracle mode: input masks are data-dependent");
  (match fault with
  | Some spec when not (Fault.is_none spec) ->
      unschedulable "fault injection perturbs the firing pattern"
  | _ -> ());
  if not (Telemetry.is_off telemetry) then
    unschedulable "telemetry instrumentation needs per-cycle observation";
  if capacity = 0 then
    unschedulable "unbounded FIFOs have no finite occupancy state";
  let n_nodes = Network.node_count net in
  let n_chans = Network.channel_count net in
  for c = 0 to n_chans - 1 do
    if Network.protection net c <> None then
      unschedulable "channel %d is link-protected" c
  done;
  let procs = Array.init n_nodes (fun n -> Network.node_process net n) in
  let instances =
    Array.init n_nodes (fun n -> procs.(n).Process.make ())
  in
  let m = meta_of net in
  let in_base = m.m_in_base in
  let out_base = m.m_out_base in
  let n_in_total = in_base.(n_nodes) in
  let n_out_total = out_base.(n_nodes) in
  let ip_chan = m.m_ip_chan in
  let op_chan = m.m_op_chan in
  let chan_dst_ip = m.m_chan_dst_ip in
  let total_rs = m.m_chan_rs_base.(n_chans) in
  let transient, period, table =
    prepass ~capacity ~n_nodes ~n_chans ~in_base ~out_base
      ~chan_src_op:m.m_chan_src_op ~chan_dst_ip
      ~chan_rs_base:m.m_chan_rs_base ~out_chan_base:m.m_out_chan_base
      ~out_chan_ids:m.m_out_chan_ids
  in
  let quiescence = 16 + (4 * (n_nodes + n_chans + total_rs)) in
  let q_buf = Array.init (max 1 n_chans) (fun _ -> Array.make 16 0) in
  let q_len = Array.make (max 1 n_chans) 0 in
  (* Reset values seed each channel's stream. *)
  for c = 0 to n_chans - 1 do
    let src_node, src_port = Network.channel_src net c in
    q_buf.(c).(0) <- procs.(src_node).Process.reset_outputs.(src_port);
    q_len.(c) <- 1
  done;
  {
    net;
    record_traces;
    n_nodes;
    n_chans;
    instances;
    in_base;
    out_base;
    ip_chan;
    op_chan;
    chan_dst_ip;
    transient;
    period;
    table;
    firings = Array.make (max 1 n_nodes) 0;
    stalls = Array.make (max 1 n_nodes) 0;
    input_starved = Array.make (max 1 n_nodes) 0;
    output_blocked = Array.make (max 1 n_nodes) 0;
    required_counts = Array.make (max 1 n_in_total) 0;
    dropped = Array.make (max 1 n_in_total) 0;
    inputs_scratch =
      Array.init n_nodes (fun n -> Array.make (Process.n_inputs procs.(n)) None);
    traces = Array.make (max 1 n_out_total) [];
    q_buf;
    q_off = Array.make (max 1 n_chans) 0;
    q_len;
    consumed = Array.make (max 1 n_chans) 0;
    chan_delivered = Array.make (max 1 n_chans) 0;
    clock = 0;
    last_fired = false;
    quiet_cycles = 0;
    quiescence;
  }

(* ------------------------------------------------------------------ *)
(* Replay                                                             *)
(* ------------------------------------------------------------------ *)

let queue_push t c v =
  let buf = t.q_buf.(c) in
  let len = t.q_len.(c) in
  let buf =
    if len = Array.length buf then begin
      let keep = t.q_off.(c) + len - t.consumed.(c) in
      if 2 * keep <= len then begin
        (* Compact: drop the consumed prefix instead of growing. *)
        Array.blit buf (t.consumed.(c) - t.q_off.(c)) buf 0 keep;
        t.q_off.(c) <- t.consumed.(c);
        t.q_len.(c) <- keep;
        buf
      end
      else begin
        let fresh = Array.make (2 * len) 0 in
        Array.blit buf 0 fresh 0 len;
        t.q_buf.(c) <- fresh;
        fresh
      end
    end
    else buf
  in
  buf.(t.q_len.(c)) <- v;
  t.q_len.(c) <- t.q_len.(c) + 1

let table_index t =
  if t.clock < t.transient then t.clock
  else t.transient + ((t.clock - t.transient) mod t.period)

let apply_stalls t cls attr =
  for i = 0 to Array.length cls - 1 do
    let n = cls.(i) in
    t.stalls.(n) <- t.stalls.(n) + 1;
    attr.(n) <- attr.(n) + 1;
    if t.record_traces then begin
      let op0 = t.out_base.(n) in
      for q = 0 to t.out_base.(n + 1) - op0 - 1 do
        t.traces.(op0 + q) <- Token.Void :: t.traces.(op0 + q)
      done
    end
  done

let step t =
  let tc = t.table.(table_index t) in
  let fired = tc.tc_fired in
  for i = 0 to Array.length fired - 1 do
    let n = fired.(i) in
    let inputs = t.inputs_scratch.(n) in
    let n_in = t.in_base.(n + 1) - t.in_base.(n) in
    for p = 0 to n_in - 1 do
      let ip = t.in_base.(n) + p in
      t.required_counts.(ip) <- t.required_counts.(ip) + 1;
      let c = t.ip_chan.(ip) in
      inputs.(p) <- Some t.q_buf.(c).(t.consumed.(c) - t.q_off.(c));
      t.consumed.(c) <- t.consumed.(c) + 1
    done;
    let words = (t.instances.(n)).Process.fire inputs in
    t.firings.(n) <- t.firings.(n) + 1;
    let op0 = t.out_base.(n) in
    let n_out = t.out_base.(n + 1) - op0 in
    for q = 0 to n_out - 1 do
      queue_push t t.op_chan.(op0 + q) words.(q)
    done;
    if t.record_traces then
      for q = 0 to n_out - 1 do
        t.traces.(op0 + q) <- Token.Valid words.(q) :: t.traces.(op0 + q)
      done
  done;
  apply_stalls t tc.tc_starved t.input_starved;
  apply_stalls t tc.tc_blocked t.output_blocked;
  let deliver = tc.tc_deliver in
  for i = 0 to Array.length deliver - 1 do
    let c = deliver.(i) in
    t.chan_delivered.(c) <- t.chan_delivered.(c) + 1
  done;
  t.clock <- t.clock + 1;
  t.last_fired <- tc.tc_any;
  if tc.tc_any then t.quiet_cycles <- 0
  else t.quiet_cycles <- t.quiet_cycles + 1

let any_halted t =
  let n = ref 0 and halted = ref false in
  while (not !halted) && !n < t.n_nodes do
    if (t.instances.(!n)).Process.halted () then halted := true;
    incr n
  done;
  !halted

let run ?(cancel = Wp_util.Cancel.never) ?(max_cycles = 1_000_000) t =
  let poll = not (Wp_util.Cancel.is_never cancel) in
  let rec loop () =
    if any_halted t then Engine.Halted t.clock
    else if t.quiet_cycles > t.quiescence then Engine.Deadlocked t.clock
    else if t.clock >= max_cycles then Engine.Exhausted t.clock
    else if
      poll
      && t.clock land (Engine.cancel_interval - 1) = 0
      && Wp_util.Cancel.cancelled cancel
    then Engine.Cancelled t.clock
    else begin
      step t;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let cycles t = t.clock
let mode _ = Shell.Plain
let network t = t.net
let delivered t c = t.chan_delivered.(c)
let fired_last_cycle t = t.last_fired
let quiescence_window t = t.quiescence
let fault_injections _ = 0
let link_stats _ = []
let link_summary _ = None
let telemetry_report _ = None

let buffered t node port =
  let c = t.ip_chan.(t.in_base.(node) + port) in
  1 + t.chan_delivered.(c) - t.consumed.(c)

let node_stats t n =
  let lo = t.in_base.(n) and hi = t.in_base.(n + 1) in
  {
    Shell.firings = t.firings.(n);
    stalls = t.stalls.(n);
    input_starved = t.input_starved.(n);
    output_blocked = t.output_blocked.(n);
    required_counts = Array.sub t.required_counts lo (hi - lo);
    dropped = Array.sub t.dropped lo (hi - lo);
  }

let output_trace t node port = List.rev t.traces.(t.out_base.(node) + port)

(* ------------------------------------------------------------------ *)
(* The schedule itself                                                *)
(* ------------------------------------------------------------------ *)

let transient t = t.transient
let period t = t.period

let word t n =
  Array.init t.period (fun i ->
      let tc = t.table.(t.transient + i) in
      Array.exists (fun m -> m = n) tc.tc_fired)

let rate t n =
  let w = word t n in
  let ones = Array.fold_left (fun a b -> if b then a + 1 else a) 0 w in
  Cycle_ratio.make_ratio ones t.period

(* ------------------------------------------------------------------ *)
(* Capacity-extended marked graph                                     *)
(* ------------------------------------------------------------------ *)

let capacity_graph ?(capacity = 2) net =
  if capacity <= 0 then
    invalid_arg "Static.capacity_graph: capacity must be positive";
  Network.validate net;
  let g = Digraph.create () in
  let n_nodes = Network.node_count net in
  for n = 0 to n_nodes - 1 do
    ignore
      (Digraph.add_vertex g ~label:(Network.node_process net n).Process.name)
  done;
  let n_chans = Network.channel_count net in
  let tokens = Array.make (max 1 (2 * n_chans)) 0 in
  let time = Array.make (max 1 (2 * n_chans)) 0 in
  List.iter
    (fun c ->
      let src, _ = Network.channel_src net c in
      let dst, _ = Network.channel_dst net c in
      let k = Network.relay_stations net c in
      let label = Network.channel_label net c in
      let fwd = Digraph.add_edge g ~src ~dst ~label in
      tokens.(fwd) <- 1;
      time.(fwd) <- 1 + k;
      let rev = Digraph.add_edge g ~src:dst ~dst:src ~label:(label ^ "'") in
      tokens.(rev) <- capacity + (2 * k) - 1;
      time.(rev) <- 1)
    (Network.channels net);
  (g, (fun e -> tokens.(e)), fun e -> time.(e))

let schedule ?capacity net =
  let g, tokens, time = capacity_graph ?capacity net in
  Schedule.build g ~tokens ~time
