(** Table-driven static-schedule simulation kernel.

    In {!Shell.Plain} mode with no faults and no link protection, a
    wire-pipelined network is a marked graph: whether a shell fires at
    a given cycle depends only on token counts, never on data.  The
    whole stop/valid handshake can therefore be played once, on counts
    alone, until the state (FIFO occupancies plus relay-station fills)
    revisits itself — yielding a transient prefix and a periodic
    steady-state firing word per shell, exactly the balanced binary
    words of {!Wp_graph.Schedule}.  After that prepass, {!step} is a
    table lookup: fire the scheduled shells (real process closures,
    real data, so outputs and halting behave exactly as in {!Fast}),
    bump the scheduled stall and delivery counters, and advance the
    clock — no per-cycle stop propagation, readiness scan or FIFO
    shuffling.

    Observable behaviour (outcome, cycle count, delivered counts,
    per-shell statistics, traces, buffered occupancies) is
    byte-identical to {!Engine} and {!Fast}; the differential battery
    asserts it.

    Configurations whose firing pattern is {e not} statically
    determined — {!Shell.Oracle} mode (data-dependent input masks),
    fault injection, link-layer protection, telemetry instrumentation,
    unbounded ([capacity = 0]) FIFOs — are rejected at {!create} time
    with {!Unschedulable}.  A static engine must refuse loudly rather
    than mis-simulate. *)

exception Unschedulable of string
(** Raised by {!create} when no static firing word can reproduce the
    requested configuration.  The payload names the offending feature
    (oracle mode, fault spec, protection, telemetry, unbounded
    capacity, or a prepass that found no periodic steady state). *)

type t

val create :
  ?capacity:int ->
  ?record_traces:bool ->
  ?fault:Fault.spec ->
  ?telemetry:Telemetry.spec ->
  mode:Wp_lis.Shell.mode ->
  Network.t ->
  t
(** Compile the network and precompute its firing table.  Arguments
    mirror {!Fast.create}.
    @raise Unschedulable on any configuration listed above.
    @raise Invalid_argument if the network fails {!Network.validate}
    or [capacity] is negative. *)

val step : t -> unit
(** Advance one cycle by table lookup. *)

val run : ?cancel:Wp_util.Cancel.t -> ?max_cycles:int -> t -> Engine.outcome
(** Same loop and outcomes as {!Fast.run}, including the
    {!Engine.cancel_interval} cancellation poll. *)

val cycles : t -> int
val mode : t -> Wp_lis.Shell.mode
val network : t -> Network.t
val delivered : t -> Network.channel -> int
val fired_last_cycle : t -> bool
val quiescence_window : t -> int

val fault_injections : t -> int
(** Always [0]: faulted configurations are unschedulable. *)

val link_stats : t -> Link.chan_stats list
val link_summary : t -> Link.summary option
val telemetry_report : t -> Telemetry.report option

val node_stats : t -> Network.node -> Wp_lis.Shell.stats
val output_trace : t -> Network.node -> int -> int Wp_lis.Token.t list
val buffered : t -> Network.node -> int -> int
val any_halted : t -> bool

(** {1 Count-only prepass}

    The raw firing table, exposed so the batch kernel can compile one
    schedule per group of topology-identical lanes and replay it across
    all of them. *)

type table_cycle = {
  tc_fired : int array;  (** shells firing this cycle, ascending *)
  tc_starved : int array;  (** stalled, missing an input *)
  tc_blocked : int array;  (** stalled, ready but backpressured *)
  tc_deliver : int array;  (** channels delivering a token *)
  tc_any : bool;  (** did any shell fire *)
}

val tables : capacity:int -> Network.t -> int * int * table_cycle array
(** [(transient, period, table)] for a Plain, unfaulted, unprotected
    network: [table] has length [transient + period] and row [i]
    describes cycle [i] (cycles beyond the table repeat with the
    period).  Depends only on the topology, per-channel relay-station
    counts and [capacity] — never on process data — so one table serves
    every simulation sharing those.
    @raise Unschedulable as for {!create}. *)

(** {1 The schedule itself} *)

val transient : t -> int
(** Cycles before the firing pattern becomes periodic. *)

val period : t -> int
(** Length of the steady-state firing word. *)

val word : t -> Network.node -> bool array
(** One shell's steady-state firing word (length {!period}). *)

val rate : t -> Network.node -> Wp_graph.Cycle_ratio.ratio
(** Ones-per-period of one shell's word, in lowest terms — the shell's
    exact sustained throughput in firings per cycle. *)

(** {1 Capacity-extended marked graph}

    The handshake's backpressure is itself a token constraint: a
    channel with [k] relay stations and FIFO capacity [C] can hold at
    most [C + 2k] tokens in flight, one of which is occupied by the
    reset token.  Adding a reverse edge carrying the [C + 2k - 1] free
    slots (latency 1: a slot freed by the consumer is visible to the
    producer next cycle) turns the bounded-buffer network into a pure
    marked graph whose minimum cycle ratio is the sustained throughput
    of every shell — including rate 0 for configurations that deadlock
    at reset. *)

val capacity_graph :
  ?capacity:int ->
  Network.t ->
  Wp_graph.Digraph.t
  * (Wp_graph.Digraph.edge -> int)
  * (Wp_graph.Digraph.edge -> int)
(** [(g, tokens, time)]: vertices are node ids; each channel [c]
    contributes a forward edge (label [Network.channel_label], tokens
    1, time [1 + rs]) and a reverse edge (label suffixed ['],
    tokens [capacity + 2 rs - 1], time 1).  [capacity] defaults to 2
    and must be positive. *)

val schedule : ?capacity:int -> Network.t -> Wp_graph.Schedule.t
(** {!Wp_graph.Schedule.build} over {!capacity_graph}: the analytic
    balanced-word schedule whose rate the prepass table provably
    sustains (the test suite pins word-rate equality on the paper's
    networks). *)
