(* Cycle-accurate observability shared by both simulation kernels.

   Allocation discipline: every per-cycle hook writes into preallocated
   scratch arrays; [end_cycle] folds the scratch into flat counter
   arrays and (optionally) a preallocated ring buffer.  Nothing on the
   per-cycle path allocates beyond what the instrumented engine itself
   does — and when the spec is [off] the engines hold no runtime at all,
   so the disabled cost is a single [match] per phase. *)

(* ------------------------------------------------------------------ *)
(* Spec                                                               *)
(* ------------------------------------------------------------------ *)

type spec = { counters : bool; trace_depth : int }

let off = { counters = false; trace_depth = 0 }
let counters = { counters = true; trace_depth = 0 }
let with_trace ?(depth = 65536) () =
  if depth <= 0 then invalid_arg "Telemetry.with_trace: depth must be positive";
  { counters = true; trace_depth = depth }

let is_off s = (not s.counters) && s.trace_depth = 0
let spec_equal a b = a.counters = b.counters && a.trace_depth = b.trace_depth

let spec_digest s =
  if is_off s then "notel"
  else if s.trace_depth = 0 then "tel"
  else Printf.sprintf "tel+trace:%d" s.trace_depth

(* ------------------------------------------------------------------ *)
(* Stall classification                                               *)
(* ------------------------------------------------------------------ *)

type cls =
  | Fired
  | Oracle_skip
  | Missing_input
  | Output_backpressure
  | Link_credit

let cls_code = function
  | Fired -> 0
  | Oracle_skip -> 1
  | Missing_input -> 2
  | Output_backpressure -> 3
  | Link_credit -> 4

let cls_name = function
  | Fired -> "fired"
  | Oracle_skip -> "oracle-skip"
  | Missing_input -> "missing-input"
  | Output_backpressure -> "output-backpressure"
  | Link_credit -> "link-credit"

let n_classes = 5

let classify ~fired ~ready ~outputs_clear ~oracle_ready ~link_blocked =
  if fired then Fired
  else if ready then (if link_blocked then Link_credit else Output_backpressure)
  else if outputs_clear && oracle_ready then Oracle_skip
  else Missing_input

(* ------------------------------------------------------------------ *)
(* Runtime                                                            *)
(* ------------------------------------------------------------------ *)

let occ_buckets = 9
let gap_buckets = 9

type t = {
  n_nodes : int;
  n_chans : int;
  node_names : string array;
  chan_labels : string array;
  chan_rs : int array;
  (* per-cycle scratch, refreshed by the hooks *)
  cls_scratch : int array; (* n_nodes, class codes *)
  occ_scratch : int array; (* n_chans *)
  stop_scratch : bool array; (* n_chans *)
  valid_scratch : int array; (* n_chans, deliveries this cycle *)
  prev_delivered : int array;
  (* counters *)
  node_cls_count : int array; (* n_nodes * n_classes *)
  occ_hist : int array; (* n_chans * occ_buckets *)
  gap_hist : int array; (* n_chans * gap_buckets *)
  last_valid_cycle : int array; (* -1 = never *)
  valid_cycles : int array;
  delivered_total : int array;
  stop_cycles : int array;
  mutable cycles : int;
  (* bounded event-trace ring *)
  depth : int;
  chan_words : int;
  trace_cls : int array; (* depth * n_nodes *)
  trace_valid : int array; (* depth * chan_words *)
  trace_stop : int array; (* depth * chan_words *)
  mutable head : int; (* next slot to write *)
  mutable count : int; (* retained entries, <= depth *)
}

let make spec net =
  if is_off spec then None
  else begin
    let n_nodes = Network.node_count net in
    let n_chans = Network.channel_count net in
    let chan_words = max 1 ((n_chans + 62) / 63) in
    let depth = max 0 spec.trace_depth in
    Some
      {
        n_nodes;
        n_chans;
        node_names =
          Array.init n_nodes (fun n ->
              (Network.node_process net n).Wp_lis.Process.name);
        chan_labels = Array.init n_chans (fun c -> Network.channel_label net c);
        chan_rs = Array.init n_chans (fun c -> Network.relay_stations net c);
        cls_scratch = Array.make (max 1 n_nodes) 0;
        occ_scratch = Array.make (max 1 n_chans) 0;
        stop_scratch = Array.make (max 1 n_chans) false;
        valid_scratch = Array.make (max 1 n_chans) 0;
        prev_delivered = Array.make (max 1 n_chans) 0;
        node_cls_count = Array.make (max 1 (n_nodes * n_classes)) 0;
        occ_hist = Array.make (max 1 (n_chans * occ_buckets)) 0;
        gap_hist = Array.make (max 1 (n_chans * gap_buckets)) 0;
        last_valid_cycle = Array.make (max 1 n_chans) (-1);
        valid_cycles = Array.make (max 1 n_chans) 0;
        delivered_total = Array.make (max 1 n_chans) 0;
        stop_cycles = Array.make (max 1 n_chans) 0;
        cycles = 0;
        depth;
        chan_words;
        trace_cls = Array.make (max 1 (depth * n_nodes)) 0;
        trace_valid = Array.make (max 1 (depth * chan_words)) 0;
        trace_stop = Array.make (max 1 (depth * chan_words)) 0;
        head = 0;
        count = 0;
      }
  end

let sample_channel t ~chan ~occupancy ~stop =
  t.occ_scratch.(chan) <- occupancy;
  t.stop_scratch.(chan) <- stop

let note_node t ~node ~cls = t.cls_scratch.(node) <- cls_code cls

let commit_channel t ~chan ~delivered =
  let delta = delivered - t.prev_delivered.(chan) in
  t.prev_delivered.(chan) <- delivered;
  t.valid_scratch.(chan) <- delta;
  (* occupancy histogram: start-of-cycle consumer-FIFO depth *)
  let bucket = min t.occ_scratch.(chan) (occ_buckets - 1) in
  t.occ_hist.((chan * occ_buckets) + bucket) <-
    t.occ_hist.((chan * occ_buckets) + bucket) + 1;
  if t.stop_scratch.(chan) then t.stop_cycles.(chan) <- t.stop_cycles.(chan) + 1;
  if delta > 0 then begin
    t.valid_cycles.(chan) <- t.valid_cycles.(chan) + 1;
    t.delivered_total.(chan) <- t.delivered_total.(chan) + delta;
    let last = t.last_valid_cycle.(chan) in
    if last >= 0 then begin
      let gap = min (t.cycles - last) gap_buckets in
      t.gap_hist.((chan * gap_buckets) + (gap - 1)) <-
        t.gap_hist.((chan * gap_buckets) + (gap - 1)) + 1
    end;
    t.last_valid_cycle.(chan) <- t.cycles
  end

(* Bulk protocol for the compiled kernel: direct scratch access plus a
   single commit per cycle.  [commit_cycle] must stay behaviourally
   identical to per-channel [commit_channel] calls + [end_cycle] — the
   cross-engine differential tests pin this. *)

let occ_scratch t = t.occ_scratch
let stop_scratch t = t.stop_scratch
let cls_scratch t = t.cls_scratch

let end_cycle t =
  for n = 0 to t.n_nodes - 1 do
    let code = t.cls_scratch.(n) in
    t.node_cls_count.((n * n_classes) + code) <-
      t.node_cls_count.((n * n_classes) + code) + 1
  done;
  if t.depth > 0 then begin
    let slot = t.head in
    let cls_base = slot * t.n_nodes in
    for n = 0 to t.n_nodes - 1 do
      t.trace_cls.(cls_base + n) <- t.cls_scratch.(n)
    done;
    let word_base = slot * t.chan_words in
    for w = 0 to t.chan_words - 1 do
      t.trace_valid.(word_base + w) <- 0;
      t.trace_stop.(word_base + w) <- 0
    done;
    for c = 0 to t.n_chans - 1 do
      let w = word_base + (c / 63) and bit = 1 lsl (c mod 63) in
      if t.valid_scratch.(c) > 0 then
        t.trace_valid.(w) <- t.trace_valid.(w) lor bit;
      if t.stop_scratch.(c) then t.trace_stop.(w) <- t.trace_stop.(w) lor bit
    done;
    t.head <- (t.head + 1) mod t.depth;
    if t.count < t.depth then t.count <- t.count + 1
  end;
  t.cycles <- t.cycles + 1

let commit_cycle t ~delivered =
  (* The commit_channel loop, with the cross-module call hoisted out. *)
  for chan = 0 to t.n_chans - 1 do
    let delta = delivered.(chan) - t.prev_delivered.(chan) in
    t.prev_delivered.(chan) <- delivered.(chan);
    t.valid_scratch.(chan) <- delta;
    let bucket = min t.occ_scratch.(chan) (occ_buckets - 1) in
    t.occ_hist.((chan * occ_buckets) + bucket) <-
      t.occ_hist.((chan * occ_buckets) + bucket) + 1;
    if t.stop_scratch.(chan) then
      t.stop_cycles.(chan) <- t.stop_cycles.(chan) + 1;
    if delta > 0 then begin
      t.valid_cycles.(chan) <- t.valid_cycles.(chan) + 1;
      t.delivered_total.(chan) <- t.delivered_total.(chan) + delta;
      let last = t.last_valid_cycle.(chan) in
      if last >= 0 then begin
        let gap = min (t.cycles - last) gap_buckets in
        t.gap_hist.((chan * gap_buckets) + (gap - 1)) <-
          t.gap_hist.((chan * gap_buckets) + (gap - 1)) + 1
      end;
      t.last_valid_cycle.(chan) <- t.cycles
    end
  done;
  end_cycle t

(* ------------------------------------------------------------------ *)
(* Summaries                                                          *)
(* ------------------------------------------------------------------ *)

type node_summary = {
  node_name : string;
  fired : int;
  oracle_skip : int;
  missing_input : int;
  output_backpressure : int;
  link_credit : int;
}

let node_cycles n =
  n.fired + n.oracle_skip + n.missing_input + n.output_backpressure
  + n.link_credit

type channel_summary = {
  chan_label : string;
  relay_stations : int;
  delivered : int;
  valid_cycles : int;
  stop_cycles : int;
  occupancy : int array;
  gap : int array;
}

let duty ~cycles ch =
  if cycles = 0 then 0.0 else float_of_int ch.delivered /. float_of_int cycles

type summary = {
  cycles : int;
  nodes : node_summary array;
  channels : channel_summary array;
  link : Link.summary option;
}

let summary_of (t : t) ~link =
  {
    cycles = t.cycles;
    nodes =
      Array.init t.n_nodes (fun n ->
          let at k = t.node_cls_count.((n * n_classes) + k) in
          {
            node_name = t.node_names.(n);
            fired = at 0;
            oracle_skip = at 1;
            missing_input = at 2;
            output_backpressure = at 3;
            link_credit = at 4;
          });
    channels =
      Array.init t.n_chans (fun c ->
          {
            chan_label = t.chan_labels.(c);
            relay_stations = t.chan_rs.(c);
            delivered = t.delivered_total.(c);
            valid_cycles = t.valid_cycles.(c);
            stop_cycles = t.stop_cycles.(c);
            occupancy = Array.sub t.occ_hist (c * occ_buckets) occ_buckets;
            gap = Array.sub t.gap_hist (c * gap_buckets) gap_buckets;
          });
    link;
  }

let node_summary_equal a b =
  a.node_name = b.node_name && a.fired = b.fired
  && a.oracle_skip = b.oracle_skip
  && a.missing_input = b.missing_input
  && a.output_backpressure = b.output_backpressure
  && a.link_credit = b.link_credit

let channel_summary_equal a b =
  a.chan_label = b.chan_label
  && a.relay_stations = b.relay_stations
  && a.delivered = b.delivered
  && a.valid_cycles = b.valid_cycles
  && a.stop_cycles = b.stop_cycles
  && a.occupancy = b.occupancy && a.gap = b.gap

let summary_equal a b =
  a.cycles = b.cycles
  && Array.length a.nodes = Array.length b.nodes
  && Array.length a.channels = Array.length b.channels
  && Array.for_all2 node_summary_equal a.nodes b.nodes
  && Array.for_all2 channel_summary_equal a.channels b.channels
  && a.link = b.link

let same_topology a b =
  Array.length a.nodes = Array.length b.nodes
  && Array.length a.channels = Array.length b.channels
  && Array.for_all2 (fun (x : node_summary) y -> x.node_name = y.node_name)
       a.nodes b.nodes
  && Array.for_all2
       (fun (x : channel_summary) y -> x.chan_label = y.chan_label)
       a.channels b.channels

let combine ~op ~latency a b =
  if not (same_topology a b) then
    invalid_arg "Telemetry: summaries describe different topologies";
  {
    cycles = op a.cycles b.cycles;
    nodes =
      Array.map2
        (fun (x : node_summary) (y : node_summary) ->
          {
            node_name = x.node_name;
            fired = op x.fired y.fired;
            oracle_skip = op x.oracle_skip y.oracle_skip;
            missing_input = op x.missing_input y.missing_input;
            output_backpressure = op x.output_backpressure y.output_backpressure;
            link_credit = op x.link_credit y.link_credit;
          })
        a.nodes b.nodes;
    channels =
      Array.map2
        (fun (x : channel_summary) (y : channel_summary) ->
          {
            chan_label = x.chan_label;
            relay_stations = x.relay_stations;
            delivered = op x.delivered y.delivered;
            valid_cycles = op x.valid_cycles y.valid_cycles;
            stop_cycles = op x.stop_cycles y.stop_cycles;
            occupancy = Array.map2 op x.occupancy y.occupancy;
            gap = Array.map2 op x.gap y.gap;
          })
        a.channels b.channels;
    link =
      (match (a.link, b.link) with
      | None, l | l, None -> l
      | Some la, Some lb ->
        Some
          Link.
            {
              protected_channels = op la.protected_channels lb.protected_channels;
              frames_sent = op la.frames_sent lb.frames_sent;
              retransmissions = op la.retransmissions lb.retransmissions;
              timeouts = op la.timeouts lb.timeouts;
              naks = op la.naks lb.naks;
              crc_detected = op la.crc_detected lb.crc_detected;
              dedup_drops = op la.dedup_drops lb.dedup_drops;
              recoveries = op la.recoveries lb.recoveries;
              max_recovery_latency =
                latency la.max_recovery_latency lb.max_recovery_latency;
            });
  }

let merge a b = combine ~op:( + ) ~latency:max a b

let merge_opt acc s =
  match acc with
  | None -> Some s
  | Some a -> if same_topology a s then Some (merge a s) else Some a

let diff later earlier =
  combine ~op:( - ) ~latency:(fun l _ -> l) later earlier

let to_table s =
  let module T = Wp_util.Text_table in
  let nodes =
    T.create
      ~columns:
        [
          ("node", T.Left);
          ("fired", T.Right);
          ("oracle-skip", T.Right);
          ("missing-input", T.Right);
          ("backpressure", T.Right);
          ("link-credit", T.Right);
          ("stall%", T.Right);
        ]
  in
  Array.iter
    (fun n ->
      let cyc = node_cycles n in
      let stalled = cyc - n.fired in
      T.add_row nodes
        [
          n.node_name;
          string_of_int n.fired;
          string_of_int n.oracle_skip;
          string_of_int n.missing_input;
          string_of_int n.output_backpressure;
          string_of_int n.link_credit;
          (if cyc = 0 then "0.0"
           else Printf.sprintf "%.1f" (100.0 *. float_of_int stalled /. float_of_int cyc));
        ])
    s.nodes;
  let chans =
    T.create
      ~columns:
        [
          ("channel", T.Left);
          ("RS", T.Right);
          ("delivered", T.Right);
          ("duty", T.Right);
          ("stop%", T.Right);
          ("occ p50", T.Right);
          ("gap p50", T.Right);
        ]
  in
  let median hist =
    let total = Array.fold_left ( + ) 0 hist in
    if total = 0 then 0
    else begin
      let half = (total + 1) / 2 in
      let acc = ref 0 and m = ref (Array.length hist - 1) in
      (try
         Array.iteri
           (fun i c ->
             acc := !acc + c;
             if !acc >= half then begin
               m := i;
               raise Exit
             end)
           hist
       with Exit -> ());
      !m
    end
  in
  Array.iter
    (fun c ->
      T.add_row chans
        [
          c.chan_label;
          string_of_int c.relay_stations;
          string_of_int c.delivered;
          Printf.sprintf "%.3f" (duty ~cycles:s.cycles c);
          (if s.cycles = 0 then "0.0"
           else
             Printf.sprintf "%.1f"
               (100.0 *. float_of_int c.stop_cycles /. float_of_int s.cycles));
          string_of_int (median c.occupancy);
          string_of_int (median c.gap + 1);
        ])
    s.channels;
  let link_line =
    match s.link with
    | None -> ""
    | Some l ->
      Printf.sprintf
        "link: %d protected channel%s, %d frames, %d retransmissions (%d \
         timeouts, %d NAKs), %d CRC detections, %d dedups, %d recoveries, \
         max recovery latency %d cycles\n"
        l.Link.protected_channels
        (if l.Link.protected_channels = 1 then "" else "s")
        l.Link.frames_sent l.Link.retransmissions l.Link.timeouts l.Link.naks
        l.Link.crc_detected l.Link.dedup_drops l.Link.recoveries
        l.Link.max_recovery_latency
  in
  Printf.sprintf "cycles: %d\n%s\n%s%s" s.cycles (T.render nodes)
    (T.render chans) link_line

(* ------------------------------------------------------------------ *)
(* Event trace                                                        *)
(* ------------------------------------------------------------------ *)

type trace = {
  t0 : int;
  steps : int;
  node_names : string array;
  chan_labels : string array;
  node_cls : int array;
  chan_valid : int array;
  chan_stop : int array;
  chan_words : int;
}

let trace t =
  if t.depth = 0 || t.count = 0 then None
  else begin
    let steps = t.count in
    let oldest = (t.head - t.count + t.depth) mod t.depth in
    let node_cls = Array.make (steps * t.n_nodes) 0 in
    let chan_valid = Array.make (steps * t.chan_words) 0 in
    let chan_stop = Array.make (steps * t.chan_words) 0 in
    for i = 0 to steps - 1 do
      let slot = (oldest + i) mod t.depth in
      Array.blit t.trace_cls (slot * t.n_nodes) node_cls (i * t.n_nodes)
        t.n_nodes;
      Array.blit t.trace_valid (slot * t.chan_words) chan_valid
        (i * t.chan_words) t.chan_words;
      Array.blit t.trace_stop (slot * t.chan_words) chan_stop
        (i * t.chan_words) t.chan_words
    done;
    Some
      {
        t0 = t.cycles - steps;
        steps;
        node_names = Array.copy t.node_names;
        chan_labels = Array.copy t.chan_labels;
        node_cls;
        chan_valid;
        chan_stop;
        chan_words = t.chan_words;
      }
  end

let trace_valid_at tr ~step ~chan =
  tr.chan_valid.((step * tr.chan_words) + (chan / 63))
  land (1 lsl (chan mod 63))
  <> 0

let trace_stop_at tr ~step ~chan =
  tr.chan_stop.((step * tr.chan_words) + (chan / 63)) land (1 lsl (chan mod 63))
  <> 0

let trace_cls_at tr ~step ~node =
  tr.node_cls.((step * Array.length tr.node_names) + node)

(* --- VCD export ---------------------------------------------------- *)

(* Short printable identifiers per VCD convention: '!', '"', '#', ... *)
let vcd_id n =
  let base = 94 and first = 33 in
  let rec build n acc =
    let digit = Char.chr (first + (n mod base)) in
    let acc = String.make 1 digit ^ acc in
    if n < base then acc else build ((n / base) - 1) acc
  in
  build n ""

let sanitize label =
  String.map
    (fun c ->
      match c with
      | ' ' | '\t' -> '_'
      | c -> c)
    label

let vcd_of_trace ?(timescale = "1ns") tr =
  let n_chans = Array.length tr.chan_labels in
  let n_nodes = Array.length tr.node_names in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date telemetry export $end\n";
  Buffer.add_string buf "$version wirepipe telemetry $end\n";
  Buffer.add_string buf (Printf.sprintf "$timescale %s $end\n" timescale);
  Buffer.add_string buf "$scope module telemetry $end\n";
  (* ids: 2*c for valid, 2*c+1 for stop, 2*n_chans + n for fire *)
  Array.iteri
    (fun c label ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s %s_valid $end\n" (vcd_id (2 * c))
           (sanitize label));
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s %s_stop $end\n"
           (vcd_id ((2 * c) + 1))
           (sanitize label)))
    tr.chan_labels;
  Array.iteri
    (fun n name ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s %s_fire $end\n"
           (vcd_id ((2 * n_chans) + n))
           (sanitize name)))
    tr.node_names;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let prev_valid = Array.make (max 1 n_chans) (-1) in
  let prev_stop = Array.make (max 1 n_chans) (-1) in
  let prev_fire = Array.make (max 1 n_nodes) (-1) in
  for step = 0 to tr.steps - 1 do
    let changes = Buffer.create 64 in
    for c = 0 to n_chans - 1 do
      let v = if trace_valid_at tr ~step ~chan:c then 1 else 0 in
      if v <> prev_valid.(c) then begin
        prev_valid.(c) <- v;
        Buffer.add_string changes (Printf.sprintf "%d%s\n" v (vcd_id (2 * c)))
      end;
      let s = if trace_stop_at tr ~step ~chan:c then 1 else 0 in
      if s <> prev_stop.(c) then begin
        prev_stop.(c) <- s;
        Buffer.add_string changes
          (Printf.sprintf "%d%s\n" s (vcd_id ((2 * c) + 1)))
      end
    done;
    for n = 0 to n_nodes - 1 do
      let f = if trace_cls_at tr ~step ~node:n = 0 then 1 else 0 in
      if f <> prev_fire.(n) then begin
        prev_fire.(n) <- f;
        Buffer.add_string changes
          (Printf.sprintf "%d%s\n" f (vcd_id ((2 * n_chans) + n)))
      end
    done;
    if Buffer.length changes > 0 then begin
      Buffer.add_string buf (Printf.sprintf "#%d\n" (tr.t0 + step));
      Buffer.add_buffer buf changes
    end
  done;
  Buffer.add_string buf (Printf.sprintf "#%d\n" (tr.t0 + tr.steps));
  Buffer.contents buf

(* --- Chrome trace_event export ------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Stable chrome://tracing color names per stall class. *)
let cls_cname = function
  | 0 -> "good" (* fired *)
  | 1 -> "terrible" (* oracle-skip: the recoverable loss *)
  | 2 -> "bad" (* missing-input *)
  | 3 -> "thread_state_iowait" (* output-backpressure *)
  | _ -> "olive" (* link-credit *)

let cls_code_name = function
  | 0 -> "fired"
  | 1 -> "oracle-skip"
  | 2 -> "missing-input"
  | 3 -> "output-backpressure"
  | _ -> "link-credit"

let chrome_of_trace tr =
  let n_nodes = Array.length tr.node_names in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"wirepipe\"}}";
  Array.iteri
    (fun n name ->
      Buffer.add_string buf
        (Printf.sprintf
           ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":%S}}"
           n (json_escape name)))
    tr.node_names;
  (* One span per maximal run of identical stall class per node. *)
  for n = 0 to n_nodes - 1 do
    let step = ref 0 in
    while !step < tr.steps do
      let code = trace_cls_at tr ~step:!step ~node:n in
      let start = !step in
      while !step < tr.steps && trace_cls_at tr ~step:!step ~node:n = code do
        incr step
      done;
      Buffer.add_string buf
        (Printf.sprintf
           ",\n{\"name\":%S,\"cat\":\"stall\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"cname\":%S}"
           (cls_code_name code) n (tr.t0 + start) (!step - start)
           (cls_cname code))
    done
  done;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reports                                                            *)
(* ------------------------------------------------------------------ *)

type report = {
  summary : summary;
  event_trace : trace option;
}

let report_of t ~link = { summary = summary_of t ~link; event_trace = trace t }
