(** Cycle-accurate observability: stall attribution, channel telemetry
    and bounded event traces for both simulation kernels.

    The paper's whole argument is about {e where} cycles go — WP1 loses
    throughput to relay-station stalls that the WP2 oracle recovers —
    so end-of-run cycle counts alone cannot explain a Table 1 row.
    This module attributes every cycle of every shell to exactly one
    class:

    - {b fired} — the process fired;
    - {b oracle-skip} — the shell was input-starved, but {e only} on
      ports the process oracle does not need for the next firing, and
      its outputs were clear: a WP2 (oracle) shell in the same state
      would have fired.  This is the stall class the oracle recovers,
      and summing it over a WP1 run accounts for the WP1-vs-WP2 cycle
      delta;
    - {b missing-input} — a genuinely required token was absent (or the
      shell was starved {e and} blocked, where even the oracle could
      not have fired);
    - {b output-backpressure} — ready, but a raw (stop-wire) output
      channel refused;
    - {b link-credit} — ready, but the first refusing output channel is
      owned by the {!Link} layer (replay-window or credit exhaustion).

    Per channel it histograms consumer-FIFO occupancy and valid-token
    inter-arrival gaps, and counts valid/stop duty cycles.  Optionally a
    bounded ring buffer records the last [trace_depth] cycles of
    (valid, stop) per channel and stall class per node, exportable as a
    VCD waveform or a Chrome [trace_event] JSON.

    Both engines drive the same runtime through the same hooks with the
    same observables, so counters and traces are byte-identical across
    the Reference and Fast kernels.  When the spec is {!off} the engines
    hold no runtime at all ([None]) and the per-cycle cost is a single
    branch — the Fast kernel's zero-allocation steady state is
    preserved. *)

(** {1 Specification} *)

type spec = {
  counters : bool;  (** collect stall/channel counters and histograms *)
  trace_depth : int;
      (** cycles retained by the event-trace ring buffer; [0] disables
          the trace (counters only) *)
}

val off : spec
(** No instrumentation: engines skip telemetry entirely. *)

val counters : spec
(** Stall attribution and channel histograms, no event trace. *)

val with_trace : ?depth:int -> unit -> spec
(** Counters plus a bounded event trace of the last [depth] (default
    65536) cycles. *)

val is_off : spec -> bool
val spec_equal : spec -> spec -> bool

val spec_digest : spec -> string
(** Stable short digest for cache keys: ["notel"], ["tel"] or
    ["tel+trace:N"]. *)

(** {1 Stall classification} *)

type cls =
  | Fired
  | Oracle_skip
  | Missing_input
  | Output_backpressure
  | Link_credit

val cls_code : cls -> int
(** Stable codes 0..4 in declaration order (used by the trace ring). *)

val cls_name : cls -> string

val classify :
  fired:bool ->
  ready:bool ->
  outputs_clear:bool ->
  oracle_ready:bool ->
  link_blocked:bool ->
  cls
(** The single classification rule both engines share.  [ready] is the
    current mode's firing readiness, [oracle_ready] whether an
    oracle-mode shell in the same state would be ready (only consulted
    when starved with clear outputs), [link_blocked] whether the first
    refusing output channel is link-protected (only consulted when
    ready but blocked). *)

(** {1 Runtime} *)

type t

val make : spec -> Network.t -> t option
(** [None] when the spec is {!off} — the compile-time-off fast path. *)

val sample_channel : t -> chan:int -> occupancy:int -> stop:bool -> unit
(** Phase-1 hook: start-of-cycle consumer-FIFO depth and the
    producer-visible stop for one channel. *)

val note_node : t -> node:int -> cls:cls -> unit
(** Phase-2 hook: the firing decision for one node this cycle. *)

val commit_channel : t -> chan:int -> delivered:int -> unit
(** Phase-3 hook: the channel's cumulative delivered count after the
    shift; the runtime derives this cycle's deliveries itself. *)

val end_cycle : t -> unit
(** Fold the scratch state into counters, histograms and the trace
    ring; must be called exactly once per engine step, after every
    channel was committed. *)

(** {2 Bulk hooks for the compiled kernel}

    The fine-grained hooks above cost one cross-module call per node
    and per channel per cycle — fine for the reference interpreter,
    measurable on the compiled kernel.  A tight engine can instead
    write straight into the runtime's per-cycle scratch arrays (fetch
    them once at creation; they are stable for the runtime's lifetime)
    and make a single {!commit_cycle} call per step.  Both protocols
    produce byte-identical counters; pick one per engine and stick to
    it. *)

val occ_scratch : t -> int array
(** Per-channel start-of-cycle consumer-FIFO depth (write in phase 1;
    replaces {!sample_channel}'s [occupancy]). *)

val stop_scratch : t -> bool array
(** Per-channel producer-visible stop (write in phase 1; replaces
    {!sample_channel}'s [stop]). *)

val cls_scratch : t -> int array
(** Per-node class {e codes} ({!cls_code}; write in phase 2, replaces
    {!note_node}). *)

val commit_cycle : t -> delivered:int array -> unit
(** Phase-3 bulk hook: [delivered] holds every channel's cumulative
    delivered count after the shift.  Folds the scratch arrays and the
    per-channel deltas exactly as per-channel {!commit_channel} calls
    followed by {!end_cycle} would. *)

(** {1 Summaries} *)

type node_summary = {
  node_name : string;
  fired : int;
  oracle_skip : int;
  missing_input : int;
  output_backpressure : int;
  link_credit : int;
}

val node_cycles : node_summary -> int
(** Sum of all five classes — equals the run's cycle count. *)

type channel_summary = {
  chan_label : string;
  relay_stations : int;
  delivered : int;  (** total valid tokens delivered to the consumer *)
  valid_cycles : int;  (** cycles with at least one delivery *)
  stop_cycles : int;  (** cycles the producer-visible stop was high *)
  occupancy : int array;
      (** consumer-FIFO depth histogram; index = depth, last bucket
          saturates; sums to the cycle count *)
  gap : int array;
      (** inter-arrival gaps between valid deliveries; index [i] counts
          gaps of [i+1] cycles, last bucket saturates *)
}

val occ_buckets : int
val gap_buckets : int

val duty : cycles:int -> channel_summary -> float
(** [delivered / cycles] — the channel's valid-token duty cycle. *)

type summary = {
  cycles : int;
  nodes : node_summary array;
  channels : channel_summary array;
  link : Link.summary option;
      (** ARQ recovery counters folded in when the run had protected
          channels (previously only reachable through
          [Equiv_check.verdict]) *)
}

val summary_equal : summary -> summary -> bool

val merge : summary -> summary -> summary
(** Pointwise sum of counters and histograms (cycle counts add, link
    counters add, [max_recovery_latency] maxes).  Requires both
    summaries to describe the same topology (node and channel labels);
    @raise Invalid_argument otherwise. *)

val merge_opt : summary option -> summary -> summary option
(** Accumulator-friendly merge: [None] absorbs, mismatching topologies
    leave the accumulator unchanged (mixed sweeps degrade gracefully
    instead of raising). *)

val diff : summary -> summary -> summary
(** [diff later earlier]: pointwise subtraction, for per-section deltas
    of a monotone accumulator.  [max_recovery_latency] keeps the later
    value.  @raise Invalid_argument on topology mismatch. *)

val to_table : summary -> string
(** Rendered stall report: one table attributing every node's cycles to
    the five classes, one table of per-channel duty/stop/occupancy, and
    a link-recovery line when ARQ statistics are present. *)

(** {1 Event trace} *)

type trace = {
  t0 : int;  (** absolute cycle of the first retained entry *)
  steps : int;  (** retained cycles *)
  node_names : string array;
  chan_labels : string array;
  node_cls : int array;  (** [steps * nodes] stall-class codes *)
  chan_valid : int array;  (** [steps * chan_words] bitmasks *)
  chan_stop : int array;  (** [steps * chan_words] bitmasks *)
  chan_words : int;  (** 63-bit words per cycle per signal *)
}

val trace : t -> trace option
(** The retained window, oldest first; [None] when [trace_depth = 0]. *)

val trace_valid_at : trace -> step:int -> chan:int -> bool
val trace_stop_at : trace -> step:int -> chan:int -> bool
val trace_cls_at : trace -> step:int -> node:int -> int

val vcd_of_trace : ?timescale:string -> trace -> string
(** VCD waveform: a [valid] and a [stop] wire per channel and a [fire]
    wire per node, timestamped with absolute cycle numbers. *)

val chrome_of_trace : trace -> string
(** Chrome [trace_event] JSON ([chrome://tracing] / Perfetto): one
    track per block, consecutive same-class cycles merged into spans,
    colored by stall reason. *)

(** {1 Reports} *)

type report = {
  summary : summary;
  event_trace : trace option;
}

val report_of : t -> link:Link.summary option -> report
