module Token = Wp_lis.Token

type channel_trace = {
  wave_label : string;
  tokens : int Token.t list;
}

let capture_sim sim =
  let net = Sim.network sim in
  List.map
    (fun c ->
      let src_node, src_port = Network.channel_src net c in
      {
        wave_label = Network.channel_label net c;
        tokens = Sim.output_trace sim src_node src_port;
      })
    (Network.channels net)

let capture engine = capture_sim (Sim.of_engine engine)

let rec take n = function
  | [] -> []
  | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest

let rec drop n = function
  | [] -> []
  | _ :: rest as l -> if n = 0 then l else drop (n - 1) rest

let ascii ?(from_cycle = 0) ?(cycles = 40) ?(fmt = string_of_int) traces =
  let window t = take cycles (drop from_cycle t.tokens) in
  (* Column width: widest rendered token in the window, at least 1. *)
  let rendered =
    List.map
      (fun t ->
        ( t.wave_label,
          List.map
            (function Token.Void -> "." | Token.Valid v -> fmt v)
            (window t) ))
      traces
  in
  let cell_width =
    List.fold_left
      (fun acc (_, cells) ->
        List.fold_left (fun acc c -> max acc (String.length c)) acc cells)
      1 rendered
  in
  let label_width =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 rendered
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (label, cells) ->
      Buffer.add_string buf (Printf.sprintf "%-*s " label_width label);
      List.iter
        (fun c -> Buffer.add_string buf (Printf.sprintf "|%*s" cell_width c))
        cells;
      Buffer.add_string buf "|\n")
    rendered;
  Buffer.contents buf

(* --- VCD ------------------------------------------------------------ *)

(* Short printable identifiers: '!', '"', '#', ... per VCD convention. *)
let vcd_id n =
  let base = 94 and first = 33 in
  let rec build n acc =
    let digit = Char.chr (first + (n mod base)) in
    let acc = String.make 1 digit ^ acc in
    if n < base then acc else build ((n / base) - 1) acc
  in
  build n ""

let binary_of_int width v =
  String.init width (fun i ->
      let bit = width - 1 - i in
      if (v lsr bit) land 1 = 1 then '1' else '0')

let vcd ?(timescale = "1ns") traces =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date reproduction run $end\n";
  Buffer.add_string buf "$version wirepipe $end\n";
  Buffer.add_string buf (Printf.sprintf "$timescale %s $end\n" timescale);
  Buffer.add_string buf "$scope module netlist $end\n";
  let sanitize label =
    String.map (fun c -> if c = ' ' then '_' else c) label
  in
  List.iteri
    (fun i t ->
      let data_id = vcd_id (2 * i) and valid_id = vcd_id ((2 * i) + 1) in
      Buffer.add_string buf
        (Printf.sprintf "$var wire 32 %s %s_data $end\n" data_id (sanitize t.wave_label));
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s %s_valid $end\n" valid_id (sanitize t.wave_label)))
    traces;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let horizon =
    List.fold_left (fun acc t -> max acc (List.length t.tokens)) 0 traces
  in
  let arrays = List.map (fun t -> Array.of_list t.tokens) traces in
  let previous = Array.make (List.length traces) None in
  for cycle = 0 to horizon - 1 do
    let changes = Buffer.create 64 in
    List.iteri
      (fun i tokens ->
        let token = if cycle < Array.length tokens then Some tokens.(cycle) else None in
        match token with
        | None -> ()
        | Some tok ->
          if previous.(i) <> Some tok then begin
            previous.(i) <- Some tok;
            let data_id = vcd_id (2 * i) and valid_id = vcd_id ((2 * i) + 1) in
            (match tok with
            | Token.Valid v ->
              Buffer.add_string changes
                (Printf.sprintf "b%s %s\n1%s\n" (binary_of_int 32 (v land 0xFFFFFFFF)) data_id valid_id)
            | Token.Void ->
              Buffer.add_string changes (Printf.sprintf "bx %s\n0%s\n" data_id valid_id))
          end)
      arrays;
    if Buffer.length changes > 0 then begin
      Buffer.add_string buf (Printf.sprintf "#%d\n" cycle);
      Buffer.add_buffer buf changes
    end
  done;
  Buffer.add_string buf (Printf.sprintf "#%d\n" horizon);
  Buffer.contents buf
