(** Waveform rendering of recorded traces.

    Two output styles for inspecting latency-insensitive runs:

    - a compact ASCII timeline (one row per channel, one column per clock
      cycle, [.] for tau), handy in a terminal;
    - a Value Change Dump (VCD) of every channel — data word plus
      validity bit — loadable in GTKWave or any EDA waveform viewer.

    Both require the engine to have been created with
    [~record_traces:true]. *)

type channel_trace = {
  wave_label : string;       (** channel label from the network *)
  tokens : int Wp_lis.Token.t list;  (** oldest first, one per cycle *)
}

val capture_sim : Sim.t -> channel_trace list
(** One trace per channel, read from the producing shell's recorded
    output port (i.e. what entered the wire, before relay stations).
    Works with either simulation kernel. *)

val capture : Engine.t -> channel_trace list
(** [capture e] is [capture_sim (Sim.of_engine e)]. *)

val ascii :
  ?from_cycle:int ->
  ?cycles:int ->
  ?fmt:(int -> string) ->
  channel_trace list ->
  string
(** Timeline like:
    {v
      CU-IC:CU.fetch   |5|6|.|.|7|
      CU-IC:IC.instr   |.|a|b|.|.|
    v}
    [fmt] renders a valid word (default decimal); tau prints as [.].
    [from_cycle] defaults to 0, [cycles] to 40. *)

val vcd : ?timescale:string -> channel_trace list -> string
(** A VCD document: for every channel, a 32-bit data vector and a
    1-bit valid wire.  [timescale] defaults to ["1ns"]. *)
