module Process = Wp_lis.Process

let queue_capacity = 4

type pipe_entry =
  | P_bubble
  | P_real of int  (* the pc this response belongs to *)
  | P_squash       (* fetched on a wrong path; discard on arrival *)

type branch_state =
  | No_branch
  | Pending of {
      resolve_tag : int;
      target : int;
      fallthrough : int;
      predicted_taken : bool;
    }

type run_state =
  | Running
  | Draining of int
  | Done

let process ?(predict_taken_backward = false) ~text_length () =
  if text_length <= 0 then invalid_arg "Control_unit.process: empty program";
  {
    Process.name = "CU";
    input_names = [| "instr"; "flags" |];
    output_names = [| "fetch"; "ctrl"; "op"; "cmd" |];
    reset_outputs = [| Codec.bubble; Codec.bubble; Codec.bubble; Codec.bubble |];
    make =
      (fun () ->
        let firing = ref 0 in
        let pipe = Array.make Latency.fetch_response P_bubble in
        let in_flight = ref 0 in
        let queue : (Isa.instr * int) Queue.t = Queue.create () in
        let scoreboard = Array.make 16 0 in
        let branch = ref No_branch in
        let state = ref Running in
        let fetch_pc = ref 0 in
        let squash () =
          Queue.clear queue;
          Array.iteri
            (fun i entry ->
              match entry with
              | P_real _ ->
                pipe.(i) <- P_squash;
                decr in_flight
              | P_bubble | P_squash -> ())
            pipe
        in
        let flags_due () =
          match !branch with
          | Pending { resolve_tag; _ } -> resolve_tag = !firing
          | No_branch -> false
        in
        (* One mask buffer per instance, refreshed in place: required()
           sits on the per-cycle hot path of both engines, so it must
           not allocate. *)
        let req_mask = [| true; false |] in
        {
          Process.required =
            (fun () ->
              req_mask.(1) <- flags_due ();
              req_mask);
          fire =
            (fun inputs ->
              let k = !firing in
              let slot = k mod Latency.fetch_response in
              (* 1. Accept the arriving fetch response. *)
              let instr_word = match inputs.(0) with Some w -> w | None -> assert false in
              (match pipe.(slot) with
              | P_real pc ->
                decr in_flight;
                (match Codec.unpack_instr instr_word with
                | Some w -> Queue.add (Isa.decode w, pc) queue
                | None -> failwith "CU: expected an instruction, got a bubble")
              | P_bubble | P_squash -> ());
              (* 2. Branch resolution. *)
              if flags_due () then begin
                let taken =
                  match inputs.(1) with
                  | Some w ->
                    (match Codec.unpack_flags w with
                    | Some taken -> taken
                    | None -> failwith "CU: expected a branch resolution")
                  | None -> assert false
                in
                (match !branch with
                | Pending { target; fallthrough; predicted_taken; _ } ->
                  branch := No_branch;
                  if taken <> predicted_taken then begin
                    (* Mispredicted path in flight: flush and refetch. *)
                    squash ();
                    fetch_pc := (if taken then target else fallthrough)
                  end
                | No_branch -> assert false)
              end;
              (* 3. In-order dispatch. *)
              let rf = ref None and op = ref None and cmd = ref None in
              if !state = Running && !branch = No_branch && not (Queue.is_empty queue) then begin
                let instr, pc = Queue.peek queue in
                match instr with
                | Isa.Halt ->
                  ignore (Queue.pop queue);
                  state := Draining Latency.drain
                | Isa.Br (Isa.Always, target) ->
                  ignore (Queue.pop queue);
                  squash ();
                  fetch_pc := target
                | Isa.Nop | Isa.Ldi _ | Isa.Add _ | Isa.Sub _ | Isa.Mul _ | Isa.Addi _
                | Isa.Cmp _ | Isa.Ld _ | Isa.St _ | Isa.Br _ ->
                  let ready =
                    List.for_all (fun r -> scoreboard.(r) <= k) (Isa.reads instr)
                  in
                  if ready then begin
                    ignore (Queue.pop queue);
                    let rf', op', cmd' = Codec.dispatch_of_instr instr in
                    rf := rf';
                    op := op';
                    cmd := cmd';
                    (match Isa.writes instr with
                    | Some rd ->
                      let delay =
                        if Isa.is_load instr then Latency.load_ready_after
                        else Latency.alu_ready_after
                      in
                      scoreboard.(rd) <- max scoreboard.(rd) (k + delay)
                    | None -> ());
                    match instr with
                    | Isa.Br (cond, target) ->
                      assert (cond <> Isa.Always);
                      (* Static BTFN: backward conditional branches are
                         loop closers, predict them taken and fetch the
                         target speculatively. *)
                      let predicted_taken = predict_taken_backward && target <= pc in
                      if predicted_taken then begin
                        squash ();
                        fetch_pc := target
                      end;
                      branch :=
                        Pending
                          {
                            resolve_tag = k + Latency.flags_response;
                            target;
                            fallthrough = pc + 1;
                            predicted_taken;
                          }
                    | Isa.Nop | Isa.Halt | Isa.Ldi _ | Isa.Add _ | Isa.Sub _ | Isa.Mul _
                    | Isa.Addi _ | Isa.Cmp _ | Isa.Ld _ | Isa.St _ ->
                      ()
                  end
              end;
              (* 4. Fetch ahead while there is budget. *)
              let room = !in_flight + Queue.length queue < queue_capacity in
              let fetch_word =
                if !state = Running && room && !fetch_pc < text_length then begin
                  let pc = !fetch_pc in
                  pipe.(slot) <- P_real pc;
                  incr in_flight;
                  incr fetch_pc;
                  Codec.pack_fetch (Some pc)
                end
                else begin
                  pipe.(slot) <- P_bubble;
                  Codec.pack_fetch None
                end
              in
              (* 5. Drain countdown after HALT. *)
              (match !state with
              | Draining 0 -> state := Done
              | Draining n -> state := Draining (n - 1)
              | Running | Done -> ());
              incr firing;
              [|
                fetch_word;
                Codec.pack_rf_ctrl !rf;
                Codec.pack_alu_op !op;
                Codec.pack_mem_cmd !cmd;
              |]);
          halted = (fun () -> !state = Done);
        });
  }
