module Process = Wp_lis.Process

type run_state =
  | Running
  | Draining of int
  | Done

let process ~text_length =
  if text_length <= 0 then invalid_arg "Control_unit_mc.process: empty program";
  {
    Process.name = "CU";
    input_names = [| "instr"; "flags" |];
    output_names = [| "fetch"; "ctrl"; "op"; "cmd" |];
    reset_outputs = [| Codec.bubble; Codec.bubble; Codec.bubble; Codec.bubble |];
    make =
      (fun () ->
        let firing = ref 0 in
        let pc = ref 0 in
        let next_fetch_at = ref 0 in
        let instr_due = ref (-1) in
        (* (resolve firing, target, fallthrough) of the branch in flight *)
        let flags_due = ref None in
        let state = ref Running in
        (* Reused in place: required() must not allocate on the hot path. *)
        let req_mask = [| false; false |] in
        {
          Process.required =
            (fun () ->
              let k = !firing in
              let flags_needed =
                match !flags_due with Some (at, _, _) -> at = k | None -> false
              in
              req_mask.(0) <- !instr_due = k;
              req_mask.(1) <- flags_needed;
              req_mask);
          fire =
            (fun inputs ->
              let k = !firing in
              let rf = ref None and op = ref None and cmd = ref None in
              (* Branch resolution phase. *)
              (match !flags_due with
              | Some (at, target, fallthrough) when at = k ->
                let taken =
                  match inputs.(1) with
                  | Some w ->
                    (match Codec.unpack_flags w with
                    | Some taken -> taken
                    | None -> failwith "CU(mc): expected a branch resolution")
                  | None -> assert false
                in
                flags_due := None;
                pc := (if taken then target else fallthrough);
                next_fetch_at := k
              | Some _ | None -> ());
              (* Decode + dispatch phase. *)
              if !instr_due = k then begin
                let instr =
                  match inputs.(0) with
                  | Some w ->
                    (match Codec.unpack_instr w with
                    | Some enc -> Isa.decode enc
                    | None -> failwith "CU(mc): expected an instruction, got a bubble")
                  | None -> assert false
                in
                instr_due := -1;
                match instr with
                | Isa.Halt -> state := Draining Latency.drain
                | Isa.Br (Isa.Always, target) ->
                  pc := target;
                  next_fetch_at := k + Latency.flags_response
                | Isa.Br (cond, target) ->
                  assert (cond <> Isa.Always);
                  let _, op', _ = Codec.dispatch_of_instr instr in
                  op := op';
                  flags_due := Some (k + Latency.flags_response, target, !pc + 1)
                | Isa.Nop | Isa.Ldi _ | Isa.Add _ | Isa.Sub _ | Isa.Mul _ | Isa.Addi _
                | Isa.Cmp _ | Isa.Ld _ | Isa.St _ ->
                  let rf', op', cmd' = Codec.dispatch_of_instr instr in
                  rf := rf';
                  op := op';
                  cmd := cmd';
                  pc := !pc + 1;
                  (* Loads settle one firing later than ALU writebacks. *)
                  let stride = if Isa.is_load instr then 4 else 3 in
                  next_fetch_at := k + stride
              end;
              (* Fetch phase. *)
              let fetch_word =
                if !state = Running && !next_fetch_at = k && !pc < text_length then begin
                  instr_due := k + Latency.fetch_response;
                  next_fetch_at := -1;
                  Codec.pack_fetch (Some !pc)
                end
                else Codec.pack_fetch None
              in
              (match !state with
              | Draining 0 -> state := Done
              | Draining n -> state := Draining (n - 1)
              | Running | Done -> ());
              incr firing;
              [|
                fetch_word;
                Codec.pack_rf_ctrl !rf;
                Codec.pack_alu_op !op;
                Codec.pack_mem_cmd !cmd;
              |]);
          halted = (fun () -> !state = Done);
        });
  }
