module Engine = Wp_sim.Engine
module Sim = Wp_sim.Sim
module Fast = Wp_sim.Fast
module Monitor = Wp_sim.Monitor

type outcome =
  | Completed
  | Deadlocked
  | Out_of_cycles

type result = {
  cycles : int;
  outcome : outcome;
  memory : int array;
  registers : int array;
  result_ok : bool;
  report : Monitor.report;
  telemetry : Wp_sim.Telemetry.report option;
}

let no_relay_stations (_ : Datapath.connection) = 0

let default_max_cycles = 2_000_000

let run ?engine ?(capacity = 2) ?max_cycles ?mcr_work ?fault ?protect
    ?telemetry ~machine ~mode ~rs (program : Program.t) =
  (* [mcr_work] enables the MCR-guided cycle budget: instead of stepping
     up to the full default budget, bound the run at
     [Fast.cycle_bound ~work_cycles:mcr_work net] — provable from the
     marked-graph throughput, plus engineering slack.  If the bounded
     run exhausts (the bound was too tight, which the slack makes
     rare), fall back to the full budget so observable outcomes stay
     identical to the unbounded configuration. *)
  let attempt max_cycles =
    let dp = Datapath.build ?protect ~machine ~rs program in
    let sim =
      Sim.create ?engine ~capacity ?fault ?telemetry ~mode dp.Datapath.network
    in
    let outcome, cycles =
      match Sim.run ~max_cycles sim with
      | Engine.Halted c -> (Completed, c)
      | Engine.Deadlocked c -> (Deadlocked, c)
      | Engine.Exhausted c -> (Out_of_cycles, c)
    in
    let memory =
      match !(dp.Datapath.memory_tap) with Some get -> get () | None -> [||]
    in
    let registers =
      match !(dp.Datapath.register_tap) with Some get -> get () | None -> [||]
    in
    let result_ok =
      outcome = Completed
      &&
      let base, len = program.Program.result_region in
      let expected = Program.expected_result program in
      len = 0
      || (Array.length memory >= base + len
         && Array.for_all2 ( = ) expected (Array.sub memory base len))
    in
    {
      cycles;
      outcome;
      memory;
      registers;
      result_ok;
      report = Monitor.collect_sim sim;
      telemetry = Sim.telemetry_report sim;
    }
  in
  let faulted =
    match fault with Some f -> not (Wp_sim.Fault.is_none f) | None -> false
  in
  let protected_ = match protect with Some _ -> true | None -> false in
  match max_cycles, mcr_work with
  | Some m, _ -> attempt m
  | None, None -> attempt default_max_cycles
  | None, Some _ when faulted || protected_ ->
    (* Injected stalls (and ARQ recovery episodes / credit stalls on
       protected links) push throughput below the marked-graph bound, so
       the MCR budget would routinely exhaust and force a double run —
       go straight to the full budget. *)
    attempt default_max_cycles
  | None, Some work ->
    let dp = Datapath.build ~machine ~rs program in
    let bound = Fast.cycle_bound ~work_cycles:work dp.Datapath.network in
    let bound = min bound default_max_cycles in
    let result = attempt bound in
    if result.outcome = Out_of_cycles && bound < default_max_cycles then
      attempt default_max_cycles
    else result

let run_golden ?engine ~machine program =
  run ?engine ~machine ~mode:Wp_lis.Shell.Plain ~rs:no_relay_stations program

let throughput ~golden result =
  if result.cycles = 0 then 0.0
  else float_of_int golden.cycles /. float_of_int result.cycles
