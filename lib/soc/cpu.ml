module Engine = Wp_sim.Engine
module Sim = Wp_sim.Sim
module Fast = Wp_sim.Fast
module Monitor = Wp_sim.Monitor

type outcome =
  | Completed
  | Deadlocked
  | Out_of_cycles
  | Cancelled

type result = {
  cycles : int;
  outcome : outcome;
  memory : int array;
  registers : int array;
  result_ok : bool;
  report : Monitor.report;
  telemetry : Wp_sim.Telemetry.report option;
}

let no_relay_stations (_ : Datapath.connection) = 0

let default_max_cycles = 2_000_000

let run ?engine ?(capacity = 2) ?cancel ?max_cycles ?mcr_work ?fault ?protect
    ?telemetry ~machine ~mode ~rs (program : Program.t) =
  (* [mcr_work] enables the MCR-guided cycle budget: instead of stepping
     up to the full default budget, bound the run at
     [Fast.cycle_bound ~work_cycles:mcr_work net] — provable from the
     marked-graph throughput, plus engineering slack.  If the bounded
     run exhausts (the bound was too tight, which the slack makes
     rare), fall back to the full budget so observable outcomes stay
     identical to the unbounded configuration. *)
  let attempt_dp dp max_cycles =
    let sim =
      Sim.create ?engine ~capacity ?fault ?telemetry ~mode dp.Datapath.network
    in
    let outcome, cycles =
      match Sim.run ?cancel ~max_cycles sim with
      | Engine.Halted c -> (Completed, c)
      | Engine.Deadlocked c -> (Deadlocked, c)
      | Engine.Exhausted c -> (Out_of_cycles, c)
      | Engine.Cancelled c -> (Cancelled, c)
    in
    let memory =
      match !(dp.Datapath.memory_tap) with Some get -> get () | None -> [||]
    in
    let registers =
      match !(dp.Datapath.register_tap) with Some get -> get () | None -> [||]
    in
    let result_ok =
      outcome = Completed
      &&
      let base, len = program.Program.result_region in
      let expected = Program.expected_result program in
      len = 0
      || (Array.length memory >= base + len
         && Array.for_all2 ( = ) expected (Array.sub memory base len))
    in
    {
      cycles;
      outcome;
      memory;
      registers;
      result_ok;
      report = Monitor.collect_sim sim;
      telemetry = Sim.telemetry_report sim;
    }
  in
  (* [Process.make] allocates every piece of mutable state afresh and
     re-seats the taps, so one built datapath serves any number of
     engine creations; [attempt] rebuilding each time would pay netlist
     construction twice on the MCR path below. *)
  let attempt max_cycles =
    attempt_dp (Datapath.build ?protect ~machine ~rs program) max_cycles
  in
  let faulted =
    match fault with Some f -> not (Wp_sim.Fault.is_none f) | None -> false
  in
  let protected_ = match protect with Some _ -> true | None -> false in
  match max_cycles, mcr_work with
  | Some m, _ -> attempt m
  | None, None -> attempt default_max_cycles
  | None, Some _ when faulted || protected_ ->
    (* Injected stalls (and ARQ recovery episodes / credit stalls on
       protected links) push throughput below the marked-graph bound, so
       the MCR budget would routinely exhaust and force a double run —
       go straight to the full budget. *)
    attempt default_max_cycles
  | None, Some work ->
    let dp = Datapath.build ~machine ~rs program in
    let bound = Fast.cycle_bound ~work_cycles:work dp.Datapath.network in
    let bound = min bound default_max_cycles in
    let result = attempt_dp dp bound in
    if result.outcome = Out_of_cycles && bound < default_max_cycles then
      attempt_dp dp default_max_cycles
    else result

type batch_item = {
  b_mode : Wp_lis.Shell.mode;
  b_rs : Datapath.connection -> int;
  b_capacity : int;
  b_max_cycles : int option;
  b_mcr_work : int option;
  b_fault : Wp_sim.Fault.spec;
  b_cancel : Wp_util.Cancel.t;
  b_program : Program.t;
}

let run_batch ~machine (items : batch_item array) =
  let module Batch = Wp_sim.Batch in
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    (* Per-item budget: the same decision tree as [run] above — an
       explicit bound wins, faults disable the MCR fast path, otherwise
       the marked-graph bound with full-budget fallback. *)
    let budget = Array.make n default_max_cycles in
    let tight = Array.make n false in
    (* Datapaths built for the MCR bound are kept and reused as the
       simulation lanes below — [Process.make] re-creates all mutable
       state per engine, so nothing is built twice. *)
    let prebuilt : Datapath.t option array = Array.make n None in
    let build_item i =
      Datapath.build ~machine ~rs:items.(i).b_rs items.(i).b_program
    in
    Array.iteri
      (fun i it ->
        match it.b_max_cycles, it.b_mcr_work with
        | Some m, _ -> budget.(i) <- m
        | None, None -> ()
        | None, Some _ when not (Wp_sim.Fault.is_none it.b_fault) -> ()
        | None, Some work ->
          let dp = build_item i in
          prebuilt.(i) <- Some dp;
          let bound = Fast.cycle_bound ~work_cycles:work dp.Datapath.network in
          let bound = min bound default_max_cycles in
          budget.(i) <- bound;
          tight.(i) <- bound < default_max_cycles)
      items;
    let assemble dp b lane out program =
      let outcome, cycles =
        match out with
        | Engine.Halted c -> (Completed, c)
        | Engine.Deadlocked c -> (Deadlocked, c)
        | Engine.Exhausted c -> (Out_of_cycles, c)
        | Engine.Cancelled c -> (Cancelled, c)
      in
      let memory =
        match !(dp.Datapath.memory_tap) with Some get -> get () | None -> [||]
      in
      let registers =
        match !(dp.Datapath.register_tap) with Some get -> get () | None -> [||]
      in
      let result_ok =
        outcome = Completed
        &&
        let base, len = program.Program.result_region in
        let expected = Program.expected_result program in
        len = 0
        || (Array.length memory >= base + len
           && Array.for_all2 ( = ) expected (Array.sub memory base len))
      in
      {
        cycles;
        outcome;
        memory;
        registers;
        result_ok;
        report = Monitor.collect_batch b ~lane;
        telemetry = None;
      }
    in
    let attempt idxs budgets =
      let dps =
        Array.map
          (fun i ->
            match prebuilt.(i) with
            | Some dp -> dp
            | None ->
              let dp = build_item i in
              prebuilt.(i) <- Some dp;
              dp)
          idxs
      in
      let lanes =
        Array.mapi
          (fun j i ->
            {
              Batch.net = dps.(j).Datapath.network;
              mode = items.(i).b_mode;
              capacity = items.(i).b_capacity;
              fault = items.(i).b_fault;
              max_cycles = budgets.(j);
              cancel = items.(i).b_cancel;
            })
          idxs
      in
      let b = Batch.create lanes in
      let outs = Batch.run b in
      Array.mapi
        (fun j i -> assemble dps.(j) b j outs.(j) items.(i).b_program)
        idxs
    in
    let all = Array.init n (fun i -> i) in
    let results = attempt all budget in
    let retry =
      Array.of_list
        (List.filter
           (fun i -> results.(i).outcome = Out_of_cycles && tight.(i))
           (Array.to_list all))
    in
    if Array.length retry > 0 then begin
      let fresh =
        attempt retry (Array.map (fun _ -> default_max_cycles) retry)
      in
      Array.iteri (fun j i -> results.(i) <- fresh.(j)) retry
    end;
    results
  end

let run_golden ?engine ~machine program =
  run ?engine ~machine ~mode:Wp_lis.Shell.Plain ~rs:no_relay_stations program

let throughput ~golden result =
  if result.cycles = 0 then 0.0
  else float_of_int golden.cycles /. float_of_int result.cycles
