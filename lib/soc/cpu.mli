(** Top-level runner: execute a program on a wire-pipelined machine.

    This ties everything together: build the datapath, run the engine,
    check the architectural result against the instruction-set simulator,
    and report cycle counts — the primitive behind every Table 1 entry. *)

type outcome =
  | Completed
  | Deadlocked
  | Out_of_cycles
  | Cancelled
      (** the run's {!Wp_util.Cancel} token fired (deadline expired or
          caller abandoned); the engine stopped cooperatively *)

type result = {
  cycles : int;
  outcome : outcome;
  memory : int array;        (** final data memory *)
  registers : int array;     (** final architectural registers *)
  result_ok : bool;          (** result region matches the ISS reference *)
  report : Wp_sim.Monitor.report;
  telemetry : Wp_sim.Telemetry.report option;
      (** stall attribution and optional event trace; [None] unless the
          run was created with a non-{!Wp_sim.Telemetry.off} spec *)
}

val run :
  ?engine:Wp_sim.Sim.kind ->
  ?capacity:int ->
  ?cancel:Wp_util.Cancel.t ->
  ?max_cycles:int ->
  ?mcr_work:int ->
  ?fault:Wp_sim.Fault.spec ->
  ?protect:(Datapath.connection -> Wp_sim.Network.protection option) ->
  ?telemetry:Wp_sim.Telemetry.spec ->
  machine:Datapath.machine ->
  mode:Wp_lis.Shell.mode ->
  rs:(Datapath.connection -> int) ->
  Program.t ->
  result
(** [engine] selects the simulation kernel (default
    {!Wp_sim.Sim.default_kind}, i.e. the compiled [Fast] engine);
    [capacity] is the shell FIFO bound (default 2); [max_cycles]
    defaults to 2_000_000.  When [max_cycles] is absent and [mcr_work]
    is given (typically the golden run's cycle count), the run is first
    bounded at [Wp_sim.Fast.cycle_bound ~work_cycles:mcr_work], the
    marked-graph MCR budget; an [Out_of_cycles] at that bound falls
    back to the full budget, so results never depend on the bound.
    [fault] injects the given {!Wp_sim.Fault} spec into the WP run;
    since injected stalls invalidate the MCR bound, a non-empty fault
    disables the [mcr_work] fast path and uses the full budget.
    [protect] enables the self-healing {!Wp_sim.Link} layer on the
    channels of the connections it names (see {!Datapath.build}); link
    latency and credit stalls also invalidate the MCR bound, so a
    protection policy likewise disables the [mcr_work] fast path.
    [telemetry] (default {!Wp_sim.Telemetry.off}) enables cycle-accurate
    stall attribution; the report lands in the result's [telemetry]
    field.

    Callers above the SoC layer should prefer the spec-driven
    [Wp_core.Run_spec.run_cpu], which carries all of these knobs in one
    record with a single cache digest. *)

type batch_item = {
  b_mode : Wp_lis.Shell.mode;
  b_rs : Datapath.connection -> int;
  b_capacity : int;          (** must be >= 1 (see {!Wp_sim.Batch}) *)
  b_max_cycles : int option;
  b_mcr_work : int option;
  b_fault : Wp_sim.Fault.spec;
  b_cancel : Wp_util.Cancel.t;  (** {!Wp_util.Cancel.never} when unused *)
  b_program : Program.t;
}
(** One lane of a batched run: everything {!run} takes except protection
    and telemetry, which the batch kernel does not support (use {!run}
    for those specs). *)

val run_batch : machine:Datapath.machine -> batch_item array -> result array
(** Run all items as lanes of one {!Wp_sim.Batch} kernel and return the
    results in item order.  Each result is byte-identical to the
    corresponding sequential {!run} with [engine = Fast]: per-item cycle
    budgets follow the same rules (explicit [b_max_cycles] wins; a fault
    disables the MCR fast path; an [Out_of_cycles] at a tight MCR bound
    is retried at the full budget — retries are themselves batched).
    @raise Wp_sim.Batch.Unbatchable on capacity 0 or mismatched
    topologies (programs on one machine always match). *)

val run_golden : ?engine:Wp_sim.Sim.kind -> machine:Datapath.machine -> Program.t -> result
(** Zero relay stations everywhere, plain wrappers: the reference system
    whose cycle count defines throughput 1.0. *)

val throughput : golden:result -> result -> float
(** [golden.cycles / wp.cycles]. *)

val no_relay_stations : Datapath.connection -> int
(** The all-zero RS budget. *)
