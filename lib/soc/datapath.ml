module Network = Wp_sim.Network

type machine =
  | Pipelined
  | Pipelined_btfn
  | Multicycle

type connection =
  | CU_IC
  | CU_RF
  | CU_AL
  | CU_DC
  | RF_ALU
  | RF_DC
  | ALU_CU
  | ALU_RF
  | ALU_DC
  | DC_RF

let all_connections =
  [ CU_RF; CU_AL; CU_DC; CU_IC; RF_ALU; RF_DC; ALU_CU; ALU_RF; ALU_DC; DC_RF ]

let connection_name = function
  | CU_IC -> "CU-IC"
  | CU_RF -> "CU-RF"
  | CU_AL -> "CU-AL"
  | CU_DC -> "CU-DC"
  | RF_ALU -> "RF-ALU"
  | RF_DC -> "RF-DC"
  | ALU_CU -> "ALU-CU"
  | ALU_RF -> "ALU-RF"
  | ALU_DC -> "ALU-DC"
  | DC_RF -> "DC-RF"

let connection_of_name s =
  let s = String.uppercase_ascii s in
  List.find_opt (fun c -> connection_name c = s) all_connections

let machine_name = function
  | Pipelined -> "pipelined"
  | Pipelined_btfn -> "pipelined+btfn"
  | Multicycle -> "multicycle"

let machine_of_name s =
  match String.lowercase_ascii s with
  | "pipelined" | "p" -> Some Pipelined
  | "btfn" | "pipelined+btfn" -> Some Pipelined_btfn
  | "multicycle" | "mc" | "m" -> Some Multicycle
  | _ -> None

type t = {
  network : Network.t;
  channels_of : connection -> Network.channel list;
  memory_tap : (unit -> int array) option ref;
  register_tap : (unit -> int array) option ref;
}

(* (connection, producer port, consumer port) for every channel; block
   membership is implied by the port names. *)
let wires =
  [
    (CU_IC, ("CU", "fetch"), ("IC", "fetch"));
    (CU_IC, ("IC", "instr"), ("CU", "instr"));
    (CU_RF, ("CU", "ctrl"), ("RF", "ctrl"));
    (CU_AL, ("CU", "op"), ("ALU", "op"));
    (CU_DC, ("CU", "cmd"), ("DC", "cmd"));
    (RF_ALU, ("RF", "src1"), ("ALU", "src1"));
    (RF_ALU, ("RF", "src2"), ("ALU", "src2"));
    (RF_DC, ("RF", "store_data"), ("DC", "store_data"));
    (ALU_CU, ("ALU", "flags"), ("CU", "flags"));
    (ALU_RF, ("ALU", "result"), ("RF", "result"));
    (ALU_DC, ("ALU", "addr"), ("DC", "addr"));
    (DC_RF, ("DC", "load"), ("RF", "load"));
  ]

(* Channel labels are independent of program and machine; formatting
   them once instead of on every [build] matters when the batch serving
   path constructs thousands of datapaths per second. *)
let wire_labels =
  List.map
    (fun (conn, (src_block, src_port), _) ->
      Printf.sprintf "%s:%s.%s" (connection_name conn) src_block src_port)
    wires

let build ?(protect = fun _ -> None) ~machine ~rs (program : Program.t) =
  let net = Network.create () in
  let memory_tap = ref None and register_tap = ref None in
  let text_length = Array.length program.Program.text in
  let cu =
    match machine with
    | Pipelined -> Control_unit.process ~text_length ()
    | Pipelined_btfn -> Control_unit.process ~predict_taken_backward:true ~text_length ()
    | Multicycle -> Control_unit_mc.process ~text_length
  in
  let nodes =
    [
      ("CU", Network.add net cu);
      ("IC", Network.add net (Icache.process ~text:program.Program.text));
      ("RF", Network.add net (Regfile.process ~tap:register_tap ()));
      ("ALU", Network.add net (Alu.process ()));
      ( "DC",
        Network.add net
          (Dcache.process ~tap:memory_tap ~mem_size:program.Program.mem_size
             ~mem_init:program.Program.mem_init ()) );
    ]
  in
  let node name = List.assoc name nodes in
  let table =
    List.map2
      (fun (conn, (src_block, src_port), (dst_block, dst_port)) label ->
        let channel =
          Network.connect net
            ~src:(node src_block, src_port)
            ~dst:(node dst_block, dst_port)
            ~relay_stations:(rs conn)
            ~label ()
        in
        (conn, channel))
      wires wire_labels
  in
  Network.validate net;
  List.iter
    (fun (conn, channel) ->
      match protect conn with
      | None -> ()
      | Some _ as p -> Network.set_protection net channel p)
    table;
  let channels_of conn = List.filter_map (fun (c, ch) -> if c = conn then Some ch else None) table in
  { network = net; channels_of; memory_tap; register_tap }

let topology = wires

let block_names = [ "CU"; "IC"; "RF"; "ALU"; "DC" ]

let figure1_dot () =
  let program = Programs.fibonacci ~n:4 in
  let dp = build ~machine:Pipelined ~rs:(fun _ -> 0) program in
  let g, _ = Network.to_digraph dp.network in
  Wp_graph.Dot.to_string ~name:"figure1" g
