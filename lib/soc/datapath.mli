(** The case-study netlist (the paper's Figure 1): five blocks, ten named
    connections, twelve point-to-point channels.

    A {e connection} is the paper's unit of relay-station insertion: the
    bundle of wires between two blocks.  CU-IC bundles both directions of
    the fetch interface (which is why one RS on CU-IC costs the fetch loop
    two stages); RF-ALU bundles the two operand buses. *)

type machine =
  | Pipelined
  | Pipelined_btfn  (** pipelined with static backward-taken prediction *)
  | Multicycle

type connection =
  | CU_IC
  | CU_RF
  | CU_AL
  | CU_DC
  | RF_ALU
  | RF_DC
  | ALU_CU
  | ALU_RF
  | ALU_DC
  | DC_RF

val all_connections : connection list
(** In the paper's Table 1 row order. *)

val connection_name : connection -> string
(** E.g. ["CU-IC"]. *)

val connection_of_name : string -> connection option
(** Case-insensitive. *)

val machine_name : machine -> string

val machine_of_name : string -> machine option
(** Case-insensitive; accepts the full names plus the CLI short forms
    ([p], [mc], [m], [btfn]). *)

type t = {
  network : Wp_sim.Network.t;
  channels_of : connection -> Wp_sim.Network.channel list;
  memory_tap : (unit -> int array) option ref;
      (** set once an engine instantiates the DC *)
  register_tap : (unit -> int array) option ref;
}

val build :
  ?protect:(connection -> Wp_sim.Network.protection option) ->
  machine:machine ->
  rs:(connection -> int) ->
  Program.t ->
  t
(** Fresh network with the given relay-station budget per connection.
    [protect] (default: nobody) marks connections whose channels get the
    self-healing {!Wp_sim.Link} layer instead of raw stop wires. *)

val topology : (connection * (string * string) * (string * string)) list
(** The static wire list: (connection, (producer block, output port),
    (consumer block, input port)) for each of the twelve channels. *)

val block_names : string list
(** The five block names: CU, IC, RF, ALU, DC. *)

val figure1_dot : unit -> string
(** The topology as Graphviz DOT (relay-station-free), regenerating the
    paper's Figure 1. *)
