module Process = Wp_lis.Process

let ring_size = Latency.dc_address + 2

let process ?(tap = ref None) ~mem_size ~mem_init () =
  if mem_size <= 0 then invalid_arg "Dcache.process: mem_size must be positive";
  List.iter
    (fun (addr, _) ->
      if addr < 0 || addr >= mem_size then
        invalid_arg (Printf.sprintf "Dcache.process: initialiser address %d out of range" addr))
    mem_init;
  {
    Process.name = "DC";
    input_names = [| "cmd"; "addr"; "store_data" |];
    output_names = [| "load" |];
    reset_outputs = [| 0 |];
    make =
      (fun () ->
        let mem = Array.make mem_size 0 in
        List.iter (fun (addr, v) -> mem.(addr) <- v) mem_init;
        tap := Some (fun () -> Array.copy mem);
        (* exec_sched: what access happens at a firing; data_sched: a store
           datum must be consumed; value_sched: the datum, buffered until
           the access fires. *)
        let exec_sched = Array.make ring_size None in
        let data_sched = Array.make ring_size false in
        let value_sched = Array.make ring_size 0 in
        let firing = ref 0 in
        let slot offset = (!firing + offset) mod ring_size in
        (* Reused in place: required() must not allocate on the hot path. *)
        let req_mask = [| true; false; false |] in
        {
          Process.required =
            (fun () ->
              let here = !firing mod ring_size in
              req_mask.(1) <- exec_sched.(here) <> None;
              req_mask.(2) <- data_sched.(here);
              req_mask);
          fire =
            (fun inputs ->
              let here = !firing mod ring_size in
              (* Buffer an arriving store datum for its access firing. *)
              if data_sched.(here) then begin
                data_sched.(here) <- false;
                match inputs.(2) with
                | Some v ->
                  value_sched.(slot (Latency.dc_address - Latency.dc_store_data)) <- v
                | None -> assert false
              end;
              (* Perform the access scheduled for this firing. *)
              let load_out = ref 0 in
              (match exec_sched.(here) with
              | None -> ()
              | Some kind ->
                exec_sched.(here) <- None;
                let addr = match inputs.(1) with Some v -> v | None -> assert false in
                if addr < 0 || addr >= mem_size then
                  failwith (Printf.sprintf "DC: access to address %d out of range" addr);
                (match kind with
                | Codec.M_load -> load_out := mem.(addr)
                | Codec.M_store -> mem.(addr) <- value_sched.(here)));
              (* Register a newly arriving command. *)
              let cmd_word = match inputs.(0) with Some w -> w | None -> assert false in
              (match Codec.unpack_mem_cmd cmd_word with
              | None -> ()
              | Some kind ->
                exec_sched.(slot Latency.dc_address) <- Some kind;
                if kind = Codec.M_store then data_sched.(slot Latency.dc_store_data) <- true);
              incr firing;
              [| !load_out |]);
          halted = (fun () -> false);
        });
  }
