let data_base = 16

let init_of_array base values =
  List.mapi (fun i v -> (base + i, v)) (Array.to_list values)

(* Register plan: r1=i r2=j r3=min_idx r4=min_val r5=tmp r6=n r7=base
   r8=addr r9=addr2. *)
let extraction_sort ~values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Programs.extraction_sort: empty array";
  let source =
    Printf.sprintf
      {|        ; extraction (selection) sort, in place at %d..%d
        ldi  r6, %d          ; n
        ldi  r7, %d          ; base
        ldi  r1, 0           ; i = 0
outer:  addi r5, r6, -1
        cmp  r1, r5
        br.ge done           ; while i < n-1
        addi r3, r1, 0       ; min_idx = i
        add  r8, r7, r1
        ld   r4, 0(r8)       ; min_val = a[i]
        addi r2, r1, 1       ; j = i+1
inner:  cmp  r2, r6
        br.ge swap           ; while j < n
        add  r9, r7, r2
        ld   r5, 0(r9)       ; a[j]
        cmp  r5, r4
        br.ge skip
        addi r3, r2, 0       ; min_idx = j
        addi r4, r5, 0       ; min_val = a[j]
skip:   addi r2, r2, 1
        br.al inner
swap:   add  r8, r7, r1
        ld   r5, 0(r8)       ; tmp = a[i]
        st   0(r8), r4       ; a[i] = min_val
        add  r9, r7, r3
        st   0(r9), r5       ; a[min_idx] = tmp
        addi r1, r1, 1
        br.al outer
done:   halt
|}
      data_base
      (data_base + n - 1)
      n data_base
  in
  Program.of_source ~name:"extraction_sort"
    ~mem_init:(init_of_array data_base values)
    ~result_region:(data_base, n) source

(* Register plan: r1=i r2=j r3=k r4=acc r5=tmp r6=n r7=A[i][k] r8=B[k][j]
   r9=addr r10=A r11=B r12=C. *)
let matrix_multiply ~n ~a ~b =
  if n < 1 then invalid_arg "Programs.matrix_multiply: n must be >= 1";
  if Array.length a <> n * n || Array.length b <> n * n then
    invalid_arg "Programs.matrix_multiply: matrices must have n*n elements";
  let a_base = data_base and b_base = data_base + (n * n) and c_base = data_base + (2 * n * n) in
  let source =
    Printf.sprintf
      {|        ; C = A * B, %dx%d
        ldi  r6, %d          ; n
        ldi  r10, %d         ; A
        ldi  r11, %d         ; B
        ldi  r12, %d         ; C
        ldi  r1, 0           ; i
li:     cmp  r1, r6
        br.ge mmdone
        ldi  r2, 0           ; j
lj:     cmp  r2, r6
        br.ge nexti
        ldi  r4, 0           ; acc
        ldi  r3, 0           ; k
lk:     cmp  r3, r6
        br.ge storec
        mul  r9, r1, r6
        add  r9, r9, r3
        add  r9, r9, r10
        ld   r7, 0(r9)       ; A[i][k]
        mul  r9, r3, r6
        add  r9, r9, r2
        add  r9, r9, r11
        ld   r8, 0(r9)       ; B[k][j]
        mul  r5, r7, r8
        add  r4, r4, r5
        addi r3, r3, 1
        br.al lk
storec: mul  r9, r1, r6
        add  r9, r9, r2
        add  r9, r9, r12
        st   0(r9), r4
        addi r2, r2, 1
        br.al lj
nexti:  addi r1, r1, 1
        br.al li
mmdone: halt
|}
      n n n a_base b_base c_base
  in
  Program.of_source ~name:"matrix_multiply"
    ~mem_init:(init_of_array a_base a @ init_of_array b_base b)
    ~result_region:(c_base, n * n)
    source

let fibonacci ~n =
  let source =
    Printf.sprintf
      {|        ; fib(%d) into mem[0]
        ldi  r1, 0           ; fib(0)
        ldi  r2, 1           ; fib(1)
        ldi  r3, %d          ; counter
        ldi  r4, 0
floop:  cmp  r4, r3
        br.ge fdone
        add  r5, r1, r2
        addi r1, r2, 0
        addi r2, r5, 0
        addi r4, r4, 1
        br.al floop
fdone:  ldi  r6, 0
        st   0(r6), r1
        halt
|}
      n n
  in
  Program.of_source ~name:"fibonacci" ~result_region:(0, 1) source

let dot_product ~x ~y =
  let n = Array.length x in
  if n = 0 || Array.length y <> n then
    invalid_arg "Programs.dot_product: vectors must be equal-length and non-empty";
  let x_base = data_base and y_base = data_base + n in
  let source =
    Printf.sprintf
      {|        ; dot product of two %d-vectors into mem[0]
        ldi  r6, %d          ; n
        ldi  r10, %d         ; x
        ldi  r11, %d         ; y
        ldi  r1, 0           ; i
        ldi  r4, 0           ; acc
dloop:  cmp  r1, r6
        br.ge ddone
        add  r9, r10, r1
        ld   r7, 0(r9)
        add  r9, r11, r1
        ld   r8, 0(r9)
        mul  r5, r7, r8
        add  r4, r4, r5
        addi r1, r1, 1
        br.al dloop
ddone:  ldi  r9, 0
        st   0(r9), r4
        halt
|}
      n n x_base y_base
  in
  Program.of_source ~name:"dot_product"
    ~mem_init:(init_of_array x_base x @ init_of_array y_base y)
    ~result_region:(0, 1) source

let memcpy ~values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Programs.memcpy: empty array";
  let src = data_base and dst = data_base + n in
  let source =
    Printf.sprintf
      {|        ; copy %d words from %d to %d
        ldi  r6, %d          ; n
        ldi  r10, %d         ; src
        ldi  r11, %d         ; dst
        ldi  r1, 0           ; i
cloop:  cmp  r1, r6
        br.ge cdone
        add  r8, r10, r1
        ld   r5, 0(r8)
        add  r9, r11, r1
        st   0(r9), r5
        addi r1, r1, 1
        br.al cloop
cdone:  halt
|}
      n src dst n src dst
  in
  Program.of_source ~name:"memcpy"
    ~mem_init:(init_of_array src values)
    ~result_region:(dst, n) source

(* Register plan: r1=i r2=limit r3=addr r4=a[j] r5=a[j+1] r6=n r7=base
   r8=swapped. *)
let bubble_sort ~values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Programs.bubble_sort: empty array";
  let source =
    Printf.sprintf
      {|        ; bubble sort, in place at %d..%d
        ldi  r6, %d          ; n
        ldi  r7, %d          ; base
bpass:  ldi  r8, 0           ; swapped = 0
        ldi  r1, 0           ; j = 0
bloop:  addi r2, r6, -1
        cmp  r1, r2
        br.ge bend           ; while j < n-1
        add  r3, r7, r1
        ld   r4, 0(r3)       ; a[j]
        ld   r5, 1(r3)       ; a[j+1]
        cmp  r4, r5
        br.le bskip
        st   0(r3), r5       ; swap
        st   1(r3), r4
        ldi  r8, 1           ; swapped = 1
bskip:  addi r1, r1, 1
        br.al bloop
bend:   ldi  r2, 0
        cmp  r8, r2
        br.gt bpass          ; repeat until no swaps
        halt
|}
      data_base
      (data_base + n - 1)
      n data_base
  in
  Program.of_source ~name:"bubble_sort"
    ~mem_init:(init_of_array data_base values)
    ~result_region:(data_base, n) source

let random_values prng ~n ~bound = Array.init n (fun _ -> Wp_util.Prng.int prng bound)

let sort_values ~seed ~n = random_values (Wp_util.Prng.create ~seed) ~n ~bound:1000

let matrix_values ~seed ~n = random_values (Wp_util.Prng.create ~seed) ~n:(n * n) ~bound:10

let all () =
  [
    extraction_sort ~values:(sort_values ~seed:1 ~n:16);
    matrix_multiply ~n:4 ~a:(matrix_values ~seed:2 ~n:4) ~b:(matrix_values ~seed:3 ~n:4);
    fibonacci ~n:20;
    dot_product ~x:(sort_values ~seed:4 ~n:12) ~y:(sort_values ~seed:5 ~n:12);
    memcpy ~values:(sort_values ~seed:6 ~n:12);
    bubble_sort ~values:(sort_values ~seed:7 ~n:10);
  ]

(* The CLI/service workload grammar: "sort:16", "random:7", "asm:PATH".
   Shared by [wp_cli] argument parsing and the [wp_cli serve] daemon, so
   a client names workloads with exactly the strings the CLI accepts.
   Errors are one-line strings — both callers wrap them (cmdliner `Msg,
   wire Error reply) rather than raise. *)

let assembly_program path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "assembly file %S not found" path)
  else
    match
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> Error (Printf.sprintf "cannot read %S: %s" path msg)
    | exception e ->
      Error (Printf.sprintf "cannot read %S: %s" path (Printexc.to_string e))
    | source -> (
      match Asm.assemble source with
      | Error e -> Error (Format.asprintf "%s: %a" path Asm.pp_error e)
      | exception e ->
        Error (Printf.sprintf "%s: assembler error: %s" path (Printexc.to_string e))
      | Ok text ->
        Ok
          {
            Program.name = Filename.remove_extension (Filename.basename path);
            source;
            text;
            mem_size = 4096;
            mem_init = [];
            result_region = (0, 0);
          })

let of_string s =
  let name, raw_param =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i -> (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  in
  if name = "asm" then
    match raw_param with
    | Some path -> assembly_program path
    | None -> Error "asm needs a file: asm:PATH"
  else
  let param = Option.bind raw_param int_of_string_opt in
  let size default = Option.value param ~default in
  match name with
  | "sort" -> Ok (extraction_sort ~values:(sort_values ~seed:1 ~n:(size 16)))
  | "matmul" ->
    let n = size 5 in
    Ok (matrix_multiply ~n ~a:(matrix_values ~seed:2 ~n) ~b:(matrix_values ~seed:3 ~n))
  | "fib" -> Ok (fibonacci ~n:(size 20))
  | "dot" ->
    let n = size 12 in
    Ok (dot_product ~x:(sort_values ~seed:4 ~n) ~y:(sort_values ~seed:5 ~n))
  | "memcpy" -> Ok (memcpy ~values:(sort_values ~seed:6 ~n:(size 12)))
  | "bubble" -> Ok (bubble_sort ~values:(sort_values ~seed:7 ~n:(size 12)))
  | "random" -> Ok (Random_program.generate ~seed:(size 1) ())
  | _ ->
    Error
      (Printf.sprintf
         "unknown program %S (try sort, matmul, fib, dot, memcpy, bubble, random, asm:FILE)" s)
