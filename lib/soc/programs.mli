(** The paper's two workloads plus auxiliary programs.

    Extraction (selection) sort is the "strictly data dependent problem";
    matrix multiply is the regular kernel.  The extras exercise corners the
    paper does not (register-only code, streaming copies) and feed the
    wider test suite. *)

val extraction_sort : values:int array -> Program.t
(** In-place ascending selection sort of [values] stored at address 16.
    @raise Invalid_argument on an empty array. *)

val matrix_multiply : n:int -> a:int array -> b:int array ->  Program.t
(** C = A x B for row-major [n*n] matrices; A at 16, B at 16+n², C at
    16+2n².  @raise Invalid_argument unless both arrays have [n*n]
    elements and [n >= 1]. *)

val fibonacci : n:int -> Program.t
(** Iteratively computes fib(n) (fib(0)=0, fib(1)=1) into memory\[0\];
    register-only inner loop. *)

val dot_product : x:int array -> y:int array -> Program.t
(** Sum of products into memory\[0\]; vectors at 16 and 16+n. *)

val memcpy : values:int array -> Program.t
(** Copies the block at 16 to 16+n (a store-heavy streaming loop). *)

val bubble_sort : values:int array -> Program.t
(** In-place ascending bubble sort at address 16 — a second
    data-dependent workload with a different branch/memory mix than
    extraction sort.  @raise Invalid_argument on an empty array. *)

val all : unit -> Program.t list
(** A representative instance of each workload (deterministic data),
    used by tests and benches. *)

val sort_values : seed:int -> n:int -> int array
(** Deterministic pseudo-random workload data. *)

val matrix_values : seed:int -> n:int -> int array

val of_string : string -> (Program.t, string) result
(** Parse the CLI/service workload grammar: [sort[:n]], [matmul[:n]],
    [fib[:n]], [dot[:n]], [memcpy[:n]], [bubble[:n]], [random[:seed]],
    or [asm:FILE] (load and assemble a source file).  All failure modes
    — unknown name, missing file, assembler error — come back as a
    one-line [Error]. *)
