module Process = Wp_lis.Process

(* Schedule rings are indexed by firing modulo their length; slots are
   cleared as they are consumed, so a ring of length offset+1 suffices. *)
let ring_size = max Latency.rf_alu_writeback Latency.rf_load_writeback + 1

let process ?(tap = ref None) () =
  {
    Process.name = "RF";
    input_names = [| "ctrl"; "result"; "load" |];
    output_names = [| "src1"; "src2"; "store_data" |];
    reset_outputs = [| 0; 0; 0 |];
    make =
      (fun () ->
        let regs = Array.make 16 0 in
        let wb1_sched = Array.make ring_size None in
        let wb2_sched = Array.make ring_size None in
        let firing = ref 0 in
        tap := Some (fun () -> Array.copy regs);
        let slot offset = (!firing + offset) mod ring_size in
        (* Reused in place: required() must not allocate on the hot path. *)
        let req_mask = [| true; false; false |] in
        {
          Process.required =
            (fun () ->
              let here = !firing mod ring_size in
              req_mask.(1) <- wb1_sched.(here) <> None;
              req_mask.(2) <- wb2_sched.(here) <> None;
              req_mask);
          fire =
            (fun inputs ->
              let here = !firing mod ring_size in
              (* Apply writebacks, oldest instruction first: a colliding
                 load writeback belongs to an older instruction than the
                 ALU writeback landing the same firing. *)
              (match wb2_sched.(here) with
              | None -> ()
              | Some rd ->
                wb2_sched.(here) <- None;
                (match inputs.(2) with
                | Some v -> regs.(rd) <- v
                | None -> assert false));
              (match wb1_sched.(here) with
              | None -> ()
              | Some rd ->
                wb1_sched.(here) <- None;
                (match inputs.(1) with
                | Some v -> regs.(rd) <- v
                | None -> assert false));
              let ctrl_word = match inputs.(0) with Some w -> w | None -> assert false in
              let outputs =
                match Codec.unpack_rf_ctrl ctrl_word with
                | None -> [| 0; 0; 0 |]
                | Some c ->
                  (match c.Codec.wb1 with
                  | Some rd -> wb1_sched.(slot Latency.rf_alu_writeback) <- Some rd
                  | None -> ());
                  (match c.Codec.wb2 with
                  | Some rd -> wb2_sched.(slot Latency.rf_load_writeback) <- Some rd
                  | None -> ());
                  [| regs.(c.Codec.ra); regs.(c.Codec.rb); regs.(c.Codec.rv) |]
              in
              incr firing;
              outputs);
          halted = (fun () -> false);
        });
  }
