module Sim = Wp_sim.Sim
module Static = Wp_sim.Static
module Engine = Wp_sim.Engine
module Batch = Wp_sim.Batch
module Network = Wp_sim.Network
module Fault = Wp_sim.Fault
module Telemetry = Wp_sim.Telemetry
module Shell = Wp_lis.Shell
module Run_spec = Wp_core.Run_spec
module Protect = Wp_core.Protect
module Pool = Wp_util.Pool
module Shrink = Wp_util.Shrink
module Cycle_ratio = Wp_graph.Cycle_ratio

type scenario = { topo : Topology.spec; spec : Run_spec.t }

type result = {
  r_scenario : scenario;
  r_blocks : int;
  r_channels : int;
  r_outcome : Engine.outcome;
  r_cycles : int;
  r_firings : int;
  r_bound : Cycle_ratio.ratio;
  r_word_rate : Cycle_ratio.ratio option;
  r_word_ok : bool option;
  r_disagreements : string list;
  r_telemetry : Telemetry.summary option;
  r_error : string option;
}

let default_budget = 2048

let budget spec =
  match spec.Run_spec.max_cycles with Some n -> n | None -> default_budget

let expand ~topos ~seeds ~spec =
  if seeds < 1 then invalid_arg "Sweep.expand: seeds < 1";
  List.concat_map
    (fun t ->
      List.init seeds (fun k ->
          { topo = Topology.with_seed t (t.Topology.seed + k); spec }))
    topos

(* --------------------------------------------------------------- *)
(* Replay / repro                                                   *)
(* --------------------------------------------------------------- *)

let replay_command sc =
  let spec = sc.spec in
  let b = Buffer.create 96 in
  Printf.bprintf b "wp_cli sweep --topology %s --seeds 1 --engine %s"
    (Topology.to_string sc.topo)
    (Sim.kind_to_string spec.Run_spec.engine);
  if spec.capacity <> 2 then Printf.bprintf b " --capacity %d" spec.capacity;
  (match spec.max_cycles with
  | Some n -> Printf.bprintf b " --max-cycles %d" n
  | None -> ());
  if not (Fault.is_none spec.fault) then
    Printf.bprintf b " --fault '%s' --fault-seed %d"
      (Fault.to_string spec.fault)
      spec.fault.Fault.seed;
  if not (Protect.is_none spec.protect) then Buffer.add_string b " --protect all";
  if spec.telemetry.Telemetry.counters then Buffer.add_string b " --stall-report";
  if spec.telemetry.Telemetry.trace_depth > 0 then
    Printf.bprintf b " --trace-depth %d" spec.telemetry.Telemetry.trace_depth;
  Buffer.contents b

let sanitize s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '-')
    s

let write_repro ?dir sc ~reason =
  let name =
    sanitize
      (Printf.sprintf "sweep-%s-%s" (Topology.to_string sc.topo)
         (Run_spec.digest sc.spec))
  in
  Shrink.write_repro ?dir ~name
    [
      ("topology", Topology.to_sexp sc.topo);
      ("spec", Shrink.Sexp.atom (Run_spec.digest sc.spec));
      ("reason", Shrink.Sexp.atom reason);
      ("replay", Shrink.Sexp.atom (replay_command sc));
    ]

(* --------------------------------------------------------------- *)
(* One engine's observable stats                                    *)
(* --------------------------------------------------------------- *)

type view = {
  v_outcome : Engine.outcome;
  v_cycles : int;
  v_firings : int array; (* per node *)
  v_delivered : int array; (* per channel *)
}

let outcome_str = function
  | Engine.Halted c -> Printf.sprintf "halted@%d" c
  | Engine.Deadlocked c -> Printf.sprintf "deadlocked@%d" c
  | Engine.Exhausted c -> Printf.sprintf "exhausted@%d" c
  | Engine.Cancelled c -> Printf.sprintf "cancelled@%d" c

(* [b] is the checking engine, [a] the primary; any difference is a
   cross-engine bug worth a repro file. *)
let compare_views ~who a b =
  let ds = ref [] in
  let add fmt = Printf.ksprintf (fun s -> ds := s :: !ds) fmt in
  if a.v_outcome <> b.v_outcome then
    add "%s: outcome %s vs %s" who (outcome_str a.v_outcome)
      (outcome_str b.v_outcome);
  if a.v_cycles <> b.v_cycles then
    add "%s: cycles %d vs %d" who a.v_cycles b.v_cycles;
  Array.iteri
    (fun n f ->
      if f <> b.v_firings.(n) then
        add "%s: node %d firings %d vs %d" who n f b.v_firings.(n))
    a.v_firings;
  Array.iteri
    (fun c d ->
      if d <> b.v_delivered.(c) then
        add "%s: channel %d delivered %d vs %d" who c d b.v_delivered.(c))
    a.v_delivered;
  List.rev !ds

let view_of_sim net sim outcome =
  {
    v_outcome = outcome;
    v_cycles = Sim.cycles sim;
    v_firings =
      Array.init (Network.node_count net) (fun n ->
          (Sim.node_stats sim n).Shell.firings);
    v_delivered =
      Array.init (Network.channel_count net) (fun c -> Sim.delivered sim c);
  }

let view_of_batch net b ~lane =
  {
    v_outcome =
      (match Batch.outcome b ~lane with Some o -> o | None -> assert false);
    v_cycles = Batch.lane_cycles b ~lane;
    v_firings =
      Array.init (Network.node_count net) (fun n ->
          (Batch.node_stats b ~lane n).Shell.firings);
    v_delivered =
      Array.init (Network.channel_count net) (fun c ->
          Batch.delivered b ~lane c);
  }

(* --------------------------------------------------------------- *)
(* Primary execution paths                                          *)
(* --------------------------------------------------------------- *)

type prim = {
  p_view : view;
  p_tele : Telemetry.summary option;
  p_word : (Cycle_ratio.ratio * bool) option;
}

let run_solo ~engine sc net =
  let spec = sc.spec in
  let sim =
    Sim.create ~engine ~capacity:spec.Run_spec.capacity ~fault:spec.fault
      ~telemetry:spec.telemetry ~mode:Shell.Plain net
  in
  let outcome = Sim.run ~max_cycles:(budget spec) sim in
  let tele =
    Option.map
      (fun (r : Telemetry.report) -> r.Telemetry.summary)
      (Sim.telemetry_report sim)
  in
  { p_view = view_of_sim net sim outcome; p_tele = tele; p_word = None }

(* The static path measures sustained throughput exactly: block 0's
   firing count over one full period against the next must advance by
   exactly the word's ones count.  Checkpoints are visited in ascending
   order; the caller-visible view is snapshotted at the budget
   checkpoint even when the word check needs to run further. *)
let run_static_checked sc net =
  let spec = sc.spec in
  (* Mirror the CLI's refusal semantics at scenario granularity: a
     faulted / protected / telemetered spec has no static firing word,
     so running the table unfaulted here would manufacture a spurious
     cross-engine disagreement. *)
  if not (Fault.is_none spec.Run_spec.fault) then
    raise (Static.Unschedulable "faults have no static firing word");
  if not (Protect.is_none spec.Run_spec.protect) then
    raise (Static.Unschedulable "protected channels have no static firing word");
  if not (Telemetry.is_off spec.Run_spec.telemetry) then
    raise (Static.Unschedulable "telemetry is not supported by the table replay");
  let cap = spec.Run_spec.capacity in
  let st = Static.create ~capacity:cap ~mode:Shell.Plain net in
  let tr = Static.transient st and p = Static.period st in
  let word = Static.word st 0 in
  let ones = Array.fold_left (fun a f -> if f then a + 1 else a) 0 word in
  let t1 = tr + p and t2 = tr + (2 * p) in
  let b = budget spec in
  let firings () = (Static.node_stats st 0).Shell.firings in
  let f1 = ref 0 and f2 = ref 0 in
  let snap = ref None in
  List.iter
    (fun cp ->
      let o = Static.run ~max_cycles:cp st in
      if cp = t1 then f1 := firings ();
      if cp = t2 then f2 := firings ();
      if cp = b && !snap = None then
        snap :=
          Some
            {
              v_outcome = o;
              v_cycles = Static.cycles st;
              v_firings =
                Array.init (Network.node_count net) (fun n ->
                    (Static.node_stats st n).Shell.firings);
              v_delivered =
                Array.init (Network.channel_count net) (fun c ->
                    Static.delivered st c);
            })
    (List.sort_uniq compare [ t1; t2; b ]);
  let view = match !snap with Some v -> v | None -> assert false in
  let word_ok = !f2 - !f1 = ones in
  { p_view = view; p_tele = None; p_word = Some (Static.rate st 0, word_ok) }

(* A plain static replay to the same budget, for cross-checking a
   dynamic primary engine. *)
let static_view sc net =
  let spec = sc.spec in
  let st = Static.create ~capacity:spec.Run_spec.capacity ~mode:Shell.Plain net in
  let o = Static.run ~max_cycles:(budget spec) st in
  {
    v_outcome = o;
    v_cycles = Static.cycles st;
    v_firings =
      Array.init (Network.node_count net) (fun n ->
          (Static.node_stats st n).Shell.firings);
    v_delivered =
      Array.init (Network.channel_count net) (fun c -> Static.delivered st c);
  }

(* --------------------------------------------------------------- *)
(* Classification                                                   *)
(* --------------------------------------------------------------- *)

let protected_spec spec = not (Protect.is_none spec.Run_spec.protect)

let apply_protection spec net =
  if protected_spec spec then
    List.iter
      (fun c ->
        Network.set_protection net c (Some { Network.window = 0; timeout = 0 }))
      (Network.channels net)

let schedulable spec =
  spec.Run_spec.capacity >= 1
  && Fault.is_none spec.fault
  && (not (protected_spec spec))
  && Telemetry.is_off spec.telemetry

let batchable spec =
  spec.Run_spec.engine = Sim.Fast
  && spec.capacity >= 1
  && (not (protected_spec spec))
  && Telemetry.is_off spec.telemetry

(* Reference replays are the costliest check; bound them to small nets
   and a deterministic quarter of the seeds (always including the
   family's base seed 0). *)
let check_ref sc net =
  Network.node_count net <= 128 && sc.topo.Topology.seed mod 4 = 0

(* --------------------------------------------------------------- *)
(* Shard execution                                                  *)
(* --------------------------------------------------------------- *)

let process_shard ~check_engines (shard : scenario array) : result array =
  let n = Array.length shard in
  let ctx =
    Array.map
      (fun sc ->
        match Topology.build sc.topo with
        | net ->
          apply_protection sc.spec net;
          Ok (sc, net)
        | exception e -> Error (Printexc.to_string e))
      shard
  in
  let primary : prim option array = Array.make n None in
  let errors : string option array = Array.make n None in
  (* Batchable lanes ride one kernel invocation; the signature grouping
     inside Batch.create splits heterogeneous topologies by itself. *)
  let batch_ids =
    List.filter
      (fun i ->
        match ctx.(i) with
        | Ok (sc, _) -> batchable sc.spec
        | Error _ -> false)
      (List.init n Fun.id)
  in
  (match batch_ids with
  | [] -> ()
  | ids -> (
    let lane_of i =
      match ctx.(i) with
      | Ok (sc, net) ->
        {
          Batch.net;
          mode = Shell.Plain;
          capacity = sc.spec.Run_spec.capacity;
          fault = sc.spec.Run_spec.fault;
          max_cycles = budget sc.spec;
          cancel = Wp_util.Cancel.never;
        }
      | Error _ -> assert false
    in
    match
      let lanes = Array.of_list (List.map lane_of ids) in
      let b = Batch.create lanes in
      ignore (Batch.run b);
      b
    with
    | b ->
      List.iteri
        (fun lane i ->
          match ctx.(i) with
          | Ok (_, net) ->
            primary.(i) <-
              Some { p_view = view_of_batch net b ~lane; p_tele = None; p_word = None }
          | Error _ -> ())
        ids
    | exception _ -> () (* fall through to the solo path below *)))
  ;
  (* Solo paths: non-batchable engines, and any batch fallout. *)
  Array.iteri
    (fun i c ->
      match (c, primary.(i)) with
      | Error e, _ -> errors.(i) <- Some e
      | Ok _, Some _ -> ()
      | Ok (sc, net), None -> (
        match
          match sc.spec.Run_spec.engine with
          | Sim.Static -> run_static_checked sc net
          | Sim.Reference -> run_solo ~engine:Sim.Reference sc net
          | Sim.Fast -> run_solo ~engine:Sim.Fast sc net
        with
        | p -> primary.(i) <- Some p
        | exception Static.Unschedulable r ->
          errors.(i) <- Some ("not statically schedulable: " ^ r)
        | exception e -> errors.(i) <- Some (Printexc.to_string e)))
    ctx;
  (* Cross-engine checks. *)
  Array.mapi
    (fun i sc ->
      match (ctx.(i), primary.(i), errors.(i)) with
      | Error _, _, _ | Ok _, None, _ ->
        let e = match errors.(i) with Some e -> e | None -> "no result" in
        {
          r_scenario = sc;
          r_blocks = 0;
          r_channels = 0;
          r_outcome = Engine.Deadlocked 0;
          r_cycles = 0;
          r_firings = 0;
          r_bound = Cycle_ratio.make_ratio 0 1;
          r_word_rate = None;
          r_word_ok = None;
          r_disagreements = [];
          r_telemetry = None;
          r_error = Some e;
        }
      | Ok (_, net), Some p, _ ->
        let disagreements = ref [] in
        let err = ref None in
        if check_engines then begin
          (if schedulable sc.spec && sc.spec.Run_spec.engine <> Sim.Static then
             match static_view sc net with
             | v ->
               disagreements :=
                 !disagreements @ compare_views ~who:"static" p.p_view v
             | exception e ->
               err := Some (Printf.sprintf "static check: %s" (Printexc.to_string e)));
          (if sc.spec.Run_spec.engine = Sim.Static then
             match run_solo ~engine:Sim.Fast sc net with
             | q ->
               disagreements :=
                 !disagreements @ compare_views ~who:"fast" p.p_view q.p_view
             | exception e ->
               err := Some (Printf.sprintf "fast check: %s" (Printexc.to_string e)));
          if sc.spec.Run_spec.engine <> Sim.Reference && check_ref sc net then
            match run_solo ~engine:Sim.Reference sc net with
            | q ->
              disagreements :=
                !disagreements @ compare_views ~who:"ref" p.p_view q.p_view
            | exception e ->
              err := Some (Printf.sprintf "ref check: %s" (Printexc.to_string e))
        end;
        {
          r_scenario = sc;
          r_blocks = Network.node_count net;
          r_channels = Network.channel_count net;
          r_outcome = p.p_view.v_outcome;
          r_cycles = p.p_view.v_cycles;
          r_firings = p.p_view.v_firings.(0);
          r_bound = Topology.mcr ~capacity:(max 1 sc.spec.Run_spec.capacity) net;
          r_word_rate = Option.map fst p.p_word;
          r_word_ok = Option.map snd p.p_word;
          r_disagreements = !disagreements;
          r_telemetry = p.p_tele;
          r_error = !err;
        })
    shard

let run ?jobs ?(check_engines = true) scenarios =
  let arr = Array.of_list scenarios in
  let out =
    Pool.with_pool ?jobs (fun pool ->
        Pool.map_shards pool ~shard:8 (process_shard ~check_engines) arr)
  in
  Array.to_list out

let ok r =
  r.r_error = None && r.r_disagreements = [] && r.r_word_ok <> Some false

(* --------------------------------------------------------------- *)
(* Report                                                           *)
(* --------------------------------------------------------------- *)

let render results =
  let fams = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun r ->
      let f = Topology.family r.r_scenario.topo in
      match Hashtbl.find_opt fams f with
      | None ->
        order := f :: !order;
        Hashtbl.add fams f [ r ]
      | Some rs -> Hashtbl.replace fams f (r :: rs))
    results;
  let b = Buffer.create 1024 in
  Printf.bprintf b "%-24s %7s %7s %5s %10s %10s %7s %6s %s\n" "topology"
    "blocks" "chans" "scen" "bound" "measured" "agree" "word" "notes";
  List.iter
    (fun f ->
      let rs = List.rev (Hashtbl.find fams f) in
      let oks = List.filter (fun r -> r.r_error = None) rs in
      let blocks = match oks with r :: _ -> r.r_blocks | [] -> 0 in
      let chans = match oks with r :: _ -> r.r_channels | [] -> 0 in
      let bound =
        match oks with
        | r :: _ -> Format.asprintf "%a" Cycle_ratio.ratio_pp r.r_bound
        | [] -> "-"
      in
      let thpt =
        let xs =
          List.filter_map
            (fun r ->
              if r.r_cycles > 0 then
                Some (float_of_int r.r_firings /. float_of_int r.r_cycles)
              else None)
            oks
        in
        match xs with
        | [] -> "-"
        | _ ->
          Printf.sprintf "%.4f"
            (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))
      in
      let agree =
        Printf.sprintf "%d/%d"
          (List.length (List.filter (fun r -> r.r_disagreements = []) oks))
          (List.length oks)
      in
      let word =
        let checks = List.filter_map (fun r -> r.r_word_ok) oks in
        if checks = [] then "-"
        else if List.for_all Fun.id checks then "ok"
        else "FAIL"
      in
      let notes =
        let errs = List.length rs - List.length oks in
        if errs > 0 then Printf.sprintf "%d error(s)" errs else ""
      in
      Printf.bprintf b "%-24s %7d %7d %5d %10s %10s %7s %6s %s\n" f blocks
        chans (List.length rs) bound thpt agree word notes;
      let tele =
        List.fold_left
          (fun acc r ->
            match r.r_telemetry with
            | Some s -> Telemetry.merge_opt acc s
            | None -> acc)
          None oks
      in
      match tele with
      | Some s ->
        Printf.bprintf b "\nstall attribution — %s\n%s\n" f (Telemetry.to_table s)
      | None -> ())
    (List.rev !order);
  Buffer.contents b
