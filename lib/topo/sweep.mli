(** Scenario-sweep harness over generated topologies.

    A sweep expands a scenario grammar — a list of {!Topology.spec}
    families times a seed count times one {!Wp_core.Run_spec.t} — into
    concrete scenarios, shards them across the {!Wp_util.Pool}, rides
    the {!Wp_sim.Batch} kernel wherever the spec is batchable (the
    topology-generic signature grouping means one batch call covers a
    heterogeneous shard), and cross-checks engines against each other:

    - every statically schedulable scenario is replayed on
      {!Wp_sim.Static} and must agree with the primary engine on
      outcome, cycle count, block firings and delivered tokens;
    - seed-0 scenarios of each family are additionally replayed on the
      {!Wp_sim.Engine} reference interpreter;
    - under [--engine static] the measured steady-state throughput of
      block 0 is checked {e exactly} (integer arithmetic, one full
      period against the next) against the balanced firing word's rate
      — the Millo–de Simone sustained-rate claim at generated-topology
      scale.

    The report compares measured throughput per topology family against
    the Howard-MCR bound of the capacity-extended marked graph and, when
    telemetry is on, merges per-family stall attribution.  Failing
    scenarios become one-line repro files ({!write_repro}) with a
    replay command. *)

type scenario = { topo : Topology.spec; spec : Wp_core.Run_spec.t }

type result = {
  r_scenario : scenario;
  r_blocks : int;  (** nodes incl. adapter halves *)
  r_channels : int;
  r_outcome : Wp_sim.Engine.outcome;
  r_cycles : int;
  r_firings : int;  (** block 0 firings *)
  r_bound : Wp_graph.Cycle_ratio.ratio;  (** Howard-MCR throughput bound *)
  r_word_rate : Wp_graph.Cycle_ratio.ratio option;
      (** static engine only: the firing word's ones-per-period *)
  r_word_ok : bool option;
      (** static engine only: measured steady-state throughput equals
          the word rate, exactly *)
  r_disagreements : string list;  (** cross-engine mismatches, [] = agree *)
  r_telemetry : Wp_sim.Telemetry.summary option;
  r_error : string option;  (** scenario died with this exception *)
}

val expand :
  topos:Topology.spec list ->
  seeds:int ->
  spec:Wp_core.Run_spec.t ->
  scenario list
(** The grammar product: for each family, seeds [base, base + seeds)
    where [base] is the family spec's own seed.  @raise Invalid_argument
    when [seeds < 1]. *)

val run : ?jobs:int -> ?check_engines:bool -> scenario list -> result list
(** Execute the sweep, [shard]-wise parallel, results in input order.
    [check_engines] (default [true]) enables the static / reference
    cross-checks; the primary engine comes from each scenario's spec.
    Never raises on a per-scenario failure — see [r_error]. *)

val ok : result -> bool
(** No error, no disagreement, and the word-rate check (when performed)
    passed. *)

val replay_command : scenario -> string
(** A [wp_cli sweep] invocation reproducing exactly this scenario. *)

val write_repro : ?dir:string -> scenario -> reason:string -> string
(** Write a [.sexp] repro (topology, spec digest, reason, replay
    command) via {!Wp_util.Shrink.write_repro}; returns the path. *)

val render : result list -> string
(** Per-family report: blocks/channels/scenarios, Howard-MCR bound,
    mean measured throughput, agreement and word-rate tallies, then
    merged stall-attribution tables when telemetry was on. *)
