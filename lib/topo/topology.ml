module Process = Wp_lis.Process
module Network = Wp_sim.Network
module Prng = Wp_util.Prng
module Sexp = Wp_util.Shrink.Sexp
module Cycle_ratio = Wp_graph.Cycle_ratio

type shape = Ring of int | Mesh of int * int | Torus of int * int | Rand of int

type spec = { shape : shape; seed : int; max_rs : int; adapters : bool }

let v ?(seed = 0) ?(max_rs = 2) ?(adapters = false) shape =
  { shape; seed; max_rs; adapters }

let shape_to_string = function
  | Ring n -> Printf.sprintf "ring:%d" n
  | Mesh (r, c) -> Printf.sprintf "mesh:%dx%d" r c
  | Torus (r, c) -> Printf.sprintf "torus:%dx%d" r c
  | Rand n -> Printf.sprintf "rand:%d" n

let to_string t =
  let b = Buffer.create 24 in
  Buffer.add_string b (shape_to_string t.shape);
  if t.seed <> 0 then Buffer.add_string b (Printf.sprintf ":seed%d" t.seed);
  if t.max_rs <> 2 then Buffer.add_string b (Printf.sprintf ":rs%d" t.max_rs);
  if t.adapters then Buffer.add_string b ":adapt";
  Buffer.contents b

let family t = to_string { t with seed = 0 }

let digest t =
  Printf.sprintf "%s:seed%d:rs%d:%s" (shape_to_string t.shape) t.seed t.max_rs
    (if t.adapters then "adapt" else "plain")

let with_seed t seed = { t with seed }

let block_count t =
  match t.shape with
  | Ring n | Rand n -> n
  | Mesh (r, c) | Torus (r, c) -> r * c

(* --------------------------------------------------------------- *)
(* Grammar                                                          *)
(* --------------------------------------------------------------- *)

let parse_int s = match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "not a number: %S" s)

let parse_dims s =
  match String.index_opt s 'x' with
  | None -> Error (Printf.sprintf "expected RxC, got %S" s)
  | Some i -> (
    match
      ( int_of_string_opt (String.sub s 0 i),
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
    with
    | Some r, Some c -> Ok (r, c)
    | _ -> Error (Printf.sprintf "expected RxC, got %S" s))

let strip_prefix ~prefix s =
  let lp = String.length prefix in
  if String.length s > lp && String.sub s 0 lp = prefix then
    Some (String.sub s lp (String.length s - lp))
  else None

let ( let* ) = Result.bind

let of_string s =
  match String.split_on_char ':' s with
  | [] | [ _ ] -> Error (Printf.sprintf "empty topology spec %S" s)
  | fam :: arg :: opts ->
    let* shape =
      match fam with
      | "ring" ->
        let* n = parse_int arg in
        Ok (Ring n)
      | "mesh" ->
        let* r, c = parse_dims arg in
        Ok (Mesh (r, c))
      | "torus" ->
        let* r, c = parse_dims arg in
        Ok (Torus (r, c))
      | "rand" ->
        let* n = parse_int arg in
        Ok (Rand n)
      | _ ->
        Error
          (Printf.sprintf "unknown topology family %S (ring|mesh|torus|rand)"
             fam)
    in
    List.fold_left
      (fun acc opt ->
        let* t = acc in
        if opt = "adapt" then Ok { t with adapters = true }
        else
          match strip_prefix ~prefix:"seed" opt with
          | Some n ->
            let* seed = parse_int n in
            Ok { t with seed }
          | None -> (
            match strip_prefix ~prefix:"rs" opt with
            | Some n ->
              let* max_rs = parse_int n in
              if max_rs < 0 then Error "rs must be >= 0"
              else Ok { t with max_rs }
            | None -> Error (Printf.sprintf "unknown topology option %S" opt)))
      (Ok (v shape)) opts

(* --------------------------------------------------------------- *)
(* Deterministic seeding                                            *)
(* --------------------------------------------------------------- *)

(* FNV-1a over the digest string: platform-independent, stable across
   runs, and distinct specs land in distinct PRNG streams. *)
let hash_string s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land max_int)
    s;
  !h

(* --------------------------------------------------------------- *)
(* Synthetic processes                                              *)
(* --------------------------------------------------------------- *)

(* Values are 48-bit so an [r]-lane adapter can slice them into exact
   [48/r]-bit fields and repack without loss. *)
let word_bits = 48
let mask48 = (1 lsl word_bits) - 1
let fnv_prime = 0x100000001b3
let gold = 0x2545F4914F6CDD1D

let never_halted () = false

(* A synthetic IP block: each firing folds all consumed words with the
   block id and emits one mixed word per output port.  Stateless, so
   every engine (and every batch lane) reconstructs identical data. *)
let block_process ~id ~n_in ~n_out =
  let input_names = Array.init n_in (Printf.sprintf "i%d") in
  let output_names = Array.init n_out (Printf.sprintf "o%d") in
  let reset_outputs =
    Array.init n_out (fun q ->
        (0x811c9dc5 + (id * 8191) + (q * 131071)) * fnv_prime land mask48)
  in
  let fire inputs =
    let h = ref ((id + 0x9e3779b9) land mask48) in
    Array.iter
      (function
        | Some v -> h := (!h lxor v) * fnv_prime land mask48 | None -> ())
      inputs;
    Array.init n_out (fun q -> (!h + ((q + 1) * 0x9e3779b9)) * gold land mask48)
  in
  {
    Process.name = Printf.sprintf "b%d" id;
    input_names;
    output_names;
    reset_outputs;
    make =
      (fun () ->
        { Process.required = Process.all_required n_in; fire; halted = never_halted });
  }

(* Space-time adapter, down half: slice one wide word into [r] narrow
   lanes of [48/r] bits each. *)
let slice_process ~idx ~r =
  let s = word_bits / r in
  let lane_mask = (1 lsl s) - 1 in
  let fire inputs =
    let v = match inputs.(0) with Some v -> v | None -> 0 in
    Array.init r (fun q -> (v lsr (q * s)) land lane_mask)
  in
  {
    Process.name = Printf.sprintf "x%dd" idx;
    input_names = [| "i" |];
    output_names = Array.init r (Printf.sprintf "o%d");
    reset_outputs = Array.make r 0;
    make =
      (fun () ->
        { Process.required = Process.all_required 1; fire; halted = never_halted });
  }

(* Up half: reassemble the wide word from the [r] lanes.  Inverse of
   {!slice_process} on every 48-bit value, so the adapter pair is the
   identity on the link. *)
let pack_process ~idx ~r =
  let s = word_bits / r in
  let lane_mask = (1 lsl s) - 1 in
  let fire inputs =
    let v = ref 0 in
    for q = 0 to r - 1 do
      let w = match inputs.(q) with Some w -> w | None -> 0 in
      v := !v lor ((w land lane_mask) lsl (q * s))
    done;
    [| !v |]
  in
  {
    Process.name = Printf.sprintf "x%du" idx;
    input_names = Array.init r (Printf.sprintf "i%d");
    output_names = [| "o" |];
    reset_outputs = [| 0 |];
    make =
      (fun () ->
        { Process.required = Process.all_required r; fire; halted = never_halted });
  }

(* --------------------------------------------------------------- *)
(* Shape -> block-level edge list                                   *)
(* --------------------------------------------------------------- *)

let base_edges ~rng spec =
  let n = block_count spec in
  match spec.shape with
  | Ring n' ->
    if n' < 2 then invalid_arg "Topology.build: ring needs >= 2 blocks";
    List.init n (fun i -> (i, (i + 1) mod n))
  | Mesh (r, c) ->
    if r < 1 || c < 1 || r * c < 2 then
      invalid_arg "Topology.build: mesh needs >= 2 blocks";
    let id row col = (row * c) + col in
    let es = ref [] in
    for row = r - 1 downto 0 do
      for col = c - 1 downto 0 do
        if col + 1 < c then es := (id row col, id row (col + 1)) :: !es;
        if row + 1 < r then es := (id row col, id (row + 1) col) :: !es
      done
    done;
    !es @ [ ((r * c) - 1, 0) ]
  | Torus (r, c) ->
    if r < 2 || c < 2 then invalid_arg "Topology.build: torus needs >= 2x2";
    let id row col = (row * c) + col in
    let es = ref [] in
    for row = r - 1 downto 0 do
      for col = c - 1 downto 0 do
        es := (id row col, id row ((col + 1) mod c)) :: !es;
        es := (id row col, id ((row + 1) mod r) col) :: !es
      done
    done;
    !es
  | Rand n' ->
    if n' < 2 then invalid_arg "Topology.build: rand needs >= 2 blocks";
    let seen = Hashtbl.create (2 * n) in
    let es = ref [] in
    let add src dst =
      if not (Hashtbl.mem seen (src, dst)) then begin
        Hashtbl.add seen (src, dst) ();
        es := (src, dst) :: !es
      end
    in
    (* Backbone path plus the feedback closing it: strong connectivity
       and liveness come for free, extras only add constraints. *)
    for i = 0 to n - 2 do
      add i (i + 1)
    done;
    add (n - 1) 0;
    for _ = 1 to n / 2 do
      let src = Prng.int rng (n - 1) in
      let dst = Prng.int_in rng (src + 1) (n - 1) in
      add src dst
    done;
    for _ = 1 to max 1 (n / 8) do
      let src = Prng.int_in rng 1 (n - 1) in
      let dst = Prng.int rng src in
      add src dst
    done;
    List.rev !es

(* --------------------------------------------------------------- *)
(* Build                                                            *)
(* --------------------------------------------------------------- *)

type node_kind = Block of int | Slice of int * int | Pack of int * int
(* Slice/Pack carry (adapter index, lane count). *)

let build spec =
  if block_count spec > 100_000 then
    invalid_arg "Topology.build: more than 100_000 blocks";
  if spec.max_rs < 0 then invalid_arg "Topology.build: negative max_rs";
  let rng = Prng.create ~seed:(hash_string (digest spec)) in
  let edges = base_edges ~rng spec in
  let n_blocks = block_count spec in
  (* Expand adapter links; nodes beyond the blocks are adapter halves. *)
  let kinds = ref [] (* reversed tail beyond blocks *) in
  let n_nodes = ref n_blocks in
  let add_node k =
    let id = !n_nodes in
    kinds := k :: !kinds;
    incr n_nodes;
    id
  in
  let final = ref [] in
  (* (src, dst, rs, width), reversed *)
  let n_adapters = ref 0 in
  let draw_rs () = Prng.int rng (spec.max_rs + 1) in
  List.iter
    (fun (s, d) ->
      if spec.adapters && Prng.int rng 4 = 0 then begin
        let r = if Prng.bool rng then 2 else 4 in
        let idx = !n_adapters in
        incr n_adapters;
        let dn = add_node (Slice (idx, r)) in
        let up = add_node (Pack (idx, r)) in
        final := (s, dn, draw_rs (), word_bits) :: !final;
        for q = 0 to r - 1 do
          ignore q;
          final := (dn, up, draw_rs (), word_bits / r) :: !final
        done;
        final := (up, d, draw_rs (), word_bits) :: !final
      end
      else final := (s, d, draw_rs (), word_bits) :: !final)
    edges;
  let final = Array.of_list (List.rev !final) in
  let kinds =
    Array.append
      (Array.init n_blocks (fun i -> Block i))
      (Array.of_list (List.rev !kinds))
  in
  let n_nodes = !n_nodes in
  (* Port indices in channel order. *)
  let in_deg = Array.make n_nodes 0 and out_deg = Array.make n_nodes 0 in
  Array.iter
    (fun (s, d, _, _) ->
      out_deg.(s) <- out_deg.(s) + 1;
      in_deg.(d) <- in_deg.(d) + 1)
    final;
  let net = Network.create () in
  let nodes =
    Array.mapi
      (fun i kind ->
        let p =
          match kind with
          | Block id -> block_process ~id ~n_in:in_deg.(i) ~n_out:out_deg.(i)
          | Slice (idx, r) -> slice_process ~idx ~r
          | Pack (idx, r) -> pack_process ~idx ~r
        in
        Network.add net p)
      kinds
  in
  let next_in = Array.make n_nodes 0 and next_out = Array.make n_nodes 0 in
  Array.iteri
    (fun i (s, d, rs, width) ->
      let sp =
        match kinds.(s) with
        | Block _ | Slice _ -> Printf.sprintf "o%d" next_out.(s)
        | Pack _ -> "o"
      in
      let dp =
        match kinds.(d) with
        | Block _ | Pack _ -> Printf.sprintf "i%d" next_in.(d)
        | Slice _ -> "i"
      in
      next_out.(s) <- next_out.(s) + 1;
      next_in.(d) <- next_in.(d) + 1;
      ignore
        (Network.connect net
           ~src:(nodes.(s), sp)
           ~dst:(nodes.(d), dp)
           ~relay_stations:rs
           ~label:(Printf.sprintf "e%d:w%d" i width)
           ()))
    final;
  Network.validate net;
  net

let signature = Wp_sim.Batch.signature

let one = Cycle_ratio.make_ratio 1 1

let mcr ?(capacity = 2) net =
  let g, tokens, time = Wp_sim.Static.capacity_graph ~capacity net in
  match Cycle_ratio.minimum g ~cost:tokens ~time with
  | None -> one
  | Some (r, _) -> if Cycle_ratio.ratio_compare r one > 0 then one else r

(* --------------------------------------------------------------- *)
(* Shrinking and repro                                              *)
(* --------------------------------------------------------------- *)

let shrink_shape = function
  | Ring n -> List.filter_map (fun n' -> if n' >= 2 && n' < n then Some (Ring n') else None) [ 2; n / 2; n - 1 ]
  | Mesh (r, c) ->
    List.filter_map
      (fun (r', c') ->
        if r' * c' >= 2 && r' * c' < r * c then Some (Mesh (r', c')) else None)
      [ (1, 2); (r / 2, c); (r, c / 2); (r - 1, c); (r, c - 1) ]
    @ (if r * c >= 2 then [ Ring (r * c) ] else [])
  | Torus (r, c) ->
    List.filter_map
      (fun (r', c') ->
        if r' >= 2 && c' >= 2 && r' * c' < r * c then Some (Torus (r', c'))
        else None)
      [ (2, 2); (r / 2, c); (r, c / 2); (r - 1, c); (r, c - 1) ]
    @ [ Mesh (r, c) ]
  | Rand n ->
    List.filter_map (fun n' -> if n' >= 2 && n' < n then Some (Rand n') else None) [ 2; n / 2; n - 1 ]
    @ [ Ring n ]

let shrink_candidates t =
  let shapes = List.map (fun s -> { t with shape = s }) (shrink_shape t.shape) in
  let opts =
    (if t.adapters then [ { t with adapters = false } ] else [])
    @ (if t.max_rs > 0 then [ { t with max_rs = 0 }; { t with max_rs = t.max_rs / 2 } ] else [])
    @ if t.seed <> 0 then [ { t with seed = 0 } ] else []
  in
  List.to_seq (shapes @ List.filter (fun t' -> t' <> t) opts)

let to_sexp t = Sexp.field "topology" (Sexp.atom (to_string t))
