(** Seeded, parameterized netlist generator.

    Every experiment before this module ran the paper's one 5-block,
    10-link processor.  This generator produces whole families of
    latency-insensitive netlists — rings, meshes, tori and random
    DAG-with-feedback graphs from a handful up to ~10k blocks — so the
    static scheduler, the batch kernel and the differential batteries
    can be stressed at sizes where the marked-graph theory actually
    bites.

    A {!spec} is a pure value with a stable {!digest}; {!build} is a
    deterministic function of the spec (seeded {!Wp_util.Prng}, no
    global state), so generated networks can participate in
    content-addressed caching and lane grouping exactly like the
    hand-built case study.

    Generator invariants (property-tested in [test_topo]):

    - the network is strongly connected (one SCC), so every shell runs
      at the same sustained rate — the minimum cycle ratio;
    - every channel carries the usual single reset token, hence every
      cycle of the capacity-extended marked graph holds at least one
      token at the default capacity and the net is deadlock-free;
    - [digest] (and the built network) depend only on the spec — the
      same spec builds byte-identical topologies on every run;
    - every instance is statically schedulable at capacity >= 2, and
      {!Wp_graph.Schedule.check} accepts the balanced word.

    Blocks are synthetic IP: each firing consumes one word per input
    port and emits one deterministically mixed word (48-bit masked) per
    output port.  With [adapters = true], a seeded fraction of links is
    widened through a {e space-time adapter} pair: a slice process
    fans the 48-bit word out over [r] narrow lanes (width [48/r]) with
    independently drawn relay-station counts — mismatched widths and
    skews — and a pack process reassembles the original word losslessly
    on the far side. *)

type shape =
  | Ring of int  (** [n >= 2] blocks in a single cycle *)
  | Mesh of int * int
      (** rows x cols grid, right+down links, plus one feedback link
          closing the last block to the first ([rows * cols >= 2]) *)
  | Torus of int * int
      (** rows x cols with wraparound right/down links
          ([rows >= 2 && cols >= 2]) *)
  | Rand of int
      (** [n >= 2] blocks: a backbone path plus feedback, then seeded
          extra forward and feedback links *)

type spec = {
  shape : shape;
  seed : int;  (** drives RS draws, random links and adapter placement *)
  max_rs : int;  (** per-channel relay-station counts drawn from [0, max_rs] *)
  adapters : bool;  (** widen a seeded fraction of links through adapters *)
}

val v : ?seed:int -> ?max_rs:int -> ?adapters:bool -> shape -> spec
(** [seed] defaults to [0], [max_rs] to [2], [adapters] to [false]. *)

val of_string : string -> (spec, string) result
(** Scenario grammar: [ring:N], [mesh:RxC], [torus:RxC], [rand:N],
    each optionally followed by [:seedK], [:rsK] and [:adapt] in any
    order — e.g. ["mesh:8x8"], ["rand:64:seed3:rs4:adapt"]. *)

val to_string : spec -> string
(** Canonical grammar round-trip; default fields are omitted, so
    [to_string (v (Ring 16)) = "ring:16"]. *)

val family : spec -> string
(** {!to_string} with the seed masked to [0] — the name seeds of one
    sweep share. *)

val digest : spec -> string
(** Stable content digest (the fully explicit grammar string); equal
    digests build byte-identical networks. *)

val with_seed : spec -> int -> spec
val block_count : spec -> int
(** Blocks before adapter insertion ([n] or [rows * cols]). *)

val build : spec -> Wp_sim.Network.t
(** Materialise the netlist: processes, channels, relay-station counts.
    O(blocks + channels).  @raise Invalid_argument on an out-of-range
    shape (see {!shape}) or more than 100_000 blocks. *)

val signature : Wp_sim.Network.t -> string
(** Topology signature — node count, per-node port shapes, channel
    endpoints (not RS counts, not capacity).  Two networks with equal
    signatures can share batch-kernel lanes; this is the key
    {!Wp_sim.Batch} groups by. *)

val mcr : ?capacity:int -> Wp_sim.Network.t -> Wp_graph.Cycle_ratio.ratio
(** Howard/Lawler minimum cycle ratio of the capacity-extended marked
    graph ({!Wp_sim.Static.capacity_graph}), clamped at [1/1] — the
    sustained-throughput bound every shell of a strongly connected
    instance attains.  [capacity] defaults to 2. *)

val shrink_candidates : spec -> spec Seq.t
(** Simplification candidates for {!Wp_util.Shrink.fixpoint}: smaller
    shapes, simpler families, fewer relay stations, no adapters,
    seed 0.  Aggressive shrinks come first. *)

val to_sexp : spec -> Wp_util.Shrink.Sexp.t
(** For repro files: [(topology "<grammar string>")]. *)
