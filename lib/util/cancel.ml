type t = {
  flag : bool Atomic.t;
  deadline : float; (* absolute gettimeofday instant; infinity = none *)
}

exception Cancelled of string

let never = { flag = Atomic.make false; deadline = infinity }

let create ?deadline_ms () =
  let deadline =
    match deadline_ms with
    | None -> infinity
    | Some ms ->
      if ms <= 0 then invalid_arg "Cancel.create: deadline_ms must be > 0";
      Unix.gettimeofday () +. (float_of_int ms /. 1000.)
  in
  { flag = Atomic.make false; deadline }

let with_deadline_at deadline = { flag = Atomic.make false; deadline }

(* [never] is shared by every default [?cancel] argument; cancelling it
   would cancel the world, so it is pinned un-cancellable. *)
let cancel t = if t != never then Atomic.set t.flag true
let is_never t = t == never

let cancelled t =
  Atomic.get t.flag
  || (t.deadline < infinity && Unix.gettimeofday () > t.deadline)

let now () = Unix.gettimeofday ()
let cancelled_at ~now t = Atomic.get t.flag || now > t.deadline

let check ?(what = "run") t =
  if cancelled t then raise (Cancelled (what ^ ": cancelled"))

let deadline_ms_left t =
  if t.deadline = infinity then None
  else
    Some
      (max 0 (int_of_float (ceil ((t.deadline -. Unix.gettimeofday ()) *. 1000.))))
