(** Cooperative cancellation tokens.

    A token is an atomic flag plus an optional absolute wall-clock
    deadline.  The party that created the token may {!cancel} it at any
    time from any thread or domain; the party doing the work polls
    {!cancelled} at a coarse cadence (the simulation kernels check every
    few hundred cycles) and winds down promptly instead of burning a
    worker domain on a request nobody is waiting for.

    Cancellation is {e cooperative}: nothing is interrupted
    asynchronously, so kernel state is never torn mid-cycle — a lane of
    a batched kernel can be compacted out without disturbing its
    siblings' byte-identical results.

    The deadline is wall-clock ([Unix.gettimeofday]) because it models a
    client-side latency budget, not simulated cycles. *)

type t

exception Cancelled of string
(** Raised by {!check} (and by layers above the kernels, e.g.
    [Wp_core.Experiment]) when a run observes its token cancelled.  The
    payload is a human-readable reason ("deadline exceeded after 1234
    cycles (sort, CU-AL=1)"). *)

val never : t
(** The shared token that is never cancelled.  {!cancel} on it is a
    no-op; every [?cancel] argument in the simulation stack defaults to
    it, making the uncancellable path allocation- and syscall-free. *)

val create : ?deadline_ms:int -> unit -> t
(** Fresh token; with [deadline_ms] it auto-cancels once that many
    wall-clock milliseconds have elapsed from the call. *)

val with_deadline_at : float -> t
(** Fresh token auto-cancelling at an absolute [Unix.gettimeofday]
    instant — the serve daemon stamps requests with
    [arrival +. deadline_ms/1000.] so queue time counts against the
    budget. *)

val cancel : t -> unit
(** Flip the flag (idempotent, thread-safe).  No-op on {!never}. *)

val is_never : t -> bool

val cancelled : t -> bool
(** Flag set, or deadline passed.  Reads the clock only when the token
    actually carries a deadline. *)

val now : unit -> float
(** [Unix.gettimeofday], exposed so batch kernels can sample the clock
    once per polling round and test many lanes against it. *)

val cancelled_at : now:float -> t -> bool
(** {!cancelled} against a pre-sampled clock value. *)

val check : ?what:string -> t -> unit
(** @raise Cancelled when {!cancelled}. *)

val deadline_ms_left : t -> int option
(** Milliseconds until the deadline (clamped at 0), [None] if the token
    has no deadline — the retry-after hint material. *)
