exception Truncated
exception Oversized of int
exception Timeout

let max_frame = 16 * 1024 * 1024

let rec write_all fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (off + n) (len - n)
  end

(* Returns the number of bytes actually read: [len] normally, less if the
   peer closed first.  A short count therefore always means EOF. *)
let read_upto fd buf off len =
  let rec go off len got =
    if len = 0 then got
    else
      match Unix.read fd buf off len with
      | 0 -> got
      | n -> go (off + n) (len - n) (got + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len got
  in
  go off len 0

let write fd payload =
  let len = String.length payload in
  if len > max_frame then
    invalid_arg (Printf.sprintf "Frame.write: payload of %d bytes exceeds max_frame" len);
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  write_all fd buf 0 (4 + len)

let read fd =
  let hdr = Bytes.create 4 in
  match read_upto fd hdr 0 4 with
  | 0 -> None
  | 4 ->
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_frame then raise (Oversized len);
    let payload = Bytes.create len in
    if read_upto fd payload 0 len < len then raise Truncated;
    Some (Bytes.unsafe_to_string payload)
  | _ -> raise Truncated

(* ------------------------------------------------------------------ *)
(* Deadline-aware variants (the serve daemon's side of the protocol).

   Both work on blocking OR non-blocking descriptors: every transfer is
   preceded by a [select] bounded by the remaining budget, and
   EAGAIN/EWOULDBLOCK from a non-blocking descriptor simply loops back
   into the wait.  [select] rather than [poll] because it is what the
   OCaml Unix library portably exposes; the daemon serves hundreds of
   descriptors, not tens of thousands, and each thread waits on exactly
   one. *)
(* ------------------------------------------------------------------ *)

(* Wait until [fd] is ready (readable if [read], writable otherwise) or
   [deadline] passes; false = timed out. *)
let wait_ready ~read fd deadline =
  let rec go () =
    let budget = deadline -. Unix.gettimeofday () in
    if budget <= 0. then false
    else begin
      let rs, ws = if read then ([ fd ], []) else ([], [ fd ]) in
      match Unix.select rs ws [] budget with
      | [], [], _ -> go ()
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    end
  in
  go ()

let nonblocking_retry = function
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> true
  | _ -> false

(* Read exactly [len] bytes, each chunk granted [stall] seconds from the
   moment the previous one arrived.  Returns the byte count like
   [read_upto]; raises [Timeout] when the peer goes quiet mid-transfer
   (the half-open / slow-loris signature). *)
let read_upto_stall fd buf off len ~stall =
  let rec go off len got =
    if len = 0 then got
    else begin
      if not (wait_ready ~read:true fd (Unix.gettimeofday () +. stall)) then
        raise Timeout;
      match Unix.read fd buf off len with
      | 0 -> got
      | n -> go (off + n) (len - n) (got + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len got
      | exception e when nonblocking_retry e -> go off len got
    end
  in
  go off len 0

type timed_read =
  | Frame of string
  | Eof
  | Idle

let read_timed ~idle ~stall fd =
  if not (wait_ready ~read:true fd (Unix.gettimeofday () +. idle)) then Idle
  else begin
    let hdr = Bytes.create 4 in
    match read_upto_stall fd hdr 0 4 ~stall with
    | 0 -> Eof
    | 4 ->
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame then raise (Oversized len);
      let payload = Bytes.create len in
      if read_upto_stall fd payload 0 len ~stall < len then raise Truncated;
      Frame (Bytes.unsafe_to_string payload)
    | _ -> raise Truncated
  end

let write_timed ~timeout fd payload =
  let len = String.length payload in
  if len > max_frame then
    invalid_arg
      (Printf.sprintf "Frame.write_timed: payload of %d bytes exceeds max_frame" len);
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  let rec go off remaining =
    if remaining > 0 then begin
      (* The budget restarts per chunk: a reader draining slowly but
         steadily is tolerated, one that stops entirely is not. *)
      if not (wait_ready ~read:false fd (Unix.gettimeofday () +. timeout)) then
        raise Timeout;
      match Unix.write fd buf off remaining with
      | n -> go (off + n) (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off remaining
      | exception e when nonblocking_retry e -> go off remaining
    end
  in
  go 0 (4 + len)
