exception Truncated
exception Oversized of int

let max_frame = 16 * 1024 * 1024

let rec write_all fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (off + n) (len - n)
  end

(* Returns the number of bytes actually read: [len] normally, less if the
   peer closed first.  A short count therefore always means EOF. *)
let read_upto fd buf off len =
  let rec go off len got =
    if len = 0 then got
    else
      match Unix.read fd buf off len with
      | 0 -> got
      | n -> go (off + n) (len - n) (got + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len got
  in
  go off len 0

let write fd payload =
  let len = String.length payload in
  if len > max_frame then
    invalid_arg (Printf.sprintf "Frame.write: payload of %d bytes exceeds max_frame" len);
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  write_all fd buf 0 (4 + len)

let read fd =
  let hdr = Bytes.create 4 in
  match read_upto fd hdr 0 4 with
  | 0 -> None
  | 4 ->
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_frame then raise (Oversized len);
    let payload = Bytes.create len in
    if read_upto fd payload 0 len < len then raise Truncated;
    Some (Bytes.unsafe_to_string payload)
  | _ -> raise Truncated
