(** Length-prefixed framing over a [Unix.file_descr].

    Every frame on the wire is a 4-byte big-endian payload length followed
    by the payload bytes.  The codec is transport-agnostic: the serve
    daemon uses it over Unix-domain stream sockets, the tests over
    [Unix.socketpair].  Reads and writes retry on [EINTR] and loop over
    short transfers, so callers see whole frames or an error, never a
    partial one.

    Two API layers share the byte format:

    - {!read} / {!write} block indefinitely — the trusting side
      (short-lived clients talking to a daemon they chose to wait for);
    - {!read_timed} / {!write_timed} bound every wait with [select] —
      the daemon's side, where a half-open peer, a slow-loris reader or
      a SIGSTOP'd client must never park a service thread forever. *)

exception Truncated
(** The peer closed the connection in the middle of a frame (after the
    length prefix, or mid-payload). *)

exception Oversized of int
(** A length prefix exceeded {!max_frame}; raised before any payload is
    read so a hostile peer cannot force a giant allocation. *)

exception Timeout
(** A deadline-aware transfer ran out of budget {e mid-frame} (or, for
    {!write_timed}, the peer stopped draining).  The connection is in an
    unknown framing state; the only safe continuation is to drop it. *)

val max_frame : int
(** Upper bound on payload size accepted by {!read} (16 MiB). *)

val write : Unix.file_descr -> string -> unit
(** [write fd payload] sends one frame.  Raises [Invalid_argument] if the
    payload exceeds {!max_frame}, [Unix.Unix_error] on transport errors
    (e.g. [EPIPE] once the peer is gone). *)

val read : Unix.file_descr -> string option
(** [read fd] blocks for the next frame.  [None] means the peer closed
    the connection cleanly at a frame boundary; a close anywhere else
    raises {!Truncated}. *)

type timed_read =
  | Frame of string  (** a whole frame arrived within budget *)
  | Eof  (** clean close at a frame boundary (= {!read}'s [None]) *)
  | Idle
      (** no frame {e started} within the idle budget; the connection is
          intact — the caller decides whether to keep waiting or reap *)

val read_timed : idle:float -> stall:float -> Unix.file_descr -> timed_read
(** [read_timed ~idle ~stall fd] waits up to [idle] seconds for the
    first byte of the next frame, then grants [stall] seconds per
    subsequent chunk.  Works on blocking and non-blocking descriptors.
    @raise Timeout when bytes stop flowing mid-frame.
    @raise Oversized / @raise Truncated as {!read}. *)

val write_timed : timeout:float -> Unix.file_descr -> string -> unit
(** [write_timed ~timeout fd payload] sends one frame, granting
    [timeout] seconds per chunk the peer accepts.  @raise Timeout when
    the peer stops draining. *)
