(** Length-prefixed framing over a [Unix.file_descr].

    Every frame on the wire is a 4-byte big-endian payload length followed
    by the payload bytes.  The codec is transport-agnostic: the serve
    daemon uses it over Unix-domain stream sockets, the tests over
    [Unix.socketpair].  Reads and writes retry on [EINTR] and loop over
    short transfers, so callers see whole frames or an error, never a
    partial one. *)

exception Truncated
(** The peer closed the connection in the middle of a frame (after the
    length prefix, or mid-payload). *)

exception Oversized of int
(** A length prefix exceeded {!max_frame}; raised before any payload is
    read so a hostile peer cannot force a giant allocation. *)

val max_frame : int
(** Upper bound on payload size accepted by {!read} (16 MiB). *)

val write : Unix.file_descr -> string -> unit
(** [write fd payload] sends one frame.  Raises [Invalid_argument] if the
    payload exceeds {!max_frame}, [Unix.Unix_error] on transport errors
    (e.g. [EPIPE] once the peer is gone). *)

val read : Unix.file_descr -> string option
(** [read fd] blocks for the next frame.  [None] means the peer closed
    the connection cleanly at a frame boundary; a close anywhere else
    raises {!Truncated}. *)
