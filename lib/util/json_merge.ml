let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

exception Bad

(* Scan one JSON value starting at [i]; return the index one past its
   end.  Only the bracket/string structure is tracked — enough to find
   where a top-level value stops. *)
let scan_value s i =
  let n = String.length s in
  let rec skip_string j =
    if j >= n then raise Bad
    else
      match s.[j] with
      | '"' -> j + 1
      | '\\' -> if j + 1 >= n then raise Bad else skip_string (j + 2)
      | _ -> skip_string (j + 1)
  in
  let rec go j depth =
    if j >= n then if depth = 0 then j else raise Bad
    else
      match s.[j] with
      | '{' | '[' -> go (j + 1) (depth + 1)
      | '}' | ']' ->
        if depth = 0 then j         (* closing brace of the enclosing object *)
        else if depth = 1 && (s.[j] = '}' || s.[j] = ']') then j + 1
        else go (j + 1) (depth - 1)
      | '"' -> go (skip_string (j + 1)) depth
      | ',' when depth = 0 -> j
      | _ -> go (j + 1) depth
  in
  go i 0

let sections text =
  let n = String.length text in
  let rec skip_ws i = if i < n && is_ws text.[i] then skip_ws (i + 1) else i in
  let parse_key i =
    if i >= n || text.[i] <> '"' then raise Bad;
    let rec finish j =
      if j >= n then raise Bad
      else
        match text.[j] with
        | '"' -> j
        | '\\' -> if j + 1 >= n then raise Bad else finish (j + 2)
        | _ -> finish (j + 1)
    in
    let stop = finish (i + 1) in
    (String.sub text (i + 1) (stop - i - 1), stop + 1)
  in
  let rtrim i stop =
    let rec go stop = if stop > i && is_ws text.[stop - 1] then go (stop - 1) else stop in
    go stop
  in
  try
    let i = skip_ws 0 in
    if i >= n || text.[i] <> '{' then raise Bad;
    let rec entries i acc =
      let i = skip_ws i in
      if i >= n then raise Bad
      else if text.[i] = '}' then List.rev acc
      else begin
        let key, i = parse_key i in
        let i = skip_ws i in
        if i >= n || text.[i] <> ':' then raise Bad;
        let vstart = skip_ws (i + 1) in
        let vstop = scan_value text vstart in
        let value = String.sub text vstart (rtrim vstart vstop - vstart) in
        let i = skip_ws vstop in
        if i < n && text.[i] = ',' then entries (i + 1) ((key, value) :: acc)
        else if i < n && text.[i] = '}' then List.rev ((key, value) :: acc)
        else raise Bad
      end
    in
    Some (entries (i + 1) [])
  with Bad -> None

let merge ~existing ~updates =
  let base = match existing with None -> [] | Some text -> Option.value ~default:[] (sections text) in
  let merged =
    List.fold_left
      (fun acc (k, v) ->
        if List.mem_assoc k acc then
          List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) acc
        else acc @ [ (k, v) ])
      base updates
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Printf.sprintf "  %S: %s" k v))
    merged;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
