(** Section-level merging of JSON objects, for benchmark result files.

    [bench/sim_bench.ml] writes one top-level JSON object per run, with
    one key per probe.  A [--smoke] or single-probe run used to overwrite
    the whole file, silently dropping every other probe's numbers; this
    module lets it re-read the previous file and replace only the
    sections it re-measured.

    The parser is deliberately shallow: it splits a JSON object into
    [(key, raw value text)] pairs without interpreting the values, which
    is all the merge needs and keeps it free of a full JSON dependency.
    Values keep their original formatting byte-for-byte. *)

val sections : string -> (string * string) list option
(** Split the top-level object of a JSON document into ordered
    [(key, raw_value)] pairs.  [None] if the input is not a syntactically
    plausible JSON object (unbalanced braces, truncated string, ...) —
    callers treat that as "no previous results". *)

val merge : existing:string option -> updates:(string * string) list -> string
(** Render a JSON object that contains every section of [existing] (when
    parseable), with sections named in [updates] replaced in place and
    new sections appended in order.  Later duplicates in [updates] win.
    The result ends with a newline. *)
